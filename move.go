// Package move is a keyword-based content filtering and dissemination
// system for clusters of commodity machines — a from-scratch Go
// implementation of "Move: A Large Scale Keyword-based Content Filtering
// and Dissemination System" (Rao, Chen, Hui, Tarkoma — ICDCS 2012).
//
// Users register keyword filters; publishers inject documents; the system
// matches every fresh document against all registered filters and pushes it
// to matching subscribers. Internally, filters are spread over a
// Dynamo/Cassandra-style consistent-hash ring as a distributed inverted
// list, and an adaptive allocation scheme replicates and separates hot
// filter sets across nodes to maximize matching throughput under a storage
// budget (the paper's §IV optimization).
//
// Quick start:
//
//	c, err := move.NewCluster(move.Config{Nodes: 8})
//	...
//	sub, err := c.Subscribe("alice", "breaking news")
//	_, err = c.Publish("Breaking news: gophers ship a pub/sub system")
//	n := <-sub.C // Notification for alice
package move

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"github.com/movesys/move/internal/alloc"
	"github.com/movesys/move/internal/cluster"
	"github.com/movesys/move/internal/model"
	"github.com/movesys/move/internal/node"
	"github.com/movesys/move/internal/ring"
	"github.com/movesys/move/internal/text"
	"github.com/movesys/move/internal/trace"
)

// Scheme selects the dissemination system.
type Scheme int

// Available schemes. SchemeMove (the default) enables adaptive filter
// allocation; SchemeIL and SchemeRS are the paper's baselines, exposed for
// comparison and benchmarking.
const (
	// SchemeMove is the full system with adaptive filter allocation.
	SchemeMove Scheme = iota + 1
	// SchemeIL is the distributed inverted list without allocation.
	SchemeIL
	// SchemeRS is the rendezvous (flooding) baseline.
	SchemeRS
)

// MatchMode selects per-filter matching semantics.
type MatchMode int

// Matching semantics: MatchAny (the paper's boolean model) fires when any
// filter term occurs in the document; MatchAll requires all terms;
// MatchThreshold requires a tf-idf containment score above the filter's
// threshold.
const (
	// MatchAny fires when at least one filter term appears.
	MatchAny MatchMode = iota + 1
	// MatchAll fires when every filter term appears.
	MatchAll
	// MatchThreshold fires when the relevance score reaches the threshold.
	MatchThreshold
)

// Placement selects where allocated filter replicas go.
type Placement int

// Placement strategies (§V): PlacementHybrid (default) takes half ring
// successors, half rack-local peers, trading throughput against
// availability; the pure variants are exposed for experiments.
const (
	// PlacementRing uses consistent-hash ring successors.
	PlacementRing Placement = iota + 1
	// PlacementRack uses rack-local peers.
	PlacementRack
	// PlacementHybrid mixes both (the paper's choice).
	PlacementHybrid
)

// Config parameterizes an embedded cluster.
type Config struct {
	// Nodes is the cluster size. Required.
	Nodes int
	// Scheme defaults to SchemeMove.
	Scheme Scheme
	// RackSize is the number of nodes per rack (default 5).
	RackSize int
	// Capacity is the per-node filter capacity C used by the allocation
	// optimizer (default 3,000,000 as in the paper's evaluation).
	Capacity int
	// Placement defaults to PlacementHybrid.
	Placement Placement
	// SubscriptionBuffer is each subscription channel's capacity (default
	// 128). When a subscriber does not drain its channel, further
	// notifications for it are dropped and counted (Subscription.Dropped).
	SubscriptionBuffer int
	// Seed makes the embedded cluster deterministic (default 1).
	Seed int64
}

// Notification is one delivered document.
type Notification struct {
	// DocID identifies the published document.
	DocID uint64
	// Terms is the document's preprocessed term set.
	Terms []string
	// FilterID identifies the matching filter.
	FilterID uint64
	// Subscriber echoes the subscription owner.
	Subscriber string
}

// Subscription is a registered filter plus its delivery channel.
type Subscription struct {
	// ID is the cluster-wide filter ID.
	ID uint64
	// Subscriber is the owner name.
	Subscriber string
	// Terms is the preprocessed filter term set.
	Terms []string
	// C receives notifications.
	C <-chan Notification

	ch      chan Notification
	dropped sync.Mutex
	nDrop   int64
}

// Dropped returns how many notifications were discarded because the
// channel was full.
func (s *Subscription) Dropped() int64 {
	s.dropped.Lock()
	defer s.dropped.Unlock()
	return s.nDrop
}

func (s *Subscription) deliver(n Notification) {
	select {
	case s.ch <- n:
	default:
		s.dropped.Lock()
		s.nDrop++
		s.dropped.Unlock()
	}
}

// PublishReceipt summarizes one publication.
type PublishReceipt struct {
	// DocID is the assigned document ID.
	DocID uint64
	// Matched is the number of distinct filters that matched.
	Matched int
	// Complete is false when node failures prevented finding all matches.
	Complete bool
	// Degraded is true when some allocation-grid columns had no live
	// replica in any partition row: the publish succeeded but Matched may
	// be missing that slice of the filter population.
	Degraded bool
	// ColumnsLost counts the unreachable grid columns behind Degraded.
	ColumnsLost int
	// Trace records the publish path — the hop sequence (entry → home
	// nodes → grid columns, failovers included) and per-stage wall times.
	Trace trace.Summary
}

// Cluster is an embedded MOVE deployment.
type Cluster struct {
	inner *cluster.Cluster
	cfg   Config

	mu     sync.RWMutex
	subs   map[uint64]*Subscription
	lastID uint64
}

// Errors returned by the public API.
var (
	// ErrEmptyQuery reports a subscription or document whose text contains
	// no indexable terms after preprocessing.
	ErrEmptyQuery = errors.New("move: no indexable terms")
	// ErrBadConfig reports unusable configuration.
	ErrBadConfig = errors.New("move: invalid config")
)

// NewCluster boots an embedded cluster of in-process nodes.
func NewCluster(cfg Config) (*Cluster, error) {
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("%w: Nodes=%d", ErrBadConfig, cfg.Nodes)
	}
	if cfg.Scheme == 0 {
		cfg.Scheme = SchemeMove
	}
	if cfg.SubscriptionBuffer == 0 {
		cfg.SubscriptionBuffer = 128
	}
	c := &Cluster{cfg: cfg, subs: make(map[uint64]*Subscription)}

	inner, err := cluster.New(cluster.Config{
		Scheme:    cluster.Scheme(cfg.Scheme),
		Nodes:     cfg.Nodes,
		RackSize:  cfg.RackSize,
		Capacity:  cfg.Capacity,
		Placement: ring.Placement(cfg.Placement),
		Seed:      cfg.Seed,
		OnDeliver: c.dispatch,
	})
	if err != nil {
		return nil, fmt.Errorf("move: boot cluster: %w", err)
	}
	c.inner = inner
	return c, nil
}

// dispatch fans a delivery out to subscription channels.
func (c *Cluster) dispatch(doc *model.Document, matches []node.Match) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, m := range matches {
		sub, ok := c.subs[uint64(m.Filter)]
		if !ok {
			continue
		}
		sub.deliver(Notification{
			DocID:      doc.ID,
			Terms:      append([]string(nil), doc.Terms...),
			FilterID:   uint64(m.Filter),
			Subscriber: m.Subscriber,
		})
	}
}

// SubscribeOptions tweaks one subscription.
type SubscribeOptions struct {
	// Mode defaults to MatchAny.
	Mode MatchMode
	// Threshold applies to MatchThreshold (0 < Threshold ≤ 1).
	Threshold float64
}

// Subscribe registers a keyword filter from raw text ("breaking news")
// using the full preprocessing pipeline (lower-casing, stop-word removal,
// Porter stemming).
func (c *Cluster) Subscribe(subscriber, query string, opts ...SubscribeOptions) (*Subscription, error) {
	terms := text.Terms(query, text.Options{})
	return c.SubscribeTerms(subscriber, terms, opts...)
}

// SubscribeTerms registers a filter from preprocessed terms.
func (c *Cluster) SubscribeTerms(subscriber string, terms []string, opts ...SubscribeOptions) (*Subscription, error) {
	if len(terms) == 0 {
		return nil, ErrEmptyQuery
	}
	opt := SubscribeOptions{Mode: MatchAny}
	if len(opts) > 0 {
		opt = opts[0]
		if opt.Mode == 0 {
			opt.Mode = MatchAny
		}
	}
	id, err := c.inner.Register(context.Background(), subscriber, terms, model.MatchMode(opt.Mode), opt.Threshold)
	if err != nil {
		return nil, fmt.Errorf("move: subscribe: %w", err)
	}
	ch := make(chan Notification, c.cfg.SubscriptionBuffer)
	sub := &Subscription{
		ID:         uint64(id),
		Subscriber: subscriber,
		Terms:      append([]string(nil), terms...),
		C:          ch,
		ch:         ch,
	}
	c.mu.Lock()
	c.subs[uint64(id)] = sub
	c.lastID = uint64(id)
	c.mu.Unlock()
	return sub, nil
}

// Unsubscribe removes the subscription's delivery channel and deletes the
// filter definition from every node holding it (posting entries are
// cleaned lazily on match).
func (c *Cluster) Unsubscribe(sub *Subscription) {
	c.mu.Lock()
	delete(c.subs, sub.ID)
	c.mu.Unlock()
	// Best-effort cluster-wide removal; a dead holder drops the definition
	// with its store anyway.
	_ = c.inner.Unregister(context.Background(), model.FilterID(sub.ID))
}

// Publish disseminates raw content text through the full preprocessing
// pipeline.
func (c *Cluster) Publish(content string) (PublishReceipt, error) {
	terms := text.Terms(content, text.Options{})
	return c.PublishTerms(terms)
}

// PublishTerms disseminates a preprocessed term set.
func (c *Cluster) PublishTerms(terms []string) (PublishReceipt, error) {
	if len(terms) == 0 {
		return PublishReceipt{}, ErrEmptyQuery
	}
	res, err := c.inner.Publish(context.Background(), terms)
	if err != nil {
		return PublishReceipt{}, fmt.Errorf("move: publish: %w", err)
	}
	return PublishReceipt{
		DocID:       uint64(c.inner.TotalDocs()),
		Matched:     len(res.Matches),
		Complete:    res.Complete,
		Degraded:    res.Degraded,
		ColumnsLost: res.ColumnsLost,
		Trace:       res.Trace,
	}, nil
}

// Metrics snapshots the cluster's resilience counters: rpc.retries,
// rpc.giveups, breaker.open, breaker.fastfail, publish.failover,
// publish.degraded.
func (c *Cluster) Metrics() map[string]int64 {
	return c.inner.Metrics().Snapshot()
}

// Allocate runs one §IV allocation round: the coordinator aggregates node
// statistics, solves the MOVE optimization problem, and migrates hot filter
// sets onto allocation grids. Requires SchemeMove. Call it after the
// initial registration burst (proactive policy) and periodically as
// publication statistics accumulate.
func (c *Cluster) Allocate(ctx context.Context) error {
	_, err := c.inner.Allocate(ctx)
	if err != nil {
		return fmt.Errorf("move: allocate: %w", err)
	}
	return nil
}

// AllocateReport is Allocate plus the optimizer's decisions, for
// observability.
func (c *Cluster) AllocateReport(ctx context.Context) (cluster.AllocationReport, error) {
	return c.inner.Allocate(ctx)
}

// RefreshBloom rebuilds and installs the global filter-term Bloom filter
// that prunes dissemination fan-out (§V). Call after registration bursts.
func (c *Cluster) RefreshBloom(ctx context.Context) error {
	if err := c.inner.RefreshBloom(ctx); err != nil {
		return fmt.Errorf("move: refresh bloom: %w", err)
	}
	return nil
}

// Stats is a cluster-level summary.
type Stats struct {
	// Nodes is the cluster size; Alive how many are up.
	Nodes, Alive int
	// Filters and Docs count registrations and publications.
	Filters, Docs int
	// AvailableFilters is the fraction of filters with a live replica.
	AvailableFilters float64
}

// Stats snapshots the cluster.
func (c *Cluster) Stats() Stats {
	return Stats{
		Nodes:            c.inner.Size(),
		Alive:            c.inner.AliveCount(),
		Filters:          c.inner.TotalFilters(),
		Docs:             c.inner.TotalDocs(),
		AvailableFilters: c.inner.AvailableFilterFraction(),
	}
}

// FailNodes crashes n random nodes (failure-injection for tests and the
// failover example); rackCorrelated fails whole racks at a time. Returns
// how many nodes were crashed.
func (c *Cluster) FailNodes(fraction float64, rackCorrelated bool) int {
	return len(c.inner.FailFraction(fraction, rackCorrelated))
}

// Internal exposes the underlying experiment-grade cluster to the
// benchmark harness in this module. It is not part of the stable API.
func (c *Cluster) Internal() *cluster.Cluster { return c.inner }

// AllocStrategyName reports the active allocation strategy (for logs).
func AllocStrategyName() string { return alloc.StrategyGeneral.String() }
