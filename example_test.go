package move_test

import (
	"context"
	"fmt"

	"github.com/movesys/move"
)

// ExampleNewCluster demonstrates the minimal subscribe→publish→deliver
// flow on an embedded cluster.
func ExampleNewCluster() {
	cluster, err := move.NewCluster(move.Config{Nodes: 4, Seed: 1})
	if err != nil {
		panic(err)
	}
	sub, err := cluster.Subscribe("alice", "distributed systems")
	if err != nil {
		panic(err)
	}
	if _, err := cluster.Publish("a survey of distributed systems"); err != nil {
		panic(err)
	}
	n := <-sub.C
	fmt.Println(n.Subscriber, "received a matching document")
	// Output: alice received a matching document
}

// ExampleCluster_Subscribe shows conjunctive (AND) matching semantics.
func ExampleCluster_Subscribe() {
	cluster, err := move.NewCluster(move.Config{Nodes: 4, Seed: 1})
	if err != nil {
		panic(err)
	}
	sub, err := cluster.Subscribe("bob", "golang concurrency",
		move.SubscribeOptions{Mode: move.MatchAll})
	if err != nil {
		panic(err)
	}
	// Only one of the two terms — no delivery.
	if _, err := cluster.Publish("a post about golang generics"); err != nil {
		panic(err)
	}
	// Both terms — delivered.
	if _, err := cluster.Publish("golang concurrency patterns"); err != nil {
		panic(err)
	}
	n := <-sub.C
	fmt.Println("delivered doc", n.DocID)
	// Output: delivered doc 2
}

// ExampleCluster_Allocate shows the proactive allocation round after a
// registration burst.
func ExampleCluster_Allocate() {
	cluster, err := move.NewCluster(move.Config{Nodes: 10, Seed: 1})
	if err != nil {
		panic(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := cluster.Subscribe("user", "trending topic"); err != nil {
			panic(err)
		}
	}
	ctx := context.Background()
	if err := cluster.RefreshBloom(ctx); err != nil {
		panic(err)
	}
	// Teach the coordinator the document-term frequencies, then allocate.
	for i := 0; i < 30; i++ {
		if _, err := cluster.Publish("the trending topic of the day"); err != nil {
			panic(err)
		}
	}
	if err := cluster.Allocate(ctx); err != nil {
		panic(err)
	}
	receipt, err := cluster.Publish("still the trending topic")
	if err != nil {
		panic(err)
	}
	fmt.Println("matched filters:", receipt.Matched, "complete:", receipt.Complete)
	// Output: matched filters: 100 complete: true
}
