// Benchmarks regenerating every figure of the paper's evaluation (§VI) plus
// the design-choice ablations from DESIGN.md. Each figure bench reports the
// series it measures via b.ReportMetric so `go test -bench=.` output records
// paper-shape numbers alongside wall-clock cost; cmd/movebench prints the
// same series as tables.
//
// Benchmarks run at a small scale by default (MOVE_BENCH_SCALE overrides,
// e.g. MOVE_BENCH_SCALE=0.01 or 1.0 for paper scale).
package move

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"github.com/movesys/move/internal/dataset"
	"github.com/movesys/move/internal/experiments"
)

// benchScale returns the workload scale for figure benches.
func benchScale() experiments.Scale {
	if s := os.Getenv("MOVE_BENCH_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			return experiments.Scale(v)
		}
	}
	return 0.002
}

// BenchmarkDatasetStats regenerates the §VI.A dataset statistics.
func BenchmarkDatasetStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		st, err := experiments.RunDatasetStats(benchScale(), 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(st.MeanTermsPerFilter, "terms/filter")
		b.ReportMetric(st.TopAnchorMass, "top1000-mass")
		b.ReportMetric(st.OverlapWT, "overlapWT")
	}
}

// BenchmarkFigure4 regenerates the filter-term popularity distribution.
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.RunFigure4(benchScale(), 1, 20)
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) > 0 {
			b.ReportMetric(pts[0].Rate, "head-popularity")
		}
	}
}

// BenchmarkFigure5 regenerates the document-term frequency distributions.
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := experiments.RunFigure5(benchScale(), 1, 20)
		if err != nil {
			b.Fatal(err)
		}
		if len(s.WT) > 0 {
			b.ReportMetric(s.WT[0].Rate, "head-freq-WT")
		}
	}
}

// benchSingleNode shares the Figures 6–7 sweep between corpora.
func benchSingleNode(b *testing.B, corpus dataset.CorpusKind, mean float64) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.RunSingleNode(experiments.SingleNodeParams{
			Corpus:       corpus,
			Products:     []int{20_000, 100_000},
			DocCounts:    []int{10, 100, 400},
			Seed:         1,
			Vocab:        10_000,
			MeanDocTerms: mean,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			b.ReportMetric(p.Throughput, fmt.Sprintf("R%d-Q%d", p.R, p.Q))
		}
	}
}

// BenchmarkSingleNodeAP regenerates Figure 6 (TREC-AP-like documents).
func BenchmarkSingleNodeAP(b *testing.B) {
	benchSingleNode(b, dataset.CorpusAP, 600)
}

// BenchmarkSingleNodeWT regenerates Figure 7 (TREC-WT-like documents).
func BenchmarkSingleNodeWT(b *testing.B) {
	benchSingleNode(b, dataset.CorpusWT, 0)
}

// BenchmarkClusterVsFilters regenerates Figure 8(a).
func BenchmarkClusterVsFilters(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.RunFigure8a(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		last := pts[len(pts)-1]
		b.ReportMetric(last.Move, "Move@maxP")
		b.ReportMetric(last.RS, "RS@maxP")
		b.ReportMetric(last.IL, "IL@maxP")
	}
}

// BenchmarkClusterVsDocs regenerates Figure 8(b).
func BenchmarkClusterVsDocs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.RunFigure8b(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		last := pts[len(pts)-1]
		b.ReportMetric(last.Move, "Move@maxQ")
		b.ReportMetric(last.RS, "RS@maxQ")
		b.ReportMetric(last.IL, "IL@maxQ")
	}
}

// BenchmarkClusterVsNodes regenerates Figure 8(c).
func BenchmarkClusterVsNodes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.RunFigure8c(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		last := pts[len(pts)-1]
		b.ReportMetric(last.Move, "Move@100nodes")
		b.ReportMetric(last.RS, "RS@100nodes")
		b.ReportMetric(last.IL, "IL@100nodes")
	}
}

// BenchmarkLoadDistribution regenerates Figure 9(a) (storage skew).
func BenchmarkLoadDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		load, err := experiments.RunFigure9Load(benchScale(), true)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(load.CVMove, "cv-Move")
		b.ReportMetric(load.CVIL, "cv-IL")
		b.ReportMetric(load.CVRS, "cv-RS")
	}
}

// BenchmarkMatchingDistribution regenerates Figure 9(b) (matching skew).
func BenchmarkMatchingDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		load, err := experiments.RunFigure9Load(benchScale(), false)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(load.CVMove, "cv-Move")
		b.ReportMetric(load.CVIL, "cv-IL")
		b.ReportMetric(load.CVRS, "cv-RS")
	}
}

// BenchmarkFailureThroughput regenerates Figure 9(c).
func BenchmarkFailureThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunFigure9Failure(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.ThroughputFail, r.Placement.String()+"@30%")
		}
	}
}

// BenchmarkFailureAvailability regenerates Figure 9(d).
func BenchmarkFailureAvailability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunFigure9Failure(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.AvailabilityFail, r.Placement.String()+"-avail@30%")
		}
	}
}

// BenchmarkAblationAllocFactor compares the §IV allocation formulas.
func BenchmarkAblationAllocFactor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.RunAblationStrategies(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			b.ReportMetric(p.Throughput, p.Name)
		}
	}
}

// BenchmarkAblationBloom compares dissemination with/without the Bloom
// gate.
func BenchmarkAblationBloom(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.RunAblationBloom(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			b.ReportMetric(p.Throughput, p.Name)
		}
	}
}

// BenchmarkAblationGrid compares per-node vs per-term allocation grids
// (§V forwarding-table aggregation).
func BenchmarkAblationGrid(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.RunAblationGrid(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			b.ReportMetric(p.Throughput, p.Name)
		}
	}
}

// BenchmarkAblationPolicy compares proactive vs passive allocation timing
// (§V allocation policy).
func BenchmarkAblationPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.RunAblationPolicy(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			b.ReportMetric(p.Throughput, p.Name)
		}
	}
}

// BenchmarkPublishWallClock measures real end-to-end publish latency on the
// in-process cluster (no cost model), exercising the whole dissemination
// code path.
func BenchmarkPublishWallClock(b *testing.B) {
	c, err := NewCluster(Config{Nodes: 20, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	fg, err := dataset.NewFilterGen(dataset.FilterConfig{DistinctTerms: 2_000, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 5_000; i++ {
		if _, err := c.SubscribeTerms("s", fg.Next()); err != nil {
			b.Fatal(err)
		}
	}
	dg, err := dataset.NewDocGen(dataset.CorpusConfig{Kind: dataset.CorpusWT, DistinctTerms: 2_000, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	docs := make([][]string, 256)
	for i := range docs {
		docs[i] = dg.Next()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.PublishTerms(docs[i%len(docs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRegisterWallClock measures real filter-registration latency.
func BenchmarkRegisterWallClock(b *testing.B) {
	c, err := NewCluster(Config{Nodes: 20, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	fg, err := dataset.NewFilterGen(dataset.FilterConfig{DistinctTerms: 10_000, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.SubscribeTerms("s", fg.Next()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationRatio compares the optimizer-chosen allocation ratio
// against the pure replication and pure separation schemes of §IV-A.
func BenchmarkAblationRatio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.RunAblationRatio(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			b.ReportMetric(p.Throughput, p.Name)
		}
	}
}
