package move

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"github.com/movesys/move/internal/alloc"
	"github.com/movesys/move/internal/gossip"
	"github.com/movesys/move/internal/model"
	"github.com/movesys/move/internal/node"
	"github.com/movesys/move/internal/ring"
	"github.com/movesys/move/internal/text"
	"github.com/movesys/move/internal/transport"
)

// tcpCluster is a real-sockets deployment: N server nodes over TCP with
// live gossip, exactly what cmd/moved runs.
type tcpCluster struct {
	ringView *ring.Ring
	nodes    []*node.Node
	tns      []*transport.TCPNode
	gossips  []*gossip.Gossiper
	addrs    map[ring.NodeID]string
}

func startTCPCluster(t *testing.T, n int) *tcpCluster {
	t.Helper()
	tc := &tcpCluster{
		ringView: ring.New(ring.Config{}),
		addrs:    make(map[ring.NodeID]string),
	}
	var mu sync.Mutex
	resolver := func(id ring.NodeID) (string, error) {
		mu.Lock()
		defer mu.Unlock()
		a, ok := tc.addrs[id]
		if !ok {
			return "", transport.ErrNodeDown
		}
		return a, nil
	}

	for i := 0; i < n; i++ {
		id := ring.NodeID(fmt.Sprintf("tcp-%d", i))
		rack := fmt.Sprintf("rack-%d", i%2)
		if err := tc.ringView.Add(ring.Member{ID: id, Rack: rack}); err != nil {
			t.Fatal(err)
		}
		gIdx := i
		nd, err := node.New(node.Config{
			ID:   id,
			Rack: rack,
			Ring: tc.ringView,
			Gossip: func(from ring.NodeID, digest []byte) ([]byte, error) {
				return tc.gossips[gIdx].Handle(from, digest)
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		tn, err := transport.NewTCP(id, "127.0.0.1:0", nd.Handle, resolver)
		if err != nil {
			t.Fatal(err)
		}
		nd.Attach(tn)
		t.Cleanup(func() { _ = tn.Close() })
		mu.Lock()
		tc.addrs[id] = tn.Addr()
		mu.Unlock()
		tc.nodes = append(tc.nodes, nd)
		tc.tns = append(tc.tns, tn)
	}

	// Live gossip between the real sockets.
	for i := 0; i < n; i++ {
		tn := tc.tns[i]
		g, err := gossip.New(gossip.Config{
			Self:     gossip.Member{ID: tn.Self(), Addr: tn.Addr()},
			Interval: 20 * time.Millisecond,
			Send: func(ctx context.Context, to ring.NodeID, digest []byte) ([]byte, error) {
				return tn.Send(ctx, to, node.EncodeGossip(digest))
			},
			Seed: int64(i + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		tc.gossips = append(tc.gossips, g)
	}
	for i := 1; i < n; i++ {
		tc.gossips[i].SeedPeers(gossip.Member{ID: tc.tns[0].Self(), Addr: tc.tns[0].Addr()})
	}
	for _, g := range tc.gossips {
		g.Start()
		t.Cleanup(g.Stop)
	}
	return tc
}

// register places a filter on the home nodes of its terms via real TCP, as
// movectl does.
func (tc *tcpCluster) register(t *testing.T, id model.FilterID, sub, query string) []string {
	t.Helper()
	terms := text.Terms(query, text.Options{})
	f := model.Filter{ID: id, Subscriber: sub, Terms: terms, Mode: model.MatchAny}
	byHome := make(map[ring.NodeID][]string)
	for _, term := range terms {
		home, err := tc.ringView.HomeNode(term)
		if err != nil {
			t.Fatal(err)
		}
		byHome[home] = append(byHome[home], term)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for home, postingTerms := range byHome {
		payload := node.EncodeRegister(node.RegisterReq{Filter: f, PostingTerms: postingTerms})
		if _, err := tc.tns[0].Send(ctx, home, payload); err != nil {
			t.Fatalf("register on %s: %v", home, err)
		}
	}
	return terms
}

func TestEndToEndOverRealTCP(t *testing.T) {
	tc := startTCPCluster(t, 5)

	tc.register(t, 1, "alice", "breaking news")
	tc.register(t, 2, "bob", "football results")
	tc.register(t, 3, "carol", "news")

	// Publish through a node's entry path over real sockets.
	doc := &model.Document{ID: 42, Terms: text.Terms("breaking news from the football pitch", text.Options{})}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	matches, total, err := tc.nodes[2].PublishEntry(ctx, doc)
	if err != nil {
		t.Fatal(err)
	}
	var subs []string
	for _, m := range matches {
		subs = append(subs, m.Subscriber)
	}
	sort.Strings(subs)
	want := []string{"alice", "bob", "carol"}
	if fmt.Sprint(subs) != fmt.Sprint(want) {
		t.Fatalf("subscribers = %v, want %v", subs, want)
	}
	if total.PostingLists == 0 {
		t.Fatal("no posting lists accounted over TCP")
	}

	// Gossip must converge to full membership.
	deadline := time.Now().Add(3 * time.Second)
	for {
		if len(tc.gossips[4].Alive()) == 5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("gossip did not converge: %d alive", len(tc.gossips[4].Alive()))
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Stats pull over TCP.
	raw, err := tc.tns[0].Send(ctx, tc.tns[1].Self(), node.EncodeStatsPull())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := node.DecodeStatsResp(raw); err != nil {
		t.Fatal(err)
	}
}

func TestTCPAllocationRoundTrip(t *testing.T) {
	tc := startTCPCluster(t, 5)

	// 60 filters on one hot term, all homed on one node.
	for i := 1; i <= 60; i++ {
		tc.register(t, model.FilterID(i), fmt.Sprintf("u%d", i), "hotspot")
	}
	home, err := tc.ringView.HomeNode("hotspot")
	if err != nil {
		t.Fatal(err)
	}
	var homeNode *node.Node
	var peers []ring.NodeID
	for _, nd := range tc.nodes {
		if nd.ID() == home {
			homeNode = nd
		} else {
			peers = append(peers, nd.ID())
		}
	}

	// Allocate over real TCP: migrate to a 2x2 grid.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	grid, err := allocGrid(peers[:4])
	if err != nil {
		t.Fatal(err)
	}
	if err := homeNode.BuildAllocation(ctx, 1, grid); err != nil {
		t.Fatal(err)
	}

	doc := &model.Document{ID: 7, Terms: []string{"hotspot"}}
	matches, _, err := tc.nodes[0].PublishEntry(ctx, doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 60 {
		t.Fatalf("matches after TCP migration = %d, want 60", len(matches))
	}
}

// allocGrid builds a 2x2 grid from four peers.
func allocGrid(peers []ring.NodeID) (*alloc.Grid, error) {
	return alloc.NewGrid(2, 2, peers)
}
