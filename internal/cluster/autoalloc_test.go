package cluster

import (
	"context"
	"strconv"
	"sync"
	"testing"
	"time"
)

func TestReallocationRoundsKeepMatching(t *testing.T) {
	ctx := context.Background()
	c := newCluster(t, SchemeMove, 12)
	seedHotTerm(t, c, 200, 40)

	r1, err := c.Allocate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// The load pattern shifts: a second hot term emerges.
	for i := 0; i < 150; i++ {
		if _, err := c.Register(ctx, "x"+strconv.Itoa(i), []string{"newhot"}, 1, 0); err != nil {
			t.Fatal(err)
		}
	}
	c.RenewWindow()
	for i := 0; i < 40; i++ {
		if _, err := c.Publish(ctx, []string{"newhot"}); err != nil {
			t.Fatal(err)
		}
	}
	r2, err := c.Allocate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Epoch != r1.Epoch+1 {
		t.Fatalf("epochs = %d then %d", r1.Epoch, r2.Epoch)
	}

	// Both hot sets still match completely after re-allocation.
	res, err := c.Publish(ctx, []string{"hot", "newhot"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatal("publish incomplete after re-allocation")
	}
	if len(res.Matches) != 200+150 {
		t.Fatalf("matches = %d, want 350", len(res.Matches))
	}
}

func TestRenewWindowResetsStats(t *testing.T) {
	ctx := context.Background()
	c := newCluster(t, SchemeMove, 6)
	seedWorkload(t, c)
	if _, err := c.Publish(ctx, []string{"news"}); err != nil {
		t.Fatal(err)
	}
	loads, err := c.PullLoads(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var before int64
	for _, l := range loads {
		before += l.HomePublishes
	}
	if before == 0 {
		t.Fatal("no publishes recorded")
	}
	c.RenewWindow()
	loads, err = c.PullLoads(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range loads {
		if l.HomePublishes != 0 {
			t.Fatalf("node %s still has %d windowed publishes", l.ID, l.HomePublishes)
		}
	}
	if c.QCounter().Items() != 0 {
		t.Fatal("q counter not reset")
	}
}

func TestStartAutoAllocate(t *testing.T) {
	ctx := context.Background()
	c := newCluster(t, SchemeMove, 10)
	seedHotTerm(t, c, 150, 30)

	var mu sync.Mutex
	var errs []error
	stop := c.StartAutoAllocate(20*time.Millisecond, func(err error) {
		mu.Lock()
		errs = append(errs, err)
		mu.Unlock()
	})
	defer stop()

	deadline := time.Now().Add(3 * time.Second)
	for c.allocEpoch.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("auto-allocator did not run two rounds")
		}
		// Keep feeding documents so each window has statistics.
		if _, err := c.Publish(ctx, []string{"hot"}); err != nil {
			t.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	stop()
	stop() // idempotent

	mu.Lock()
	defer mu.Unlock()
	for _, err := range errs {
		t.Errorf("allocation round error: %v", err)
	}
	res, err := c.Publish(ctx, []string{"hot"})
	if err != nil || !res.Complete {
		t.Fatalf("publish after auto rounds: %v complete=%v", err, res.Complete)
	}
	if len(res.Matches) != 150 {
		t.Fatalf("matches = %d, want 150", len(res.Matches))
	}
}
