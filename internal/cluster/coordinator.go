package cluster

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/movesys/move/internal/alloc"
	"github.com/movesys/move/internal/node"
	"github.com/movesys/move/internal/ring"
)

// NodeLoad is one node's Figure 9 load sample.
type NodeLoad struct {
	ID ring.NodeID
	// StorageFilters is the number of filter definitions stored (incl.
	// replicas) — the storage cost of Figure 9(a).
	StorageFilters int64
	// DocsProcessed is the number of match frames served (one per document
	// arrival, however many terms the frame carries).
	DocsProcessed int64
	// TermsMatched is the number of term match evaluations served — the
	// matching cost of Figure 9(b), invariant to RPC framing.
	TermsMatched int64
	// PostingsScanned is the cumulative posting entries read while
	// matching, the y_p work unit.
	PostingsScanned int64
	// PostingLists is the cumulative posting-list retrievals, the y_seek
	// work unit.
	PostingLists int64
	// HomePublishes counts home-node document arrivals.
	HomePublishes int64
}

// PullLoads fetches the per-node statistics (live nodes only).
func (c *Cluster) PullLoads(ctx context.Context) ([]NodeLoad, error) {
	ctx, cancel := c.withTimeout(ctx)
	defer cancel()
	out := make([]NodeLoad, 0, len(c.nodeIDs))
	for _, id := range c.nodeIDs {
		if c.net.Failed(id) {
			continue
		}
		raw, err := c.sendTo(ctx, id, node.EncodeStatsPull())
		if err != nil {
			return nil, fmt.Errorf("cluster: stats pull from %s: %w", id, err)
		}
		s, err := node.DecodeStatsResp(raw)
		if err != nil {
			return nil, err
		}
		out = append(out, NodeLoad{
			ID:              id,
			StorageFilters:  s.Filters,
			DocsProcessed:   s.DocsProcessed,
			TermsMatched:    s.TermsMatched,
			PostingsScanned: s.PostingsScanned,
			PostingLists:    s.PostingLists,
			HomePublishes:   s.HomePublishes,
		})
	}
	return out, nil
}

// AllocationReport summarizes one §IV allocation round.
type AllocationReport struct {
	// Epoch is the allocation round number.
	Epoch uint64
	// Factors are the optimizer decisions per home node.
	Factors []alloc.Factor
	// GridsInstalled counts home nodes that received a (non-trivial) grid.
	GridsInstalled int
	// FiltersReplicated is the number of filter copies created by
	// migration (approximate, from placement bookkeeping).
	FiltersReplicated int
}

// Allocate runs one coordinator allocation round (SchemeMove only):
//
//  1. Pull per-node statistics and aggregate them into node popularity
//     p'_i and node frequency q'_i (§V: all terms of a node share one
//     allocation unit, keeping the forwarding table O(1) per node).
//  2. Solve the MOVE optimization problem for n_i and r_i.
//  3. For every home node with n_i > 1, choose allocation nodes by the
//     configured placement, build the (1/r)×(r·n) grid, and command the
//     home node to migrate its filters and install the grid.
func (c *Cluster) Allocate(ctx context.Context) (AllocationReport, error) {
	if c.cfg.Scheme != SchemeMove {
		return AllocationReport{}, fmt.Errorf("%w: allocation requires SchemeMove, have %v", ErrBadConfig, c.cfg.Scheme)
	}
	ctx, cancel := c.withTimeout(ctx)
	defer cancel()

	loads, err := c.PullLoads(ctx)
	if err != nil {
		return AllocationReport{}, err
	}
	P := c.TotalFilters()
	Q := c.TotalDocs()
	if P == 0 {
		return AllocationReport{}, fmt.Errorf("%w: no filters registered", ErrBadConfig)
	}

	var totalPublishes, totalScanned int64
	for _, l := range loads {
		totalPublishes += l.HomePublishes
		totalScanned += l.PostingsScanned
	}
	units := make([]alloc.Unit, 0, len(loads))
	for _, l := range loads {
		u := alloc.Unit{Key: string(l.ID)}
		// p'_i = Σ_{t on node} p_t = (posting entries on node)/P. Filter
		// definitions stored ≈ posting entries here because each home node
		// stores the definition once per owned term.
		u.Popularity = float64(l.StorageFilters) / float64(P)
		if totalPublishes > 0 {
			u.Frequency = float64(l.HomePublishes) / float64(totalPublishes)
		}
		// The measured matching-work share drives separation (the
		// meta-data store's statistics, §V).
		if totalScanned > 0 {
			u.Load = float64(l.PostingsScanned) / float64(totalScanned)
		}
		units = append(units, u)
	}

	in := alloc.Input{
		Units:        units,
		TotalFilters: P,
		TotalDocs:    maxInt(Q, 1),
		Nodes:        c.AliveCount(),
		Capacity:     c.cfg.Capacity,
		NoSeparation: c.cfg.AllocNoSeparation,
		ForceRatio:   c.cfg.AllocRatio,
	}
	factors, err := alloc.Compute(in, c.cfg.AllocStrategy, c.rng)
	if err != nil {
		return AllocationReport{}, err
	}

	epoch := c.allocEpoch.Add(1)
	report := AllocationReport{Epoch: epoch, Factors: factors}
	for _, f := range factors {
		if f.Rows*f.Cols <= 1 {
			continue // nothing to allocate for this node
		}
		home := ring.NodeID(f.Key)
		peers, err := c.ring.AllocationNodesOf(home, f.Rows*f.Cols, c.cfg.Placement)
		if err != nil {
			return report, fmt.Errorf("cluster: allocation nodes for %s: %w", home, err)
		}
		grid, err := alloc.FitGrid(f.Rows, f.Cols, peers)
		if err != nil || grid.Size() <= 1 {
			continue // cluster too small to allocate this unit
		}
		if _, err := c.sendTo(ctx, home, node.EncodeAllocate(epoch, grid)); err != nil {
			return report, fmt.Errorf("cluster: allocate on %s: %w", home, err)
		}
		report.GridsInstalled++
		c.recordGridPlacement(home, grid)
	}
	report.FiltersReplicated = c.countReplicas()
	return report, nil
}

// AllocateByTerm runs a per-term allocation round for the hottest topK
// terms — the fine-grained alternative to §V's per-node aggregation, kept
// as an ablation (BenchmarkAblationGrid). Each hot term's p_t and q_t come
// from the coordinator's exact term statistics; the home node migrates only
// that term's posting-list filters onto the grid. Per-term grids are
// precise but cost one forwarding-table entry per hot term and one
// optimizer unit per term, which is what the paper's aggregation avoids.
func (c *Cluster) AllocateByTerm(ctx context.Context, topK int) (AllocationReport, error) {
	if c.cfg.Scheme != SchemeMove {
		return AllocationReport{}, fmt.Errorf("%w: allocation requires SchemeMove, have %v", ErrBadConfig, c.cfg.Scheme)
	}
	if topK < 1 {
		return AllocationReport{}, fmt.Errorf("%w: topK=%d", ErrBadConfig, topK)
	}
	ctx, cancel := c.withTimeout(ctx)
	defer cancel()

	P := c.TotalFilters()
	Q := c.TotalDocs()
	if P == 0 {
		return AllocationReport{}, fmt.Errorf("%w: no filters registered", ErrBadConfig)
	}

	// Hot terms come from the bounded-memory sketch (§V's maintenance
	// concern rules out exact per-term state); the popularity of each
	// candidate is then read exactly from the filter-side counter.
	hot := c.qSketch.Top(topK)
	units := make([]alloc.Unit, 0, len(hot))
	terms := make([]string, 0, len(hot))
	for _, h := range hot {
		p := c.pCounter.Rate(h.Term)
		if p == 0 {
			continue // not a filter term; nothing to allocate
		}
		q := float64(h.Count) / float64(maxInt(Q, 1))
		units = append(units, alloc.Unit{
			Key:        h.Term,
			Popularity: p,
			Frequency:  q,
			Load:       p * q,
		})
		terms = append(terms, h.Term)
	}
	if len(units) == 0 {
		return AllocationReport{}, fmt.Errorf("%w: no hot filter terms", ErrBadConfig)
	}
	in := alloc.Input{
		Units:        units,
		TotalFilters: P,
		TotalDocs:    maxInt(Q, 1),
		Nodes:        c.AliveCount(),
		Capacity:     c.cfg.Capacity,
		NoSeparation: c.cfg.AllocNoSeparation,
		ForceRatio:   c.cfg.AllocRatio,
	}
	factors, err := alloc.Compute(in, c.cfg.AllocStrategy, c.rng)
	if err != nil {
		return AllocationReport{}, err
	}

	epoch := c.allocEpoch.Add(1)
	report := AllocationReport{Epoch: epoch, Factors: factors}
	for i, f := range factors {
		if f.Rows*f.Cols <= 1 {
			continue
		}
		term := terms[i]
		home, err := c.ring.HomeNode(term)
		if err != nil {
			return report, err
		}
		peers, err := c.ring.AllocationNodes(term, f.Rows*f.Cols, c.cfg.Placement)
		if err != nil {
			return report, fmt.Errorf("cluster: allocation nodes for term %q: %w", term, err)
		}
		grid, err := alloc.FitGrid(f.Rows, f.Cols, peers)
		if err != nil || grid.Size() <= 1 {
			continue
		}
		if _, err := c.sendTo(ctx, home, node.EncodeAllocateTerm(epoch, term, grid)); err != nil {
			return report, fmt.Errorf("cluster: term-allocate %q on %s: %w", term, home, err)
		}
		report.GridsInstalled++
		c.recordGridPlacement(home, grid)
	}
	report.FiltersReplicated = c.countReplicas()
	return report, nil
}

// recordGridPlacement extends the availability bookkeeping with the grid
// copies created for every filter homed on `home`.
func (c *Cluster) recordGridPlacement(home ring.NodeID, grid *alloc.Grid) {
	c.placementMu.Lock()
	defer c.placementMu.Unlock()
	for id, holders := range c.filterHolders {
		onHome := false
		for _, h := range holders {
			if h == home {
				onHome = true
				break
			}
		}
		if !onHome {
			continue
		}
		existing := make(map[ring.NodeID]struct{}, len(holders))
		for _, h := range holders {
			existing[h] = struct{}{}
		}
		for _, nd := range grid.FilterNodes(id) {
			if _, dup := existing[nd]; dup {
				continue
			}
			c.filterHolders[id] = append(c.filterHolders[id], nd)
		}
	}
}

// countReplicas sums holder counts beyond the first copy.
func (c *Cluster) countReplicas() int {
	c.placementMu.RLock()
	defer c.placementMu.RUnlock()
	n := 0
	for _, holders := range c.filterHolders {
		n += len(holders) - 1
	}
	return n
}

// RenewWindow resets the windowed document statistics on every live node —
// the §V refresh ("every 10 minutes, the values of q_i are renewed based on
// new incoming documents"). Called between allocation rounds so q'_i
// reflects the current pattern rather than all of history.
func (c *Cluster) RenewWindow() {
	for _, id := range c.nodeIDs {
		if c.net.Failed(id) {
			continue
		}
		c.nodes[id].ResetWindowCounters()
	}
	c.qCounter.Reset()
	c.qSketch.Reset()
}

// StartAutoAllocate launches the periodic allocation loop: every interval
// it runs one Allocate round and renews the statistics window. The
// returned stop function halts the loop and waits for it to exit. Errors
// from individual rounds (e.g. no filters yet) are delivered to onErr if
// non-nil and otherwise dropped — the loop keeps going.
func (c *Cluster) StartAutoAllocate(interval time.Duration, onErr func(error)) (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				if _, err := c.Allocate(context.Background()); err != nil {
					if onErr != nil {
						onErr(err)
					}
					continue
				}
				c.RenewWindow()
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			wg.Wait()
		})
	}
}

// TransferStats reports document-transfer accounting for the cost model.
type TransferStats struct {
	// Total is the number of transfer attempts.
	Total int64
	// IntraRack is how many stayed within a rack.
	IntraRack int64
	// PerNodeReceived maps receivers to transfer counts.
	PerNodeReceived map[ring.NodeID]int64
	// PerNodeReceivedIntra maps receivers to intra-rack transfer counts.
	PerNodeReceivedIntra map[ring.NodeID]int64
}

// Transfers snapshots the transfer accounting.
func (c *Cluster) Transfers() TransferStats {
	c.transferMu.Lock()
	defer c.transferMu.Unlock()
	per := make(map[ring.NodeID]int64, len(c.perNodeRecv))
	for id, n := range c.perNodeRecv {
		per[id] = n
	}
	local := make(map[ring.NodeID]int64, len(c.perNodeRecvLocal))
	for id, n := range c.perNodeRecvLocal {
		local[id] = n
	}
	return TransferStats{
		Total:                c.transferTotal,
		IntraRack:            c.transferLocal,
		PerNodeReceived:      per,
		PerNodeReceivedIntra: local,
	}
}

// ResetTransferStats zeroes the transfer accounting (between experiment
// phases).
func (c *Cluster) ResetTransferStats() {
	c.transferMu.Lock()
	defer c.transferMu.Unlock()
	c.transferTotal = 0
	c.transferLocal = 0
	c.perNodeRecv = make(map[ring.NodeID]int64)
	c.perNodeRecvLocal = make(map[ring.NodeID]int64)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
