package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/movesys/move/internal/alloc"
	"github.com/movesys/move/internal/model"
	"github.com/movesys/move/internal/node"
	"github.com/movesys/move/internal/ring"
)

// NodeLoad is one node's Figure 9 load sample.
type NodeLoad struct {
	ID ring.NodeID
	// StorageFilters is the number of filter definitions stored (incl.
	// replicas) — the storage cost of Figure 9(a).
	StorageFilters int64
	// DocsProcessed is the number of match frames served (one per document
	// arrival, however many terms the frame carries).
	DocsProcessed int64
	// TermsMatched is the number of term match evaluations served — the
	// matching cost of Figure 9(b), invariant to RPC framing.
	TermsMatched int64
	// PostingsScanned is the cumulative posting entries read while
	// matching, the y_p work unit.
	PostingsScanned int64
	// PostingLists is the cumulative posting-list retrievals, the y_seek
	// work unit.
	PostingLists int64
	// HomePublishes counts home-node document arrivals.
	HomePublishes int64
}

// PullLoads fetches the per-node statistics. Degrades gracefully: a node
// that dies or errors mid-pull is skipped (counted on realloc.stats.skipped)
// and the round proceeds on the survivors' samples — only a round where no
// node at all responds fails.
func (c *Cluster) PullLoads(ctx context.Context) ([]NodeLoad, error) {
	ctx, cancel := c.withTimeout(ctx)
	defer cancel()
	skipped := c.metrics.Counter("realloc.stats.skipped")
	out := make([]NodeLoad, 0, len(c.nodeIDs))
	for _, id := range c.nodeIDs {
		if c.net.Failed(id) {
			continue
		}
		if c.pullHook != nil {
			if err := c.pullHook(id); err != nil {
				skipped.Inc()
				continue
			}
		}
		raw, err := c.sendTo(ctx, id, node.EncodeStatsPull())
		if err != nil {
			skipped.Inc()
			continue
		}
		s, err := node.DecodeStatsResp(raw)
		if err != nil {
			skipped.Inc()
			continue
		}
		out = append(out, NodeLoad{
			ID:              id,
			StorageFilters:  s.Filters,
			DocsProcessed:   s.DocsProcessed,
			TermsMatched:    s.TermsMatched,
			PostingsScanned: s.PostingsScanned,
			PostingLists:    s.PostingLists,
			HomePublishes:   s.HomePublishes,
		})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cluster: stats pull: no node responded")
	}
	return out, nil
}

// AllocationReport summarizes one §IV allocation round.
type AllocationReport struct {
	// Epoch is the allocation round number.
	Epoch uint64
	// Factors are the optimizer decisions per home node.
	Factors []alloc.Factor
	// GridsInstalled counts home nodes that received a (non-trivial) grid.
	GridsInstalled int
	// FiltersReplicated is the number of filter copies created by
	// migration (approximate, from placement bookkeeping).
	FiltersReplicated int
}

// Allocate runs one coordinator allocation round (SchemeMove only):
//
//  1. Pull per-node statistics and aggregate them into node popularity
//     p'_i and node frequency q'_i (§V: all terms of a node share one
//     allocation unit, keeping the forwarding table O(1) per node).
//  2. Solve the MOVE optimization problem for n_i and r_i.
//  3. Two-phase cutover (§13). Prepare: every home with a changed
//     non-trivial grid installs it as pending (opening its dual-read
//     window) and migrates its filters to the new placements. Any prepare
//     failure aborts the whole round — an epoch-wide abort broadcast
//     unwinds journaled migrations and the cluster stays on the old epoch
//     with no partial state. Commit: once all prepares acked, a commit
//     broadcast promotes the pending grids atomically and the retired
//     placements are garbage-collected (with a one-round grace so
//     publishes in flight across the cutover still find every copy).
func (c *Cluster) Allocate(ctx context.Context) (AllocationReport, error) {
	if c.cfg.Scheme != SchemeMove {
		return AllocationReport{}, fmt.Errorf("%w: allocation requires SchemeMove, have %v", ErrBadConfig, c.cfg.Scheme)
	}
	if c.allocRoundHook != nil {
		c.allocRoundHook()
	}
	roundStart := time.Now()
	ctx, cancel := c.withTimeout(ctx)
	defer cancel()

	loads, err := c.PullLoads(ctx)
	if err != nil {
		return AllocationReport{}, err
	}
	P := c.TotalFilters()
	Q := c.TotalDocs()
	if P == 0 {
		return AllocationReport{}, fmt.Errorf("%w: no filters registered", ErrBadConfig)
	}

	var totalPublishes, totalScanned int64
	for _, l := range loads {
		totalPublishes += l.HomePublishes
		totalScanned += l.PostingsScanned
	}
	units := make([]alloc.Unit, 0, len(loads))
	for _, l := range loads {
		u := alloc.Unit{Key: string(l.ID)}
		// p'_i = Σ_{t on node} p_t = (posting entries on node)/P. Filter
		// definitions stored ≈ posting entries here because each home node
		// stores the definition once per owned term.
		u.Popularity = float64(l.StorageFilters) / float64(P)
		if totalPublishes > 0 {
			u.Frequency = float64(l.HomePublishes) / float64(totalPublishes)
		}
		// The measured matching-work share drives separation (the
		// meta-data store's statistics, §V).
		if totalScanned > 0 {
			u.Load = float64(l.PostingsScanned) / float64(totalScanned)
		}
		units = append(units, u)
	}

	in := alloc.Input{
		Units:        units,
		TotalFilters: P,
		TotalDocs:    maxInt(Q, 1),
		Nodes:        c.AliveCount(),
		Capacity:     c.cfg.Capacity,
		NoSeparation: c.cfg.AllocNoSeparation,
		ForceRatio:   c.cfg.AllocRatio,
	}
	factors, err := alloc.Compute(in, c.cfg.AllocStrategy, c.rng)
	if err != nil {
		return AllocationReport{}, err
	}

	epoch := c.allocEpoch.Add(1)
	report := AllocationReport{Epoch: epoch, Factors: factors}

	// Plan the prepare set: every home whose new grid is non-trivial and
	// actually differs from the one it already serves. A home that died
	// since the stats pull is skipped — churn mid-round must not wedge the
	// coordinator.
	type prep struct {
		home ring.NodeID
		grid *alloc.Grid
	}
	var preps []prep
	for _, f := range factors {
		if f.Rows*f.Cols <= 1 {
			continue // nothing to allocate for this node
		}
		home := ring.NodeID(f.Key)
		if c.net.Failed(home) {
			continue // died between stats pull and planning
		}
		peers, err := c.ring.AllocationNodesOf(home, f.Rows*f.Cols, c.cfg.Placement)
		if err != nil {
			continue // home left the ring mid-round
		}
		grid, err := alloc.FitGrid(f.Rows, f.Cols, peers)
		if err != nil || grid.Size() <= 1 {
			continue // cluster too small to allocate this unit
		}
		c.gridsMu.Lock()
		unchanged := grid.Equal(c.committedGrids[home])
		c.gridsMu.Unlock()
		if unchanged {
			report.GridsInstalled++ // placement already live; nothing to move
			continue
		}
		preps = append(preps, prep{home: home, grid: grid})
	}

	// Prepare phase. The first failure aborts the round: every node gets an
	// epoch-wide abort (unwinding journaled migrations and pending grids)
	// and the committed epoch is untouched.
	for _, p := range preps {
		err := error(nil)
		if c.prepareHook != nil {
			err = c.prepareHook(p.home)
		}
		if err == nil {
			_, err = c.sendTo(ctx, p.home, node.EncodePrepareAlloc(epoch, p.grid))
		}
		if err != nil {
			actx, acancel := c.withTimeout(context.Background())
			aerr := c.broadcastEpochCtl(actx, node.EncodeAbortGrid(epoch))
			acancel()
			c.metrics.Counter("realloc.rounds.aborted").Inc()
			c.metrics.Histogram("realloc.round.latency").Observe(time.Since(roundStart))
			return report, errors.Join(
				fmt.Errorf("cluster: realloc epoch %d aborted: prepare on %s: %w", epoch, p.home, err),
				aerr)
		}
	}

	// Commit phase: the cutover barrier. Every live node promotes its
	// pending grid (a no-op for non-participants). A node that misses the
	// commit just keeps dual-reading until a later round re-prepares it —
	// extra fan-out, never lost matches — so commit errors degrade the GC
	// (below) instead of failing the round.
	commitErr := c.broadcastEpochCtl(ctx, node.EncodeCommitGrid(epoch))
	c.committedEpoch.Store(epoch)
	c.metrics.Counter("realloc.rounds.committed").Inc()
	c.metrics.Counter("realloc.epoch").Set(int64(epoch))
	c.metrics.Histogram("realloc.round.latency").Observe(time.Since(roundStart))

	c.gridsMu.Lock()
	for _, p := range preps {
		if old, ok := c.committedGrids[p.home]; ok {
			c.prevGrids = append(c.prevGrids, old)
		}
		c.committedGrids[p.home] = p.grid
	}
	c.gridsMu.Unlock()
	for _, p := range preps {
		report.GridsInstalled++
		c.recordGridPlacement(p.home, p.grid)
	}

	c.runGridGC(ctx, commitErr != nil)
	report.FiltersReplicated = c.countReplicas()
	return report, nil
}

// broadcastEpochCtl sends an epoch control frame (commit or abort) to every
// live node, aggregating per-node errors.
func (c *Cluster) broadcastEpochCtl(ctx context.Context, payload []byte) error {
	var errs []error
	for _, id := range c.nodeIDs {
		if c.net.Failed(id) {
			continue
		}
		if _, err := c.sendTo(ctx, id, payload); err != nil {
			errs = append(errs, fmt.Errorf("cluster: epoch control on %s: %w", id, err))
		}
	}
	return errors.Join(errs...)
}

// runGridGC drops the filter copies stranded on retired placements after a
// committed cutover. The keep set for a filter is its original homes (never
// collected — §13) plus its placements under every live grid: the committed
// node and term grids, and the grids retired by the most recent round, which
// get one extra round of grace for publishes in flight across the cutover.
// When the commit broadcast had errors the GC only accumulates grace —
// nothing is dropped, because an uncommitted node may still be serving an
// old grid.
func (c *Cluster) runGridGC(ctx context.Context, conservative bool) {
	c.gridsMu.Lock()
	keepGrids := make([]*alloc.Grid, 0, len(c.committedGrids)+len(c.committedTermGrids)+len(c.prevGrids))
	for _, g := range c.committedGrids {
		keepGrids = append(keepGrids, g)
	}
	for _, g := range c.committedTermGrids {
		keepGrids = append(keepGrids, g)
	}
	keepGrids = append(keepGrids, c.prevGrids...)
	if !conservative {
		// The grace window ends here for grids retired before this round;
		// grids retired by this round were appended above and survive until
		// the next successful GC.
		c.prevGrids = nil
	}
	c.gridsMu.Unlock()
	if conservative {
		return
	}

	// Diff the holder bookkeeping against the keep set and batch the drops
	// per node.
	drops := make(map[ring.NodeID][]model.FilterID)
	c.placementMu.Lock()
	for id, holders := range c.filterHolders {
		needed := make(map[ring.NodeID]struct{}, len(holders))
		for _, h := range c.homeHolders[id] {
			needed[h] = struct{}{}
		}
		for _, g := range keepGrids {
			for _, nd := range g.FilterNodes(id) {
				needed[nd] = struct{}{}
			}
		}
		kept := make([]ring.NodeID, 0, len(holders))
		for _, h := range holders {
			if _, ok := needed[h]; ok {
				kept = append(kept, h)
			} else {
				drops[h] = append(drops[h], id)
			}
		}
		c.filterHolders[id] = kept
	}
	c.placementMu.Unlock()

	dropped := 0
	for nd, ids := range drops {
		if c.net.Failed(nd) {
			continue // unreachable; stale copies only ever add true matches
		}
		if _, err := c.sendTo(ctx, nd, node.EncodeUnregisterBatch(ids)); err != nil {
			continue // ditto: lingering copies are benign
		}
		dropped += len(ids)
	}
	if dropped > 0 {
		c.metrics.Counter("realloc.gc.filters").Add(int64(dropped))
	}
}

// AllocateByTerm runs a per-term allocation round for the hottest topK
// terms — the fine-grained alternative to §V's per-node aggregation, kept
// as an ablation (BenchmarkAblationGrid). Each hot term's p_t and q_t come
// from the coordinator's exact term statistics; the home node migrates only
// that term's posting-list filters onto the grid. Per-term grids are
// precise but cost one forwarding-table entry per hot term and one
// optimizer unit per term, which is what the paper's aggregation avoids.
func (c *Cluster) AllocateByTerm(ctx context.Context, topK int) (AllocationReport, error) {
	if c.cfg.Scheme != SchemeMove {
		return AllocationReport{}, fmt.Errorf("%w: allocation requires SchemeMove, have %v", ErrBadConfig, c.cfg.Scheme)
	}
	if topK < 1 {
		return AllocationReport{}, fmt.Errorf("%w: topK=%d", ErrBadConfig, topK)
	}
	ctx, cancel := c.withTimeout(ctx)
	defer cancel()

	P := c.TotalFilters()
	Q := c.TotalDocs()
	if P == 0 {
		return AllocationReport{}, fmt.Errorf("%w: no filters registered", ErrBadConfig)
	}

	// Hot terms come from the bounded-memory sketch (§V's maintenance
	// concern rules out exact per-term state); the popularity of each
	// candidate is then read exactly from the filter-side counter.
	hot := c.qSketch.Top(topK)
	units := make([]alloc.Unit, 0, len(hot))
	terms := make([]string, 0, len(hot))
	for _, h := range hot {
		p := c.pCounter.Rate(h.Term)
		if p == 0 {
			continue // not a filter term; nothing to allocate
		}
		q := float64(h.Count) / float64(maxInt(Q, 1))
		units = append(units, alloc.Unit{
			Key:        h.Term,
			Popularity: p,
			Frequency:  q,
			Load:       p * q,
		})
		terms = append(terms, h.Term)
	}
	if len(units) == 0 {
		return AllocationReport{}, fmt.Errorf("%w: no hot filter terms", ErrBadConfig)
	}
	in := alloc.Input{
		Units:        units,
		TotalFilters: P,
		TotalDocs:    maxInt(Q, 1),
		Nodes:        c.AliveCount(),
		Capacity:     c.cfg.Capacity,
		NoSeparation: c.cfg.AllocNoSeparation,
		ForceRatio:   c.cfg.AllocRatio,
	}
	factors, err := alloc.Compute(in, c.cfg.AllocStrategy, c.rng)
	if err != nil {
		return AllocationReport{}, err
	}

	epoch := c.allocEpoch.Add(1)
	report := AllocationReport{Epoch: epoch, Factors: factors}
	for i, f := range factors {
		if f.Rows*f.Cols <= 1 {
			continue
		}
		term := terms[i]
		home, err := c.ring.HomeNode(term)
		if err != nil {
			return report, err
		}
		peers, err := c.ring.AllocationNodes(term, f.Rows*f.Cols, c.cfg.Placement)
		if err != nil {
			return report, fmt.Errorf("cluster: allocation nodes for term %q: %w", term, err)
		}
		grid, err := alloc.FitGrid(f.Rows, f.Cols, peers)
		if err != nil || grid.Size() <= 1 {
			continue
		}
		if _, err := c.sendTo(ctx, home, node.EncodeAllocateTerm(epoch, term, grid)); err != nil {
			return report, fmt.Errorf("cluster: term-allocate %q on %s: %w", term, home, err)
		}
		// Per-term grids cut over with the legacy hard flip, but their
		// placements join the GC keep set (retired ones with grace) so a
		// later two-phase round cannot collect them.
		c.gridsMu.Lock()
		if old, ok := c.committedTermGrids[term]; ok {
			c.prevGrids = append(c.prevGrids, old)
		}
		c.committedTermGrids[term] = grid
		c.gridsMu.Unlock()
		report.GridsInstalled++
		c.recordGridPlacement(home, grid)
	}
	report.FiltersReplicated = c.countReplicas()
	return report, nil
}

// recordGridPlacement extends the availability bookkeeping with the grid
// copies created for every filter homed on `home`.
func (c *Cluster) recordGridPlacement(home ring.NodeID, grid *alloc.Grid) {
	c.placementMu.Lock()
	defer c.placementMu.Unlock()
	for id, holders := range c.filterHolders {
		onHome := false
		for _, h := range holders {
			if h == home {
				onHome = true
				break
			}
		}
		if !onHome {
			continue
		}
		existing := make(map[ring.NodeID]struct{}, len(holders))
		for _, h := range holders {
			existing[h] = struct{}{}
		}
		for _, nd := range grid.FilterNodes(id) {
			if _, dup := existing[nd]; dup {
				continue
			}
			c.filterHolders[id] = append(c.filterHolders[id], nd)
		}
	}
}

// countReplicas sums holder counts beyond the first copy.
func (c *Cluster) countReplicas() int {
	c.placementMu.RLock()
	defer c.placementMu.RUnlock()
	n := 0
	for _, holders := range c.filterHolders {
		n += len(holders) - 1
	}
	return n
}

// RenewWindow resets the windowed document statistics on every live node —
// the §V refresh ("every 10 minutes, the values of q_i are renewed based on
// new incoming documents"). Called between allocation rounds so q'_i
// reflects the current pattern rather than all of history.
func (c *Cluster) RenewWindow() {
	for _, id := range c.nodeIDs {
		if c.net.Failed(id) {
			continue
		}
		c.nodes[id].ResetWindowCounters()
	}
	c.qCounter.Reset()
	c.qSketch.Reset()
}

// StartAutoAllocate launches the periodic allocation loop: every interval
// (or sooner, when KickAllocate signals a membership change) it runs one
// Allocate round and renews the statistics window. The returned stop
// function halts the loop and waits for it to exit.
//
// The loop is unkillable: a panicking or persistently erroring round is
// recovered, reported to onErr if non-nil, counted on
// realloc.loop.failures, and followed by an exponential backoff (capped at
// 32× the interval) before the next attempt. A successful round clears the
// failure streak.
func (c *Cluster) StartAutoAllocate(interval time.Duration, onErr func(error)) (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		failG := c.metrics.Counter("realloc.loop.failures")
		failures := 0
		runOnce := func() {
			if err := c.safeAllocate(); err != nil {
				failures++
				failG.Set(int64(failures))
				if onErr != nil {
					onErr(err)
				}
				shift := failures - 1
				if shift > 5 {
					shift = 5
				}
				select {
				case <-time.After(interval << shift):
				case <-done:
				}
				return
			}
			failures = 0
			failG.Set(0)
			c.RenewWindow()
		}
		for {
			select {
			case <-ticker.C:
				runOnce()
			case <-c.allocKick:
				runOnce()
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			wg.Wait()
		})
	}
}

// safeAllocate runs one allocation round with panic containment — a bug in
// the optimizer or a hook must not kill the auto-allocate goroutine.
func (c *Cluster) safeAllocate() (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("cluster: allocation round panicked: %v", r)
		}
	}()
	_, err = c.Allocate(context.Background())
	return err
}

// TransferStats reports document-transfer accounting for the cost model.
type TransferStats struct {
	// Total is the number of transfer attempts.
	Total int64
	// IntraRack is how many stayed within a rack.
	IntraRack int64
	// PerNodeReceived maps receivers to transfer counts.
	PerNodeReceived map[ring.NodeID]int64
	// PerNodeReceivedIntra maps receivers to intra-rack transfer counts.
	PerNodeReceivedIntra map[ring.NodeID]int64
}

// Transfers snapshots the transfer accounting.
func (c *Cluster) Transfers() TransferStats {
	c.transferMu.Lock()
	defer c.transferMu.Unlock()
	per := make(map[ring.NodeID]int64, len(c.perNodeRecv))
	for id, n := range c.perNodeRecv {
		per[id] = n
	}
	local := make(map[ring.NodeID]int64, len(c.perNodeRecvLocal))
	for id, n := range c.perNodeRecvLocal {
		local[id] = n
	}
	return TransferStats{
		Total:                c.transferTotal,
		IntraRack:            c.transferLocal,
		PerNodeReceived:      per,
		PerNodeReceivedIntra: local,
	}
}

// ResetTransferStats zeroes the transfer accounting (between experiment
// phases).
func (c *Cluster) ResetTransferStats() {
	c.transferMu.Lock()
	defer c.transferMu.Unlock()
	c.transferTotal = 0
	c.transferLocal = 0
	c.perNodeRecv = make(map[ring.NodeID]int64)
	c.perNodeRecvLocal = make(map[ring.NodeID]int64)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
