package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/movesys/move/internal/model"
	"github.com/movesys/move/internal/resilience"
	"github.com/movesys/move/internal/ring"
	"github.com/movesys/move/internal/transport"
)

// churnRounds returns the soak length: short by default so the race
// detector's CI budget holds, CHURN_ROUNDS=100 for the full `make
// soak-churn` run the acceptance criteria demand.
func churnRounds(t *testing.T) int {
	if v := os.Getenv("CHURN_ROUNDS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("CHURN_ROUNDS=%q is not a positive integer", v)
		}
		return n
	}
	return 12
}

// canonicalIDs renders a match list as a canonical string — the
// byte-identical comparison the zero-loss guarantee is asserted with.
func canonicalIDs(ids []model.FilterID) string {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var b strings.Builder
	for _, id := range ids {
		fmt.Fprintf(&b, "%d,", id)
	}
	return b.String()
}

// assertAggregatedCovers verifies the cluster serves from the aggregated
// (covering) index and that its compression accounting stayed exact across
// every epoch of the run: each node's live cover members equal its filter
// count (no dropped or phantom index entries survived migration, abort
// unwinding, or crash churn), the stored posting entries never exceed the
// flat-equivalent logical postings, and the savings arithmetic is
// internally consistent.
func assertAggregatedCovers(t *testing.T, c *Cluster) {
	t.Helper()
	totalCovers, totalMembers, totalSaved := 0, 0, 0
	for _, id := range c.nodeIDs {
		ix := c.nodes[id].Index()
		if !ix.Aggregated() {
			t.Fatalf("node %s: index is not aggregated", id)
		}
		cs := ix.CoverStats()
		if live := ix.LiveFilters(); cs.CoveredFilters != live {
			t.Fatalf("node %s: %d covered filters but the index holds %d live definitions", id, cs.CoveredFilters, live)
		}
		if cs.StoredEntries > cs.LogicalPostings {
			t.Fatalf("node %s: stored %d posting entries for only %d logical postings", id, cs.StoredEntries, cs.LogicalPostings)
		}
		if want := cs.LogicalPostings - cs.StoredEntries; cs.PostingsSaved != want {
			t.Fatalf("node %s: PostingsSaved = %d, want %d (logical %d - stored %d)",
				id, cs.PostingsSaved, want, cs.LogicalPostings, cs.StoredEntries)
		}
		if cs.CoveredFilters > 0 && cs.Covers == 0 {
			t.Fatalf("node %s: %d live filters but no live covers", id, cs.CoveredFilters)
		}
		totalCovers += cs.Covers
		totalMembers += cs.CoveredFilters
		totalSaved += cs.PostingsSaved
	}
	// The workloads register many same-signature filters, so aggregation
	// must actually have compressed: strictly fewer covers than members.
	if totalMembers > 0 && totalCovers >= totalMembers {
		t.Fatalf("no cover sharing: %d covers for %d filters", totalCovers, totalMembers)
	}
	t.Logf("cover integrity: %d covers / %d filters cluster-wide, %d posting entries saved",
		totalCovers, totalMembers, totalSaved)
}

// TestChurnSoak drives the two-phase reallocation protocol through a
// Zipf-drifting workload with flash crowds, seeded fault injection on the
// data path, and periodic crash/recover churn. On every single publish the
// reported match set must be byte-identical to a brute-force oracle —
// including publishes racing a reallocation round through its dual-read
// window. Rounds that abort (a grid target died mid-prepare) must leave the
// cluster on the old epoch with no partial state.
func TestChurnSoak(t *testing.T) {
	ctx := context.Background()
	c, err := New(Config{
		Scheme:   SchemeMove,
		Nodes:    12,
		RackSize: 3,
		Capacity: 100_000,
		Seed:     7,
		Fault: &transport.FaultConfig{
			Seed:    7,
			Default: transport.FaultProbs{Drop: 0.01, Error: 0.01, Duplicate: 0.01},
		},
		Resilience: &resilience.Policy{
			MaxAttempts:      5,
			BaseDelay:        200 * time.Microsecond,
			MaxDelay:         2 * time.Millisecond,
			BreakerThreshold: 12,
			BreakerCooldown:  20 * time.Millisecond,
			Retryable:        transport.IsAvailabilityError,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))

	// Brute-force oracle: every registered filter with its terms.
	oracle := make(map[model.FilterID][]string)
	register := func(sub string, terms []string) {
		t.Helper()
		id, err := c.Register(ctx, sub, terms, model.MatchAny, 0)
		if err != nil {
			t.Fatal(err)
		}
		oracle[id] = terms
	}
	oracleMatch := func(doc []string) string {
		set := make(map[string]struct{}, len(doc))
		for _, d := range doc {
			set[d] = struct{}{}
		}
		var ids []model.FilterID
		for id, terms := range oracle {
			for _, ft := range terms {
				if _, ok := set[ft]; ok {
					ids = append(ids, id)
					break
				}
			}
		}
		return canonicalIDs(ids)
	}
	// checkPublish publishes doc and asserts byte-identical match sets.
	checkPublish := func(round int, doc []string) {
		t.Helper()
		res, err := c.Publish(ctx, doc)
		if err != nil {
			t.Fatalf("round %d: publish %v: %v", round, doc, err)
		}
		got := canonicalIDs(matchIDs(res.Matches))
		if want := oracleMatch(doc); got != want {
			t.Fatalf("round %d: dropped or phantom matches for %v:\n got %s\nwant %s", round, doc, got, want)
		}
	}

	// Zipf-drifting vocabulary: 40 keyword slots; the rank→slot mapping
	// rotates every round so the hot set migrates between home nodes.
	const vocab = 40
	zipf := rand.NewZipf(rng, 1.3, 1.0, vocab-1)
	term := func(round int) string {
		return fmt.Sprintf("k%d", (int(zipf.Uint64())+round)%vocab)
	}

	for i := 0; i < 200; i++ {
		register("seed"+strconv.Itoa(i), []string{term(0), term(0)})
	}
	for i := 0; i < 30; i++ {
		checkPublish(0, []string{term(0), term(0)})
	}

	rounds := churnRounds(t)
	aborted, committed := 0, 0
	for round := 1; round <= rounds; round++ {
		// Drift: new filters follow the rotated keyword ranking.
		for i := 0; i < 10; i++ {
			register(fmt.Sprintf("r%d-%d", round, i), []string{term(round), term(round)})
		}
		// Flash crowd every 4th round: a cold term becomes the hottest
		// thing in the system inside one round.
		flash := ""
		if round%4 == 0 {
			flash = "flash" + strconv.Itoa(round)
			for i := 0; i < 40; i++ {
				register(fmt.Sprintf("f%d-%d", round, i), []string{flash})
			}
			for i := 0; i < 25; i++ {
				checkPublish(round, []string{flash, term(round)})
			}
		}

		if round%5 == 2 {
			// Forced-abort round. Simulate a coordinator restart (its
			// committed-grid memory is wiped, so every home re-prepares)
			// and crash the second prepare mid-round: the first home has
			// already installed a pending grid and replayed its migrations
			// when the abort broadcast goes out. Everything must unwind
			// under the live workload.
			c.gridsMu.Lock()
			if len(c.committedGrids) < 2 {
				c.gridsMu.Unlock()
				t.Fatalf("round %d: only %d committed grids; soak workload too cold to force an abort", round, len(c.committedGrids))
			}
			for home, g := range c.committedGrids {
				c.prevGrids = append(c.prevGrids, g)
				delete(c.committedGrids, home)
			}
			c.gridsMu.Unlock()
			before := c.CommittedEpoch()
			beforeCopies := totalStoredFilters(c)
			calls := 0
			c.prepareHook = func(ring.NodeID) error {
				calls++
				if calls == 2 {
					return fmt.Errorf("injected mid-prepare crash")
				}
				return nil
			}
			_, aerr := c.Allocate(ctx)
			c.prepareHook = nil
			if aerr == nil {
				t.Fatalf("round %d: forced-abort round committed; the hook saw %d prepares", round, calls)
			}
			aborted++
			if got := c.CommittedEpoch(); got != before {
				t.Fatalf("round %d: aborted round moved the committed epoch %d -> %d", round, before, got)
			}
			assertNoPendingState(t, c, before)
			if after := totalStoredFilters(c); after != beforeCopies {
				t.Fatalf("round %d: abort leaked filter copies: %d -> %d", round, beforeCopies, after)
			}
			for i := 0; i < 10; i++ {
				checkPublish(round, []string{term(round), term(round)})
			}
		}

		if round%3 == 0 {
			// Churn round: crash a slice of the cluster and reallocate.
			// Publishing pauses — with nodes down, completeness is out of
			// scope (covered by TestSoakFailureRecoveryCycles); this round
			// is about the coordinator surviving and aborting cleanly.
			before := c.CommittedEpoch()
			victims := c.FailFraction(0.25, round%2 == 0)
			if _, err := c.Allocate(ctx); err != nil {
				aborted++
				if got := c.CommittedEpoch(); got != before {
					t.Fatalf("round %d: aborted round moved the committed epoch %d -> %d", round, before, got)
				}
				assertNoPendingState(t, c, before)
			} else {
				committed++
				if got := c.CommittedEpoch(); got <= before {
					t.Fatalf("round %d: committed round left epoch at %d", round, got)
				}
			}
			c.RecoverNodes(victims...)
		}

		// Reallocation concurrent with live publishes: every publish below
		// races the prepare/migrate/commit pipeline and must still match
		// the oracle exactly (the dual-read window guarantee).
		done := make(chan error, 1)
		go func() {
			_, err := c.Allocate(context.Background())
			done <- err
		}()
		docs := 20
		for i := 0; i < docs; i++ {
			doc := []string{term(round), term(round)}
			if flash != "" && i%3 == 0 {
				doc = append(doc, flash)
			}
			checkPublish(round, doc)
		}
		if err := <-done; err != nil {
			// A data-path fault burst exhausted a migration's retries:
			// the round aborts, the old epoch keeps serving.
			aborted++
			assertNoPendingState(t, c, c.CommittedEpoch())
		} else {
			committed++
		}
		// Post-round: the cutover (or abort) settled; matching must be
		// exact with no dual-read leftovers, and the covering index's
		// accounting must have survived the epoch boundary intact.
		for i := 0; i < 10; i++ {
			checkPublish(round, []string{term(round), term(round)})
		}
		assertAggregatedCovers(t, c)
	}

	if committed == 0 {
		t.Fatal("soak committed no reallocation rounds")
	}
	t.Logf("churn soak: %d rounds (%d committed, %d aborted), %d filters, final epoch %d",
		rounds, committed, aborted, len(oracle), c.CommittedEpoch())

	// The dual-read window instrumentation saw real cutovers and the epoch
	// gauge agrees with the coordinator.
	if h, ok := c.Metrics().Histograms()["realloc.dualread.window"]; !ok || h.Count == 0 {
		t.Fatal("realloc.dualread.window histogram is empty; no dual-read window was ever observed")
	}
	if snap := c.Metrics().Snapshot(); snap["realloc.epoch"] != int64(c.CommittedEpoch()) {
		t.Fatalf("realloc.epoch gauge = %d, coordinator says %d", snap["realloc.epoch"], c.CommittedEpoch())
	}
}
