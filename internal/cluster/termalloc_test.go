package cluster

import (
	"context"
	"errors"
	"strconv"
	"testing"
)

// seedHotTerm registers many single-term filters on "hot" plus some noise,
// then publishes enough documents that the statistics are meaningful.
func seedHotTerm(t *testing.T, c *Cluster, filters, docs int) {
	t.Helper()
	ctx := context.Background()
	for i := 0; i < filters; i++ {
		terms := []string{"hot"}
		if i%4 == 0 {
			terms = append(terms, "noise"+strconv.Itoa(i%50))
		}
		if _, err := c.Register(ctx, "s"+strconv.Itoa(i), terms, 1, 0); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < docs; i++ {
		if _, err := c.Publish(ctx, []string{"hot", "pad" + strconv.Itoa(i%30)}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAllocateByTermInstallsTermGrid(t *testing.T) {
	ctx := context.Background()
	c := newCluster(t, SchemeMove, 15)
	seedHotTerm(t, c, 300, 50)

	report, err := c.AllocateByTerm(ctx, 8)
	if err != nil {
		t.Fatal(err)
	}
	if report.GridsInstalled == 0 {
		t.Fatal("no per-term grids installed")
	}
	home, err := c.HomeNode("hot")
	if err != nil {
		t.Fatal(err)
	}
	if c.Node(home).TermGridCount() == 0 {
		t.Fatal("hot term's home has no term grid")
	}
	// The node-wide grid must not have been installed by the per-term
	// round.
	if g, _ := c.Node(home).Grid(); g != nil {
		t.Fatal("per-term allocation must not install a node-wide grid")
	}

	// Matching stays complete and correct.
	res, err := c.Publish(ctx, []string{"hot"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatal("publish incomplete after per-term allocation")
	}
	if len(res.Matches) != 300 {
		t.Fatalf("matches = %d, want 300", len(res.Matches))
	}
}

func TestAllocateByTermSpreadsHotLoad(t *testing.T) {
	ctx := context.Background()
	c := newCluster(t, SchemeMove, 15)
	seedHotTerm(t, c, 300, 50)
	if _, err := c.AllocateByTerm(ctx, 4); err != nil {
		t.Fatal(err)
	}

	before, err := c.PullLoads(ctx)
	if err != nil {
		t.Fatal(err)
	}
	prev := make(map[string]int64)
	for _, l := range before {
		prev[string(l.ID)] = l.DocsProcessed
	}
	for i := 0; i < 60; i++ {
		if _, err := c.Publish(ctx, []string{"hot"}); err != nil {
			t.Fatal(err)
		}
	}
	after, err := c.PullLoads(ctx)
	if err != nil {
		t.Fatal(err)
	}
	serving := 0
	for _, l := range after {
		if l.DocsProcessed > prev[string(l.ID)] {
			serving++
		}
	}
	if serving < 2 {
		t.Fatalf("only %d nodes served hot-term matches after per-term allocation", serving)
	}
}

func TestAllocateByTermValidation(t *testing.T) {
	ctx := context.Background()
	c := newCluster(t, SchemeIL, 5)
	if _, err := c.AllocateByTerm(ctx, 4); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("err = %v, want ErrBadConfig for non-Move scheme", err)
	}
	cm := newCluster(t, SchemeMove, 5)
	if _, err := cm.AllocateByTerm(ctx, 0); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("err = %v, want ErrBadConfig for topK=0", err)
	}
	if _, err := cm.AllocateByTerm(ctx, 4); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("err = %v, want ErrBadConfig with no filters", err)
	}
}

func TestAllocateByTermIgnoresNonFilterTerms(t *testing.T) {
	ctx := context.Background()
	c := newCluster(t, SchemeMove, 8)
	// Filters exist only for "hot"; documents are full of non-filter
	// terms which must not become allocation units.
	for i := 0; i < 50; i++ {
		if _, err := c.Register(ctx, "s", []string{"hot"}, 1, 0); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 30; i++ {
		if _, err := c.Publish(ctx, []string{"hot", "junk1", "junk2", "junk3"}); err != nil {
			t.Fatal(err)
		}
	}
	report, err := c.AllocateByTerm(ctx, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range report.Factors {
		if f.Key != "hot" {
			t.Fatalf("non-filter term %q became an allocation unit", f.Key)
		}
	}
}

func TestRingEvictionRehomesTerms(t *testing.T) {
	ctx := context.Background()
	c := newCluster(t, SchemeMove, 10)
	seedWorkload(t, c)
	home := homeOf(t, c, "news")
	c.FailNodes(home)

	newHome, err := c.HomeNode("news")
	if err != nil {
		t.Fatal(err)
	}
	if newHome == home {
		t.Fatal("term still homed on evicted node")
	}
	// New registrations for the term land on the new home and match.
	id, err := c.Register(ctx, "late", []string{"news"}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Publish(ctx, []string{"news"})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range res.Matches {
		if m.Filter == id {
			found = true
		}
	}
	if !found {
		t.Fatal("filter registered after eviction not matched")
	}
}
