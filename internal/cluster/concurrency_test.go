package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"github.com/movesys/move/internal/model"
	"github.com/movesys/move/internal/node"
)

// TestBatchedPublishOracleUnderConcurrentMutation is the oracle-backed
// concurrency stress for the sharded index + batch pipeline. Phase 1 runs
// concurrent registrars/unregistrars against concurrent batched
// publishers (under -race this exercises every shard boundary): each
// publish is checked against a stable base oracle — every base match must
// be present (no dropped matches) and no base non-match may appear (no
// phantoms); filters registered concurrently are allowed to surface as
// they land. Phase 2 quiesces, folds the mutations into the oracle, and
// requires every batched-publish match set to equal the brute-force
// oracle exactly.
func TestBatchedPublishOracleUnderConcurrentMutation(t *testing.T) {
	for _, seed := range []int64{2, 11} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runBatchedOracleStress(t, seed)
		})
	}
}

func runBatchedOracleStress(t *testing.T, seed int64) {
	t.Helper()
	ctx := context.Background()
	c, err := New(Config{Scheme: SchemeMove, Nodes: 10, Capacity: 500, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	const vocabSize = 30
	term := func(rng *rand.Rand) string { return fmt.Sprintf("t%d", rng.Intn(vocabSize)) }
	randTerms := func(rng *rand.Rand, n int) []string {
		seen := map[string]struct{}{}
		var out []string
		for len(out) < n {
			tm := term(rng)
			if _, dup := seen[tm]; dup {
				continue
			}
			seen[tm] = struct{}{}
			out = append(out, tm)
		}
		return model.SortTerms(out)
	}

	// Phase 0: a stable base filter set, allocated onto grids so the
	// batched fan-out exercises the column path, not just local matches.
	baseRng := rand.New(rand.NewSource(seed))
	o := &oracle{filters: make(map[model.FilterID][]string)}
	var baseMaxID model.FilterID
	for i := 0; i < 120; i++ {
		terms := randTerms(baseRng, 1+baseRng.Intn(3))
		id, err := c.Register(ctx, "s", terms, model.MatchAny, 0)
		if err != nil {
			t.Fatal(err)
		}
		o.filters[id] = terms
		if id > baseMaxID {
			baseMaxID = id
		}
	}
	if _, err := c.Allocate(ctx); err != nil {
		t.Fatal(err)
	}

	// Phase 1: concurrent mutators + batched publishers.
	bp, err := c.NewBatchPublisher(node.BatcherConfig{MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	const (
		mutators      = 3
		publishers    = 3
		opsPerWorker  = 60
		pubsPerWorker = 40
	)
	type mutation struct {
		id      model.FilterID
		terms   []string // nil means unregistered
		removed bool
	}
	recorded := make([][]mutation, mutators)
	var wg sync.WaitGroup
	for w := 0; w < mutators; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)*101))
			var mine []mutation
			for i := 0; i < opsPerWorker; i++ {
				terms := randTerms(rng, 1+rng.Intn(3))
				id, err := c.Register(ctx, "s", terms, model.MatchAny, 0)
				if err != nil {
					t.Errorf("mutator %d: register: %v", w, err)
					return
				}
				mine = append(mine, mutation{id: id, terms: terms})
				// Occasionally remove a filter this mutator owns, so
				// unregisters race the publishes too. Base filters are never
				// touched — they are the stable oracle.
				if rng.Intn(4) == 0 && len(mine) > 0 {
					j := rng.Intn(len(mine))
					if !mine[j].removed {
						if err := c.Unregister(ctx, mine[j].id); err != nil {
							t.Errorf("mutator %d: unregister: %v", w, err)
							return
						}
						mine[j].removed = true
					}
				}
			}
			recorded[w] = mine
		}(w)
	}
	for w := 0; w < publishers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + 1000 + int64(w)*37))
			for i := 0; i < pubsPerWorker; i++ {
				doc := randTerms(rng, 1+rng.Intn(4))
				res, err := bp.Publish(ctx, doc)
				if err != nil {
					t.Errorf("publisher %d doc %d: %v", w, i, err)
					return
				}
				if !res.Complete {
					t.Errorf("publisher %d doc %d: incomplete publish with no failures injected", w, i)
					return
				}
				got := matchIDs(res.Matches)
				want := o.match(doc)
				gotSet := make(map[model.FilterID]struct{}, len(got))
				for _, id := range got {
					gotSet[id] = struct{}{}
				}
				// No dropped matches: every stable base match must be found.
				for _, id := range want {
					if _, ok := gotSet[id]; !ok {
						t.Errorf("publisher %d doc %v: dropped base match %v (got %v, want ⊇ %v)", w, doc, id, got, want)
						return
					}
				}
				// No phantoms: a base-range ID that the oracle rejects must
				// not appear. (IDs above baseMaxID belong to concurrent
				// registrations and are legitimately in flux.)
				wantSet := make(map[model.FilterID]struct{}, len(want))
				for _, id := range want {
					wantSet[id] = struct{}{}
				}
				for _, id := range got {
					if id <= baseMaxID {
						if _, ok := wantSet[id]; !ok {
							t.Errorf("publisher %d doc %v: phantom base match %v (oracle says %v)", w, doc, id, want)
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	bp.Close()
	if t.Failed() {
		return
	}

	// Phase 2: fold the concurrent mutations into the oracle and require
	// exact equality from the batched publish path.
	for _, mine := range recorded {
		for _, m := range mine {
			if m.removed {
				continue
			}
			o.filters[m.id] = m.terms
		}
	}
	verifyRng := rand.New(rand.NewSource(seed + 9999))
	docs := make([][]string, 40)
	for i := range docs {
		docs[i] = randTerms(verifyRng, 1+verifyRng.Intn(4))
	}
	results, err := c.PublishBatch(ctx, docs)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		got := matchIDs(res.Matches)
		want := o.match(docs[i])
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("quiesced doc %v matched %v, oracle says %v", docs[i], got, want)
		}
	}
	// The batch pipeline must actually have batched: coalesced frames are
	// what this whole test exercises.
	if got := c.Metrics().Counter("publish.batch.docs").Value(); got == 0 {
		t.Fatal("publish.batch.docs = 0 — publishes never went through the batch pipeline")
	}
}
