package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"github.com/movesys/move/internal/model"
)

// TestSoakFailureRecoveryCycles churns the cluster through crash/recover
// cycles interleaved with publishes and allocation rounds, asserting two
// safety properties throughout:
//
//  1. no phantom matches — every reported match is a filter the oracle
//     knows (never an unregistered or fabricated one);
//  2. full recovery — once all nodes are back, matching returns to the
//     exact oracle set.
func TestSoakFailureRecoveryCycles(t *testing.T) {
	ctx := context.Background()
	c, err := New(Config{Scheme: SchemeMove, Nodes: 15, Capacity: 400, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	filters := make(map[model.FilterID][]string)

	term := func() string { return fmt.Sprintf("t%d", rng.Intn(30)) }
	for i := 0; i < 120; i++ {
		terms := model.SortTerms([]string{term(), term()})
		id, err := c.Register(ctx, "s", terms, model.MatchAny, 0)
		if err != nil {
			t.Fatal(err)
		}
		filters[id] = terms
	}
	oracleMatch := func(doc []string) map[model.FilterID]bool {
		set := make(map[string]struct{}, len(doc))
		for _, d := range doc {
			set[d] = struct{}{}
		}
		out := make(map[model.FilterID]bool)
		for id, terms := range filters {
			for _, ft := range terms {
				if _, ok := set[ft]; ok {
					out[id] = true
					break
				}
			}
		}
		return out
	}

	for cycle := 0; cycle < 6; cycle++ {
		// Warm publishes + allocation while healthy.
		for i := 0; i < 20; i++ {
			if _, err := c.Publish(ctx, []string{term(), term(), fmt.Sprintf("x%d", rng.Intn(100))}); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := c.Allocate(ctx); err != nil {
			t.Fatal(err)
		}

		// Crash a random 20–40% of the cluster.
		frac := 0.2 + 0.2*rng.Float64()
		victims := c.FailFraction(frac, cycle%2 == 0)
		if len(victims) == 0 {
			t.Fatal("no victims selected")
		}

		// Publishes under failure must never produce phantom matches.
		for i := 0; i < 10; i++ {
			doc := model.SortTerms([]string{term(), term()})
			res, err := c.Publish(ctx, doc)
			if err != nil {
				t.Fatal(err)
			}
			want := oracleMatch(doc)
			for _, m := range res.Matches {
				if !want[m.Filter] {
					t.Fatalf("cycle %d: phantom match %v for doc %v", cycle, m.Filter, doc)
				}
			}
		}

		// Recover everyone; matching must return to the exact oracle set.
		c.RecoverNodes(victims...)
		if c.AliveCount() != 15 {
			t.Fatalf("cycle %d: alive=%d after recovery", cycle, c.AliveCount())
		}
		for i := 0; i < 5; i++ {
			doc := model.SortTerms([]string{term(), term()})
			res, err := c.Publish(ctx, doc)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Complete {
				t.Fatalf("cycle %d: incomplete publish after full recovery", cycle)
			}
			got := make(map[model.FilterID]bool, len(res.Matches))
			for _, m := range res.Matches {
				got[m.Filter] = true
			}
			want := oracleMatch(doc)
			if len(got) != len(want) {
				t.Fatalf("cycle %d: doc %v matched %d filters, oracle says %d", cycle, doc, len(got), len(want))
			}
			for id := range want {
				if !got[id] {
					t.Fatalf("cycle %d: missing match %v after recovery", cycle, id)
				}
			}
		}
	}
}
