package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"github.com/movesys/move/internal/alloc"
	"github.com/movesys/move/internal/model"
	"github.com/movesys/move/internal/node"
	"github.com/movesys/move/internal/ring"
	"github.com/movesys/move/internal/transport"
)

// TestSoakFailureRecoveryCycles churns the cluster through crash/recover
// cycles interleaved with publishes and allocation rounds, asserting two
// safety properties throughout:
//
//  1. no phantom matches — every reported match is a filter the oracle
//     knows (never an unregistered or fabricated one);
//  2. full recovery — once all nodes are back, matching returns to the
//     exact oracle set.
func TestSoakFailureRecoveryCycles(t *testing.T) {
	ctx := context.Background()
	c, err := New(Config{Scheme: SchemeMove, Nodes: 15, Capacity: 400, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	filters := make(map[model.FilterID][]string)

	term := func() string { return fmt.Sprintf("t%d", rng.Intn(30)) }
	for i := 0; i < 120; i++ {
		terms := model.SortTerms([]string{term(), term()})
		id, err := c.Register(ctx, "s", terms, model.MatchAny, 0)
		if err != nil {
			t.Fatal(err)
		}
		filters[id] = terms
	}
	oracleMatch := func(doc []string) map[model.FilterID]bool {
		set := make(map[string]struct{}, len(doc))
		for _, d := range doc {
			set[d] = struct{}{}
		}
		out := make(map[model.FilterID]bool)
		for id, terms := range filters {
			for _, ft := range terms {
				if _, ok := set[ft]; ok {
					out[id] = true
					break
				}
			}
		}
		return out
	}

	for cycle := 0; cycle < 6; cycle++ {
		// Warm publishes + allocation while healthy.
		for i := 0; i < 20; i++ {
			if _, err := c.Publish(ctx, []string{term(), term(), fmt.Sprintf("x%d", rng.Intn(100))}); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := c.Allocate(ctx); err != nil {
			t.Fatal(err)
		}

		// Crash a random 20–40% of the cluster.
		frac := 0.2 + 0.2*rng.Float64()
		victims := c.FailFraction(frac, cycle%2 == 0)
		if len(victims) == 0 {
			t.Fatal("no victims selected")
		}

		// Publishes under failure must never produce phantom matches.
		for i := 0; i < 10; i++ {
			doc := model.SortTerms([]string{term(), term()})
			res, err := c.Publish(ctx, doc)
			if err != nil {
				t.Fatal(err)
			}
			want := oracleMatch(doc)
			for _, m := range res.Matches {
				if !want[m.Filter] {
					t.Fatalf("cycle %d: phantom match %v for doc %v", cycle, m.Filter, doc)
				}
			}
		}

		// Recover everyone; matching must return to the exact oracle set.
		c.RecoverNodes(victims...)
		if c.AliveCount() != 15 {
			t.Fatalf("cycle %d: alive=%d after recovery", cycle, c.AliveCount())
		}
		for i := 0; i < 5; i++ {
			doc := model.SortTerms([]string{term(), term()})
			res, err := c.Publish(ctx, doc)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Complete {
				t.Fatalf("cycle %d: incomplete publish after full recovery", cycle)
			}
			got := make(map[model.FilterID]bool, len(res.Matches))
			for _, m := range res.Matches {
				got[m.Filter] = true
			}
			want := oracleMatch(doc)
			if len(got) != len(want) {
				t.Fatalf("cycle %d: doc %v matched %d filters, oracle says %d", cycle, doc, len(got), len(want))
			}
			for id := range want {
				if !got[id] {
					t.Fatalf("cycle %d: missing match %v after recovery", cycle, id)
				}
			}
		}
	}
}

// installDeterministicGrid registers `filters` single-term filters on the
// home of "hot" and installs a hand-built 2x2 allocation grid there (the
// optimizer is bypassed so the test controls exactly which nodes hold
// which column).
func installDeterministicGrid(t *testing.T, c *Cluster, filters int) (home ring.NodeID, grid *alloc.Grid) {
	t.Helper()
	ctx := context.Background()
	for i := 0; i < filters; i++ {
		if _, err := c.Register(ctx, "s", []string{"hot"}, model.MatchAny, 0); err != nil {
			t.Fatal(err)
		}
	}
	home, err := c.HomeNode("hot")
	if err != nil {
		t.Fatal(err)
	}
	var peers []ring.NodeID
	for _, id := range c.NodeIDs() {
		if id != home {
			peers = append(peers, id)
		}
	}
	grid, err = alloc.NewGrid(2, 2, peers[:4])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.sendTo(ctx, home, node.EncodeAllocate(1, grid)); err != nil {
		t.Fatal(err)
	}
	return home, grid
}

// TestClusterReplicaRowFailover is the cluster-level acceptance scenario:
// a publish keeps returning the full match set when one node of the
// chosen partition row dies (the column fails over to the other row, and
// publish.failover increments), and degrades to exactly the surviving
// columns' filters — Degraded set, ColumnsLost counted, no error — when
// every row of a column is dead (§VI availability model).
func TestClusterReplicaRowFailover(t *testing.T) {
	ctx := context.Background()
	c, err := New(Config{Scheme: SchemeMove, Nodes: 8, Capacity: 400, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	const filters = 40
	_, grid := installDeterministicGrid(t, c, filters)

	publish := func(label string) PublishResult {
		t.Helper()
		res, err := c.Publish(ctx, []string{"hot"})
		if err != nil {
			t.Fatalf("%s: publish: %v", label, err)
		}
		return res
	}

	if res := publish("healthy"); len(res.Matches) != filters || !res.Complete {
		t.Fatalf("healthy: %d matches complete=%v, want %d/true", len(res.Matches), res.Complete, filters)
	}

	// One node down per row, different columns: failover keeps coverage.
	c.FailNodes(grid.Node(0, 0), grid.Node(1, 1))
	for i := 0; i < 4; i++ {
		res := publish("one-per-row")
		if len(res.Matches) != filters || !res.Complete || res.Degraded {
			t.Fatalf("one-per-row: matches=%d complete=%v degraded=%v, want full set via failover",
				len(res.Matches), res.Complete, res.Degraded)
		}
	}
	if got := c.Metrics().Counter("publish.failover").Value(); got == 0 {
		t.Fatal("publish.failover = 0, failover path never taken")
	}

	// Column 0 dead in every row: only column-1 filters remain reachable.
	c.FailNodes(grid.Node(1, 0))
	wantSurvivors := 0
	for i := 1; i <= filters; i++ {
		if grid.Column(model.FilterID(i)) != 0 {
			wantSurvivors++
		}
	}
	res := publish("column-dead")
	if !res.Degraded || res.ColumnsLost != 1 || res.Complete {
		t.Fatalf("column-dead: degraded=%v lost=%d complete=%v, want degraded partial result",
			res.Degraded, res.ColumnsLost, res.Complete)
	}
	if len(res.Matches) != wantSurvivors {
		t.Fatalf("column-dead: matches=%d, want %d (only surviving columns)", len(res.Matches), wantSurvivors)
	}
	if c.Metrics().Counter("publish.degraded").Value() == 0 {
		t.Fatal("publish.degraded = 0")
	}

	// Recovery resets the breakers (gossip node-up): full set returns.
	c.RecoverNodes(grid.Node(0, 0), grid.Node(1, 0), grid.Node(1, 1))
	if res := publish("recovered"); len(res.Matches) != filters || !res.Complete {
		t.Fatalf("recovered: %d matches complete=%v, want %d/true", len(res.Matches), res.Complete, filters)
	}
}

// TestClusterPublishUnderInjectedFaults churns publishes through a lossy
// fabric (5% drops, 2% duplicate deliveries on every node-to-node link)
// and asserts the §VI.A contract holds: no phantom matches, no hard
// errors (availability losses only cost completeness), duplicates never
// double-match, and the retry layer visibly engages.
func TestClusterPublishUnderInjectedFaults(t *testing.T) {
	ctx := context.Background()
	c, err := New(Config{
		Scheme: SchemeMove, Nodes: 10, Capacity: 400, Seed: 11,
		Fault: &transport.FaultConfig{
			Seed:    11,
			Default: transport.FaultProbs{Drop: 0.05, Duplicate: 0.02},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	term := func() string { return fmt.Sprintf("t%d", rng.Intn(25)) }
	filters := make(map[model.FilterID][]string)
	for i := 0; i < 80; i++ {
		terms := model.SortTerms([]string{term(), term()})
		id, err := c.Register(ctx, "s", terms, model.MatchAny, 0)
		if err != nil {
			t.Fatal(err)
		}
		filters[id] = terms
	}

	complete := 0
	const docs = 200
	for i := 0; i < docs; i++ {
		doc := model.SortTerms([]string{term(), term()})
		res, err := c.Publish(ctx, doc)
		if err != nil {
			t.Fatalf("doc %d: publish error under injected faults: %v", i, err)
		}
		set := make(map[string]struct{}, len(doc))
		for _, d := range doc {
			set[d] = struct{}{}
		}
		seen := make(map[model.FilterID]bool, len(res.Matches))
		for _, m := range res.Matches {
			if seen[m.Filter] {
				t.Fatalf("doc %d: filter %v matched twice (duplicate delivery leaked)", i, m.Filter)
			}
			seen[m.Filter] = true
			phantom := true
			for _, ft := range filters[m.Filter] {
				if _, ok := set[ft]; ok {
					phantom = false
					break
				}
			}
			if phantom {
				t.Fatalf("doc %d: phantom match %v for %v", i, m.Filter, doc)
			}
		}
		if res.Complete {
			complete++
		}
	}
	// Retries ride out the vast majority of 5%-probability drops
	// (residual give-up probability ~p^3 per send).
	if complete < docs*9/10 {
		t.Fatalf("complete = %d/%d under 5%% drop, want >= %d", complete, docs, docs*9/10)
	}
	if c.Metrics().Counter("rpc.retries").Value() == 0 {
		t.Fatal("rpc.retries = 0, retry layer never engaged")
	}
}
