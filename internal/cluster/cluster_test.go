package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"testing"

	"github.com/movesys/move/internal/alloc"
	"github.com/movesys/move/internal/model"
	"github.com/movesys/move/internal/node"
	"github.com/movesys/move/internal/ring"
)

func newCluster(t testing.TB, scheme Scheme, nodes int) *Cluster {
	t.Helper()
	c, err := New(Config{
		Scheme:   scheme,
		Nodes:    nodes,
		RackSize: 5,
		Capacity: 100_000,
		Seed:     42,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// seedWorkload registers a deterministic mixed workload and returns the
// filter IDs grouped by their matching term.
func seedWorkload(t testing.TB, c *Cluster) map[string][]model.FilterID {
	t.Helper()
	ctx := context.Background()
	byTerm := make(map[string][]model.FilterID)
	specs := []struct {
		sub   string
		terms []string
	}{
		{"alice", []string{"cloud", "storage"}},
		{"bob", []string{"cloud"}},
		{"carol", []string{"quantum", "computing"}},
		{"dave", []string{"breaking", "news"}},
		{"erin", []string{"news"}},
		{"frank", []string{"football", "league", "cup"}},
	}
	for _, s := range specs {
		id, err := c.Register(ctx, s.sub, s.terms, model.MatchAny, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, term := range s.terms {
			byTerm[term] = append(byTerm[term], id)
		}
	}
	return byTerm
}

func matchIDs(matches []node.Match) []model.FilterID {
	ids := make([]model.FilterID, len(matches))
	for i, m := range matches {
		ids[i] = m.Filter
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func wantIDs(byTerm map[string][]model.FilterID, terms ...string) []model.FilterID {
	seen := make(map[model.FilterID]struct{})
	var out []model.FilterID
	for _, t := range terms {
		for _, id := range byTerm[t] {
			if _, dup := seen[id]; dup {
				continue
			}
			seen[id] = struct{}{}
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Scheme: SchemeMove}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("zero nodes: %v", err)
	}
	if _, err := New(Config{Scheme: Scheme(9), Nodes: 3}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("bad scheme: %v", err)
	}
}

func TestSchemeString(t *testing.T) {
	if SchemeMove.String() != "Move" || SchemeIL.String() != "IL" || SchemeRS.String() != "RS" {
		t.Fatal("scheme names wrong")
	}
	if Scheme(7).String() != "scheme(7)" {
		t.Fatal("unknown scheme string wrong")
	}
}

// TestAllSchemesFindSameMatches is the core correctness property: the three
// dissemination systems must agree on every document's match set.
func TestAllSchemesFindSameMatches(t *testing.T) {
	ctx := context.Background()
	docs := [][]string{
		{"cloud", "computing", "rocks"},
		{"breaking", "news", "football"},
		{"unrelated", "terms", "only"},
		{"quantum", "storage", "league"},
		{"cup"},
	}
	type outcome struct {
		scheme Scheme
		ids    [][]model.FilterID
	}
	var outcomes []outcome
	for _, scheme := range []Scheme{SchemeMove, SchemeIL, SchemeRS} {
		c := newCluster(t, scheme, 12)
		byTerm := seedWorkload(t, c)
		_ = byTerm
		var all [][]model.FilterID
		for _, d := range docs {
			res, err := c.Publish(ctx, d)
			if err != nil {
				t.Fatalf("%v publish %v: %v", scheme, d, err)
			}
			if !res.Complete {
				t.Fatalf("%v publish %v incomplete", scheme, d)
			}
			all = append(all, matchIDs(res.Matches))
		}
		outcomes = append(outcomes, outcome{scheme: scheme, ids: all})
	}
	for i := 1; i < len(outcomes); i++ {
		for d := range docs {
			a := fmt.Sprint(outcomes[0].ids[d])
			b := fmt.Sprint(outcomes[i].ids[d])
			if a != b {
				t.Fatalf("doc %d: %v found %v, %v found %v",
					d, outcomes[0].scheme, a, outcomes[i].scheme, b)
			}
		}
	}
}

func TestPublishMatchesExpectedFilters(t *testing.T) {
	ctx := context.Background()
	c := newCluster(t, SchemeMove, 10)
	byTerm := seedWorkload(t, c)

	res, err := c.Publish(ctx, []string{"cloud", "news"})
	if err != nil {
		t.Fatal(err)
	}
	want := wantIDs(byTerm, "cloud", "news")
	if got := fmt.Sprint(matchIDs(res.Matches)); got != fmt.Sprint(want) {
		t.Fatalf("matches = %v, want %v", got, want)
	}

	res, err = c.Publish(ctx, []string{"nothing", "here"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 0 {
		t.Fatalf("unexpected matches %v", res.Matches)
	}
}

func TestBloomGateKeepsCorrectness(t *testing.T) {
	ctx := context.Background()
	c := newCluster(t, SchemeMove, 10)
	byTerm := seedWorkload(t, c)
	if err := c.RefreshBloom(ctx); err != nil {
		t.Fatal(err)
	}
	res, err := c.Publish(ctx, []string{"cloud", "zzz-not-a-filter-term", "news"})
	if err != nil {
		t.Fatal(err)
	}
	want := wantIDs(byTerm, "cloud", "news")
	if got := fmt.Sprint(matchIDs(res.Matches)); got != fmt.Sprint(want) {
		t.Fatalf("matches with bloom = %v, want %v", got, want)
	}
}

func TestBloomReducesForwarding(t *testing.T) {
	ctx := context.Background()
	// Without bloom: every term of the doc is forwarded; with bloom, only
	// filter terms (modulo false positives).
	run := func(withBloom bool) int64 {
		c := newCluster(t, SchemeMove, 10)
		seedWorkload(t, c)
		if withBloom {
			if err := c.RefreshBloom(ctx); err != nil {
				t.Fatal(err)
			}
		}
		c.ResetTransferStats()
		doc := []string{"cloud", "junk1", "junk2", "junk3", "junk4", "junk5"}
		if _, err := c.Publish(ctx, doc); err != nil {
			t.Fatal(err)
		}
		return c.Transfers().Total
	}
	without := run(false)
	with := run(true)
	if with >= without {
		t.Fatalf("bloom should cut transfers: with=%d without=%d", with, without)
	}
}

func TestRegisterValidation(t *testing.T) {
	c := newCluster(t, SchemeMove, 4)
	if _, err := c.Register(context.Background(), "x", nil, model.MatchAny, 0); err == nil {
		t.Fatal("expected error for empty terms")
	}
}

func TestAllocationPreservesMatches(t *testing.T) {
	ctx := context.Background()
	c := newCluster(t, SchemeMove, 15)
	byTerm := seedWorkload(t, c)

	// Register a hot-spot term so the optimizer has something to allocate:
	// many filters on one term, many documents containing it.
	for i := 0; i < 200; i++ {
		if _, err := c.Register(ctx, "hotsub"+strconv.Itoa(i), []string{"hotterm"}, model.MatchAny, 0); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		if _, err := c.Publish(ctx, []string{"hotterm", "pad" + strconv.Itoa(i)}); err != nil {
			t.Fatal(err)
		}
	}

	report, err := c.Allocate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if report.Epoch != 1 {
		t.Fatalf("epoch = %d, want 1", report.Epoch)
	}
	if report.GridsInstalled == 0 {
		t.Fatal("no grids installed despite hot spot")
	}

	// Matching must be identical after allocation.
	res, err := c.Publish(ctx, []string{"cloud", "news", "hotterm"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatal("publish incomplete after allocation")
	}
	got := matchIDs(res.Matches)
	if len(got) != len(wantIDs(byTerm, "cloud", "news"))+200 {
		t.Fatalf("got %d matches, want %d", len(got), len(wantIDs(byTerm, "cloud", "news"))+200)
	}
}

func TestAllocationSpreadsHomeLoad(t *testing.T) {
	ctx := context.Background()
	c := newCluster(t, SchemeMove, 15)
	for i := 0; i < 300; i++ {
		if _, err := c.Register(ctx, "s"+strconv.Itoa(i), []string{"hot"}, model.MatchAny, 0); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 40; i++ {
		if _, err := c.Publish(ctx, []string{"hot"}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Allocate(ctx); err != nil {
		t.Fatal(err)
	}

	before, err := c.PullLoads(ctx)
	if err != nil {
		t.Fatal(err)
	}
	processed := make(map[ring.NodeID]int64, len(before))
	for _, l := range before {
		processed[l.ID] = l.DocsProcessed
	}
	for i := 0; i < 60; i++ {
		if _, err := c.Publish(ctx, []string{"hot"}); err != nil {
			t.Fatal(err)
		}
	}
	after, err := c.PullLoads(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// The 60 documents must have been matched by more than one node
	// (grid fan-out), unlike the unallocated case where one home node
	// serves everything.
	serving := 0
	for _, l := range after {
		if l.DocsProcessed > processed[l.ID] {
			serving++
		}
	}
	if serving < 2 {
		t.Fatalf("only %d nodes served matches after allocation", serving)
	}
}

func TestAllocateRequiresMove(t *testing.T) {
	c := newCluster(t, SchemeIL, 5)
	seedWorkload(t, c)
	if _, err := c.Allocate(context.Background()); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("err = %v, want ErrBadConfig", err)
	}
}

func TestAllocateWithoutFilters(t *testing.T) {
	c := newCluster(t, SchemeMove, 5)
	if _, err := c.Allocate(context.Background()); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("err = %v, want ErrBadConfig", err)
	}
}

func TestFailureLosesMatchesButPublishCompletes(t *testing.T) {
	ctx := context.Background()
	c := newCluster(t, SchemeIL, 8)
	byTerm := seedWorkload(t, c)

	// Crash the home node of "cloud": the ring evicts it (as the gossip
	// failure detector would), so the publish re-homes and completes —
	// but the filters that lived there are lost until re-registration.
	home := homeOf(t, c, "cloud")
	c.FailNodes(home)
	res, err := c.Publish(ctx, []string{"cloud"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatal("publish should complete against the re-homed ring")
	}
	if len(res.Matches) != 0 {
		t.Fatalf("matches = %v, want none (filters died with their home)", res.Matches)
	}
	if got := c.AvailableFilterFraction(); got >= 1 {
		t.Fatalf("availability = %v, want < 1 after losing a home node", got)
	}

	// Recovery restores the node (and, in-memory store intact, its
	// filters).
	c.RecoverNodes(home)
	res, err = c.Publish(ctx, []string{"cloud"})
	if err != nil {
		t.Fatal(err)
	}
	want := wantIDs(byTerm, "cloud")
	if got := fmt.Sprint(matchIDs(res.Matches)); got != fmt.Sprint(want) {
		t.Fatalf("matches after recovery = %v, want %v", got, want)
	}
}

func homeOf(t *testing.T, c *Cluster, term string) ring.NodeID {
	t.Helper()
	home, err := c.ringHome(term)
	if err != nil {
		t.Fatal(err)
	}
	return home
}

func TestMoveSurvivesHomeFailureAfterAllocation(t *testing.T) {
	ctx := context.Background()
	c := newCluster(t, SchemeMove, 15)
	for i := 0; i < 300; i++ {
		if _, err := c.Register(ctx, "s"+strconv.Itoa(i), []string{"hot"}, model.MatchAny, 0); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 40; i++ {
		if _, err := c.Publish(ctx, []string{"hot"}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Allocate(ctx); err != nil {
		t.Fatal(err)
	}

	// Fail one grid node: replica rows must still answer.
	home := homeOf(t, c, "hot")
	grid, _ := c.Node(home).Grid()
	if grid == nil {
		t.Skip("optimizer chose not to allocate the hot node in this configuration")
	}
	if grid.Rows() < 2 {
		t.Skipf("grid %dx%d has no replica row", grid.Rows(), grid.Cols())
	}
	victim := grid.Node(0, 0)
	c.FailNodes(victim)
	res, err := c.Publish(ctx, []string{"hot"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatal("publish incomplete though a replica partition exists")
	}
	if len(res.Matches) != 300 {
		t.Fatalf("got %d matches, want 300", len(res.Matches))
	}
}

func TestAvailableFilterFractionIL(t *testing.T) {
	ctx := context.Background()
	c := newCluster(t, SchemeIL, 10)
	for i := 0; i < 100; i++ {
		if _, err := c.Register(ctx, "s"+strconv.Itoa(i), []string{"term" + strconv.Itoa(i)}, model.MatchAny, 0); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.AvailableFilterFraction(); got != 1 {
		t.Fatalf("availability = %v, want 1 before failures", got)
	}
	victims := c.FailFraction(0.3, false)
	if len(victims) != 3 {
		t.Fatalf("failed %d nodes, want 3", len(victims))
	}
	got := c.AvailableFilterFraction()
	// IL stores one copy per (single-term) filter; failing 30% of nodes
	// loses ≈30%.
	if got < 0.5 || got > 0.95 {
		t.Fatalf("availability after 30%% failures = %v, want ≈0.7", got)
	}
	c.RecoverNodes(victims...)
	if got := c.AvailableFilterFraction(); got != 1 {
		t.Fatalf("availability = %v after recovery", got)
	}
}

func TestAvailableFilterFractionRSReplicated(t *testing.T) {
	ctx := context.Background()
	c := newCluster(t, SchemeRS, 10)
	for i := 0; i < 100; i++ {
		if _, err := c.Register(ctx, "s"+strconv.Itoa(i), []string{"term" + strconv.Itoa(i)}, model.MatchAny, 0); err != nil {
			t.Fatal(err)
		}
	}
	victims := c.FailFraction(0.3, false)
	got := c.AvailableFilterFraction()
	// The key/value platform's three-fold replication keeps most filters
	// reachable: a filter is lost only when all 3 consecutive holders
	// failed.
	if got < 0.9 {
		t.Fatalf("availability after 30%% failures = %v, want >= 0.9 with RF=3", got)
	}
	c.RecoverNodes(victims...)
	if got := c.AvailableFilterFraction(); got != 1 {
		t.Fatalf("availability = %v after recovery", got)
	}
}

func TestFailFractionByRack(t *testing.T) {
	c := newCluster(t, SchemeMove, 20) // 4 racks of 5
	victims := c.FailFraction(0.25, true)
	if len(victims) != 5 {
		t.Fatalf("failed %d nodes, want 5 (one rack)", len(victims))
	}
	rack := ""
	for _, v := range victims {
		r := c.rackOf[v]
		if rack == "" {
			rack = r
		}
		if r != rack {
			t.Fatalf("rack-correlated failure spans racks %q and %q", rack, r)
		}
	}
	if c.AliveCount() != 15 {
		t.Fatalf("alive = %d, want 15", c.AliveCount())
	}
}

func TestTransferAccounting(t *testing.T) {
	ctx := context.Background()
	c := newCluster(t, SchemeMove, 10)
	seedWorkload(t, c)
	c.ResetTransferStats()
	if _, err := c.Publish(ctx, []string{"cloud", "news"}); err != nil {
		t.Fatal(err)
	}
	tr := c.Transfers()
	if tr.Total < 2 {
		t.Fatalf("transfers = %d, want >= 2 (one per term)", tr.Total)
	}
	if tr.IntraRack > tr.Total {
		t.Fatal("intra-rack exceeds total")
	}
	var sum int64
	for _, n := range tr.PerNodeReceived {
		sum += n
	}
	if sum != tr.Total {
		t.Fatalf("per-node sum %d != total %d", sum, tr.Total)
	}
}

func TestRSFloodsEveryNode(t *testing.T) {
	ctx := context.Background()
	c := newCluster(t, SchemeRS, 9)
	seedWorkload(t, c)
	c.ResetTransferStats()
	if _, err := c.Publish(ctx, []string{"anything"}); err != nil {
		t.Fatal(err)
	}
	if tr := c.Transfers(); tr.Total != 9 {
		t.Fatalf("RS transfers = %d, want 9 (flood)", tr.Total)
	}
}

func TestCountersAndAccessors(t *testing.T) {
	ctx := context.Background()
	c := newCluster(t, SchemeMove, 6)
	seedWorkload(t, c)
	if _, err := c.Publish(ctx, []string{"news"}); err != nil {
		t.Fatal(err)
	}
	if c.TotalFilters() != 6 {
		t.Fatalf("TotalFilters = %d, want 6", c.TotalFilters())
	}
	if c.TotalDocs() != 1 {
		t.Fatalf("TotalDocs = %d, want 1", c.TotalDocs())
	}
	if c.Size() != 6 || len(c.NodeIDs()) != 6 {
		t.Fatal("size accessors wrong")
	}
	if c.PCounter().Items() != 6 || c.QCounter().Items() != 1 {
		t.Fatal("stat counters wrong")
	}
	if c.Scheme() != SchemeMove {
		t.Fatal("scheme accessor wrong")
	}
}

func TestDeliveryCallback(t *testing.T) {
	ctx := context.Background()
	delivered := make(map[string]int)
	c, err := New(Config{
		Scheme: SchemeMove,
		Nodes:  8,
		Seed:   1,
		OnDeliver: func(doc *model.Document, matches []node.Match) {
			for _, m := range matches {
				delivered[m.Subscriber]++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	seedWorkload(t, c)
	if _, err := c.Publish(ctx, []string{"news"}); err != nil {
		t.Fatal(err)
	}
	if delivered["dave"] != 1 || delivered["erin"] != 1 {
		t.Fatalf("deliveries = %v, want dave and erin", delivered)
	}
}

func TestUnregisterRemovesMatches(t *testing.T) {
	ctx := context.Background()
	c := newCluster(t, SchemeMove, 8)
	byTerm := seedWorkload(t, c)
	victim := byTerm["cloud"][0] // alice's {cloud, storage}

	if err := c.Unregister(ctx, victim); err != nil {
		t.Fatal(err)
	}
	res, err := c.Publish(ctx, []string{"cloud", "storage"})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range res.Matches {
		if m.Filter == victim {
			t.Fatalf("unregistered filter %v still matched", victim)
		}
	}
	// Availability bookkeeping forgets it too.
	if err := c.Unregister(ctx, victim); err == nil {
		t.Fatal("double unregister should error")
	}
}

func TestUnregisterRSRemovesAllReplicas(t *testing.T) {
	ctx := context.Background()
	c := newCluster(t, SchemeRS, 6)
	id, err := c.Register(ctx, "sub", []string{"solo"}, model.MatchAny, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Unregister(ctx, id); err != nil {
		t.Fatal(err)
	}
	res, err := c.Publish(ctx, []string{"solo"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 0 {
		t.Fatalf("matches after RS unregister = %v", res.Matches)
	}
}

func TestAllocStrategiesRun(t *testing.T) {
	ctx := context.Background()
	for _, s := range []alloc.Strategy{alloc.StrategyTheorem1, alloc.StrategyTheorem2, alloc.StrategyGeneral, alloc.StrategyUniform} {
		c, err := New(Config{Scheme: SchemeMove, Nodes: 10, Seed: 5, AllocStrategy: s, Capacity: 1000})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			if _, err := c.Register(ctx, "s", []string{"hot", "t" + strconv.Itoa(i)}, model.MatchAny, 0); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 10; i++ {
			if _, err := c.Publish(ctx, []string{"hot"}); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := c.Allocate(ctx); err != nil {
			t.Fatalf("strategy %v: %v", s, err)
		}
		res, err := c.Publish(ctx, []string{"hot"})
		if err != nil || !res.Complete {
			t.Fatalf("strategy %v: publish after allocate: %v complete=%v", s, err, res.Complete)
		}
		if len(res.Matches) != 50 {
			t.Fatalf("strategy %v: %d matches, want 50", s, len(res.Matches))
		}
	}
}
