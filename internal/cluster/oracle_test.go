package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"github.com/movesys/move/internal/model"
)

// oracle is a brute-force reference matcher over all registered filters.
type oracle struct {
	filters map[model.FilterID][]string
}

func (o *oracle) match(doc []string) []model.FilterID {
	set := make(map[string]struct{}, len(doc))
	for _, t := range doc {
		set[t] = struct{}{}
	}
	var out []model.FilterID
	for id, terms := range o.filters {
		for _, t := range terms {
			if _, ok := set[t]; ok {
				out = append(out, id)
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TestClusterNeverMissesMatchesUnderRandomAllocation interleaves random
// registrations, publishes, allocation rounds (per-node and per-term), and
// window renewals, checking every publish against the brute-force oracle —
// the §IV correctness invariant ("we can ensure all matching filters ...
// are found") under arbitrary allocation churn.
func TestClusterNeverMissesMatchesUnderRandomAllocation(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runOracleTrial(t, seed)
		})
	}
}

func runOracleTrial(t *testing.T, seed int64) {
	t.Helper()
	ctx := context.Background()
	c, err := New(Config{Scheme: SchemeMove, Nodes: 12, Capacity: 500, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	o := &oracle{filters: make(map[model.FilterID][]string)}

	term := func() string { return fmt.Sprintf("t%d", rng.Intn(40)) }
	randTerms := func(n int) []string {
		seen := map[string]struct{}{}
		var out []string
		for len(out) < n {
			tm := term()
			if _, dup := seen[tm]; dup {
				continue
			}
			seen[tm] = struct{}{}
			out = append(out, tm)
		}
		return out
	}

	for step := 0; step < 400; step++ {
		switch op := rng.Intn(10); {
		case op < 4: // register
			terms := randTerms(1 + rng.Intn(3))
			id, err := c.Register(ctx, "s", terms, model.MatchAny, 0)
			if err != nil {
				t.Fatal(err)
			}
			o.filters[id] = terms
		case op < 8: // publish + verify against the oracle
			doc := randTerms(1 + rng.Intn(6))
			res, err := c.Publish(ctx, doc)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Complete {
				t.Fatalf("step %d: incomplete publish with no failures", step)
			}
			got := matchIDs(res.Matches)
			want := o.match(doc)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("step %d: doc %v matched %v, oracle says %v", step, doc, got, want)
			}
		case op == 8: // allocation round (random flavor)
			if len(o.filters) == 0 {
				continue
			}
			if rng.Intn(2) == 0 {
				if _, err := c.Allocate(ctx); err != nil {
					t.Fatalf("step %d: allocate: %v", step, err)
				}
			} else {
				if _, err := c.AllocateByTerm(ctx, 8); err != nil && c.TotalDocs() > 0 {
					// No hot filter terms yet is acceptable early on.
					if c.QCounter().Items() > 10 {
						t.Fatalf("step %d: allocate-by-term: %v", step, err)
					}
				}
			}
		default: // window renewal
			c.RenewWindow()
		}
	}
}

// TestClusterOracleWithUnregister extends the invariant across removals.
func TestClusterOracleWithUnregister(t *testing.T) {
	ctx := context.Background()
	c, err := New(Config{Scheme: SchemeMove, Nodes: 8, Capacity: 500, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	o := &oracle{filters: make(map[model.FilterID][]string)}
	var live []model.FilterID

	for step := 0; step < 200; step++ {
		switch op := rng.Intn(10); {
		case op < 4:
			terms := []string{fmt.Sprintf("t%d", rng.Intn(25))}
			if rng.Intn(2) == 0 {
				terms = append(terms, fmt.Sprintf("t%d", rng.Intn(25)))
			}
			id, err := c.Register(ctx, "s", model.SortTerms(terms), model.MatchAny, 0)
			if err != nil {
				t.Fatal(err)
			}
			o.filters[id] = model.SortTerms(terms)
			live = append(live, id)
		case op < 5 && len(live) > 0:
			i := rng.Intn(len(live))
			id := live[i]
			live = append(live[:i], live[i+1:]...)
			if err := c.Unregister(ctx, id); err != nil {
				t.Fatal(err)
			}
			delete(o.filters, id)
		case op == 5 && len(o.filters) > 0:
			if _, err := c.Allocate(ctx); err != nil {
				t.Fatal(err)
			}
		default:
			doc := []string{fmt.Sprintf("t%d", rng.Intn(25)), fmt.Sprintf("t%d", rng.Intn(25))}
			res, err := c.Publish(ctx, model.SortTerms(doc))
			if err != nil {
				t.Fatal(err)
			}
			got := matchIDs(res.Matches)
			want := o.match(doc)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("step %d: doc %v matched %v, oracle says %v", step, doc, got, want)
			}
		}
	}
}
