package cluster

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"testing"
	"time"

	"github.com/movesys/move/internal/ring"
)

// totalStoredFilters sums the filter copies held across every node — the
// invariant an aborted round must restore exactly.
func totalStoredFilters(c *Cluster) int {
	total := 0
	for _, id := range c.nodeIDs {
		total += c.nodes[id].Index().NumFilters()
	}
	return total
}

func assertNoPendingState(t *testing.T, c *Cluster, wantEpoch uint64) {
	t.Helper()
	for _, id := range c.nodeIDs {
		committed, pending, dual := c.nodes[id].EpochInfo()
		if pending != 0 || dual {
			t.Fatalf("node %s: pending=%d dual=%v, want no pending state", id, pending, dual)
		}
		if committed > wantEpoch {
			t.Fatalf("node %s: committed epoch %d beyond coordinator's %d", id, committed, wantEpoch)
		}
	}
}

func TestTwoPhaseAllocateCommits(t *testing.T) {
	ctx := context.Background()
	c := newCluster(t, SchemeMove, 12)
	seedHotTerm(t, c, 200, 40)

	report, err := c.Allocate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if report.GridsInstalled == 0 {
		t.Fatal("round installed no grids")
	}
	if got := c.CommittedEpoch(); got != report.Epoch {
		t.Fatalf("CommittedEpoch = %d, want %d", got, report.Epoch)
	}
	// The cutover completed: no node is left dual-reading.
	assertNoPendingState(t, c, report.Epoch)
	res, err := c.Publish(ctx, []string{"hot"})
	if err != nil || !res.Complete {
		t.Fatalf("publish after commit: %v complete=%v", err, res.Complete)
	}
	if len(res.Matches) != 200 {
		t.Fatalf("matches = %d, want 200", len(res.Matches))
	}
	snap := c.Metrics().Snapshot()
	if snap["realloc.rounds.committed"] == 0 {
		t.Fatal("realloc.rounds.committed not incremented")
	}
	if snap["realloc.epoch"] != int64(report.Epoch) {
		t.Fatalf("realloc.epoch gauge = %d, want %d", snap["realloc.epoch"], report.Epoch)
	}
}

// seedTwoHomes registers two independent hot terms whose home nodes differ,
// guaranteeing at least two grids per allocation round.
func seedTwoHomes(t *testing.T, c *Cluster, filtersEach, docsEach int, candidates []string) (a, b string) {
	t.Helper()
	ctx := context.Background()
	if candidates == nil {
		candidates = []string{"hota", "hotb", "hotc", "hotd", "hote", "hotf"}
	}
	a = candidates[0]
	homeA, err := c.HomeNode(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, cand := range candidates[1:] {
		home, err := c.HomeNode(cand)
		if err != nil {
			t.Fatal(err)
		}
		if home != homeA {
			b = cand
			break
		}
	}
	if b == "" {
		t.Fatal("no candidate term with a distinct home node")
	}
	for i := 0; i < filtersEach; i++ {
		if _, err := c.Register(ctx, "a"+strconv.Itoa(i), []string{a}, 1, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Register(ctx, "b"+strconv.Itoa(i), []string{b}, 1, 0); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < docsEach; i++ {
		if _, err := c.Publish(ctx, []string{a}); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Publish(ctx, []string{b}); err != nil {
			t.Fatal(err)
		}
	}
	return a, b
}

// TestAllocateAbortsCleanly fails the second of two prepares mid-round: the
// first home has already installed a pending grid and migrated filters, so
// the abort must unwind every trace of the epoch and leave the cluster on
// the old one.
func TestAllocateAbortsCleanly(t *testing.T) {
	ctx := context.Background()
	c := newCluster(t, SchemeMove, 12)
	termA, termB := seedTwoHomes(t, c, 150, 40, nil)
	before := totalStoredFilters(c)

	calls := 0
	c.prepareHook = func(home ring.NodeID) error {
		calls++
		if calls == 2 {
			return fmt.Errorf("injected prepare failure on %s", home)
		}
		return nil
	}
	_, err := c.Allocate(ctx)
	if err == nil {
		t.Fatal("round with a failing prepare did not error")
	}
	if calls < 2 {
		t.Fatalf("only %d prepares attempted; the test needs two homes with grids", calls)
	}
	if got := c.CommittedEpoch(); got != 0 {
		t.Fatalf("CommittedEpoch after abort = %d, want 0", got)
	}
	assertNoPendingState(t, c, 0)
	if after := totalStoredFilters(c); after != before {
		t.Fatalf("stored filter copies after abort = %d, want %d (partial state leaked)", after, before)
	}
	if snap := c.Metrics().Snapshot(); snap["realloc.rounds.aborted"] == 0 {
		t.Fatal("realloc.rounds.aborted not incremented")
	}
	res, err := c.Publish(ctx, []string{termA, termB})
	if err != nil || !res.Complete {
		t.Fatalf("publish after abort: %v complete=%v", err, res.Complete)
	}
	if len(res.Matches) != 300 {
		t.Fatalf("matches after abort = %d, want 300", len(res.Matches))
	}

	// With the fault cleared the next round commits normally.
	c.prepareHook = nil
	report, err := c.Allocate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.CommittedEpoch(); got != report.Epoch {
		t.Fatalf("CommittedEpoch after retry = %d, want %d", got, report.Epoch)
	}
	res, err = c.Publish(ctx, []string{termA, termB})
	if err != nil || !res.Complete || len(res.Matches) != 300 {
		t.Fatalf("publish after retry: %v complete=%v matches=%d", err, res.Complete, len(res.Matches))
	}
}

func TestPullLoadsSkipsFailedNodes(t *testing.T) {
	ctx := context.Background()
	c := newCluster(t, SchemeMove, 8)
	seedWorkload(t, c)

	bad := c.nodeIDs[3]
	c.pullHook = func(id ring.NodeID) error {
		if id == bad {
			return errors.New("injected pull failure")
		}
		return nil
	}
	loads, err := c.PullLoads(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(loads) != len(c.nodeIDs)-1 {
		t.Fatalf("loads from %d nodes, want %d", len(loads), len(c.nodeIDs)-1)
	}
	for _, l := range loads {
		if l.ID == bad {
			t.Fatalf("load sample from the failing node %s", bad)
		}
	}
	if snap := c.Metrics().Snapshot(); snap["realloc.stats.skipped"] == 0 {
		t.Fatal("realloc.stats.skipped not incremented")
	}

	// Only a total blackout fails the pull.
	c.pullHook = func(ring.NodeID) error { return errors.New("injected pull failure") }
	if _, err := c.PullLoads(ctx); err == nil {
		t.Fatal("pull with zero responders did not error")
	}
}

func TestStartAutoAllocateSurvivesPanicAndBacksOff(t *testing.T) {
	ctx := context.Background()
	c := newCluster(t, SchemeMove, 10)
	seedHotTerm(t, c, 150, 30)

	var hookMu sync.Mutex
	panics := 0
	c.allocRoundHook = func() {
		hookMu.Lock()
		defer hookMu.Unlock()
		if panics < 2 {
			panics++
			panic("injected allocator bug")
		}
	}
	var errMu sync.Mutex
	var errs []error
	stop := c.StartAutoAllocate(5*time.Millisecond, func(err error) {
		errMu.Lock()
		errs = append(errs, err)
		errMu.Unlock()
	})
	defer stop()

	deadline := time.Now().Add(5 * time.Second)
	for c.CommittedEpoch() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("loop never recovered from the panicking rounds")
		}
		if _, err := c.Publish(ctx, []string{"hot"}); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	stop()

	errMu.Lock()
	defer errMu.Unlock()
	if len(errs) < 2 {
		t.Fatalf("onErr saw %d errors, want the 2 injected panics", len(errs))
	}
	for _, err := range errs[:2] {
		if err == nil || !containsStr(err.Error(), "panicked") {
			t.Fatalf("panic not surfaced as an error: %v", err)
		}
	}
	if snap := c.Metrics().Snapshot(); snap["realloc.loop.failures"] != 0 {
		t.Fatalf("failure streak gauge = %d after a successful round, want 0", snap["realloc.loop.failures"])
	}
}

func TestKickAllocateTriggersImmediateRound(t *testing.T) {
	c := newCluster(t, SchemeMove, 10)
	seedHotTerm(t, c, 150, 30)

	// The ticker alone would not fire within the test's lifetime.
	stop := c.StartAutoAllocate(time.Minute, nil)
	defer stop()
	c.KickAllocate()

	deadline := time.Now().Add(5 * time.Second)
	for c.CommittedEpoch() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("kicked round never committed")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
