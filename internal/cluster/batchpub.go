package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/movesys/move/internal/model"
	"github.com/movesys/move/internal/node"
	"github.com/movesys/move/internal/trace"
)

// BatchPublisher is the coalescing counterpart of Cluster.Publish: it pins
// one live entry node and routes every document through that node's batch
// pipeline, so concurrent publishes bound for the same home node share
// RPC frames. Per-document semantics — Bloom gate, match dedup, delivery
// hook, availability-error swallowing, trace — match Publish exactly.
type BatchPublisher struct {
	c       *Cluster
	batcher *node.Batcher
}

// NewBatchPublisher opens a batch pipeline on a live entry node. The RS
// scheme floods every node per document, so per-home coalescing does not
// apply and construction is refused; callers fall back to Publish.
func (c *Cluster) NewBatchPublisher(cfg node.BatcherConfig) (*BatchPublisher, error) {
	if c.cfg.Scheme == SchemeRS {
		return nil, fmt.Errorf("%w: batch publishing requires home-node routing (scheme=%v)", ErrBadConfig, c.cfg.Scheme)
	}
	entry := c.pickEntry()
	if entry == nil {
		return nil, ErrNoMatchPath
	}
	return &BatchPublisher{c: c, batcher: node.NewBatcher(entry, cfg)}, nil
}

// Publish disseminates one document through the batch pipeline, blocking
// until its matches are known. Safe for concurrent use — concurrency is
// what fills batches.
func (p *BatchPublisher) Publish(ctx context.Context, terms []string) (PublishResult, error) {
	c := p.c
	doc := model.Document{
		ID:    c.docSeq.Add(1),
		Terms: model.SortTerms(append([]string(nil), terms...)),
	}
	if err := doc.Validate(); err != nil {
		return PublishResult{}, err
	}
	c.qCounter.Observe(doc.Terms)
	c.qSketch.ObserveSet(doc.Terms)

	sp := trace.New("publish.batch", doc.ID)
	ctx = trace.With(ctx, sp)
	matches, total, err := p.batcher.Publish(ctx, &doc)
	res := PublishResult{
		Matches:         matches,
		Complete:        err == nil && !total.Degraded,
		PostingsScanned: total.PostingsScanned,
		PostingLists:    total.PostingLists,
		Degraded:        total.Degraded,
		ColumnsLost:     total.ColumnsLost,
	}
	sp.Finish()
	res.Trace = sp.Summary()
	if err != nil && !availabilityOnly(err) {
		return res, err
	}
	return res, nil
}

// Close flushes pending batches and releases the pipeline's workers.
func (p *BatchPublisher) Close() { p.batcher.Close() }

// publishBatchPumpers bounds PublishBatch's concurrent in-flight
// publishes. Concurrency is what lets documents coalesce: a lone
// publisher would only ever flush interval-expired singleton batches.
const publishBatchPumpers = 32

// PublishBatch disseminates many documents through one shared batch
// pipeline and returns their results in input order. Hard (non-
// availability) per-document errors are aggregated into the returned
// error; the corresponding slots still carry whatever partial result the
// publish produced. Under RS the documents are published sequentially —
// flooding has no per-home frames to share.
func (c *Cluster) PublishBatch(ctx context.Context, docs [][]string) ([]PublishResult, error) {
	if len(docs) == 0 {
		return nil, nil
	}
	if c.cfg.Scheme == SchemeRS {
		out := make([]PublishResult, len(docs))
		var errs []error
		for i, terms := range docs {
			res, err := c.Publish(ctx, terms)
			out[i] = res
			if err != nil {
				errs = append(errs, fmt.Errorf("doc %d: %w", i, err))
			}
		}
		return out, errors.Join(errs...)
	}
	// Workers are scaled to the pumper pool so coalesced frames drain
	// concurrently even when per-RPC latency dominates; the bounded queue
	// still applies backpressure when the fabric falls behind.
	bp, err := c.NewBatchPublisher(node.BatcherConfig{Workers: publishBatchPumpers / 2})
	if err != nil {
		return nil, err
	}
	defer bp.Close()

	out := make([]PublishResult, len(docs))
	errSlots := make([]error, len(docs))
	var next atomic.Int64
	workers := publishBatchPumpers
	if workers > len(docs) {
		workers = len(docs)
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(docs) {
					return
				}
				res, err := bp.Publish(ctx, docs[i])
				out[i] = res
				if err != nil {
					errSlots[i] = fmt.Errorf("doc %d: %w", i, err)
				}
			}
		}()
	}
	wg.Wait()
	return out, errors.Join(errSlots...)
}
