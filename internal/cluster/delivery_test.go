package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/movesys/move/internal/delivery"
	"github.com/movesys/move/internal/model"
	"github.com/movesys/move/internal/resilience"
	"github.com/movesys/move/internal/ring"
	"github.com/movesys/move/internal/transport"
)

// deliveryRounds returns the delivery soak length: short by default so the
// race detector's CI budget holds, SOAK_DELIVERY_ROUNDS=40 for the full
// `make soak-delivery` run.
func deliveryRounds(t *testing.T) int {
	if v := os.Getenv("SOAK_DELIVERY_ROUNDS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("SOAK_DELIVERY_ROUNDS=%q is not a positive integer", v)
		}
		return n
	}
	return 8
}

// deliveryLedger is the accounting side of the delivery-equivalence oracle:
// every event a subscriber connection received, every event a slow-consumer
// policy shed (via delivery.Config.OnDrop), and every notification lost to
// a failed owner RPC (via Config.OnDeliveryLoss).
type deliveryLedger struct {
	mu       sync.Mutex
	received map[string]map[uint64]bool
	dropped  map[string]map[uint64]bool
	lost     map[string]map[uint64]bool
}

func newDeliveryLedger() *deliveryLedger {
	return &deliveryLedger{
		received: make(map[string]map[uint64]bool),
		dropped:  make(map[string]map[uint64]bool),
		lost:     make(map[string]map[uint64]bool),
	}
}

func markLedger(m map[string]map[uint64]bool, sub string, doc uint64) {
	inner := m[sub]
	if inner == nil {
		inner = make(map[uint64]bool)
		m[sub] = inner
	}
	inner[doc] = true
}

func (l *deliveryLedger) markReceived(sub string, doc uint64) {
	l.mu.Lock()
	markLedger(l.received, sub, doc)
	l.mu.Unlock()
}

func (l *deliveryLedger) onDrop(sub string, doc uint64, reason string) {
	l.mu.Lock()
	markLedger(l.dropped, sub, doc)
	l.mu.Unlock()
}

func (l *deliveryLedger) onLost(doc uint64, subs []string) {
	l.mu.Lock()
	for _, sub := range subs {
		markLedger(l.lost, sub, doc)
	}
	l.mu.Unlock()
}

func (l *deliveryLedger) has(m map[string]map[uint64]bool, sub string, doc uint64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return m[sub][doc]
}

// chaosConn is an in-process subscriber connection for the chaos harness:
// it records every event into the ledger and acks immediately, unless
// switched into a stalled state (write timeouts) to provoke the
// slow-consumer policy.
type chaosConn struct {
	hub     *delivery.Hub
	sub     string
	led     *deliveryLedger
	stalled atomic.Bool
}

func (c *chaosConn) SendHello(delivery.HelloInfo) error { return nil }
func (c *chaosConn) SendPing() error                    { return nil }
func (c *chaosConn) SendBye(string) error               { return nil }
func (c *chaosConn) Close() error                       { return nil }

func (c *chaosConn) SendEvents(evs []*delivery.Event) error {
	if c.stalled.Load() {
		return delivery.ErrStalled
	}
	for _, ev := range evs {
		c.led.markReceived(c.sub, ev.DocID)
	}
	c.hub.Ack(c.sub, evs[len(evs)-1].Seq)
	return nil
}

// runDeliveryChaos drives the full dissemination path — register, publish
// through entry/home/grid fan-out, route to session owners, enqueue, flush
// to subscriber connections — under seeded data-path fault injection,
// subscriber connect/disconnect churn, stalled readers, node crash/recover
// cycles, and live reallocation rounds. It then settles the cluster and
// proves the delivery-equivalence invariant for every published document:
//
//	for every subscriber the publish matched, the notification was either
//	received, still pending in a bounded queue, shed by the slow-consumer
//	policy (accounted via OnDrop), or lost to a failed owner RPC
//	(accounted via OnDeliveryLoss) — and nothing was delivered to a
//	subscriber the brute-force oracle says should not have it.
//
// shards sets the hub's registry stripe count so the suite proves the
// sharded registry behaves identically to the degenerate single-map layout
// (shards=1) under churn.
func runDeliveryChaos(t *testing.T, policy delivery.Policy, rounds int, seed int64, shards int) {
	ctx := context.Background()
	led := newDeliveryLedger()
	c, err := New(Config{
		Scheme:   SchemeMove,
		Nodes:    12,
		RackSize: 3,
		Capacity: 100_000,
		Seed:     seed,
		Fault: &transport.FaultConfig{
			Seed:    seed,
			Default: transport.FaultProbs{Drop: 0.01, Error: 0.01, Duplicate: 0.01},
		},
		Resilience: &resilience.Policy{
			MaxAttempts:      5,
			BaseDelay:        200 * time.Microsecond,
			MaxDelay:         2 * time.Millisecond,
			BreakerThreshold: 12,
			BreakerCooldown:  20 * time.Millisecond,
			Retryable:        transport.IsAvailabilityError,
		},
		// Tight bounds so stalled readers overflow and the policy really
		// fires during the soak.
		Delivery: &delivery.Config{
			QueueCap:   8,
			WindowCap:  8,
			FlushBatch: 4,
			Workers:    2,
			Shards:     shards,
			Policy:     policy,
			OnDrop:     led.onDrop,
		},
		OnDeliveryLoss: led.onLost,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rng := rand.New(rand.NewSource(seed))

	// Oracle state: every subscriber's filter terms (a subscriber may own
	// several filters — delivery is per subscriber).
	subTerms := make(map[string][][]string)
	var subs []string
	term := func(i int) string { return fmt.Sprintf("k%d", i%24) }
	register := func(sub string, terms []string) {
		t.Helper()
		if _, err := c.Register(ctx, sub, terms, model.MatchAny, 0); err != nil {
			t.Fatal(err)
		}
		if _, known := subTerms[sub]; !known {
			subs = append(subs, sub)
		}
		subTerms[sub] = append(subTerms[sub], terms)
	}
	subMatches := func(sub string, doc []string) bool {
		docSet := make(map[string]struct{}, len(doc))
		for _, d := range doc {
			docSet[d] = struct{}{}
		}
		for _, terms := range subTerms[sub] {
			for _, ft := range terms {
				if _, ok := docSet[ft]; ok {
					return true
				}
			}
		}
		return false
	}

	for i := 0; i < 60; i++ {
		register("sub"+strconv.Itoa(i), []string{term(rng.Intn(24)), term(rng.Intn(24))})
	}

	// Session plumbing: attach/detach subscriber connections on the owner
	// node's hub.
	conns := make(map[string]*chaosConn)
	sessions := make(map[string]*delivery.Session)
	attach := func(sub string) {
		t.Helper()
		owner, err := c.SubscriberOwner(sub)
		if err != nil {
			t.Fatal(err)
		}
		hub := c.DeliveryHub(owner)
		conn := &chaosConn{hub: hub, sub: sub, led: led}
		sess, _, err := hub.Attach(sub, conn, 0)
		if err != nil {
			t.Fatal(err)
		}
		conns[sub] = conn
		sessions[sub] = sess
	}
	detach := func(sub string) {
		if sess, ok := sessions[sub]; ok {
			sess.Detach(conns[sub])
			delete(sessions, sub)
			delete(conns, sub)
		}
	}
	// Two thirds connected up front; the rest accumulate detached backlogs.
	for i, sub := range subs {
		if i%3 != 2 {
			attach(sub)
		}
	}

	type pubRecord struct {
		doc     []string
		matched []string // subscribers the publish reported
	}
	published := make(map[uint64]pubRecord)
	degraded := false // a node is currently failed
	publish := func(doc []string) {
		t.Helper()
		res, err := c.Publish(ctx, doc)
		if err != nil && !availabilityOnly(err) {
			t.Fatalf("publish %v: %v", doc, err)
		}
		rec := pubRecord{doc: doc}
		seen := make(map[string]struct{})
		for _, m := range res.Matches {
			// Phantom check at the match layer: the oracle must agree this
			// subscriber's filters match the document.
			if !subMatches(m.Subscriber, doc) {
				t.Fatalf("phantom match: doc %v delivered to %s", doc, m.Subscriber)
			}
			if _, dup := seen[m.Subscriber]; !dup {
				seen[m.Subscriber] = struct{}{}
				rec.matched = append(rec.matched, m.Subscriber)
			}
		}
		if !degraded && err == nil {
			// Healthy cluster: the match set must be complete — every
			// subscriber the brute-force oracle names is in it.
			for sub := range subTerms {
				if subMatches(sub, doc) {
					if _, ok := seen[sub]; !ok {
						t.Fatalf("lost match: doc %v missing subscriber %s", doc, sub)
					}
				}
			}
		}
		published[res.DocID] = rec
	}

	reallocs := 0
	for round := 1; round <= rounds; round++ {
		// Workload drift: new subscribers (some never connect).
		for i := 0; i < 3; i++ {
			sub := fmt.Sprintf("r%d-%d", round, i)
			register(sub, []string{term(rng.Intn(24)), term(round)})
			if i%2 == 0 {
				attach(sub)
			}
		}
		// Subscriber churn: disconnect a few, reconnect a few, stall a few.
		for i := 0; i < 6; i++ {
			sub := subs[rng.Intn(len(subs))]
			if _, connected := conns[sub]; connected {
				if rng.Intn(2) == 0 {
					detach(sub)
				} else {
					conns[sub].stalled.Store(rng.Intn(2) == 0)
				}
			} else {
				attach(sub)
			}
		}

		for i := 0; i < 15; i++ {
			publish([]string{term(rng.Intn(24)), term(round)})
		}

		if round%3 == 0 {
			// Crash a slice of the cluster, publish into the hole (routing
			// to dead owners must surface as accounted loss, not silence),
			// then recover and reallocate.
			victims := c.FailFraction(0.25, round%2 == 0)
			degraded = true
			for i := 0; i < 8; i++ {
				publish([]string{term(rng.Intn(24)), term(round)})
			}
			c.RecoverNodes(victims...)
			degraded = false
			if _, err := c.Allocate(ctx); err == nil {
				reallocs++
			}
		} else if round%2 == 0 {
			// Reallocation racing live publishes and deliveries.
			done := make(chan error, 1)
			go func() {
				_, err := c.Allocate(context.Background())
				done <- err
			}()
			for i := 0; i < 10; i++ {
				publish([]string{term(rng.Intn(24)), term(round)})
			}
			if err := <-done; err == nil {
				reallocs++
			}
		}
	}

	// Settle: unstall every connected reader and let the janitor-retry
	// path drain what it can. Detached and policy-closed sessions keep
	// their backlog — that is the "pending in bounded queues" side of the
	// union.
	for _, conn := range conns {
		conn.stalled.Store(false)
	}
	c.EachDeliveryHub(func(_ ring.NodeID, h *delivery.Hub) { h.Sweep() })

	// Pending side of the union: every queued or unacked event across
	// every hub.
	pending := make(map[string]map[uint64]bool)
	deadline := time.Now().Add(5 * time.Second)
	for {
		clear(pending)
		busy := false
		c.EachDeliveryHub(func(_ ring.NodeID, h *delivery.Hub) {
			h.Each(func(ss delivery.SessionSnapshot) {
				if ss.State == delivery.StateAttached && ss.Queued+ss.Window > 0 {
					busy = true
				}
				for _, doc := range ss.QueuedDocs {
					markLedger(pending, ss.Sub, doc)
				}
				for _, doc := range ss.WindowDocs {
					markLedger(pending, ss.Sub, doc)
				}
			})
		})
		if !busy || time.Now().After(deadline) {
			break
		}
		c.EachDeliveryHub(func(_ ring.NodeID, h *delivery.Hub) { h.Sweep() })
		time.Sleep(time.Millisecond)
	}

	// The delivery-equivalence union, per published document and matched
	// subscriber: received ∪ pending ∪ policy-dropped ∪ route-lost must
	// cover the match set. Anything uncovered is a silently lost delivery.
	unaccounted := 0
	for docID, rec := range published {
		for _, sub := range rec.matched {
			if led.has(led.received, sub, docID) || pending[sub][docID] ||
				led.has(led.dropped, sub, docID) || led.has(led.lost, sub, docID) {
				continue
			}
			unaccounted++
			t.Errorf("doc %d (%v): delivery to %s silently lost (not received, pending, dropped, or lost-accounted)", docID, rec.doc, sub)
		}
	}
	if unaccounted > 0 {
		t.Fatalf("%d unaccounted deliveries", unaccounted)
	}

	// Phantom side: nothing was delivered to a subscriber whose filters
	// never matched the document (at-least-once allows duplicates, never
	// fabrications).
	led.mu.Lock()
	defer led.mu.Unlock()
	for sub, docs := range led.received {
		for docID := range docs {
			rec, ok := published[docID]
			if !ok {
				t.Fatalf("subscriber %s received unknown doc %d", sub, docID)
			}
			if !subMatches(sub, rec.doc) {
				t.Fatalf("phantom delivery: doc %d (%v) received by %s", docID, rec.doc, sub)
			}
		}
	}

	// The delivery tier rode the aggregated index the whole run: verify
	// the cover accounting came through every reallocation intact.
	assertAggregatedCovers(t, c)

	reg := c.Metrics()
	t.Logf("delivery chaos (%v): %d docs, %d subs, %d reallocs; enqueued=%d delivered=%d redelivered=%d drops.oldest=%d drops.disconnect=%d coalesced=%d route.rpcs=%d route.lost=%d",
		policy, len(published), len(subs), reallocs,
		reg.Counter("delivery.enqueued").Value(), reg.Counter("delivery.delivered").Value(),
		reg.Counter("delivery.redelivered").Value(), reg.Counter("delivery.drops.oldest").Value(),
		reg.Counter("delivery.drops.disconnect").Value(), reg.Counter("delivery.coalesced").Value(),
		reg.Counter("delivery.route.rpcs").Value(), reg.Counter("delivery.route.lost").Value())
}

// TestDeliveryOracle is the oracle-backed delivery equivalence suite: the
// union rule under the drop-oldest and disconnect accounting models, with
// fault injection, stalled readers, subscriber churn, node crashes, and
// reallocation all active. The drop-oldest policy runs across shard counts
// {1, 4, 32} so the lock-striped registry is proven equivalent to the
// single-map layout; the other policies pin intermediate stripe counts.
func TestDeliveryOracle(t *testing.T) {
	for _, shards := range []int{1, 4, 32} {
		shards := shards
		t.Run(fmt.Sprintf("drop-oldest/shards=%d", shards), func(t *testing.T) {
			runDeliveryChaos(t, delivery.DropOldest, 6, 11, shards)
		})
	}
	t.Run("disconnect/shards=4", func(t *testing.T) { runDeliveryChaos(t, delivery.Disconnect, 6, 13, 4) })
	t.Run("coalesce-by-doc/shards=32", func(t *testing.T) { runDeliveryChaos(t, delivery.CoalesceByDoc, 6, 17, 32) })
}

// TestDeliverySoak is the long-run chaos soak (`make soak-delivery`):
// the same harness at SOAK_DELIVERY_ROUNDS length under -race, on the
// full production shard count.
func TestDeliverySoak(t *testing.T) {
	runDeliveryChaos(t, delivery.DropOldest, deliveryRounds(t), 23, delivery.DefaultShards)
}
