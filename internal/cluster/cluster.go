// Package cluster wires nodes, transport, ring, and coordinator into the
// three dissemination systems evaluated in §VI:
//
//   - SchemeMove — distributed inverted list + §IV adaptive filter
//     allocation driven by a coordinator (the paper's "dedicated node").
//   - SchemeIL — the pure distributed inverted list of §III (no
//     allocation): the baseline that suffers hot spots and skewed storage.
//   - SchemeRS — the distributed rendezvous comparator [5][16]: filters
//     hashed uniformly across nodes, every document flooded to all nodes
//     and matched with the centralized SIFT algorithm [25].
//
// The cluster also performs the experiment bookkeeping the figures need:
// per-node storage/matching cost, transfer accounting with rack locality,
// failure injection, and filter-availability measurement.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/movesys/move/internal/alloc"
	"github.com/movesys/move/internal/bloom"
	"github.com/movesys/move/internal/delivery"
	"github.com/movesys/move/internal/metrics"
	"github.com/movesys/move/internal/model"
	"github.com/movesys/move/internal/node"
	"github.com/movesys/move/internal/resilience"
	"github.com/movesys/move/internal/ring"
	"github.com/movesys/move/internal/stats"
	"github.com/movesys/move/internal/trace"
	"github.com/movesys/move/internal/transport"
)

// Scheme selects the dissemination system.
type Scheme int

// The three evaluated schemes.
const (
	// SchemeMove is the full system: inverted-list registration plus
	// adaptive allocation.
	SchemeMove Scheme = iota + 1
	// SchemeIL is the distributed inverted list without allocation.
	SchemeIL
	// SchemeRS is the rendezvous/flooding baseline.
	SchemeRS
)

// String names the scheme as the paper does.
func (s Scheme) String() string {
	switch s {
	case SchemeMove:
		return "Move"
	case SchemeIL:
		return "IL"
	case SchemeRS:
		return "RS"
	default:
		return fmt.Sprintf("scheme(%d)", int(s))
	}
}

// Config parameterizes a cluster.
type Config struct {
	// Scheme selects Move, IL, or RS.
	Scheme Scheme
	// Nodes is N, the cluster size.
	Nodes int
	// RackSize is the number of nodes per rack (default 5, giving the
	// paper's 20-node default cluster 4 racks).
	RackSize int
	// Capacity is C, the per-node filter capacity (definitions incl.
	// replicas). Default 3e6 as in §VI.C.
	Capacity int
	// Placement selects where allocated filters go (Move only).
	Placement ring.Placement
	// AllocStrategy selects the §IV allocation-factor formula (Move only).
	AllocStrategy alloc.Strategy
	// AllocNoSeparation disables balance-driven separation columns in the
	// optimizer (rows-only ablation).
	AllocNoSeparation bool
	// AllocRatio overrides the §IV-B allocation-ratio choice (ablation:
	// pure replication vs pure separation vs optimizer-chosen).
	AllocRatio alloc.RatioMode
	// BloomFPR is the false-positive rate of the filter-term Bloom filter;
	// default 0.01.
	BloomFPR float64
	// BloomCapacity sizes the Bloom filter; default 1<<20 distinct terms.
	BloomCapacity int
	// Seed makes the cluster deterministic.
	Seed int64
	// OnDeliver, if set, receives every (document, matches) delivery.
	OnDeliver func(doc *model.Document, matches []node.Match)
	// Delivery, when set, enables the subscriber delivery tier (§14): every
	// node gets a session hub built from this config (sharing the cluster
	// registry), and entry nodes route each match set to the subscribers'
	// session owners via msgDeliverBatch.
	Delivery *delivery.Config
	// OnDeliveryLoss, if set, is invoked when routed notifications could
	// not reach a session owner — the delivery-loss accounting hook.
	OnDeliveryLoss func(docID uint64, subs []string)
	// ControlTimeout bounds coordinator control RPCs (stats pulls,
	// allocation commands). Default 30s.
	ControlTimeout time.Duration
	// Resilience overrides the in-process retry/breaker policy. Nil uses
	// a policy tuned for the in-memory fabric (1ms base backoff, 3
	// attempts, 250ms breaker cooldown).
	Resilience *resilience.Policy
	// Fault, when set, wraps every node's transport in a fault-injecting
	// decorator (per-node seeds derived from Fault.Seed). Coordinator
	// control RPCs bypass injection — they model the paper's dedicated
	// master node, not the data path.
	Fault *transport.FaultConfig
	// RPCLatency adds a fixed one-way delivery delay to every RPC on the
	// in-memory transport. Zero (the default) keeps the fabric
	// instantaneous; benchmarks set it so publish figures include a
	// realistic per-RPC cost for frame coalescing to amortize.
	RPCLatency time.Duration
	// Metrics receives the cluster's resilience counters (rpc.retries,
	// breaker.open, publish.failover, ...). Nil creates a private registry
	// exposed via Cluster.Metrics.
	Metrics *metrics.Registry
}

// Cluster is an in-process MOVE deployment over the in-memory transport.
type Cluster struct {
	cfg  Config
	net  *transport.Network
	ring *ring.Ring
	rng  *rand.Rand

	nodes    map[ring.NodeID]*node.Node
	hubs     map[ring.NodeID]*delivery.Hub
	nodeIDs  []ring.NodeID // stable order
	rackOf   map[ring.NodeID]string
	alive    map[ring.NodeID]bool
	aliveMu  sync.RWMutex
	entrySeq atomic.Uint64

	// Resilience: one executor per node (wired into node.send) plus one for
	// coordinator control RPCs; kept together so RecoverNodes can reset the
	// breakers of a rejoining peer everywhere at once.
	metrics   *metrics.Registry
	executors []*resilience.Executor
	coordExec *resilience.Executor

	// Coordinator state (the paper's dedicated master node).
	filterSeq  atomic.Uint64
	docSeq     atomic.Uint64
	pCounter   *stats.TermCounter // term popularity over registered filters
	qCounter   *stats.TermCounter // term frequency over published documents
	qSketch    *stats.SpaceSaving // bounded-memory hot-term detection
	bloomMu    sync.Mutex
	bloomTerms map[string]struct{}
	allocEpoch atomic.Uint64
	// committedEpoch is the newest epoch whose two-phase round reached
	// commit; an aborted round never advances it.
	committedEpoch atomic.Uint64
	placementMu    sync.RWMutex
	// filterHolders maps each filter to the nodes storing its definition —
	// maintained for availability measurement (Figure 9 d) and pruned by
	// the reallocation GC.
	filterHolders map[model.FilterID][]ring.NodeID
	filterTerms   map[model.FilterID][]string
	// homeHolders maps each filter to its original registration homes.
	// Home copies are never garbage-collected: a term re-homed by churn
	// and homed back later must still find its filters (§13 GC rules).
	homeHolders map[model.FilterID][]ring.NodeID

	// Committed-grid bookkeeping for the two-phase reallocation GC (§13):
	// the grid each home node (and each hot term) currently serves, plus
	// the grids retired by the most recent committed round — kept one extra
	// round so publishes in flight across a cutover still find every copy.
	gridsMu            sync.Mutex
	committedGrids     map[ring.NodeID]*alloc.Grid
	committedTermGrids map[string]*alloc.Grid
	prevGrids          []*alloc.Grid

	// allocKick nudges the auto-allocate loop (gossip join/leave, fail or
	// recover events) to run a round ahead of its ticker.
	allocKick chan struct{}

	// Test hooks (nil in production): injected failures for abort-path and
	// degraded-pull coverage, and a probe called at the top of each round.
	prepareHook    func(home ring.NodeID) error
	pullHook       func(id ring.NodeID) error
	allocRoundHook func()

	// Transfer accounting for the virtual-time cost model.
	transferMu       sync.Mutex
	transferTotal    int64
	transferLocal    int64 // intra-rack transfers
	perNodeRecv      map[ring.NodeID]int64
	perNodeRecvLocal map[ring.NodeID]int64
}

// hotTermSketchCapacity bounds the coordinator's hot-term sketch: §V's
// maintenance concern is exactly that exact per-term state over millions
// of terms is too big, so hot-term detection runs on a SpaceSaving sketch.
const hotTermSketchCapacity = 4096

// mustSketch builds the hot-term sketch (the capacity constant is valid).
func mustSketch() *stats.SpaceSaving {
	s, err := stats.NewSpaceSaving(hotTermSketchCapacity)
	if err != nil {
		panic(err)
	}
	return s
}

// rsReplicas is the key/value platform's standard replication factor
// applied to RS-registered filters (§VI.C).
const rsReplicas = 3

// Validation errors.
var (
	// ErrBadConfig reports unusable cluster parameters.
	ErrBadConfig = errors.New("cluster: invalid config")
	// ErrNoMatchPath reports a publish that could not reach any node.
	ErrNoMatchPath = errors.New("cluster: no reachable node")
)

// New boots a cluster: ring, transport fabric, and one node goroutine-less
// server per member (handlers run on caller goroutines of the in-memory
// fabric).
func New(cfg Config) (*Cluster, error) {
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("%w: nodes=%d", ErrBadConfig, cfg.Nodes)
	}
	switch cfg.Scheme {
	case SchemeMove, SchemeIL, SchemeRS:
	default:
		return nil, fmt.Errorf("%w: scheme=%v", ErrBadConfig, cfg.Scheme)
	}
	if cfg.RackSize == 0 {
		cfg.RackSize = 5
	}
	if cfg.Capacity == 0 {
		cfg.Capacity = 3_000_000
	}
	if cfg.Placement == 0 {
		cfg.Placement = ring.PlacementHybrid
	}
	if cfg.AllocStrategy == 0 {
		cfg.AllocStrategy = alloc.StrategyGeneral
	}
	if cfg.BloomFPR == 0 {
		cfg.BloomFPR = 0.01
	}
	if cfg.BloomCapacity == 0 {
		cfg.BloomCapacity = 1 << 20
	}
	if cfg.ControlTimeout == 0 {
		cfg.ControlTimeout = 30 * time.Second
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}

	c := &Cluster{
		cfg:                cfg,
		net:                transport.NewNetwork(transport.NetworkConfig{Latency: cfg.RPCLatency}),
		ring:               ring.New(ring.Config{}),
		rng:                rand.New(rand.NewSource(seed)),
		nodes:              make(map[ring.NodeID]*node.Node, cfg.Nodes),
		hubs:               make(map[ring.NodeID]*delivery.Hub),
		rackOf:             make(map[ring.NodeID]string, cfg.Nodes),
		alive:              make(map[ring.NodeID]bool, cfg.Nodes),
		pCounter:           stats.NewTermCounter(),
		qCounter:           stats.NewTermCounter(),
		qSketch:            mustSketch(),
		bloomTerms:         make(map[string]struct{}),
		filterHolders:      make(map[model.FilterID][]ring.NodeID),
		filterTerms:        make(map[model.FilterID][]string),
		homeHolders:        make(map[model.FilterID][]ring.NodeID),
		committedGrids:     make(map[ring.NodeID]*alloc.Grid),
		committedTermGrids: make(map[string]*alloc.Grid),
		allocKick:          make(chan struct{}, 1),
		perNodeRecv:        make(map[ring.NodeID]int64),
		perNodeRecvLocal:   make(map[ring.NodeID]int64),
		metrics:            reg,
	}

	basePolicy := clusterPolicy()
	if cfg.Resilience != nil {
		basePolicy = *cfg.Resilience
	}
	coordPolicy := basePolicy
	coordPolicy.Seed = seed
	c.coordExec = resilience.New(coordPolicy, reg)
	c.executors = append(c.executors, c.coordExec)

	for i := 0; i < cfg.Nodes; i++ {
		id := ring.NodeID("node-" + strconv.Itoa(i))
		rack := "rack-" + strconv.Itoa(i/cfg.RackSize)
		if err := c.ring.Add(ring.Member{ID: id, Rack: rack}); err != nil {
			return nil, err
		}
		pol := basePolicy
		pol.Seed = seed + int64(i) + 1
		ex := resilience.New(pol, reg)
		c.executors = append(c.executors, ex)
		var hub *delivery.Hub
		if cfg.Delivery != nil {
			dcfg := *cfg.Delivery
			dcfg.Metrics = reg
			hub = delivery.NewHub(dcfg)
			c.hubs[id] = hub
		}
		nd, err := node.New(node.Config{
			ID:              id,
			Rack:            rack,
			Ring:            c.ring,
			Seed:            seed + int64(i) + 1,
			OnDeliver:       cfg.OnDeliver,
			Delivery:        hub,
			RouteDeliveries: cfg.Delivery != nil,
			OnDeliveryLoss:  cfg.OnDeliveryLoss,
			OnTransfer:      c.recordTransfer,
			Resilience:      ex,
			Metrics:         reg,
		})
		if err != nil {
			return nil, err
		}
		var tr transport.Transport = c.net.Join(id, nd.Handle)
		if cfg.Fault != nil {
			fc := *cfg.Fault
			if fc.Seed == 0 {
				fc.Seed = 1
			}
			fc.Seed = fc.Seed*1000 + int64(i)
			tr = transport.NewFaulty(tr, fc)
		}
		nd.Attach(tr)
		c.nodes[id] = nd
		c.nodeIDs = append(c.nodeIDs, id)
		c.rackOf[id] = rack
		c.alive[id] = true
	}
	return c, nil
}

// clusterPolicy is the retry/breaker policy for the in-memory fabric: the
// backoff is tight (handlers run on caller goroutines, so failures surface
// in microseconds) and only availability errors are retried — an ErrRemote
// means the peer answered and retrying would just repeat the answer.
func clusterPolicy() resilience.Policy {
	return resilience.Policy{
		MaxAttempts:      3,
		BaseDelay:        time.Millisecond,
		MaxDelay:         10 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  250 * time.Millisecond,
		Retryable:        transport.IsAvailabilityError,
	}
}

// Metrics exposes the cluster's resilience counters (rpc.retries,
// rpc.giveups, breaker.open, publish.failover, publish.degraded, ...).
func (c *Cluster) Metrics() *metrics.Registry { return c.metrics }

// DeliveryHub returns the session hub on one node (nil when the delivery
// tier is disabled).
func (c *Cluster) DeliveryHub(id ring.NodeID) *delivery.Hub { return c.hubs[id] }

// EachDeliveryHub calls fn with every node's session hub, in node order.
func (c *Cluster) EachDeliveryHub(fn func(id ring.NodeID, h *delivery.Hub)) {
	for _, id := range c.nodeIDs {
		if h := c.hubs[id]; h != nil {
			fn(id, h)
		}
	}
}

// SubscriberOwner returns the node whose hub owns a subscriber's session
// (the home node of "subscriber/<name>").
func (c *Cluster) SubscriberOwner(sub string) (ring.NodeID, error) {
	return c.ring.HomeNode("subscriber/" + sub)
}

// Close stops the delivery hubs (worker pools, janitors, attached
// connections). The in-memory transport itself needs no teardown.
func (c *Cluster) Close() {
	for _, h := range c.hubs {
		h.Stop()
	}
}

// Scheme returns the configured scheme.
func (c *Cluster) Scheme() Scheme { return c.cfg.Scheme }

// Size returns the cluster size.
func (c *Cluster) Size() int { return len(c.nodeIDs) }

// NodeIDs returns the member IDs in creation order.
func (c *Cluster) NodeIDs() []ring.NodeID {
	return append([]ring.NodeID(nil), c.nodeIDs...)
}

// Node returns a member server (tests and load accounting).
func (c *Cluster) Node(id ring.NodeID) *node.Node { return c.nodes[id] }

// recordTransfer tallies one document transfer for the cost model.
func (c *Cluster) recordTransfer(from, to ring.NodeID) {
	c.transferMu.Lock()
	defer c.transferMu.Unlock()
	c.transferTotal++
	if c.rackOf[from] == c.rackOf[to] {
		c.transferLocal++
		c.perNodeRecvLocal[to]++
	}
	c.perNodeRecv[to]++
}

// Register creates a filter from subscriber + terms and registers it
// according to the scheme. Terms must be preprocessed (text.Terms).
func (c *Cluster) Register(ctx context.Context, subscriber string, terms []string, mode model.MatchMode, threshold float64) (model.FilterID, error) {
	id := model.FilterID(c.filterSeq.Add(1))
	f := model.Filter{
		ID:         id,
		Subscriber: subscriber,
		Terms:      model.SortTerms(append([]string(nil), terms...)),
		Mode:       mode,
		Threshold:  threshold,
	}
	if err := f.Validate(); err != nil {
		return 0, err
	}
	holders, err := c.registerFilter(ctx, f)
	if err != nil {
		return 0, err
	}

	// Coordinator-side bookkeeping: popularity statistics, Bloom terms,
	// placement for availability accounting.
	c.pCounter.Observe(f.Terms)
	c.bloomMu.Lock()
	for _, t := range f.Terms {
		c.bloomTerms[t] = struct{}{}
	}
	c.bloomMu.Unlock()
	c.placementMu.Lock()
	c.filterHolders[id] = holders
	c.filterTerms[id] = f.Terms
	// The original homes, immutable: the GC's floor for this filter.
	c.homeHolders[id] = append([]ring.NodeID(nil), holders...)
	c.placementMu.Unlock()
	return id, nil
}

// registerFilter places the filter per scheme and returns the holder nodes.
func (c *Cluster) registerFilter(ctx context.Context, f model.Filter) ([]ring.NodeID, error) {
	switch c.cfg.Scheme {
	case SchemeMove, SchemeIL:
		// Home node of every term stores the full filter and builds the
		// posting list for its own term only (§III.B).
		holders := make([]ring.NodeID, 0, len(f.Terms))
		seen := make(map[ring.NodeID][]string)
		for _, t := range f.Terms {
			home, err := c.ring.HomeNode(t)
			if err != nil {
				return nil, err
			}
			seen[home] = append(seen[home], t)
		}
		for home, postingTerms := range seen {
			payload := node.EncodeRegister(node.RegisterReq{Filter: f, PostingTerms: postingTerms})
			if _, err := c.sendTo(ctx, home, payload); err != nil {
				return nil, fmt.Errorf("cluster: register %s on %s: %w", f.ID, home, err)
			}
			holders = append(holders, home)
		}
		return holders, nil
	case SchemeRS:
		// Uniform placement by filter ID with the key/value platform's
		// standard three-fold replication (§VI.C: RS's per-node storage C
		// "contain[s] three folds of replicas of filters"). The primary
		// indexes every term so SIFT can match locally; the two passive
		// replicas store the definition for durability only (reads at
		// consistency ONE), so flooding matches each filter exactly once.
		n := len(c.nodeIDs)
		replicas := rsReplicas
		if replicas > n {
			replicas = n
		}
		base := int(ring.HashKey(f.ID.String()) % uint64(n))
		holders := make([]ring.NodeID, 0, replicas)
		for i := 0; i < replicas; i++ {
			target := c.nodeIDs[(base+i)%n]
			postingTerms := f.Terms
			if i > 0 {
				postingTerms = nil // passive replica: definition only
			}
			payload := node.EncodeRegister(node.RegisterReq{Filter: f, PostingTerms: postingTerms})
			if _, err := c.sendTo(ctx, target, payload); err != nil {
				return nil, fmt.Errorf("cluster: register %s on %s: %w", f.ID, target, err)
			}
			holders = append(holders, target)
		}
		return holders, nil
	default:
		return nil, fmt.Errorf("%w: scheme=%v", ErrBadConfig, c.cfg.Scheme)
	}
}

// sendTo routes through an arbitrary live endpoint (the in-memory fabric
// delivers directly). Control RPCs run under the coordinator's resilience
// executor: transient unavailability is retried with backoff, and a peer
// that keeps failing trips a breaker so subsequent control rounds fail
// fast instead of burning their timeout budget on it.
func (c *Cluster) sendTo(ctx context.Context, to ring.NodeID, payload []byte) ([]byte, error) {
	nd, ok := c.nodes[to]
	if !ok {
		return nil, fmt.Errorf("cluster: unknown node %s: %w", to, ErrNoMatchPath)
	}
	raw, err := resilience.DoValue(c.coordExec, ctx, string(to), func(ctx context.Context) ([]byte, error) {
		if c.net.Failed(to) {
			return nil, fmt.Errorf("cluster: node %s down: %w", to, transport.ErrNodeDown)
		}
		return nd.Handle(ctx, "coordinator", payload)
	})
	if err != nil && errors.Is(err, resilience.ErrOpen) {
		err = fmt.Errorf("cluster: node %s: %w: %w", to, transport.ErrNodeDown, err)
	}
	return raw, err
}

// Unregister removes a filter's definition from every live node. The
// removal is broadcast rather than holder-targeted because allocation
// rounds and post-allocation registrations replicate definitions onto grid
// nodes; a broadcast reaches every copy regardless of how it got there.
// Posting entries are cleaned lazily on match (§III.B design: posting
// lists are append-only; a missing definition drops the candidate).
func (c *Cluster) Unregister(ctx context.Context, id model.FilterID) error {
	c.placementMu.Lock()
	_, known := c.filterHolders[id]
	delete(c.filterHolders, id)
	delete(c.filterTerms, id)
	delete(c.homeHolders, id)
	c.placementMu.Unlock()
	if !known {
		return fmt.Errorf("cluster: unregister %s: unknown filter", id)
	}
	payload := node.EncodeUnregister(id)
	var errs []error
	for _, h := range c.nodeIDs {
		if c.net.Failed(h) {
			continue
		}
		if _, err := c.sendTo(ctx, h, payload); err != nil {
			errs = append(errs, fmt.Errorf("cluster: unregister %s on %s: %w", id, h, err))
		}
	}
	return errors.Join(errs...)
}

// PublishResult reports one document's dissemination outcome.
type PublishResult struct {
	// DocID is the coordinator-assigned document ID — the key delivery
	// events carry, so subscribers (and the oracle suite) can correlate
	// what they received with what was published.
	DocID uint64
	// Matches are the deduplicated (filter, subscriber) hits.
	Matches []node.Match
	// Complete is true when every match request succeeded — the paper's
	// throughput counts a document only "if all matching filters are
	// found" (§VI.A).
	Complete bool
	// PostingsScanned is the total matching cost incurred cluster-wide.
	PostingsScanned int
	// PostingLists is the number of posting lists retrieved cluster-wide.
	PostingLists int
	// Degraded is true when some allocation-grid columns had no live
	// replica in any partition row, so Matches may be missing that slice
	// of the filter set (§VI.D availability under failure).
	Degraded bool
	// ColumnsLost counts grid columns no row could serve.
	ColumnsLost int
	// Trace is the publish-path record: one hop per forwarding edge (entry
	// → home, home → grid column, failovers included) plus per-stage wall
	// times — why the document went where it did.
	Trace trace.Summary
}

// Publish disseminates one document. Terms must be preprocessed.
func (c *Cluster) Publish(ctx context.Context, terms []string) (PublishResult, error) {
	doc := model.Document{
		ID:    c.docSeq.Add(1),
		Terms: model.SortTerms(append([]string(nil), terms...)),
	}
	if err := doc.Validate(); err != nil {
		return PublishResult{}, err
	}
	c.qCounter.Observe(doc.Terms)
	c.qSketch.ObserveSet(doc.Terms)

	sp := trace.New("publish", doc.ID)
	ctx = trace.With(ctx, sp)
	res, err := c.publish(ctx, &doc)
	sp.Finish()
	res.DocID = doc.ID
	res.Trace = sp.Summary()
	return res, err
}

// publish dispatches to the scheme's dissemination path.
func (c *Cluster) publish(ctx context.Context, doc *model.Document) (PublishResult, error) {
	switch c.cfg.Scheme {
	case SchemeMove, SchemeIL:
		return c.publishInverted(ctx, doc)
	case SchemeRS:
		return c.publishFlood(ctx, doc)
	default:
		return PublishResult{}, fmt.Errorf("%w: scheme=%v", ErrBadConfig, c.cfg.Scheme)
	}
}

// publishInverted enters through a rotating live entry node and runs the
// §V dissemination (Bloom gate + home-node routing + grid fan-out).
func (c *Cluster) publishInverted(ctx context.Context, doc *model.Document) (PublishResult, error) {
	entry := c.pickEntry()
	if entry == nil {
		return PublishResult{}, ErrNoMatchPath
	}
	matches, total, err := entry.PublishEntry(ctx, doc)
	res := PublishResult{
		Matches:         matches,
		Complete:        err == nil && !total.Degraded,
		PostingsScanned: total.PostingsScanned,
		PostingLists:    total.PostingLists,
		Degraded:        total.Degraded,
		ColumnsLost:     total.ColumnsLost,
	}
	// err may aggregate several per-destination failures (errors.Join). A
	// join whose every leaf is an availability error is the expected shape
	// of publishing into a partially-failed cluster: record it as an
	// incomplete result, not a hard error. Anything else (decode errors,
	// cancellation) propagates.
	if err != nil && !availabilityOnly(err) {
		return res, err
	}
	return res, nil
}

// availabilityOnly reports whether every leaf of a (possibly joined,
// possibly wrapped) error tree is an availability-class failure: node
// down, breaker open, attempt deadline, or a remote peer that failed the
// request. errors.Is alone cannot answer this — on a joined error it
// matches if ANY branch matches, while swallowing requires ALL.
func availabilityOnly(err error) bool {
	if err == nil {
		return false
	}
	switch u := err.(type) {
	case interface{ Unwrap() []error }:
		errs := u.Unwrap()
		if len(errs) == 0 {
			return false
		}
		for _, e := range errs {
			if !availabilityOnly(e) {
				return false
			}
		}
		return true
	case interface{ Unwrap() error }:
		if inner := u.Unwrap(); inner != nil {
			return availabilityOnly(inner)
		}
	}
	// Leaf: no traversal left, so errors.Is is a plain comparison here.
	return errors.Is(err, transport.ErrNodeDown) || errors.Is(err, transport.ErrRemote) ||
		errors.Is(err, context.DeadlineExceeded) || errors.Is(err, resilience.ErrOpen)
}

// publishFlood implements RS: the document goes to every live node, each of
// which runs the SIFT matcher over its local filters.
func (c *Cluster) publishFlood(ctx context.Context, doc *model.Document) (PublishResult, error) {
	payload := node.EncodeSIFT(doc)
	entry := c.pickEntry()
	if entry == nil {
		return PublishResult{}, ErrNoMatchPath
	}
	entryID := entry.ID()

	type result struct {
		resp node.MatchResp
		err  error
	}
	sp := trace.From(ctx)
	results := make([]result, len(c.nodeIDs))
	var wg sync.WaitGroup
	for i, id := range c.nodeIDs {
		c.recordTransfer(entryID, id)
		wg.Add(1)
		go func(i int, id ring.NodeID) {
			defer wg.Done()
			floodStart := time.Now()
			raw, err := c.sendTo(ctx, id, payload)
			if err != nil {
				sp.AddHop(trace.Hop{
					Stage: "flood", From: string(entryID), To: string(id),
					Err: err.Error(), ElapsedNS: time.Since(floodStart).Nanoseconds(),
				})
				results[i] = result{err: err}
				return
			}
			resp, err := node.DecodeMatchResp(raw)
			sp.AddHop(trace.Hop{
				Stage: "flood", From: string(entryID), To: string(id),
				ElapsedNS: time.Since(floodStart).Nanoseconds(),
			})
			results[i] = result{resp: resp, err: err}
		}(i, id)
	}
	wg.Wait()

	res := PublishResult{Complete: true}
	seen := make(map[model.FilterID]struct{})
	var errs []error
	for i, r := range results {
		if r.err != nil {
			res.Complete = false
			errs = append(errs, fmt.Errorf("cluster: flood to %s: %w", c.nodeIDs[i], r.err))
			continue
		}
		res.PostingsScanned += r.resp.PostingsScanned
		res.PostingLists += r.resp.PostingLists
		for _, m := range r.resp.Matches {
			if _, dup := seen[m.Filter]; dup {
				continue
			}
			seen[m.Filter] = struct{}{}
			res.Matches = append(res.Matches, m)
		}
	}
	if c.cfg.OnDeliver != nil && len(res.Matches) > 0 {
		c.cfg.OnDeliver(doc, res.Matches)
	}
	// Same contract as publishInverted: successes are kept, unreachable
	// nodes only cost completeness, and non-availability failures surface
	// with every per-destination error joined.
	if err := errors.Join(errs...); err != nil && !availabilityOnly(err) {
		return res, err
	}
	return res, nil
}

// pickEntry rotates over live nodes.
func (c *Cluster) pickEntry() *node.Node {
	n := len(c.nodeIDs)
	start := int(c.entrySeq.Add(1))
	for i := 0; i < n; i++ {
		id := c.nodeIDs[(start+i)%n]
		if !c.net.Failed(id) {
			return c.nodes[id]
		}
	}
	return nil
}

// RefreshBloom rebuilds the global filter-term Bloom filter and installs it
// on every live node.
func (c *Cluster) RefreshBloom(ctx context.Context) error {
	c.bloomMu.Lock()
	terms := make([]string, 0, len(c.bloomTerms))
	for t := range c.bloomTerms {
		terms = append(terms, t)
	}
	c.bloomMu.Unlock()

	capacity := c.cfg.BloomCapacity
	if len(terms) > capacity {
		capacity = len(terms)
	}
	bf, err := bloom.New(capacity, c.cfg.BloomFPR)
	if err != nil {
		return err
	}
	for _, t := range terms {
		bf.Add(t)
	}
	payload := node.EncodeInstallBloom(bf.Marshal())
	var errs []error
	for _, id := range c.nodeIDs {
		if c.net.Failed(id) {
			continue
		}
		if _, err := c.sendTo(ctx, id, payload); err != nil {
			errs = append(errs, fmt.Errorf("cluster: install bloom on %s: %w", id, err))
		}
	}
	return errors.Join(errs...)
}

// FailNodes crashes the given nodes and evicts them from the ring, exactly
// as the gossip failure detector would: subsequent publishes re-home the
// dead nodes' terms onto live successors (which lack the lost filters —
// that loss is what the availability metric measures), so dissemination
// keeps completing.
func (c *Cluster) FailNodes(ids ...ring.NodeID) {
	c.aliveMu.Lock()
	for _, id := range ids {
		c.net.Fail(id)
		c.alive[id] = false
		// Removal is idempotent-enough: an unknown-node error only means
		// the node was already evicted.
		_ = c.ring.Remove(id)
	}
	c.aliveMu.Unlock()
	// Membership changed: the auto-allocate loop should rebalance soon.
	c.KickAllocate()
}

// RecoverNodes restores crashed nodes and rejoins them to the ring (their
// virtual-node tokens are deterministic, so they reclaim their old
// positions).
func (c *Cluster) RecoverNodes(ids ...ring.NodeID) {
	c.aliveMu.Lock()
	for _, id := range ids {
		c.net.Recover(id)
		c.alive[id] = true
		if !c.ring.Contains(id) {
			_ = c.ring.Add(ring.Member{ID: id, Rack: c.rackOf[id]})
		}
		// The gossip node-up signal: clear every sender's breaker for the
		// rejoined peer so it is probed immediately instead of after the
		// cooldown of a breaker that opened while it was dead.
		for _, ex := range c.executors {
			ex.Reset(string(id))
		}
	}
	c.aliveMu.Unlock()

	// A node that slept through commits and GC holds a grid whose
	// placements may since have been collected. Drop it (pending included):
	// the node matches from its complete local store — homes keep full
	// copies, migrations only ever add — until the next round re-prepares
	// it. Its retired grid gets the standard one-round GC grace.
	c.gridsMu.Lock()
	for _, id := range ids {
		if g, ok := c.committedGrids[id]; ok {
			c.prevGrids = append(c.prevGrids, g)
			delete(c.committedGrids, id)
		}
	}
	c.gridsMu.Unlock()
	drop := node.EncodeDropGrid()
	for _, id := range ids {
		_, _ = c.sendTo(context.Background(), id, drop)
	}
	c.KickAllocate()
}

// KickAllocate nudges the auto-allocate loop to run a reallocation round
// now instead of waiting for its ticker — wired to membership changes
// (gossip join/leave, FailNodes/RecoverNodes). Non-blocking: a kick while
// one is already pending coalesces.
func (c *Cluster) KickAllocate() {
	select {
	case c.allocKick <- struct{}{}:
	default:
	}
}

// CommittedEpoch returns the newest reallocation epoch that reached
// commit; aborted rounds never advance it.
func (c *Cluster) CommittedEpoch() uint64 { return c.committedEpoch.Load() }

// FailFraction crashes frac of the cluster. With byRack the failure is
// rack-correlated (whole racks at a time) — the failure mode that penalizes
// rack-local placement (§V, §VI.D).
func (c *Cluster) FailFraction(frac float64, byRack bool) []ring.NodeID {
	want := int(frac * float64(len(c.nodeIDs)))
	var victims []ring.NodeID
	if byRack {
		racks := make(map[string][]ring.NodeID)
		var rackOrder []string
		for _, id := range c.nodeIDs {
			r := c.rackOf[id]
			if _, ok := racks[r]; !ok {
				rackOrder = append(rackOrder, r)
			}
			racks[r] = append(racks[r], id)
		}
		c.rng.Shuffle(len(rackOrder), func(i, j int) { rackOrder[i], rackOrder[j] = rackOrder[j], rackOrder[i] })
		for _, r := range rackOrder {
			if len(victims) >= want {
				break
			}
			victims = append(victims, racks[r]...)
		}
		if len(victims) > want {
			victims = victims[:want]
		}
	} else {
		perm := c.rng.Perm(len(c.nodeIDs))
		for _, i := range perm[:want] {
			victims = append(victims, c.nodeIDs[i])
		}
	}
	c.FailNodes(victims...)
	return victims
}

// AliveCount returns the number of live nodes.
func (c *Cluster) AliveCount() int {
	n := 0
	for _, id := range c.nodeIDs {
		if !c.net.Failed(id) {
			n++
		}
	}
	return n
}

// AvailableFilterFraction returns the fraction of registered filters with
// at least one live holder — the availability metric of Figure 9(d).
func (c *Cluster) AvailableFilterFraction() float64 {
	c.placementMu.RLock()
	defer c.placementMu.RUnlock()
	if len(c.filterHolders) == 0 {
		return 1
	}
	avail := 0
	for _, holders := range c.filterHolders {
		for _, h := range holders {
			if !c.net.Failed(h) {
				avail++
				break
			}
		}
	}
	return float64(avail) / float64(len(c.filterHolders))
}

// ringHome resolves the home node of a term (exposed for tests and the
// experiment harness).
func (c *Cluster) ringHome(term string) (ring.NodeID, error) {
	return c.ring.HomeNode(term)
}

// HomeNode resolves the home node of a term.
func (c *Cluster) HomeNode(term string) (ring.NodeID, error) { return c.ringHome(term) }

// RackOf returns the rack of a node.
func (c *Cluster) RackOf(id ring.NodeID) string { return c.rackOf[id] }

// PCounter exposes the coordinator's filter-term popularity statistics.
func (c *Cluster) PCounter() *stats.TermCounter { return c.pCounter }

// QCounter exposes the coordinator's document-term frequency statistics.
func (c *Cluster) QCounter() *stats.TermCounter { return c.qCounter }

// TotalFilters returns the number of registered filters.
func (c *Cluster) TotalFilters() int { return int(c.filterSeq.Load()) }

// TotalDocs returns the number of published documents.
func (c *Cluster) TotalDocs() int { return int(c.docSeq.Load()) }

// withTimeout wraps a context for internal control RPCs with the
// configured ControlTimeout.
func (c *Cluster) withTimeout(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithTimeout(ctx, c.cfg.ControlTimeout)
}
