package cluster

import (
	"context"
	"strconv"
	"testing"

	"github.com/movesys/move/internal/model"
)

// benchCluster builds a warm Move cluster with a realistic filter load so
// publish benchmarks exercise routing, fan-out, and matching end to end.
func benchCluster(b *testing.B, nodes, filters int) *Cluster {
	b.Helper()
	c := newCluster(b, SchemeMove, nodes)
	ctx := context.Background()
	for i := 0; i < filters; i++ {
		terms := []string{
			"topic-" + strconv.Itoa(i%64),
			"tag-" + strconv.Itoa(i%256),
		}
		if _, err := c.Register(ctx, "sub-"+strconv.Itoa(i), terms, model.MatchAny, 0); err != nil {
			b.Fatal(err)
		}
	}
	return c
}

// benchDoc returns a deterministic document term set touching a handful of
// hot topics.
func benchDoc(i int) []string {
	return []string{
		"topic-" + strconv.Itoa(i%64),
		"tag-" + strconv.Itoa(i%256),
		"noise-" + strconv.Itoa(i%17),
		"noise-" + strconv.Itoa(i%29),
		"filler-a", "filler-b", "filler-c", "filler-d",
	}
}

// BenchmarkPublish measures a single-document publish through the full
// stack — home-node routing, grid fan-out over the in-memory transport, and
// match-and-reply. Run with -benchmem to watch the pooled wire path.
func BenchmarkPublish(b *testing.B) {
	c := benchCluster(b, 10, 2000)
	ctx := context.Background()
	// Warm pools and document caches before measuring.
	if _, err := c.Publish(ctx, benchDoc(0)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := c.Publish(ctx, benchDoc(i))
		if err != nil {
			b.Fatal(err)
		}
		if !res.Complete {
			b.Fatal("incomplete publish")
		}
	}
}

// BenchmarkPublishBatch measures the batched pipeline at 64 docs per call;
// per-doc cost amortizes frame encoding across a row fan-out.
func BenchmarkPublishBatch(b *testing.B) {
	c := benchCluster(b, 10, 2000)
	ctx := context.Background()
	const batch = 64
	docs := make([][]string, batch)
	for i := range docs {
		docs[i] = benchDoc(i)
	}
	if _, err := c.PublishBatch(ctx, docs); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := c.PublishBatch(ctx, docs)
		if err != nil {
			b.Fatal(err)
		}
		if len(results) != batch {
			b.Fatalf("got %d results", len(results))
		}
	}
}
