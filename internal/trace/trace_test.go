package trace

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSpanSafe(t *testing.T) {
	var s *Span
	s.AddHop(Hop{Stage: "home"})
	s.AddHops([]Hop{{Stage: "column"}})
	s.AddStage("x", time.Second)
	s.Finish()
	if sm := s.Summary(); sm.Op != "" || len(sm.Hops) != 0 {
		t.Fatalf("nil span summary not empty: %+v", sm)
	}
}

func TestSummaryCounting(t *testing.T) {
	s := New("publish", 7)
	s.AddHop(Hop{Stage: "home", To: "n1", Term: "hot"})
	// Failed primary attempt: errored, not a served failover.
	s.AddHop(Hop{Stage: "column", To: "n2", Row: 0, Col: 0, Err: "rpc: dropped"})
	// Substitute row served it.
	s.AddHop(Hop{Stage: "column", To: "n3", Row: 1, Col: 0, Attempt: 1, Failover: true})
	// A column every row failed on.
	s.AddHop(Hop{Stage: "column", Col: 1, Lost: true})
	s.AddStage("publish.e2e", 3*time.Millisecond)
	s.AddStage("publish.e2e", 2*time.Millisecond)
	s.Finish()

	sm := s.Summary()
	if sm.Op != "publish" || sm.DocID != 7 {
		t.Fatalf("identity fields wrong: %+v", sm)
	}
	if len(sm.Hops) != 4 {
		t.Fatalf("hops = %d, want 4", len(sm.Hops))
	}
	if sm.Failovers != 1 {
		t.Fatalf("Failovers = %d, want 1 (errored attempts and lost columns don't count)", sm.Failovers)
	}
	if sm.ColumnsLost != 1 {
		t.Fatalf("ColumnsLost = %d, want 1", sm.ColumnsLost)
	}
	if sm.StageNS["publish.e2e"] != int64(5*time.Millisecond) {
		t.Fatalf("AddStage must accumulate: got %d", sm.StageNS["publish.e2e"])
	}
	if sm.DurationNS <= 0 {
		t.Fatalf("DurationNS = %d, want > 0", sm.DurationNS)
	}
}

func TestFinishFirstCallWins(t *testing.T) {
	s := New("publish", 1)
	s.Finish()
	d1 := s.Summary().DurationNS
	time.Sleep(5 * time.Millisecond)
	s.Finish() // no-op
	if d2 := s.Summary().DurationNS; d2 != d1 {
		t.Fatalf("second Finish moved the end time: %d -> %d", d1, d2)
	}
}

func TestSummaryIsCopy(t *testing.T) {
	s := New("publish", 1)
	s.AddHop(Hop{Stage: "home"})
	sm := s.Summary()
	s.AddHop(Hop{Stage: "column"})
	if len(sm.Hops) != 1 {
		t.Fatal("summary shares the span's hop slice")
	}
}

func TestConcurrentHops(t *testing.T) {
	// Fan-out stages append from many goroutines; exercised with -race.
	s := New("publish", 1)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s.AddHop(Hop{Stage: "column", Col: w})
				s.AddStage("fanout", time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	s.Finish()
	sm := s.Summary()
	if len(sm.Hops) != 800 {
		t.Fatalf("hops = %d, want 800", len(sm.Hops))
	}
	if sm.StageNS["fanout"] != int64(800*time.Microsecond) {
		t.Fatalf("fanout stage = %d, want %d", sm.StageNS["fanout"], int64(800*time.Microsecond))
	}
}

func TestContextPropagation(t *testing.T) {
	if From(context.Background()) != nil {
		t.Fatal("empty context must carry no span")
	}
	s := New("publish", 1)
	ctx := With(context.Background(), s)
	if From(ctx) != s {
		t.Fatal("With/From round trip failed")
	}
}

func TestRingEviction(t *testing.T) {
	r := NewRing(3)
	if got := r.Last(5); len(got) != 0 {
		t.Fatalf("empty ring returned %d summaries", len(got))
	}
	for i := uint64(1); i <= 5; i++ {
		r.Add(Summary{DocID: i})
	}
	got := r.Last(10)
	if len(got) != 3 {
		t.Fatalf("Last(10) = %d summaries, want capacity 3", len(got))
	}
	// Newest first: 5, 4, 3.
	for i, want := range []uint64{5, 4, 3} {
		if got[i].DocID != want {
			t.Fatalf("Last order: got %v", got)
		}
	}
	if got := r.Last(1); len(got) != 1 || got[0].DocID != 5 {
		t.Fatalf("Last(1) = %v, want just doc 5", got)
	}
}

func TestRingNilAndTiny(t *testing.T) {
	var r *Ring
	r.Add(Summary{}) // must not panic
	if r.Last(3) != nil {
		t.Fatal("nil ring returned summaries")
	}
	tiny := NewRing(0) // clamps to 1
	tiny.Add(Summary{DocID: 1})
	tiny.Add(Summary{DocID: 2})
	if got := tiny.Last(5); len(got) != 1 || got[0].DocID != 2 {
		t.Fatalf("capacity-1 ring: %v", got)
	}
}

func TestRingConcurrent(t *testing.T) {
	r := NewRing(16)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Add(Summary{DocID: uint64(w*1000 + i)})
				r.Last(8)
			}
		}(w)
	}
	wg.Wait()
	if got := r.Last(16); len(got) != 16 {
		t.Fatalf("full ring Last(16) = %d", len(got))
	}
}

func TestSummaryJSON(t *testing.T) {
	// The summary is the debug server's wire format; field names are API.
	s := New("publish", 9)
	s.AddHop(Hop{Stage: "column", To: "n3", Row: 1, Col: 0, Attempt: 1, Failover: true, ElapsedNS: 1500})
	s.Finish()
	data, err := json.Marshal(s.Summary())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"op":"publish"`, `"doc_id":9`, `"failovers":1`, `"stage":"column"`, `"row":1`, `"attempt":1`} {
		if !strings.Contains(string(data), key) {
			t.Errorf("summary JSON missing %s: %s", key, data)
		}
	}
}
