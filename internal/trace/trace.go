// Package trace records the hop path of one publish through the MOVE
// pipeline: which home nodes the entry fanned out to, which partition row
// each home node chose, which grid columns were visited, and which columns
// failed over to a substitute row (§VI.D). The paper's §IV latency model
// charges cost per pipeline stage; a Span is the per-document record that
// lets the measured path be compared against the model — and lets a test or
// an operator answer *why* a document went where it did.
//
// Spans are carried through the publish path on the context (With/From) and
// are nil-safe: every method on a nil *Span is a no-op, so un-traced code
// paths pay only a pointer check.
package trace

import (
	"context"
	"sync"
	"time"
)

// Hop is one edge of the publish path. Exactly one Stage per hop:
//
//   - "home":   entry node → the home node of one document term (§V fan-out)
//   - "column": home node → one grid column replica in the chosen partition
//     row; Attempt > 0 marks a replica-row failover and Row names
//     the substitute row that served it
//   - "flood":  entry node → one cluster member (RS baseline)
//   - "local":  the home node matched locally (no allocation grid)
type Hop struct {
	Stage string `json:"stage"`
	From  string `json:"from,omitempty"`
	To    string `json:"to,omitempty"`
	Term  string `json:"term,omitempty"`
	// Row and Col locate the grid replica for "column" hops; Row is the
	// partition row actually used (the substitute row after a failover).
	Row int `json:"row,omitempty"`
	Col int `json:"col,omitempty"`
	// Attempt is 0 for the primary row, k for the k-th failover row.
	Attempt int `json:"attempt,omitempty"`
	// Batch is the number of documents coalesced into the frame this hop
	// carried; 0 or 1 means an unbatched, single-document hop.
	Batch int `json:"batch,omitempty"`
	// Failover marks a hop served by a row other than the chosen one.
	Failover bool `json:"failover,omitempty"`
	// Lost marks a column with no live replica in any row (the publish
	// degrades rather than failing, §VI.D).
	Lost bool `json:"lost,omitempty"`
	// Pending marks a hop taken against a *pending* (not yet committed)
	// grid during the dual-read window of a two-phase reallocation (§13).
	Pending bool `json:"pending,omitempty"`
	// Err records a failed attempt's error (the hop after it, if any, is
	// the failover that replaced it).
	Err       string `json:"err,omitempty"`
	ElapsedNS int64  `json:"elapsed_ns,omitempty"`
}

// Span is the mutable trace of one operation. Safe for concurrent use: the
// fan-out stages append hops from many goroutines.
type Span struct {
	mu     sync.Mutex
	op     string
	docID  uint64
	start  time.Time
	end    time.Time
	hops   []Hop
	stages map[string]time.Duration
}

// New starts a span for one operation (op names it, e.g. "publish").
func New(op string, docID uint64) *Span {
	return &Span{op: op, docID: docID, start: time.Now()}
}

// AddHop appends one hop. Nil-safe.
func (s *Span) AddHop(h Hop) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.hops = append(s.hops, h)
	s.mu.Unlock()
}

// AddHops appends a batch of hops (e.g. the grid hops a home node reported
// back in its MatchResp). The slice is copied; the caller keeps ownership.
// Nil-safe.
func (s *Span) AddHops(hs []Hop) {
	if s == nil || len(hs) == 0 {
		return
	}
	s.mu.Lock()
	if s.hops == nil {
		// Exact-size the common single-batch case (the entry node adds the
		// whole merged hop list at once) instead of append-doubling.
		s.hops = make([]Hop, 0, len(hs))
	}
	s.hops = append(s.hops, hs...)
	s.mu.Unlock()
}

// AddStage accumulates wall time into a named pipeline stage. Nil-safe.
func (s *Span) AddStage(name string, d time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.stages == nil {
		s.stages = make(map[string]time.Duration)
	}
	s.stages[name] += d
	s.mu.Unlock()
}

// Finish stamps the span's end time (first call wins). Nil-safe.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.mu.Unlock()
}

// Summary is the immutable, JSON-serializable view of a finished span —
// what PublishResult carries and the debug server's /trace/last returns.
type Summary struct {
	Op         string `json:"op"`
	DocID      uint64 `json:"doc_id"`
	DurationNS int64  `json:"duration_ns"`
	Hops       []Hop  `json:"hops,omitempty"`
	// StageNS is the accumulated wall time per pipeline stage.
	StageNS map[string]int64 `json:"stage_ns,omitempty"`
	// Failovers counts hops served by a substitute partition row.
	Failovers int `json:"failovers"`
	// ColumnsLost counts grid columns no row could serve.
	ColumnsLost int `json:"columns_lost"`
}

// Summary snapshots the span. Safe on a nil or unfinished span (an
// unfinished span reports its duration so far).
//
// A finished span's hop list is frozen (no method appends after Finish by
// contract), so summaries of a finished span share it without copying —
// the common pattern `sp.Finish(); ... sp.Summary()` costs no hop copy.
// Summaries of a still-running span get a defensive copy.
func (s *Span) Summary() Summary {
	if s == nil {
		return Summary{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	end := s.end
	hops := s.hops
	if end.IsZero() {
		end = time.Now()
		hops = append([]Hop(nil), s.hops...)
	}
	sm := Summary{
		Op:         s.op,
		DocID:      s.docID,
		DurationNS: end.Sub(s.start).Nanoseconds(),
		Hops:       hops,
	}
	if len(s.stages) > 0 {
		sm.StageNS = make(map[string]int64, len(s.stages))
		for name, d := range s.stages {
			sm.StageNS[name] = d.Nanoseconds()
		}
	}
	sm.tally()
	return sm
}

// tally derives the failover and lost-column counts from the hop list.
func (sm *Summary) tally() {
	for _, h := range sm.Hops {
		if h.Lost {
			sm.ColumnsLost++
			continue
		}
		if h.Failover && h.Err == "" {
			sm.Failovers++
		}
	}
}

// Summarize builds a single-stage Summary directly, without a Span. It is
// the cheap path for handlers whose whole trace is one stage plus a hop
// list they already hold: the hops slice is aliased, not copied, so the
// caller must not mutate it afterwards (hand it off, e.g. into a Ring).
func Summarize(op string, docID uint64, d time.Duration, hops []Hop) Summary {
	sm := Summary{
		Op:         op,
		DocID:      docID,
		DurationNS: d.Nanoseconds(),
		StageNS:    map[string]int64{op: d.Nanoseconds()},
		Hops:       hops,
	}
	sm.tally()
	return sm
}

// ctxKey is the context key type for span propagation.
type ctxKey struct{}

// With attaches the span to the context.
func With(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, s)
}

// From returns the span on the context, or nil.
func From(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// Ring is a fixed-capacity ring buffer of recent span summaries — the
// backing store of the debug server's /trace/last endpoint.
type Ring struct {
	mu   sync.Mutex
	buf  []Summary
	next int
	full bool
}

// NewRing builds a ring holding the last capacity summaries (min 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Summary, capacity)}
}

// Add records one summary, evicting the oldest when full. Nil-safe.
func (r *Ring) Add(sm Summary) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = sm
	r.next = (r.next + 1) % len(r.buf)
	if r.next == 0 {
		r.full = true
	}
	r.mu.Unlock()
}

// Last returns up to k summaries, newest first. Nil-safe.
func (r *Ring) Last(k int) []Summary {
	if r == nil || k < 1 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if r.full {
		n = len(r.buf)
	}
	if k > n {
		k = n
	}
	out := make([]Summary, 0, k)
	for i := 0; i < k; i++ {
		idx := (r.next - 1 - i + 2*len(r.buf)) % len(r.buf)
		out = append(out, r.buf[idx])
	}
	return out
}
