package store

import (
	"errors"
	"fmt"
	"reflect"
	"strconv"
	"sync"
	"testing"
	"testing/quick"

	"github.com/movesys/move/internal/model"
)

func memCF(t testing.TB, opts Options) *CF {
	t.Helper()
	s, err := Open("", opts)
	if err != nil {
		t.Fatal(err)
	}
	cf, err := s.CF("test")
	if err != nil {
		t.Fatal(err)
	}
	return cf
}

func TestPutGetDelete(t *testing.T) {
	cf := memCF(t, Options{})
	if err := cf.Put("k1", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := cf.Get("k1")
	if err != nil || !ok || string(v) != "v1" {
		t.Fatalf("Get = %q, %v, %v", v, ok, err)
	}
	if err := cf.Put("k1", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	v, ok, err = cf.Get("k1")
	if err != nil || !ok || string(v) != "v2" {
		t.Fatalf("Get after overwrite = %q, %v, %v", v, ok, err)
	}
	if err := cf.Delete("k1"); err != nil {
		t.Fatal(err)
	}
	_, ok, err = cf.Get("k1")
	if err != nil || ok {
		t.Fatalf("Get after delete: ok=%v err=%v", ok, err)
	}
	_, ok, err = cf.Get("never")
	if err != nil || ok {
		t.Fatalf("Get missing: ok=%v err=%v", ok, err)
	}
}

func TestGetSurvivesFlush(t *testing.T) {
	cf := memCF(t, Options{})
	if err := cf.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := cf.Flush(); err != nil {
		t.Fatal(err)
	}
	v, ok, err := cf.Get("k")
	if err != nil || !ok || string(v) != "v" {
		t.Fatalf("Get after flush = %q, %v, %v", v, ok, err)
	}
	// Tombstone over a flushed value.
	if err := cf.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if err := cf.Flush(); err != nil {
		t.Fatal(err)
	}
	_, ok, err = cf.Get("k")
	if err != nil || ok {
		t.Fatalf("deleted key visible after flush: ok=%v err=%v", ok, err)
	}
}

func TestNewestSegmentWins(t *testing.T) {
	cf := memCF(t, Options{})
	for i := 0; i < 3; i++ {
		if err := cf.Put("k", []byte("v"+strconv.Itoa(i))); err != nil {
			t.Fatal(err)
		}
		if err := cf.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	v, ok, err := cf.Get("k")
	if err != nil || !ok || string(v) != "v2" {
		t.Fatalf("Get = %q, %v, %v; want v2", v, ok, err)
	}
}

func TestMergeAcrossFlushes(t *testing.T) {
	cf := memCF(t, Options{})
	for i := 0; i < 5; i++ {
		if err := cf.Append("list", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		if i == 1 || i == 3 {
			if err := cf.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	ops, err := cf.GetMerged("list")
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 5 {
		t.Fatalf("got %d ops, want 5", len(ops))
	}
	for i, op := range ops {
		if len(op) != 1 || op[0] != byte(i) {
			t.Fatalf("op[%d] = %v, want [%d] (oldest first)", i, op, i)
		}
	}
}

func TestMergeTombstoneCutsHistory(t *testing.T) {
	cf := memCF(t, Options{})
	if err := cf.Append("list", []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := cf.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := cf.Delete("list"); err != nil {
		t.Fatal(err)
	}
	if err := cf.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := cf.Append("list", []byte("new")); err != nil {
		t.Fatal(err)
	}
	ops, err := cf.GetMerged("list")
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 1 || string(ops[0]) != "new" {
		t.Fatalf("ops = %v, want [new]", ops)
	}
}

func TestWrongKindErrors(t *testing.T) {
	cf := memCF(t, Options{})
	if err := cf.Put("plain", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := cf.Append("merged", []byte("op")); err != nil {
		t.Fatal(err)
	}
	if _, err := cf.GetMerged("plain"); !errors.Is(err, ErrWrongKind) {
		t.Fatalf("GetMerged on plain key: %v", err)
	}
	if _, _, err := cf.Get("merged"); !errors.Is(err, ErrWrongKind) {
		t.Fatalf("Get on merge key: %v", err)
	}
}

func TestAutoFlushAtThreshold(t *testing.T) {
	cf := memCF(t, Options{FlushAt: 256})
	for i := 0; i < 100; i++ {
		if err := cf.Put("key-"+strconv.Itoa(i), []byte("0123456789")); err != nil {
			t.Fatal(err)
		}
	}
	st := cf.Stats()
	if st.Segments == 0 {
		t.Fatal("no auto flush happened")
	}
	for i := 0; i < 100; i++ {
		v, ok, err := cf.Get("key-" + strconv.Itoa(i))
		if err != nil || !ok || string(v) != "0123456789" {
			t.Fatalf("key-%d lost after auto flush", i)
		}
	}
}

func TestCompact(t *testing.T) {
	cf := memCF(t, Options{})
	for i := 0; i < 4; i++ {
		if err := cf.Put("stable", []byte("s"+strconv.Itoa(i))); err != nil {
			t.Fatal(err)
		}
		if err := cf.Append("list", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		if err := cf.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if err := cf.Put("gone", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := cf.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := cf.Delete("gone"); err != nil {
		t.Fatal(err)
	}
	if err := cf.Flush(); err != nil {
		t.Fatal(err)
	}

	if err := cf.Compact(); err != nil {
		t.Fatal(err)
	}
	st := cf.Stats()
	if st.Segments != 1 {
		t.Fatalf("segments after compact = %d, want 1", st.Segments)
	}
	v, ok, err := cf.Get("stable")
	if err != nil || !ok || string(v) != "s3" {
		t.Fatalf("stable = %q, %v, %v", v, ok, err)
	}
	_, ok, err = cf.Get("gone")
	if err != nil || ok {
		t.Fatalf("tombstoned key resurrected by compaction: ok=%v err=%v", ok, err)
	}
	ops, err := cf.GetMerged("list")
	if err != nil || len(ops) != 4 {
		t.Fatalf("merged list after compact: %v ops, err %v", len(ops), err)
	}
	for i, op := range ops {
		if op[0] != byte(i) {
			t.Fatalf("compact broke merge order: op[%d]=%v", i, op)
		}
	}
}

func TestScanPrefix(t *testing.T) {
	cf := memCF(t, Options{})
	for _, k := range []string{"a:1", "a:2", "b:1", "a:3"} {
		if err := cf.Put(k, []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	if err := cf.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := cf.Delete("a:2"); err != nil {
		t.Fatal(err)
	}
	var got []string
	if err := cf.Scan("a:", func(key string, val []byte, _ [][]byte) bool {
		got = append(got, key)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []string{"a:1", "a:3"}) {
		t.Fatalf("Scan = %v, want [a:1 a:3]", got)
	}
}

func TestScanEarlyStop(t *testing.T) {
	cf := memCF(t, Options{})
	for i := 0; i < 10; i++ {
		if err := cf.Put("k"+strconv.Itoa(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	n := 0
	if err := cf.Scan("", func(string, []byte, [][]byte) bool {
		n++
		return n < 3
	}); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("visited %d keys, want 3", n)
	}
}

func TestPersistenceRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cf, err := s.CF("data")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := cf.Put("k"+strconv.Itoa(i), []byte("v"+strconv.Itoa(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := cf.Append("plist", []byte("op1")); err != nil {
		t.Fatal(err)
	}
	if err := cf.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := cf.Append("plist", []byte("op2")); err != nil {
		t.Fatal(err)
	}
	if err := cf.Put("k0", []byte("newer")); err != nil {
		t.Fatal(err)
	}
	if err := s.FlushAll(); err != nil {
		t.Fatal(err)
	}

	// Reopen from disk.
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cf2, err := s2.CF("data")
	if err != nil {
		t.Fatal(err)
	}
	v, ok, err := cf2.Get("k0")
	if err != nil || !ok || string(v) != "newer" {
		t.Fatalf("recovered k0 = %q, %v, %v", v, ok, err)
	}
	v, ok, err = cf2.Get("k25")
	if err != nil || !ok || string(v) != "v25" {
		t.Fatalf("recovered k25 = %q, %v, %v", v, ok, err)
	}
	ops, err := cf2.GetMerged("plist")
	if err != nil || len(ops) != 2 {
		t.Fatalf("recovered plist: %d ops, err %v", len(ops), err)
	}
	if string(ops[0]) != "op1" || string(ops[1]) != "op2" {
		t.Fatalf("recovered merge order wrong: %q %q", ops[0], ops[1])
	}
}

func TestPersistenceCompactRemovesOldFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cf, err := s.CF("data")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := cf.Put(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
		if err := cf.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if err := cf.Compact(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cf2, err := s2.CF("data")
	if err != nil {
		t.Fatal(err)
	}
	if st := cf2.Stats(); st.Segments != 1 || st.SegmentKeys != 3 {
		t.Fatalf("recovered stats = %+v, want 1 segment with 3 keys", st)
	}
}

func TestConcurrentMixedOps(t *testing.T) {
	cf := memCF(t, Options{FlushAt: 1 << 10})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := "w" + strconv.Itoa(w) + "-" + strconv.Itoa(i)
				if err := cf.Put(key, []byte(key)); err != nil {
					t.Errorf("put: %v", err)
					return
				}
				if err := cf.Append("shared-list", []byte(key)); err != nil {
					t.Errorf("append: %v", err)
					return
				}
				if _, _, err := cf.Get(key); err != nil {
					t.Errorf("get: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	ops, err := cf.GetMerged("shared-list")
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 8*200 {
		t.Fatalf("shared list has %d ops, want %d", len(ops), 8*200)
	}
}

// TestPutGetRoundTripProperty: a Get after Put returns exactly the stored
// value across arbitrary flush points.
func TestPutGetRoundTripProperty(t *testing.T) {
	prop := func(pairs map[string][]byte, flushEvery uint8) bool {
		cf := memCF(t, Options{})
		n := 0
		for k, v := range pairs {
			if err := cf.Put(k, v); err != nil {
				return false
			}
			n++
			if flushEvery > 0 && n%int(flushEvery) == 0 {
				if err := cf.Flush(); err != nil {
					return false
				}
			}
		}
		for k, v := range pairs {
			got, ok, err := cf.Get(k)
			if err != nil || !ok {
				return false
			}
			if len(got) != len(v) {
				return false
			}
			for i := range v {
				if got[i] != v[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFilterStoreRoundTrip(t *testing.T) {
	s, err := Open("", Options{})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := NewFilterStore(s)
	if err != nil {
		t.Fatal(err)
	}
	f := model.Filter{ID: 42, Subscriber: "alice", Terms: []string{"cloud", "storage"}, Mode: model.MatchAny}
	if err := fs.Put(f); err != nil {
		t.Fatal(err)
	}
	got, ok, err := fs.Get(42)
	if err != nil || !ok {
		t.Fatalf("Get: ok=%v err=%v", ok, err)
	}
	if !reflect.DeepEqual(got, f) {
		t.Fatalf("got %+v, want %+v", got, f)
	}
	_, ok, err = fs.Get(43)
	if err != nil || ok {
		t.Fatalf("missing filter: ok=%v err=%v", ok, err)
	}
	n, err := fs.Count()
	if err != nil || n != 1 {
		t.Fatalf("Count = %d, %v", n, err)
	}
	if err := fs.Delete(42); err != nil {
		t.Fatal(err)
	}
	_, ok, _ = fs.Get(42)
	if ok {
		t.Fatal("filter visible after delete")
	}
}

func TestFilterStoreRejectsInvalid(t *testing.T) {
	s, err := Open("", Options{})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := NewFilterStore(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Put(model.Filter{ID: 1, Mode: model.MatchAny}); !errors.Is(err, model.ErrNoTerms) {
		t.Fatalf("err = %v, want ErrNoTerms", err)
	}
}

func TestFilterStoreEach(t *testing.T) {
	s, err := Open("", Options{})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := NewFilterStore(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		f := model.Filter{ID: model.FilterID(i), Terms: []string{"t" + strconv.Itoa(i)}, Mode: model.MatchAny}
		if err := fs.Put(f); err != nil {
			t.Fatal(err)
		}
	}
	var ids []model.FilterID
	if err := fs.Each(func(f model.Filter) bool {
		ids = append(ids, f.ID)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(ids) != 5 {
		t.Fatalf("Each visited %d filters, want 5", len(ids))
	}
}

func TestPostingStore(t *testing.T) {
	s, err := Open("", Options{})
	if err != nil {
		t.Fatal(err)
	}
	ps, err := NewPostingStore(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		if err := ps.Add("news", model.FilterID(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Duplicate registration must dedup on read.
	if err := ps.Add("news", 2); err != nil {
		t.Fatal(err)
	}
	ids, err := ps.Get("news")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ids, []model.FilterID{1, 2, 3, 4}) {
		t.Fatalf("Get = %v", ids)
	}
	n, err := ps.Len("news")
	if err != nil || n != 4 {
		t.Fatalf("Len = %d, %v", n, err)
	}
	terms, err := ps.Terms()
	if err != nil || !reflect.DeepEqual(terms, []string{"news"}) {
		t.Fatalf("Terms = %v, %v", terms, err)
	}
	if err := ps.Remove("news"); err != nil {
		t.Fatal(err)
	}
	ids, err = ps.Get("news")
	if err != nil || len(ids) != 0 {
		t.Fatalf("after Remove: %v, %v", ids, err)
	}
}

func TestMetaStore(t *testing.T) {
	s, err := Open("", Options{})
	if err != nil {
		t.Fatal(err)
	}
	ms, err := NewMetaStore(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := ms.PutString("policy", "proactive"); err != nil {
		t.Fatal(err)
	}
	v, ok, err := ms.GetString("policy")
	if err != nil || !ok || v != "proactive" {
		t.Fatalf("GetString = %q, %v, %v", v, ok, err)
	}
	if err := ms.PutFloat("qi:news", 0.125); err != nil {
		t.Fatal(err)
	}
	f, ok, err := ms.GetFloat("qi:news")
	if err != nil || !ok || f != 0.125 {
		t.Fatalf("GetFloat = %v, %v, %v", f, ok, err)
	}
	_, ok, err = ms.GetFloat("missing")
	if err != nil || ok {
		t.Fatalf("missing float: ok=%v err=%v", ok, err)
	}
	if err := ms.PutString("bad", "not-a-float"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ms.GetFloat("bad"); err == nil {
		t.Fatal("expected parse error")
	}
}
