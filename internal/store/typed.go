package store

import (
	"encoding/binary"
	"fmt"
	"strconv"

	"github.com/movesys/move/internal/codec"
	"github.com/movesys/move/internal/model"
)

// Column family names of the three §V data stores.
const (
	cfFilters  = "filters"
	cfPostings = "postings"
	cfMeta     = "meta"
)

// FilterStore persists full filter definitions keyed by ID ("the full
// information of f is locally stored on the home nodes of all query terms
// in f", §III.B).
type FilterStore struct {
	cf *CF
}

// NewFilterStore opens the filter column family.
func NewFilterStore(s *Store) (*FilterStore, error) {
	cf, err := s.CF(cfFilters)
	if err != nil {
		return nil, err
	}
	return &FilterStore{cf: cf}, nil
}

func filterKey(id model.FilterID) string {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(id))
	return string(buf[:])
}

// Put stores a filter definition.
func (fs *FilterStore) Put(f model.Filter) error {
	if err := f.Validate(); err != nil {
		return err
	}
	return fs.cf.Put(filterKey(f.ID), f.Encode())
}

// Get loads a filter by ID.
func (fs *FilterStore) Get(id model.FilterID) (model.Filter, bool, error) {
	data, ok, err := fs.cf.Get(filterKey(id))
	if err != nil || !ok {
		return model.Filter{}, false, err
	}
	f, err := model.DecodeFilter(codec.NewReader(data))
	if err != nil {
		return model.Filter{}, false, fmt.Errorf("store: decode filter %s: %w", id, err)
	}
	return f, true, nil
}

// Delete removes a filter definition.
func (fs *FilterStore) Delete(id model.FilterID) error {
	return fs.cf.Delete(filterKey(id))
}

// Each iterates all stored filters; iteration stops when fn returns false.
func (fs *FilterStore) Each(fn func(model.Filter) bool) error {
	var decodeErr error
	err := fs.cf.Scan("", func(key string, val []byte, _ [][]byte) bool {
		f, err := model.DecodeFilter(codec.NewReader(val))
		if err != nil {
			decodeErr = fmt.Errorf("store: decode filter at key %x: %w", key, err)
			return false
		}
		return fn(f)
	})
	if err != nil {
		return err
	}
	return decodeErr
}

// Count returns the number of live filters (scans; intended for tests and
// load accounting, not hot paths).
func (fs *FilterStore) Count() (int, error) {
	n := 0
	err := fs.cf.Scan("", func(string, []byte, [][]byte) bool {
		n++
		return true
	})
	return n, err
}

// PostingStore is the local inverted list: term → posting list of filter
// IDs. The crucial property (§III.B) is that the home node of term t builds
// a posting list only for t, so matching a document retrieves exactly one
// list per forwarded term.
type PostingStore struct {
	cf *CF
}

// NewPostingStore opens the posting column family.
func NewPostingStore(s *Store) (*PostingStore, error) {
	cf, err := s.CF(cfPostings)
	if err != nil {
		return nil, err
	}
	return &PostingStore{cf: cf}, nil
}

// Add appends filter id to term's posting list.
func (ps *PostingStore) Add(term string, id model.FilterID) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(id))
	return ps.cf.Append(term, buf[:n])
}

// Get returns the deduplicated posting list for term. The order is
// insertion order (oldest first).
func (ps *PostingStore) Get(term string) ([]model.FilterID, error) {
	ops, err := ps.cf.GetMerged(term)
	if err != nil {
		return nil, err
	}
	out := make([]model.FilterID, 0, len(ops))
	seen := make(map[model.FilterID]struct{}, len(ops))
	for _, op := range ops {
		v, n := binary.Uvarint(op)
		if n <= 0 {
			return nil, fmt.Errorf("store: corrupt posting entry for %q", term)
		}
		id := model.FilterID(v)
		if _, dup := seen[id]; dup {
			continue
		}
		seen[id] = struct{}{}
		out = append(out, id)
	}
	return out, nil
}

// Remove drops the whole posting list of a term (used when the term's
// filters migrate during allocation).
func (ps *PostingStore) Remove(term string) error {
	return ps.cf.Delete(term)
}

// Terms lists all terms that currently have a posting list.
func (ps *PostingStore) Terms() ([]string, error) {
	var out []string
	err := ps.cf.Scan("", func(key string, _ []byte, _ [][]byte) bool {
		out = append(out, key)
		return true
	})
	return out, err
}

// Len returns the posting-list length for term (after dedup).
func (ps *PostingStore) Len(term string) (int, error) {
	ids, err := ps.Get(term)
	return len(ids), err
}

// MetaStore is the §V meta-data store holding the per-node statistics
// (popularity, frequency) and allocation bookkeeping.
type MetaStore struct {
	cf *CF
}

// NewMetaStore opens the meta column family.
func NewMetaStore(s *Store) (*MetaStore, error) {
	cf, err := s.CF(cfMeta)
	if err != nil {
		return nil, err
	}
	return &MetaStore{cf: cf}, nil
}

// PutString stores a string value.
func (ms *MetaStore) PutString(key, val string) error {
	return ms.cf.Put(key, []byte(val))
}

// GetString loads a string value.
func (ms *MetaStore) GetString(key string) (string, bool, error) {
	v, ok, err := ms.cf.Get(key)
	return string(v), ok, err
}

// PutFloat stores a float64 value.
func (ms *MetaStore) PutFloat(key string, val float64) error {
	return ms.cf.Put(key, []byte(strconv.FormatFloat(val, 'g', -1, 64)))
}

// GetFloat loads a float64 value.
func (ms *MetaStore) GetFloat(key string) (float64, bool, error) {
	v, ok, err := ms.cf.Get(key)
	if err != nil || !ok {
		return 0, false, err
	}
	f, err := strconv.ParseFloat(string(v), 64)
	if err != nil {
		return 0, false, fmt.Errorf("store: meta %q not a float: %w", key, err)
	}
	return f, true, nil
}
