package store

import (
	"fmt"
	"path/filepath"
	"sync"
)

// Store is a set of named column families sharing one (optional) data
// directory — one Store per MOVE node.
type Store struct {
	dir  string
	opts Options

	mu  sync.Mutex
	cfs map[string]*CF
}

// Open creates a store rooted at dir; dir == "" keeps everything in memory
// (the mode used by tests, benchmarks, and the cluster simulator).
func Open(dir string, opts Options) (*Store, error) {
	return &Store{dir: dir, opts: opts, cfs: make(map[string]*CF)}, nil
}

// CF returns (opening or recovering on first use) the named column family.
func (s *Store) CF(name string) (*CF, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cf, ok := s.cfs[name]; ok {
		return cf, nil
	}
	dir := ""
	if s.dir != "" {
		dir = filepath.Join(s.dir, name)
	}
	cf, err := openCF(name, dir, s.opts)
	if err != nil {
		return nil, fmt.Errorf("store: open cf %s: %w", name, err)
	}
	s.cfs[name] = cf
	return cf, nil
}

// FlushAll flushes every open column family.
func (s *Store) FlushAll() error {
	s.mu.Lock()
	cfs := make([]*CF, 0, len(s.cfs))
	for _, cf := range s.cfs {
		cfs = append(cfs, cf)
	}
	s.mu.Unlock()
	for _, cf := range cfs {
		if err := cf.Flush(); err != nil {
			return err
		}
	}
	return nil
}
