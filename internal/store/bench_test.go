package store

import (
	"strconv"
	"testing"
)

func BenchmarkPut(b *testing.B) {
	cf := memCF(b, Options{})
	val := []byte("0123456789abcdef")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cf.Put("key-"+strconv.Itoa(i%65536), val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGetMemtable(b *testing.B) {
	cf := memCF(b, Options{})
	for i := 0; i < 65536; i++ {
		if err := cf.Put("key-"+strconv.Itoa(i), []byte("v")); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := cf.Get("key-" + strconv.Itoa(i%65536)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGetSegments(b *testing.B) {
	cf := memCF(b, Options{})
	for i := 0; i < 65536; i++ {
		if err := cf.Put("key-"+strconv.Itoa(i), []byte("v")); err != nil {
			b.Fatal(err)
		}
		if i%8192 == 8191 {
			if err := cf.Flush(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := cf.Get("key-" + strconv.Itoa(i%65536)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppendPosting(b *testing.B) {
	cf := memCF(b, Options{})
	op := []byte{1, 2, 3, 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cf.Append("term-"+strconv.Itoa(i%1024), op); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGetMergedPostingList(b *testing.B) {
	cf := memCF(b, Options{})
	for i := 0; i < 10_000; i++ {
		if err := cf.Append("hot", []byte{byte(i)}); err != nil {
			b.Fatal(err)
		}
		if i%2500 == 2499 {
			if err := cf.Flush(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cf.GetMerged("hot"); err != nil {
			b.Fatal(err)
		}
	}
}
