// Package store implements the node-local storage engine beneath MOVE's
// three data stores (§V, Figure 3): the filter store, the local inverted
// list (posting lists), and the meta-data store. It follows the
// BigTable/Cassandra column-family design the paper builds on: writes land
// in a memtable, which is flushed into immutable sorted segments;
// read-merge semantics support both plain keys and append-merge keys (the
// natural representation of posting lists); segments compact to bound read
// amplification; optionally the segments persist to a directory so a node
// restart recovers its registered filters.
package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"github.com/movesys/move/internal/codec"
)

// record kinds inside memtable/segments.
const (
	kindPut       = 1 // plain value, replaces anything older
	kindTombstone = 2 // deletion marker
	kindMerge     = 3 // append operand; read accumulates until a Put/Tombstone
)

// memRecord is the memtable state of one key.
type memRecord struct {
	kind int
	val  []byte   // kindPut value
	ops  [][]byte // kindMerge operands, oldest first
}

// CF is one column family. All methods are safe for concurrent use.
type CF struct {
	name    string
	dir     string // "" = ephemeral
	flushAt int

	mu       sync.RWMutex
	mem      map[string]*memRecord
	memBytes int
	segments []*segment // newest first
	nextSeg  int
}

// Options configures a column family.
type Options struct {
	// FlushAt flushes the memtable after roughly this many bytes of keys
	// and values. Zero means 8 MiB.
	FlushAt int
}

// openCF creates or recovers a column family.
func openCF(name, dir string, opts Options) (*CF, error) {
	flushAt := opts.FlushAt
	if flushAt == 0 {
		flushAt = 8 << 20
	}
	cf := &CF{
		name:    name,
		dir:     dir,
		flushAt: flushAt,
		mem:     make(map[string]*memRecord),
	}
	if dir == "" {
		return cf, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create cf dir: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: read cf dir: %w", err)
	}
	var ids []int
	for _, e := range entries {
		base := e.Name()
		if !strings.HasSuffix(base, ".seg") {
			continue
		}
		id, err := strconv.Atoi(strings.TrimSuffix(base, ".seg"))
		if err != nil {
			continue
		}
		ids = append(ids, id)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(ids))) // newest (highest id) first
	for _, id := range ids {
		seg, err := loadSegment(filepath.Join(dir, segName(id)))
		if err != nil {
			return nil, fmt.Errorf("store: recover segment %d: %w", id, err)
		}
		cf.segments = append(cf.segments, seg)
		if id >= cf.nextSeg {
			cf.nextSeg = id + 1
		}
	}
	return cf, nil
}

func segName(id int) string { return fmt.Sprintf("%06d.seg", id) }

// Name returns the column family name.
func (cf *CF) Name() string { return cf.name }

// Put stores a plain value for key.
func (cf *CF) Put(key string, val []byte) error {
	cf.mu.Lock()
	rec := &memRecord{kind: kindPut, val: append([]byte(nil), val...)}
	cf.chargeLocked(key, rec)
	cf.mem[key] = rec
	return cf.maybeFlushLocked() // unlocks
}

// Delete writes a tombstone for key.
func (cf *CF) Delete(key string) error {
	cf.mu.Lock()
	rec := &memRecord{kind: kindTombstone}
	cf.chargeLocked(key, rec)
	cf.mem[key] = rec
	return cf.maybeFlushLocked()
}

// Append adds a merge operand to key. Readers of merge keys use GetMerged,
// which concatenates all operands newest-to-oldest segments included. Put
// and Append must not be mixed on the same key.
func (cf *CF) Append(key string, op []byte) error {
	cf.mu.Lock()
	rec, ok := cf.mem[key]
	if !ok || rec.kind != kindMerge {
		rec = &memRecord{kind: kindMerge}
		cf.mem[key] = rec
	}
	rec.ops = append(rec.ops, append([]byte(nil), op...))
	cf.memBytes += len(key) + len(op) + 16
	return cf.maybeFlushLocked()
}

// chargeLocked accounts memtable size for a replace-style record.
func (cf *CF) chargeLocked(key string, rec *memRecord) {
	cf.memBytes += len(key) + len(rec.val) + 16
}

// maybeFlushLocked flushes when the memtable is full. It releases the lock.
func (cf *CF) maybeFlushLocked() error {
	if cf.memBytes < cf.flushAt {
		cf.mu.Unlock()
		return nil
	}
	return cf.flushLocked()
}

// Get returns the plain value of key.
func (cf *CF) Get(key string) ([]byte, bool, error) {
	cf.mu.RLock()
	defer cf.mu.RUnlock()
	if rec, ok := cf.mem[key]; ok {
		switch rec.kind {
		case kindPut:
			return append([]byte(nil), rec.val...), true, nil
		case kindTombstone:
			return nil, false, nil
		case kindMerge:
			return nil, false, fmt.Errorf("store: Get on merge key %q: %w", key, ErrWrongKind)
		}
	}
	for _, seg := range cf.segments {
		e, ok := seg.get(key)
		if !ok {
			continue
		}
		switch e.kind {
		case kindPut:
			return append([]byte(nil), e.val...), true, nil
		case kindTombstone:
			return nil, false, nil
		case kindMerge:
			return nil, false, fmt.Errorf("store: Get on merge key %q: %w", key, ErrWrongKind)
		}
	}
	return nil, false, nil
}

// ErrWrongKind reports mixing plain and merge operations on one key.
var ErrWrongKind = errors.New("store: plain/merge operation mismatch")

// GetMerged returns all merge operands for key, oldest first.
func (cf *CF) GetMerged(key string) ([][]byte, error) {
	cf.mu.RLock()
	defer cf.mu.RUnlock()
	// Collect newest-to-oldest, then reverse layers: segments store ops
	// oldest-first within a layer.
	var layers [][][]byte
	if rec, ok := cf.mem[key]; ok {
		switch rec.kind {
		case kindTombstone:
			return nil, nil
		case kindPut:
			return nil, fmt.Errorf("store: GetMerged on plain key %q: %w", key, ErrWrongKind)
		case kindMerge:
			layers = append(layers, rec.ops)
		}
	}
	stop := false
	for _, seg := range cf.segments {
		if stop {
			break
		}
		e, ok := seg.get(key)
		if !ok {
			continue
		}
		switch e.kind {
		case kindTombstone:
			stop = true
		case kindPut:
			return nil, fmt.Errorf("store: GetMerged on plain key %q: %w", key, ErrWrongKind)
		case kindMerge:
			layers = append(layers, e.ops)
		}
	}
	var total int
	for _, l := range layers {
		total += len(l)
	}
	out := make([][]byte, 0, total)
	for i := len(layers) - 1; i >= 0; i-- {
		for _, op := range layers[i] {
			out = append(out, append([]byte(nil), op...))
		}
	}
	return out, nil
}

// Scan calls fn for every live key with the given prefix, in key order,
// with the key's newest plain value (merge keys are passed their
// concatenated operand count encoded implicitly — fn receives nil val and
// ops). Iteration stops if fn returns false.
func (cf *CF) Scan(prefix string, fn func(key string, val []byte, ops [][]byte) bool) error {
	type state struct {
		kind int
		val  []byte
		ops  [][]byte
		done bool // plain resolved or tombstoned
	}
	cf.mu.RLock()
	defer cf.mu.RUnlock()

	keys := make(map[string]*state)
	collect := func(key string, kind int, val []byte, ops [][]byte) {
		if !strings.HasPrefix(key, prefix) {
			return
		}
		st, ok := keys[key]
		if !ok {
			st = &state{kind: kind}
			keys[key] = st
		}
		if st.done {
			return
		}
		switch kind {
		case kindTombstone:
			st.done = true
			st.kind = kindTombstone
		case kindPut:
			st.val = append([]byte(nil), val...)
			st.kind = kindPut
			st.done = true
		case kindMerge:
			st.kind = kindMerge
			// Prepend older layers after newer ones are handled below; we
			// accumulate newest-first here and reverse at the end.
			st.ops = append(st.ops, ops...)
		}
	}
	for key, rec := range cf.mem {
		collect(key, rec.kind, rec.val, rec.ops)
	}
	for _, seg := range cf.segments {
		for i := range seg.entries {
			e := &seg.entries[i]
			collect(e.key, e.kind, e.val, e.ops)
		}
	}

	ordered := make([]string, 0, len(keys))
	for k, st := range keys {
		if st.kind == kindTombstone {
			continue
		}
		ordered = append(ordered, k)
	}
	sort.Strings(ordered)
	for _, k := range ordered {
		st := keys[k]
		// Merge-op order across layers is unspecified in Scan; posting-list
		// consumers treat operands as a set. GetMerged provides
		// oldest-first order when it matters.
		if !fn(k, st.val, st.ops) {
			break
		}
	}
	return nil
}

// Flush forces the memtable into a new segment.
func (cf *CF) Flush() error {
	cf.mu.Lock()
	return cf.flushLocked()
}

// flushLocked writes the memtable to a segment and releases the lock.
func (cf *CF) flushLocked() error {
	if len(cf.mem) == 0 {
		cf.mu.Unlock()
		return nil
	}
	seg := newSegmentFromMem(cf.mem)
	id := cf.nextSeg
	cf.nextSeg++
	cf.mem = make(map[string]*memRecord)
	cf.memBytes = 0
	cf.segments = append([]*segment{seg}, cf.segments...)
	dir := cf.dir
	cf.mu.Unlock()

	if dir == "" {
		return nil
	}
	if err := seg.save(filepath.Join(dir, segName(id))); err != nil {
		return fmt.Errorf("store: flush cf %s: %w", cf.name, err)
	}
	return nil
}

// Compact merges all segments (not the memtable) into one, dropping
// superseded values and tombstoned history.
func (cf *CF) Compact() error {
	cf.mu.Lock()
	if len(cf.segments) <= 1 {
		cf.mu.Unlock()
		return nil
	}
	old := cf.segments
	merged := mergeSegments(old)
	id := cf.nextSeg
	cf.nextSeg++
	cf.segments = []*segment{merged}
	dir := cf.dir
	cf.mu.Unlock()

	if dir == "" {
		return nil
	}
	if err := merged.save(filepath.Join(dir, segName(id))); err != nil {
		return fmt.Errorf("store: compact cf %s: %w", cf.name, err)
	}
	// Old segment files are superseded; removal failures only waste disk.
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	for _, e := range entries {
		if e.Name() == segName(id) || !strings.HasSuffix(e.Name(), ".seg") {
			continue
		}
		_ = os.Remove(filepath.Join(dir, e.Name()))
	}
	return nil
}

// Stats describes the column family's footprint.
type Stats struct {
	MemKeys      int
	MemBytes     int
	Segments     int
	SegmentKeys  int
	SegmentBytes int
}

// Stats returns a snapshot of the CF's size.
func (cf *CF) Stats() Stats {
	cf.mu.RLock()
	defer cf.mu.RUnlock()
	st := Stats{MemKeys: len(cf.mem), MemBytes: cf.memBytes, Segments: len(cf.segments)}
	for _, seg := range cf.segments {
		st.SegmentKeys += len(seg.entries)
		st.SegmentBytes += seg.bytes
	}
	return st
}

// segment is an immutable sorted run of records.
type segment struct {
	entries []segEntry // sorted by key
	bytes   int
}

type segEntry struct {
	key  string
	kind int
	val  []byte
	ops  [][]byte // oldest first
}

func newSegmentFromMem(mem map[string]*memRecord) *segment {
	seg := &segment{entries: make([]segEntry, 0, len(mem))}
	for key, rec := range mem {
		e := segEntry{key: key, kind: rec.kind, val: rec.val, ops: rec.ops}
		seg.bytes += len(key) + len(rec.val) + 16
		for _, op := range rec.ops {
			seg.bytes += len(op)
		}
		seg.entries = append(seg.entries, e)
	}
	sort.Slice(seg.entries, func(i, j int) bool { return seg.entries[i].key < seg.entries[j].key })
	return seg
}

func (s *segment) get(key string) (*segEntry, bool) {
	i := sort.Search(len(s.entries), func(i int) bool { return s.entries[i].key >= key })
	if i < len(s.entries) && s.entries[i].key == key {
		return &s.entries[i], true
	}
	return nil, false
}

// mergeSegments combines newest-first segments into one, applying
// supersede/merge semantics.
func mergeSegments(segs []*segment) *segment {
	type acc struct {
		kind int
		val  []byte
		ops  [][]byte // newest layer first during accumulation
		done bool
	}
	accs := make(map[string]*acc)
	for _, seg := range segs { // newest first
		for i := range seg.entries {
			e := &seg.entries[i]
			a, ok := accs[e.key]
			if !ok {
				a = &acc{kind: e.kind}
				accs[e.key] = a
			}
			if a.done {
				continue
			}
			switch e.kind {
			case kindTombstone:
				a.kind = kindTombstone
				a.done = true
			case kindPut:
				if a.kind != kindMerge {
					a.kind = kindPut
					a.val = e.val
				}
				a.done = true
			case kindMerge:
				a.kind = kindMerge
				a.ops = append(a.ops, e.ops...)
			}
		}
	}
	out := &segment{entries: make([]segEntry, 0, len(accs))}
	for key, a := range accs {
		if a.kind == kindTombstone {
			// Fully compacted: tombstones can be dropped once they are the
			// newest state across all merged segments.
			continue
		}
		e := segEntry{key: key, kind: a.kind, val: a.val}
		if a.kind == kindMerge {
			// Reverse accumulated layers to oldest-first.
			e.ops = make([][]byte, 0, len(a.ops))
			for i := len(a.ops) - 1; i >= 0; i-- {
				e.ops = append(e.ops, a.ops[i])
			}
		}
		out.bytes += len(key) + len(e.val) + 16
		for _, op := range e.ops {
			out.bytes += len(op)
		}
		out.entries = append(out.entries, e)
	}
	sort.Slice(out.entries, func(i, j int) bool { return out.entries[i].key < out.entries[j].key })
	return out
}

// save writes the segment to path atomically (write temp + rename).
func (s *segment) save(path string) error {
	w := codec.NewWriter(s.bytes + 64)
	w.Uvarint(uint64(len(s.entries)))
	for i := range s.entries {
		e := &s.entries[i]
		w.String(e.key)
		w.Uint8(uint8(e.kind))
		switch e.kind {
		case kindPut:
			w.Bytes0(e.val)
		case kindMerge:
			w.Uvarint(uint64(len(e.ops)))
			for _, op := range e.ops {
				w.Bytes0(op)
			}
		}
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, w.Bytes(), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// loadSegment reads a segment file.
func loadSegment(path string) (*segment, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	r := codec.NewReader(data)
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(r.Remaining()) {
		return nil, fmt.Errorf("store: segment %s claims %d entries", path, n)
	}
	seg := &segment{entries: make([]segEntry, 0, n), bytes: len(data)}
	for i := uint64(0); i < n; i++ {
		var e segEntry
		if e.key, err = r.String(); err != nil {
			return nil, err
		}
		kind, err := r.Uint8()
		if err != nil {
			return nil, err
		}
		e.kind = int(kind)
		switch e.kind {
		case kindPut:
			val, err := r.Bytes0()
			if err != nil {
				return nil, err
			}
			e.val = append([]byte(nil), val...)
		case kindTombstone:
		case kindMerge:
			m, err := r.Uvarint()
			if err != nil {
				return nil, err
			}
			if m > uint64(r.Remaining()) {
				return nil, fmt.Errorf("store: segment %s merge op overflow", path)
			}
			e.ops = make([][]byte, 0, m)
			for j := uint64(0); j < m; j++ {
				op, err := r.Bytes0()
				if err != nil {
					return nil, err
				}
				e.ops = append(e.ops, append([]byte(nil), op...))
			}
		default:
			return nil, fmt.Errorf("store: segment %s bad record kind %d", path, e.kind)
		}
		seg.entries = append(seg.entries, e)
	}
	return seg, nil
}
