package store

import (
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"testing/quick"
)

// TestLoadSegmentRejectsCorruption fuzzes truncation points of a valid
// segment file: recovery must error, never panic or silently misread.
func TestLoadSegmentRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cf, err := s.CF("data")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := cf.Put("key-"+strconv.Itoa(i), []byte("value-"+strconv.Itoa(i))); err != nil {
			t.Fatal(err)
		}
		if err := cf.Append("list", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := cf.Flush(); err != nil {
		t.Fatal(err)
	}
	segPath := filepath.Join(dir, "data", segName(0))
	valid, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loadSegment(segPath); err != nil {
		t.Fatalf("valid segment rejected: %v", err)
	}

	tmp := filepath.Join(t.TempDir(), "corrupt.seg")
	for _, cut := range []int{1, 2, len(valid) / 4, len(valid) / 2, len(valid) - 1} {
		if err := os.WriteFile(tmp, valid[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := loadSegment(tmp); err == nil {
			t.Errorf("truncation at %d bytes accepted", cut)
		}
	}
	// Bit flips in the header region must not panic.
	for i := 0; i < 8 && i < len(valid); i++ {
		mut := append([]byte(nil), valid...)
		mut[i] ^= 0xFF
		if err := os.WriteFile(tmp, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		_, _ = loadSegment(tmp) // error or success, but no panic
	}
}

func TestLoadSegmentMissingFile(t *testing.T) {
	if _, err := loadSegment(filepath.Join(t.TempDir(), "nope.seg")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestRecoveryIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	cfDir := filepath.Join(dir, "data")
	if err := os.MkdirAll(cfDir, 0o755); err != nil {
		t.Fatal(err)
	}
	// Foreign/garbage files in the CF directory must be skipped.
	if err := os.WriteFile(filepath.Join(cfDir, "README.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(cfDir, "zzz.seg"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cf, err := s.CF("data")
	if err != nil {
		t.Fatal(err)
	}
	if err := cf.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := cf.Get("k")
	if err != nil || !ok || string(v) != "v" {
		t.Fatalf("Get = %q, %v, %v", v, ok, err)
	}
}

// TestMergeOrderPreservedProperty: GetMerged returns operands oldest-first
// across arbitrary flush boundaries.
func TestMergeOrderPreservedProperty(t *testing.T) {
	prop := func(ops []byte, flushMask uint32) bool {
		if len(ops) == 0 {
			return true
		}
		if len(ops) > 24 {
			ops = ops[:24]
		}
		s, err := Open("", Options{})
		if err != nil {
			return false
		}
		cf, err := s.CF("t")
		if err != nil {
			return false
		}
		for i, b := range ops {
			if err := cf.Append("k", []byte{b}); err != nil {
				return false
			}
			if flushMask&(1<<uint(i%32)) != 0 {
				if err := cf.Flush(); err != nil {
					return false
				}
			}
		}
		got, err := cf.GetMerged("k")
		if err != nil || len(got) != len(ops) {
			return false
		}
		for i := range ops {
			if len(got[i]) != 1 || got[i][0] != ops[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestCompactIdempotent: compacting twice yields the same reads.
func TestCompactIdempotent(t *testing.T) {
	cf := memCF(t, Options{})
	for i := 0; i < 10; i++ {
		if err := cf.Put("k"+strconv.Itoa(i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		if err := cf.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if err := cf.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := cf.Compact(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		v, ok, err := cf.Get("k" + strconv.Itoa(i))
		if err != nil || !ok || v[0] != byte(i) {
			t.Fatalf("k%d = %v, %v, %v", i, v, ok, err)
		}
	}
	if st := cf.Stats(); st.Segments != 1 {
		t.Fatalf("segments = %d, want 1", st.Segments)
	}
}

func TestStatsAccounting(t *testing.T) {
	cf := memCF(t, Options{})
	if st := cf.Stats(); st.MemKeys != 0 || st.Segments != 0 {
		t.Fatalf("empty stats = %+v", st)
	}
	if err := cf.Put("key", []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	st := cf.Stats()
	if st.MemKeys != 1 || st.MemBytes == 0 {
		t.Fatalf("stats after put = %+v", st)
	}
	if err := cf.Flush(); err != nil {
		t.Fatal(err)
	}
	st = cf.Stats()
	if st.MemKeys != 0 || st.Segments != 1 || st.SegmentKeys != 1 {
		t.Fatalf("stats after flush = %+v", st)
	}
	if cf.Name() != "test" {
		t.Fatalf("Name = %q", cf.Name())
	}
}
