// Package gossip implements the anti-entropy membership protocol of the
// key/value substrate ("With the help of Gossip protocol, every node in
// Dynamo maintains information about all other nodes", §II). Each node
// periodically increments its own heartbeat and exchanges its full
// membership digest with a few random peers; nodes whose heartbeats stop
// advancing are suspected and then evicted. The full-table digest is what
// gives MOVE its O(1)-hop routing: every node can resolve any home node
// locally.
package gossip

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"github.com/movesys/move/internal/codec"
	"github.com/movesys/move/internal/ring"
)

// Status is a member's liveness state.
type Status int

// Liveness states.
const (
	// StatusAlive means heartbeats are advancing.
	StatusAlive Status = iota + 1
	// StatusSuspect means no heartbeat advance within SuspectAfter.
	StatusSuspect
	// StatusDead means the member was evicted; kept briefly as a tombstone
	// so stale digests cannot resurrect it.
	StatusDead
)

// String returns the status name.
func (s Status) String() string {
	switch s {
	case StatusAlive:
		return "alive"
	case StatusSuspect:
		return "suspect"
	case StatusDead:
		return "dead"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Member is one row of the membership table.
type Member struct {
	ID        ring.NodeID
	Rack      string
	Addr      string
	Heartbeat uint64
	Status    Status
}

// Sender delivers a gossip payload to a peer and returns its response.
type Sender func(ctx context.Context, to ring.NodeID, payload []byte) ([]byte, error)

// Config parameterizes a Gossiper.
type Config struct {
	// Self describes the local node.
	Self Member
	// Send delivers digests; typically Transport.Send wrapped with the
	// owner's message-type envelope.
	Send Sender
	// Fanout is how many peers each round gossips to. Zero means 3.
	Fanout int
	// Interval is the gossip period. Zero means 1s.
	Interval time.Duration
	// SuspectAfter marks a silent member suspect. Zero means 5×Interval.
	SuspectAfter time.Duration
	// EvictAfter declares a suspect dead. Zero means 4×SuspectAfter.
	EvictAfter time.Duration
	// Now supplies time; nil means time.Now. Tests inject a fake clock.
	Now func() time.Time
	// Seed seeds peer selection; zero derives one from Self for
	// deterministic but distinct per-node behaviour.
	Seed int64
	// OnJoin, if set, is called (outside the lock) when a member first
	// becomes alive.
	OnJoin func(Member)
	// OnLeave, if set, is called (outside the lock) when a member is
	// declared dead.
	OnLeave func(ring.NodeID)
	// OnChange, if set, is called (outside the lock) after any membership
	// transition — a join, a rejoin, or a leave. It carries no payload on
	// purpose: the hook exists to kick the reallocation loop, which reads
	// the membership itself.
	OnChange func()
}

// entry is the internal table row.
type entry struct {
	member   Member
	lastSeen time.Time
}

// Gossiper maintains the local membership table.
type Gossiper struct {
	cfg  Config
	rng  *rand.Rand
	done chan struct{}
	wg   sync.WaitGroup

	mu      sync.Mutex
	table   map[ring.NodeID]*entry
	started bool
	stopped bool
}

// ErrBadConfig reports an unusable configuration.
var ErrBadConfig = errors.New("gossip: invalid config")

// New validates cfg and builds a Gossiper whose table contains only the
// local node.
func New(cfg Config) (*Gossiper, error) {
	if cfg.Self.ID == "" {
		return nil, fmt.Errorf("%w: empty self id", ErrBadConfig)
	}
	if cfg.Send == nil {
		return nil, fmt.Errorf("%w: nil sender", ErrBadConfig)
	}
	if cfg.Fanout == 0 {
		cfg.Fanout = 3
	}
	if cfg.Interval == 0 {
		cfg.Interval = time.Second
	}
	if cfg.SuspectAfter == 0 {
		cfg.SuspectAfter = 5 * cfg.Interval
	}
	if cfg.EvictAfter == 0 {
		cfg.EvictAfter = 4 * cfg.SuspectAfter
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = int64(ring.HashKey(string(cfg.Self.ID)))
	}
	g := &Gossiper{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(seed)),
		done:  make(chan struct{}),
		table: make(map[ring.NodeID]*entry),
	}
	self := cfg.Self
	self.Status = StatusAlive
	g.table[self.ID] = &entry{member: self, lastSeen: cfg.Now()}
	return g, nil
}

// SeedPeers primes the table with bootstrap contacts (status alive, zero
// heartbeat, so any real digest supersedes them).
func (g *Gossiper) SeedPeers(members ...Member) {
	now := g.cfg.Now()
	var joined []Member
	g.mu.Lock()
	for _, m := range members {
		if m.ID == g.cfg.Self.ID {
			continue
		}
		if _, ok := g.table[m.ID]; ok {
			continue
		}
		m.Status = StatusAlive
		g.table[m.ID] = &entry{member: m, lastSeen: now}
		joined = append(joined, m)
	}
	g.mu.Unlock()
	g.notifyJoins(joined)
}

func (g *Gossiper) notifyJoins(members []Member) {
	if g.cfg.OnJoin != nil {
		for _, m := range members {
			g.cfg.OnJoin(m)
		}
	}
	if len(members) > 0 && g.cfg.OnChange != nil {
		g.cfg.OnChange()
	}
}

// Start launches the periodic gossip loop.
func (g *Gossiper) Start() {
	g.mu.Lock()
	if g.started || g.stopped {
		g.mu.Unlock()
		return
	}
	g.started = true
	g.mu.Unlock()

	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		ticker := time.NewTicker(g.cfg.Interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				ctx, cancel := context.WithTimeout(context.Background(), g.cfg.Interval)
				g.Tick(ctx)
				cancel()
			case <-g.done:
				return
			}
		}
	}()
}

// Stop halts the loop and waits for it to exit. Safe to call more than
// once.
func (g *Gossiper) Stop() {
	g.mu.Lock()
	if g.stopped {
		g.mu.Unlock()
		return
	}
	g.stopped = true
	g.mu.Unlock()
	close(g.done)
	g.wg.Wait()
}

// Tick runs one gossip round: bump the local heartbeat, exchange digests
// with up to Fanout random live peers, then apply failure detection.
// Exposed so tests (and the simulator) can drive rounds deterministically.
func (g *Gossiper) Tick(ctx context.Context) {
	g.mu.Lock()
	self := g.table[g.cfg.Self.ID]
	self.member.Heartbeat++
	self.lastSeen = g.cfg.Now()
	peers := g.alivePeersLocked()
	digest := g.digestLocked()
	g.mu.Unlock()

	g.rng.Shuffle(len(peers), func(i, j int) { peers[i], peers[j] = peers[j], peers[i] })
	if len(peers) > g.cfg.Fanout {
		peers = peers[:g.cfg.Fanout]
	}
	// Probe one suspect/dead member per round: without it, two sides of a
	// healed partition that declared each other dead would never exchange
	// digests again (each only gossips to peers it believes alive).
	if probe, ok := g.pickNonAlive(); ok {
		peers = append(peers, probe)
	}
	for _, peer := range peers {
		resp, err := g.cfg.Send(ctx, peer, digest)
		if err != nil {
			continue // failure detection handles persistent silence
		}
		if remote, err := decodeDigest(resp); err == nil {
			g.merge(remote)
		}
	}
	g.detectFailures()
}

// pickNonAlive returns one random suspect or dead member to probe.
func (g *Gossiper) pickNonAlive() (ring.NodeID, bool) {
	g.mu.Lock()
	var candidates []ring.NodeID
	for id, e := range g.table {
		if id == g.cfg.Self.ID || e.member.Status == StatusAlive {
			continue
		}
		candidates = append(candidates, id)
	}
	g.mu.Unlock()
	if len(candidates) == 0 {
		return "", false
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i] < candidates[j] })
	return candidates[g.rng.Intn(len(candidates))], true
}

// alivePeersLocked lists live peer IDs (excluding self).
func (g *Gossiper) alivePeersLocked() []ring.NodeID {
	peers := make([]ring.NodeID, 0, len(g.table))
	for id, e := range g.table {
		if id == g.cfg.Self.ID || e.member.Status != StatusAlive {
			continue
		}
		peers = append(peers, id)
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
	return peers
}

// Handle processes an inbound digest and returns the local digest. Wire it
// into the owner's message router.
func (g *Gossiper) Handle(_ ring.NodeID, payload []byte) ([]byte, error) {
	remote, err := decodeDigest(payload)
	if err != nil {
		return nil, err
	}
	g.merge(remote)
	g.mu.Lock()
	digest := g.digestLocked()
	g.mu.Unlock()
	return digest, nil
}

// merge folds a remote digest into the table: higher heartbeats win; new
// members join; dead tombstones are respected unless the remote heartbeat
// is strictly newer than the tombstoned one.
func (g *Gossiper) merge(remote []Member) {
	now := g.cfg.Now()
	var joined []Member
	g.mu.Lock()
	for _, m := range remote {
		if m.ID == g.cfg.Self.ID {
			continue
		}
		cur, ok := g.table[m.ID]
		switch {
		case !ok:
			mm := m
			mm.Status = StatusAlive
			g.table[m.ID] = &entry{member: mm, lastSeen: now}
			joined = append(joined, mm)
		case m.Heartbeat > cur.member.Heartbeat:
			wasDead := cur.member.Status == StatusDead
			cur.member.Heartbeat = m.Heartbeat
			cur.member.Rack = m.Rack
			cur.member.Addr = m.Addr
			cur.member.Status = StatusAlive
			cur.lastSeen = now
			if wasDead {
				joined = append(joined, cur.member)
			}
		}
	}
	g.mu.Unlock()
	g.notifyJoins(joined)
}

// detectFailures transitions silent members to suspect/dead.
func (g *Gossiper) detectFailures() {
	now := g.cfg.Now()
	var left []ring.NodeID
	g.mu.Lock()
	for id, e := range g.table {
		if id == g.cfg.Self.ID {
			continue
		}
		silent := now.Sub(e.lastSeen)
		switch e.member.Status {
		case StatusAlive:
			if silent >= g.cfg.SuspectAfter {
				e.member.Status = StatusSuspect
			}
		case StatusSuspect:
			if silent >= g.cfg.SuspectAfter+g.cfg.EvictAfter {
				e.member.Status = StatusDead
				left = append(left, id)
			}
		case StatusDead:
			// Tombstone retained; nothing to do.
		}
	}
	g.mu.Unlock()
	if g.cfg.OnLeave != nil {
		for _, id := range left {
			g.cfg.OnLeave(id)
		}
	}
	if len(left) > 0 && g.cfg.OnChange != nil {
		g.cfg.OnChange()
	}
}

// Members returns a snapshot of the table sorted by ID.
func (g *Gossiper) Members() []Member {
	g.mu.Lock()
	out := make([]Member, 0, len(g.table))
	for _, e := range g.table {
		out = append(out, e.member)
	}
	g.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Alive returns the alive members sorted by ID.
func (g *Gossiper) Alive() []Member {
	all := g.Members()
	out := all[:0]
	for _, m := range all {
		if m.Status == StatusAlive {
			out = append(out, m)
		}
	}
	return out
}

// StatusOf returns a member's status, or StatusDead for unknown IDs.
func (g *Gossiper) StatusOf(id ring.NodeID) Status {
	g.mu.Lock()
	defer g.mu.Unlock()
	e, ok := g.table[id]
	if !ok {
		return StatusDead
	}
	return e.member.Status
}

// digestLocked serializes the membership table.
func (g *Gossiper) digestLocked() []byte {
	w := codec.NewWriter(32 * len(g.table))
	w.Uvarint(uint64(len(g.table)))
	ids := make([]ring.NodeID, 0, len(g.table))
	for id := range g.table {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		e := g.table[id]
		w.String(string(e.member.ID))
		w.String(e.member.Rack)
		w.String(e.member.Addr)
		w.Uvarint(e.member.Heartbeat)
		w.Uint8(uint8(e.member.Status))
	}
	return w.Bytes()
}

// decodeDigest parses a serialized membership table.
func decodeDigest(data []byte) ([]Member, error) {
	r := codec.NewReader(data)
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(r.Remaining()) {
		return nil, fmt.Errorf("gossip: digest claims %d members in %d bytes", n, r.Remaining())
	}
	out := make([]Member, 0, n)
	for i := uint64(0); i < n; i++ {
		var m Member
		id, err := r.String()
		if err != nil {
			return nil, err
		}
		m.ID = ring.NodeID(id)
		if m.Rack, err = r.String(); err != nil {
			return nil, err
		}
		if m.Addr, err = r.String(); err != nil {
			return nil, err
		}
		if m.Heartbeat, err = r.Uvarint(); err != nil {
			return nil, err
		}
		st, err := r.Uint8()
		if err != nil {
			return nil, err
		}
		m.Status = Status(st)
		out = append(out, m)
	}
	return out, nil
}
