package gossip

import (
	"context"
	"testing"
	"time"

	"github.com/movesys/move/internal/ring"
)

// TestPartitionHeal verifies that a node isolated by an asymmetric network
// partition is suspected and evicted, then rejoins after the partition
// heals, with its heartbeat superseding the tombstone.
func TestPartitionHeal(t *testing.T) {
	tc := newTestCluster(t, 4)
	for i := 1; i < 4; i++ {
		tc.gs[i].SeedPeers(Member{ID: "g0"})
	}
	for round := 0; round < 8; round++ {
		tc.tickAll()
	}
	for i := 0; i < 4; i++ {
		if n := len(tc.gs[i].Alive()); n != 4 {
			t.Fatalf("g%d sees %d alive before partition", i, n)
		}
	}

	// Cut g3 off from everyone (both directions).
	for _, peer := range []string{"g0", "g1", "g2"} {
		tc.net.CutLink("g3", ring.NodeID(peer))
		tc.net.CutLink(ring.NodeID(peer), "g3")
	}
	// The majority side eventually declares g3 dead...
	for round := 0; round < 25; round++ {
		tc.clock.Advance(time.Second)
		for _, g := range tc.gs {
			g.Tick(context.Background())
		}
	}
	if st := tc.gs[0].StatusOf("g3"); st != StatusDead {
		t.Fatalf("g3 = %v on majority side, want dead", st)
	}
	// ...and the isolated side suspects everyone else.
	for _, peer := range []string{"g0", "g1", "g2"} {
		if st := tc.gs[3].StatusOf(ring.NodeID(peer)); st == StatusAlive {
			t.Fatalf("isolated node still sees %s alive", peer)
		}
	}

	// Heal and reconverge.
	for _, peer := range []string{"g0", "g1", "g2"} {
		tc.net.HealLink("g3", ring.NodeID(peer))
		tc.net.HealLink(ring.NodeID(peer), "g3")
	}
	for round := 0; round < 12; round++ {
		tc.tickAll()
	}
	for i := 0; i < 4; i++ {
		if n := len(tc.gs[i].Alive()); n != 4 {
			t.Fatalf("g%d sees %d alive after heal, want 4", i, n)
		}
	}
}
