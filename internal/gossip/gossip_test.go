package gossip

import (
	"context"
	"errors"
	"strconv"
	"sync"
	"testing"
	"time"

	"github.com/movesys/move/internal/ring"
	"github.com/movesys/move/internal/transport"
)

// fakeClock is a manually advanced clock shared by a test cluster.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// testCluster wires n gossipers over an in-memory network.
type testCluster struct {
	net   *transport.Network
	clock *fakeClock
	gs    []*Gossiper
}

func newTestCluster(t *testing.T, n int) *testCluster {
	t.Helper()
	tc := &testCluster{
		net:   transport.NewNetwork(transport.NetworkConfig{}),
		clock: newFakeClock(),
	}
	eps := make([]transport.Transport, n)
	for i := 0; i < n; i++ {
		id := ring.NodeID("g" + strconv.Itoa(i))
		gIdx := i
		eps[i] = tc.net.Join(id, func(ctx context.Context, from ring.NodeID, payload []byte) ([]byte, error) {
			return tc.gs[gIdx].Handle(from, payload)
		})
	}
	for i := 0; i < n; i++ {
		ep := eps[i]
		g, err := New(Config{
			Self: Member{ID: ep.Self(), Rack: "rack-" + strconv.Itoa(i%3), Addr: "addr-" + strconv.Itoa(i)},
			Send: func(ctx context.Context, to ring.NodeID, payload []byte) ([]byte, error) {
				return ep.Send(ctx, to, payload)
			},
			Interval:     time.Second,
			SuspectAfter: 3 * time.Second,
			EvictAfter:   5 * time.Second,
			Now:          tc.clock.Now,
			Seed:         int64(i + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		tc.gs = append(tc.gs, g)
	}
	return tc
}

// tickAll advances the clock and runs one round on every gossiper.
func (tc *testCluster) tickAll() {
	tc.clock.Advance(time.Second)
	for _, g := range tc.gs {
		g.Tick(context.Background())
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("err = %v, want ErrBadConfig", err)
	}
	if _, err := New(Config{Self: Member{ID: "a"}}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("err = %v, want ErrBadConfig (nil sender)", err)
	}
}

func TestMembershipConverges(t *testing.T) {
	tc := newTestCluster(t, 10)
	// Everyone only knows g0 initially (a seed contact).
	for i := 1; i < 10; i++ {
		tc.gs[i].SeedPeers(Member{ID: "g0", Addr: "addr-0", Rack: "rack-0"})
	}
	for round := 0; round < 12; round++ {
		tc.tickAll()
	}
	for i, g := range tc.gs {
		alive := g.Alive()
		if len(alive) != 10 {
			t.Fatalf("g%d sees %d alive members, want 10", i, len(alive))
		}
	}
}

func TestMetadataPropagates(t *testing.T) {
	tc := newTestCluster(t, 4)
	for i := 1; i < 4; i++ {
		tc.gs[i].SeedPeers(Member{ID: "g0"})
	}
	for round := 0; round < 8; round++ {
		tc.tickAll()
	}
	for _, m := range tc.gs[0].Members() {
		if m.Addr == "" {
			t.Fatalf("member %s has empty addr after convergence", m.ID)
		}
	}
}

func TestFailureDetection(t *testing.T) {
	tc := newTestCluster(t, 5)
	for i := 1; i < 5; i++ {
		tc.gs[i].SeedPeers(Member{ID: "g0"})
	}
	for round := 0; round < 10; round++ {
		tc.tickAll()
	}
	// Crash g4: it stops ticking and the network drops its messages.
	tc.net.Fail("g4")
	for round := 0; round < 4; round++ {
		tc.clock.Advance(time.Second)
		for _, g := range tc.gs[:4] {
			g.Tick(context.Background())
		}
	}
	if st := tc.gs[0].StatusOf("g4"); st != StatusSuspect {
		t.Fatalf("g4 status = %v, want suspect", st)
	}
	for round := 0; round < 10; round++ {
		tc.clock.Advance(time.Second)
		for _, g := range tc.gs[:4] {
			g.Tick(context.Background())
		}
	}
	if st := tc.gs[0].StatusOf("g4"); st != StatusDead {
		t.Fatalf("g4 status = %v, want dead", st)
	}
	if n := len(tc.gs[0].Alive()); n != 4 {
		t.Fatalf("alive = %d, want 4", n)
	}
}

func TestRecoveryAfterEviction(t *testing.T) {
	tc := newTestCluster(t, 3)
	for i := 1; i < 3; i++ {
		tc.gs[i].SeedPeers(Member{ID: "g0"})
	}
	for round := 0; round < 6; round++ {
		tc.tickAll()
	}
	tc.net.Fail("g2")
	for round := 0; round < 20; round++ {
		tc.clock.Advance(time.Second)
		tc.gs[0].Tick(context.Background())
		tc.gs[1].Tick(context.Background())
	}
	if st := tc.gs[0].StatusOf("g2"); st != StatusDead {
		t.Fatalf("g2 = %v, want dead", st)
	}
	// g2 comes back with advancing heartbeats.
	tc.net.Recover("g2")
	for round := 0; round < 6; round++ {
		tc.tickAll()
	}
	if st := tc.gs[0].StatusOf("g2"); st != StatusAlive {
		t.Fatalf("g2 = %v, want alive after recovery", st)
	}
}

func TestOnJoinOnLeaveCallbacks(t *testing.T) {
	tc := newTestCluster(t, 3)
	var mu sync.Mutex
	joined := make(map[ring.NodeID]bool)
	left := make(map[ring.NodeID]bool)
	// Rebuild g0 with callbacks.
	ep := tc.net.Join("g0", func(ctx context.Context, from ring.NodeID, payload []byte) ([]byte, error) {
		return tc.gs[0].Handle(from, payload)
	})
	g0, err := New(Config{
		Self: Member{ID: "g0"},
		Send: func(ctx context.Context, to ring.NodeID, payload []byte) ([]byte, error) {
			return ep.Send(ctx, to, payload)
		},
		Interval:     time.Second,
		SuspectAfter: 3 * time.Second,
		EvictAfter:   5 * time.Second,
		Now:          tc.clock.Now,
		Seed:         77,
		OnJoin: func(m Member) {
			mu.Lock()
			joined[m.ID] = true
			mu.Unlock()
		},
		OnLeave: func(id ring.NodeID) {
			mu.Lock()
			left[id] = true
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	tc.gs[0] = g0
	for i := 1; i < 3; i++ {
		tc.gs[i].SeedPeers(Member{ID: "g0"})
	}
	for round := 0; round < 6; round++ {
		tc.tickAll()
	}
	mu.Lock()
	if !joined["g1"] || !joined["g2"] {
		t.Fatalf("joins = %v, want g1 and g2", joined)
	}
	mu.Unlock()

	tc.net.Fail("g2")
	for round := 0; round < 25; round++ {
		tc.clock.Advance(time.Second)
		tc.gs[0].Tick(context.Background())
		tc.gs[1].Tick(context.Background())
	}
	mu.Lock()
	defer mu.Unlock()
	if !left["g2"] {
		t.Fatalf("leaves = %v, want g2", left)
	}
}

func TestStartStop(t *testing.T) {
	net := transport.NewNetwork(transport.NetworkConfig{})
	ep := net.Join("solo", func(ctx context.Context, from ring.NodeID, payload []byte) ([]byte, error) {
		return nil, nil
	})
	g, err := New(Config{
		Self:     Member{ID: "solo"},
		Send:     ep.Send,
		Interval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	g.Start() // idempotent
	time.Sleep(10 * time.Millisecond)
	g.Stop()
	g.Stop() // idempotent
}

func TestHandleRejectsCorruptDigest(t *testing.T) {
	tc := newTestCluster(t, 2)
	if _, err := tc.gs[0].Handle("g1", []byte{0xFF, 0xFF}); err == nil {
		t.Fatal("expected error for corrupt digest")
	}
	// A digest claiming many members but carrying none must be rejected.
	if _, err := tc.gs[0].Handle("g1", []byte{200}); err == nil {
		t.Fatal("expected error for overclaiming digest")
	}
}

func TestStatusOfUnknown(t *testing.T) {
	tc := newTestCluster(t, 2)
	if st := tc.gs[0].StatusOf("ghost"); st != StatusDead {
		t.Fatalf("unknown member status = %v, want dead", st)
	}
}

func TestStatusString(t *testing.T) {
	if StatusAlive.String() != "alive" || StatusSuspect.String() != "suspect" || StatusDead.String() != "dead" {
		t.Fatal("status names wrong")
	}
	if Status(9).String() != "status(9)" {
		t.Fatal("unknown status string wrong")
	}
}
