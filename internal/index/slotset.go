package index

import "math/bits"

// slotSet is a compressed bitset over a cover's dense member-slot indexes —
// the storage unit of the aggregated index's posting lists. One slotSet per
// (term, cover) pair records which of the cover's members were posted under
// that term; one more per cover (cover.alive) records which members are
// currently registered.
//
// The representation is roaring-style with two container forms:
//
//   - array: a sorted []uint16 of slot indexes, used while the set holds
//     fewer than slotArrayMax entries and every slot fits in 16 bits. At the
//     paper's filter densities most (term, cover) memberships are tiny, so
//     this is the common case: 2 bytes per member.
//   - bitmap: []uint64 words indexed by slot, used once the set grows past
//     slotArrayMax or sees a slot ≥ 1<<16. Hot covers with hundreds of
//     thousands of members cost 1 bit per slot instead of the flat index's
//     8-byte posting entry plus ~50-byte dedup-map entry.
//
// Promotion is one-way (array → bitmap); clears never demote. The cached
// cardinality makes the logical posting-list length — what MatchStats
// charges — an O(1) read.
//
// slotSets are guarded by their owner's lock (the term shard's RWMutex for
// posting memberships, the cover's RWMutex for alive sets); they carry no
// synchronization of their own.
type slotSet struct {
	card  int32
	arr   []uint16 // sorted; nil once promoted
	words []uint64 // nil until promoted
}

// slotArrayMax is the array-container capacity before promotion to a
// bitmap. 64 entries × 2 bytes = 128 bytes, the point where a small bitmap
// stops losing to the array on both space and membership-test cost.
const slotArrayMax = 64

// count returns the cardinality.
func (s *slotSet) count() int { return int(s.card) }

// arrFind returns the insertion index of slot in the sorted array container
// and whether it is already present.
func (s *slotSet) arrFind(slot int) (int, bool) {
	lo, hi := 0, len(s.arr)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if int(s.arr[mid]) < slot {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(s.arr) && int(s.arr[lo]) == slot
}

// has reports slot membership.
func (s *slotSet) has(slot int) bool {
	if s.words != nil {
		w := slot >> 6
		return w < len(s.words) && s.words[w]&(1<<(uint(slot)&63)) != 0
	}
	_, ok := s.arrFind(slot)
	return ok
}

// testAndSet inserts slot, reporting whether it was newly added.
func (s *slotSet) testAndSet(slot int) bool {
	if s.words == nil {
		if len(s.arr) < slotArrayMax && slot < 1<<16 {
			i, ok := s.arrFind(slot)
			if ok {
				return false
			}
			s.arr = append(s.arr, 0)
			copy(s.arr[i+1:], s.arr[i:])
			s.arr[i] = uint16(slot)
			s.card++
			return true
		}
		s.promote(slot)
	}
	w, mask := slot>>6, uint64(1)<<(uint(slot)&63)
	if w >= len(s.words) {
		grown := make([]uint64, w+1)
		copy(grown, s.words)
		s.words = grown
	}
	if s.words[w]&mask != 0 {
		return false
	}
	s.words[w] |= mask
	s.card++
	return true
}

// promote converts the array container to a bitmap sized for maxSlot.
func (s *slotSet) promote(maxSlot int) {
	top := maxSlot
	if len(s.arr) > 0 && int(s.arr[len(s.arr)-1]) > top {
		top = int(s.arr[len(s.arr)-1])
	}
	s.words = make([]uint64, top>>6+1)
	for _, v := range s.arr {
		s.words[v>>6] |= 1 << (uint(v) & 63)
	}
	s.arr = nil
}

// clear removes slot, reporting whether it was present.
func (s *slotSet) clear(slot int) bool {
	if s.words != nil {
		w, mask := slot>>6, uint64(1)<<(uint(slot)&63)
		if w >= len(s.words) || s.words[w]&mask == 0 {
			return false
		}
		s.words[w] &^= mask
		s.card--
		return true
	}
	i, ok := s.arrFind(slot)
	if !ok {
		return false
	}
	s.arr = append(s.arr[:i], s.arr[i+1:]...)
	s.card--
	return true
}

// first returns the lowest set slot, or -1 when empty. Used to promote a
// surviving member to cover representative.
func (s *slotSet) first() int {
	if s.words != nil {
		for w, bits := range s.words {
			if bits != 0 {
				return w<<6 + trailingZeros(bits)
			}
		}
		return -1
	}
	if len(s.arr) == 0 {
		return -1
	}
	return int(s.arr[0])
}

// forEach calls fn for every slot in ascending order. Cold-path helper
// (PostingIDs, stats, tests); the match loops iterate containers inline to
// stay allocation-free.
func (s *slotSet) forEach(fn func(slot int)) {
	if s.words != nil {
		for w, bits := range s.words {
			for bits != 0 {
				b := trailingZeros(bits)
				fn(w<<6 + b)
				bits &= bits - 1
			}
		}
		return
	}
	for _, v := range s.arr {
		fn(int(v))
	}
}

// intersectCard returns |s ∩ o| container-wise: word-AND popcounts when
// both sides are bitmaps, membership probes against the larger side when
// either is an array. Used to intersect posting memberships with a cover's
// alive set before expansion accounting (live fan-out statistics).
func (s *slotSet) intersectCard(o *slotSet) int {
	if s.words != nil && o.words != nil {
		n := len(s.words)
		if len(o.words) < n {
			n = len(o.words)
		}
		total := 0
		for i := 0; i < n; i++ {
			total += popcount(s.words[i] & o.words[i])
		}
		return total
	}
	small, big := s, o
	if small.arr == nil || (big.arr != nil && len(big.arr) < len(small.arr)) {
		small, big = big, small
	}
	total := 0
	for _, v := range small.arr {
		if big.has(int(v)) {
			total++
		}
	}
	return total
}

func trailingZeros(v uint64) int { return bits.TrailingZeros64(v) }

func popcount(v uint64) int { return bits.OnesCount64(v) }
