package index

import (
	"sync"
	"sync/atomic"

	"github.com/movesys/move/internal/model"
)

// This file is the aggregated (covering) index engine — the production
// serving layer built by New. It stores posting lists as one compressed
// (term, cover) entry per predicate signature instead of one entry per
// filter, and expands covers back to concrete filters at match time. The
// flat per-filter engine (index.go + shard.go, built by NewFlat) stays
// alive as the in-tree correctness oracle; the equivalence battery in
// cover_test.go / fuzz_test.go / shard_equiv_test.go pins the two engines
// to identical (sorted) match sets and identical MatchStats.
//
// Stats parity is a hard invariant, not an accident: every (term, filter)
// pair the flat index would keep on a posting list corresponds to exactly
// one set bit across that term's entries, tombstones included. MatchStats
// therefore reports the same logical PostingLists/Postings/Evaluated the
// flat engine reports; the physical savings are visible through
// CoverStats and the index.cover.* gauges instead.

// aggEntry is one (term, cover) posting entry: the compressed replacement
// for a run of per-filter posting entries sharing a signature. bits holds
// member slots posted under the term.
type aggEntry struct {
	c    *cover
	bits slotSet
}

// aggPosting is one term's posting list: entries sorted by cover id, plus
// the cached logical cardinality (total set bits — what the flat engine's
// len(ids) would be).
type aggPosting struct {
	entries []aggEntry
	card    int
}

// find returns the index of cid in entries (or its insertion point) and
// whether it is present.
func (p *aggPosting) find(cid uint32) (int, bool) {
	lo, hi := 0, len(p.entries)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if p.entries[mid].c.id < cid {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(p.entries) && p.entries[lo].c.id == cid
}

// aggTermShard holds the aggregated posting lists whose terms hash to it.
// Unlike the flat termShard, entries and bitsets mutate in place, so the
// match path holds the read lock for the whole scan instead of copying a
// snapshot header.
type aggTermShard struct {
	mu    sync.RWMutex
	lists map[string]*aggPosting
}

// entryFor returns term's entry for cover c, inserting posting and entry
// as needed. Caller holds s.mu.
func (s *aggTermShard) entryFor(term string, c *cover) (*aggPosting, *aggEntry, bool) {
	p := s.lists[term]
	if p == nil {
		p = &aggPosting{}
		s.lists[term] = p
	}
	i, ok := p.find(c.id)
	if !ok {
		p.entries = append(p.entries, aggEntry{})
		copy(p.entries[i+1:], p.entries[i:])
		p.entries[i] = aggEntry{c: c}
	}
	return p, &p.entries[i], !ok
}

// clearID clears id's bit in every entry of p other than keep, returning
// the number of bits cleared. Caller holds s.mu.
func clearID(p *aggPosting, keep *cover, id model.FilterID) int {
	cleared := 0
	for i := range p.entries {
		e := &p.entries[i]
		if e.c == keep {
			continue
		}
		if s, ok := e.c.slotIndex(id); ok && e.bits.clear(int(s)) {
			cleared++
		}
	}
	p.card -= cleared
	return cleared
}

// aggAdd sets (c, slot)'s bit under term. Re-homing first: when the filter
// previously carried this term under another cover — prior when its last
// cover is known, any entry when fullScan says the id has multi-cover
// history — the stale bits are cleared in the same lock hold, so a term's
// entries never hold the same filter twice and the logical cardinality
// tracks the flat index's deduplicated list length exactly.
func (s *aggTermShard) aggAdd(term string, c *cover, slot int, id model.FilterID, prior *cover, fullScan bool) (newBit, newEntry bool) {
	s.mu.Lock()
	p, e, newEntry := s.entryFor(term, c)
	if fullScan {
		clearID(p, c, id)
	} else if prior != nil && prior != c {
		if i, ok := p.find(prior.id); ok {
			pe := &p.entries[i]
			if ps, ok := prior.slotIndex(id); ok && pe.bits.clear(int(ps)) {
				p.card--
			}
		}
	}
	if e.bits.testAndSet(slot) {
		p.card++
		newBit = true
	}
	s.mu.Unlock()
	return newBit, newEntry
}

// addIfAbsent is the migration-replay variant: the bit is set only when no
// entry of the term — any cover — already holds the filter, mirroring the
// flat engine's addIfAbsent over the whole deduplicated list. The scan is
// O(entries); this path only runs during migration replay.
func (s *aggTermShard) addIfAbsent(term string, c *cover, slot int, id model.FilterID) (added, newEntry bool) {
	s.mu.Lock()
	p, e, newEntry := s.entryFor(term, c)
	present := e.bits.has(slot)
	if !present {
		for i := range p.entries {
			oe := &p.entries[i]
			if oe.c == c {
				continue
			}
			if s2, ok := oe.c.slotIndex(id); ok && oe.bits.has(int(s2)) {
				present = true
				break
			}
		}
	}
	if !present {
		e.bits.testAndSet(slot)
		p.card++
		added = true
	}
	s.mu.Unlock()
	return added, newEntry
}

// remove drops term's posting list, returning the physical entry count it
// held (for stored-entry accounting).
func (s *aggTermShard) remove(term string) int {
	s.mu.Lock()
	n := 0
	if p := s.lists[term]; p != nil {
		n = len(p.entries)
		delete(s.lists, term)
	}
	s.mu.Unlock()
	return n
}

// histShard tracks per-filter cover history for the re-registration
// paths, sharded like the filter shards. Both maps stay tiny: lastGone
// only holds ids whose definition is currently deleted (tombstones), and
// multi only ids that ever switched signatures.
type histShard struct {
	mu sync.Mutex
	// lastGone maps an id with no live definition to the cover that held
	// it when it unregistered (or the orphan cover after a restart).
	lastGone map[model.FilterID]*cover
	// multi marks ids that have been members of more than one cover; their
	// stale bits can hide in any entry, so re-registration re-homes them
	// with a full entry scan instead of a targeted clear.
	multi map[model.FilterID]struct{}
}

// aggState is the aggregated engine's serving state, attached to an Index
// by New (nil under NewFlat).
type aggState struct {
	seq  atomic.Uint32
	sig  [DefaultShards]coverSigShard
	term [DefaultShards]aggTermShard
	hist [DefaultShards]histShard

	// orphan collects posting bits recovered at startup whose filter
	// definition no longer exists — the flat engine's tombstones. Its mode
	// is invalid so it never matches as a cover; its members are dropped
	// at match time by the same missing-definition check the flat index
	// uses.
	orphan *cover

	coversLive    atomic.Int64
	membersLive   atomic.Int64
	storedEntries atomic.Int64
}

func newAggState() *aggState {
	a := &aggState{}
	for i := range a.term {
		a.term[i].lists = make(map[string]*aggPosting)
	}
	for i := range a.sig {
		a.sig[i].covers = make(map[coverKey]*cover)
	}
	for i := range a.hist {
		a.hist[i].lastGone = make(map[model.FilterID]*cover)
		a.hist[i].multi = make(map[model.FilterID]struct{})
	}
	a.orphan = &cover{id: a.seq.Add(1)}
	return a
}

func (a *aggState) termShard(term string) *aggTermShard {
	return &a.term[termShardFor(term)]
}

func (a *aggState) histShard(id model.FilterID) *histShard {
	return &a.hist[filterShardFor(id)]
}

// intern returns the cover for key, creating it with the canonical term
// set on first use. canon must be freshly allocated; the cover takes
// ownership.
func (a *aggState) intern(key coverKey, canon []string) *cover {
	sh := &a.sig[sigShardFor(key)]
	sh.mu.Lock()
	c := sh.covers[key]
	if c == nil {
		c = &cover{
			id:        a.seq.Add(1),
			mode:      key.mode,
			threshold: key.threshold,
			terms:     canon,
		}
		sh.covers[key] = c
	}
	sh.mu.Unlock()
	return c
}

// lookup returns the cover for key, or nil.
func (a *aggState) lookup(key coverKey) *cover {
	sh := &a.sig[sigShardFor(key)]
	sh.mu.Lock()
	c := sh.covers[key]
	sh.mu.Unlock()
	return c
}

// slotIndex returns id's slot in the cover, if it ever joined.
func (c *cover) slotIndex(id model.FilterID) (int32, bool) {
	c.mu.RLock()
	s, ok := c.findSlot(id)
	c.mu.RUnlock()
	return s, ok
}

// bareSlot assigns a slot without touching liveness — used for orphan
// members, which have no definition and therefore are not alive.
func (c *cover) bareSlot(id model.FilterID) int32 {
	c.mu.Lock()
	s, ok := c.findSlot(id)
	if !ok {
		s = c.addSlot(id)
	}
	c.mu.Unlock()
	return s
}

// takeLastGone removes and returns id's tombstone cover, if any.
func (h *histShard) takeLastGone(id model.FilterID) *cover {
	h.mu.Lock()
	c := h.lastGone[id]
	if c != nil {
		delete(h.lastGone, id)
	}
	h.mu.Unlock()
	return c
}

func (h *histShard) setLastGone(id model.FilterID, c *cover) {
	h.mu.Lock()
	h.lastGone[id] = c
	h.mu.Unlock()
}

// noteCover records that id now belongs to c having previously belonged
// to prior, and reports whether stale bits could hide outside prior —
// i.e. whether the id was already multi-cover before this hop.
func (h *histShard) noteCover(id model.FilterID, prior *cover) (wasMulti bool) {
	h.mu.Lock()
	_, wasMulti = h.multi[id]
	if prior != nil {
		h.multi[id] = struct{}{}
	}
	h.mu.Unlock()
	return wasMulti
}

// sameStrings reports element-wise equality.
func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// aggRegister is Register on the aggregated engine. The store writes and
// counter updates mirror the flat path exactly (including its
// unconditional counter increments); the in-memory layer re-homes the
// filter's posting bits when its signature changed.
func (ix *Index) aggRegister(f model.Filter, postingTerms []string) error {
	if err := f.Validate(); err != nil {
		return err
	}
	if err := ix.filters.Put(f); err != nil {
		return err
	}
	for _, t := range postingTerms {
		if err := ix.postings.Add(t, f.ID); err != nil {
			return err
		}
	}
	a := ix.agg
	key, canon := sigOf(&f)
	c := a.intern(key, canon)

	// Locate the filter's previous cover: from its live definition if it
	// is re-registering, from the tombstone record if it was unregistered
	// or recovered without a definition.
	var prior *cover
	if old, hadOld := ix.state.filterShard(f.ID).get(f.ID); hadOld {
		if okey, _ := sigOf(&old); okey != key {
			prior = a.lookup(okey)
		}
	} else {
		prior = a.histShard(f.ID).takeLastGone(f.ID)
	}
	if prior == c {
		prior = nil
	}
	fullScan := a.histShard(f.ID).noteCover(f.ID, prior)

	slot, revived, firstLive := c.memberSlot(f.ID)
	if revived {
		a.membersLive.Add(1)
	}
	if firstLive {
		a.coversLive.Add(1)
	}
	if prior != nil {
		died, emptied, _ := prior.markDead(f.ID)
		if died {
			a.membersLive.Add(-1)
		}
		if emptied {
			a.coversLive.Add(-1)
		}
	}

	stored := f.Clone()
	if sameStrings(stored.Terms, c.terms) {
		// Attach: share the cover's canonical term array so the match path
		// can recognize membership by slice identity (see attachedTo).
		stored.Terms = c.terms
	}
	ix.state.filterShard(f.ID).put(stored)

	for _, t := range postingTerms {
		_, newEntry := a.termShard(t).aggAdd(t, c, int(slot), f.ID, prior, fullScan)
		if newEntry {
			a.storedEntries.Add(1)
		}
	}
	ix.numFilters.Add(1)
	ix.numPostings.Add(int64(len(postingTerms)))
	return nil
}

// aggEnsureRegistered is EnsureRegistered on the aggregated engine:
// idempotent for migration replay, with posting bits attached to the
// cover of whichever definition is current.
func (ix *Index) aggEnsureRegistered(f model.Filter, postingTerms []string) (bool, error) {
	if err := f.Validate(); err != nil {
		return false, err
	}
	a := ix.agg
	key, canon := sigOf(&f)
	c := a.intern(key, canon)
	created := false
	sh := ix.state.filterShard(f.ID)
	sh.mu.Lock()
	cur, ok := sh.filters[f.ID]
	if !ok {
		if err := ix.filters.Put(f); err != nil {
			sh.mu.Unlock()
			return false, err
		}
		stored := f.Clone()
		if sameStrings(stored.Terms, c.terms) {
			stored.Terms = c.terms
		}
		sh.filters[f.ID] = stored
		cur = stored
		created = true
	}
	sh.mu.Unlock()
	if created {
		ix.numFilters.Add(1)
		// The id may come back from a tombstone whose cover still holds
		// stale bits on terms this replay doesn't carry; record the hop so
		// later re-registrations re-home with a full scan.
		if prior := a.histShard(f.ID).takeLastGone(f.ID); prior != nil && prior != c {
			a.histShard(f.ID).noteCover(f.ID, prior)
		}
	} else if ckey, ccanon := sigOf(&cur); ckey != key {
		// A copy already existed under a different signature; the bits
		// belong with the definition the match path will read.
		key, c = ckey, a.intern(ckey, ccanon)
	}
	slot, revived, firstLive := c.memberSlot(f.ID)
	if revived {
		a.membersLive.Add(1)
	}
	if firstLive {
		a.coversLive.Add(1)
	}
	for _, t := range postingTerms {
		added, newEntry := a.termShard(t).addIfAbsent(t, c, int(slot), f.ID)
		if newEntry {
			a.storedEntries.Add(1)
		}
		if added {
			ix.numPostings.Add(1)
			if err := ix.postings.Add(t, f.ID); err != nil {
				return created, err
			}
		}
	}
	return created, nil
}

// aggUnregister is Unregister on the aggregated engine. Beyond the flat
// path's tombstone discipline it maintains cover liveness — in particular
// promoting a surviving member to representative when the covering filter
// itself unregisters, so the cover (and its posting entries) stay owned.
func (ix *Index) aggUnregister(id model.FilterID) error {
	sh := ix.state.filterShard(id)
	sh.mu.Lock()
	f, present := sh.filters[id]
	if !present {
		sh.mu.Unlock()
		return nil
	}
	if err := ix.filters.Delete(id); err != nil {
		sh.mu.Unlock()
		return err
	}
	delete(sh.filters, id)
	sh.mu.Unlock()
	ix.numFilters.Add(-1)
	a := ix.agg
	key, _ := sigOf(&f)
	if c := a.lookup(key); c != nil {
		died, emptied, _ := c.markDead(id)
		if died {
			a.membersLive.Add(-1)
		}
		if emptied {
			a.coversLive.Add(-1)
		}
		a.histShard(id).setLastGone(id, c)
	}
	return nil
}

// aggDropTerm drops a term's aggregated posting list.
func (ix *Index) aggDropTerm(term string) error {
	if err := ix.postings.Remove(term); err != nil {
		return err
	}
	removed := ix.agg.termShard(term).remove(term)
	ix.agg.storedEntries.Add(-int64(removed))
	return nil
}

// aggLoad rebuilds the aggregated serving layer from the store after a
// restart. Definitions are interned into covers first; posting bits are
// then attached to each id's current cover, or to the orphan cover when
// the definition is gone — which also normalizes every id back to a
// single cover, clearing any pre-crash multi-cover history.
func (ix *Index) aggLoad() error {
	a := ix.agg
	count := 0
	err := ix.filters.Each(func(f model.Filter) bool {
		key, canon := sigOf(&f)
		c := a.intern(key, canon)
		_, revived, firstLive := c.memberSlot(f.ID)
		if revived {
			a.membersLive.Add(1)
		}
		if firstLive {
			a.coversLive.Add(1)
		}
		if sameStrings(f.Terms, c.terms) {
			f.Terms = c.terms
		}
		ix.state.filterShard(f.ID).put(f)
		count++
		return true
	})
	if err != nil {
		return err
	}
	ix.numFilters.Store(int64(count))
	terms, err := ix.postings.Terms()
	if err != nil {
		return err
	}
	total := 0
	for _, t := range terms {
		ids, err := ix.postings.Get(t)
		if err != nil {
			return err
		}
		sh := a.termShard(t)
		for _, id := range ids {
			var c *cover
			var slot int32
			if f, ok := ix.state.filterShard(id).get(id); ok {
				key, canon := sigOf(&f)
				c = a.intern(key, canon)
				slot, _, _ = c.memberSlot(id)
			} else {
				c = a.orphan
				slot = c.bareSlot(id)
				a.histShard(id).setLastGone(id, c)
			}
			_, newEntry := sh.aggAdd(t, c, int(slot), id, nil, false)
			if newEntry {
				a.storedEntries.Add(1)
			}
		}
		total += len(ids)
	}
	ix.numPostings.Store(int64(total))
	return nil
}
