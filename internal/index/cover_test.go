package index

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/movesys/move/internal/model"
	"github.com/movesys/move/internal/store"
)

// This file is the oracle-equivalence battery for the aggregated
// (covering) engine: every test drives identical operations into an
// aggregated index (New) and a flat per-filter index (NewFlat) and holds
// all three matchers to byte-identical sorted match sets and identical
// MatchStats, including register/unregister interleavings that split and
// merge covers.

// enginePair is an aggregated index and its flat oracle fed the same
// operations.
type enginePair struct {
	agg  *Index
	flat *Index
}

func newEnginePair(t *testing.T) *enginePair {
	t.Helper()
	sa, err := store.Open("", store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sf, err := store.Open("", store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	agg, err := New(sa)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := NewFlat(sf)
	if err != nil {
		t.Fatal(err)
	}
	if !agg.Aggregated() || flat.Aggregated() {
		t.Fatal("engine selection broken: New must aggregate, NewFlat must not")
	}
	return &enginePair{agg: agg, flat: flat}
}

func (p *enginePair) register(t *testing.T, f model.Filter, postingTerms []string) {
	t.Helper()
	if err := p.agg.Register(f, postingTerms); err != nil {
		t.Fatalf("agg register %v: %v", f.ID, err)
	}
	if err := p.flat.Register(f, postingTerms); err != nil {
		t.Fatalf("flat register %v: %v", f.ID, err)
	}
}

func (p *enginePair) ensure(t *testing.T, f model.Filter, postingTerms []string) {
	t.Helper()
	aCreated, err := p.agg.EnsureRegistered(f, postingTerms)
	if err != nil {
		t.Fatalf("agg ensure %v: %v", f.ID, err)
	}
	fCreated, err := p.flat.EnsureRegistered(f, postingTerms)
	if err != nil {
		t.Fatalf("flat ensure %v: %v", f.ID, err)
	}
	if aCreated != fCreated {
		t.Fatalf("ensure %v: created diverged: agg=%v flat=%v", f.ID, aCreated, fCreated)
	}
}

func (p *enginePair) unregister(t *testing.T, id model.FilterID) {
	t.Helper()
	if err := p.agg.Unregister(id); err != nil {
		t.Fatalf("agg unregister %v: %v", id, err)
	}
	if err := p.flat.Unregister(id); err != nil {
		t.Fatalf("flat unregister %v: %v", id, err)
	}
}

func (p *enginePair) dropTerm(t *testing.T, term string) {
	t.Helper()
	if err := p.agg.DropTerm(term); err != nil {
		t.Fatalf("agg drop %q: %v", term, err)
	}
	if err := p.flat.DropTerm(term); err != nil {
		t.Fatalf("flat drop %q: %v", term, err)
	}
}

func (p *enginePair) observe(d *model.Document) {
	p.agg.ObserveDocument(d)
	p.flat.ObserveDocument(d)
}

// compareAll matches doc through MatchTerm (for every doc term),
// MatchTerms, and MatchSIFT on both engines and fails on any divergence
// in the sorted match set or the stats.
func (p *enginePair) compareAll(t *testing.T, doc *model.Document) {
	t.Helper()
	for _, term := range doc.Terms {
		am, ast, err := p.agg.MatchTerm(doc, term)
		if err != nil {
			t.Fatalf("agg MatchTerm(%q): %v", term, err)
		}
		fm, fst, err := p.flat.MatchTerm(doc, term)
		if err != nil {
			t.Fatalf("flat MatchTerm(%q): %v", term, err)
		}
		if !bytes.Equal(encodeMatches(am, ast), encodeMatches(fm, fst)) {
			t.Fatalf("MatchTerm(%v, %q) diverged:\n agg:  %v %+v\n flat: %v %+v",
				doc.Terms, term, am, ast, fm, fst)
		}
	}
	am, ast, err := p.agg.MatchTerms(doc, doc.Terms)
	if err != nil {
		t.Fatalf("agg MatchTerms: %v", err)
	}
	fm, fst, err := p.flat.MatchTerms(doc, doc.Terms)
	if err != nil {
		t.Fatalf("flat MatchTerms: %v", err)
	}
	if !bytes.Equal(encodeMatches(am, ast), encodeMatches(fm, fst)) {
		t.Fatalf("MatchTerms(%v) diverged:\n agg:  %v %+v\n flat: %v %+v",
			doc.Terms, am, ast, fm, fst)
	}
	am, ast, err = p.agg.MatchSIFT(doc)
	if err != nil {
		t.Fatalf("agg MatchSIFT: %v", err)
	}
	fm, fst, err = p.flat.MatchSIFT(doc)
	if err != nil {
		t.Fatalf("flat MatchSIFT: %v", err)
	}
	if !bytes.Equal(encodeMatches(am, ast), encodeMatches(fm, fst)) {
		t.Fatalf("MatchSIFT(%v) diverged:\n agg:  %v %+v\n flat: %v %+v",
			doc.Terms, am, ast, fm, fst)
	}
	if a, f := p.agg.NumFilters(), p.flat.NumFilters(); a != f {
		t.Fatalf("NumFilters diverged: agg=%d flat=%d", a, f)
	}
	if a, f := p.agg.NumPostings(), p.flat.NumPostings(); a != f {
		t.Fatalf("NumPostings diverged: agg=%d flat=%d", a, f)
	}
}

func anyFilter(id model.FilterID, terms ...string) model.Filter {
	return model.Filter{ID: id, Subscriber: fmt.Sprintf("s%d", id%7), Terms: terms, Mode: model.MatchAny}
}

func allFilter(id model.FilterID, terms ...string) model.Filter {
	return model.Filter{ID: id, Subscriber: fmt.Sprintf("s%d", id%7), Terms: terms, Mode: model.MatchAll}
}

// TestCoverSharingAndStats pins the basic aggregation contract: filters
// with the same signature share one cover and one posting entry per term,
// and CoverStats reports the physical savings while the logical counters
// stay flat-identical.
func TestCoverSharingAndStats(t *testing.T) {
	p := newEnginePair(t)
	for i := 1; i <= 10; i++ {
		p.register(t, allFilter(model.FilterID(i), "go", "news"), []string{"go", "news"})
	}
	cs := p.agg.CoverStats()
	if cs.Covers != 1 {
		t.Fatalf("Covers = %d, want 1 (identical signatures must share)", cs.Covers)
	}
	if cs.CoveredFilters != 10 {
		t.Fatalf("CoveredFilters = %d, want 10", cs.CoveredFilters)
	}
	if cs.StoredEntries != 2 {
		t.Fatalf("StoredEntries = %d, want 2 (one per term)", cs.StoredEntries)
	}
	if cs.LogicalPostings != 20 || cs.PostingsSaved != 18 {
		t.Fatalf("LogicalPostings/PostingsSaved = %d/%d, want 20/18", cs.LogicalPostings, cs.PostingsSaved)
	}
	if cs.ExpansionFanoutMilli != 10000 {
		t.Fatalf("ExpansionFanoutMilli = %d, want 10000", cs.ExpansionFanoutMilli)
	}
	p.compareAll(t, &model.Document{ID: 1, Terms: []string{"go", "news"}})
	p.compareAll(t, &model.Document{ID: 2, Terms: []string{"go"}})
	p.compareAll(t, &model.Document{ID: 3, Terms: []string{"rust"}})

	// A different signature over the same terms is a different cover.
	p.register(t, anyFilter(500, "go", "news"), []string{"go", "news"})
	if cs := p.agg.CoverStats(); cs.Covers != 2 {
		t.Fatalf("Covers after second signature = %d, want 2", cs.Covers)
	}
	p.compareAll(t, &model.Document{ID: 4, Terms: []string{"go"}})
}

// TestUnregisterCoverPromotesSurvivor is the regression test for the
// covering-filter unregister fix: removing the cover's representative must
// promote a surviving covered filter and keep every remaining member
// matchable — no orphaned postings, no phantom matches of the removed
// filter.
func TestUnregisterCoverPromotesSurvivor(t *testing.T) {
	p := newEnginePair(t)
	sig := anyFilter(1, "alpha", "beta")
	p.register(t, anyFilter(1, "alpha", "beta"), []string{"alpha", "beta"})
	p.register(t, anyFilter(2, "alpha", "beta"), []string{"alpha", "beta"})
	p.register(t, anyFilter(3, "alpha", "beta"), []string{"alpha", "beta"})
	if rep, ok := p.agg.RepFor(sig); !ok || rep != 1 {
		t.Fatalf("RepFor = %v,%v, want f1 (first member is representative)", rep, ok)
	}

	// Unregister the covering filter itself.
	p.unregister(t, 1)
	rep, ok := p.agg.RepFor(sig)
	if !ok {
		t.Fatal("cover lost its representative: no survivor was promoted")
	}
	if rep != 2 && rep != 3 {
		t.Fatalf("promoted representative = %v, want a surviving member (f2 or f3)", rep)
	}
	if cs := p.agg.CoverStats(); cs.Covers != 1 || cs.CoveredFilters != 2 {
		t.Fatalf("CoverStats after promotion = %+v, want 1 cover / 2 members", cs)
	}
	doc := &model.Document{ID: 1, Terms: []string{"alpha"}}
	matched, _, err := p.agg.MatchTerm(doc, "alpha")
	if err != nil {
		t.Fatal(err)
	}
	ids := map[model.FilterID]bool{}
	for _, m := range matched {
		ids[m.ID] = true
	}
	if ids[1] {
		t.Fatal("phantom match: unregistered covering filter f1 still matches")
	}
	if !ids[2] || !ids[3] {
		t.Fatalf("orphaned postings: survivors not matchable, got %v", matched)
	}
	p.compareAll(t, doc)

	// Remove the survivors too: the cover empties and stops counting.
	p.unregister(t, 2)
	p.unregister(t, 3)
	if _, ok := p.agg.RepFor(sig); ok {
		t.Fatal("emptied cover still has a representative")
	}
	if cs := p.agg.CoverStats(); cs.Covers != 0 || cs.CoveredFilters != 0 {
		t.Fatalf("CoverStats after emptying = %+v, want 0/0", cs)
	}
	p.compareAll(t, doc)

	// Revive one member: the cover repopulates and the revived member
	// becomes representative.
	p.register(t, anyFilter(3, "alpha", "beta"), []string{"alpha", "beta"})
	if rep, ok := p.agg.RepFor(sig); !ok || rep != 3 {
		t.Fatalf("RepFor after revive = %v,%v, want f3", rep, ok)
	}
	p.compareAll(t, doc)
}

// TestCoverSplitMergeInterleavings walks scripted re-registration
// interleavings that move a filter between covers — split (same ID
// re-registered under a new signature), merge (back to the original),
// and multi-hop chains through three signatures with overlapping posting
// terms — comparing every matcher against the flat oracle at each step.
func TestCoverSplitMergeInterleavings(t *testing.T) {
	probes := []*model.Document{
		{ID: 1, Terms: []string{"a"}},
		{ID: 2, Terms: []string{"b"}},
		{ID: 3, Terms: []string{"c"}},
		{ID: 4, Terms: []string{"a", "b"}},
		{ID: 5, Terms: []string{"a", "b", "c"}},
	}
	check := func(t *testing.T, p *enginePair) {
		t.Helper()
		for _, d := range probes {
			p.compareAll(t, &model.Document{ID: d.ID, Terms: d.Terms})
		}
	}

	t.Run("split-then-merge", func(t *testing.T) {
		p := newEnginePair(t)
		p.register(t, anyFilter(1, "a", "b"), []string{"a", "b"})
		p.register(t, anyFilter(2, "a", "b"), []string{"a", "b"})
		check(t, p)
		// Split: f2 leaves for a new signature; posting term "a" overlaps.
		p.register(t, anyFilter(2, "a", "c"), []string{"a", "c"})
		check(t, p)
		if cs := p.agg.CoverStats(); cs.Covers != 2 {
			t.Fatalf("Covers after split = %d, want 2", cs.Covers)
		}
		// Merge: f2 returns to the original signature.
		p.register(t, anyFilter(2, "a", "b"), []string{"a", "b"})
		check(t, p)
	})

	t.Run("multi-hop-rehoming", func(t *testing.T) {
		p := newEnginePair(t)
		// f1 hops through three signatures, always posting under "a"; stale
		// bits from any earlier cover must be re-homed, not duplicated.
		p.register(t, anyFilter(1, "a"), []string{"a"})
		p.register(t, anyFilter(1, "a", "b"), []string{"a", "b"})
		check(t, p)
		p.register(t, anyFilter(1, "a", "c"), []string{"a", "c"})
		check(t, p)
		p.register(t, anyFilter(1, "a"), []string{"a"})
		check(t, p)
	})

	t.Run("unregister-then-new-signature", func(t *testing.T) {
		p := newEnginePair(t)
		p.register(t, allFilter(1, "a", "b"), []string{"a", "b"})
		p.register(t, allFilter(2, "a", "b"), []string{"a", "b"})
		p.unregister(t, 1)
		check(t, p)
		// Tombstoned f1 returns under a different signature with an
		// overlapping posting term: the old cover's stale bit must clear.
		p.register(t, anyFilter(1, "a", "c"), []string{"a", "c"})
		check(t, p)
	})

	t.Run("partial-posting-terms", func(t *testing.T) {
		p := newEnginePair(t)
		// Home nodes register only their responsible subset of terms; the
		// cover still spans the full signature.
		p.register(t, allFilter(1, "a", "b", "c"), []string{"a"})
		p.register(t, allFilter(2, "a", "b", "c"), []string{"b"})
		p.register(t, allFilter(3, "a", "b", "c"), []string{"a", "c"})
		check(t, p)
		if cs := p.agg.CoverStats(); cs.Covers != 1 {
			t.Fatalf("Covers = %d, want 1 (posting subset must not split the cover)", cs.Covers)
		}
		p.unregister(t, 3)
		check(t, p)
	})

	t.Run("drop-term-mid-cover", func(t *testing.T) {
		p := newEnginePair(t)
		p.register(t, anyFilter(1, "a", "b"), []string{"a", "b"})
		p.register(t, anyFilter(2, "a", "b"), []string{"a", "b"})
		p.dropTerm(t, "a")
		check(t, p)
		p.register(t, anyFilter(3, "a", "b"), []string{"a", "b"})
		check(t, p)
	})

	t.Run("ensure-registered-replay", func(t *testing.T) {
		p := newEnginePair(t)
		f := allFilter(7, "a", "b")
		// Replay the same migration batch three times: idempotent counters,
		// one cover member, equivalent matches.
		for i := 0; i < 3; i++ {
			p.ensure(t, f, []string{"a", "b"})
		}
		check(t, p)
		if cs := p.agg.CoverStats(); cs.CoveredFilters != 1 || cs.StoredEntries != 2 {
			t.Fatalf("CoverStats after replay = %+v, want 1 member / 2 entries", cs)
		}
		// Replay racing an unregister: the copy comes back, still exact.
		p.unregister(t, 7)
		p.ensure(t, f, []string{"a", "b"})
		check(t, p)
	})
}

// TestAggFlatOracleQuick is the random-walk half of the battery: a
// testing/quick property driving long random interleavings of register
// (fresh and re-register), unregister, EnsureRegistered replay, drop-term
// and observe into both engines with match comparison on random
// documents after every mutation batch.
func TestAggFlatOracleQuick(t *testing.T) {
	vocab := make([]string, 20)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("w%d", i)
	}
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := newEnginePair(t)
		pick := func(n int) []string {
			out := map[string]struct{}{}
			for len(out) < n {
				out[vocab[rng.Intn(len(vocab))]] = struct{}{}
			}
			terms := make([]string, 0, n)
			for w := range out {
				terms = append(terms, w)
			}
			return model.SortTerms(terms)
		}
		randFilter := func(id model.FilterID) model.Filter {
			f := model.Filter{
				ID:         id,
				Subscriber: fmt.Sprintf("s%d", rng.Intn(4)),
				Terms:      pick(1 + rng.Intn(3)),
			}
			switch rng.Intn(3) {
			case 0:
				f.Mode = model.MatchAny
			case 1:
				f.Mode = model.MatchAll
			default:
				f.Mode = model.MatchThreshold
				f.Threshold = 0.2 + 0.6*rng.Float64()
			}
			return f
		}
		var ids []model.FilterID
		nextID := model.FilterID(1)
		for step := 0; step < 150; step++ {
			switch op := rng.Intn(12); {
			case op < 4: // fresh register
				f := randFilter(nextID)
				nextID++
				terms := f.Terms
				if len(terms) > 1 && rng.Intn(2) == 0 {
					terms = terms[:1+rng.Intn(len(terms))]
				}
				p.register(t, f, terms)
				ids = append(ids, f.ID)
			case op < 6 && len(ids) > 0: // re-register an existing ID (cover split/merge)
				f := randFilter(ids[rng.Intn(len(ids))])
				p.register(t, f, f.Terms)
			case op < 8 && len(ids) > 0: // unregister
				p.unregister(t, ids[rng.Intn(len(ids))])
			case op == 8 && len(ids) > 0: // migration replay
				f := randFilter(ids[rng.Intn(len(ids))])
				p.ensure(t, f, f.Terms)
			case op == 9: // drop a term
				p.dropTerm(t, vocab[rng.Intn(len(vocab))])
			case op == 10: // idf statistics
				d := model.Document{ID: uint64(step), Terms: pick(1 + rng.Intn(5))}
				p.observe(&d)
			default: // match and compare
				d := model.Document{ID: uint64(step), Terms: pick(1 + rng.Intn(5))}
				p.compareAll(t, &d)
			}
		}
		p.compareAll(t, &model.Document{ID: 999, Terms: vocab})
		return !t.Failed()
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestAggRestartRecoversCovers exercises the recovery path: covers are
// rebuilt from stored definitions, defless posting entries land in the
// orphan cover (flat tombstone parity, NumPostings included), and a
// post-restart re-registration of an orphaned ID re-homes its bits.
func TestAggRestartRecoversCovers(t *testing.T) {
	dirA, dirF := t.TempDir(), t.TempDir()
	open := func(dir string, build func(*store.Store) (*Index, error)) (*Index, *store.Store) {
		t.Helper()
		s, err := store.Open(dir, store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		ix, err := build(s)
		if err != nil {
			t.Fatal(err)
		}
		return ix, s
	}
	agg, sa := open(dirA, New)
	flat, sf := open(dirF, NewFlat)
	p := &enginePair{agg: agg, flat: flat}
	for i := 1; i <= 20; i++ {
		p.register(t, anyFilter(model.FilterID(i), "x", fmt.Sprintf("t%d", i%4)), []string{"x", fmt.Sprintf("t%d", i%4)})
	}
	// Tombstones: unregister a third of the filters, postings stay.
	for i := 1; i <= 20; i += 3 {
		p.unregister(t, model.FilterID(i))
	}
	if err := sa.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := sf.FlushAll(); err != nil {
		t.Fatal(err)
	}

	agg2, _ := open(dirA, New)
	flat2, _ := open(dirF, NewFlat)
	p2 := &enginePair{agg: agg2, flat: flat2}
	if a, f := agg2.NumPostings(), flat2.NumPostings(); a != f {
		t.Fatalf("recovered NumPostings diverged: agg=%d flat=%d", a, f)
	}
	p2.compareAll(t, &model.Document{ID: 1, Terms: []string{"x"}})
	p2.compareAll(t, &model.Document{ID: 2, Terms: []string{"t1", "t2"}})

	// Re-register a tombstoned ID under a new signature with an
	// overlapping posting term: its orphan bit must re-home, not double.
	p2.register(t, allFilter(1, "x", "fresh"), []string{"x", "fresh"})
	p2.compareAll(t, &model.Document{ID: 3, Terms: []string{"x", "fresh"}})
	p2.compareAll(t, &model.Document{ID: 4, Terms: []string{"x"}})
}
