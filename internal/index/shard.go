package index

import (
	"sync"

	"github.com/movesys/move/internal/model"
)

// DefaultShards is the number of term shards and filter shards in an
// Index. It must be a power of two so shard selection is a mask, not a
// modulo. 32 shards keeps per-shard maps small at the paper's filter
// densities while giving concurrent registers/matches on different terms
// independent locks.
const DefaultShards = 32

const shardMask = DefaultShards - 1

// termShardFor hashes a term to its shard with FNV-1a. The low bits of
// FNV-1a are well distributed for short ASCII terms, which is exactly the
// key population here (tokenized words).
func termShardFor(term string) uint32 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(term); i++ {
		h ^= uint64(term[i])
		h *= prime64
	}
	return uint32(h) & shardMask
}

// filterShardFor hashes a filter ID to its shard with a Fibonacci
// multiply, which spreads the low bits of sequential IDs (the common
// allocation pattern) across shards.
func filterShardFor(id model.FilterID) uint32 {
	return uint32((uint64(id)*0x9E3779B97F4A7C15)>>56) & shardMask
}

// posting is one term's in-memory posting list. ids is the published
// snapshot: readers copy the slice header under the shard's read lock and
// then iterate without any lock. Appends happen in place under the shard's
// write lock; a writer only ever stores to indexes >= every published
// snapshot's length (or into a freshly grown backing array), so a snapshot
// taken before the append never observes the written element and the two
// accesses touch disjoint memory. seen makes the append-side dedup O(1),
// mirroring PostingStore.Get's first-insertion-wins ordering.
type posting struct {
	ids  []model.FilterID
	seen map[model.FilterID]struct{}
}

// termShard holds the posting lists whose terms hash to it.
type termShard struct {
	mu    sync.RWMutex
	lists map[string]*posting
}

// add appends id to term's posting list, creating the list on first use.
// Duplicate ids are ignored (posting lists are sets in insertion order).
func (s *termShard) add(term string, id model.FilterID) {
	s.mu.Lock()
	p := s.lists[term]
	if p == nil {
		p = &posting{seen: make(map[model.FilterID]struct{}, 4)}
		s.lists[term] = p
	}
	if _, dup := p.seen[id]; !dup {
		p.seen[id] = struct{}{}
		p.ids = append(p.ids, id)
	}
	s.mu.Unlock()
}

// addIfAbsent is add reporting whether id was newly inserted. The check
// and the append happen under one write-lock hold, so concurrent replays
// of the same (term, id) pair agree on exactly one inserter — the caller
// can count distinct posting entries without a separate read-then-write
// race window.
func (s *termShard) addIfAbsent(term string, id model.FilterID) bool {
	s.mu.Lock()
	p := s.lists[term]
	if p == nil {
		p = &posting{seen: make(map[model.FilterID]struct{}, 4)}
		s.lists[term] = p
	}
	_, dup := p.seen[id]
	if !dup {
		p.seen[id] = struct{}{}
		p.ids = append(p.ids, id)
	}
	s.mu.Unlock()
	return !dup
}

// snapshot returns the current posting list for term. The returned slice
// is an immutable snapshot: callers may iterate it freely but must not
// append to or mutate it.
func (s *termShard) snapshot(term string) []model.FilterID {
	s.mu.RLock()
	var ids []model.FilterID
	if p := s.lists[term]; p != nil {
		ids = p.ids
	}
	s.mu.RUnlock()
	return ids
}

// remove drops term's posting list entirely.
func (s *termShard) remove(term string) {
	s.mu.Lock()
	delete(s.lists, term)
	s.mu.Unlock()
}

// filterShard holds the filter definitions whose IDs hash to it.
type filterShard struct {
	mu      sync.RWMutex
	filters map[model.FilterID]model.Filter
}

// get returns the filter definition for id, if registered. The returned
// filter is an immutable snapshot sharing its Terms slice with the shard:
// put stores a private clone and nothing mutates Terms afterwards, so the
// match path hands it out of the package without cloning. Everyone —
// shard, matcher, caller — must treat Terms as read-only (DESIGN.md §11).
func (s *filterShard) get(id model.FilterID) (model.Filter, bool) {
	s.mu.RLock()
	f, ok := s.filters[id]
	s.mu.RUnlock()
	return f, ok
}

// put stores (or replaces) a filter definition.
func (s *filterShard) put(f model.Filter) {
	s.mu.Lock()
	s.filters[f.ID] = f
	s.mu.Unlock()
}

// del removes id's definition, reporting whether it was present.
func (s *filterShard) del(id model.FilterID) bool {
	s.mu.Lock()
	_, ok := s.filters[id]
	if ok {
		delete(s.filters, id)
	}
	s.mu.Unlock()
	return ok
}

// shardedState is the in-memory serving layer of an Index: every read the
// match path performs is answered here, so matches never touch the store
// (and never contend with its column-family mutex). Writes go through the
// shards and are mirrored to the store for durability.
type shardedState struct {
	terms   [DefaultShards]termShard
	filters [DefaultShards]filterShard
}

func newShardedState() *shardedState {
	st := &shardedState{}
	for i := range st.terms {
		st.terms[i].lists = make(map[string]*posting)
	}
	for i := range st.filters {
		st.filters[i].filters = make(map[model.FilterID]model.Filter)
	}
	return st
}

func (st *shardedState) termShard(term string) *termShard {
	return &st.terms[termShardFor(term)]
}

func (st *shardedState) filterShard(id model.FilterID) *filterShard {
	return &st.filters[filterShardFor(id)]
}
