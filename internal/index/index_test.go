package index

import (
	"reflect"
	"sort"
	"strconv"
	"testing"
	"testing/quick"

	"github.com/movesys/move/internal/model"
	"github.com/movesys/move/internal/store"
)

func newIndex(t testing.TB) *Index {
	t.Helper()
	s, err := store.Open("", store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := New(s)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

// registerAny registers an OR filter on all its terms' posting lists.
func registerAny(t testing.TB, ix *Index, id model.FilterID, terms ...string) {
	t.Helper()
	f := model.Filter{ID: id, Terms: terms, Mode: model.MatchAny}
	if err := ix.Register(f, terms); err != nil {
		t.Fatal(err)
	}
}

func matchedIDs(fs []model.Filter) []model.FilterID {
	ids := make([]model.FilterID, len(fs))
	for i, f := range fs {
		ids[i] = f.ID
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// TestPaperFigure1Scenario reproduces the example of Figure 1: six filters
// over terms A–E, a document {A, B, D}.
func TestPaperFigure1Scenario(t *testing.T) {
	ix := newIndex(t)
	registerAny(t, ix, 1, "A", "E")
	registerAny(t, ix, 2, "A", "B")
	registerAny(t, ix, 3, "A", "B")
	registerAny(t, ix, 4, "A", "C")
	registerAny(t, ix, 5, "A", "C", "E")
	registerAny(t, ix, 6, "B", "E")

	doc := &model.Document{ID: 1, Terms: []string{"A", "B", "D"}}

	// On the home node of A, only A's posting list is retrieved: f1..f5.
	fs, st, err := ix.MatchTerm(doc, "A")
	if err != nil {
		t.Fatal(err)
	}
	if got := matchedIDs(fs); !reflect.DeepEqual(got, []model.FilterID{1, 2, 3, 4, 5}) {
		t.Fatalf("match on A = %v, want f1..f5", got)
	}
	if st.PostingLists != 1 {
		t.Fatalf("MatchTerm touched %d posting lists, want exactly 1", st.PostingLists)
	}
	if st.Postings != 5 || st.Evaluated != 5 {
		t.Fatalf("stats = %+v, want 5 postings / 5 evaluated", st)
	}

	// Home node of B: f2, f3, f6.
	fs, _, err = ix.MatchTerm(doc, "B")
	if err != nil {
		t.Fatal(err)
	}
	if got := matchedIDs(fs); !reflect.DeepEqual(got, []model.FilterID{2, 3, 6}) {
		t.Fatalf("match on B = %v, want f2,f3,f6", got)
	}

	// Home node of D: no filters contain D.
	fs, st, err = ix.MatchTerm(doc, "D")
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 0 || st.Postings != 0 {
		t.Fatalf("match on D = %v (%+v), want none", fs, st)
	}
}

func TestMatchSIFTFindsAllAndUnionsLists(t *testing.T) {
	ix := newIndex(t)
	registerAny(t, ix, 1, "A", "E")
	registerAny(t, ix, 2, "A", "B")
	registerAny(t, ix, 6, "B", "E")
	registerAny(t, ix, 7, "Z")

	doc := &model.Document{ID: 1, Terms: []string{"A", "B", "D"}}
	fs, st, err := ix.MatchSIFT(doc)
	if err != nil {
		t.Fatal(err)
	}
	if got := matchedIDs(fs); !reflect.DeepEqual(got, []model.FilterID{1, 2, 6}) {
		t.Fatalf("SIFT match = %v, want f1,f2,f6", got)
	}
	// SIFT retrieves a posting list per document term with a non-empty
	// list (A and B; D's dictionary miss never touches the list store).
	if st.PostingLists != 2 {
		t.Fatalf("SIFT touched %d posting lists, want 2", st.PostingLists)
	}
	// f2 appears on both A's and B's lists but must be evaluated once.
	if st.Evaluated != 3 {
		t.Fatalf("SIFT evaluated %d filters, want 3 (dedup)", st.Evaluated)
	}
}

func TestMatchAllSemantics(t *testing.T) {
	ix := newIndex(t)
	conj := model.Filter{ID: 10, Terms: []string{"cloud", "security"}, Mode: model.MatchAll}
	if err := ix.Register(conj, conj.Terms); err != nil {
		t.Fatal(err)
	}

	full := &model.Document{ID: 1, Terms: []string{"cloud", "security", "extra"}}
	fs, _, err := ix.MatchTerm(full, "cloud")
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 1 {
		t.Fatalf("AND filter should match doc with both terms, got %v", fs)
	}

	partial := &model.Document{ID: 2, Terms: []string{"cloud", "other"}}
	fs, _, err = ix.MatchTerm(partial, "cloud")
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 0 {
		t.Fatalf("AND filter must not match partial doc, got %v", fs)
	}
}

func TestMatchThresholdSemantics(t *testing.T) {
	ix := newIndex(t)
	// Warm the corpus so idf values are meaningful.
	for i := 0; i < 50; i++ {
		ix.ObserveDocument(&model.Document{ID: uint64(i), Terms: []string{"noise" + strconv.Itoa(i), "common"}})
	}
	f := model.Filter{ID: 20, Terms: []string{"quantum", "computing"}, Mode: model.MatchThreshold, Threshold: 0.9}
	if err := ix.Register(f, f.Terms); err != nil {
		t.Fatal(err)
	}

	both := &model.Document{ID: 100, Terms: []string{"quantum", "computing", "common"}}
	fs, _, err := ix.MatchTerm(both, "quantum")
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 1 {
		t.Fatalf("threshold filter should match full coverage, got %v", fs)
	}

	one := &model.Document{ID: 101, Terms: []string{"quantum", "common"}}
	fs, _, err = ix.MatchTerm(one, "quantum")
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 0 {
		t.Fatalf("threshold 0.9 must reject half coverage, got %v", fs)
	}
}

func TestUnregisterDropsCandidateLazily(t *testing.T) {
	ix := newIndex(t)
	registerAny(t, ix, 1, "A")
	registerAny(t, ix, 2, "A")
	if err := ix.Unregister(1); err != nil {
		t.Fatal(err)
	}
	doc := &model.Document{ID: 1, Terms: []string{"A"}}
	fs, st, err := ix.MatchTerm(doc, "A")
	if err != nil {
		t.Fatal(err)
	}
	if got := matchedIDs(fs); !reflect.DeepEqual(got, []model.FilterID{2}) {
		t.Fatalf("match = %v, want only f2", got)
	}
	// The stale posting is scanned but not evaluated.
	if st.Postings != 2 || st.Evaluated != 1 {
		t.Fatalf("stats = %+v, want 2 postings / 1 evaluated", st)
	}
	if ix.NumFilters() != 1 {
		t.Fatalf("NumFilters = %d, want 1", ix.NumFilters())
	}
}

func TestRegisterPartialPostingTerms(t *testing.T) {
	// A home node of term A registers a filter {A,B} but builds only A's
	// posting list (the §III.B key point).
	ix := newIndex(t)
	f := model.Filter{ID: 1, Terms: []string{"A", "B"}, Mode: model.MatchAny}
	if err := ix.Register(f, []string{"A"}); err != nil {
		t.Fatal(err)
	}
	nA, err := ix.PostingLen("A")
	if err != nil || nA != 1 {
		t.Fatalf("PostingLen(A) = %d, %v", nA, err)
	}
	nB, err := ix.PostingLen("B")
	if err != nil || nB != 0 {
		t.Fatalf("PostingLen(B) = %d, %v; B's list belongs to B's home node", nB, err)
	}
	if ix.NumPostings() != 1 {
		t.Fatalf("NumPostings = %d, want 1", ix.NumPostings())
	}
}

func TestRegisterInvalidFilter(t *testing.T) {
	ix := newIndex(t)
	if err := ix.Register(model.Filter{ID: 1, Mode: model.MatchAny}, nil); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestDropTerm(t *testing.T) {
	ix := newIndex(t)
	registerAny(t, ix, 1, "A")
	if err := ix.DropTerm("A"); err != nil {
		t.Fatal(err)
	}
	doc := &model.Document{ID: 1, Terms: []string{"A"}}
	fs, _, err := ix.MatchTerm(doc, "A")
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 0 {
		t.Fatalf("match after DropTerm = %v, want none", fs)
	}
}

func TestTermsAndEachFilter(t *testing.T) {
	ix := newIndex(t)
	registerAny(t, ix, 1, "A", "B")
	registerAny(t, ix, 2, "B")
	terms, err := ix.Terms()
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(terms)
	if !reflect.DeepEqual(terms, []string{"A", "B"}) {
		t.Fatalf("Terms = %v", terms)
	}
	count := 0
	if err := ix.EachFilter(func(model.Filter) bool {
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("EachFilter visited %d, want 2", count)
	}
	f, ok, err := ix.GetFilter(2)
	if err != nil || !ok || f.ID != 2 {
		t.Fatalf("GetFilter = %+v, %v, %v", f, ok, err)
	}
}

// TestMatchEquivalenceProperty: for OR filters registered on all their
// terms, the union of MatchTerm over every document term equals MatchSIFT.
func TestMatchEquivalenceProperty(t *testing.T) {
	prop := func(filterSeeds [][3]uint8, docSeed []uint8) bool {
		if len(docSeed) == 0 {
			return true
		}
		term := func(b uint8) string { return "t" + strconv.Itoa(int(b%25)) }
		ix := newIndex(t)
		for i, fs := range filterSeeds {
			terms := model.SortTerms([]string{term(fs[0]), term(fs[1]), term(fs[2])})
			f := model.Filter{ID: model.FilterID(i + 1), Terms: terms, Mode: model.MatchAny}
			if err := ix.Register(f, terms); err != nil {
				return false
			}
		}
		var docTerms []string
		for _, b := range docSeed {
			docTerms = append(docTerms, term(b))
		}
		doc := &model.Document{ID: 1, Terms: model.SortTerms(docTerms)}

		sift, _, err := ix.MatchSIFT(doc)
		if err != nil {
			return false
		}
		union := make(map[model.FilterID]struct{})
		for _, term := range doc.Terms {
			fs, _, err := ix.MatchTerm(doc, term)
			if err != nil {
				return false
			}
			for _, f := range fs {
				union[f.ID] = struct{}{}
			}
		}
		if len(union) != len(sift) {
			return false
		}
		for _, f := range sift {
			if _, ok := union[f.ID]; !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMatchTerm(b *testing.B) {
	ix := newIndex(b)
	for i := 0; i < 10000; i++ {
		f := model.Filter{ID: model.FilterID(i + 1), Terms: []string{"hot", "x" + strconv.Itoa(i)}, Mode: model.MatchAny}
		if err := ix.Register(f, f.Terms); err != nil {
			b.Fatal(err)
		}
	}
	doc := &model.Document{ID: 1, Terms: []string{"hot", "cold"}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ix.MatchTerm(doc, "hot"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatchSIFTWideDoc(b *testing.B) {
	ix := newIndex(b)
	for i := 0; i < 10000; i++ {
		f := model.Filter{ID: model.FilterID(i + 1), Terms: []string{"t" + strconv.Itoa(i%500)}, Mode: model.MatchAny}
		if err := ix.Register(f, f.Terms); err != nil {
			b.Fatal(err)
		}
	}
	terms := make([]string, 64)
	for i := range terms {
		terms[i] = "t" + strconv.Itoa(i*7)
	}
	doc := &model.Document{ID: 1, Terms: terms}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ix.MatchSIFT(doc); err != nil {
			b.Fatal(err)
		}
	}
}
