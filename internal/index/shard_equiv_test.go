package index

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"github.com/movesys/move/internal/model"
	"github.com/movesys/move/internal/store"
	"github.com/movesys/move/internal/vsm"
)

// refIndex is the pre-sharding reference implementation: one RWMutex over
// plain maps, with the exact match semantics of Index (insertion-ordered
// deduplicated posting lists, lazy tombstones, the same evaluate logic).
// The equivalence property below holds the sharded Index to byte-identical
// results against it.
type refIndex struct {
	mu       sync.RWMutex
	filters  map[model.FilterID]model.Filter
	postings map[string][]model.FilterID
	corpus   *vsm.Corpus
}

func newRefIndex() *refIndex {
	return &refIndex{
		filters:  make(map[model.FilterID]model.Filter),
		postings: make(map[string][]model.FilterID),
		corpus:   vsm.NewCorpus(),
	}
}

func (r *refIndex) register(f model.Filter, postingTerms []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.filters[f.ID] = f.Clone()
	for _, t := range postingTerms {
		dup := false
		for _, id := range r.postings[t] {
			if id == f.ID {
				dup = true
				break
			}
		}
		if !dup {
			r.postings[t] = append(r.postings[t], f.ID)
		}
	}
}

func (r *refIndex) unregister(id model.FilterID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.filters, id)
}

func (r *refIndex) dropTerm(term string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.postings, term)
}

func (r *refIndex) evaluate(f *model.Filter, docSet map[string]struct{}) bool {
	switch f.Mode {
	case model.MatchAny:
		for _, t := range f.Terms {
			if _, ok := docSet[t]; ok {
				return true
			}
		}
		return false
	case model.MatchAll:
		for _, t := range f.Terms {
			if _, ok := docSet[t]; !ok {
				return false
			}
		}
		return true
	case model.MatchThreshold:
		return r.corpus.ContainmentScore(docSet, f.Terms) >= f.Threshold
	default:
		return false
	}
}

func (r *refIndex) matchTerm(d *model.Document, term string) ([]model.Filter, MatchStats) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var st MatchStats
	ids := r.postings[term]
	if len(ids) > 0 {
		st.PostingLists = 1
	}
	st.Postings = len(ids)
	docSet := d.TermSet()
	var matched []model.Filter
	for _, id := range ids {
		f, ok := r.filters[id]
		if !ok {
			continue
		}
		st.Evaluated++
		if r.evaluate(&f, docSet) {
			matched = append(matched, f)
		}
	}
	return matched, st
}

func (r *refIndex) matchSIFT(d *model.Document) ([]model.Filter, MatchStats) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var st MatchStats
	docSet := d.TermSet()
	seen := make(map[model.FilterID]struct{})
	var matched []model.Filter
	for _, term := range d.Terms {
		ids := r.postings[term]
		if len(ids) > 0 {
			st.PostingLists++
		}
		st.Postings += len(ids)
		for _, id := range ids {
			if _, dup := seen[id]; dup {
				continue
			}
			seen[id] = struct{}{}
			f, ok := r.filters[id]
			if !ok {
				continue
			}
			st.Evaluated++
			if r.evaluate(&f, docSet) {
				matched = append(matched, f)
			}
		}
	}
	return matched, st
}

// encodeMatches flattens a match result to bytes, so equivalence is
// byte-level: same filters, same field contents, same stats. Results are
// compared as sorted sets: the flat engine emits posting-insertion order
// while the aggregated engine emits cover/slot order, and the system
// nowhere depends on match-result order (delivery routing keys on filter
// ID).
func encodeMatches(matched []model.Filter, st MatchStats) []byte {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "lists=%d postings=%d eval=%d\n", st.PostingLists, st.Postings, st.Evaluated)
	byID := append([]model.Filter(nil), matched...)
	sort.Slice(byID, func(i, j int) bool { return byID[i].ID < byID[j].ID })
	for i := range byID {
		buf.Write(byID[i].Encode())
	}
	return buf.Bytes()
}

// TestShardedMatchesReferenceByteIdentical drives random workloads
// (register / unregister / drop-term / observe, across all three match
// modes) into the sharded Index — both the aggregated production engine
// and the flat oracle engine — and the single-lock reference, then
// compares MatchTerm and MatchSIFT byte-for-byte on random documents.
func TestShardedMatchesReferenceByteIdentical(t *testing.T) {
	for name, build := range map[string]func(*store.Store) (*Index, error){
		"aggregated": New,
		"flat":       NewFlat,
	} {
		t.Run(name, func(t *testing.T) {
			testShardedMatchesReference(t, build)
		})
	}
}

func testShardedMatchesReference(t *testing.T, build func(*store.Store) (*Index, error)) {
	vocab := make([]string, 24)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("w%d", i)
	}
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st, err := store.Open("", store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		ix, err := build(st)
		if err != nil {
			t.Fatal(err)
		}
		ref := newRefIndex()

		pick := func(n int) []string {
			seen := map[string]struct{}{}
			var out []string
			for len(out) < n {
				w := vocab[rng.Intn(len(vocab))]
				if _, dup := seen[w]; dup {
					continue
				}
				seen[w] = struct{}{}
				out = append(out, w)
			}
			return model.SortTerms(out)
		}
		var registered []model.FilterID
		nextID := model.FilterID(1)

		for step := 0; step < 120; step++ {
			switch op := rng.Intn(10); {
			case op < 5: // register
				f := model.Filter{
					ID:         nextID,
					Subscriber: fmt.Sprintf("s%d", rng.Intn(5)),
					Terms:      pick(1 + rng.Intn(3)),
				}
				nextID++
				switch rng.Intn(3) {
				case 0:
					f.Mode = model.MatchAny
				case 1:
					f.Mode = model.MatchAll
				default:
					f.Mode = model.MatchThreshold
					f.Threshold = 0.2 + 0.6*rng.Float64()
				}
				postingTerms := f.Terms
				if len(f.Terms) > 1 && rng.Intn(2) == 0 {
					postingTerms = f.Terms[:1+rng.Intn(len(f.Terms))]
				}
				if err := ix.Register(f, postingTerms); err != nil {
					t.Fatalf("seed %d step %d: register: %v", seed, step, err)
				}
				ref.register(f, postingTerms)
				registered = append(registered, f.ID)
			case op < 6 && len(registered) > 0: // unregister
				id := registered[rng.Intn(len(registered))]
				if err := ix.Unregister(id); err != nil {
					t.Fatalf("seed %d step %d: unregister: %v", seed, step, err)
				}
				ref.unregister(id)
			case op == 6: // drop a term's posting list
				term := vocab[rng.Intn(len(vocab))]
				if err := ix.DropTerm(term); err != nil {
					t.Fatalf("seed %d step %d: drop term: %v", seed, step, err)
				}
				ref.dropTerm(term)
			case op == 7: // feed idf statistics (threshold-mode inputs)
				doc := model.Document{ID: uint64(step), Terms: pick(1 + rng.Intn(5))}
				ix.ObserveDocument(&doc)
				ref.corpus.AddDocument(doc.Terms)
			default: // match and compare
				doc := model.Document{ID: uint64(step), Terms: pick(1 + rng.Intn(5))}
				term := doc.Terms[rng.Intn(len(doc.Terms))]
				gotM, gotSt, err := ix.MatchTerm(&doc, term)
				if err != nil {
					t.Fatalf("seed %d step %d: match term: %v", seed, step, err)
				}
				refM, refSt := ref.matchTerm(&doc, term)
				if !bytes.Equal(encodeMatches(gotM, gotSt), encodeMatches(refM, refSt)) {
					t.Logf("seed %d step %d: MatchTerm(%v, %q) diverged:\n sharded: %v %+v\n ref:     %v %+v",
						seed, step, doc.Terms, term, gotM, gotSt, refM, refSt)
					return false
				}
				gotM, gotSt, err = ix.MatchSIFT(&doc)
				if err != nil {
					t.Fatalf("seed %d step %d: match sift: %v", seed, step, err)
				}
				refM, refSt = ref.matchSIFT(&doc)
				if !bytes.Equal(encodeMatches(gotM, gotSt), encodeMatches(refM, refSt)) {
					t.Logf("seed %d step %d: MatchSIFT(%v) diverged:\n sharded: %v %+v\n ref:     %v %+v",
						seed, step, doc.Terms, gotM, gotSt, refM, refSt)
					return false
				}
			}
		}
		// Counter parity with the reference's live state.
		if ix.NumFilters() != len(ref.filters) {
			t.Logf("seed %d: NumFilters = %d, reference has %d", seed, ix.NumFilters(), len(ref.filters))
			return false
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestShardedIndexConcurrentMutationsAndMatches hammers one Index from
// concurrent registrars, unregistrars, and matchers. Run under -race this
// is the shard-layout safety net: snapshot reads must never tear, and the
// final state must reflect every registration that wasn't removed.
func TestShardedIndexConcurrentMutationsAndMatches(t *testing.T) {
	st, err := store.Open("", store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := New(st)
	if err != nil {
		t.Fatal(err)
	}
	const (
		writers   = 4
		matchers  = 4
		perWriter = 150
	)
	terms := make([]string, 16)
	for i := range terms {
		terms[i] = fmt.Sprintf("w%d", i)
	}
	var writerWg, matcherWg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		writerWg.Add(1)
		go func(w int) {
			defer writerWg.Done()
			rng := rand.New(rand.NewSource(int64(w + 1)))
			for i := 0; i < perWriter; i++ {
				id := model.FilterID(w*perWriter + i + 1)
				term := terms[rng.Intn(len(terms))]
				f := model.Filter{ID: id, Subscriber: "s", Terms: []string{term}, Mode: model.MatchAny}
				if err := ix.Register(f, f.Terms); err != nil {
					t.Errorf("register %v: %v", id, err)
					return
				}
				if rng.Intn(4) == 0 {
					if err := ix.Unregister(id); err != nil {
						t.Errorf("unregister %v: %v", id, err)
						return
					}
					// Re-register under the same ID: exercises the posting
					// dedup path (the ID is already on the term's list).
					if err := ix.Register(f, f.Terms); err != nil {
						t.Errorf("re-register %v: %v", id, err)
						return
					}
				}
			}
		}(w)
	}
	for m := 0; m < matchers; m++ {
		matcherWg.Add(1)
		go func(m int) {
			defer matcherWg.Done()
			rng := rand.New(rand.NewSource(int64(100 + m)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				doc := model.Document{ID: 1, Terms: []string{terms[rng.Intn(len(terms))], terms[rng.Intn(len(terms))]}}
				doc.Terms = model.SortTerms(doc.Terms)
				if _, _, err := ix.MatchTerm(&doc, doc.Terms[0]); err != nil {
					t.Errorf("match term: %v", err)
					return
				}
				if _, _, err := ix.MatchSIFT(&doc); err != nil {
					t.Errorf("match sift: %v", err)
					return
				}
			}
		}(m)
	}
	writerWg.Wait()
	close(stop)
	matcherWg.Wait()

	if got, want := ix.NumFilters(), writers*perWriter; got != want {
		t.Fatalf("NumFilters after quiesce = %d, want %d", got, want)
	}
	// Every registered filter must be matchable through its term.
	total := 0
	for _, term := range terms {
		doc := model.Document{ID: 99, Terms: []string{term}}
		matched, _, err := ix.MatchTerm(&doc, term)
		if err != nil {
			t.Fatal(err)
		}
		total += len(matched)
	}
	if total != writers*perWriter {
		t.Fatalf("matchable filters = %d, want %d", total, writers*perWriter)
	}
}
