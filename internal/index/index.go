// Package index implements a node's local filter index and the two
// centralized matching algorithms the paper compares:
//
//   - MatchTerm — the distributed-inverted-list matcher of §III.B: on the
//     home node of term t, retrieve only t's posting list, even though the
//     stored filters contain other terms. Used by both IL and MOVE.
//   - MatchSIFT — the classic SIFT matcher [25] used by the RS baseline:
//     retrieve the posting lists of all |d| document terms and evaluate
//     every referred filter.
//
// Both report MatchStats (posting lists touched, postings scanned, filters
// evaluated) so the experiment harness can charge the §IV latency model's
// y_p cost exactly where the paper says it accrues: in local (disk) reads
// of posting lists.
//
// The index is sharded: posting lists and filter definitions live in
// power-of-two in-memory shards with per-shard locks (see shard.go), so
// concurrent registers, unregisters, and matches on different terms do not
// contend. The match path is served entirely from the shards via snapshot
// reads; the store is a write-through durability layer that is only read
// again at startup, when the shards are rebuilt from it.
package index

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/movesys/move/internal/metrics"
	"github.com/movesys/move/internal/model"
	"github.com/movesys/move/internal/store"
	"github.com/movesys/move/internal/vsm"
)

// Index is one node's filter index: full filter definitions plus posting
// lists for the terms this node is responsible for.
type Index struct {
	filters  *store.FilterStore
	postings *store.PostingStore
	corpus   *vsm.Corpus

	// state is the sharded in-memory serving layer; every match reads from
	// it and never touches the store.
	state *shardedState

	// agg is the aggregated (covering) engine: posting lists compressed to
	// one bitset entry per predicate signature (agg.go). Non-nil for
	// indexes built by New — the production configuration — and nil for
	// NewFlat, which serves postings one entry per filter and acts as the
	// in-tree correctness oracle. Filter definitions live in state's
	// filter shards either way.
	agg *aggState

	// Optional per-stage latency instrumentation (§IV cost model: the
	// posting-list read is the "disk seek" y_seek, the evaluation loop is
	// the per-posting scan y_p). Nil histograms record nothing.
	postingReadH *metrics.Histogram
	evalH        *metrics.Histogram

	numFilters  atomic.Int64
	numPostings atomic.Int64
}

// Instrument routes the index's per-stage latencies into reg:
// index.posting.read (one observation per posting-list retrieval) and
// index.eval (one observation per match call, covering the whole candidate
// evaluation loop).
func (ix *Index) Instrument(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	ix.postingReadH = reg.Histogram("index.posting.read")
	ix.evalH = reg.Histogram("index.eval")
}

// New builds an index over a node-local store, serving postings from the
// aggregated (covering) engine: filters sharing a predicate signature are
// grouped under one cover and stored as compressed bitset posting entries
// (agg.go, DESIGN.md §15). When the store was opened from a data
// directory, the in-memory shards and counters are rebuilt from the
// recovered filters and posting lists, so a restarted node resumes
// serving matches with its full pre-crash state.
func New(s *store.Store) (*Index, error) {
	return open(s, true)
}

// NewFlat builds an index serving postings from the flat per-filter
// engine — one posting entry per (term, filter) pair. It is the
// correctness oracle the equivalence battery compares the aggregated
// engine against; production nodes use New.
func NewFlat(s *store.Store) (*Index, error) {
	return open(s, false)
}

func open(s *store.Store, aggregated bool) (*Index, error) {
	fs, err := store.NewFilterStore(s)
	if err != nil {
		return nil, fmt.Errorf("index: open filter store: %w", err)
	}
	ps, err := store.NewPostingStore(s)
	if err != nil {
		return nil, fmt.Errorf("index: open posting store: %w", err)
	}
	ix := &Index{
		filters:  fs,
		postings: ps,
		corpus:   vsm.NewCorpus(),
		state:    newShardedState(),
	}
	if aggregated {
		ix.agg = newAggState()
	}
	if err := ix.loadFromStore(); err != nil {
		return nil, fmt.Errorf("index: load from store: %w", err)
	}
	return ix, nil
}

// Aggregated reports whether this index serves postings from the
// aggregated covering engine.
func (ix *Index) Aggregated() bool { return ix.agg != nil }

// CoverStats summarizes the aggregated engine's compression state (O(1)
// atomic reads). Zero value on a flat index.
func (ix *Index) CoverStats() CoverStats {
	if ix.agg == nil {
		return CoverStats{}
	}
	a := ix.agg
	st := CoverStats{
		Covers:          int(a.coversLive.Load()),
		CoveredFilters:  int(a.membersLive.Load()),
		StoredEntries:   int(a.storedEntries.Load()),
		LogicalPostings: int(ix.numPostings.Load()),
	}
	if saved := st.LogicalPostings - st.StoredEntries; saved > 0 {
		st.PostingsSaved = saved
	}
	if st.StoredEntries > 0 {
		st.ExpansionFanoutMilli = st.LogicalPostings * 1000 / st.StoredEntries
	}
	return st
}

// loadFromStore rebuilds the sharded serving layer and counters after a
// restart. Posting lists come back deduplicated (PostingStore.Get merges),
// so the recovered numPostings counts distinct entries even if the live
// counter had drifted past that before the crash.
func (ix *Index) loadFromStore() error {
	if ix.agg != nil {
		return ix.aggLoad()
	}
	count := 0
	err := ix.filters.Each(func(f model.Filter) bool {
		ix.state.filterShard(f.ID).put(f)
		count++
		return true
	})
	if err != nil {
		return err
	}
	ix.numFilters.Store(int64(count))
	terms, err := ix.postings.Terms()
	if err != nil {
		return err
	}
	total := 0
	for _, t := range terms {
		ids, err := ix.postings.Get(t)
		if err != nil {
			return err
		}
		sh := ix.state.termShard(t)
		for _, id := range ids {
			sh.add(t, id)
		}
		total += len(ids)
	}
	ix.numPostings.Store(int64(total))
	return nil
}

// Register stores filter f and adds it to the posting lists of
// postingTerms. On a home node postingTerms is the single responsible term
// (or the node's responsible subset of f's terms); the RS baseline passes
// all of f's terms. The store write happens first, so the in-memory shards
// never serve a filter the durability layer doesn't have.
//
// The Clone below is the system's single copy point for filter terms: the
// shard's copy is immutable from here on, which is what lets the match
// path return filters without cloning them back out (DESIGN.md §11).
func (ix *Index) Register(f model.Filter, postingTerms []string) error {
	if ix.agg != nil {
		return ix.aggRegister(f, postingTerms)
	}
	if err := f.Validate(); err != nil {
		return err
	}
	if err := ix.filters.Put(f); err != nil {
		return err
	}
	for _, t := range postingTerms {
		if err := ix.postings.Add(t, f.ID); err != nil {
			return err
		}
	}
	ix.state.filterShard(f.ID).put(f.Clone())
	for _, t := range postingTerms {
		ix.state.termShard(t).add(t, f.ID)
	}
	ix.numFilters.Add(1)
	ix.numPostings.Add(int64(len(postingTerms)))
	return nil
}

// EnsureRegistered is Register made idempotent for migration replay: a
// duplicated or retried MigrateReq batch may deliver the same (filter,
// posting terms) pair any number of times, and the counters must still
// count distinct state. created reports whether this call stored the
// filter definition (false when a copy already existed — pre-existing
// copies belong to an older placement or the home itself and must survive
// an abort of the current epoch).
//
// Unlike Register, the posting-shard insert runs before the store write:
// addIfAbsent's single write-lock hold is what arbitrates concurrent
// replays, so it must decide first and the store add follows only for the
// winner. A crash between the two loses only in-memory state, which the
// next replay of the same batch restores.
func (ix *Index) EnsureRegistered(f model.Filter, postingTerms []string) (bool, error) {
	if ix.agg != nil {
		return ix.aggEnsureRegistered(f, postingTerms)
	}
	if err := f.Validate(); err != nil {
		return false, err
	}
	created := false
	sh := ix.state.filterShard(f.ID)
	sh.mu.Lock()
	if _, ok := sh.filters[f.ID]; !ok {
		// Store write before the shard publish, under the shard lock —
		// Unregister's locking mirrored — so concurrent replays agree on
		// exactly one creator and the layers never disagree.
		if err := ix.filters.Put(f); err != nil {
			sh.mu.Unlock()
			return false, err
		}
		sh.filters[f.ID] = f.Clone()
		created = true
	}
	sh.mu.Unlock()
	if created {
		ix.numFilters.Add(1)
	}
	for _, t := range postingTerms {
		if ix.state.termShard(t).addIfAbsent(t, f.ID) {
			ix.numPostings.Add(1)
			if err := ix.postings.Add(t, f.ID); err != nil {
				return created, err
			}
		}
	}
	return created, nil
}

// Unregister removes a filter definition if present (no-op otherwise, so
// cluster-wide broadcasts are safe). Posting entries are left to be
// filtered lazily on match (a standard tombstone-style design: posting
// lists are append-only; a missing filter definition drops the candidate).
func (ix *Index) Unregister(id model.FilterID) error {
	if ix.agg != nil {
		return ix.aggUnregister(id)
	}
	sh := ix.state.filterShard(id)
	sh.mu.Lock()
	_, present := sh.filters[id]
	if !present {
		sh.mu.Unlock()
		return nil
	}
	// Delete from the store while holding the shard lock so a concurrent
	// Register of the same ID cannot interleave between the two layers and
	// leave them disagreeing.
	if err := ix.filters.Delete(id); err != nil {
		sh.mu.Unlock()
		return err
	}
	delete(sh.filters, id)
	sh.mu.Unlock()
	ix.numFilters.Add(-1)
	return nil
}

// ObserveDocument feeds corpus statistics for idf scoring. Called once per
// document arriving at a node.
func (ix *Index) ObserveDocument(d *model.Document) {
	ix.corpus.AddDocument(d.Terms)
}

// Corpus exposes the idf statistics (read-only use).
func (ix *Index) Corpus() *vsm.Corpus { return ix.corpus }

// MatchStats counts the work one match performed; the units the §IV cost
// model charges.
type MatchStats struct {
	// PostingLists is the number of posting lists retrieved ("disk seeks").
	PostingLists int
	// Postings is the total number of posting entries scanned.
	Postings int
	// Evaluated is the number of distinct filters evaluated against the
	// document.
	Evaluated int
}

// Add accumulates other into s.
func (s *MatchStats) Add(other MatchStats) {
	s.PostingLists += other.PostingLists
	s.Postings += other.Postings
	s.Evaluated += other.Evaluated
}

// MatchTerm finds the filters matching d among those on term's posting
// list only (§III.B). The caller guarantees term ∈ d (the forwarding
// engine only routes documents to home nodes of their own terms). The
// posting list is read as a lock-free snapshot, so matches on different
// terms — and matches racing registers of other filters — never contend.
//
// Returned filters are immutable shard snapshots: callers may keep them
// but must not mutate Terms (see DESIGN.md §11). Excluding the matched-
// results slice, a call on a warm index performs zero heap allocations —
// the document view is memoized and filters are returned without cloning.
func (ix *Index) MatchTerm(d *model.Document, term string) ([]model.Filter, MatchStats, error) {
	if ix.agg != nil {
		return ix.aggMatchTerm(d, term)
	}
	var st MatchStats
	readTm := ix.postingReadH.Start()
	ids := ix.state.termShard(term).snapshot(term)
	readTm.Stop()
	// Only non-empty lists count as retrievals: a miss is answered by the
	// in-memory term dictionary and never touches the list store.
	if len(ids) > 0 {
		st.PostingLists = 1
	}
	st.Postings = len(ids)
	view := d.View()
	evalTm := ix.evalH.Start()
	defer evalTm.Stop()
	// Lazily allocated: the no-match case — most posting scans, once the
	// Bloom gate has done its job — returns nil without touching the heap.
	// When something does match, size for the whole list at once: posting
	// entries are filters registered under this term, so on a routed
	// document most of them match and append-doubling would pay ~2x the
	// bytes for the same result.
	var matched []model.Filter
	for _, id := range ids {
		f, ok := ix.state.filterShard(id).get(id)
		if !ok {
			continue // unregistered; lazy posting cleanup
		}
		st.Evaluated++
		if ix.evaluate(&f, view) {
			if matched == nil {
				matched = make([]model.Filter, 0, len(ids))
			}
			matched = append(matched, f)
		}
	}
	return matched, st, nil
}

// MatchTerms finds the filters matching d among those on the posting lists
// of terms — the multi-term counterpart of MatchTerm that serves one
// coalesced msgPublishMulti frame (every term of the document this node is
// responsible for) in a single pass over the sharded index. Each term's
// posting list is read once, in term order, and a filter referenced by
// several of the lists is evaluated once, so the result is the per-term
// union with duplicates removed while the PostingLists and Postings
// accounting stays exactly the sum of the equivalent per-term MatchTerm
// calls (the §IV cost model charges list retrievals and entry scans, which
// coalescing does not change — only the RPCs around them).
//
// Returned filters are immutable shard snapshots; callers must not mutate
// Terms (DESIGN.md §11).
func (ix *Index) MatchTerms(d *model.Document, terms []string) ([]model.Filter, MatchStats, error) {
	if ix.agg != nil {
		return ix.aggMatchTerms(d, terms)
	}
	if len(terms) == 1 {
		// Single-term frames keep MatchTerm's lazy exact-size allocation.
		return ix.MatchTerm(d, terms[0])
	}
	var st MatchStats
	view := d.View()
	seen := seenPool.Get().(map[model.FilterID]struct{})
	defer func() {
		clear(seen)
		seenPool.Put(seen)
	}()
	var matched []model.Filter
	evalTm := ix.evalH.Start()
	defer evalTm.Stop()
	for _, term := range terms {
		readTm := ix.postingReadH.Start()
		ids := ix.state.termShard(term).snapshot(term)
		readTm.Stop()
		if len(ids) > 0 {
			st.PostingLists++
		}
		st.Postings += len(ids)
		for _, id := range ids {
			if _, dup := seen[id]; dup {
				continue
			}
			seen[id] = struct{}{}
			f, ok := ix.state.filterShard(id).get(id)
			if !ok {
				continue // unregistered; lazy posting cleanup
			}
			st.Evaluated++
			if ix.evaluate(&f, view) {
				matched = append(matched, f)
			}
		}
	}
	return matched, st, nil
}

// seenPool recycles MatchSIFT's per-call dedup map. Maps are returned
// cleared; Go retains their bucket storage, so steady-state SIFT matching
// stops paying a map grow per document.
var seenPool = sync.Pool{
	New: func() any { return make(map[model.FilterID]struct{}, 64) },
}

// MatchSIFT finds the filters matching d by retrieving the posting lists of
// every document term — the centralized SIFT algorithm the RS baseline
// runs on each flooded node. Returned filters are immutable shard
// snapshots; callers must not mutate Terms (DESIGN.md §11).
func (ix *Index) MatchSIFT(d *model.Document) ([]model.Filter, MatchStats, error) {
	if ix.agg != nil {
		return ix.aggMatchSIFT(d)
	}
	var st MatchStats
	view := d.View()
	seen := seenPool.Get().(map[model.FilterID]struct{})
	defer func() {
		clear(seen)
		seenPool.Put(seen)
	}()
	var matched []model.Filter
	evalTm := ix.evalH.Start()
	defer evalTm.Stop()
	for _, term := range d.Terms {
		readTm := ix.postingReadH.Start()
		ids := ix.state.termShard(term).snapshot(term)
		readTm.Stop()
		// SIFT retrieves the posting list of every document term with local
		// postings; misses are answered by the in-memory dictionary. The
		// per-node retrieval count is what makes blind flooding expensive
		// (§I): every node pays it for every document.
		if len(ids) > 0 {
			st.PostingLists++
		}
		st.Postings += len(ids)
		for _, id := range ids {
			if _, dup := seen[id]; dup {
				continue
			}
			seen[id] = struct{}{}
			f, ok := ix.state.filterShard(id).get(id)
			if !ok {
				continue
			}
			st.Evaluated++
			if ix.evaluate(&f, view) {
				matched = append(matched, f)
			}
		}
	}
	return matched, st, nil
}

// evaluate applies the filter's matching semantics against the memoized
// document view. Filters are short (2–3 terms, §VI.A), so membership
// probes dominate: the view answers them map-free for short documents and
// from its prebuilt set for wide ones, never allocating either way.
func (ix *Index) evaluate(f *model.Filter, view *model.DocView) bool {
	switch f.Mode {
	case model.MatchAny:
		for _, t := range f.Terms {
			if view.Contains(t) {
				return true
			}
		}
		return false
	case model.MatchAll:
		for _, t := range f.Terms {
			if !view.Contains(t) {
				return false
			}
		}
		return true
	case model.MatchThreshold:
		return ix.corpus.ContainmentScoreSorted(view.Sorted(), f.Terms) >= f.Threshold
	default:
		return false
	}
}

// NumFilters returns the count of registered filter definitions.
func (ix *Index) NumFilters() int {
	return int(ix.numFilters.Load())
}

// LiveFilters counts the filter definitions currently resident by walking
// the definition shards. Unlike NumFilters — which preserves the original
// engine's accounting and increments on every Register call, including a
// re-registration of an ID that is already live — this is exact, so tests
// can cross-check it against CoverStats.CoveredFilters.
func (ix *Index) LiveFilters() int {
	total := 0
	for i := range ix.state.filters {
		sh := &ix.state.filters[i]
		sh.mu.RLock()
		total += len(sh.filters)
		sh.mu.RUnlock()
	}
	return total
}

// NumPostings returns the total posting entries written (storage-cost
// accounting for Figure 9(a)).
func (ix *Index) NumPostings() int {
	return int(ix.numPostings.Load())
}

// PostingIDs returns the filter IDs on term's posting list, as a fresh
// copy the caller may keep or mutate.
func (ix *Index) PostingIDs(term string) ([]model.FilterID, error) {
	if ix.agg != nil {
		return ix.aggPostingIDs(term), nil
	}
	snap := ix.state.termShard(term).snapshot(term)
	if len(snap) == 0 {
		return nil, nil
	}
	return append([]model.FilterID(nil), snap...), nil
}

// PostingLen returns the posting-list length of term.
func (ix *Index) PostingLen(term string) (int, error) {
	if ix.agg != nil {
		return ix.aggPostingLen(term), nil
	}
	return len(ix.state.termShard(term).snapshot(term)), nil
}

// Terms lists the terms with posting lists on this node. Delegates to the
// store so the result stays in sorted key order (allocation relies on a
// deterministic walk).
func (ix *Index) Terms() ([]string, error) {
	return ix.postings.Terms()
}

// EachFilter iterates the stored filter definitions.
func (ix *Index) EachFilter(fn func(model.Filter) bool) error {
	return ix.filters.Each(fn)
}

// DropTerm removes a term's posting list (allocation migration moves its
// filters elsewhere) from both the serving shards and the store.
func (ix *Index) DropTerm(term string) error {
	if ix.agg != nil {
		return ix.aggDropTerm(term)
	}
	if err := ix.postings.Remove(term); err != nil {
		return err
	}
	ix.state.termShard(term).remove(term)
	return nil
}

// GetFilter loads one filter definition. The result is an immutable shard
// snapshot — callers may keep it but must not mutate Terms.
func (ix *Index) GetFilter(id model.FilterID) (model.Filter, bool, error) {
	f, ok := ix.state.filterShard(id).get(id)
	if !ok {
		return model.Filter{}, false, nil
	}
	return f, true, nil
}
