// Package index implements a node's local filter index and the two
// centralized matching algorithms the paper compares:
//
//   - MatchTerm — the distributed-inverted-list matcher of §III.B: on the
//     home node of term t, retrieve only t's posting list, even though the
//     stored filters contain other terms. Used by both IL and MOVE.
//   - MatchSIFT — the classic SIFT matcher [25] used by the RS baseline:
//     retrieve the posting lists of all |d| document terms and evaluate
//     every referred filter.
//
// Both report MatchStats (posting lists touched, postings scanned, filters
// evaluated) so the experiment harness can charge the §IV latency model's
// y_p cost exactly where the paper says it accrues: in local (disk) reads
// of posting lists.
package index

import (
	"fmt"
	"sync"
	"time"

	"github.com/movesys/move/internal/metrics"
	"github.com/movesys/move/internal/model"
	"github.com/movesys/move/internal/store"
	"github.com/movesys/move/internal/vsm"
)

// Index is one node's filter index: full filter definitions plus posting
// lists for the terms this node is responsible for.
type Index struct {
	filters  *store.FilterStore
	postings *store.PostingStore
	corpus   *vsm.Corpus

	// Optional per-stage latency instrumentation (§IV cost model: the
	// posting-list read is the "disk seek" y_seek, the evaluation loop is
	// the per-posting scan y_p). Nil histograms record nothing.
	postingReadH *metrics.Histogram
	evalH        *metrics.Histogram

	mu          sync.RWMutex
	numFilters  int
	numPostings int
}

// Instrument routes the index's per-stage latencies into reg:
// index.posting.read (one observation per posting-list retrieval) and
// index.eval (one observation per match call, covering the whole candidate
// evaluation loop).
func (ix *Index) Instrument(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	ix.postingReadH = reg.Histogram("index.posting.read")
	ix.evalH = reg.Histogram("index.eval")
}

// New builds an index over a node-local store. When the store was opened
// from a data directory, the counters are rebuilt from the recovered
// filters and posting lists, so a restarted node resumes with correct
// load-accounting state.
func New(s *store.Store) (*Index, error) {
	fs, err := store.NewFilterStore(s)
	if err != nil {
		return nil, fmt.Errorf("index: open filter store: %w", err)
	}
	ps, err := store.NewPostingStore(s)
	if err != nil {
		return nil, fmt.Errorf("index: open posting store: %w", err)
	}
	ix := &Index{
		filters:  fs,
		postings: ps,
		corpus:   vsm.NewCorpus(),
	}
	if err := ix.recoverCounters(); err != nil {
		return nil, fmt.Errorf("index: recover counters: %w", err)
	}
	return ix, nil
}

// recoverCounters recounts filters and posting entries after a restart.
func (ix *Index) recoverCounters() error {
	n, err := ix.filters.Count()
	if err != nil {
		return err
	}
	ix.numFilters = n
	terms, err := ix.postings.Terms()
	if err != nil {
		return err
	}
	total := 0
	for _, t := range terms {
		l, err := ix.postings.Len(t)
		if err != nil {
			return err
		}
		total += l
	}
	ix.numPostings = total
	return nil
}

// Register stores filter f and adds it to the posting lists of
// postingTerms. On a home node postingTerms is the single responsible term
// (or the node's responsible subset of f's terms); the RS baseline passes
// all of f's terms.
func (ix *Index) Register(f model.Filter, postingTerms []string) error {
	if err := f.Validate(); err != nil {
		return err
	}
	if err := ix.filters.Put(f); err != nil {
		return err
	}
	for _, t := range postingTerms {
		if err := ix.postings.Add(t, f.ID); err != nil {
			return err
		}
	}
	ix.mu.Lock()
	ix.numFilters++
	ix.numPostings += len(postingTerms)
	ix.mu.Unlock()
	return nil
}

// Unregister removes a filter definition if present (no-op otherwise, so
// cluster-wide broadcasts are safe). Posting entries are left to be
// filtered lazily on match (a standard tombstone-style design: posting
// lists are append-only; a missing filter definition drops the candidate).
func (ix *Index) Unregister(id model.FilterID) error {
	_, ok, err := ix.filters.Get(id)
	if err != nil {
		return err
	}
	if !ok {
		return nil
	}
	if err := ix.filters.Delete(id); err != nil {
		return err
	}
	ix.mu.Lock()
	ix.numFilters--
	ix.mu.Unlock()
	return nil
}

// ObserveDocument feeds corpus statistics for idf scoring. Called once per
// document arriving at a node.
func (ix *Index) ObserveDocument(d *model.Document) {
	ix.corpus.AddDocument(d.Terms)
}

// Corpus exposes the idf statistics (read-only use).
func (ix *Index) Corpus() *vsm.Corpus { return ix.corpus }

// MatchStats counts the work one match performed; the units the §IV cost
// model charges.
type MatchStats struct {
	// PostingLists is the number of posting lists retrieved ("disk seeks").
	PostingLists int
	// Postings is the total number of posting entries scanned.
	Postings int
	// Evaluated is the number of distinct filters evaluated against the
	// document.
	Evaluated int
}

// Add accumulates other into s.
func (s *MatchStats) Add(other MatchStats) {
	s.PostingLists += other.PostingLists
	s.Postings += other.Postings
	s.Evaluated += other.Evaluated
}

// MatchTerm finds the filters matching d among those on term's posting
// list only (§III.B). The caller guarantees term ∈ d (the forwarding
// engine only routes documents to home nodes of their own terms).
func (ix *Index) MatchTerm(d *model.Document, term string) ([]model.Filter, MatchStats, error) {
	var st MatchStats
	readTm := ix.postingReadH.Start()
	ids, err := ix.postings.Get(term)
	readTm.Stop()
	if err != nil {
		return nil, st, fmt.Errorf("index: posting list %q: %w", term, err)
	}
	// Only non-empty lists count as retrievals: a miss is answered by the
	// in-memory term dictionary and never touches the list store.
	if len(ids) > 0 {
		st.PostingLists = 1
	}
	st.Postings = len(ids)
	docSet := d.TermSet()
	evalTm := ix.evalH.Start()
	defer evalTm.Stop()
	matched := make([]model.Filter, 0, len(ids))
	for _, id := range ids {
		f, ok, err := ix.filters.Get(id)
		if err != nil {
			return nil, st, err
		}
		if !ok {
			continue // unregistered; lazy posting cleanup
		}
		st.Evaluated++
		if ix.evaluate(&f, docSet) {
			matched = append(matched, f)
		}
	}
	return matched, st, nil
}

// MatchSIFT finds the filters matching d by retrieving the posting lists of
// every document term — the centralized SIFT algorithm the RS baseline
// runs on each flooded node.
func (ix *Index) MatchSIFT(d *model.Document) ([]model.Filter, MatchStats, error) {
	var st MatchStats
	docSet := d.TermSet()
	seen := make(map[model.FilterID]struct{})
	var matched []model.Filter
	evalStart := time.Now()
	defer func() { ix.evalH.Observe(time.Since(evalStart)) }()
	for _, term := range d.Terms {
		readTm := ix.postingReadH.Start()
		ids, err := ix.postings.Get(term)
		readTm.Stop()
		if err != nil {
			return nil, st, fmt.Errorf("index: posting list %q: %w", term, err)
		}
		// SIFT retrieves the posting list of every document term with local
		// postings; misses are answered by the in-memory dictionary. The
		// per-node retrieval count is what makes blind flooding expensive
		// (§I): every node pays it for every document.
		if len(ids) > 0 {
			st.PostingLists++
		}
		st.Postings += len(ids)
		for _, id := range ids {
			if _, dup := seen[id]; dup {
				continue
			}
			seen[id] = struct{}{}
			f, ok, err := ix.filters.Get(id)
			if err != nil {
				return nil, st, err
			}
			if !ok {
				continue
			}
			st.Evaluated++
			if ix.evaluate(&f, docSet) {
				matched = append(matched, f)
			}
		}
	}
	return matched, st, nil
}

// evaluate applies the filter's matching semantics against the document
// term set.
func (ix *Index) evaluate(f *model.Filter, docSet map[string]struct{}) bool {
	switch f.Mode {
	case model.MatchAny:
		for _, t := range f.Terms {
			if _, ok := docSet[t]; ok {
				return true
			}
		}
		return false
	case model.MatchAll:
		for _, t := range f.Terms {
			if _, ok := docSet[t]; !ok {
				return false
			}
		}
		return true
	case model.MatchThreshold:
		return ix.corpus.ContainmentScore(docSet, f.Terms) >= f.Threshold
	default:
		return false
	}
}

// NumFilters returns the count of registered filter definitions.
func (ix *Index) NumFilters() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.numFilters
}

// NumPostings returns the total posting entries written (storage-cost
// accounting for Figure 9(a)).
func (ix *Index) NumPostings() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.numPostings
}

// PostingIDs returns the filter IDs on term's posting list.
func (ix *Index) PostingIDs(term string) ([]model.FilterID, error) {
	return ix.postings.Get(term)
}

// PostingLen returns the posting-list length of term.
func (ix *Index) PostingLen(term string) (int, error) {
	return ix.postings.Len(term)
}

// Terms lists the terms with posting lists on this node.
func (ix *Index) Terms() ([]string, error) {
	return ix.postings.Terms()
}

// EachFilter iterates the stored filter definitions.
func (ix *Index) EachFilter(fn func(model.Filter) bool) error {
	return ix.filters.Each(fn)
}

// DropTerm removes a term's posting list (allocation migration moves its
// filters elsewhere).
func (ix *Index) DropTerm(term string) error {
	return ix.postings.Remove(term)
}

// GetFilter loads one filter definition.
func (ix *Index) GetFilter(id model.FilterID) (model.Filter, bool, error) {
	return ix.filters.Get(id)
}
