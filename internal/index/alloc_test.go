package index

import (
	"strconv"
	"testing"

	"github.com/movesys/move/internal/model"
	"github.com/movesys/move/internal/testutil"
)

// allocSinkFilters keeps match results visibly alive so the compiler cannot
// elide the calls under test.
var allocSinkFilters []model.Filter

// allocDoc builds a document with nTerms terms including "hot", with its
// term view primed (a warm publish path primes the view at decode time, so
// steady-state matching never pays the view build).
func allocDoc(nTerms int) *model.Document {
	terms := make([]string, 0, nTerms)
	terms = append(terms, "hot")
	for i := 1; i < nTerms; i++ {
		terms = append(terms, "term-"+strconv.Itoa(i))
	}
	d := &model.Document{ID: 1, Terms: terms}
	d.View()
	return d
}

// TestMatchTermZeroAllocs is the ISSUE acceptance guard: on a warm index,
// MatchTerm performs zero heap allocations per call, excluding the
// matched-results slice. Filters here are MatchAll with one absent term, so
// every posting entry is scanned and evaluated but nothing matches — the
// results slice is never allocated and the whole call must be free.
func TestMatchTermZeroAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are not stable under the race detector")
	}
	ix := newIndex(t)
	for i := 0; i < 128; i++ {
		f := model.Filter{
			ID:    model.FilterID(i + 1),
			Terms: []string{"hot", "absent-" + strconv.Itoa(i)},
			Mode:  model.MatchAll,
		}
		if err := ix.Register(f, []string{"hot"}); err != nil {
			t.Fatal(err)
		}
	}
	doc := allocDoc(24)

	// Warm call: verifies the setup actually scans the posting list.
	if _, st, err := ix.MatchTerm(doc, "hot"); err != nil || st.Postings != 128 {
		t.Fatalf("warm call: scanned=%d err=%v", st.Postings, err)
	}

	allocs := testing.AllocsPerRun(500, func() {
		fs, _, err := ix.MatchTerm(doc, "hot")
		if err != nil {
			t.Fatal(err)
		}
		allocSinkFilters = fs
	})
	if allocs != 0 {
		t.Fatalf("MatchTerm on warm index: %.1f allocs/op, want 0", allocs)
	}
}

// TestMatchTermMatchedPathAllocs pins down the one allowed allocation: with
// a single matching filter, the only heap traffic is the results slice.
func TestMatchTermMatchedPathAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are not stable under the race detector")
	}
	ix := newIndex(t)
	registerAny(t, ix, 1, "hot")
	doc := allocDoc(24)

	allocs := testing.AllocsPerRun(500, func() {
		fs, _, err := ix.MatchTerm(doc, "hot")
		if err != nil || len(fs) != 1 {
			t.Fatalf("matched %d filters, err=%v", len(fs), err)
		}
		allocSinkFilters = fs
	})
	if allocs > 1 {
		t.Fatalf("MatchTerm matched path: %.1f allocs/op, want <= 1 (results slice only)", allocs)
	}
}

// TestMatchSIFTSteadyStateAllocs guards the pooled seen-map: with no
// matching filters, a warm MatchSIFT call allocates nothing.
func TestMatchSIFTSteadyStateAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are not stable under the race detector")
	}
	ix := newIndex(t)
	for i := 0; i < 64; i++ {
		f := model.Filter{
			ID:    model.FilterID(i + 1),
			Terms: []string{"hot", "absent-" + strconv.Itoa(i)},
			Mode:  model.MatchAll,
		}
		if err := ix.Register(f, []string{"hot"}); err != nil {
			t.Fatal(err)
		}
	}
	doc := allocDoc(24)

	allocs := testing.AllocsPerRun(500, func() {
		fs, _, err := ix.MatchSIFT(doc)
		if err != nil {
			t.Fatal(err)
		}
		allocSinkFilters = fs
	})
	if allocs != 0 {
		t.Fatalf("MatchSIFT on warm index: %.1f allocs/op, want 0", allocs)
	}
}

// TestMatchTermsZeroAllocs guards the bitset match path of the aggregated
// engine: a warm multi-term MatchTerms call — pooled seen map, pooled
// cover-verdict cache, inline container iteration — performs zero heap
// allocations on the unmatched path. Runs both container shapes: distinct
// signatures (one array-container entry per cover) and one shared
// signature large enough to promote its entry to a bitmap container.
func TestMatchTermsZeroAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are not stable under the race detector")
	}
	for name, shared := range map[string]bool{"array-containers": false, "bitmap-container": true} {
		t.Run(name, func(t *testing.T) {
			ix := newIndex(t)
			for i := 0; i < 128; i++ {
				absent := "absent-shared"
				if !shared {
					absent = "absent-" + strconv.Itoa(i)
				}
				f := model.Filter{
					ID:    model.FilterID(i + 1),
					Terms: []string{"hot", absent},
					Mode:  model.MatchAll,
				}
				if err := ix.Register(f, []string{"hot"}); err != nil {
					t.Fatal(err)
				}
			}
			if shared {
				if cs := ix.CoverStats(); cs.Covers != 1 {
					t.Fatalf("Covers = %d, want 1 shared cover", cs.Covers)
				}
			}
			doc := allocDoc(24)
			queryTerms := []string{"hot", "term-1"}

			// Warm call: verifies the multi-term path scans the posting list
			// (and warms the pools).
			if _, st, err := ix.MatchTerms(doc, queryTerms); err != nil || st.Postings != 128 {
				t.Fatalf("warm call: scanned=%d err=%v", st.Postings, err)
			}

			allocs := testing.AllocsPerRun(500, func() {
				fs, _, err := ix.MatchTerms(doc, queryTerms)
				if err != nil {
					t.Fatal(err)
				}
				allocSinkFilters = fs
			})
			if allocs != 0 {
				t.Fatalf("MatchTerms on warm index: %.1f allocs/op, want 0", allocs)
			}
		})
	}
}

// BenchmarkMatchTermsWarm measures the aggregated multi-term match (the
// coalesced-publish serving path) with -benchmem visibility; steady state
// is 0 B/op on the unmatched path.
func BenchmarkMatchTermsWarm(b *testing.B) {
	ix := newIndex(b)
	for i := 0; i < 256; i++ {
		f := model.Filter{
			ID:    model.FilterID(i + 1),
			Terms: []string{"hot", "absent-shared"},
			Mode:  model.MatchAll,
		}
		if err := ix.Register(f, []string{"hot"}); err != nil {
			b.Fatal(err)
		}
	}
	doc := allocDoc(24)
	queryTerms := []string{"hot", "term-1"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs, _, err := ix.MatchTerms(doc, queryTerms)
		if err != nil {
			b.Fatal(err)
		}
		allocSinkFilters = fs
	}
}

// BenchmarkMatchTermWarm measures the home-node posting-list scan (§IV's
// y_p term) on a warm index with a primed document view. Run with
// -benchmem: the steady-state figure of merit is 0 B/op on the unmatched
// path.
func BenchmarkMatchTermWarm(b *testing.B) {
	for _, tc := range []struct {
		name     string
		matching bool
	}{
		{"unmatched", false},
		{"matched", true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			ix := newIndex(b)
			for i := 0; i < 256; i++ {
				terms := []string{"hot", "absent-" + strconv.Itoa(i)}
				mode := model.MatchAll
				if tc.matching {
					mode = model.MatchAny
				}
				f := model.Filter{ID: model.FilterID(i + 1), Terms: terms, Mode: mode}
				if err := ix.Register(f, []string{"hot"}); err != nil {
					b.Fatal(err)
				}
			}
			doc := allocDoc(24)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fs, _, err := ix.MatchTerm(doc, "hot")
				if err != nil {
					b.Fatal(err)
				}
				allocSinkFilters = fs
			}
		})
	}
}
