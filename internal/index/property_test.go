package index

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/movesys/move/internal/model"
)

// propVocab is a small vocabulary so random filters and documents overlap
// often enough that the property is exercised on non-empty match sets.
var propVocab = func() []string {
	v := make([]string, 12)
	for i := range v {
		v[i] = fmt.Sprintf("t%d", i)
	}
	return v
}()

// randTerms draws 1..maxLen distinct vocabulary terms.
func randTerms(rng *rand.Rand, maxLen int) []string {
	n := 1 + rng.Intn(maxLen)
	perm := rng.Perm(len(propVocab))
	terms := make([]string, 0, n)
	for _, p := range perm[:n] {
		terms = append(terms, propVocab[p])
	}
	return terms
}

// randMode draws a matching mode; thresholds stay low enough that
// MatchThreshold filters can fire.
func randMode(rng *rand.Rand) (model.MatchMode, float64) {
	switch rng.Intn(3) {
	case 0:
		return model.MatchAny, 0
	case 1:
		return model.MatchAll, 0
	default:
		return model.MatchThreshold, 0.2 + 0.5*rng.Float64()
	}
}

// TestMatchTermSubsetOfSIFT is the §III.B correctness property linking the
// two matchers: for any filter set and document, the filters MatchTerm
// finds on the home node of term t (for every t in the document) must be a
// subset of what the centralized SIFT matcher finds — MatchTerm only
// narrows the posting lists read, never the answer. Conversely every SIFT
// match must be found by MatchTerm on at least one document term it was
// posted under, so the union over home nodes recovers the full match set.
func TestMatchTermSubsetOfSIFT(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ix := newIndex(t)
		numFilters := 1 + rng.Intn(30)
		for i := 1; i <= numFilters; i++ {
			mode, thr := randMode(rng)
			f := model.Filter{
				ID: model.FilterID(i), Subscriber: "s",
				Terms: randTerms(rng, 4), Mode: mode, Threshold: thr,
			}
			// Home-node style: posted under every one of its terms (the
			// union property below needs each term's list to carry it).
			if err := ix.Register(f, f.Terms); err != nil {
				t.Fatal(err)
			}
		}
		doc := &model.Document{ID: uint64(seed)&0xffff + 1, Terms: randTerms(rng, 6)}
		// Corpus statistics feed the threshold matcher's idf scores; both
		// matchers must see the same corpus state, so observe before both.
		ix.ObserveDocument(doc)

		siftMatches, _, err := ix.MatchSIFT(doc)
		if err != nil {
			t.Fatal(err)
		}
		sift := make(map[model.FilterID]struct{}, len(siftMatches))
		for _, f := range siftMatches {
			sift[f.ID] = struct{}{}
		}

		union := make(map[model.FilterID]struct{})
		for _, term := range doc.Terms {
			fs, _, err := ix.MatchTerm(doc, term)
			if err != nil {
				t.Fatal(err)
			}
			for _, f := range fs {
				if _, ok := sift[f.ID]; !ok {
					t.Logf("seed %d: MatchTerm(%q) found %v which SIFT did not", seed, term, f.ID)
					return false
				}
				union[f.ID] = struct{}{}
			}
		}
		if !reflect.DeepEqual(union, sift) && !(len(union) == 0 && len(sift) == 0) {
			t.Logf("seed %d: union over home nodes %v != SIFT %v", seed, union, sift)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestMatchTermsEquivalentToPerTermUnion is the coalescing correctness
// property: for any filter set, document, and term list, one MatchTerms
// pass must return exactly the deduplicated concatenation of per-term
// MatchTerm results (first-appearance order), and its wire-visible stats
// (Postings, PostingLists) must equal the per-term sums — candidate dedup
// may only reduce Evaluated, never the accounted posting work.
func TestMatchTermsEquivalentToPerTermUnion(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ix := newIndex(t)
		numFilters := 1 + rng.Intn(30)
		for i := 1; i <= numFilters; i++ {
			mode, thr := randMode(rng)
			f := model.Filter{
				ID: model.FilterID(i), Subscriber: "s",
				Terms: randTerms(rng, 4), Mode: mode, Threshold: thr,
			}
			if err := ix.Register(f, f.Terms); err != nil {
				t.Fatal(err)
			}
		}
		doc := &model.Document{ID: uint64(seed)&0xffff + 1, Terms: randTerms(rng, 6)}
		// Observe once, before both paths: matching itself never mutates the
		// corpus, so threshold filters see identical idf state.
		ix.ObserveDocument(doc)
		// Query a random multiset of terms — duplicates included, because the
		// coalesced path must dedup candidates across repeated terms too.
		queried := make([]string, 0, 6)
		for _, term := range randTerms(rng, 4) {
			queried = append(queried, term)
			if rng.Intn(3) == 0 {
				queried = append(queried, term)
			}
		}

		var wantIDs []model.FilterID
		seen := make(map[model.FilterID]struct{})
		var wantPostings, wantLists int
		for _, term := range queried {
			fs, st, err := ix.MatchTerm(doc, term)
			if err != nil {
				t.Fatal(err)
			}
			wantPostings += st.Postings
			wantLists += st.PostingLists
			for _, f := range fs {
				if _, ok := seen[f.ID]; ok {
					continue
				}
				seen[f.ID] = struct{}{}
				wantIDs = append(wantIDs, f.ID)
			}
		}

		fs, st, err := ix.MatchTerms(doc, queried)
		if err != nil {
			t.Fatal(err)
		}
		gotIDs := make([]model.FilterID, 0, len(fs))
		for _, f := range fs {
			gotIDs = append(gotIDs, f.ID)
		}
		if !reflect.DeepEqual(gotIDs, wantIDs) && !(len(gotIDs) == 0 && len(wantIDs) == 0) {
			t.Logf("seed %d: MatchTerms %v != deduplicated per-term union %v", seed, gotIDs, wantIDs)
			return false
		}
		if st.Postings != wantPostings || st.PostingLists != wantLists {
			t.Logf("seed %d: stats (%d postings, %d lists) != per-term sums (%d, %d)",
				seed, st.Postings, st.PostingLists, wantPostings, wantLists)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
