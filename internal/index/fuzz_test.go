package index

import (
	"testing"

	"github.com/movesys/move/internal/model"
	"github.com/movesys/move/internal/store"
)

// FuzzIndexRegisterMatch interprets the input as an operation stream over
// a small vocabulary and drives it into an aggregated index and the flat
// oracle, comparing every matcher after each match op. Any divergence in
// the sorted match set, MatchStats, or counters fails the target. The
// checked-in seed corpus (testdata/fuzz/FuzzIndexRegisterMatch) covers the
// interleavings the table tests pin: same-signature sharing, unregister
// of a cover representative, signature splits and merges with overlapping
// posting terms, migration replays, and drop-term.
//
// Byte grammar, per op: [opcode, args...] with opcode % 7 selecting
//   0,1 register   (id, termMask, modeByte, postingPrefixByte)
//   2   unregister (id)
//   3   ensure     (id, termMask, modeByte)
//   4   dropTerm   (termIndex)
//   5   observe    (termMask)
//   6   match      (termMask)
// Truncated args end the stream.
func FuzzIndexRegisterMatch(f *testing.F) {
	// Same-sig cover sharing, then match.
	f.Add([]byte{0, 1, 0x03, 0, 0, 0, 2, 0x03, 0, 0, 6, 0x03})
	// Unregister the representative, match the survivors.
	f.Add([]byte{0, 1, 0x07, 1, 0, 0, 2, 0x07, 1, 0, 2, 1, 6, 0x07})
	// Split to a new signature with an overlapping term, then merge back.
	f.Add([]byte{0, 1, 0x03, 0, 0, 6, 0x03, 0, 1, 0x05, 0, 0, 6, 0x07, 0, 1, 0x03, 0, 0, 6, 0x03})
	// Tombstone, migration replay under a new signature, match.
	f.Add([]byte{0, 2, 0x0c, 2, 0, 2, 2, 3, 2, 0x06, 2, 6, 0x0e})
	// Drop a term out from under a cover, threshold-mode members.
	f.Add([]byte{5, 0x1f, 0, 3, 0x18, 2, 0, 4, 3, 6, 0x1f, 0, 4, 0x18, 2, 1, 6, 0x18})
	f.Fuzz(func(t *testing.T, ops []byte) {
		sa, err := store.Open("", store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		sf, err := store.Open("", store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		agg, err := New(sa)
		if err != nil {
			t.Fatal(err)
		}
		flat, err := NewFlat(sf)
		if err != nil {
			t.Fatal(err)
		}
		p := &enginePair{agg: agg, flat: flat}

		vocab := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
		termsFromMask := func(mask byte) []string {
			var terms []string
			for b := 0; b < len(vocab); b++ {
				if mask&(1<<b) != 0 {
					terms = append(terms, vocab[b])
				}
			}
			if len(terms) == 0 {
				terms = []string{vocab[mask%8]}
			}
			return terms
		}
		buildFilter := func(id, mask, modeByte byte) model.Filter {
			f := model.Filter{
				ID:         model.FilterID(1 + id%12),
				Subscriber: "s",
				Terms:      termsFromMask(mask),
			}
			switch modeByte % 3 {
			case 0:
				f.Mode = model.MatchAny
			case 1:
				f.Mode = model.MatchAll
			default:
				f.Mode = model.MatchThreshold
				f.Threshold = 0.2 + float64(modeByte%60)/100
			}
			return f
		}

		docID := uint64(0)
		i := 0
		take := func(n int) []byte {
			if i+n > len(ops) {
				return nil
			}
			out := ops[i : i+n]
			i += n
			return out
		}
		for i < len(ops) {
			op := ops[i] % 7
			i++
			switch op {
			case 0, 1:
				args := take(4)
				if args == nil {
					return
				}
				fl := buildFilter(args[0], args[1], args[2])
				postingTerms := fl.Terms
				if n := int(args[3]) % (len(fl.Terms) + 1); n > 0 {
					postingTerms = fl.Terms[:n]
				}
				p.register(t, fl, postingTerms)
			case 2:
				args := take(1)
				if args == nil {
					return
				}
				p.unregister(t, model.FilterID(1+args[0]%12))
			case 3:
				args := take(3)
				if args == nil {
					return
				}
				fl := buildFilter(args[0], args[1], args[2])
				p.ensure(t, fl, fl.Terms)
			case 4:
				args := take(1)
				if args == nil {
					return
				}
				p.dropTerm(t, vocab[args[0]%8])
			case 5:
				args := take(1)
				if args == nil {
					return
				}
				docID++
				d := model.Document{ID: docID, Terms: termsFromMask(args[0])}
				p.observe(&d)
			case 6:
				args := take(1)
				if args == nil {
					return
				}
				docID++
				d := model.Document{ID: docID, Terms: termsFromMask(args[0])}
				p.compareAll(t, &d)
			}
		}
		// Terminal probe: full-vocabulary document through every matcher.
		p.compareAll(t, &model.Document{ID: docID + 1, Terms: vocab})
	})
}
