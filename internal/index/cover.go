package index

import (
	"strconv"
	"strings"
	"sync"

	"github.com/movesys/move/internal/model"
)

// A cover is the aggregated index's unit of posting storage: the group of
// all registered filters sharing one canonical predicate signature (match
// mode, threshold, sorted deduplicated term set). Instead of one posting
// entry per filter per term, the aggregated index stores one (term, cover)
// entry whose slotSet records which members were posted under that term;
// the cover itself is the expansion table mapping that compressed entry
// back to concrete filter IDs (and, through the filter shards, to
// subscribers).
//
// Members get dense slot indexes in registration order. Slots are
// append-only — a member that unregisters keeps its slot (cleared in the
// alive set) and reclaims the same slot if it re-registers under the same
// signature, so posting slotSets never need rewriting on membership churn.
//
// rep is the cover's representative — the "covering filter" in the
// subsumption literature. It is maintained so the unregister-a-cover case
// promotes a surviving member instead of orphaning the group: when the
// representative unregisters, the lowest live slot takes over.
type cover struct {
	id        uint32
	mode      model.MatchMode
	threshold float64
	// terms is the canonical (sorted, deduplicated) term set, privately
	// owned by the cover and immutable. Members whose registered Terms are
	// element-wise equal to it share this exact backing array — that slice
	// identity is what marks a member as "attached" (safe to take the
	// cover-level verdict) versus "stale" (re-registered under a different
	// signature; must be evaluated individually).
	terms []string

	mu    sync.RWMutex
	slots []model.FilterID
	// slotOf accelerates member→slot lookup but is built lazily, once the
	// cover reaches coverSlotMapMin members: most covers stay small, and a
	// per-cover map would dominate the memory the aggregation saves. Below
	// the threshold lookups scan slots linearly (nil map).
	slotOf map[model.FilterID]int32
	// alive marks the slots of currently registered members — an advisory
	// set: the match path's source of truth for liveness stays the filter
	// shards (exactly like the flat index's lazy tombstones), while alive
	// drives representative promotion and the cover statistics.
	alive slotSet
	// rep is the representative member, 0 when the cover has no live
	// members.
	rep model.FilterID
}

// coverKey is a cover's canonical signature, usable as a map key. terms is
// the canonical term set joined with NUL (terms are tokenized words and
// never contain NUL, so the join is injective).
type coverKey struct {
	mode      model.MatchMode
	threshold float64
	terms     string
}

// sigOf builds the signature key and canonical term set for a filter.
// The returned slice is freshly allocated and may be retained by a new
// cover.
func sigOf(f *model.Filter) (coverKey, []string) {
	canon := model.SortTerms(append([]string(nil), f.Terms...))
	key := coverKey{mode: f.Mode, terms: strings.Join(canon, "\x00")}
	if f.Mode == model.MatchThreshold {
		key.threshold = f.Threshold
	}
	return key, canon
}

// sigShardFor hashes a signature to its shard (FNV-1a over the joined
// terms, mode and threshold mixed in).
func sigShardFor(key coverKey) uint32 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key.terms); i++ {
		h ^= uint64(key.terms[i])
		h *= prime64
	}
	h ^= uint64(key.mode)
	h *= prime64
	if key.threshold != 0 {
		h ^= uint64(int64(key.threshold * 1e9))
		h *= prime64
	}
	return uint32(h) & shardMask
}

// coverSigShard interns covers by signature.
type coverSigShard struct {
	mu     sync.Mutex
	covers map[coverKey]*cover
}

// attachedTo reports whether f's definition is attached to c: its Terms
// slice IS the cover's canonical array (identity, not just equality) and
// mode/threshold agree. Attached members are exactly those whose predicate
// the cover's single evaluation decides; anything else — including a
// same-ID filter re-registered under a different signature whose posting
// bits haven't migrated — falls back to individual evaluation, which keeps
// the aggregated matcher exact under arbitrary register/unregister
// interleavings.
func attachedTo(f *model.Filter, c *cover) bool {
	if f.Mode != c.mode || len(f.Terms) != len(c.terms) {
		return false
	}
	if f.Mode == model.MatchThreshold && f.Threshold != c.threshold {
		return false
	}
	return len(f.Terms) == 0 || &f.Terms[0] == &c.terms[0]
}

// debugString renders the cover for test failure messages.
func (c *cover) debugString() string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var b strings.Builder
	b.WriteString("cover#")
	b.WriteString(strconv.FormatUint(uint64(c.id), 10))
	b.WriteString("{")
	b.WriteString(c.mode.String())
	b.WriteString(" [")
	b.WriteString(strings.Join(c.terms, ","))
	b.WriteString("] live=")
	b.WriteString(strconv.Itoa(c.alive.count()))
	b.WriteString("/")
	b.WriteString(strconv.Itoa(len(c.slots)))
	b.WriteString(" rep=")
	b.WriteString(c.rep.String())
	b.WriteString("}")
	return b.String()
}

// coverSlotMapMin is the membership size at which a cover materializes its
// slotOf map; below it, findSlot scans the slots slice.
const coverSlotMapMin = 16

// findSlot returns id's slot, via the map when materialized or a linear
// scan of the (small) slots slice otherwise. Caller holds c.mu.
func (c *cover) findSlot(id model.FilterID) (int32, bool) {
	if c.slotOf != nil {
		s, ok := c.slotOf[id]
		return s, ok
	}
	for i, m := range c.slots {
		if m == id {
			return int32(i), true
		}
	}
	return 0, false
}

// addSlot appends a new member slot, materializing the lookup map once the
// cover grows past coverSlotMapMin. Caller holds c.mu.
func (c *cover) addSlot(id model.FilterID) int32 {
	s := int32(len(c.slots))
	c.slots = append(c.slots, id)
	if c.slotOf != nil {
		c.slotOf[id] = s
	} else if len(c.slots) >= coverSlotMapMin {
		c.slotOf = make(map[model.FilterID]int32, len(c.slots))
		for i, m := range c.slots {
			c.slotOf[m] = int32(i)
		}
	}
	return s
}

// memberSlot returns the member's slot under the cover lock, adding a new
// slot when the filter was never a member. revived reports whether the
// member transitioned dead→alive; firstLive whether the cover transitioned
// empty→populated.
func (c *cover) memberSlot(id model.FilterID) (slot int32, revived, firstLive bool) {
	c.mu.Lock()
	s, ok := c.findSlot(id)
	if !ok {
		s = c.addSlot(id)
	}
	if c.alive.testAndSet(int(s)) {
		revived = true
		if c.alive.count() == 1 {
			firstLive = true
			c.rep = id
		}
	}
	c.mu.Unlock()
	return s, revived, firstLive
}

// markDead clears the member's alive bit. died reports a live→dead
// transition; emptied that the cover lost its last live member; promoted
// (non-zero) that a surviving member was promoted to representative
// because the departing member was the representative — the
// unregister-the-covering-filter case.
func (c *cover) markDead(id model.FilterID) (died, emptied bool, promoted model.FilterID) {
	c.mu.Lock()
	if s, ok := c.findSlot(id); ok && c.alive.clear(int(s)) {
		died = true
		if c.alive.count() == 0 {
			emptied = true
			c.rep = 0
		} else if c.rep == id {
			c.rep = c.slots[c.alive.first()]
			promoted = c.rep
		}
	}
	c.mu.Unlock()
	return died, emptied, promoted
}

// Rep returns the cover's current representative under the read lock.
func (c *cover) Rep() model.FilterID {
	c.mu.RLock()
	r := c.rep
	c.mu.RUnlock()
	return r
}

// RepFor returns the representative filter ID of the cover holding f's
// predicate signature — the "covering filter" of f's group. ok is false
// on a flat index, when no such cover exists, or when the cover has no
// live members. Diagnostic/test use.
func (ix *Index) RepFor(f model.Filter) (model.FilterID, bool) {
	if ix.agg == nil {
		return 0, false
	}
	key, _ := sigOf(&f)
	c := ix.agg.lookup(key)
	if c == nil {
		return 0, false
	}
	r := c.Rep()
	return r, r != 0
}

// CoverStats summarizes the aggregated index's compression state. All
// fields are O(1) atomic reads — cheap enough to export as gauges on every
// register/unregister.
type CoverStats struct {
	// Covers is the number of covers with at least one live member.
	Covers int
	// CoveredFilters is the number of live filter definitions attached to
	// those covers (every registered filter belongs to exactly one cover).
	CoveredFilters int
	// StoredEntries is the number of physical (term, cover) posting entries
	// — what the aggregated index actually stores.
	StoredEntries int
	// LogicalPostings is the flat-equivalent posting count (one per
	// (term, filter) pair, tombstones included) — identical to
	// NumPostings().
	LogicalPostings int
	// PostingsSaved is LogicalPostings − StoredEntries: posting entries the
	// aggregation avoided storing.
	PostingsSaved int
	// ExpansionFanoutMilli is the mean number of member bits per stored
	// entry, in thousandths (logical/stored × 1000); 1000 means no
	// compression, higher is better.
	ExpansionFanoutMilli int
}
