package index

import (
	"sync"

	"github.com/movesys/move/internal/model"
)

// Match paths of the aggregated engine. The scan order is: posting →
// entries (ascending cover id) → set bits (ascending slot). For each bit
// the member's definition is read from the filter shards exactly like the
// flat engine — a missing definition drops the candidate lazily — and the
// predicate is decided once per cover for attached members (the cover
// verdict), individually for stale ones. Container intersection happens
// before expansion: a candidate only surfaces where the entry's bitset
// says the cover posted it, and the per-cover verdict lets a whole
// container short-circuit to one predicate evaluation.
//
// Lock discipline: the term shard's read lock is held across the whole
// posting scan (entries and bitsets mutate in place, unlike the flat
// engine's append-only snapshots); the cover lock is taken only briefly to
// capture the slots header, and is never held across a filter-shard read.

// verdict cache values: 0 unknown, verdictMatch, verdictNoMatch.
const (
	verdictMatch   = uint8(1)
	verdictNoMatch = uint8(2)
)

// verdictPool recycles the per-call cover-verdict cache of multi-term
// matches, keyed by cover id.
var verdictPool = sync.Pool{
	New: func() any { return make(map[uint32]uint8, 16) },
}

// emitSlot evaluates one member bit: dedup, definition lookup, predicate
// (cached cover verdict for attached members), result append. Returns the
// possibly-grown matched slice and the updated verdict state.
func (ix *Index) emitSlot(c *cover, slots []model.FilterID, slot int, view *model.DocView,
	seen map[model.FilterID]struct{}, st *MatchStats, matched []model.Filter, capHint int, verdict uint8) ([]model.Filter, uint8) {
	if slot >= len(slots) {
		return matched, verdict
	}
	id := slots[slot]
	if seen != nil {
		if _, dup := seen[id]; dup {
			return matched, verdict
		}
		seen[id] = struct{}{}
	}
	f, ok := ix.state.filterShard(id).get(id)
	if !ok {
		return matched, verdict // unregistered; lazy posting cleanup
	}
	st.Evaluated++
	var isMatch bool
	if attachedTo(&f, c) {
		if verdict == 0 {
			cf := model.Filter{Mode: c.mode, Threshold: c.threshold, Terms: c.terms}
			if ix.evaluate(&cf, view) {
				verdict = verdictMatch
			} else {
				verdict = verdictNoMatch
			}
		}
		isMatch = verdict == verdictMatch
	} else {
		// Stale member: definition re-registered under another signature
		// while its posting bit still lives here. Evaluate it individually;
		// exactness beats the fast path.
		isMatch = ix.evaluate(&f, view)
	}
	if isMatch {
		if matched == nil && capHint > 0 {
			matched = make([]model.Filter, 0, capHint)
		}
		matched = append(matched, f)
	}
	return matched, verdict
}

// emitEntry expands one (term, cover) entry against the document,
// iterating the bitset container inline (word-wise for bitmap containers)
// so the warm path stays allocation-free.
func (ix *Index) emitEntry(e *aggEntry, view *model.DocView,
	seen map[model.FilterID]struct{}, verdicts map[uint32]uint8, st *MatchStats, matched []model.Filter, capHint int) []model.Filter {
	c := e.c
	c.mu.RLock()
	slots := c.slots
	c.mu.RUnlock()
	verdict := uint8(0)
	if verdicts != nil {
		verdict = verdicts[c.id]
	}
	if e.bits.words != nil {
		for w, word := range e.bits.words {
			for word != 0 {
				b := trailingZeros(word)
				word &= word - 1
				matched, verdict = ix.emitSlot(c, slots, w<<6+b, view, seen, st, matched, capHint, verdict)
			}
		}
	} else {
		for _, v := range e.bits.arr {
			matched, verdict = ix.emitSlot(c, slots, int(v), view, seen, st, matched, capHint, verdict)
		}
	}
	if verdicts != nil && verdict != 0 {
		verdicts[c.id] = verdict
	}
	return matched
}

// aggMatchTerm is MatchTerm on the aggregated engine.
func (ix *Index) aggMatchTerm(d *model.Document, term string) ([]model.Filter, MatchStats, error) {
	var st MatchStats
	sh := ix.agg.termShard(term)
	view := d.View()
	readTm := ix.postingReadH.Start()
	sh.mu.RLock()
	p := sh.lists[term]
	readTm.Stop()
	if p == nil || p.card == 0 {
		sh.mu.RUnlock()
		return nil, st, nil
	}
	st.PostingLists = 1
	st.Postings = p.card
	evalTm := ix.evalH.Start()
	// Lazy exact-size result allocation, as in the flat MatchTerm: the
	// no-match case returns nil without touching the heap; the first match
	// sizes the slice for the whole logical list.
	var matched []model.Filter
	for i := range p.entries {
		matched = ix.emitEntry(&p.entries[i], view, nil, nil, &st, matched, p.card)
	}
	sh.mu.RUnlock()
	evalTm.Stop()
	return matched, st, nil
}

// aggMatchTerms is MatchTerms on the aggregated engine: one pass over the
// aggregated shards, each term's entries expanded once, duplicates removed
// across terms, cover verdicts cached across the whole call.
func (ix *Index) aggMatchTerms(d *model.Document, terms []string) ([]model.Filter, MatchStats, error) {
	if len(terms) == 1 {
		return ix.aggMatchTerm(d, terms[0])
	}
	var st MatchStats
	view := d.View()
	seen := seenPool.Get().(map[model.FilterID]struct{})
	verdicts := verdictPool.Get().(map[uint32]uint8)
	defer func() {
		clear(seen)
		seenPool.Put(seen)
		clear(verdicts)
		verdictPool.Put(verdicts)
	}()
	var matched []model.Filter
	evalTm := ix.evalH.Start()
	defer evalTm.Stop()
	for _, term := range terms {
		sh := ix.agg.termShard(term)
		readTm := ix.postingReadH.Start()
		sh.mu.RLock()
		p := sh.lists[term]
		readTm.Stop()
		if p == nil || p.card == 0 {
			sh.mu.RUnlock()
			continue
		}
		st.PostingLists++
		st.Postings += p.card
		for i := range p.entries {
			matched = ix.emitEntry(&p.entries[i], view, seen, verdicts, &st, matched, 0)
		}
		sh.mu.RUnlock()
	}
	return matched, st, nil
}

// aggMatchSIFT is MatchSIFT on the aggregated engine.
func (ix *Index) aggMatchSIFT(d *model.Document) ([]model.Filter, MatchStats, error) {
	var st MatchStats
	view := d.View()
	seen := seenPool.Get().(map[model.FilterID]struct{})
	verdicts := verdictPool.Get().(map[uint32]uint8)
	defer func() {
		clear(seen)
		seenPool.Put(seen)
		clear(verdicts)
		verdictPool.Put(verdicts)
	}()
	var matched []model.Filter
	evalTm := ix.evalH.Start()
	defer evalTm.Stop()
	for _, term := range d.Terms {
		sh := ix.agg.termShard(term)
		readTm := ix.postingReadH.Start()
		sh.mu.RLock()
		p := sh.lists[term]
		readTm.Stop()
		if p == nil || p.card == 0 {
			sh.mu.RUnlock()
			continue
		}
		st.PostingLists++
		st.Postings += p.card
		for i := range p.entries {
			matched = ix.emitEntry(&p.entries[i], view, seen, verdicts, &st, matched, 0)
		}
		sh.mu.RUnlock()
	}
	return matched, st, nil
}

// aggPostingIDs expands term's aggregated posting list back to concrete
// filter IDs (covers first by id, members in slot order), as a fresh copy.
func (ix *Index) aggPostingIDs(term string) []model.FilterID {
	sh := ix.agg.termShard(term)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	p := sh.lists[term]
	if p == nil || p.card == 0 {
		return nil
	}
	out := make([]model.FilterID, 0, p.card)
	for i := range p.entries {
		e := &p.entries[i]
		e.c.mu.RLock()
		slots := e.c.slots
		e.c.mu.RUnlock()
		e.bits.forEach(func(slot int) {
			if slot < len(slots) {
				out = append(out, slots[slot])
			}
		})
	}
	return out
}

// aggPostingLen returns term's logical posting-list length.
func (ix *Index) aggPostingLen(term string) int {
	sh := ix.agg.termShard(term)
	sh.mu.RLock()
	n := 0
	if p := sh.lists[term]; p != nil {
		n = p.card
	}
	sh.mu.RUnlock()
	return n
}

// CoverDetail is a deep, O(index) walk of the aggregated posting lists —
// bench/diagnostic use only. LiveBits intersects each entry's bitset with
// its cover's alive set container-wise, separating live expansion fan-out
// from tombstone bits.
type CoverDetail struct {
	Terms    int // terms with a posting list
	Entries  int // physical (term, cover) entries
	Bits     int // total set bits (= logical postings, tombstones included)
	LiveBits int // bits whose member is currently registered
}

// CoverDetailStats walks every aggregated posting list. Returns the zero
// value on a flat index.
func (ix *Index) CoverDetailStats() CoverDetail {
	var d CoverDetail
	if ix.agg == nil {
		return d
	}
	for si := range ix.agg.term {
		sh := &ix.agg.term[si]
		sh.mu.RLock()
		for _, p := range sh.lists {
			d.Terms++
			d.Entries += len(p.entries)
			for i := range p.entries {
				e := &p.entries[i]
				d.Bits += e.bits.count()
				e.c.mu.RLock()
				d.LiveBits += e.bits.intersectCard(&e.c.alive)
				e.c.mu.RUnlock()
			}
		}
		sh.mu.RUnlock()
	}
	return d
}
