package index

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestSlotSetMatchesMapSet drives random insert/remove sequences into a
// slotSet and a plain map set, checking membership, cardinality, ascending
// iteration, first(), and that the container promotes from array to bitmap
// exactly once and never loses elements doing so.
func TestSlotSetMatchesMapSet(t *testing.T) {
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var s slotSet
		ref := map[int]bool{}
		maxSlot := 1 + rng.Intn(3000)
		for step := 0; step < 2000; step++ {
			slot := rng.Intn(maxSlot)
			if rng.Intn(3) == 0 {
				if s.clear(slot) != ref[slot] {
					t.Errorf("seed %d: clear(%d) disagreed", seed, slot)
					return false
				}
				delete(ref, slot)
			} else {
				if s.testAndSet(slot) != !ref[slot] {
					t.Errorf("seed %d: testAndSet(%d) disagreed", seed, slot)
					return false
				}
				ref[slot] = true
			}
			if s.count() != len(ref) {
				t.Errorf("seed %d: count=%d ref=%d", seed, s.count(), len(ref))
				return false
			}
		}
		for slot := 0; slot < maxSlot; slot++ {
			if s.has(slot) != ref[slot] {
				t.Errorf("seed %d: has(%d)=%v ref=%v", seed, slot, s.has(slot), ref[slot])
				return false
			}
		}
		prev, n := -1, 0
		s.forEach(func(slot int) {
			if slot <= prev {
				t.Errorf("seed %d: forEach not ascending: %d after %d", seed, slot, prev)
			}
			if !ref[slot] {
				t.Errorf("seed %d: forEach yielded absent slot %d", seed, slot)
			}
			prev = slot
			n++
		})
		if n != len(ref) {
			t.Errorf("seed %d: forEach yielded %d, want %d", seed, n, len(ref))
			return false
		}
		want := -1
		for slot := range ref {
			if want == -1 || slot < want {
				want = slot
			}
		}
		if s.first() != want {
			t.Errorf("seed %d: first=%d want %d", seed, s.first(), want)
			return false
		}
		return !t.Failed()
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestSlotSetPromotion pins the container transitions: small sets stay in
// the sorted-array form, crossing slotArrayMax (or seeing a slot beyond
// 16 bits) promotes to the bitmap form, and membership survives.
func TestSlotSetPromotion(t *testing.T) {
	var s slotSet
	for i := 0; i < slotArrayMax; i++ {
		s.testAndSet(i * 3)
	}
	if s.words != nil {
		t.Fatalf("set of %d elements should still be an array container", slotArrayMax)
	}
	s.testAndSet(1000)
	if s.words == nil {
		t.Fatal("crossing slotArrayMax must promote to bitmap")
	}
	if s.count() != slotArrayMax+1 {
		t.Fatalf("count after promotion = %d, want %d", s.count(), slotArrayMax+1)
	}
	for i := 0; i < slotArrayMax; i++ {
		if !s.has(i * 3) {
			t.Fatalf("slot %d lost in promotion", i*3)
		}
	}

	// A huge slot promotes immediately, regardless of cardinality.
	var wide slotSet
	wide.testAndSet(1 << 16)
	if wide.words == nil {
		t.Fatal("slot >= 1<<16 must use the bitmap form")
	}
	if !wide.has(1<<16) || wide.has(0) {
		t.Fatal("bitmap membership wrong after wide insert")
	}
}

// TestSlotSetIntersectCard checks container-wise intersection across all
// four form combinations.
func TestSlotSetIntersectCard(t *testing.T) {
	build := func(slots []int, promote bool) *slotSet {
		var s slotSet
		if promote {
			s.testAndSet(70000) // force bitmap form
			s.clear(70000)
		}
		for _, v := range slots {
			s.testAndSet(v)
		}
		return &s
	}
	a := []int{1, 5, 9, 100, 2000}
	b := []int{5, 9, 2000, 3000}
	const want = 3
	for _, pa := range []bool{false, true} {
		for _, pb := range []bool{false, true} {
			sa, sb := build(a, pa), build(b, pb)
			if got := sa.intersectCard(sb); got != want {
				t.Errorf("intersectCard(promoteA=%v, promoteB=%v) = %d, want %d", pa, pb, got, want)
			}
			if got := sb.intersectCard(sa); got != want {
				t.Errorf("reverse intersectCard(promoteA=%v, promoteB=%v) = %d, want %d", pa, pb, got, want)
			}
		}
	}
}
