// Package metrics provides the lightweight instrumentation used to produce
// the paper's maintenance figures: per-node storage cost and matching cost
// (Figure 9 a–b) and cluster throughput. Counters are safe for concurrent
// use via atomics; distributions are computed from snapshots.
package metrics

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta (delta may be negative for gauges-in-disguise; MOVE only
// uses non-negative deltas).
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Reset zeroes the counter (epoch renewals, §V allocation refresh).
func (c *Counter) Reset() { c.v.Store(0) }

// Set stores an absolute value, turning the counter into a gauge — used
// for level-style readings such as the current reallocation epoch or the
// consecutive auto-allocate failure count.
func (c *Counter) Set(v int64) { c.v.Store(v) }

// Gauge is an atomic level reading: unlike a Counter it is expected to be
// Set to the current value of something (live covers, queue depth) rather
// than accumulated. Kept as a distinct type so dumps can separate levels
// from totals.
type Gauge struct {
	v atomic.Int64
}

// Set stores the current level.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the level by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Registry is a named set of counters, gauges, and histograms.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Snapshot returns all counter values.
func (r *Registry) Snapshot() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	return out
}

// Gauges returns all gauge levels.
func (r *Registry) Gauges() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.gauges))
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	return out
}

// Histograms snapshots every registered histogram.
func (r *Registry) Histograms() map[string]HistogramSnapshot {
	r.mu.Lock()
	hs := make([]*Histogram, 0, len(r.histograms))
	names := make([]string, 0, len(r.histograms))
	for name, h := range r.histograms {
		names = append(names, name)
		hs = append(hs, h)
	}
	r.mu.Unlock()
	// Snapshots are taken outside the registry lock: quantile computation
	// over hundreds of buckets must not block hot-path Counter() lookups.
	out := make(map[string]HistogramSnapshot, len(hs))
	for i, h := range hs {
		out[names[i]] = h.Snapshot()
	}
	return out
}

// Dump is the full registry state, shaped for the debug server's /metrics
// JSON endpoint.
type Dump struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Dump snapshots every counter, gauge, and histogram.
func (r *Registry) Dump() Dump {
	return Dump{Counters: r.Snapshot(), Gauges: r.Gauges(), Histograms: r.Histograms()}
}

// Distribution summarizes a per-node load vector the way Figure 9 plots it:
// values ranked descending and normalized by a reference mean.
type Distribution struct {
	// Ranked holds the values sorted descending.
	Ranked []float64
	// Mean is the arithmetic mean of the raw values.
	Mean float64
	// Max and Min are the extreme raw values.
	Max, Min float64
	// CV is the coefficient of variation (stddev/mean), the scalar skew
	// measure used in tests; zero for an empty or zero-mean input.
	CV float64
}

// NewDistribution computes the summary of values.
func NewDistribution(values []float64) Distribution {
	d := Distribution{Ranked: append([]float64(nil), values...)}
	sort.Sort(sort.Reverse(sort.Float64Slice(d.Ranked)))
	if len(values) == 0 {
		return d
	}
	d.Max = d.Ranked[0]
	d.Min = d.Ranked[len(d.Ranked)-1]
	var sum float64
	for _, v := range values {
		sum += v
	}
	d.Mean = sum / float64(len(values))
	if d.Mean != 0 {
		var ss float64
		for _, v := range values {
			diff := v - d.Mean
			ss += diff * diff
		}
		d.CV = math.Sqrt(ss/float64(len(values))) / d.Mean
	}
	return d
}

// NormalizedBy returns Ranked divided by the given reference mean — the
// y-axis of Figure 9(a–b), which normalizes every scheme's per-node load by
// the RS scheme's average load.
func (d Distribution) NormalizedBy(refMean float64) []float64 {
	out := make([]float64, len(d.Ranked))
	if refMean == 0 {
		return out
	}
	for i, v := range d.Ranked {
		out[i] = v / refMean
	}
	return out
}
