package metrics

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// maxRelErr is the histogram's quantile error bound: one sub-bucket width,
// 1/2^subBits = 12.5%.
const maxRelErr = 1.0 / float64(subCount)

func relErr(got, want int64) float64 {
	if want == 0 {
		return math.Abs(float64(got))
	}
	return math.Abs(float64(got)-float64(want)) / float64(want)
}

func TestBucketIndexMonotone(t *testing.T) {
	// Bucket index must be non-decreasing in the value, and bounds must
	// contain the value they bucket.
	prev := -1
	for _, v := range []int64{0, 1, 2, 7, 8, 9, 15, 16, 17, 100, 1000, 4095, 4096, 1 << 20, 1 << 40, 1 << 62, math.MaxInt64} {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("bucketIndex(%d) = %d < previous %d", v, idx, prev)
		}
		if idx < 0 || idx >= numBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range [0,%d)", v, idx, numBuckets)
		}
		lo, hi := bucketBounds(idx)
		// The clamped top bucket may not contain MaxInt64; everything else
		// must contain its value.
		if idx < numBuckets-1 && (v < lo || v >= hi) {
			t.Fatalf("value %d not in bucket %d bounds [%d,%d)", v, idx, lo, hi)
		}
		prev = idx
	}
}

func TestBucketRelativeWidth(t *testing.T) {
	// Every bucket above the exact range must be narrower than maxRelErr of
	// its lower bound — the invariant the quantile error bound rests on.
	for idx := subCount; idx < numBuckets-1; idx++ {
		lo, hi := bucketBounds(idx)
		if w := float64(hi - lo); w/float64(lo) > maxRelErr+1e-9 {
			t.Fatalf("bucket %d [%d,%d): width %.0f exceeds %.1f%% of lower bound", idx, lo, hi, w, maxRelErr*100)
		}
	}
}

func TestQuantileUniform(t *testing.T) {
	// 1..100000µs uniform: the true q-th quantile is q·100000µs.
	var h Histogram
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 100_000; i++ {
		h.Observe(time.Duration(rng.Intn(100_000)+1) * time.Microsecond)
	}
	s := h.Snapshot()
	for _, tc := range []struct {
		q    float64
		want int64
	}{
		{0.50, int64(50_000 * time.Microsecond)},
		{0.90, int64(90_000 * time.Microsecond)},
		{0.95, int64(95_000 * time.Microsecond)},
		{0.99, int64(99_000 * time.Microsecond)},
	} {
		got := s.Quantile(tc.q)
		// Bucket width error plus sampling noise; 13% covers both.
		if e := relErr(got, tc.want); e > 0.13 {
			t.Errorf("q=%.2f: got %d want ~%d (rel err %.1f%%)", tc.q, got, tc.want, e*100)
		}
	}
	if s.P50NS != s.Quantile(0.50) || s.P99NS != s.Quantile(0.99) {
		t.Error("snapshot fields disagree with Quantile()")
	}
}

func TestQuantileExponential(t *testing.T) {
	// Exponential with mean 1ms: q-th quantile is -mean·ln(1-q). A skewed
	// distribution exercises the log buckets across several octaves.
	var h Histogram
	rng := rand.New(rand.NewSource(7))
	mean := float64(time.Millisecond)
	for i := 0; i < 200_000; i++ {
		h.Observe(time.Duration(rng.ExpFloat64() * mean))
	}
	s := h.Snapshot()
	for _, q := range []float64{0.50, 0.90, 0.99} {
		want := int64(-mean * math.Log(1-q))
		got := s.Quantile(q)
		if e := relErr(got, want); e > 0.13 {
			t.Errorf("q=%.2f: got %d want ~%d (rel err %.1f%%)", q, got, want, e*100)
		}
	}
}

func TestQuantilePointMass(t *testing.T) {
	// All observations identical: every quantile must land in that value's
	// bucket and the max must be exact.
	var h Histogram
	v := 3 * time.Millisecond
	for i := 0; i < 1000; i++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.MaxNS != int64(v) {
		t.Fatalf("MaxNS = %d, want exact %d", s.MaxNS, int64(v))
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := s.Quantile(q); relErr(got, int64(v)) > maxRelErr {
			t.Errorf("q=%.2f: got %d, want within %.1f%% of %d", q, got, maxRelErr*100, int64(v))
		}
	}
	if s.MeanNS != int64(v) {
		t.Errorf("MeanNS = %d, want %d", s.MeanNS, int64(v))
	}
}

func TestSmallValuesExact(t *testing.T) {
	// Values below subCount ns get dedicated buckets: quantiles are exact.
	var h Histogram
	for v := int64(0); v < subCount; v++ {
		h.Observe(time.Duration(v))
	}
	s := h.Snapshot()
	if got := s.Quantile(1); got != subCount-1 {
		t.Errorf("q=1: got %d, want exact %d", got, subCount-1)
	}
}

func TestEmptyAndNil(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Count != 0 || s.Quantile(0.5) != 0 || s.MeanNS != 0 {
		t.Errorf("empty histogram snapshot not zero: %+v", s)
	}
	var nilH *Histogram
	nilH.Observe(time.Second) // must not panic
	if nilH.Count() != 0 {
		t.Error("nil histogram Count != 0")
	}
	if s := nilH.Snapshot(); s.Count != 0 {
		t.Error("nil histogram snapshot not empty")
	}
	tm := nilH.Start()
	if d := tm.Stop(); d < 0 {
		t.Error("nil-histogram timer returned negative duration")
	}
}

func TestConcurrentRecording(t *testing.T) {
	// Hammer one histogram from many goroutines; exercised with -race in CI.
	var h Histogram
	const (
		workers = 8
		perW    = 20_000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perW; i++ {
				h.Observe(time.Duration(rng.Intn(1_000_000)))
			}
		}(int64(w))
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*perW {
		t.Fatalf("Count = %d, want %d", s.Count, workers*perW)
	}
	var total int64
	for _, c := range s.buckets {
		total += c
	}
	if total != workers*perW {
		t.Fatalf("bucket sum = %d, want %d", total, workers*perW)
	}
}

func TestSnapshotUnderLoad(t *testing.T) {
	// Snapshots taken while writers run must stay internally consistent:
	// monotone quantiles, max >= p99, count never decreasing.
	var h Histogram
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
					h.Observe(time.Duration(rng.Intn(10_000_000)))
				}
			}
		}(int64(w))
	}
	var prevCount int64
	for i := 0; i < 50; i++ {
		s := h.Snapshot()
		if s.Count < prevCount {
			t.Fatalf("snapshot %d: count went backwards (%d -> %d)", i, prevCount, s.Count)
		}
		prevCount = s.Count
		if s.Count == 0 {
			continue
		}
		if s.P50NS > s.P90NS || s.P90NS > s.P95NS || s.P95NS > s.P99NS {
			t.Fatalf("snapshot %d: quantiles not monotone: %+v", i, s)
		}
		if s.P99NS > s.MaxNS {
			t.Fatalf("snapshot %d: p99 %d exceeds max %d", i, s.P99NS, s.MaxNS)
		}
	}
	close(stop)
	wg.Wait()
}

func TestTimer(t *testing.T) {
	var h Histogram
	tm := h.Start()
	time.Sleep(2 * time.Millisecond)
	d := tm.Stop()
	if d < 2*time.Millisecond {
		t.Fatalf("timer measured %v, slept 2ms", d)
	}
	if h.Count() != 1 {
		t.Fatalf("Count = %d after one timer stop", h.Count())
	}
	if s := h.Snapshot(); s.MaxNS < int64(2*time.Millisecond) {
		t.Fatalf("MaxNS = %d, want >= 2ms", s.MaxNS)
	}
}

func TestRegistryHistograms(t *testing.T) {
	reg := NewRegistry()
	h1 := reg.Histogram("a")
	if reg.Histogram("a") != h1 {
		t.Fatal("Histogram(name) not idempotent")
	}
	h1.Observe(5 * time.Millisecond)
	reg.Counter("c").Inc()
	d := reg.Dump()
	if d.Counters["c"] != 1 {
		t.Fatalf("dump counters: %+v", d.Counters)
	}
	if snap, ok := d.Histograms["a"]; !ok || snap.Count != 1 {
		t.Fatalf("dump histograms: %+v", d.Histograms)
	}
}
