package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram is a lock-free log-linear latency histogram. Values (durations
// in nanoseconds) land in buckets whose width grows geometrically: each
// power-of-two octave is split into 2^subBits linear sub-buckets, bounding
// the relative quantile error at 1/2^subBits (12.5%). Recording is a single
// atomic add on the bucket plus atomic updates of count/sum/max, so the hot
// publish path can record per-stage latencies without contention; quantiles
// are computed from snapshots.
//
// The layout mirrors HDR-histogram's bucketing, sized for durations: 61
// octaves x 8 sub-buckets cover 1ns..~2.5y, which is every latency the §IV
// cost model can produce.
type Histogram struct {
	buckets [numBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
}

const (
	subBits    = 3
	subCount   = 1 << subBits // sub-buckets per octave
	numBuckets = subCount + (63-subBits)*subCount
)

// bucketIndex maps a nanosecond value to its bucket. Values < subCount are
// exact; larger values share an octave's sub-bucket with up to 12.5% of
// their magnitude.
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	e := bits.Len64(u) // number of significant bits
	if e <= subBits {
		return int(u)
	}
	sub := int(u>>(uint(e)-subBits-1)) - subCount
	idx := subCount + (e-subBits-1)*subCount + sub
	if idx >= numBuckets {
		return numBuckets - 1
	}
	return idx
}

// bucketBounds returns the [lower, upper) value range of a bucket.
func bucketBounds(idx int) (int64, int64) {
	if idx < subCount {
		return int64(idx), int64(idx) + 1
	}
	block := (idx - subCount) / subCount
	sub := (idx - subCount) % subCount
	lower := int64(subCount+sub) << uint(block)
	width := int64(1) << uint(block)
	return lower, lower + width
}

// Observe records one duration. Negative durations clamp to zero. Safe for
// concurrent use; nil-safe so optional instrumentation can skip the check.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Timer measures one interval into a histogram.
type Timer struct {
	h     *Histogram
	start time.Time
}

// Start begins a timing interval. Usage: tm := h.Start(); defer tm.Stop().
func (h *Histogram) Start() Timer {
	return Timer{h: h, start: time.Now()}
}

// Stop records the elapsed time and returns it. Safe on a Timer whose
// histogram is nil (the elapsed time is still returned).
func (t Timer) Stop() time.Duration {
	d := time.Since(t.start)
	t.h.Observe(d)
	return d
}

// HistogramSnapshot is a point-in-time summary of a histogram. Durations
// serialize as nanoseconds so the /metrics JSON dump is unit-unambiguous.
type HistogramSnapshot struct {
	Count int64 `json:"count"`
	SumNS int64 `json:"sum_ns"`
	// MeanNS is SumNS/Count (0 for an empty histogram).
	MeanNS int64 `json:"mean_ns"`
	P50NS  int64 `json:"p50_ns"`
	P90NS  int64 `json:"p90_ns"`
	P95NS  int64 `json:"p95_ns"`
	P99NS  int64 `json:"p99_ns"`
	// MaxNS is the exact largest recorded value (not bucket-quantized).
	MaxNS int64 `json:"max_ns"`

	buckets []int64
}

// Snapshot copies the bucket counts and computes the summary quantiles.
// Recording may proceed concurrently; the snapshot is a consistent-enough
// view (bucket copies are not atomic as a set, so Count may differ from the
// bucket sum by in-flight observations — quantiles use the bucket sum).
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	s.buckets = make([]int64, numBuckets)
	var total int64
	for i := range h.buckets {
		c := h.buckets[i].Load()
		s.buckets[i] = c
		total += c
	}
	s.Count = total
	s.SumNS = h.sum.Load()
	s.MaxNS = h.max.Load()
	if total == 0 {
		return s
	}
	s.MeanNS = s.SumNS / total
	s.P50NS = s.quantile(0.50)
	s.P90NS = s.quantile(0.90)
	s.P95NS = s.quantile(0.95)
	s.P99NS = s.quantile(0.99)
	return s
}

// Quantile estimates the q-th quantile (q in [0,1]) from the snapshot's
// buckets, interpolating at the bucket midpoint. The estimate's relative
// error is bounded by the sub-bucket width (12.5%); the top quantile is
// additionally clamped to the exact observed max.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	return s.quantile(q)
}

func (s HistogramSnapshot) quantile(q float64) int64 {
	if s.Count == 0 || len(s.buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, c := range s.buckets {
		seen += c
		if seen >= rank {
			lo, hi := bucketBounds(i)
			mid := lo + (hi-lo)/2
			if mid > s.MaxNS {
				return s.MaxNS
			}
			return mid
		}
	}
	return s.MaxNS
}
