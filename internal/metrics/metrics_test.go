package metrics

import (
	"math"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("Value = %d, want 5", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatalf("Value after reset = %d", c.Value())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("Value = %d, want 8000", c.Value())
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("docs").Add(3)
	r.Counter("docs").Inc()
	r.Counter("filters").Inc()
	snap := r.Snapshot()
	if snap["docs"] != 4 || snap["filters"] != 1 {
		t.Fatalf("Snapshot = %v", snap)
	}
}

func TestDistribution(t *testing.T) {
	d := NewDistribution([]float64{1, 5, 3})
	if d.Max != 5 || d.Min != 1 || d.Mean != 3 {
		t.Fatalf("dist = %+v", d)
	}
	if d.Ranked[0] != 5 || d.Ranked[2] != 1 {
		t.Fatalf("Ranked = %v, want descending", d.Ranked)
	}
	wantCV := math.Sqrt(8.0/3.0) / 3
	if math.Abs(d.CV-wantCV) > 1e-12 {
		t.Fatalf("CV = %v, want %v", d.CV, wantCV)
	}
}

func TestDistributionEdgeCases(t *testing.T) {
	empty := NewDistribution(nil)
	if empty.Mean != 0 || empty.CV != 0 || len(empty.Ranked) != 0 {
		t.Fatalf("empty dist = %+v", empty)
	}
	zeros := NewDistribution([]float64{0, 0})
	if zeros.CV != 0 {
		t.Fatalf("zero-mean CV = %v", zeros.CV)
	}
	uniform := NewDistribution([]float64{2, 2, 2})
	if uniform.CV != 0 {
		t.Fatalf("uniform CV = %v, want 0", uniform.CV)
	}
}

func TestDistributionSkewOrdering(t *testing.T) {
	balanced := NewDistribution([]float64{10, 11, 9, 10})
	skewed := NewDistribution([]float64{38, 1, 1, 0})
	if balanced.CV >= skewed.CV {
		t.Fatalf("balanced CV %v should be below skewed CV %v", balanced.CV, skewed.CV)
	}
}

func TestNormalizedBy(t *testing.T) {
	d := NewDistribution([]float64{4, 2})
	got := d.NormalizedBy(2)
	if got[0] != 2 || got[1] != 1 {
		t.Fatalf("NormalizedBy = %v", got)
	}
	if z := d.NormalizedBy(0); z[0] != 0 || z[1] != 0 {
		t.Fatalf("NormalizedBy(0) = %v, want zeros", z)
	}
}
