package delivery

import (
	"bytes"
	"strings"
	"testing"

	"github.com/movesys/move/internal/codec"
	"github.com/movesys/move/internal/model"
)

// FuzzDeliverFrameRoundTrip checks the two properties every delivery frame
// rests on (the same contract FuzzCodecRoundTrip enforces for the
// primitives): decode(encode(x)) == x for every frame type — hello,
// hello-ok, events, ack, bye, and the node-to-node routed batch — and
// decoding arbitrary or truncated bytes never panics (a malformed frame
// must not take down a session owner).
func FuzzDeliverFrameRoundTrip(f *testing.F) {
	f.Add("alice", uint64(0), uint64(1), uint64(1), uint64(7), uint64(9), "breaking,news", "replaced", []byte(nil))
	f.Add("", uint64(1<<40), uint64(1<<63), uint64(300), uint64(0), uint64(1<<20), "", "slow-consumer: disconnect", []byte{0x00, 0xff})
	f.Add("bob/with/slashes", uint64(2), uint64(2), uint64(128), uint64(1), uint64(1), "a", "", []byte("go test fuzz"))
	f.Add(strings.Repeat("s", 200), uint64(12345), uint64(99), uint64(7), uint64(42), uint64(43), "t1,t2,t3,t4", "idle-timeout", []byte{0xfe, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})

	f.Fuzz(func(t *testing.T, sub string, resume, docID, seq, filterA, filterB uint64, termsCSV, reason string, raw []byte) {
		terms := strings.Split(termsCSV, ",")
		filters := []model.FilterID{model.FilterID(filterA), model.FilterID(filterB)}

		// Hello.
		w := codec.NewWriter(0)
		AppendHello(w, sub, resume)
		r := mustFrame(t, w.Bytes(), frameHello)
		gotSub, gotResume, err := DecodeHello(r)
		if err != nil || gotSub != sub || gotResume != resume {
			t.Fatalf("hello: %q %d %v, want %q %d", gotSub, gotResume, err, sub, resume)
		}

		// HelloOK.
		info := HelloInfo{AckSeq: resume, NextSeq: seq, Redeliver: int(uint16(docID))}
		w = codec.NewWriter(0)
		AppendHelloOK(w, info)
		r = mustFrame(t, w.Bytes(), frameHelloOK)
		gotInfo, err := DecodeHelloOK(r)
		if err != nil || gotInfo != info {
			t.Fatalf("hello-ok: %+v %v, want %+v", gotInfo, err, info)
		}

		// Events.
		evs := []*Event{
			{Seq: seq, DocID: docID, Filters: filters, Terms: terms},
			{Seq: seq + 1, DocID: docID + 1, Terms: terms},
		}
		w = codec.NewWriter(0)
		AppendEvents(w, evs)
		r = mustFrame(t, w.Bytes(), frameEvents)
		gotEvs, err := DecodeEvents(r)
		if err != nil || len(gotEvs) != len(evs) {
			t.Fatalf("events: %d %v, want %d", len(gotEvs), err, len(evs))
		}
		for i, ev := range evs {
			got := gotEvs[i]
			if got.Seq != ev.Seq || got.DocID != ev.DocID || len(got.Filters) != len(ev.Filters) || len(got.Terms) != len(ev.Terms) {
				t.Fatalf("events[%d]: %+v, want %+v", i, got, ev)
			}
			for j := range ev.Filters {
				if got.Filters[j] != ev.Filters[j] {
					t.Fatalf("events[%d].Filters[%d]: %d, want %d", i, j, got.Filters[j], ev.Filters[j])
				}
			}
			for j := range ev.Terms {
				if got.Terms[j] != ev.Terms[j] {
					t.Fatalf("events[%d].Terms[%d]: %q, want %q", i, j, got.Terms[j], ev.Terms[j])
				}
			}
		}

		// Ack.
		w = codec.NewWriter(0)
		AppendAck(w, seq)
		r = mustFrame(t, w.Bytes(), frameAck)
		if gotSeq, err := DecodeAck(r); err != nil || gotSeq != seq {
			t.Fatalf("ack: %d %v, want %d", gotSeq, err, seq)
		}

		// Bye.
		w = codec.NewWriter(0)
		AppendBye(w, reason)
		r = mustFrame(t, w.Bytes(), frameBye)
		if gotReason, err := DecodeBye(r); err != nil || gotReason != reason {
			t.Fatalf("bye: %q %v, want %q", gotReason, err, reason)
		}

		// Routed batch (msgDeliverBatch body).
		b := &Batch{
			DocID: docID,
			Terms: terms,
			Notifs: []Notification{
				{Sub: sub, Filters: filters},
				{Sub: sub + "-2"},
			},
		}
		w = codec.NewWriter(0)
		AppendBatch(w, b)
		batchBytes := append([]byte(nil), w.Bytes()...)
		gotB, err := DecodeBatch(codec.NewReader(batchBytes))
		if err != nil || gotB.DocID != b.DocID || len(gotB.Terms) != len(b.Terms) || len(gotB.Notifs) != len(b.Notifs) {
			t.Fatalf("batch: %+v %v, want %+v", gotB, err, b)
		}
		for i := range b.Notifs {
			if gotB.Notifs[i].Sub != b.Notifs[i].Sub || len(gotB.Notifs[i].Filters) != len(b.Notifs[i].Filters) {
				t.Fatalf("batch notif[%d]: %+v, want %+v", i, gotB.Notifs[i], b.Notifs[i])
			}
		}

		// Length framing round trip.
		var buf bytes.Buffer
		framed := codec.NewWriter(0)
		AppendEvents(framed, evs)
		if err := WriteFrame(&buf, framed.Bytes()); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
		payload, err := ReadFrame(&buf)
		if err != nil || !bytes.Equal(payload, framed.Bytes()) {
			t.Fatalf("ReadFrame: %v (payload mismatch %v)", err, payload)
		}

		// Decode-never-panics: every decoder over the raw fuzz bytes from
		// several offsets, and over truncated prefixes of a valid batch —
		// the shape a torn read produces. Errors are expected; panics are
		// bugs.
		for off := 0; off <= len(raw) && off < 32; off++ {
			chew(raw[off:])
		}
		for cut := 0; cut < len(batchBytes); cut++ {
			_, _ = DecodeBatch(codec.NewReader(batchBytes[:cut]))
		}
		_, _ = ReadFrame(bytes.NewReader(raw))
	})
}

// mustFrame asserts the payload's leading frame-type byte and returns a
// reader positioned after it.
func mustFrame(t *testing.T, payload []byte, want uint8) *codec.Reader {
	t.Helper()
	r := codec.NewReader(payload)
	typ, err := r.Uint8()
	if err != nil || typ != want {
		t.Fatalf("frame type %d %v, want %d", typ, err, want)
	}
	return r
}

// chew runs every payload decoder over arbitrary bytes.
func chew(data []byte) {
	_, _, _ = DecodeHello(codec.NewReader(data))
	_, _ = DecodeHelloOK(codec.NewReader(data))
	_, _ = DecodeEvents(codec.NewReader(data))
	_, _ = DecodeAck(codec.NewReader(data))
	_, _ = DecodeBye(codec.NewReader(data))
	_, _ = DecodeBatch(codec.NewReader(data))
}
