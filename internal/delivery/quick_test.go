package delivery

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// recConn records the sequence numbers it receives, in arrival order.
type recConn struct {
	testConn
}

func (c *recConn) seqs() []uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]uint64, len(c.events))
	for i, ev := range c.events {
		out[i] = ev.Seq
	}
	return out
}

// TestReconnectResumeProperty is the redelivery contract as a property:
// across any schedule of enqueues, random cumulative ack prefixes, and
// disconnect/reconnect cycles (including stale resume acks), every fresh
// connection's stream starts at exactly the first unacked sequence number,
// is contiguous and strictly increasing, and never repeats a sequence that
// was acknowledged before the attach.
func TestReconnectResumeProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewHub(Config{QueueCap: 1 << 16, WindowCap: 1 << 16, FlushBatch: 7, Workers: 1})
		defer h.Stop()

		var (
			nextDoc   uint64
			sendTotal uint64 // events handed to the hub so far
			acked     uint64 // server-side cumulative ack cursor
		)
		rounds := 2 + rng.Intn(5)
		for r := 0; r < rounds; r++ {
			// Some events land while detached (they queue), some after the
			// attach (they flow) — split randomly.
			fresh := rng.Intn(12)
			preAttach := rng.Intn(fresh + 1)
			for i := 0; i < preAttach; i++ {
				nextDoc++
				h.Deliver("s", nextDoc, fid(nextDoc), []string{"t"})
			}

			// A stale resume ack (anything ≤ the server cursor) must not
			// rewind the cursor or cause re-delivery of acknowledged events.
			resume := uint64(0)
			if acked > 0 {
				resume = uint64(rng.Int63n(int64(acked) + 1))
			}
			conn := &recConn{}
			_, info, err := h.Attach("s", conn, resume)
			if err != nil {
				t.Logf("attach: %v", err)
				return false
			}
			if info.AckSeq != acked {
				t.Logf("round %d: hello ack %d, want %d", r, info.AckSeq, acked)
				return false
			}
			if want := int(sendTotal - acked); info.Redeliver != want {
				t.Logf("round %d: redeliver %d, want %d", r, info.Redeliver, want)
				return false
			}

			for i := preAttach; i < fresh; i++ {
				nextDoc++
				h.Deliver("s", nextDoc, fid(nextDoc), []string{"t"})
			}
			sendTotal += uint64(fresh)

			// Drain: everything unacked must arrive on this connection.
			expect := int(sendTotal - acked)
			deadline := time.Now().Add(5 * time.Second)
			for len(conn.seqs()) < expect && time.Now().Before(deadline) {
				time.Sleep(200 * time.Microsecond)
			}
			seqs := conn.seqs()
			if len(seqs) != expect {
				t.Logf("round %d: received %d events, want %d", r, len(seqs), expect)
				return false
			}
			// Resume at first unacked, contiguous, strictly increasing, no
			// acknowledged sequence repeated.
			for i, seq := range seqs {
				if want := acked + 1 + uint64(i); seq != want {
					t.Logf("round %d: seqs[%d] = %d, want %d (acked %d)", r, i, seq, want, acked)
					return false
				}
			}

			// Ack a random prefix of what this connection saw, then drop it.
			if n := len(seqs); n > 0 {
				ack := seqs[rng.Intn(n)]
				if rng.Intn(4) == 0 {
					ack = seqs[n-1] // sometimes ack everything
				}
				h.Ack("s", ack)
				if ack > acked {
					acked = ack
				}
			}
			s, _ := h.Session("s")
			s.Detach(conn)
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
