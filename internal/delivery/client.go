package delivery

import (
	"fmt"
	"net"
	"sync"

	"github.com/movesys/move/internal/codec"
)

// Client is the subscriber side of a delivery connection: dial, receive
// event batches, ack what you have consumed. Pings are answered
// transparently inside Recv.
type Client struct {
	c     net.Conn
	hello HelloInfo

	wmu sync.Mutex
}

// Dial connects to a delivery listener, sends the hello (subscriber name +
// highest sequence already consumed), and waits for the server's hello-ok.
func Dial(addr, sub string, resumeAck uint64) (*Client, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	cl, err := NewClient(c, sub, resumeAck)
	if err != nil {
		_ = c.Close()
		return nil, err
	}
	return cl, nil
}

// NewClient performs the hello handshake over an existing connection.
func NewClient(c net.Conn, sub string, resumeAck uint64) (*Client, error) {
	cl := &Client{c: c}
	if err := cl.write(func(enc *codec.Writer) { AppendHello(enc, sub, resumeAck) }); err != nil {
		return nil, fmt.Errorf("delivery: hello: %w", err)
	}
	payload, err := ReadFrame(c)
	if err != nil {
		return nil, fmt.Errorf("delivery: hello-ok: %w", err)
	}
	r := codec.NewReader(payload)
	t, err := r.Uint8()
	if err != nil || t != frameHelloOK {
		if err == nil && t == frameBye {
			reason, _ := DecodeBye(r)
			return nil, fmt.Errorf("delivery: rejected: %s", reason)
		}
		return nil, fmt.Errorf("delivery: expected hello-ok, got frame %d", t)
	}
	info, err := DecodeHelloOK(r)
	if err != nil {
		return nil, fmt.Errorf("delivery: hello-ok: %w", err)
	}
	cl.hello = info
	return cl, nil
}

// Hello returns the server's attach response: the resumed ack cursor, the
// next fresh sequence number, and how many events are being redelivered.
func (c *Client) Hello() HelloInfo { return c.hello }

// Msg is one received server frame.
type Msg struct {
	// Events is non-nil for an events frame.
	Events []*Event
	// Bye holds the close reason when the server said goodbye; the
	// connection is done after this message.
	Bye string
}

// Recv blocks for the next events or bye frame, answering pings inline.
func (c *Client) Recv() (Msg, error) {
	for {
		payload, err := ReadFrame(c.c)
		if err != nil {
			return Msg{}, err
		}
		r := codec.NewReader(payload)
		t, err := r.Uint8()
		if err != nil {
			return Msg{}, err
		}
		switch t {
		case frameEvents:
			evs, err := DecodeEvents(r)
			if err != nil {
				return Msg{}, err
			}
			return Msg{Events: evs}, nil
		case framePing:
			if err := c.write(func(enc *codec.Writer) { enc.Uint8(framePong) }); err != nil {
				return Msg{}, err
			}
		case frameBye:
			reason, err := DecodeBye(r)
			if err != nil {
				return Msg{}, err
			}
			return Msg{Bye: reason}, nil
		default:
			return Msg{}, fmt.Errorf("delivery: unexpected frame %d", t)
		}
	}
}

// Ack sends a cumulative ack: every event with Seq <= seq is consumed.
func (c *Client) Ack(seq uint64) error {
	return c.write(func(enc *codec.Writer) { AppendAck(enc, seq) })
}

// Close closes the connection.
func (c *Client) Close() error { return c.c.Close() }

func (c *Client) write(build func(enc *codec.Writer)) error {
	enc := codec.GetWriter()
	defer codec.PutWriter(enc)
	build(enc)
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return WriteFrame(c.c, enc.Bytes())
}
