// Package delivery implements the end-to-end subscriber delivery tier: the
// last mile from a deduplicated match set to the subscribers that asked for
// it. Each subscriber has one Session — a bounded queue of matched-document
// notifications, a per-session monotonic sequence numbering, and a bounded
// replay window of sent-but-unacked events — owned by the Hub on the home
// node of "subscriber/<name>". Sessions survive disconnects: a reconnect
// resumes at the first unacked sequence number and the window is redelivered
// (at-least-once). When a consumer cannot keep up, a configurable
// slow-consumer policy (drop-oldest, coalesce-by-doc, disconnect) decides
// what the bounded queue sheds, and every shed event is counted and reported
// so delivery loss is always accounted for, never silent.
//
// The hub is built for 1M+ live sessions on one node (DESIGN.md §16): the
// session registry is lock-striped into power-of-two shards, each shard has
// its own ready ring that flush workers drain (stealing from sibling shards
// when their own is dry), the warm enqueue→flush path recycles Event objects
// through a pool so steady-state delivery allocates nothing, and connections
// that implement Flusher coalesce consecutive event frames into one syscall.
package delivery

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/movesys/move/internal/metrics"
	"github.com/movesys/move/internal/model"
)

// Policy selects what a subscriber's bounded delivery queue sheds when it
// overflows (slow-consumer handling, DESIGN.md §14).
type Policy int

const (
	// DropOldest evicts the oldest queued (not-yet-sent) event to admit the
	// new one. Sent-but-unacked events are never evicted by this policy.
	DropOldest Policy = iota
	// CoalesceByDoc merges notifications for the same document into one
	// queued event (filter-ID union) at enqueue time — one notification per
	// document per subscriber. On overflow with no same-document event to
	// merge into, it falls back to DropOldest.
	CoalesceByDoc
	// Disconnect terminates the session on overflow: the connection is told
	// why and closed, every queued and unacked event is dropped (and
	// accounted), and further notifications are dropped until the
	// subscriber reconnects.
	Disconnect
)

// String returns the flag spelling of the policy.
func (p Policy) String() string {
	switch p {
	case DropOldest:
		return "drop-oldest"
	case CoalesceByDoc:
		return "coalesce-by-doc"
	case Disconnect:
		return "disconnect"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParsePolicy parses a flag spelling ("drop-oldest", "coalesce-by-doc",
// "disconnect").
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "drop-oldest":
		return DropOldest, nil
	case "coalesce-by-doc":
		return CoalesceByDoc, nil
	case "disconnect":
		return Disconnect, nil
	default:
		return 0, fmt.Errorf("delivery: unknown policy %q", s)
	}
}

// State is a session's lifecycle state.
type State int

const (
	// StateDetached: no connection; the queue accumulates for a reconnect.
	StateDetached State = iota
	// StateAttached: connection live, events flowing.
	StateAttached
	// StateStalled: connection live but writes are timing out; the janitor
	// retries the flush on its next sweep while the queue absorbs (and the
	// policy sheds) the backlog.
	StateStalled
	// StateClosed: terminated by the Disconnect policy. Notifications are
	// dropped (and counted) until the subscriber reconnects.
	StateClosed
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateDetached:
		return "detached"
	case StateAttached:
		return "attached"
	case StateStalled:
		return "stalled"
	case StateClosed:
		return "closed"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Drop reasons passed to Config.OnDrop.
const (
	// DropReasonOldest: evicted from a full queue by DropOldest (or the
	// CoalesceByDoc fallback).
	DropReasonOldest = "drop-oldest"
	// DropReasonDisconnect: shed when the Disconnect policy killed the
	// session (queued and unacked events alike).
	DropReasonDisconnect = "disconnect"
	// DropReasonClosed: arrived while the session was policy-closed.
	DropReasonClosed = "closed"
)

// ErrStalled marks a connection write that timed out but left the stream
// usable, so the session parks in StateStalled and the janitor retries.
// Transports whose stream a timed-out write corrupts (TCP: a partial frame
// may be on the wire) must return a different error so the session detaches
// instead.
var ErrStalled = errors.New("delivery: consumer stalled")

// Event is one matched-document notification bound for a subscriber. Seq is
// zero while queued and assigned from the session's monotonic counter when
// the event is first sent.
//
// Events are pooled: once every copy a subscriber could receive has been
// acknowledged, the hub recycles the object. Conn implementations must not
// retain *Event pointers (or their Filters slices) past the SendEvents call —
// copy what outlives the call.
type Event struct {
	Seq     uint64
	DocID   uint64
	Filters []model.FilterID
	Terms   []string

	enqueuedAt time.Time
	sentAt     time.Time
}

// HelloInfo is what the server tells a subscriber on attach: where the
// cumulative ack cursor landed after applying the client's resume ack, the
// next fresh sequence number, and how many unacked events are about to be
// redelivered.
type HelloInfo struct {
	AckSeq    uint64
	NextSeq   uint64
	Redeliver int
}

// Conn is the server-side sink of one subscriber connection. Implementations
// must be safe for concurrent use (the flush workers and the janitor both
// write). SendEvents may return ErrStalled (wrapped) to signal a retryable
// write timeout; any other error detaches the session. Events handed to
// SendEvents are owned by the hub and recycled after acknowledgement: a Conn
// must not retain the slice, the *Event pointers, or their Filters slices
// beyond the call.
type Conn interface {
	SendHello(info HelloInfo) error
	SendEvents(evs []*Event) error
	SendPing() error
	SendBye(reason string) error
	Close() error
}

// Flusher is implemented by Conns that buffer event frames (the coalescing
// TCP writer). The hub calls Flush once at the end of every flush round so
// frames buffered across consecutive SendEvents calls hit the wire in one
// syscall. A Flush error is a hard connection error: the session detaches.
type Flusher interface {
	Flush() error
}

// DefaultShards is the default power-of-two shard count for the session
// registry and ready rings, mirroring internal/index's striping.
const DefaultShards = 32

// DefaultCoalesceBytes is the default flush threshold for coalescing
// connection writers: a buffered conn flushes on its own once this many
// bytes are pending, bounding memory and latency between hub flush rounds.
const DefaultCoalesceBytes = 64 << 10

// Config parameterizes a Hub.
type Config struct {
	// QueueCap bounds each session's not-yet-sent queue; overflow invokes
	// Policy. Default 256.
	QueueCap int
	// Policy is the slow-consumer policy. Default DropOldest.
	Policy Policy
	// WindowCap bounds the sent-but-unacked replay window. A full window
	// pauses sending (flow control), letting the queue absorb the backlog
	// until the policy sheds it. Default 1024.
	WindowCap int
	// FlushBatch caps events per SendEvents call. Default 64.
	FlushBatch int
	// Workers is the flush worker-pool size. Default GOMAXPROCS; negative
	// disables the pool entirely (tests drive Session.flush directly).
	Workers int
	// Shards is the session-registry/ready-ring stripe count, rounded up to
	// a power of two. Default DefaultShards.
	Shards int
	// CoalesceBytes is the flush threshold handed to coalescing connection
	// writers (Server). Default DefaultCoalesceBytes.
	CoalesceBytes int
	// FlushDelay, when positive, is the coalescing window: an enqueue on a
	// session with fewer than FlushBatch pending events defers the flush
	// for up to ~2x FlushDelay so more events share one frame batch and one
	// syscall. Zero flushes immediately (lowest latency, least coalescing).
	FlushDelay time.Duration
	// HeartbeatEvery is the janitor cadence: pings are sent and idle/stall
	// checks run every interval. Zero disables the janitor (tests drive
	// Sweep directly).
	HeartbeatEvery time.Duration
	// IdleTimeout detaches a connection with no inbound activity (hello,
	// ack, pong) for this long. Default 4x HeartbeatEvery.
	IdleTimeout time.Duration
	// Metrics receives the delivery.* counters and histograms; nil creates
	// a private registry.
	Metrics *metrics.Registry
	// Clock overrides time.Now (tests).
	Clock func() time.Time
	// OnDrop, if set, is invoked for every event shed by a policy — the
	// accounting hook the oracle-equivalence suite uses to prove no loss is
	// silent.
	OnDrop func(sub string, docID uint64, reason string)
}

// shard is one stripe of the session registry plus its ready ring: mu guards
// the sub→session map, rmu the ring of sessions awaiting a flush worker, and
// dmu the deferred list of sessions waiting out a FlushDelay coalescing
// window.
type shard struct {
	mu       sync.RWMutex
	sessions map[string]*Session

	rmu   sync.Mutex
	ring  []*Session
	rhead int

	dmu      sync.Mutex
	deferred []*Session
}

// Hub owns every subscriber session on one node: it enqueues notifications,
// schedules flushes over a fixed worker pool (no per-session goroutines, so
// 1M+ concurrent sessions stay cheap), and sweeps heartbeats and idle
// timeouts. Sessions are striped across power-of-two shards; each worker
// drains its home shard's ready ring first and steals from sibling shards
// when idle.
type Hub struct {
	cfg Config
	reg *metrics.Registry
	now func() time.Time

	shards    []*shard
	shardMask uint32

	// Worker parking: idle workers push a buffered(1) wake channel onto
	// parked and block on it; schedulers pop one and signal. readyN counts
	// ring entries across all shards, nparked mirrors len(parked) so the
	// all-workers-busy enqueue path skips the park lock entirely.
	parkMu  sync.Mutex
	parked  []chan struct{}
	nparked atomic.Int32
	readyN  atomic.Int64
	stopped atomic.Bool

	wg     sync.WaitGroup
	stopCh chan struct{}

	eventPool   sync.Pool // *Event
	batchPool   sync.Pool // *[]*Event
	scratchPool sync.Pool // *deliverScratch

	sessionsG      *metrics.Counter
	attachedG      *metrics.Counter
	enqueuedC      *metrics.Counter
	deliveredC     *metrics.Counter
	redeliveredC   *metrics.Counter
	ackedC         *metrics.Counter
	dropOldestC    *metrics.Counter
	dropDisconnC   *metrics.Counter
	coalescedC     *metrics.Counter
	idleKicksC     *metrics.Counter
	replacedC      *metrics.Counter
	flushFramesC   *metrics.Counter
	flushSyscallsC *metrics.Counter
	flushBytesC    *metrics.Counter
	shardsGauge    *metrics.Gauge
	hQueueDepth    *metrics.Histogram
	hAckLatency    *metrics.Histogram
	hFlushBatch    *metrics.Histogram
	hFlushFrames   *metrics.Histogram
	hFlushBytes    *metrics.Histogram
}

// NewHub builds and starts a hub: Workers flush goroutines plus, when
// HeartbeatEvery > 0, one janitor goroutine, plus, when FlushDelay > 0, one
// coalescer goroutine draining deferred sessions.
func NewHub(cfg Config) *Hub {
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 256
	}
	if cfg.WindowCap <= 0 {
		cfg.WindowCap = 1024
	}
	if cfg.FlushBatch <= 0 {
		cfg.FlushBatch = 64
	}
	if cfg.Workers == 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Shards <= 0 {
		cfg.Shards = DefaultShards
	}
	cfg.Shards = ceilPow2(cfg.Shards)
	if cfg.CoalesceBytes <= 0 {
		cfg.CoalesceBytes = DefaultCoalesceBytes
	}
	if cfg.IdleTimeout <= 0 && cfg.HeartbeatEvery > 0 {
		cfg.IdleTimeout = 4 * cfg.HeartbeatEvery
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	now := cfg.Clock
	if now == nil {
		now = time.Now
	}
	h := &Hub{
		cfg:            cfg,
		reg:            reg,
		now:            now,
		shards:         make([]*shard, cfg.Shards),
		shardMask:      uint32(cfg.Shards - 1),
		stopCh:         make(chan struct{}),
		sessionsG:      reg.Counter("delivery.sessions"),
		attachedG:      reg.Counter("delivery.attached"),
		enqueuedC:      reg.Counter("delivery.enqueued"),
		deliveredC:     reg.Counter("delivery.delivered"),
		redeliveredC:   reg.Counter("delivery.redelivered"),
		ackedC:         reg.Counter("delivery.acked"),
		dropOldestC:    reg.Counter("delivery.drops.oldest"),
		dropDisconnC:   reg.Counter("delivery.drops.disconnect"),
		coalescedC:     reg.Counter("delivery.coalesced"),
		idleKicksC:     reg.Counter("delivery.kicks.idle"),
		replacedC:      reg.Counter("delivery.kicks.replaced"),
		flushFramesC:   reg.Counter("delivery.flush.frames"),
		flushSyscallsC: reg.Counter("delivery.flush.syscalls"),
		flushBytesC:    reg.Counter("delivery.flush.bytes.total"),
		shardsGauge:    reg.Gauge("delivery.shards"),
		hQueueDepth:    reg.Histogram("delivery.queue.depth"),
		hAckLatency:    reg.Histogram("delivery.ack.latency"),
		hFlushBatch:    reg.Histogram("delivery.flush.batch"),
		hFlushFrames:   reg.Histogram("delivery.flush.frames_per_syscall"),
		hFlushBytes:    reg.Histogram("delivery.flush.bytes"),
	}
	for i := range h.shards {
		h.shards[i] = &shard{sessions: make(map[string]*Session)}
	}
	h.shardsGauge.Set(int64(cfg.Shards))
	h.batchPool.New = func() any {
		b := make([]*Event, 0, cfg.FlushBatch)
		return &b
	}
	if cfg.Workers > 0 {
		for i := 0; i < cfg.Workers; i++ {
			h.wg.Add(1)
			go h.worker(i)
		}
	}
	if cfg.HeartbeatEvery > 0 {
		h.wg.Add(1)
		go h.janitor()
	}
	if cfg.FlushDelay > 0 {
		h.wg.Add(1)
		go h.coalescer()
	}
	return h
}

// ceilPow2 rounds n up to the next power of two (n >= 1).
func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// shardIndex stripes a subscriber name across the shards (FNV-1a, the same
// hash discipline as internal/index's term shards).
func (h *Hub) shardIndex(sub string) uint32 {
	hash := uint32(2166136261)
	for i := 0; i < len(sub); i++ {
		hash ^= uint32(sub[i])
		hash *= 16777619
	}
	return hash & h.shardMask
}

// Metrics exposes the hub's registry.
func (h *Hub) Metrics() *metrics.Registry { return h.reg }

// Policy returns the configured slow-consumer policy.
func (h *Hub) Policy() Policy { return h.cfg.Policy }

// Shards returns the (power-of-two) shard count the hub runs with.
func (h *Hub) Shards() int { return len(h.shards) }

// CoalesceBytes returns the flush threshold coalescing writers should use.
func (h *Hub) CoalesceBytes() int { return h.cfg.CoalesceBytes }

// ShardSessions returns the per-shard session counts — the striping balance
// view /healthz and tests use.
func (h *Hub) ShardSessions() []int {
	counts := make([]int, len(h.shards))
	for i, sh := range h.shards {
		sh.mu.RLock()
		counts[i] = len(sh.sessions)
		sh.mu.RUnlock()
	}
	return counts
}

// Stop terminates the workers, janitor, and coalescer, drains every shard's
// ready ring, and closes every attached connection. Queued events are
// retained in memory until the hub is garbage-collected; Stop is a
// process-shutdown path, not a flush barrier.
func (h *Hub) Stop() {
	if !h.stopped.CompareAndSwap(false, true) {
		return
	}
	// Barrier: every schedule() checks stopped inside the ring lock, so
	// after locking and releasing each ring here, any concurrent push has
	// either landed (and will be drained below) or seen stopped and bailed.
	for _, sh := range h.shards {
		sh.rmu.Lock()
		sh.rmu.Unlock() //nolint:staticcheck // empty critical section is the barrier
	}
	close(h.stopCh)
	// Wake every parked worker so it can observe stopped and exit; workers
	// drain the remaining ready entries on their way out.
	h.parkMu.Lock()
	for _, c := range h.parked {
		c <- struct{}{}
	}
	h.parked = nil
	h.nparked.Store(0)
	h.parkMu.Unlock()

	for _, sh := range h.shards {
		sh.mu.RLock()
		sessions := make([]*Session, 0, len(sh.sessions))
		for _, s := range sh.sessions {
			sessions = append(sessions, s)
		}
		sh.mu.RUnlock()
		for _, s := range sessions {
			s.mu.Lock()
			conn := s.detachLocked()
			s.mu.Unlock()
			if conn != nil {
				_ = conn.Close()
			}
		}
	}
	h.wg.Wait()
	// With the workers gone, clear whatever the rings and deferred lists
	// still hold so no session is left marked scheduled/deferred.
	for _, sh := range h.shards {
		sh.rmu.Lock()
		for i := sh.rhead; i < len(sh.ring); i++ {
			sh.ring[i].scheduled.Store(false)
			sh.ring[i] = nil
			h.readyN.Add(-1)
		}
		sh.ring, sh.rhead = sh.ring[:0], 0
		sh.rmu.Unlock()
		sh.dmu.Lock()
		for i, s := range sh.deferred {
			s.deferred.Store(false)
			sh.deferred[i] = nil
		}
		sh.deferred = sh.deferred[:0]
		sh.dmu.Unlock()
	}
}

// session returns the subscriber's session, creating a detached one on first
// reference — notifications routed here before the subscriber ever connects
// queue up for its first attach.
func (h *Hub) session(sub string) *Session {
	sh := h.shards[h.shardIndex(sub)]
	sh.mu.RLock()
	s := sh.sessions[sub]
	sh.mu.RUnlock()
	if s != nil {
		return s
	}
	sh.mu.Lock()
	s = h.createLocked(sh, sub)
	sh.mu.Unlock()
	return s
}

// createLocked adds (or finds) sub's session in sh. Requires sh.mu held for
// writing.
func (h *Hub) createLocked(sh *shard, sub string) *Session {
	if s := sh.sessions[sub]; s != nil {
		return s
	}
	s := &Session{hub: h, sub: sub, shard: sh}
	if h.cfg.Policy == CoalesceByDoc {
		s.byDoc = make(map[uint64]*Event)
	}
	sh.sessions[sub] = s
	// Add, not Set: several hubs may share one registry (one per cluster
	// node), and the counter is the cluster-wide session total.
	h.sessionsG.Add(1)
	return s
}

// Session returns the subscriber's session if one exists.
func (h *Hub) Session(sub string) (*Session, bool) {
	sh := h.shards[h.shardIndex(sub)]
	sh.mu.RLock()
	s, ok := sh.sessions[sub]
	sh.mu.RUnlock()
	return s, ok
}

// Deliver enqueues one notification for a subscriber: the document matched
// at least one of the subscriber's filters. Terms may alias the decoded wire
// payload — events never mutate it.
func (h *Hub) Deliver(sub string, docID uint64, filters []model.FilterID, terms []string) {
	h.session(sub).enqueue(docID, filters, terms)
}

// deliverScratch is the pooled workspace of one DeliverBatch call: bySh
// groups notification indexes by shard, sess holds the resolved session per
// notification.
type deliverScratch struct {
	bySh [][]int32
	sess []*Session
}

// DeliverBatch enqueues one document's notifications for many subscribers at
// once — the session-owner side of a msgDeliverBatch frame. Lookups are
// grouped by registry shard so a thousand-subscriber fan-out takes one
// read-lock acquisition per touched shard instead of one per subscriber.
func (h *Hub) DeliverBatch(docID uint64, terms []string, notifs []Notification) {
	if len(notifs) == 0 {
		return
	}
	var sc *deliverScratch
	if v := h.scratchPool.Get(); v != nil {
		sc = v.(*deliverScratch)
	} else {
		sc = &deliverScratch{}
	}
	if len(sc.bySh) < len(h.shards) {
		sc.bySh = make([][]int32, len(h.shards))
	}
	if cap(sc.sess) < len(notifs) {
		sc.sess = make([]*Session, len(notifs))
	}
	sess := sc.sess[:len(notifs)]
	for i := range notifs {
		si := h.shardIndex(notifs[i].Sub)
		sc.bySh[si] = append(sc.bySh[si], int32(i))
	}
	for si := range sc.bySh {
		idxs := sc.bySh[si]
		if len(idxs) == 0 {
			continue
		}
		sh := h.shards[si]
		miss := false
		sh.mu.RLock()
		for _, i := range idxs {
			s := sh.sessions[notifs[i].Sub]
			sess[i] = s
			if s == nil {
				miss = true
			}
		}
		sh.mu.RUnlock()
		if miss {
			sh.mu.Lock()
			for _, i := range idxs {
				if sess[i] == nil {
					sess[i] = h.createLocked(sh, notifs[i].Sub)
				}
			}
			sh.mu.Unlock()
		}
		sc.bySh[si] = idxs[:0]
	}
	for i := range notifs {
		sess[i].enqueue(docID, notifs[i].Filters, terms)
		sess[i] = nil
	}
	h.scratchPool.Put(sc)
}

// Ack applies a cumulative ack for a subscriber (in-process sinks that have
// no read loop of their own).
func (h *Hub) Ack(sub string, seq uint64) {
	if s, ok := h.Session(sub); ok {
		s.Ack(seq)
	}
}

// ObserveFlush records one physical connection write that carried frames
// coalesced frames over bytes wire bytes. Coalescing writers (the server's
// wireConn, bench sinks) call it once per syscall-sized flush so
// delivery.flush.frames_per_syscall and delivery.flush.bytes prove the
// batching.
func (h *Hub) ObserveFlush(frames, bytes int) {
	if frames <= 0 {
		return
	}
	h.flushFramesC.Add(int64(frames))
	h.flushSyscallsC.Inc()
	h.flushBytesC.Add(int64(bytes))
	// The ratio histogram stores milli-frames so sub-integer percentiles
	// survive the log bucketing: 1 frame/syscall → 1000.
	h.hFlushFrames.Observe(time.Duration(frames) * 1000)
	h.hFlushBytes.Observe(time.Duration(bytes))
}

// FlushStats returns the aggregate coalescing ratio (frames per physical
// write) and total frames/syscalls/bytes recorded by ObserveFlush.
func (h *Hub) FlushStats() (framesPerSyscall float64, frames, syscalls, bytes int64) {
	frames = h.flushFramesC.Value()
	syscalls = h.flushSyscallsC.Value()
	bytes = h.flushBytesC.Value()
	if syscalls > 0 {
		framesPerSyscall = float64(frames) / float64(syscalls)
	}
	return framesPerSyscall, frames, syscalls, bytes
}

// Attach binds a connection to the subscriber's session, applies the
// client's resume ack, sends the hello response on the connection, stages
// every still-unacked event for redelivery, and starts flushing. An existing
// connection is replaced (told "replaced" and closed) — last writer wins,
// the standard relay takeover rule.
func (h *Hub) Attach(sub string, conn Conn, resumeAck uint64) (*Session, HelloInfo, error) {
	s := h.session(sub)
	s.mu.Lock()
	old := s.detachLocked()
	if s.state == StateClosed {
		// A reconnect revives a policy-closed session; the dropped range is
		// visible to the client as the gap between its resume ack and
		// HelloInfo.NextSeq.
		s.state = StateDetached
	}
	s.ackLocked(resumeAck)
	s.resend = append(s.resend[:0], s.window[s.whead:]...)
	s.conn = conn
	s.state = StateAttached
	s.touchLocked()
	s.lastPing = s.hub.now()
	info := HelloInfo{AckSeq: s.ackSeq, NextSeq: s.sendSeq + 1, Redeliver: len(s.resend)}
	s.mu.Unlock()
	h.attachedG.Add(1)

	if old != nil {
		_ = old.SendBye("replaced")
		_ = old.Close()
		h.replacedC.Inc()
	}
	if err := conn.SendHello(info); err != nil {
		s.mu.Lock()
		if s.conn == conn {
			_ = s.detachLocked()
		}
		s.mu.Unlock()
		return nil, HelloInfo{}, fmt.Errorf("delivery: hello to %q: %w", sub, err)
	}
	h.schedule(s)
	return s, info, nil
}

// schedule pushes a session onto its shard's ready ring. The scheduled flag
// keeps at most one ring entry per session; it is cleared by the worker
// before the flush, so an enqueue racing a flush re-schedules rather than
// getting lost.
func (h *Hub) schedule(s *Session) {
	if !s.scheduled.CompareAndSwap(false, true) {
		return
	}
	sh := s.shard
	sh.rmu.Lock()
	if h.stopped.Load() {
		sh.rmu.Unlock()
		s.scheduled.Store(false)
		return
	}
	sh.ring = append(sh.ring, s)
	h.readyN.Add(1)
	sh.rmu.Unlock()
	h.wakeOne()
}

// deferSchedule parks a session on its shard's deferred list for the
// coalescer to schedule within ~2x FlushDelay — the deadline half of the
// "size- and deadline-bounded" coalescing rule. Falls back to an immediate
// schedule when the hub is stopping or has no coalescer.
func (h *Hub) deferSchedule(s *Session) {
	if !s.deferred.CompareAndSwap(false, true) {
		return
	}
	sh := s.shard
	sh.dmu.Lock()
	if h.stopped.Load() {
		sh.dmu.Unlock()
		s.deferred.Store(false)
		return
	}
	sh.deferred = append(sh.deferred, s)
	sh.dmu.Unlock()
}

// wakeOne unparks one idle worker, if any. The nparked fast path makes this
// a single atomic load when every worker is already busy — the steady state
// at high flush rates, where the old readyCond.Signal took the mutex every
// time.
func (h *Hub) wakeOne() {
	if h.nparked.Load() == 0 {
		return
	}
	h.parkMu.Lock()
	n := len(h.parked)
	if n == 0 {
		h.parkMu.Unlock()
		return
	}
	c := h.parked[n-1]
	h.parked[n-1] = nil
	h.parked = h.parked[:n-1]
	h.nparked.Store(int32(n - 1))
	h.parkMu.Unlock()
	c <- struct{}{}
}

// popReady pops the next ready session, scanning the worker's home shard
// first and then stealing round-robin from sibling shards. Returns nil when
// every ring is empty.
func (h *Hub) popReady(home int) *Session {
	if h.readyN.Load() == 0 {
		return nil
	}
	n := len(h.shards)
	for i := 0; i < n; i++ {
		sh := h.shards[(home+i)&int(h.shardMask)]
		sh.rmu.Lock()
		if sh.rhead < len(sh.ring) {
			s := sh.ring[sh.rhead]
			sh.ring[sh.rhead] = nil
			sh.rhead++
			if sh.rhead == len(sh.ring) {
				sh.ring, sh.rhead = sh.ring[:0], 0
			}
			h.readyN.Add(-1)
			sh.rmu.Unlock()
			return s
		}
		sh.rmu.Unlock()
	}
	return nil
}

// worker is one flush goroutine: drain the home shard, steal when dry, park
// when everything is dry. The park protocol re-checks readyN after
// registering so a concurrent schedule (whose nparked read raced the
// registration) is never lost, and re-checks stopped so shutdown never
// leaves a worker parked.
func (h *Hub) worker(home int) {
	defer h.wg.Done()
	wake := make(chan struct{}, 1)
	for {
		if s := h.popReady(home); s != nil {
			s.scheduled.Store(false)
			s.flush()
			continue
		}
		if h.stopped.Load() {
			return
		}
		h.parkMu.Lock()
		h.parked = append(h.parked, wake)
		h.nparked.Store(int32(len(h.parked)))
		if h.readyN.Load() > 0 || h.stopped.Load() {
			// Work (or shutdown) arrived between the empty scan and the
			// registration: unpark ourselves. We still hold parkMu, so no
			// wakeOne can have popped (or signaled) our channel.
			h.parked = h.parked[:len(h.parked)-1]
			h.nparked.Store(int32(len(h.parked)))
			h.parkMu.Unlock()
			continue
		}
		h.parkMu.Unlock()
		<-wake
	}
}

func (h *Hub) janitor() {
	defer h.wg.Done()
	t := time.NewTicker(h.cfg.HeartbeatEvery)
	defer t.Stop()
	for {
		select {
		case <-h.stopCh:
			return
		case <-t.C:
			h.Sweep()
		}
	}
}

// coalescer drains the shards' deferred lists every FlushDelay, scheduling
// each parked session. An event deferred right after a tick waits at most
// ~2x FlushDelay before its flush is scheduled.
func (h *Hub) coalescer() {
	defer h.wg.Done()
	t := time.NewTicker(h.cfg.FlushDelay)
	defer t.Stop()
	var batch []*Session
	for {
		select {
		case <-h.stopCh:
			return
		case <-t.C:
			batch = h.drainDeferred(batch)
		}
	}
}

// drainDeferred runs one coalescer tick: every deferred session is cleared
// and scheduled. scratch is reused across ticks; the (possibly grown) slice
// is returned.
func (h *Hub) drainDeferred(scratch []*Session) []*Session {
	for _, sh := range h.shards {
		sh.dmu.Lock()
		scratch = append(scratch[:0], sh.deferred...)
		for i := range sh.deferred {
			sh.deferred[i] = nil
		}
		sh.deferred = sh.deferred[:0]
		sh.dmu.Unlock()
		for _, s := range scratch {
			s.deferred.Store(false)
			h.schedule(s)
		}
	}
	return scratch[:0]
}

// Sweep runs one janitor pass: idle connections are kicked (detached with a
// bye — the queue survives for a reconnect), stalled sessions get a flush
// retry, and live connections quiet for a heartbeat interval are pinged.
// Exported so tests (and hubs with no janitor goroutine) can drive it.
func (h *Hub) Sweep() {
	now := h.now()
	for _, sh := range h.shards {
		sh.mu.RLock()
		sessions := make([]*Session, 0, len(sh.sessions))
		for _, s := range sh.sessions {
			sessions = append(sessions, s)
		}
		sh.mu.RUnlock()
		for _, s := range sessions {
			var kicked, ping Conn
			s.mu.Lock()
			switch s.state {
			case StateAttached, StateStalled:
				if h.cfg.IdleTimeout > 0 && now.Sub(s.lastActivity) > h.cfg.IdleTimeout {
					kicked = s.detachLocked()
					break
				}
				if s.state == StateStalled {
					s.state = StateAttached
				}
				if h.cfg.HeartbeatEvery > 0 && now.Sub(s.lastPing) >= h.cfg.HeartbeatEvery {
					s.lastPing = now
					ping = s.conn
				}
			}
			retry := s.state == StateAttached && s.flushableLocked()
			s.mu.Unlock()
			if kicked != nil {
				h.idleKicksC.Inc()
				_ = kicked.SendBye("idle-timeout")
				_ = kicked.Close()
				continue
			}
			if ping != nil {
				if err := ping.SendPing(); err != nil {
					s.mu.Lock()
					if s.conn == ping {
						_ = s.detachLocked()
					}
					s.mu.Unlock()
					_ = ping.Close()
					continue
				}
			}
			if retry {
				h.schedule(s)
			}
		}
	}
}

// SessionSnapshot is a point-in-time view of one session, for tests,
// /healthz, and the oracle accounting suite (QueuedDocs and WindowDocs are
// the "pending in bounded queues" side of the delivery-equivalence union).
type SessionSnapshot struct {
	Sub     string
	State   State
	AckSeq  uint64
	SendSeq uint64
	Queued  int
	Window  int
	// QueuedDocs lists the DocID of every not-yet-sent event, oldest first.
	QueuedDocs []uint64
	// WindowDocs lists the DocID of every sent-but-unacked event, in
	// sequence order.
	WindowDocs []uint64
}

// Snapshot returns a session's snapshot.
func (h *Hub) Snapshot(sub string) (SessionSnapshot, bool) {
	s, ok := h.Session(sub)
	if !ok {
		return SessionSnapshot{}, false
	}
	return s.snapshot(), true
}

// Each calls fn with a snapshot of every session.
func (h *Hub) Each(fn func(SessionSnapshot)) {
	for _, sh := range h.shards {
		sh.mu.RLock()
		sessions := make([]*Session, 0, len(sh.sessions))
		for _, s := range sh.sessions {
			sessions = append(sessions, s)
		}
		sh.mu.RUnlock()
		for _, s := range sessions {
			fn(s.snapshot())
		}
	}
}

// SessionCount returns the number of sessions (attached or not).
func (h *Hub) SessionCount() int {
	total := 0
	for _, sh := range h.shards {
		sh.mu.RLock()
		total += len(sh.sessions)
		sh.mu.RUnlock()
	}
	return total
}

// Pending returns the total number of queued plus unacked events across all
// sessions — the drain gauge /healthz exposes.
func (h *Hub) Pending() int {
	total := 0
	for _, sh := range h.shards {
		sh.mu.RLock()
		sessions := make([]*Session, 0, len(sh.sessions))
		for _, s := range sh.sessions {
			sessions = append(sessions, s)
		}
		sh.mu.RUnlock()
		for _, s := range sessions {
			s.mu.Lock()
			total += len(s.queue) - s.qhead + len(s.window) - s.whead
			s.mu.Unlock()
		}
	}
	return total
}

// getEvent takes a recycled Event from the pool (or allocates the pool's
// first copies). Fields the caller does not set are zero.
func (h *Hub) getEvent() *Event {
	if v := h.eventPool.Get(); v != nil {
		return v.(*Event)
	}
	return &Event{}
}

// putEvent recycles an Event. Callers must guarantee no other goroutine can
// still reach it: the event was either never sent (queue drop) or every
// SendEvents that carried it has returned and the subscriber acked it.
func (h *Hub) putEvent(ev *Event) {
	ev.Seq = 0
	ev.DocID = 0
	ev.Filters = ev.Filters[:0]
	ev.Terms = nil
	ev.enqueuedAt = time.Time{}
	ev.sentAt = time.Time{}
	h.eventPool.Put(ev)
}

// Session is one subscriber's delivery state. All fields are guarded by mu;
// flushMu serializes flushes so events reach the connection in sequence
// order even when two workers pick the session up back-to-back.
type Session struct {
	hub   *Hub
	shard *shard
	sub   string

	flushMu sync.Mutex

	mu    sync.Mutex
	state State
	conn  Conn
	// queue[qhead:] holds not-yet-sent events (no Seq); the head index (with
	// reset-on-empty and bounded compaction) keeps the backing array stable
	// so the warm path never reallocates. byDoc indexes the live portion by
	// DocID under CoalesceByDoc.
	queue []*Event
	qhead int
	byDoc map[uint64]*Event
	// window[whead:] holds sent-but-unacked events in Seq order; resend
	// stages the window slice scheduled for redelivery after an attach.
	window []*Event
	whead  int
	resend []*Event
	// retired collects acked events awaiting recycling: the flush loop
	// returns them to the pool under flushMu, which serializes with any
	// SendEvents call that might still be reading them.
	retired []*Event
	// sendSeq is the last assigned sequence number; ackSeq the cumulative
	// ack cursor (everything <= ackSeq is acknowledged).
	sendSeq uint64
	ackSeq  uint64

	lastActivity time.Time
	lastPing     time.Time

	scheduled atomic.Bool
	deferred  atomic.Bool
}

// Sub returns the subscriber name.
func (s *Session) Sub() string { return s.sub }

// State returns the session's current lifecycle state.
func (s *Session) State() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// qlen returns the live queue length (requires mu).
func (s *Session) qlen() int { return len(s.queue) - s.qhead }

// touchLocked records inbound activity (requires mu).
func (s *Session) touchLocked() { s.lastActivity = s.hub.now() }

// Touch records inbound activity (pong frames, protocol no-ops).
func (s *Session) Touch() {
	s.mu.Lock()
	s.touchLocked()
	s.mu.Unlock()
}

// detachLocked unbinds the current connection (requires mu) and returns it
// for the caller to close outside the lock. Closed sessions stay closed.
func (s *Session) detachLocked() Conn {
	conn := s.conn
	if conn == nil {
		return nil
	}
	s.conn = nil
	s.resend = nil
	if s.state != StateClosed {
		s.state = StateDetached
	}
	s.hub.attachedG.Add(-1)
	return conn
}

// Detach unbinds conn if it is still the session's current connection (the
// server's read loop calls this when the socket dies). The caller owns
// closing conn.
func (s *Session) Detach(conn Conn) {
	s.mu.Lock()
	if s.conn == conn {
		_ = s.detachLocked()
	}
	s.mu.Unlock()
}

// enqueue admits one notification, applying the slow-consumer policy on
// overflow. When the hub has a FlushDelay coalescing window, a short queue
// defers its flush to the coalescer; a queue at FlushBatch or more schedules
// immediately (the size bound).
func (s *Session) enqueue(docID uint64, filters []model.FilterID, terms []string) {
	h := s.hub
	var droppedEv *Event
	var killed Conn

	s.mu.Lock()
	if s.state == StateClosed {
		s.mu.Unlock()
		h.dropDisconnC.Inc()
		if h.cfg.OnDrop != nil {
			h.cfg.OnDrop(s.sub, docID, DropReasonClosed)
		}
		return
	}
	if s.byDoc != nil {
		if ev, ok := s.byDoc[docID]; ok {
			ev.Filters = mergeFilterIDs(ev.Filters, filters)
			s.mu.Unlock()
			h.coalescedC.Inc()
			return
		}
	}
	if s.qlen() >= h.cfg.QueueCap {
		switch h.cfg.Policy {
		case Disconnect:
			killed = s.detachLocked()
			dropped := s.shedAllLocked()
			s.state = StateClosed
			s.mu.Unlock()
			h.dropDisconnC.Add(int64(len(dropped) + 1))
			if h.cfg.OnDrop != nil {
				for _, ev := range dropped {
					h.cfg.OnDrop(s.sub, ev.DocID, DropReasonDisconnect)
				}
				h.cfg.OnDrop(s.sub, docID, DropReasonDisconnect)
			}
			if killed != nil {
				_ = killed.SendBye("slow-consumer: " + DropReasonDisconnect)
				_ = killed.Close()
			}
			return
		default: // DropOldest, and the CoalesceByDoc fallback
			droppedEv = s.queue[s.qhead]
			s.queue[s.qhead] = nil
			s.qhead++
			if s.byDoc != nil {
				delete(s.byDoc, droppedEv.DocID)
			}
		}
	}
	ev := h.getEvent()
	ev.DocID = docID
	ev.Filters = append(ev.Filters[:0], filters...)
	ev.Terms = terms
	ev.enqueuedAt = h.now()
	s.appendQueueLocked(ev)
	if s.byDoc != nil {
		s.byDoc[docID] = ev
	}
	depth := s.qlen()
	ready := s.state == StateAttached
	s.mu.Unlock()

	h.enqueuedC.Inc()
	h.hQueueDepth.Observe(time.Duration(depth))
	if droppedEv != nil {
		docID := droppedEv.DocID
		// Never sent, so no other goroutine can hold it: recycle now.
		h.putEvent(droppedEv)
		h.dropOldestC.Inc()
		if h.cfg.OnDrop != nil {
			h.cfg.OnDrop(s.sub, docID, DropReasonOldest)
		}
	}
	if ready {
		// The size half of the coalescing rule: with a flush delay
		// configured, let the queue accumulate a multi-frame payload and
		// schedule immediately only once it is half full — the coalescer
		// tick handles everything shallower within ~2x FlushDelay. At half
		// capacity the session flushes ahead of the tick so the window
		// never converts coalescing latency into policy drops.
		if h.cfg.FlushDelay > 0 && depth*2 < h.cfg.QueueCap {
			h.deferSchedule(s)
		} else {
			h.schedule(s)
		}
	}
}

// appendQueueLocked appends to the queue tail, compacting the head-index gap
// first when it has grown past QueueCap (requires mu). The compaction keeps
// the backing array bounded at ~2x QueueCap without ever reallocating on the
// warm path.
func (s *Session) appendQueueLocked(ev *Event) {
	if s.qhead > 0 {
		if s.qhead == len(s.queue) {
			s.queue, s.qhead = s.queue[:0], 0
		} else if s.qhead >= s.hub.cfg.QueueCap {
			n := copy(s.queue, s.queue[s.qhead:])
			for i := n; i < len(s.queue); i++ {
				s.queue[i] = nil
			}
			s.queue, s.qhead = s.queue[:n], 0
		}
	}
	s.queue = append(s.queue, ev)
}

// shedAllLocked empties the queue and window (requires mu) and returns the
// shed events: the queue plus the unacked window. Resend entries alias
// window entries, so the window alone covers them. The shed events are NOT
// recycled — window events may still be referenced by an in-flight
// SendEvents, so they are left to the garbage collector (disconnects are the
// cold path).
func (s *Session) shedAllLocked() []*Event {
	shed := make([]*Event, 0, s.qlen()+len(s.window)-s.whead)
	shed = append(shed, s.queue[s.qhead:]...)
	shed = append(shed, s.window[s.whead:]...)
	s.queue, s.qhead = nil, 0
	s.window, s.whead = nil, 0
	s.resend = nil
	if s.byDoc != nil {
		clear(s.byDoc)
	}
	return shed
}

// flushableLocked reports whether a flush would send anything (requires mu).
func (s *Session) flushableLocked() bool {
	if len(s.resend) > 0 {
		return true
	}
	return s.qlen() > 0 && len(s.window)-s.whead < s.hub.cfg.WindowCap
}

// flush drains the session to its connection: staged redeliveries first,
// then fresh queue events (assigned their sequence numbers here, at send
// time, so coalesce merges never leave gaps). Stops when the window is full,
// the queue is empty, the connection fails, or the session detaches — then
// flushes the connection's coalescing buffer if it has one. Also the
// recycling point: events acked since the last flush are returned to the
// pool here, under flushMu, where no SendEvents can still be reading them.
func (s *Session) flush() {
	h := s.hub
	s.flushMu.Lock()
	defer s.flushMu.Unlock()
	bp := h.batchPool.Get().(*[]*Event)
	var fconn Conn
	for {
		s.mu.Lock()
		if len(s.retired) > 0 {
			for i, ev := range s.retired {
				h.putEvent(ev)
				s.retired[i] = nil
			}
			s.retired = s.retired[:0]
		}
		if s.state != StateAttached || s.conn == nil {
			s.mu.Unlock()
			break
		}
		batch := (*bp)[:0]
		for len(s.resend) > 0 && len(batch) < h.cfg.FlushBatch {
			batch = append(batch, s.resend[0])
			s.resend = s.resend[1:]
		}
		resent := len(batch)
		for s.qhead < len(s.queue) && len(s.window)-s.whead < h.cfg.WindowCap && len(batch) < h.cfg.FlushBatch {
			ev := s.queue[s.qhead]
			s.queue[s.qhead] = nil
			s.qhead++
			if s.byDoc != nil {
				delete(s.byDoc, ev.DocID)
			}
			s.sendSeq++
			ev.Seq = s.sendSeq
			s.appendWindowLocked(ev)
			batch = append(batch, ev)
		}
		if s.qhead == len(s.queue) {
			s.queue, s.qhead = s.queue[:0], 0
		}
		*bp = batch
		if len(batch) == 0 {
			s.mu.Unlock()
			break
		}
		conn := s.conn
		now := h.now()
		for _, ev := range batch {
			ev.sentAt = now
		}
		s.mu.Unlock()

		err := conn.SendEvents(batch)
		if err == nil {
			fconn = conn
			h.deliveredC.Add(int64(len(batch) - resent))
			h.redeliveredC.Add(int64(resent))
			h.hFlushBatch.Observe(time.Duration(len(batch)))
			continue
		}
		s.mu.Lock()
		if s.conn == conn {
			if errors.Is(err, ErrStalled) {
				// The stream survived the timeout: park and let the janitor
				// retry. The batch slice is pooled, so the unsent events are
				// copied (not aliased) back onto the resend stage.
				s.state = StateStalled
				ns := make([]*Event, 0, len(batch)+len(s.resend))
				ns = append(ns, batch...)
				ns = append(ns, s.resend...)
				s.resend = ns
				s.mu.Unlock()
			} else {
				conn = s.detachLocked()
				s.mu.Unlock()
				if conn != nil {
					_ = conn.Close()
				}
				fconn = nil
			}
		} else {
			s.mu.Unlock()
		}
		break
	}
	h.batchPool.Put(bp)
	if fconn == nil {
		return
	}
	f, ok := fconn.(Flusher)
	if !ok {
		return
	}
	if err := f.Flush(); err != nil {
		// A failed physical flush is a hard connection error: frames are
		// gone mid-stream, so detach; the window redelivers on reconnect.
		s.mu.Lock()
		if s.conn == fconn {
			c := s.detachLocked()
			s.mu.Unlock()
			if c != nil {
				_ = c.Close()
			}
			return
		}
		s.mu.Unlock()
	}
}

// appendWindowLocked appends to the window tail, compacting the acked head
// gap once it passes WindowCap (requires mu) — same bounded-array discipline
// as appendQueueLocked.
func (s *Session) appendWindowLocked(ev *Event) {
	if s.whead > 0 {
		if s.whead == len(s.window) {
			s.window, s.whead = s.window[:0], 0
		} else if s.whead >= s.hub.cfg.WindowCap {
			n := copy(s.window, s.window[s.whead:])
			for i := n; i < len(s.window); i++ {
				s.window[i] = nil
			}
			s.window, s.whead = s.window[:n], 0
		}
	}
	s.window = append(s.window, ev)
}

// Ack applies a cumulative acknowledgement: every event with Seq <= seq is
// confirmed delivered, pruned from the replay window, and its send→ack
// latency recorded. Acks beyond the last sent sequence clamp.
func (s *Session) Ack(seq uint64) {
	h := s.hub
	s.mu.Lock()
	s.touchLocked()
	acked, canFlush := s.ackLocked(seq)
	s.mu.Unlock()
	if acked > 0 {
		h.ackedC.Add(int64(acked))
	}
	if canFlush {
		h.schedule(s)
	}
}

// ackLocked advances the cumulative ack cursor (requires mu). Returns how
// many window events were confirmed and whether the freed window space makes
// the session flushable again. Confirmed events move to the retired list;
// the next flush recycles them (see Session.retired).
func (s *Session) ackLocked(seq uint64) (acked int, canFlush bool) {
	if seq > s.sendSeq {
		seq = s.sendSeq
	}
	if seq <= s.ackSeq {
		return 0, false
	}
	s.ackSeq = seq
	now := s.hub.now()
	for s.whead < len(s.window) && s.window[s.whead].Seq <= seq {
		ev := s.window[s.whead]
		s.hub.hAckLatency.Observe(now.Sub(ev.sentAt))
		s.retired = append(s.retired, ev)
		s.window[s.whead] = nil
		s.whead++
		acked++
	}
	if s.whead == len(s.window) {
		s.window, s.whead = s.window[:0], 0
	}
	j := 0
	for j < len(s.resend) && s.resend[j].Seq <= seq {
		j++
	}
	s.resend = s.resend[j:]
	return acked, s.state == StateAttached && s.flushableLocked()
}

// snapshot captures the session state for tests and accounting.
func (s *Session) snapshot() SessionSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	ss := SessionSnapshot{
		Sub:     s.sub,
		State:   s.state,
		AckSeq:  s.ackSeq,
		SendSeq: s.sendSeq,
		Queued:  s.qlen(),
		Window:  len(s.window) - s.whead,
	}
	if ss.Queued > 0 {
		ss.QueuedDocs = make([]uint64, 0, ss.Queued)
		for _, ev := range s.queue[s.qhead:] {
			ss.QueuedDocs = append(ss.QueuedDocs, ev.DocID)
		}
	}
	if ss.Window > 0 {
		ss.WindowDocs = make([]uint64, 0, ss.Window)
		for _, ev := range s.window[s.whead:] {
			ss.WindowDocs = append(ss.WindowDocs, ev.DocID)
		}
	}
	return ss
}

// mergeFilterIDs unions add into dst, preserving dst's order.
func mergeFilterIDs(dst, add []model.FilterID) []model.FilterID {
	for _, id := range add {
		dup := false
		for _, have := range dst {
			if have == id {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, id)
		}
	}
	return dst
}
