// Package delivery implements the end-to-end subscriber delivery tier: the
// last mile from a deduplicated match set to the subscribers that asked for
// it. Each subscriber has one Session — a bounded queue of matched-document
// notifications, a per-session monotonic sequence numbering, and a bounded
// replay window of sent-but-unacked events — owned by the Hub on the home
// node of "subscriber/<name>". Sessions survive disconnects: a reconnect
// resumes at the first unacked sequence number and the window is redelivered
// (at-least-once). When a consumer cannot keep up, a configurable
// slow-consumer policy (drop-oldest, coalesce-by-doc, disconnect) decides
// what the bounded queue sheds, and every shed event is counted and reported
// so delivery loss is always accounted for, never silent.
package delivery

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/movesys/move/internal/metrics"
	"github.com/movesys/move/internal/model"
)

// Policy selects what a subscriber's bounded delivery queue sheds when it
// overflows (slow-consumer handling, DESIGN.md §14).
type Policy int

const (
	// DropOldest evicts the oldest queued (not-yet-sent) event to admit the
	// new one. Sent-but-unacked events are never evicted by this policy.
	DropOldest Policy = iota
	// CoalesceByDoc merges notifications for the same document into one
	// queued event (filter-ID union) at enqueue time — one notification per
	// document per subscriber. On overflow with no same-document event to
	// merge into, it falls back to DropOldest.
	CoalesceByDoc
	// Disconnect terminates the session on overflow: the connection is told
	// why and closed, every queued and unacked event is dropped (and
	// accounted), and further notifications are dropped until the
	// subscriber reconnects.
	Disconnect
)

// String returns the flag spelling of the policy.
func (p Policy) String() string {
	switch p {
	case DropOldest:
		return "drop-oldest"
	case CoalesceByDoc:
		return "coalesce-by-doc"
	case Disconnect:
		return "disconnect"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParsePolicy parses a flag spelling ("drop-oldest", "coalesce-by-doc",
// "disconnect").
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "drop-oldest":
		return DropOldest, nil
	case "coalesce-by-doc":
		return CoalesceByDoc, nil
	case "disconnect":
		return Disconnect, nil
	default:
		return 0, fmt.Errorf("delivery: unknown policy %q", s)
	}
}

// State is a session's lifecycle state.
type State int

const (
	// StateDetached: no connection; the queue accumulates for a reconnect.
	StateDetached State = iota
	// StateAttached: connection live, events flowing.
	StateAttached
	// StateStalled: connection live but writes are timing out; the janitor
	// retries the flush on its next sweep while the queue absorbs (and the
	// policy sheds) the backlog.
	StateStalled
	// StateClosed: terminated by the Disconnect policy. Notifications are
	// dropped (and counted) until the subscriber reconnects.
	StateClosed
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateDetached:
		return "detached"
	case StateAttached:
		return "attached"
	case StateStalled:
		return "stalled"
	case StateClosed:
		return "closed"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Drop reasons passed to Config.OnDrop.
const (
	// DropReasonOldest: evicted from a full queue by DropOldest (or the
	// CoalesceByDoc fallback).
	DropReasonOldest = "drop-oldest"
	// DropReasonDisconnect: shed when the Disconnect policy killed the
	// session (queued and unacked events alike).
	DropReasonDisconnect = "disconnect"
	// DropReasonClosed: arrived while the session was policy-closed.
	DropReasonClosed = "closed"
)

// ErrStalled marks a connection write that timed out but left the stream
// usable, so the session parks in StateStalled and the janitor retries.
// Transports whose stream a timed-out write corrupts (TCP: a partial frame
// may be on the wire) must return a different error so the session detaches
// instead.
var ErrStalled = errors.New("delivery: consumer stalled")

// Event is one matched-document notification bound for a subscriber. Seq is
// zero while queued and assigned from the session's monotonic counter when
// the event is first sent.
type Event struct {
	Seq     uint64
	DocID   uint64
	Filters []model.FilterID
	Terms   []string

	enqueuedAt time.Time
	sentAt     time.Time
}

// HelloInfo is what the server tells a subscriber on attach: where the
// cumulative ack cursor landed after applying the client's resume ack, the
// next fresh sequence number, and how many unacked events are about to be
// redelivered.
type HelloInfo struct {
	AckSeq    uint64
	NextSeq   uint64
	Redeliver int
}

// Conn is the server-side sink of one subscriber connection. Implementations
// must be safe for concurrent use (the flush workers and the janitor both
// write). SendEvents may return ErrStalled (wrapped) to signal a retryable
// write timeout; any other error detaches the session.
type Conn interface {
	SendHello(info HelloInfo) error
	SendEvents(evs []*Event) error
	SendPing() error
	SendBye(reason string) error
	Close() error
}

// Config parameterizes a Hub.
type Config struct {
	// QueueCap bounds each session's not-yet-sent queue; overflow invokes
	// Policy. Default 256.
	QueueCap int
	// Policy is the slow-consumer policy. Default DropOldest.
	Policy Policy
	// WindowCap bounds the sent-but-unacked replay window. A full window
	// pauses sending (flow control), letting the queue absorb the backlog
	// until the policy sheds it. Default 1024.
	WindowCap int
	// FlushBatch caps events per SendEvents call. Default 64.
	FlushBatch int
	// Workers is the flush worker-pool size. Default GOMAXPROCS.
	Workers int
	// HeartbeatEvery is the janitor cadence: pings are sent and idle/stall
	// checks run every interval. Zero disables the janitor (tests drive
	// Sweep directly).
	HeartbeatEvery time.Duration
	// IdleTimeout detaches a connection with no inbound activity (hello,
	// ack, pong) for this long. Default 4x HeartbeatEvery.
	IdleTimeout time.Duration
	// Metrics receives the delivery.* counters and histograms; nil creates
	// a private registry.
	Metrics *metrics.Registry
	// Clock overrides time.Now (tests).
	Clock func() time.Time
	// OnDrop, if set, is invoked for every event shed by a policy — the
	// accounting hook the oracle-equivalence suite uses to prove no loss is
	// silent.
	OnDrop func(sub string, docID uint64, reason string)
}

// Hub owns every subscriber session on one node: it enqueues notifications,
// schedules flushes over a fixed worker pool (no per-session goroutines, so
// 100k+ concurrent sessions stay cheap), and sweeps heartbeats and idle
// timeouts.
type Hub struct {
	cfg Config
	reg *metrics.Registry
	now func() time.Time

	mu       sync.RWMutex
	sessions map[string]*Session

	readyMu   sync.Mutex
	ready     []*Session
	readyCond *sync.Cond
	stopped   bool

	wg          sync.WaitGroup
	stopJanitor chan struct{}

	sessionsG    *metrics.Counter
	attachedG    *metrics.Counter
	enqueuedC    *metrics.Counter
	deliveredC   *metrics.Counter
	redeliveredC *metrics.Counter
	ackedC       *metrics.Counter
	dropOldestC  *metrics.Counter
	dropDisconnC *metrics.Counter
	coalescedC   *metrics.Counter
	idleKicksC   *metrics.Counter
	replacedC    *metrics.Counter
	hQueueDepth  *metrics.Histogram
	hAckLatency  *metrics.Histogram
	hFlushBatch  *metrics.Histogram
}

// NewHub builds and starts a hub: Workers flush goroutines plus, when
// HeartbeatEvery > 0, one janitor goroutine.
func NewHub(cfg Config) *Hub {
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 256
	}
	if cfg.WindowCap <= 0 {
		cfg.WindowCap = 1024
	}
	if cfg.FlushBatch <= 0 {
		cfg.FlushBatch = 64
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.IdleTimeout <= 0 && cfg.HeartbeatEvery > 0 {
		cfg.IdleTimeout = 4 * cfg.HeartbeatEvery
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	now := cfg.Clock
	if now == nil {
		now = time.Now
	}
	h := &Hub{
		cfg:          cfg,
		reg:          reg,
		now:          now,
		sessions:     make(map[string]*Session),
		stopJanitor:  make(chan struct{}),
		sessionsG:    reg.Counter("delivery.sessions"),
		attachedG:    reg.Counter("delivery.attached"),
		enqueuedC:    reg.Counter("delivery.enqueued"),
		deliveredC:   reg.Counter("delivery.delivered"),
		redeliveredC: reg.Counter("delivery.redelivered"),
		ackedC:       reg.Counter("delivery.acked"),
		dropOldestC:  reg.Counter("delivery.drops.oldest"),
		dropDisconnC: reg.Counter("delivery.drops.disconnect"),
		coalescedC:   reg.Counter("delivery.coalesced"),
		idleKicksC:   reg.Counter("delivery.kicks.idle"),
		replacedC:    reg.Counter("delivery.kicks.replaced"),
		hQueueDepth:  reg.Histogram("delivery.queue.depth"),
		hAckLatency:  reg.Histogram("delivery.ack.latency"),
		hFlushBatch:  reg.Histogram("delivery.flush.batch"),
	}
	h.readyCond = sync.NewCond(&h.readyMu)
	for i := 0; i < cfg.Workers; i++ {
		h.wg.Add(1)
		go h.worker()
	}
	if cfg.HeartbeatEvery > 0 {
		h.wg.Add(1)
		go h.janitor()
	}
	return h
}

// Metrics exposes the hub's registry.
func (h *Hub) Metrics() *metrics.Registry { return h.reg }

// Policy returns the configured slow-consumer policy.
func (h *Hub) Policy() Policy { return h.cfg.Policy }

// Stop terminates the workers and janitor and closes every attached
// connection. Queued events are retained in memory until the hub is
// garbage-collected; Stop is a process-shutdown path, not a flush barrier.
func (h *Hub) Stop() {
	h.readyMu.Lock()
	if h.stopped {
		h.readyMu.Unlock()
		return
	}
	h.stopped = true
	h.readyCond.Broadcast()
	h.readyMu.Unlock()
	close(h.stopJanitor)

	h.mu.RLock()
	sessions := make([]*Session, 0, len(h.sessions))
	for _, s := range h.sessions {
		sessions = append(sessions, s)
	}
	h.mu.RUnlock()
	for _, s := range sessions {
		s.mu.Lock()
		conn := s.detachLocked()
		s.mu.Unlock()
		if conn != nil {
			_ = conn.Close()
		}
	}
	h.wg.Wait()
}

// session returns the subscriber's session, creating a detached one on first
// reference — notifications routed here before the subscriber ever connects
// queue up for its first attach.
func (h *Hub) session(sub string) *Session {
	h.mu.RLock()
	s := h.sessions[sub]
	h.mu.RUnlock()
	if s != nil {
		return s
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if s = h.sessions[sub]; s != nil {
		return s
	}
	s = &Session{hub: h, sub: sub}
	if h.cfg.Policy == CoalesceByDoc {
		s.byDoc = make(map[uint64]*Event)
	}
	h.sessions[sub] = s
	// Add, not Set: several hubs may share one registry (one per cluster
	// node), and the counter is the cluster-wide session total.
	h.sessionsG.Add(1)
	return s
}

// Session returns the subscriber's session if one exists.
func (h *Hub) Session(sub string) (*Session, bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	s, ok := h.sessions[sub]
	return s, ok
}

// Deliver enqueues one notification for a subscriber: the document matched
// at least one of the subscriber's filters. Terms may alias the decoded wire
// payload — events never mutate it.
func (h *Hub) Deliver(sub string, docID uint64, filters []model.FilterID, terms []string) {
	h.session(sub).enqueue(docID, filters, terms)
}

// Ack applies a cumulative ack for a subscriber (in-process sinks that have
// no read loop of their own).
func (h *Hub) Ack(sub string, seq uint64) {
	if s, ok := h.Session(sub); ok {
		s.Ack(seq)
	}
}

// Attach binds a connection to the subscriber's session, applies the
// client's resume ack, sends the hello response on the connection, stages
// every still-unacked event for redelivery, and starts flushing. An existing
// connection is replaced (told "replaced" and closed) — last writer wins,
// the standard relay takeover rule.
func (h *Hub) Attach(sub string, conn Conn, resumeAck uint64) (*Session, HelloInfo, error) {
	s := h.session(sub)
	s.mu.Lock()
	old := s.detachLocked()
	if s.state == StateClosed {
		// A reconnect revives a policy-closed session; the dropped range is
		// visible to the client as the gap between its resume ack and
		// HelloInfo.NextSeq.
		s.state = StateDetached
	}
	s.ackLocked(resumeAck)
	s.resend = append(s.resend[:0], s.window...)
	s.conn = conn
	s.state = StateAttached
	s.touchLocked()
	s.lastPing = s.hub.now()
	info := HelloInfo{AckSeq: s.ackSeq, NextSeq: s.sendSeq + 1, Redeliver: len(s.resend)}
	s.mu.Unlock()
	h.attachedG.Add(1)

	if old != nil {
		_ = old.SendBye("replaced")
		_ = old.Close()
		h.replacedC.Inc()
	}
	if err := conn.SendHello(info); err != nil {
		s.mu.Lock()
		if s.conn == conn {
			_ = s.detachLocked()
		}
		s.mu.Unlock()
		return nil, HelloInfo{}, fmt.Errorf("delivery: hello to %q: %w", sub, err)
	}
	h.schedule(s)
	return s, info, nil
}

// schedule marks a session ready to flush. The scheduled flag keeps at most
// one ready-queue entry per session; it is cleared by the worker before the
// flush, so an enqueue racing a flush re-schedules rather than getting lost.
func (h *Hub) schedule(s *Session) {
	if !s.scheduled.CompareAndSwap(false, true) {
		return
	}
	h.readyMu.Lock()
	if h.stopped {
		h.readyMu.Unlock()
		s.scheduled.Store(false)
		return
	}
	h.ready = append(h.ready, s)
	h.readyCond.Signal()
	h.readyMu.Unlock()
}

func (h *Hub) worker() {
	defer h.wg.Done()
	for {
		h.readyMu.Lock()
		for len(h.ready) == 0 && !h.stopped {
			h.readyCond.Wait()
		}
		if len(h.ready) == 0 {
			h.readyMu.Unlock()
			return
		}
		s := h.ready[0]
		h.ready = h.ready[1:]
		h.readyMu.Unlock()
		s.scheduled.Store(false)
		s.flush()
	}
}

func (h *Hub) janitor() {
	defer h.wg.Done()
	t := time.NewTicker(h.cfg.HeartbeatEvery)
	defer t.Stop()
	for {
		select {
		case <-h.stopJanitor:
			return
		case <-t.C:
			h.Sweep()
		}
	}
}

// Sweep runs one janitor pass: idle connections are kicked (detached with a
// bye — the queue survives for a reconnect), stalled sessions get a flush
// retry, and live connections quiet for a heartbeat interval are pinged.
// Exported so tests (and hubs with no janitor goroutine) can drive it.
func (h *Hub) Sweep() {
	now := h.now()
	h.mu.RLock()
	sessions := make([]*Session, 0, len(h.sessions))
	for _, s := range h.sessions {
		sessions = append(sessions, s)
	}
	h.mu.RUnlock()
	for _, s := range sessions {
		var kicked, ping Conn
		s.mu.Lock()
		switch s.state {
		case StateAttached, StateStalled:
			if h.cfg.IdleTimeout > 0 && now.Sub(s.lastActivity) > h.cfg.IdleTimeout {
				kicked = s.detachLocked()
				break
			}
			if s.state == StateStalled {
				s.state = StateAttached
			}
			if h.cfg.HeartbeatEvery > 0 && now.Sub(s.lastPing) >= h.cfg.HeartbeatEvery {
				s.lastPing = now
				ping = s.conn
			}
		}
		retry := s.state == StateAttached && s.flushableLocked()
		s.mu.Unlock()
		if kicked != nil {
			h.idleKicksC.Inc()
			_ = kicked.SendBye("idle-timeout")
			_ = kicked.Close()
			continue
		}
		if ping != nil {
			if err := ping.SendPing(); err != nil {
				s.mu.Lock()
				if s.conn == ping {
					_ = s.detachLocked()
				}
				s.mu.Unlock()
				_ = ping.Close()
				continue
			}
		}
		if retry {
			h.schedule(s)
		}
	}
}

// SessionSnapshot is a point-in-time view of one session, for tests,
// /healthz, and the oracle accounting suite (QueuedDocs and WindowDocs are
// the "pending in bounded queues" side of the delivery-equivalence union).
type SessionSnapshot struct {
	Sub     string
	State   State
	AckSeq  uint64
	SendSeq uint64
	Queued  int
	Window  int
	// QueuedDocs lists the DocID of every not-yet-sent event, oldest first.
	QueuedDocs []uint64
	// WindowDocs lists the DocID of every sent-but-unacked event, in
	// sequence order.
	WindowDocs []uint64
}

// Snapshot returns a session's snapshot.
func (h *Hub) Snapshot(sub string) (SessionSnapshot, bool) {
	s, ok := h.Session(sub)
	if !ok {
		return SessionSnapshot{}, false
	}
	return s.snapshot(), true
}

// Each calls fn with a snapshot of every session.
func (h *Hub) Each(fn func(SessionSnapshot)) {
	h.mu.RLock()
	sessions := make([]*Session, 0, len(h.sessions))
	for _, s := range h.sessions {
		sessions = append(sessions, s)
	}
	h.mu.RUnlock()
	for _, s := range sessions {
		fn(s.snapshot())
	}
}

// SessionCount returns the number of sessions (attached or not).
func (h *Hub) SessionCount() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.sessions)
}

// Pending returns the total number of queued plus unacked events across all
// sessions — the drain gauge /healthz exposes.
func (h *Hub) Pending() int {
	total := 0
	h.Each(func(ss SessionSnapshot) { total += ss.Queued + ss.Window })
	return total
}

// Session is one subscriber's delivery state. All fields are guarded by mu;
// flushMu serializes flushes so events reach the connection in sequence
// order even when two workers pick the session up back-to-back.
type Session struct {
	hub *Hub
	sub string

	flushMu sync.Mutex

	mu    sync.Mutex
	state State
	conn  Conn
	// queue holds not-yet-sent events (no Seq). byDoc indexes it by DocID
	// under CoalesceByDoc.
	queue []*Event
	byDoc map[uint64]*Event
	// window holds sent-but-unacked events in Seq order; resend stages the
	// window slice scheduled for redelivery after an attach.
	window []*Event
	resend []*Event
	// sendSeq is the last assigned sequence number; ackSeq the cumulative
	// ack cursor (everything <= ackSeq is acknowledged).
	sendSeq uint64
	ackSeq  uint64

	lastActivity time.Time
	lastPing     time.Time

	scheduled atomic.Bool
}

// Sub returns the subscriber name.
func (s *Session) Sub() string { return s.sub }

// State returns the session's current lifecycle state.
func (s *Session) State() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// touchLocked records inbound activity (requires mu).
func (s *Session) touchLocked() { s.lastActivity = s.hub.now() }

// Touch records inbound activity (pong frames, protocol no-ops).
func (s *Session) Touch() {
	s.mu.Lock()
	s.touchLocked()
	s.mu.Unlock()
}

// detachLocked unbinds the current connection (requires mu) and returns it
// for the caller to close outside the lock. Closed sessions stay closed.
func (s *Session) detachLocked() Conn {
	conn := s.conn
	if conn == nil {
		return nil
	}
	s.conn = nil
	s.resend = nil
	if s.state != StateClosed {
		s.state = StateDetached
	}
	s.hub.attachedG.Add(-1)
	return conn
}

// Detach unbinds conn if it is still the session's current connection (the
// server's read loop calls this when the socket dies). The caller owns
// closing conn.
func (s *Session) Detach(conn Conn) {
	s.mu.Lock()
	if s.conn == conn {
		_ = s.detachLocked()
	}
	s.mu.Unlock()
}

// enqueue admits one notification, applying the slow-consumer policy on
// overflow.
func (s *Session) enqueue(docID uint64, filters []model.FilterID, terms []string) {
	h := s.hub
	var dropped []*Event
	var killed Conn
	reason := ""

	s.mu.Lock()
	if s.state == StateClosed {
		s.mu.Unlock()
		h.dropDisconnC.Inc()
		if h.cfg.OnDrop != nil {
			h.cfg.OnDrop(s.sub, docID, DropReasonClosed)
		}
		return
	}
	if s.byDoc != nil {
		if ev, ok := s.byDoc[docID]; ok {
			ev.Filters = mergeFilterIDs(ev.Filters, filters)
			s.mu.Unlock()
			h.coalescedC.Inc()
			return
		}
	}
	if len(s.queue) >= h.cfg.QueueCap {
		switch h.cfg.Policy {
		case Disconnect:
			killed = s.detachLocked()
			dropped = s.shedAllLocked()
			s.state = StateClosed
			reason = DropReasonDisconnect
			s.mu.Unlock()
			h.dropDisconnC.Add(int64(len(dropped) + 1))
			if h.cfg.OnDrop != nil {
				for _, ev := range dropped {
					h.cfg.OnDrop(s.sub, ev.DocID, DropReasonDisconnect)
				}
				h.cfg.OnDrop(s.sub, docID, DropReasonDisconnect)
			}
			if killed != nil {
				_ = killed.SendBye("slow-consumer: " + reason)
				_ = killed.Close()
			}
			return
		default: // DropOldest, and the CoalesceByDoc fallback
			old := s.queue[0]
			s.queue = s.queue[1:]
			if s.byDoc != nil {
				delete(s.byDoc, old.DocID)
			}
			dropped = append(dropped, old)
			reason = DropReasonOldest
		}
	}
	ev := &Event{
		DocID:      docID,
		Filters:    append([]model.FilterID(nil), filters...),
		Terms:      terms,
		enqueuedAt: h.now(),
	}
	s.queue = append(s.queue, ev)
	if s.byDoc != nil {
		s.byDoc[docID] = ev
	}
	depth := len(s.queue)
	ready := s.state == StateAttached
	s.mu.Unlock()

	h.enqueuedC.Inc()
	h.hQueueDepth.Observe(time.Duration(depth))
	if len(dropped) > 0 {
		h.dropOldestC.Add(int64(len(dropped)))
		if h.cfg.OnDrop != nil {
			for _, d := range dropped {
				h.cfg.OnDrop(s.sub, d.DocID, reason)
			}
		}
	}
	if ready {
		h.schedule(s)
	}
}

// shedAllLocked empties the queue and window (requires mu) and returns the
// shed events: the queue plus the unacked window. Resend entries alias
// window entries, so the window alone covers them.
func (s *Session) shedAllLocked() []*Event {
	shed := make([]*Event, 0, len(s.queue)+len(s.window))
	shed = append(shed, s.queue...)
	shed = append(shed, s.window...)
	s.queue, s.window, s.resend = nil, nil, nil
	if s.byDoc != nil {
		clear(s.byDoc)
	}
	return shed
}

// flushableLocked reports whether a flush would send anything (requires mu).
func (s *Session) flushableLocked() bool {
	if len(s.resend) > 0 {
		return true
	}
	return len(s.queue) > 0 && len(s.window) < s.hub.cfg.WindowCap
}

// flush drains the session to its connection: staged redeliveries first,
// then fresh queue events (assigned their sequence numbers here, at send
// time, so coalesce merges never leave gaps). Stops when the window is full,
// the queue is empty, the connection fails, or the session detaches.
func (s *Session) flush() {
	h := s.hub
	s.flushMu.Lock()
	defer s.flushMu.Unlock()
	for {
		s.mu.Lock()
		if s.state != StateAttached || s.conn == nil {
			s.mu.Unlock()
			return
		}
		batch := make([]*Event, 0, h.cfg.FlushBatch)
		for len(s.resend) > 0 && len(batch) < h.cfg.FlushBatch {
			batch = append(batch, s.resend[0])
			s.resend = s.resend[1:]
		}
		resent := len(batch)
		for len(s.queue) > 0 && len(s.window) < h.cfg.WindowCap && len(batch) < h.cfg.FlushBatch {
			ev := s.queue[0]
			s.queue = s.queue[1:]
			if s.byDoc != nil {
				delete(s.byDoc, ev.DocID)
			}
			s.sendSeq++
			ev.Seq = s.sendSeq
			s.window = append(s.window, ev)
			batch = append(batch, ev)
		}
		if len(batch) == 0 {
			s.mu.Unlock()
			return
		}
		conn := s.conn
		now := h.now()
		for _, ev := range batch {
			ev.sentAt = now
		}
		s.mu.Unlock()

		err := conn.SendEvents(batch)
		if err == nil {
			h.deliveredC.Add(int64(len(batch) - resent))
			h.redeliveredC.Add(int64(resent))
			h.hFlushBatch.Observe(time.Duration(len(batch)))
			continue
		}
		s.mu.Lock()
		if s.conn == conn {
			if errors.Is(err, ErrStalled) {
				// The stream survived the timeout: park and let the janitor
				// retry. The sent-side staging is already undone — batch
				// events live in the window and will be re-staged on the
				// next attach or resent by the retry.
				s.state = StateStalled
				s.resend = append(batch, s.resend...)
			} else {
				conn = s.detachLocked()
				s.mu.Unlock()
				if conn != nil {
					_ = conn.Close()
				}
				return
			}
		}
		s.mu.Unlock()
		return
	}
}

// Ack applies a cumulative acknowledgement: every event with Seq <= seq is
// confirmed delivered, pruned from the replay window, and its send→ack
// latency recorded. Acks beyond the last sent sequence clamp.
func (s *Session) Ack(seq uint64) {
	h := s.hub
	s.mu.Lock()
	s.touchLocked()
	acked, canFlush := s.ackLocked(seq)
	s.mu.Unlock()
	if acked > 0 {
		h.ackedC.Add(int64(acked))
	}
	if canFlush {
		h.schedule(s)
	}
}

// ackLocked advances the cumulative ack cursor (requires mu). Returns how
// many window events were confirmed and whether the freed window space makes
// the session flushable again.
func (s *Session) ackLocked(seq uint64) (acked int, canFlush bool) {
	if seq > s.sendSeq {
		seq = s.sendSeq
	}
	if seq <= s.ackSeq {
		return 0, false
	}
	s.ackSeq = seq
	now := s.hub.now()
	i := 0
	for i < len(s.window) && s.window[i].Seq <= seq {
		s.hub.hAckLatency.Observe(now.Sub(s.window[i].sentAt))
		i++
	}
	s.window = s.window[i:]
	j := 0
	for j < len(s.resend) && s.resend[j].Seq <= seq {
		j++
	}
	s.resend = s.resend[j:]
	return i, s.state == StateAttached && s.flushableLocked()
}

// snapshot captures the session state for tests and accounting.
func (s *Session) snapshot() SessionSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	ss := SessionSnapshot{
		Sub:     s.sub,
		State:   s.state,
		AckSeq:  s.ackSeq,
		SendSeq: s.sendSeq,
		Queued:  len(s.queue),
		Window:  len(s.window),
	}
	if len(s.queue) > 0 {
		ss.QueuedDocs = make([]uint64, len(s.queue))
		for i, ev := range s.queue {
			ss.QueuedDocs[i] = ev.DocID
		}
	}
	if len(s.window) > 0 {
		ss.WindowDocs = make([]uint64, len(s.window))
		for i, ev := range s.window {
			ss.WindowDocs[i] = ev.DocID
		}
	}
	return ss
}

// mergeFilterIDs unions add into dst, preserving dst's order.
func mergeFilterIDs(dst, add []model.FilterID) []model.FilterID {
	for _, id := range add {
		dup := false
		for _, have := range dst {
			if have == id {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, id)
		}
	}
	return dst
}
