package delivery

import (
	"net"
	"testing"
	"time"

	"github.com/movesys/move/internal/model"
)

func startServer(t *testing.T, cfg Config) (*Hub, *Server) {
	t.Helper()
	hub := NewHub(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(ln, hub, time.Second)
	t.Cleanup(func() {
		_ = srv.Close()
		hub.Stop()
	})
	return hub, srv
}

// TestServerEndToEnd runs the full wire protocol over loopback TCP:
// hello/hello-ok, streamed events, cumulative acks, disconnect, and
// resumed redelivery on reconnect.
func TestServerEndToEnd(t *testing.T) {
	hub, srv := startServer(t, Config{Workers: 2, FlushBatch: 4})
	addr := srv.Addr().String()

	cl, err := Dial(addr, "alice", 0)
	if err != nil {
		t.Fatal(err)
	}
	if h := cl.Hello(); h.AckSeq != 0 || h.NextSeq != 1 || h.Redeliver != 0 {
		t.Fatalf("hello = %+v", h)
	}

	for doc := uint64(1); doc <= 5; doc++ {
		hub.Deliver("alice", doc, []model.FilterID{model.FilterID(doc * 10)}, []string{"news", "tech"})
	}
	var got []*Event
	for len(got) < 5 {
		msg, err := cl.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if msg.Bye != "" {
			t.Fatalf("unexpected bye: %s", msg.Bye)
		}
		got = append(got, msg.Events...)
	}
	for i, ev := range got {
		if ev.Seq != uint64(i+1) || ev.DocID != uint64(i+1) {
			t.Fatalf("event %d = seq %d doc %d", i, ev.Seq, ev.DocID)
		}
		if len(ev.Terms) != 2 || ev.Terms[0] != "news" {
			t.Fatalf("event %d terms = %v", i, ev.Terms)
		}
	}

	// Ack 3 of 5, drop the connection, reconnect with the same cursor:
	// exactly 4 and 5 come back.
	if err := cl.Ack(3); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "server-side ack", func() bool {
		ss, _ := hub.Snapshot("alice")
		return ss.AckSeq == 3
	})
	_ = cl.Close()
	waitFor(t, "detach", func() bool {
		ss, _ := hub.Snapshot("alice")
		return ss.State == StateDetached
	})

	cl2, err := Dial(addr, "alice", 3)
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	if h := cl2.Hello(); h.AckSeq != 3 || h.Redeliver != 2 {
		t.Fatalf("resume hello = %+v, want ack 3, redeliver 2", h)
	}
	got = got[:0]
	for len(got) < 2 {
		msg, err := cl2.Recv()
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, msg.Events...)
	}
	if got[0].Seq != 4 || got[1].Seq != 5 {
		t.Fatalf("redelivered seqs = %d,%d want 4,5", got[0].Seq, got[1].Seq)
	}
	if err := cl2.Ack(5); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "window drained", func() bool {
		ss, _ := hub.Snapshot("alice")
		return ss.Window == 0 && ss.AckSeq == 5
	})
}

// TestServerTakeoverBye asserts a second connection for the same
// subscriber receives the flow while the first is told "replaced".
func TestServerTakeoverBye(t *testing.T) {
	hub, srv := startServer(t, Config{Workers: 1})
	addr := srv.Addr().String()

	cl1, err := Dial(addr, "bob", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl1.Close()
	cl2, err := Dial(addr, "bob", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()

	msg, err := cl1.Recv()
	if err == nil && msg.Bye != "replaced" {
		t.Fatalf("first conn got %+v, want bye replaced", msg)
	}
	hub.Deliver("bob", 1, []model.FilterID{1}, []string{"t"})
	msg, err = cl2.Recv()
	if err != nil || len(msg.Events) != 1 {
		t.Fatalf("second conn recv = %+v, %v", msg, err)
	}
}

// TestServerHeartbeat runs a real janitor: the client's transparent pong
// keeps an otherwise silent session attached across several idle windows.
func TestServerHeartbeat(t *testing.T) {
	hub, srv := startServer(t, Config{Workers: 1, HeartbeatEvery: 20 * time.Millisecond, IdleTimeout: 100 * time.Millisecond})
	addr := srv.Addr().String()

	cl, err := Dial(addr, "carol", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			if _, err := cl.Recv(); err != nil {
				return
			}
		}
	}()

	time.Sleep(300 * time.Millisecond) // 3x the idle timeout
	if ss, _ := hub.Snapshot("carol"); ss.State != StateAttached {
		t.Fatalf("state = %v, want attached (pongs keep it alive)", ss.State)
	}
	_ = cl.Close()
	<-done
	waitFor(t, "idle kick or detach", func() bool {
		ss, _ := hub.Snapshot("carol")
		return ss.State == StateDetached
	})
}
