package delivery

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/movesys/move/internal/model"
)

// testConn is an in-process Conn that records everything the hub sends and
// can be switched into a failure mode between calls. Events are copied by
// value — the hub owns the *Event objects and recycles them after acks, so a
// Conn must not retain the pointers.
type testConn struct {
	mu       sync.Mutex
	hellos   []HelloInfo
	events   []Event
	attempts int
	pings    int
	byes     []string
	closed   bool
	sendErr  error
}

func (c *testConn) SendHello(info HelloInfo) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hellos = append(c.hellos, info)
	return nil
}

func (c *testConn) SendEvents(evs []*Event) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.attempts++
	if c.sendErr != nil {
		return c.sendErr
	}
	for _, ev := range evs {
		cp := *ev
		cp.Filters = append([]model.FilterID(nil), ev.Filters...)
		c.events = append(c.events, cp)
	}
	return nil
}

func (c *testConn) SendPing() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pings++
	return nil
}

func (c *testConn) SendBye(reason string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.byes = append(c.byes, reason)
	return nil
}

func (c *testConn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	return nil
}

func (c *testConn) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

func (c *testConn) setErr(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sendErr = err
}

func (c *testConn) received() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

func (c *testConn) lastBye() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.byes) == 0 {
		return ""
	}
	return c.byes[len(c.byes)-1]
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// dropRecorder collects OnDrop callbacks.
type dropRecorder struct {
	mu    sync.Mutex
	drops []string // "docID/reason"
}

func (d *dropRecorder) hook(sub string, docID uint64, reason string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.drops = append(d.drops, fmt.Sprintf("%d/%s", docID, reason))
}

func (d *dropRecorder) list() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]string(nil), d.drops...)
}

func counterValue(h *Hub, name string) int64 { return h.Metrics().Counter(name).Value() }

func fid(id uint64) []model.FilterID { return []model.FilterID{model.FilterID(id)} }

// TestPolicyDropOldest drives a detached (maximally slow) consumer past its
// queue bound and asserts the exact surviving queue, the drop counter, and
// the per-event accounting callbacks.
func TestPolicyDropOldest(t *testing.T) {
	rec := &dropRecorder{}
	h := NewHub(Config{QueueCap: 3, Policy: DropOldest, Workers: 1, OnDrop: rec.hook})
	defer h.Stop()

	for doc := uint64(1); doc <= 5; doc++ {
		h.Deliver("s", doc, fid(doc), []string{"t"})
	}
	ss, ok := h.Snapshot("s")
	if !ok {
		t.Fatal("no session")
	}
	if ss.State != StateDetached {
		t.Fatalf("state = %v, want detached", ss.State)
	}
	if want := []uint64{3, 4, 5}; fmt.Sprint(ss.QueuedDocs) != fmt.Sprint(want) {
		t.Fatalf("queue = %v, want %v", ss.QueuedDocs, want)
	}
	if got := counterValue(h, "delivery.drops.oldest"); got != 2 {
		t.Fatalf("drops.oldest = %d, want 2", got)
	}
	if want := []string{"1/drop-oldest", "2/drop-oldest"}; fmt.Sprint(rec.list()) != fmt.Sprint(want) {
		t.Fatalf("OnDrop = %v, want %v", rec.list(), want)
	}
	if got := counterValue(h, "delivery.enqueued"); got != 5 {
		t.Fatalf("enqueued = %d, want 5", got)
	}
}

// TestPolicyCoalesceByDoc asserts same-document merging (one queued event,
// filter-ID union, no drop) and the DropOldest fallback when a full queue
// holds no event for the incoming document.
func TestPolicyCoalesceByDoc(t *testing.T) {
	rec := &dropRecorder{}
	h := NewHub(Config{QueueCap: 3, Policy: CoalesceByDoc, Workers: 1, OnDrop: rec.hook})
	defer h.Stop()

	h.Deliver("s", 1, fid(10), []string{"t"})
	h.Deliver("s", 1, fid(11), []string{"t"}) // merges into doc 1
	h.Deliver("s", 2, fid(12), []string{"t"})
	h.Deliver("s", 3, fid(13), []string{"t"})
	h.Deliver("s", 1, []model.FilterID{11, 14}, []string{"t"}) // merges again, 11 deduped

	ss, _ := h.Snapshot("s")
	if want := []uint64{1, 2, 3}; fmt.Sprint(ss.QueuedDocs) != fmt.Sprint(want) {
		t.Fatalf("queue = %v, want %v", ss.QueuedDocs, want)
	}
	if got := counterValue(h, "delivery.coalesced"); got != 2 {
		t.Fatalf("coalesced = %d, want 2", got)
	}
	if got := counterValue(h, "delivery.drops.oldest"); got != 0 {
		t.Fatalf("drops.oldest = %d, want 0 (merges are not drops)", got)
	}

	s, _ := h.Session("s")
	s.mu.Lock()
	gotFilters := fmt.Sprint(s.queue[s.qhead].Filters)
	s.mu.Unlock()
	if want := fmt.Sprint([]model.FilterID{10, 11, 14}); gotFilters != want {
		t.Fatalf("coalesced filters = %v, want %v", gotFilters, want)
	}

	// Full queue, incoming doc 4 has nothing to merge into → fallback.
	h.Deliver("s", 4, fid(15), []string{"t"})
	ss, _ = h.Snapshot("s")
	if want := []uint64{2, 3, 4}; fmt.Sprint(ss.QueuedDocs) != fmt.Sprint(want) {
		t.Fatalf("queue after fallback = %v, want %v", ss.QueuedDocs, want)
	}
	if got := counterValue(h, "delivery.drops.oldest"); got != 1 {
		t.Fatalf("drops.oldest = %d, want 1", got)
	}
	if want := "1/drop-oldest"; fmt.Sprint(rec.list()) != fmt.Sprint([]string{want}) {
		t.Fatalf("OnDrop = %v, want [%s]", rec.list(), want)
	}
}

// TestPolicyDisconnect stalls a reader behind a full window and a full
// queue, then asserts the overflow kills the session: bye + close on the
// connection, every queued and unacked event dropped and accounted, state
// Closed (with subsequent notifications dropped), and a clean revival on
// reattach.
func TestPolicyDisconnect(t *testing.T) {
	rec := &dropRecorder{}
	h := NewHub(Config{QueueCap: 2, WindowCap: 2, FlushBatch: 8, Policy: Disconnect, Workers: 1, OnDrop: rec.hook})
	defer h.Stop()

	conn := &testConn{}
	if _, _, err := h.Attach("s", conn, 0); err != nil {
		t.Fatal(err)
	}
	// Docs 1 and 2 flush into the window (never acked: the reader stalls).
	h.Deliver("s", 1, fid(1), []string{"t"})
	h.Deliver("s", 2, fid(2), []string{"t"})
	waitFor(t, "window to fill", func() bool {
		ss, _ := h.Snapshot("s")
		return ss.Window == 2 && ss.Queued == 0
	})
	// Docs 3 and 4 park in the queue behind the full window.
	h.Deliver("s", 3, fid(3), []string{"t"})
	h.Deliver("s", 4, fid(4), []string{"t"})
	ss, _ := h.Snapshot("s")
	if ss.Queued != 2 || ss.Window != 2 {
		t.Fatalf("queued=%d window=%d, want 2/2", ss.Queued, ss.Window)
	}
	// Doc 5 overflows: the session dies.
	h.Deliver("s", 5, fid(5), []string{"t"})

	ss, _ = h.Snapshot("s")
	if ss.State != StateClosed {
		t.Fatalf("state = %v, want closed", ss.State)
	}
	if ss.Queued != 0 || ss.Window != 0 {
		t.Fatalf("queued=%d window=%d after kill, want 0/0", ss.Queued, ss.Window)
	}
	if !conn.isClosed() {
		t.Fatal("connection not closed")
	}
	if got := conn.lastBye(); got != "slow-consumer: disconnect" {
		t.Fatalf("bye = %q", got)
	}
	if got := counterValue(h, "delivery.drops.disconnect"); got != 5 {
		t.Fatalf("drops.disconnect = %d, want 5", got)
	}
	// Accounting covers the queue (3,4), the unacked window (1,2), and the
	// overflowing event itself (5).
	want := []string{"3/disconnect", "4/disconnect", "1/disconnect", "2/disconnect", "5/disconnect"}
	if fmt.Sprint(rec.list()) != fmt.Sprint(want) {
		t.Fatalf("OnDrop = %v, want %v", rec.list(), want)
	}

	// Closed sessions keep dropping (and keep accounting).
	h.Deliver("s", 6, fid(6), []string{"t"})
	if got := counterValue(h, "delivery.drops.disconnect"); got != 6 {
		t.Fatalf("drops.disconnect after closed-drop = %d, want 6", got)
	}
	ss, _ = h.Snapshot("s")
	if ss.Queued != 0 {
		t.Fatalf("closed session queued %d events", ss.Queued)
	}

	// Reattach revives the session; the dropped range is visible as the gap
	// up to NextSeq.
	conn2 := &testConn{}
	_, info, err := h.Attach("s", conn2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if info.NextSeq != 3 || info.Redeliver != 0 {
		t.Fatalf("hello = %+v, want NextSeq 3, Redeliver 0", info)
	}
	if got, _ := h.Snapshot("s"); got.State != StateAttached {
		t.Fatalf("state after revival = %v", got.State)
	}
	h.Deliver("s", 7, fid(7), []string{"t"})
	waitFor(t, "post-revival delivery", func() bool { return len(conn2.received()) == 1 })
	if evs := conn2.received(); evs[0].Seq != 3 || evs[0].DocID != 7 {
		t.Fatalf("revived delivery = seq %d doc %d, want 3/7", evs[0].Seq, evs[0].DocID)
	}
}

// TestStalledTransition parks a session on a write-timeout error and
// asserts the janitor retry path: Stalled → (sweep) → Attached → flushed.
func TestStalledTransition(t *testing.T) {
	h := NewHub(Config{QueueCap: 8, WindowCap: 8, Workers: 1})
	defer h.Stop()

	conn := &testConn{}
	conn.setErr(ErrStalled)
	if _, _, err := h.Attach("s", conn, 0); err != nil {
		t.Fatal(err)
	}
	h.Deliver("s", 1, fid(1), []string{"t"})
	waitFor(t, "stall", func() bool {
		ss, _ := h.Snapshot("s")
		return ss.State == StateStalled
	})
	ss, _ := h.Snapshot("s")
	if ss.Window != 1 {
		t.Fatalf("window = %d, want 1 (event stays staged while stalled)", ss.Window)
	}
	if len(conn.received()) != 0 {
		t.Fatal("stalled conn received events")
	}

	// Reader recovers; the sweep retries the flush.
	conn.setErr(nil)
	h.Sweep()
	waitFor(t, "retry delivery", func() bool { return len(conn.received()) == 1 })
	ss, _ = h.Snapshot("s")
	if ss.State != StateAttached {
		t.Fatalf("state = %v, want attached", ss.State)
	}
	if got := counterValue(h, "delivery.redelivered"); got != 1 {
		t.Fatalf("redelivered = %d, want 1 (retry resends the staged event)", got)
	}

	// Ack drains the window.
	h.Ack("s", 1)
	ss, _ = h.Snapshot("s")
	if ss.Window != 0 || ss.AckSeq != 1 {
		t.Fatalf("window=%d ack=%d after ack, want 0/1", ss.Window, ss.AckSeq)
	}
	if got := counterValue(h, "delivery.acked"); got != 1 {
		t.Fatalf("acked = %d, want 1", got)
	}
}

// TestHardConnErrorDetaches asserts that a non-stalled send error drops the
// connection (the stream may hold a partial frame) but preserves the
// window for the next attach.
func TestHardConnErrorDetaches(t *testing.T) {
	h := NewHub(Config{Workers: 1})
	defer h.Stop()

	conn := &testConn{}
	conn.setErr(errors.New("broken pipe"))
	if _, _, err := h.Attach("s", conn, 0); err != nil {
		t.Fatal(err)
	}
	h.Deliver("s", 1, fid(1), []string{"t"})
	waitFor(t, "detach", func() bool {
		ss, _ := h.Snapshot("s")
		return ss.State == StateDetached
	})
	if !conn.isClosed() {
		t.Fatal("broken connection not closed")
	}
	ss, _ := h.Snapshot("s")
	if ss.Window != 1 {
		t.Fatalf("window = %d, want 1 (preserved for reattach)", ss.Window)
	}

	conn2 := &testConn{}
	_, info, err := h.Attach("s", conn2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if info.Redeliver != 1 {
		t.Fatalf("redeliver = %d, want 1", info.Redeliver)
	}
	waitFor(t, "redelivery", func() bool { return len(conn2.received()) == 1 })
	if got := conn2.received()[0].Seq; got != 1 {
		t.Fatalf("redelivered seq = %d, want 1", got)
	}
}

// TestAttachReplacesConnection asserts last-writer-wins takeover: the old
// connection gets a "replaced" bye and the new one the flow.
func TestAttachReplacesConnection(t *testing.T) {
	h := NewHub(Config{Workers: 1})
	defer h.Stop()

	old := &testConn{}
	if _, _, err := h.Attach("s", old, 0); err != nil {
		t.Fatal(err)
	}
	fresh := &testConn{}
	if _, _, err := h.Attach("s", fresh, 0); err != nil {
		t.Fatal(err)
	}
	if got := old.lastBye(); got != "replaced" {
		t.Fatalf("old bye = %q, want replaced", got)
	}
	if !old.isClosed() {
		t.Fatal("old connection not closed")
	}
	h.Deliver("s", 1, fid(1), []string{"t"})
	waitFor(t, "delivery on new conn", func() bool { return len(fresh.received()) == 1 })
	if len(old.received()) != 0 {
		t.Fatal("replaced connection still receiving")
	}
	if got := counterValue(h, "delivery.kicks.replaced"); got != 1 {
		t.Fatalf("kicks.replaced = %d, want 1", got)
	}
}

// TestIdleKickAndHeartbeat drives the sweep with a fake clock: a connection
// with no inbound activity past the idle timeout is detached (queue
// preserved), and a quiet-but-alive connection gets pinged.
func TestIdleKickAndHeartbeat(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(0, 0)
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		mu.Lock()
		now = now.Add(d)
		mu.Unlock()
	}
	h := NewHub(Config{Workers: 1, HeartbeatEvery: 10 * time.Second, IdleTimeout: 30 * time.Second, Clock: clock})
	defer h.Stop()
	// No janitor interference: HeartbeatEvery spawns one, but its real-time
	// ticks observe the same fake clock, so sweeps are deterministic here.

	conn := &testConn{}
	if _, _, err := h.Attach("s", conn, 0); err != nil {
		t.Fatal(err)
	}

	advance(15 * time.Second) // past heartbeat, inside idle budget
	h.Sweep()
	waitFor(t, "ping", func() bool {
		conn.mu.Lock()
		defer conn.mu.Unlock()
		return conn.pings == 1
	})
	if ss, _ := h.Snapshot("s"); ss.State != StateAttached {
		t.Fatalf("state = %v, want attached", ss.State)
	}

	// A pong keeps the session alive.
	s, _ := h.Session("s")
	s.Touch()
	advance(20 * time.Second)
	h.Sweep() // 20s since pong: pinged again, not kicked
	if ss, _ := h.Snapshot("s"); ss.State != StateAttached {
		t.Fatalf("state after pong = %v, want attached", ss.State)
	}

	// Silence past the idle timeout: kicked, queue preserved.
	h.Deliver("s", 9, fid(9), []string{"t"})
	waitFor(t, "delivery", func() bool { return len(conn.received()) == 1 })
	advance(31 * time.Second)
	h.Sweep()
	ss, _ := h.Snapshot("s")
	if ss.State != StateDetached {
		t.Fatalf("state = %v, want detached after idle kick", ss.State)
	}
	if got := conn.lastBye(); got != "idle-timeout" {
		t.Fatalf("bye = %q, want idle-timeout", got)
	}
	if ss.Window != 1 {
		t.Fatalf("window = %d, want 1 (kick preserves unacked events)", ss.Window)
	}
	if got := counterValue(h, "delivery.kicks.idle"); got != 1 {
		t.Fatalf("kicks.idle = %d, want 1", got)
	}
}

// TestParsePolicy covers the flag spellings both ways.
func TestParsePolicy(t *testing.T) {
	for _, p := range []Policy{DropOldest, CoalesceByDoc, Disconnect} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Fatal("ParsePolicy(bogus) succeeded")
	}
}
