package delivery

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/movesys/move/internal/codec"
)

// TestShardedRegistry covers the lock-striped session registry: power-of-two
// rounding, striping across more than one shard, per-shard counts rolling up
// to the session total, and DeliverBatch resolving (and creating) sessions
// shard-by-shard with the same observable behavior as per-subscriber
// Deliver calls.
func TestShardedRegistry(t *testing.T) {
	h := NewHub(Config{Workers: 1, Shards: 5})
	defer h.Stop()
	if got := h.Shards(); got != 8 {
		t.Fatalf("Shards() = %d, want 8 (5 rounded up to a power of two)", got)
	}

	const n = 256
	for i := 0; i < n; i++ {
		h.Deliver(fmt.Sprintf("sub-%d", i), 1, fid(uint64(i)), []string{"t"})
	}
	if got := h.SessionCount(); got != n {
		t.Fatalf("SessionCount = %d, want %d", got, n)
	}
	counts := h.ShardSessions()
	if len(counts) != 8 {
		t.Fatalf("ShardSessions len = %d, want 8", len(counts))
	}
	sum, populated := 0, 0
	for _, c := range counts {
		sum += c
		if c > 0 {
			populated++
		}
	}
	if sum != n {
		t.Fatalf("per-shard counts sum to %d, want %d", sum, n)
	}
	if populated < 2 {
		t.Fatalf("only %d shard(s) populated by %d subscribers — striping broken", populated, n)
	}

	// DeliverBatch: half the subscribers exist, half are created on the fly.
	notifs := make([]Notification, 0, 64)
	for i := 0; i < 32; i++ {
		notifs = append(notifs, Notification{Sub: fmt.Sprintf("sub-%d", i), Filters: fid(uint64(1000 + i))})
		notifs = append(notifs, Notification{Sub: fmt.Sprintf("fresh-%d", i), Filters: fid(uint64(2000 + i))})
	}
	h.DeliverBatch(99, []string{"x"}, notifs)
	if got := h.SessionCount(); got != n+32 {
		t.Fatalf("SessionCount after batch = %d, want %d", got, n+32)
	}
	for _, nt := range notifs {
		ss, ok := h.Snapshot(nt.Sub)
		if !ok {
			t.Fatalf("no session for %q after DeliverBatch", nt.Sub)
		}
		found := false
		for _, d := range ss.QueuedDocs {
			if d == 99 {
				found = true
			}
		}
		if !found {
			t.Fatalf("%q queue %v missing doc 99", nt.Sub, ss.QueuedDocs)
		}
	}
}

// TestDeliverBatchMatchesDeliver proves the batched enqueue path is
// observably identical to the one-call-per-subscriber path.
func TestDeliverBatchMatchesDeliver(t *testing.T) {
	a := NewHub(Config{Workers: -1, Shards: 4, Policy: CoalesceByDoc})
	defer a.Stop()
	b := NewHub(Config{Workers: -1, Shards: 4, Policy: CoalesceByDoc})
	defer b.Stop()

	docs := []uint64{7, 8, 7}
	for _, doc := range docs {
		var notifs []Notification
		for i := 0; i < 40; i++ {
			notifs = append(notifs, Notification{Sub: fmt.Sprintf("s%d", i%13), Filters: fid(doc*100 + uint64(i))})
		}
		a.DeliverBatch(doc, []string{"t"}, notifs)
		for _, nt := range notifs {
			b.Deliver(nt.Sub, doc, nt.Filters, []string{"t"})
		}
	}
	for i := 0; i < 13; i++ {
		sub := fmt.Sprintf("s%d", i)
		sa, _ := a.Snapshot(sub)
		sb, _ := b.Snapshot(sub)
		if fmt.Sprint(sa.QueuedDocs) != fmt.Sprint(sb.QueuedDocs) {
			t.Fatalf("%s: batch queue %v != single queue %v", sub, sa.QueuedDocs, sb.QueuedDocs)
		}
	}
}

// TestStopUnderConcurrentEnqueue stops a multi-worker hub while enqueuers
// are hammering attached sessions and asserts the shutdown protocol: Stop
// returns (no worker left parked forever), every ready ring drains, and no
// session is left flagged scheduled. Run with -race this doubles as the
// memory-ordering check on the park/wake protocol.
func TestStopUnderConcurrentEnqueue(t *testing.T) {
	h := NewHub(Config{Workers: 4, Shards: 8, QueueCap: 64, FlushBatch: 8})

	const subs = 64
	sessions := make([]*Session, subs)
	for i := 0; i < subs; i++ {
		var err error
		sessions[i], _, err = h.Attach(fmt.Sprintf("sub-%d", i), &testConn{}, 0)
		if err != nil {
			t.Fatal(err)
		}
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			doc := uint64(g) << 32
			for !stop.Load() {
				doc++
				h.Deliver(fmt.Sprintf("sub-%d", doc%subs), doc, fid(doc), []string{"t"})
			}
		}(g)
	}

	time.Sleep(20 * time.Millisecond)
	done := make(chan struct{})
	go func() {
		h.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Stop did not return in 10s — parked worker leaked")
	}
	stop.Store(true)
	wg.Wait()

	if got := h.readyN.Load(); got != 0 {
		t.Fatalf("readyN = %d after Stop, want 0", got)
	}
	for _, sh := range h.shards {
		sh.rmu.Lock()
		ringLen := len(sh.ring) - sh.rhead
		sh.rmu.Unlock()
		if ringLen != 0 {
			t.Fatalf("shard ring holds %d entries after Stop", ringLen)
		}
	}
	for _, s := range sessions {
		if s.scheduled.Load() {
			t.Fatalf("session %s left scheduled after Stop", s.Sub())
		}
	}
	// Stop is idempotent.
	h.Stop()
}

// TestFlushDelayCoalesces proves both halves of the size-and-deadline
// coalescing rule deterministically (no worker pool; the tick is driven by
// hand): sparse enqueues defer rather than schedule, one coalescer tick
// schedules them, the resulting flush carries the whole accumulation in one
// SendEvents call, and a queue reaching half capacity schedules immediately
// without waiting for the tick.
func TestFlushDelayCoalesces(t *testing.T) {
	h := NewHub(Config{Workers: -1, QueueCap: 64, FlushBatch: 8, FlushDelay: time.Hour})
	defer h.Stop()
	conn := &testConn{}
	s, _, err := h.Attach("s", conn, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.scheduled.Store(false) // clear the attach-time schedule; flush is manual here

	for doc := uint64(1); doc <= 8; doc++ {
		h.Deliver("s", doc, fid(doc), []string{"t"})
	}
	if s.scheduled.Load() {
		t.Fatal("sparse enqueue scheduled immediately despite FlushDelay")
	}
	if !s.deferred.Load() {
		t.Fatal("sparse enqueue did not defer")
	}
	h.drainDeferred(nil)
	if !s.scheduled.Load() {
		t.Fatal("coalescer tick did not schedule the deferred session")
	}
	if s.deferred.Load() {
		t.Fatal("deferred flag not cleared by the tick")
	}
	s.scheduled.Store(false)
	s.flush()
	if got := len(conn.received()); got != 8 {
		t.Fatalf("received %d events, want 8", got)
	}
	conn.mu.Lock()
	attempts := conn.attempts
	conn.mu.Unlock()
	if attempts != 1 {
		t.Fatalf("8 deferred enqueues took %d SendEvents calls, want 1 coalesced batch", attempts)
	}

	// The size bound: a queue deeper than FlushBatch still defers — the
	// whole point of the window is accumulating a multi-frame payload —
	// but reaching half of QueueCap preempts the deadline so coalescing
	// latency never turns into policy drops.
	for doc := uint64(9); doc <= 24; doc++ {
		h.Deliver("s", doc, fid(doc), []string{"t"})
	}
	if s.scheduled.Load() {
		t.Fatal("queue above FlushBatch but below half capacity scheduled early")
	}
	for doc := uint64(25); doc <= 40; doc++ {
		h.Deliver("s", doc, fid(doc), []string{"t"})
	}
	if !s.scheduled.Load() {
		t.Fatal("queue at half capacity did not schedule immediately")
	}
}

// TestWireConnCoalescesFrames drives the buffered TCP writer directly over
// a net.Pipe: consecutive SendEvents calls buffer without touching the
// socket, one Flush puts every frame on the wire in a single Write, and the
// hub's flush metrics record the ratio.
func TestWireConnCoalescesFrames(t *testing.T) {
	h := NewHub(Config{Workers: -1})
	defer h.Stop()
	client, server := net.Pipe()
	defer client.Close()
	wc := &wireConn{c: server, hub: h, maxBuf: DefaultCoalesceBytes}
	defer wc.Close()

	type frame struct {
		typ byte
		n   int
	}
	frames := make(chan frame, 16)
	go func() {
		for {
			payload, err := ReadFrame(client)
			if err != nil {
				close(frames)
				return
			}
			frames <- frame{typ: payload[0], n: len(payload)}
		}
	}()

	evs := func(seq uint64) []*Event {
		return []*Event{{Seq: seq, DocID: seq, Filters: fid(seq), Terms: []string{"t"}}}
	}
	for seq := uint64(1); seq <= 3; seq++ {
		if err := wc.SendEvents(evs(seq)); err != nil {
			t.Fatal(err)
		}
	}
	if got := counterValue(h, "delivery.flush.syscalls"); got != 0 {
		t.Fatalf("syscalls = %d before Flush, want 0 (frames must buffer)", got)
	}
	if err := wc.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		select {
		case f := <-frames:
			if f.typ != frameEvents {
				t.Fatalf("frame %d type = %d, want events", i, f.typ)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("frame %d never arrived", i)
		}
	}
	if got := counterValue(h, "delivery.flush.syscalls"); got != 1 {
		t.Fatalf("syscalls = %d, want 1 (3 frames in one write)", got)
	}
	if got := counterValue(h, "delivery.flush.frames"); got != 3 {
		t.Fatalf("frames = %d, want 3", got)
	}
	if fps, _, _, _ := h.FlushStats(); fps != 3.0 {
		t.Fatalf("frames_per_syscall = %v, want 3.0", fps)
	}

	// A control frame (ping) flushes immediately, carrying any buffered
	// events ahead of it in the same write.
	if err := wc.SendEvents(evs(4)); err != nil {
		t.Fatal(err)
	}
	if err := wc.SendPing(); err != nil {
		t.Fatal(err)
	}
	types := []byte{}
	for i := 0; i < 2; i++ {
		select {
		case f := <-frames:
			types = append(types, f.typ)
		case <-time.After(5 * time.Second):
			t.Fatal("control flush frames never arrived")
		}
	}
	if types[0] != frameEvents || types[1] != framePing {
		t.Fatalf("control flush order = %v, want [events ping]", types)
	}
	if got := counterValue(h, "delivery.flush.syscalls"); got != 2 {
		t.Fatalf("syscalls = %d after ping flush, want 2", got)
	}

	// The size bound: a buffer passing maxBuf flushes without waiting.
	small := &wireConn{c: server, hub: h, maxBuf: 8}
	if err := small.SendEvents(evs(9)); err != nil {
		t.Fatal(err)
	}
	select {
	case f := <-frames:
		if f.typ != frameEvents {
			t.Fatalf("size-bound flush type = %d", f.typ)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("size-bound flush never arrived")
	}
}

// TestServerWriterCoalesced runs a real hub + server over loopback TCP with
// a multi-event backlog and asserts the wire writer achieved > 1 frame per
// syscall on the event stream (the end-to-end version of the ratio the 1M
// bench gates on).
func TestServerWriterCoalesced(t *testing.T) {
	h := NewHub(Config{Workers: 1, FlushBatch: 4, QueueCap: 1 << 12})
	defer h.Stop()
	// Backlog 32 docs while detached, so the first flush round sends 8
	// batches of 4 through one connection — coalesced into few writes.
	for doc := uint64(1); doc <= 32; doc++ {
		h.Deliver("s", doc, fid(doc), []string{"t"})
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(ln, h, time.Second)
	defer srv.Close()

	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	w := codec.GetWriter()
	AppendHello(w, "s", 0)
	if err := WriteFrame(c, w.Bytes()); err != nil {
		t.Fatal(err)
	}
	codec.PutWriter(w)

	got := 0
	deadline := time.Now().Add(10 * time.Second)
	_ = c.SetReadDeadline(deadline)
	for got < 32 {
		payload, err := ReadFrame(c)
		if err != nil {
			t.Fatalf("after %d events: %v", got, err)
		}
		r := codec.NewReader(payload)
		typ, _ := r.Uint8()
		switch typ {
		case frameHelloOK, framePing:
		case frameEvents:
			evs, err := DecodeEvents(r)
			if err != nil {
				t.Fatal(err)
			}
			got += len(evs)
		default:
			t.Fatalf("unexpected frame %d", typ)
		}
	}
	frames := counterValue(h, "delivery.flush.frames")
	syscalls := counterValue(h, "delivery.flush.syscalls")
	if syscalls == 0 || frames <= syscalls {
		t.Fatalf("frames=%d syscalls=%d — expected >1 frame per write for a 32-doc backlog", frames, syscalls)
	}
}
