package delivery

import (
	"encoding/binary"
	"fmt"
	"io"

	"github.com/movesys/move/internal/codec"
	"github.com/movesys/move/internal/model"
)

// Subscriber-facing frame types. Every frame on a subscriber connection is a
// 4-byte big-endian length prefix followed by a payload whose first byte is
// one of these.
const (
	frameHello   = 1 // client → server: subscriber name + resume ack
	frameHelloOK = 2 // server → client: HelloInfo
	frameEvents  = 3 // server → client: batch of sequenced events
	frameAck     = 4 // client → server: cumulative ack
	framePing    = 5 // server → client: heartbeat probe
	framePong    = 6 // client → server: heartbeat reply
	frameBye     = 7 // server → client: reason, then close
)

// maxFrame bounds a subscriber frame; anything larger is a protocol error.
const maxFrame = 16 << 20

// AppendHello encodes a client hello: the subscriber name and the highest
// sequence number the client has durably consumed (0 for a fresh session).
func AppendHello(w *codec.Writer, sub string, resumeAck uint64) {
	w.Uint8(frameHello)
	w.String(sub)
	w.Uvarint(resumeAck)
}

// DecodeHello decodes a hello payload (after the type byte).
func DecodeHello(r *codec.Reader) (sub string, resumeAck uint64, err error) {
	if sub, err = r.String(); err != nil {
		return "", 0, err
	}
	if resumeAck, err = r.Uvarint(); err != nil {
		return "", 0, err
	}
	return sub, resumeAck, nil
}

// AppendHelloOK encodes the server's attach response.
func AppendHelloOK(w *codec.Writer, info HelloInfo) {
	w.Uint8(frameHelloOK)
	w.Uvarint(info.AckSeq)
	w.Uvarint(info.NextSeq)
	w.Uvarint(uint64(info.Redeliver))
}

// DecodeHelloOK decodes an attach response payload (after the type byte).
func DecodeHelloOK(r *codec.Reader) (HelloInfo, error) {
	var info HelloInfo
	var err error
	if info.AckSeq, err = r.Uvarint(); err != nil {
		return HelloInfo{}, err
	}
	if info.NextSeq, err = r.Uvarint(); err != nil {
		return HelloInfo{}, err
	}
	n, err := r.Uvarint()
	if err != nil {
		return HelloInfo{}, err
	}
	if n > uint64(maxFrame) {
		return HelloInfo{}, fmt.Errorf("delivery: redeliver count %d overflows frame", n)
	}
	info.Redeliver = int(n)
	return info, nil
}

// AppendEvents encodes a batch of sequenced events.
func AppendEvents(w *codec.Writer, evs []*Event) {
	w.Uint8(frameEvents)
	w.Uvarint(uint64(len(evs)))
	for _, ev := range evs {
		w.Uvarint(ev.Seq)
		w.Uvarint(ev.DocID)
		w.Uvarint(uint64(len(ev.Filters)))
		for _, id := range ev.Filters {
			w.Uvarint(uint64(id))
		}
		w.StringSlice(ev.Terms)
	}
}

// DecodeEvents decodes an events payload (after the type byte).
func DecodeEvents(r *codec.Reader) ([]*Event, error) {
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(r.Remaining()) {
		return nil, fmt.Errorf("delivery: event count %d overflows payload", n)
	}
	evs := make([]*Event, 0, n)
	for i := uint64(0); i < n; i++ {
		ev := &Event{}
		if ev.Seq, err = r.Uvarint(); err != nil {
			return nil, err
		}
		if ev.DocID, err = r.Uvarint(); err != nil {
			return nil, err
		}
		nf, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		if nf > uint64(r.Remaining()) {
			return nil, fmt.Errorf("delivery: filter count %d overflows payload", nf)
		}
		if nf > 0 {
			ev.Filters = make([]model.FilterID, nf)
			for j := range ev.Filters {
				v, err := r.Uvarint()
				if err != nil {
					return nil, err
				}
				ev.Filters[j] = model.FilterID(v)
			}
		}
		if ev.Terms, err = r.StringSlice(); err != nil {
			return nil, err
		}
		evs = append(evs, ev)
	}
	return evs, nil
}

// AppendAck encodes a cumulative ack.
func AppendAck(w *codec.Writer, seq uint64) {
	w.Uint8(frameAck)
	w.Uvarint(seq)
}

// DecodeAck decodes an ack payload (after the type byte).
func DecodeAck(r *codec.Reader) (uint64, error) { return r.Uvarint() }

// AppendBye encodes a bye with its reason.
func AppendBye(w *codec.Writer, reason string) {
	w.Uint8(frameBye)
	w.String(reason)
}

// DecodeBye decodes a bye payload (after the type byte).
func DecodeBye(r *codec.Reader) (string, error) { return r.String() }

// Notification is one subscriber's slice of a routed delivery batch: the
// filter IDs of theirs that matched the document.
type Notification struct {
	Sub     string
	Filters []model.FilterID
}

// Batch is the node-to-node delivery payload (msgDeliverBatch body): one
// matched document plus every notification bound for sessions owned by the
// destination node. The document is encoded once no matter how many
// subscribers it fans out to — the same coalescing discipline as the
// publish fan-out.
type Batch struct {
	DocID  uint64
	Terms  []string
	Notifs []Notification
}

// AppendBatch encodes a routed delivery batch (no type byte — the node
// layer owns its message-type namespace).
func AppendBatch(w *codec.Writer, b *Batch) {
	w.Uvarint(b.DocID)
	w.StringSlice(b.Terms)
	w.Uvarint(uint64(len(b.Notifs)))
	for i := range b.Notifs {
		n := &b.Notifs[i]
		w.String(n.Sub)
		w.Uvarint(uint64(len(n.Filters)))
		for _, id := range n.Filters {
			w.Uvarint(uint64(id))
		}
	}
}

// DecodeBatch decodes a routed delivery batch.
func DecodeBatch(r *codec.Reader) (*Batch, error) {
	b := &Batch{}
	var err error
	if b.DocID, err = r.Uvarint(); err != nil {
		return nil, err
	}
	if b.Terms, err = r.StringSlice(); err != nil {
		return nil, err
	}
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(r.Remaining()) {
		return nil, fmt.Errorf("delivery: notification count %d overflows payload", n)
	}
	b.Notifs = make([]Notification, 0, n)
	for i := uint64(0); i < n; i++ {
		var nt Notification
		if nt.Sub, err = r.String(); err != nil {
			return nil, err
		}
		nf, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		if nf > uint64(r.Remaining()) {
			return nil, fmt.Errorf("delivery: filter count %d overflows payload", nf)
		}
		if nf > 0 {
			nt.Filters = make([]model.FilterID, nf)
			for j := range nt.Filters {
				v, err := r.Uvarint()
				if err != nil {
					return nil, err
				}
				nt.Filters[j] = model.FilterID(v)
			}
		}
		b.Notifs = append(b.Notifs, nt)
	}
	return b, nil
}

// AppendFrame appends one length-prefixed frame to dst — the coalescing
// writer's building block: several frames appended back-to-back form one
// contiguous buffer a single Write puts on the wire. The payload must start
// with a frame-type byte.
func AppendFrame(dst []byte, payload []byte) ([]byte, error) {
	if len(payload) > maxFrame {
		return dst, fmt.Errorf("delivery: frame of %d bytes exceeds max %d", len(payload), maxFrame)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...), nil
}

// WriteFrame writes one length-prefixed frame. The payload must start with
// a frame-type byte.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("delivery: frame of %d bytes exceeds max %d", len(payload), maxFrame)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed frame, returning the payload.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return nil, fmt.Errorf("delivery: empty frame")
	}
	if n > maxFrame {
		return nil, fmt.Errorf("delivery: frame of %d bytes exceeds max %d", n, maxFrame)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}
