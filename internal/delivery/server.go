package delivery

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/movesys/move/internal/codec"
)

// Server accepts subscriber TCP connections and binds them to hub sessions.
// The protocol is length-prefixed codec frames: the client opens with a
// hello (subscriber name + resume ack), the server replies hello-ok and
// streams event frames; the client sends cumulative acks and pong replies.
type Server struct {
	hub          *Hub
	ln           net.Listener
	writeTimeout time.Duration

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// Serve starts accepting subscriber connections on ln. writeTimeout bounds
// each frame write to a subscriber (0 means no deadline); a timed-out write
// detaches the session (the stream may hold a partial frame, so the
// connection is not reusable — the bounded queue holds the backlog for the
// reconnect).
func Serve(ln net.Listener, hub *Hub, writeTimeout time.Duration) *Server {
	s := &Server{hub: hub, ln: ln, writeTimeout: writeTimeout, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listener address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close stops accepting, closes every live subscriber connection, and waits
// for the per-connection goroutines to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = c.Close()
			return
		}
		s.conns[c] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(c)
	}
}

func (s *Server) forget(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

func (s *Server) handle(c net.Conn) {
	defer s.wg.Done()
	defer s.forget(c)
	wc := &wireConn{c: c, writeTimeout: s.writeTimeout, hub: s.hub, maxBuf: s.hub.CoalesceBytes()}

	// First frame must be the hello.
	payload, err := ReadFrame(c)
	if err != nil {
		_ = c.Close()
		return
	}
	r := codec.NewReader(payload)
	t, err := r.Uint8()
	if err != nil || t != frameHello {
		_ = wc.SendBye("protocol: expected hello")
		_ = c.Close()
		return
	}
	sub, resumeAck, err := DecodeHello(r)
	if err != nil || sub == "" {
		_ = wc.SendBye("protocol: bad hello")
		_ = c.Close()
		return
	}
	sess, _, err := s.hub.Attach(sub, wc, resumeAck)
	if err != nil {
		_ = c.Close()
		return
	}

	// Inbound loop: acks and pongs. A dead socket detaches the session;
	// its queue and window survive for the reconnect.
	for {
		payload, err := ReadFrame(c)
		if err != nil {
			sess.Detach(wc)
			_ = c.Close()
			return
		}
		r := codec.NewReader(payload)
		t, err := r.Uint8()
		if err != nil {
			sess.Detach(wc)
			_ = c.Close()
			return
		}
		switch t {
		case frameAck:
			seq, err := DecodeAck(r)
			if err != nil {
				sess.Detach(wc)
				_ = c.Close()
				return
			}
			sess.Ack(seq)
		case framePong:
			sess.Touch()
		default:
			_ = wc.SendBye(fmt.Sprintf("protocol: unexpected frame %d", t))
			sess.Detach(wc)
			_ = c.Close()
			return
		}
	}
}

// wireConn adapts one subscriber TCP connection to the Conn sink. Writes
// are serialized (flush workers and the janitor both send) and bounded by
// the server's write timeout. A timed-out write returns the raw error — not
// ErrStalled — because the stream may carry a partial frame and must be
// dropped, not retried.
//
// Event frames coalesce: SendEvents appends the length-prefixed frame to a
// pending buffer instead of issuing a syscall, and the buffer goes to the
// wire in one Write when the hub's flush round ends (Flush), when the buffer
// passes maxBuf (the size bound), or when a control frame (hello, ping, bye)
// needs the stream ordered now. One SetWriteDeadline covers each physical
// flush, not each frame.
type wireConn struct {
	c            net.Conn
	writeTimeout time.Duration
	hub          *Hub
	maxBuf       int

	wmu    sync.Mutex
	closed bool
	buf    []byte
	frames int
}

var errConnClosed = errors.New("delivery: connection closed")

// appendFrame encodes one frame into the pending buffer (requires wmu).
func (w *wireConn) appendFrameLocked(build func(enc *codec.Writer)) error {
	enc := codec.GetWriter()
	defer codec.PutWriter(enc)
	build(enc)
	var err error
	if w.buf, err = AppendFrame(w.buf, enc.Bytes()); err != nil {
		return err
	}
	w.frames++
	return nil
}

// flushLocked writes every pending frame in one syscall under one write
// deadline (requires wmu).
func (w *wireConn) flushLocked() error {
	if w.frames == 0 {
		return nil
	}
	if w.writeTimeout > 0 {
		_ = w.c.SetWriteDeadline(time.Now().Add(w.writeTimeout))
	}
	frames, bytes := w.frames, len(w.buf)
	_, err := w.c.Write(w.buf)
	w.buf = w.buf[:0]
	w.frames = 0
	if w.hub != nil {
		w.hub.ObserveFlush(frames, bytes)
	}
	return err
}

// writeFrame buffers one frame; immediate forces the buffer to the wire
// before returning (control frames and standalone writers).
func (w *wireConn) writeFrame(immediate bool, build func(enc *codec.Writer)) error {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	if w.closed {
		return errConnClosed
	}
	if err := w.appendFrameLocked(build); err != nil {
		return err
	}
	if immediate || len(w.buf) >= w.maxBuf || w.maxBuf <= 0 {
		return w.flushLocked()
	}
	return nil
}

func (w *wireConn) SendHello(info HelloInfo) error {
	return w.writeFrame(true, func(enc *codec.Writer) { AppendHelloOK(enc, info) })
}

func (w *wireConn) SendEvents(evs []*Event) error {
	return w.writeFrame(false, func(enc *codec.Writer) { AppendEvents(enc, evs) })
}

func (w *wireConn) SendPing() error {
	return w.writeFrame(true, func(enc *codec.Writer) { enc.Uint8(framePing) })
}

func (w *wireConn) SendBye(reason string) error {
	return w.writeFrame(true, func(enc *codec.Writer) { AppendBye(enc, reason) })
}

// Flush implements Flusher: the hub calls it at the end of each flush round
// to put the coalesced event frames on the wire.
func (w *wireConn) Flush() error {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	if w.closed {
		return errConnClosed
	}
	return w.flushLocked()
}

func (w *wireConn) Close() error {
	w.wmu.Lock()
	if w.closed {
		w.wmu.Unlock()
		return nil
	}
	w.closed = true
	w.buf = nil
	w.frames = 0
	w.wmu.Unlock()
	return w.c.Close()
}
