package delivery

import (
	"testing"

	"github.com/movesys/move/internal/model"
	"github.com/movesys/move/internal/testutil"
)

// ackConn is an allocation-free sink: it records only the last sequence so
// the driver can ack (which retires events back to the pool).
type ackConn struct {
	lastSeq uint64
	sends   int
}

func (c *ackConn) SendHello(HelloInfo) error { return nil }
func (c *ackConn) SendEvents(evs []*Event) error {
	c.lastSeq = evs[len(evs)-1].Seq
	c.sends++
	return nil
}
func (c *ackConn) SendPing() error      { return nil }
func (c *ackConn) SendBye(string) error { return nil }
func (c *ackConn) Close() error         { return nil }

// newWarmSession builds a hub with no worker pool (flush is driven inline)
// and warms the enqueue→flush→ack cycle so every pool and backing array has
// reached steady-state capacity.
func newWarmSession(tb testing.TB) (*Hub, *Session, *ackConn) {
	tb.Helper()
	h := NewHub(Config{Workers: -1, QueueCap: 1 << 10, WindowCap: 1 << 10, FlushBatch: 64})
	conn := &ackConn{}
	s, _, err := h.Attach("warm", conn, 0)
	if err != nil {
		tb.Fatal(err)
	}
	filters := []model.FilterID{1, 2}
	terms := []string{"alpha", "beta"}
	for i := 0; i < 4096; i++ {
		h.Deliver("warm", uint64(i), filters, terms)
		if i%64 == 63 {
			s.flush()
			h.Ack("warm", conn.lastSeq)
		}
	}
	s.flush()
	h.Ack("warm", conn.lastSeq)
	s.flush() // recycle the retired events
	return h, s, conn
}

// TestEnqueueFlushZeroAlloc is the warm-path guard: after sharding and
// event pooling, a steady-state enqueue→flush→ack cycle must not allocate.
// Skipped under -race (instrumentation allocates and sync.Pool drops items
// on purpose there).
func TestEnqueueFlushZeroAlloc(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are meaningless under -race")
	}
	h, s, conn := newWarmSession(t)
	defer h.Stop()

	filters := []model.FilterID{1, 2}
	terms := []string{"alpha", "beta"}
	doc := uint64(1 << 20)
	allocs := testing.AllocsPerRun(2000, func() {
		doc++
		h.Deliver("warm", doc, filters, terms)
		s.flush()
		h.Ack("warm", conn.lastSeq)
	})
	if allocs != 0 {
		t.Fatalf("enqueue→flush→ack allocated %.2f times per op, want 0", allocs)
	}
}

// TestDeliverBatchZeroAlloc guards the batched routing entry point the node
// layer uses: the per-shard grouping scratch is pooled, so a warm
// DeliverBatch over existing sessions must not allocate either.
func TestDeliverBatchZeroAlloc(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are meaningless under -race")
	}
	h, s, conn := newWarmSession(t)
	defer h.Stop()

	notifs := []Notification{{Sub: "warm", Filters: []model.FilterID{1, 2}}}
	terms := []string{"alpha", "beta"}
	doc := uint64(1 << 21)
	allocs := testing.AllocsPerRun(2000, func() {
		doc++
		h.DeliverBatch(doc, terms, notifs)
		s.flush()
		h.Ack("warm", conn.lastSeq)
	})
	if allocs != 0 {
		t.Fatalf("DeliverBatch→flush→ack allocated %.2f times per op, want 0", allocs)
	}
}

// BenchmarkHubEnqueueFlush measures the warm enqueue→flush→ack cycle — run
// with -benchmem to see the allocation-free hot path.
func BenchmarkHubEnqueueFlush(b *testing.B) {
	h, s, conn := newWarmSession(b)
	defer h.Stop()

	filters := []model.FilterID{1, 2}
	terms := []string{"alpha", "beta"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Deliver("warm", uint64(i), filters, terms)
		if i%64 == 63 {
			s.flush()
			h.Ack("warm", conn.lastSeq)
		}
	}
	b.StopTimer()
	s.flush()
	h.Ack("warm", conn.lastSeq)
}

// BenchmarkDeliverBatch measures the batched per-shard enqueue path at a
// realistic fan-out (64 subscribers per document).
func BenchmarkDeliverBatch(b *testing.B) {
	h := NewHub(Config{Workers: -1, QueueCap: 64, FlushBatch: 64})
	defer h.Stop()
	notifs := make([]Notification, 64)
	for i := range notifs {
		notifs[i] = Notification{Sub: "sub-" + string(rune('a'+i%26)) + string(rune('a'+i/26)), Filters: []model.FilterID{model.FilterID(i)}}
	}
	terms := []string{"alpha", "beta"}
	h.DeliverBatch(0, terms, notifs) // create the sessions
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.DeliverBatch(uint64(i), terms, notifs)
	}
}
