package alloc

import (
	"fmt"
	"math/rand"

	"github.com/movesys/move/internal/codec"
	"github.com/movesys/move/internal/model"
	"github.com/movesys/move/internal/ring"
)

// Grid is the materialized allocation of one unit's filters (Figure 2): a
// Rows×Cols array of nodes. Each row is one partition holding a full
// replica of the unit's filter set; within a row the filters are separated
// into Cols subsets, one per node. A filter lives at column
// hash(filterID) mod Cols in every row; a document is forwarded to every
// node of one randomly chosen row.
type Grid struct {
	rows  int
	cols  int
	nodes []ring.NodeID // row-major, len = rows*cols
}

// NewGrid lays out nodes row-major. len(nodes) must be ≥ rows*cols; extra
// nodes are ignored.
func NewGrid(rows, cols int, nodes []ring.NodeID) (*Grid, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("%w: grid %dx%d", ErrBadInput, rows, cols)
	}
	if len(nodes) < rows*cols {
		return nil, fmt.Errorf("%w: grid %dx%d needs %d nodes, have %d",
			ErrBadInput, rows, cols, rows*cols, len(nodes))
	}
	g := &Grid{rows: rows, cols: cols}
	g.nodes = append(g.nodes, nodes[:rows*cols]...)
	return g, nil
}

// FitGrid shrinks a desired rows×cols shape to what the available node
// count supports and builds the grid. At minimum it degenerates to 1×1.
func FitGrid(rows, cols int, nodes []ring.NodeID) (*Grid, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("%w: no nodes for grid", ErrBadInput)
	}
	if cols < 1 {
		cols = 1
	}
	if rows < 1 {
		rows = 1
	}
	for cols > len(nodes) {
		cols = len(nodes)
	}
	for rows*cols > len(nodes) {
		rows--
		if rows == 0 {
			rows = 1
			break
		}
	}
	return NewGrid(rows, cols, nodes)
}

// Rows returns the partition count (1/r_i).
func (g *Grid) Rows() int { return g.rows }

// Cols returns the separation width (r_i·n_i).
func (g *Grid) Cols() int { return g.cols }

// Size returns rows*cols.
func (g *Grid) Size() int { return len(g.nodes) }

// Node returns the node at (row, col).
func (g *Grid) Node(row, col int) ring.NodeID {
	return g.nodes[row*g.cols+col]
}

// Column returns the filter-storage column for a filter: the same subset
// index in every partition, so each partition holds a full replica.
func (g *Grid) Column(id model.FilterID) int {
	return int(ring.HashKey(id.String()) % uint64(g.cols))
}

// FilterNodes returns the nodes (one per row) that store filter id.
func (g *Grid) FilterNodes(id model.FilterID) []ring.NodeID {
	col := g.Column(id)
	out := make([]ring.NodeID, g.rows)
	for r := 0; r < g.rows; r++ {
		out[r] = g.Node(r, col)
	}
	return out
}

// RowNodes returns all nodes of one partition row.
func (g *Grid) RowNodes(row int) []ring.NodeID {
	out := make([]ring.NodeID, g.cols)
	copy(out, g.nodes[row*g.cols:(row+1)*g.cols])
	return out
}

// PickRow selects the partition a document is dispatched to. With rng the
// row is uniform random (the paper's choice); otherwise it is derived from
// the document ID, which keeps repeated dispatches deterministic.
func (g *Grid) PickRow(docID uint64, rng *rand.Rand) int {
	if g.rows == 1 {
		return 0
	}
	if rng != nil {
		return rng.Intn(g.rows)
	}
	return int(ring.HashKey(fmt.Sprintf("doc-row-%d", docID)) % uint64(g.rows))
}

// Equal reports whether two grids have identical shape and placement.
// Either receiver may be nil; two nils are equal. The coordinator uses it
// to skip re-preparing a unit whose computed grid did not change.
func (g *Grid) Equal(o *Grid) bool {
	if g == nil || o == nil {
		return g == o
	}
	if g.rows != o.rows || g.cols != o.cols {
		return false
	}
	for i, id := range g.nodes {
		if o.nodes[i] != id {
			return false
		}
	}
	return true
}

// AllNodes returns the grid's nodes row-major (copy).
func (g *Grid) AllNodes() []ring.NodeID {
	return append([]ring.NodeID(nil), g.nodes...)
}

// Encode serializes the grid for the forwarding-table exchange.
func (g *Grid) Encode() []byte {
	w := codec.NewWriter(16 + 16*len(g.nodes))
	w.Uvarint(uint64(g.rows))
	w.Uvarint(uint64(g.cols))
	for _, id := range g.nodes {
		w.String(string(id))
	}
	return w.Bytes()
}

// DecodeGrid parses a grid serialized by Encode.
func DecodeGrid(data []byte) (*Grid, error) {
	r := codec.NewReader(data)
	rows, err := r.Uvarint()
	if err != nil {
		return nil, fmt.Errorf("alloc: grid rows: %w", err)
	}
	cols, err := r.Uvarint()
	if err != nil {
		return nil, fmt.Errorf("alloc: grid cols: %w", err)
	}
	if rows == 0 || cols == 0 || rows*cols > 1<<20 {
		return nil, fmt.Errorf("%w: decoded grid %dx%d", ErrBadInput, rows, cols)
	}
	n := int(rows * cols)
	nodes := make([]ring.NodeID, 0, n)
	for i := 0; i < n; i++ {
		s, err := r.String()
		if err != nil {
			return nil, fmt.Errorf("alloc: grid node %d: %w", i, err)
		}
		nodes = append(nodes, ring.NodeID(s))
	}
	return NewGrid(int(rows), int(cols), nodes)
}
