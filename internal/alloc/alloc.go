// Package alloc implements §IV of the paper: the MOVE optimization problem
// of allocating (replicating + separating) filters across nodes so that
// match throughput is maximized under the cluster-wide storage constraint
// Σ n_i·p_i·P = N·C.
//
// For each allocation unit i (a term, or — per the §V maintenance
// optimization — a whole home node) the optimizer chooses:
//
//   - n_i — how many nodes receive allocated copies of the unit's filters,
//     from the continuous Lagrange solutions of Theorem 1 (n_i ∝ √q_i),
//     Theorem 2 (n_i ∝ √(1+β·q_i), β = y_p·P/y_d) or the general
//     capacity-limited form n_i ∝ √(p_i·q_i), made integral by randomized
//     rounding;
//   - r_i ∈ [1/n_i, 1] — the allocation ratio: the n_i nodes form 1/r_i
//     partitions (replica rows) of r_i·n_i nodes each (separation columns).
//     r_i starts at the throughput-optimal 1/n_i (pure replication) and is
//     tuned up by α_i just enough that each node's share p_i·P/(n_i·r_i)
//     fits the per-node capacity C (§IV-B2).
package alloc

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Strategy selects the allocation-factor formula.
type Strategy int

// Allocation strategies. General is the paper's deployed choice (§V:
// "we use the general result ni ∝ √(pi·qi)"); Uniform is the ablation
// baseline that spreads capacity evenly regardless of skew.
const (
	// StrategyTheorem1 sets n_i ∝ √q_i (match-latency-only model, Eq. 1).
	StrategyTheorem1 Strategy = iota + 1
	// StrategyTheorem2 sets n_i ∝ √(1+β·q_i) (transfer+match model, Eq. 3).
	StrategyTheorem2
	// StrategyGeneral sets n_i ∝ √(p_i·q_i) (capacity-limited general case).
	StrategyGeneral
	// StrategyUniform gives every unit the same n_i (ablation baseline).
	StrategyUniform
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyTheorem1:
		return "theorem1"
	case StrategyTheorem2:
		return "theorem2"
	case StrategyGeneral:
		return "general"
	case StrategyUniform:
		return "uniform"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// Unit is one allocation unit: a term t_i, or a home node m_i whose terms
// were aggregated (§V: p'_i = Σ p_t, q'_i = Σ q_t over terms t on m_i).
type Unit struct {
	// Key identifies the unit (term or node ID).
	Key string
	// Popularity is p_i: the fraction of all filters containing the unit's
	// term(s).
	Popularity float64
	// Frequency is q_i: the fraction of documents containing the unit's
	// term(s).
	Frequency float64
	// Load is the unit's measured share of the cluster's matching work
	// (posting entries scanned), maintained by the §V meta-data store.
	// The p'_i·q'_i product systematically misestimates per-node work when
	// one term dominates a node (the aggregation Jensen gap), so the
	// separation width prefers this measured share when available; zero
	// falls back to the p·q model.
	Load float64
}

// Input is the optimizer's world view.
type Input struct {
	// Units are the allocation units with their statistics.
	Units []Unit
	// TotalFilters is P.
	TotalFilters int
	// TotalDocs is Q, the number of documents per measurement period.
	TotalDocs int
	// Nodes is N, the cluster size.
	Nodes int
	// Capacity is C, the max number of filters (incl. replicas) per node.
	Capacity int
	// YP is y_p, the average latency to match a document against one
	// filter; YD is y_d, the average latency to transfer a document to a
	// node. Only their ratio matters (β = y_p·P/y_d). Zero values default
	// to the measured single-node constants (YP 2µs, YD 500µs).
	YP, YD float64
	// NoSeparation disables the load-balancing separation columns,
	// leaving only the capacity-forced ones — the pure paper formulas
	// (rows-only ablation).
	NoSeparation bool
	// ForceRatio overrides the allocation-ratio choice for every unit
	// (§IV-B's r_i): RatioAuto (default) lets the optimizer pick,
	// RatioReplicate forces r=1/n (pure replication: n partition rows of
	// one node each), RatioSeparate forces r=1 (pure separation: one
	// partition of n subset columns). Used by the ratio ablation.
	ForceRatio RatioMode
}

// RatioMode selects how r_i is chosen.
type RatioMode int

// Ratio modes.
const (
	// RatioAuto lets the optimizer balance replication and separation.
	RatioAuto RatioMode = iota
	// RatioReplicate forces the pure replication scheme of §IV-A.
	RatioReplicate
	// RatioSeparate forces the pure separation scheme of §IV-A.
	RatioSeparate
)

// Factor is the optimizer's decision for one unit.
type Factor struct {
	// Key mirrors Unit.Key.
	Key string
	// N is n_i, the number of allocation nodes granted.
	N int
	// Ratio is r_i ∈ [1/N, 1].
	Ratio float64
	// Rows is the number of partitions (replica rows), ≈ 1/r_i.
	Rows int
	// Cols is the number of separation columns per partition, ≈ r_i·n_i.
	Cols int
	// PerNodeFilters is the expected filter share per allocated node,
	// p_i·P/(n_i·r_i).
	PerNodeFilters float64
	// PerNodeDocs is the expected document share per allocated node,
	// q_i·Q·r_i.
	PerNodeDocs float64
}

// Validation errors.
var (
	// ErrBadInput reports inconsistent optimizer input.
	ErrBadInput = errors.New("alloc: invalid input")
)

// Compute solves the MOVE problem for the given strategy. rng drives the
// randomized rounding of the continuous n_i; a nil rng uses deterministic
// half-up rounding.
func Compute(in Input, s Strategy, rng *rand.Rand) ([]Factor, error) {
	if err := validate(in); err != nil {
		return nil, err
	}
	weights, err := weights(in, s)
	if err != nil {
		return nil, err
	}

	// Scale λ so the storage constraint Σ n_i·p_i·P = N·C holds:
	// n_i = λ·w_i ⇒ λ = N·C / (P·Σ w_i·p_i).
	var wp float64
	for i, u := range in.Units {
		wp += weights[i] * u.Popularity
	}
	budget := float64(in.Nodes) * float64(in.Capacity)
	P := float64(in.TotalFilters)
	lambda := math.Inf(1)
	if wp > 0 {
		lambda = budget / (P * wp)
	}

	// Load shares drive the storage-free separation width: splitting a
	// unit's filters into column subsets spreads its matching work without
	// extra copies (only replica rows consume the Σ n_i·p_i·P budget), at
	// the price of more per-document transfers and posting-list
	// retrievals — the trade Eq. 2's y_d·r term prices. Measured load is
	// preferred; the p·q product is the fallback model.
	var sumLoad, sumPQ float64
	for _, u := range in.Units {
		sumLoad += u.Load
		sumPQ += u.Popularity * u.Frequency
	}
	shareOf := func(u Unit) float64 {
		if sumLoad > 0 {
			return u.Load / sumLoad
		}
		if sumPQ > 0 {
			return u.Popularity * u.Frequency / sumPQ
		}
		return 0
	}

	out := make([]Factor, 0, len(in.Units))
	for i, u := range in.Units {
		cont := lambda * weights[i]
		n := round(cont, rng)
		if n < 1 {
			n = 1
		}
		if n > in.Nodes {
			n = in.Nodes
		}
		var f Factor
		switch in.ForceRatio {
		case RatioReplicate:
			// Pure replication (§IV-A): n full copies, one per partition.
			f = fixedFactor(u, n, 1, in)
		case RatioSeparate:
			// Pure separation (§IV-A): one copy split across n subsets.
			f = fixedFactor(u, 1, n, in)
		default:
			f = buildFactor(u, n, shareOf(u), in)
		}
		out = append(out, f)
	}
	return out, nil
}

// fixedFactor builds a factor with an imposed grid shape.
func fixedFactor(u Unit, rows, cols int, in Input) Factor {
	if rows*cols > in.Nodes {
		if cols > 1 {
			cols = in.Nodes
			rows = 1
		} else {
			rows = in.Nodes
		}
	}
	P := float64(in.TotalFilters)
	Q := float64(in.TotalDocs)
	return Factor{
		Key:            u.Key,
		N:              rows * cols,
		Ratio:          1.0 / float64(rows),
		Rows:           rows,
		Cols:           cols,
		PerNodeFilters: u.Popularity * P / float64(cols),
		PerNodeDocs:    u.Frequency * Q / float64(rows),
	}
}

func validate(in Input) error {
	switch {
	case len(in.Units) == 0:
		return fmt.Errorf("%w: no units", ErrBadInput)
	case in.Nodes < 1:
		return fmt.Errorf("%w: nodes = %d", ErrBadInput, in.Nodes)
	case in.Capacity < 1:
		return fmt.Errorf("%w: capacity = %d", ErrBadInput, in.Capacity)
	case in.TotalFilters < 1:
		return fmt.Errorf("%w: total filters = %d", ErrBadInput, in.TotalFilters)
	case in.TotalDocs < 0:
		return fmt.Errorf("%w: total docs = %d", ErrBadInput, in.TotalDocs)
	}
	for _, u := range in.Units {
		if u.Popularity < 0 || u.Frequency < 0 ||
			math.IsNaN(u.Popularity) || math.IsNaN(u.Frequency) {
			return fmt.Errorf("%w: unit %q has p=%v q=%v", ErrBadInput, u.Key, u.Popularity, u.Frequency)
		}
	}
	return nil
}

// weights returns the unnormalized allocation weights w_i per strategy.
func weights(in Input, s Strategy) ([]float64, error) {
	out := make([]float64, len(in.Units))
	switch s {
	case StrategyTheorem1:
		for i, u := range in.Units {
			out[i] = math.Sqrt(u.Frequency)
		}
	case StrategyTheorem2:
		yp, yd := in.YP, in.YD
		if yp == 0 {
			yp = DefaultYP
		}
		if yd == 0 {
			yd = DefaultYD
		}
		beta := yp * float64(in.TotalFilters) / yd
		for i, u := range in.Units {
			out[i] = math.Sqrt(1 + beta*u.Frequency)
		}
	case StrategyGeneral:
		for i, u := range in.Units {
			out[i] = math.Sqrt(u.Popularity * u.Frequency)
		}
	case StrategyUniform:
		for i := range in.Units {
			out[i] = 1
		}
	default:
		return nil, fmt.Errorf("%w: unknown strategy %v", ErrBadInput, s)
	}
	return out, nil
}

// separationBoost widens the storage-free separation beyond the exact
// load-proportional share, compensating for the overlap of allocation
// grids on the same peers (several hot homes inevitably share successors
// and rack peers, so a node's realized load exceeds its modeled share).
const separationBoost = 2.0

// Default latency constants (seconds), calibrated against the single-node
// measurements of Figures 6–7: ~2µs to match one document against one
// stored filter's posting entry, ~500µs to push one document to a peer.
const (
	DefaultYP = 2e-6
	DefaultYD = 5e-4
)

// round makes a continuous allocation integral. With rng it applies
// randomized rounding (⌊x⌋ + Bernoulli(frac x), the classic technique the
// paper cites [12]); without, half-up rounding.
func round(x float64, rng *rand.Rand) int {
	if math.IsInf(x, 1) {
		return math.MaxInt32
	}
	fl := math.Floor(x)
	frac := x - fl
	if rng != nil {
		if rng.Float64() < frac {
			return int(fl) + 1
		}
		return int(fl)
	}
	return int(math.Round(x))
}

// buildFactor derives the grid shape for a unit granted `rows` replica
// partitions by the storage budget. The separation width (columns) is
// storage-free, so it is set from two pressures:
//
//   - capacity (§IV-B2's α_i tuning): each node's share p_i·P/cols must
//     fit C;
//   - balance: a unit carrying an s fraction of the cluster's matching
//     load (s = p_i·q_i/Σp_j·q_j) deserves ≈ s·N nodes in total, so its
//     per-window per-node work p_i·P·q_i·Q/(rows·cols) approaches the
//     balanced optimum the Lagrange solution targets.
//
// The resulting allocation ratio is r_i = 1/rows ∈ [1/n_i, 1], with
// n_i = rows·cols.
func buildFactor(u Unit, rows int, share float64, in Input) Factor {
	P := float64(in.TotalFilters)
	Q := float64(in.TotalDocs)
	C := float64(in.Capacity)

	colsCapacity := int(math.Ceil(u.Popularity * P / C))
	colsBalance := 0
	if !in.NoSeparation {
		colsBalance = int(math.Round(separationBoost * share * float64(in.Nodes) / float64(rows)))
	}
	cols := colsCapacity
	if colsBalance > cols {
		cols = colsBalance
	}
	if cols < 1 {
		cols = 1
	}
	// The grid cannot exceed the cluster.
	if rows*cols > in.Nodes {
		cols = in.Nodes / rows
		if cols < 1 {
			cols = 1
			rows = in.Nodes
		}
	}
	n := rows * cols
	return Factor{
		Key:            u.Key,
		N:              n,
		Ratio:          1.0 / float64(rows),
		Rows:           rows,
		Cols:           cols,
		PerNodeFilters: u.Popularity * P / float64(cols),
		PerNodeDocs:    u.Frequency * Q / float64(rows),
	}
}

// PredictLatency evaluates the Eq. 2 latency model for a set of factors:
// Y = Σ_i (q_i·Q)·(y_d·r_i + y_p·p_i·P/n_i). Used to verify optimality
// properties in tests and by the ablation benches.
func PredictLatency(in Input, factors []Factor) (float64, error) {
	if len(factors) != len(in.Units) {
		return 0, fmt.Errorf("%w: %d factors for %d units", ErrBadInput, len(factors), len(in.Units))
	}
	yp, yd := in.YP, in.YD
	if yp == 0 {
		yp = DefaultYP
	}
	if yd == 0 {
		yd = DefaultYD
	}
	P := float64(in.TotalFilters)
	Q := float64(in.TotalDocs)
	var y float64
	for i, u := range in.Units {
		f := factors[i]
		y += u.Frequency * Q * (yd*f.Ratio + yp*u.Popularity*P/float64(f.N))
	}
	return y, nil
}

// PredictMatchLatency evaluates the Eq. 1 objective Theorem 1 minimizes:
// Y = (1/T)·Σ_i p_i·P·q_i·Q/n_i — the pure match latency with transfer
// cost ignored.
func PredictMatchLatency(in Input, factors []Factor) (float64, error) {
	if len(factors) != len(in.Units) {
		return 0, fmt.Errorf("%w: %d factors for %d units", ErrBadInput, len(factors), len(in.Units))
	}
	P := float64(in.TotalFilters)
	Q := float64(in.TotalDocs)
	var y float64
	for i, u := range in.Units {
		y += u.Popularity * P * u.Frequency * Q / float64(factors[i].N)
	}
	return y / float64(len(in.Units)), nil
}

// StorageOverhead returns the replicated-filter footprint Σ rows_i·p_i·P
// (each partition row holds one full copy; separation columns split a copy
// without duplicating it), which the constraint bounds by N·C.
func StorageOverhead(in Input, factors []Factor) (float64, error) {
	if len(factors) != len(in.Units) {
		return 0, fmt.Errorf("%w: %d factors for %d units", ErrBadInput, len(factors), len(in.Units))
	}
	P := float64(in.TotalFilters)
	var s float64
	for i, u := range in.Units {
		s += float64(factors[i].Rows) * u.Popularity * P
	}
	return s, nil
}
