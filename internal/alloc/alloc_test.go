package alloc

import (
	"errors"
	"math"
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"

	"github.com/movesys/move/internal/model"
	"github.com/movesys/move/internal/ring"
)

// skewedInput builds an optimizer input with Zipf-like p_i and q_i.
func skewedInput(units int) Input {
	in := Input{
		TotalFilters: 1_000_000,
		TotalDocs:    10_000,
		Nodes:        20,
		Capacity:     3_000_000,
	}
	var pSum, qSum float64
	raw := make([]Unit, units)
	for i := range raw {
		p := 1 / math.Pow(float64(i+1), 1.1)
		q := 1 / math.Pow(float64(units-i), 0.9) // anti-correlated skew
		raw[i] = Unit{Key: "u" + strconv.Itoa(i), Popularity: p, Frequency: q}
		pSum += p
		qSum += q
	}
	for i := range raw {
		raw[i].Popularity /= pSum
		raw[i].Frequency /= qSum
	}
	in.Units = raw
	return in
}

func TestComputeValidation(t *testing.T) {
	if _, err := Compute(Input{}, StrategyGeneral, nil); !errors.Is(err, ErrBadInput) {
		t.Fatalf("err = %v, want ErrBadInput", err)
	}
	in := skewedInput(4)
	if _, err := Compute(in, Strategy(99), nil); !errors.Is(err, ErrBadInput) {
		t.Fatalf("unknown strategy: %v", err)
	}
	bad := skewedInput(2)
	bad.Units[0].Popularity = math.NaN()
	if _, err := Compute(bad, StrategyGeneral, nil); !errors.Is(err, ErrBadInput) {
		t.Fatalf("NaN unit: %v", err)
	}
	bad2 := skewedInput(2)
	bad2.Nodes = 0
	if _, err := Compute(bad2, StrategyGeneral, nil); !errors.Is(err, ErrBadInput) {
		t.Fatalf("zero nodes: %v", err)
	}
}

func TestFactorsWithinBounds(t *testing.T) {
	in := skewedInput(50)
	for _, s := range []Strategy{StrategyTheorem1, StrategyTheorem2, StrategyGeneral, StrategyUniform} {
		factors, err := Compute(in, s, rand.New(rand.NewSource(1)))
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if len(factors) != len(in.Units) {
			t.Fatalf("%v: %d factors", s, len(factors))
		}
		for _, f := range factors {
			if f.N < 1 || f.N > in.Nodes {
				t.Fatalf("%v: n=%d outside [1,%d]", s, f.N, in.Nodes)
			}
			if f.Ratio < 1/float64(f.N)-1e-9 || f.Ratio > 1+1e-9 {
				t.Fatalf("%v: ratio %v outside [1/%d, 1]", s, f.Ratio, f.N)
			}
			if f.Rows < 1 || f.Cols < 1 || f.Rows*f.Cols > f.N {
				t.Fatalf("%v: grid %dx%d exceeds n=%d", s, f.Rows, f.Cols, f.N)
			}
		}
	}
}

func TestTheorem1MonotoneInFrequency(t *testing.T) {
	// n_i ∝ √q_i: a unit with higher q must never get (meaningfully) fewer
	// nodes. Use deterministic rounding to avoid randomized-rounding noise.
	in := skewedInput(30)
	factors, err := Compute(in, StrategyTheorem1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(in.Units); i++ {
		qi, qj := in.Units[i-1].Frequency, in.Units[i].Frequency
		ri, rj := factors[i-1].Rows, factors[i].Rows
		if qi < qj && ri > rj+1 {
			t.Fatalf("q=%v got rows=%d while q=%v got rows=%d", qi, ri, qj, rj)
		}
	}
}

func TestStorageConstraintRespected(t *testing.T) {
	in := skewedInput(100)
	for _, s := range []Strategy{StrategyTheorem1, StrategyTheorem2, StrategyGeneral} {
		factors, err := Compute(in, s, nil)
		if err != nil {
			t.Fatal(err)
		}
		overhead, err := StorageOverhead(in, factors)
		if err != nil {
			t.Fatal(err)
		}
		budget := float64(in.Nodes) * float64(in.Capacity)
		// Rounding and the n_i ≥ 1 floor can exceed the continuous optimum
		// slightly; allow 25% slack.
		if overhead > budget*1.25 {
			t.Fatalf("%v: overhead %v exceeds budget %v", s, overhead, budget)
		}
	}
}

func TestTheorem1BeatsUniformOnItsObjective(t *testing.T) {
	// Theorem 1's continuous solution minimizes the Eq. 1 objective under
	// the storage constraint; after rounding it must still be no worse
	// than the uniform allocation on the same budget (small slack for the
	// integrality clamps).
	in := skewedInput(200)
	uniform, err := Compute(in, StrategyUniform, nil)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Compute(in, StrategyTheorem1, nil)
	if err != nil {
		t.Fatal(err)
	}
	yOpt, err := PredictMatchLatency(in, opt)
	if err != nil {
		t.Fatal(err)
	}
	yUni, err := PredictMatchLatency(in, uniform)
	if err != nil {
		t.Fatal(err)
	}
	if yOpt > yUni*1.05 {
		t.Fatalf("theorem1 latency %v worse than uniform %v", yOpt, yUni)
	}
}

func TestGeneralFavorsHotUnits(t *testing.T) {
	// The general √(p·q) rule must grant (weakly) more nodes to units with
	// a larger p·q product.
	in := skewedInput(50)
	factors, err := Compute(in, StrategyGeneral, nil)
	if err != nil {
		t.Fatal(err)
	}
	type pair struct {
		pq float64
		n  int
	}
	pairs := make([]pair, len(in.Units))
	for i, u := range in.Units {
		pairs[i] = pair{pq: u.Popularity * u.Frequency, n: factors[i].N}
	}
	for i := range pairs {
		for j := range pairs {
			if pairs[i].pq > 4*pairs[j].pq && pairs[i].n+1 < pairs[j].n {
				t.Fatalf("unit with pq=%v got n=%d, cooler pq=%v got n=%d",
					pairs[i].pq, pairs[i].n, pairs[j].pq, pairs[j].n)
			}
		}
	}
}

func TestTheorem2ConvergesToTheorem1ForLargeP(t *testing.T) {
	// β = y_p·P/y_d ≫ 1 ⇒ √(1+β·q) ≈ √(β·q) ∝ √q.
	in := skewedInput(20)
	in.TotalFilters = 100_000_000 // huge P ⇒ huge β
	t1, err := Compute(in, StrategyTheorem1, nil)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := Compute(in, StrategyTheorem2, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range t1 {
		diff := math.Abs(float64(t1[i].N - t2[i].N))
		if diff > 1+0.15*float64(t1[i].N) {
			t.Fatalf("unit %d: theorem1 n=%d vs theorem2 n=%d", i, t1[i].N, t2[i].N)
		}
	}
}

func TestCapacityTuningRaisesRatio(t *testing.T) {
	// One popular unit whose full replica does not fit a node: r must rise
	// above 1/n so the per-node share fits C.
	in := Input{
		Units:        []Unit{{Key: "hot", Popularity: 1.0, Frequency: 1.0}},
		TotalFilters: 10_000_000,
		TotalDocs:    1000,
		Nodes:        10,
		Capacity:     2_000_000,
	}
	factors, err := Compute(in, StrategyGeneral, nil)
	if err != nil {
		t.Fatal(err)
	}
	f := factors[0]
	if f.Ratio <= 1/float64(f.N) {
		t.Fatalf("ratio %v not tuned above 1/n=%v", f.Ratio, 1/float64(f.N))
	}
	if f.PerNodeFilters > float64(in.Capacity)*1.001 {
		t.Fatalf("per-node share %v exceeds capacity %d", f.PerNodeFilters, in.Capacity)
	}
}

func TestPureReplicationWhenCapacityAmple(t *testing.T) {
	in := Input{
		Units:        []Unit{{Key: "u", Popularity: 0.001, Frequency: 0.5}},
		TotalFilters: 1000,
		TotalDocs:    1000,
		Nodes:        8,
		Capacity:     1_000_000,
	}
	factors, err := Compute(in, StrategyGeneral, nil)
	if err != nil {
		t.Fatal(err)
	}
	f := factors[0]
	if math.Abs(f.Ratio-1/float64(f.N)) > 1e-9 {
		t.Fatalf("ample capacity should keep r=1/n, got r=%v n=%d", f.Ratio, f.N)
	}
	if f.Rows != f.N || f.Cols != 1 {
		t.Fatalf("pure replication grid should be n×1, got %dx%d", f.Rows, f.Cols)
	}
}

func TestRandomizedRoundingUnbiasedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	prop := func(xRaw uint16) bool {
		x := float64(xRaw%1000)/100 + 0.5
		const draws = 2000
		sum := 0
		for i := 0; i < draws; i++ {
			sum += round(x, rng)
		}
		mean := float64(sum) / draws
		return math.Abs(mean-x) < 0.15
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPredictLatencyMismatch(t *testing.T) {
	in := skewedInput(3)
	if _, err := PredictLatency(in, nil); !errors.Is(err, ErrBadInput) {
		t.Fatalf("err = %v", err)
	}
	if _, err := StorageOverhead(in, nil); !errors.Is(err, ErrBadInput) {
		t.Fatalf("err = %v", err)
	}
}

func TestStrategyString(t *testing.T) {
	for s, want := range map[Strategy]string{
		StrategyTheorem1: "theorem1",
		StrategyTheorem2: "theorem2",
		StrategyGeneral:  "general",
		StrategyUniform:  "uniform",
		Strategy(42):     "strategy(42)",
	} {
		if got := s.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(s), got, want)
		}
	}
}

func gridNodes(n int) []ring.NodeID {
	out := make([]ring.NodeID, n)
	for i := range out {
		out[i] = ring.NodeID("n" + strconv.Itoa(i))
	}
	return out
}

// TestGridPaperExample reproduces Figure 2: n=12, r=1/3 → 3 partitions of
// 4 nodes; 8 filters → 4 subsets of 2, each replicated 3×.
func TestGridPaperExample(t *testing.T) {
	g, err := NewGrid(3, 4, gridNodes(12))
	if err != nil {
		t.Fatal(err)
	}
	if g.Rows() != 3 || g.Cols() != 4 || g.Size() != 12 {
		t.Fatalf("grid shape %dx%d size %d", g.Rows(), g.Cols(), g.Size())
	}
	// Every filter is stored on exactly 3 nodes (one per partition), in the
	// same column.
	for id := model.FilterID(1); id <= 8; id++ {
		nodes := g.FilterNodes(id)
		if len(nodes) != 3 {
			t.Fatalf("filter %v on %d nodes, want 3", id, len(nodes))
		}
		col := g.Column(id)
		for row, nd := range nodes {
			if g.Node(row, col) != nd {
				t.Fatalf("filter %v row %d node mismatch", id, row)
			}
		}
	}
	// A document goes to all 4 nodes of one partition.
	rng := rand.New(rand.NewSource(3))
	row := g.PickRow(77, rng)
	if row < 0 || row >= 3 {
		t.Fatalf("row %d outside grid", row)
	}
	if nodes := g.RowNodes(row); len(nodes) != 4 {
		t.Fatalf("row has %d nodes, want 4", len(nodes))
	}
}

func TestGridCoverageInvariant(t *testing.T) {
	// Any (row, filter) pair intersects: the node at (row, col(filter))
	// holds the filter and receives any document routed to that row. This
	// is the correctness core of the allocation scheme — no matching filter
	// is ever missed.
	g, err := NewGrid(4, 5, gridNodes(20))
	if err != nil {
		t.Fatal(err)
	}
	for id := model.FilterID(1); id <= 100; id++ {
		stored := make(map[ring.NodeID]struct{})
		for _, nd := range g.FilterNodes(id) {
			stored[nd] = struct{}{}
		}
		for row := 0; row < g.Rows(); row++ {
			hit := false
			for _, nd := range g.RowNodes(row) {
				if _, ok := stored[nd]; ok {
					hit = true
					break
				}
			}
			if !hit {
				t.Fatalf("filter %v unreachable from row %d", id, row)
			}
		}
	}
}

func TestGridValidation(t *testing.T) {
	if _, err := NewGrid(0, 1, gridNodes(1)); !errors.Is(err, ErrBadInput) {
		t.Fatalf("err = %v", err)
	}
	if _, err := NewGrid(2, 3, gridNodes(5)); !errors.Is(err, ErrBadInput) {
		t.Fatalf("too few nodes: %v", err)
	}
}

func TestFitGridShrinks(t *testing.T) {
	g, err := FitGrid(4, 3, gridNodes(7))
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() > 7 {
		t.Fatalf("grid size %d exceeds node count", g.Size())
	}
	if g.Cols() != 3 {
		t.Fatalf("cols = %d, want 3 preserved", g.Cols())
	}
	g1, err := FitGrid(9, 9, gridNodes(1))
	if err != nil {
		t.Fatal(err)
	}
	if g1.Rows() != 1 || g1.Cols() != 1 {
		t.Fatalf("degenerate grid = %dx%d", g1.Rows(), g1.Cols())
	}
	if _, err := FitGrid(1, 1, nil); !errors.Is(err, ErrBadInput) {
		t.Fatalf("no nodes: %v", err)
	}
}

func TestGridEncodeDecode(t *testing.T) {
	g, err := NewGrid(2, 3, gridNodes(6))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := DecodeGrid(g.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if g2.Rows() != 2 || g2.Cols() != 3 {
		t.Fatalf("decoded shape %dx%d", g2.Rows(), g2.Cols())
	}
	for r := 0; r < 2; r++ {
		for c := 0; c < 3; c++ {
			if g.Node(r, c) != g2.Node(r, c) {
				t.Fatalf("node (%d,%d) mismatch", r, c)
			}
		}
	}
	if _, err := DecodeGrid([]byte{1}); err == nil {
		t.Fatal("expected decode error")
	}
	if _, err := DecodeGrid(nil); err == nil {
		t.Fatal("expected decode error for empty input")
	}
}

func TestPickRowDeterministicWithoutRng(t *testing.T) {
	g, err := NewGrid(5, 2, gridNodes(10))
	if err != nil {
		t.Fatal(err)
	}
	r1 := g.PickRow(42, nil)
	r2 := g.PickRow(42, nil)
	if r1 != r2 {
		t.Fatal("PickRow without rng must be deterministic")
	}
}

func TestPickRowSpreadsLoad(t *testing.T) {
	g, err := NewGrid(4, 2, gridNodes(8))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	counts := make([]int, 4)
	const docs = 8000
	for i := 0; i < docs; i++ {
		counts[g.PickRow(uint64(i), rng)]++
	}
	for row, c := range counts {
		ratio := float64(c) / (docs / 4.0)
		if ratio < 0.85 || ratio > 1.15 {
			t.Fatalf("row %d received %.2fx its fair share", row, ratio)
		}
	}
}
