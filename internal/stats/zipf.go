package stats

import (
	"errors"
	"math"
	"math/rand"
	"sort"
)

// Zipf samples ranks 1..N with probability proportional to 1/rank^s. It is
// the shared skew model for both the synthetic MSN filter trace and the
// synthetic TREC corpora: the paper's Figures 4–5 show power-law ranked
// popularity/frequency, which a Zipf law reproduces. Unlike math/rand's
// Zipf, this implementation exposes the rank PMF/CDF (the calibration tests
// need them) and allows s <= 1.
type Zipf struct {
	s   float64
	cdf []float64 // cdf[i] = P(rank <= i+1)
}

// ErrBadZipf reports invalid Zipf parameters.
var ErrBadZipf = errors.New("stats: zipf requires n >= 1 and s >= 0")

// NewZipf builds the rank distribution for n ranks with exponent s.
func NewZipf(n int, s float64) (*Zipf, error) {
	if n < 1 || s < 0 || math.IsNaN(s) {
		return nil, ErrBadZipf
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	// Guard against floating-point drift: the last entry must be exactly 1
	// so sampling never falls off the end.
	cdf[n-1] = 1
	return &Zipf{s: s, cdf: cdf}, nil
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// S returns the exponent.
func (z *Zipf) S() float64 { return z.s }

// PMF returns the probability of rank (1-based).
func (z *Zipf) PMF(rank int) float64 {
	if rank < 1 || rank > len(z.cdf) {
		return 0
	}
	if rank == 1 {
		return z.cdf[0]
	}
	return z.cdf[rank-1] - z.cdf[rank-2]
}

// CDF returns P(Rank <= rank) for a 1-based rank.
func (z *Zipf) CDF(rank int) float64 {
	if rank < 1 {
		return 0
	}
	if rank > len(z.cdf) {
		return 1
	}
	return z.cdf[rank-1]
}

// Sample draws a 1-based rank using rng.
func (z *Zipf) Sample(rng *rand.Rand) int {
	u := rng.Float64()
	// sort.SearchFloat64s returns the first index with cdf[i] >= u.
	i := sort.SearchFloat64s(z.cdf, u)
	if i >= len(z.cdf) {
		i = len(z.cdf) - 1
	}
	return i + 1
}

// FitExponent estimates the Zipf exponent of a ranked rate distribution by
// least-squares regression of log(rate) on log(rank), skipping zero rates.
// Used by tests to verify that generated traces are as skewed as intended.
func FitExponent(ranked []RankedRate) float64 {
	var sx, sy, sxx, sxy float64
	n := 0.0
	for _, r := range ranked {
		if r.Rate <= 0 {
			continue
		}
		x := math.Log(float64(r.Rank))
		y := math.Log(r.Rate)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
		n++
	}
	if n < 2 {
		return 0
	}
	denom := n*sxx - sx*sx
	if denom == 0 {
		return 0
	}
	// Slope is negative for a decaying distribution; the exponent is its
	// magnitude.
	return -(n*sxy - sx*sy) / denom
}
