package stats

import (
	"math"
	"math/rand"
	"strconv"
	"sync"
	"testing"
	"testing/quick"
)

func TestTermCounterRates(t *testing.T) {
	c := NewTermCounter()
	c.Observe([]string{"a", "b"})
	c.Observe([]string{"a"})
	c.Observe([]string{"c"})
	c.Observe([]string{"a", "c"})

	if got := c.Items(); got != 4 {
		t.Fatalf("Items = %d, want 4", got)
	}
	if got := c.Rate("a"); got != 0.75 {
		t.Fatalf("Rate(a) = %v, want 0.75", got)
	}
	if got := c.Rate("b"); got != 0.25 {
		t.Fatalf("Rate(b) = %v, want 0.25", got)
	}
	if got := c.Rate("missing"); got != 0 {
		t.Fatalf("Rate(missing) = %v, want 0", got)
	}
	if got := c.Distinct(); got != 3 {
		t.Fatalf("Distinct = %d, want 3", got)
	}
}

func TestTermCounterEmptyRate(t *testing.T) {
	c := NewTermCounter()
	if got := c.Rate("x"); got != 0 {
		t.Fatalf("Rate on empty counter = %v, want 0", got)
	}
	if got := c.Entropy(); got != 0 {
		t.Fatalf("Entropy on empty counter = %v, want 0", got)
	}
}

func TestRankedOrderingAndTruncation(t *testing.T) {
	c := NewTermCounter()
	for i := 0; i < 10; i++ {
		c.Observe([]string{"hot"})
	}
	for i := 0; i < 5; i++ {
		c.Observe([]string{"warm"})
	}
	c.Observe([]string{"cold"})

	ranked := c.Ranked(2)
	if len(ranked) != 2 {
		t.Fatalf("Ranked(2) len = %d, want 2", len(ranked))
	}
	if ranked[0].Term != "hot" || ranked[0].Rank != 1 {
		t.Fatalf("top term = %+v, want hot at rank 1", ranked[0])
	}
	if ranked[1].Term != "warm" || ranked[1].Rank != 2 {
		t.Fatalf("second term = %+v, want warm at rank 2", ranked[1])
	}

	all := c.Ranked(0)
	if len(all) != 3 {
		t.Fatalf("Ranked(0) len = %d, want 3", len(all))
	}
}

func TestRankedTieBreakDeterministic(t *testing.T) {
	c := NewTermCounter()
	c.Observe([]string{"b", "a", "c"})
	r1 := c.Ranked(0)
	r2 := c.Ranked(0)
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatal("Ranked not deterministic under ties")
		}
	}
	if r1[0].Term != "a" {
		t.Fatalf("tie break should be lexicographic, got %q first", r1[0].Term)
	}
}

func TestTopKMass(t *testing.T) {
	c := NewTermCounter()
	c.Observe([]string{"x", "y"})
	c.Observe([]string{"x"})
	got := c.TopKMass(1)
	if got != 1.0 {
		t.Fatalf("TopKMass(1) = %v, want 1.0 (x appears in both items)", got)
	}
	if got := c.TopKMass(10); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("TopKMass(10) = %v, want 1.5", got)
	}
}

func TestEntropyUniform(t *testing.T) {
	c := NewTermCounter()
	for i := 0; i < 8; i++ {
		c.Observe([]string{"t" + strconv.Itoa(i)})
	}
	if got := c.Entropy(); math.Abs(got-3.0) > 1e-9 {
		t.Fatalf("Entropy of 8 uniform terms = %v, want 3.0", got)
	}
}

func TestEntropySkewedLowerThanUniform(t *testing.T) {
	uniform := NewTermCounter()
	skewed := NewTermCounter()
	for i := 0; i < 100; i++ {
		uniform.Observe([]string{"t" + strconv.Itoa(i)})
		skewed.Observe([]string{"t0"})
	}
	for i := 0; i < 100; i++ {
		skewed.Observe([]string{"t" + strconv.Itoa(i%10)})
	}
	if skewed.Entropy() >= uniform.Entropy() {
		t.Fatalf("skewed entropy %v should be below uniform %v", skewed.Entropy(), uniform.Entropy())
	}
}

func TestMerge(t *testing.T) {
	a := NewTermCounter()
	b := NewTermCounter()
	a.Observe([]string{"x"})
	b.Observe([]string{"x", "y"})
	b.Observe([]string{"y"})
	a.Merge(b)
	if got := a.Items(); got != 3 {
		t.Fatalf("Items after merge = %d, want 3", got)
	}
	if got := a.Count("x"); got != 2 {
		t.Fatalf("Count(x) = %d, want 2", got)
	}
	if got := a.Count("y"); got != 2 {
		t.Fatalf("Count(y) = %d, want 2", got)
	}
}

func TestReset(t *testing.T) {
	c := NewTermCounter()
	c.Observe([]string{"x"})
	c.Reset()
	if c.Items() != 0 || c.Distinct() != 0 {
		t.Fatal("Reset did not clear counter")
	}
}

func TestConcurrentObserve(t *testing.T) {
	c := NewTermCounter()
	var wg sync.WaitGroup
	const workers = 8
	const perWorker = 250
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Observe([]string{"shared", "t" + strconv.Itoa(i%17)})
			}
		}()
	}
	wg.Wait()
	if got := c.Items(); got != workers*perWorker {
		t.Fatalf("Items = %d, want %d", got, workers*perWorker)
	}
	if got := c.Count("shared"); got != workers*perWorker {
		t.Fatalf("Count(shared) = %d, want %d", got, workers*perWorker)
	}
}

func TestOverlap(t *testing.T) {
	a := []string{"a", "b", "c", "d"}
	b := []string{"c", "d", "e"}
	if got := Overlap(a, b); got != 0.5 {
		t.Fatalf("Overlap = %v, want 0.5", got)
	}
	if got := Overlap(nil, b); got != 0 {
		t.Fatalf("Overlap(nil, b) = %v, want 0", got)
	}
	if got := Overlap(a, nil); got != 0 {
		t.Fatalf("Overlap(a, nil) = %v, want 0", got)
	}
}

// TestRatesSumProperty: the sum of all term rates equals the mean term-set
// size, for arbitrary streams.
func TestRatesSumProperty(t *testing.T) {
	prop := func(sets [][]byte) bool {
		c := NewTermCounter()
		totalTerms := 0
		for _, raw := range sets {
			seen := make(map[string]struct{})
			var terms []string
			for _, x := range raw {
				term := "t" + strconv.Itoa(int(x%32))
				if _, dup := seen[term]; dup {
					continue
				}
				seen[term] = struct{}{}
				terms = append(terms, term)
			}
			totalTerms += len(terms)
			c.Observe(terms)
		}
		if c.Items() == 0 {
			return true
		}
		var sum float64
		for _, r := range c.Ranked(0) {
			sum += r.Rate
		}
		want := float64(totalTerms) / float64(c.Items())
		return math.Abs(sum-want) < 1e-6
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZipfPMFSumsToOne(t *testing.T) {
	z, err := NewZipf(1000, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for r := 1; r <= z.N(); r++ {
		sum += z.PMF(r)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("PMF sum = %v, want 1", sum)
	}
	if z.CDF(z.N()) != 1 {
		t.Fatalf("CDF(N) = %v, want 1", z.CDF(z.N()))
	}
}

func TestZipfMonotoneDecreasing(t *testing.T) {
	z, err := NewZipf(100, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	for r := 2; r <= 100; r++ {
		if z.PMF(r) > z.PMF(r-1)+1e-15 {
			t.Fatalf("PMF not decreasing at rank %d", r)
		}
	}
}

func TestZipfRejectsBadParams(t *testing.T) {
	if _, err := NewZipf(0, 1); err == nil {
		t.Fatal("expected error for n=0")
	}
	if _, err := NewZipf(10, -1); err == nil {
		t.Fatal("expected error for negative s")
	}
	if _, err := NewZipf(10, math.NaN()); err == nil {
		t.Fatal("expected error for NaN s")
	}
}

func TestZipfSampleMatchesPMF(t *testing.T) {
	z, err := NewZipf(50, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	const draws = 200000
	counts := make([]int, z.N()+1)
	for i := 0; i < draws; i++ {
		counts[z.Sample(rng)]++
	}
	for _, rank := range []int{1, 2, 5, 10} {
		got := float64(counts[rank]) / draws
		want := z.PMF(rank)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("rank %d: empirical %v vs pmf %v", rank, got, want)
		}
	}
}

func TestZipfSampleInRangeProperty(t *testing.T) {
	z, err := NewZipf(37, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 100; i++ {
			r := z.Sample(rng)
			if r < 1 || r > 37 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestFitExponentRecoversSlope(t *testing.T) {
	for _, s := range []float64{0.7, 1.0, 1.3} {
		z, err := NewZipf(2000, s)
		if err != nil {
			t.Fatal(err)
		}
		ranked := make([]RankedRate, z.N())
		for r := 1; r <= z.N(); r++ {
			ranked[r-1] = RankedRate{Rank: r, Rate: z.PMF(r)}
		}
		got := FitExponent(ranked)
		if math.Abs(got-s) > 0.05 {
			t.Errorf("FitExponent for s=%v returned %v", s, got)
		}
	}
}

func TestFitExponentDegenerate(t *testing.T) {
	if got := FitExponent(nil); got != 0 {
		t.Fatalf("FitExponent(nil) = %v, want 0", got)
	}
	one := []RankedRate{{Rank: 1, Rate: 0.5}}
	if got := FitExponent(one); got != 0 {
		t.Fatalf("FitExponent(single) = %v, want 0", got)
	}
}
