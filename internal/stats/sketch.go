package stats

import (
	"errors"
	"math"
	"sort"
	"sync"
	"time"
)

// SpaceSaving is the Metwally et al. heavy-hitter sketch: it tracks the
// (approximate) top-k most frequent terms in bounded memory. The §V
// coordinator needs the hottest terms out of millions of distinct ones;
// exact counters grow with the vocabulary, the sketch does not — its error
// per count is bounded by total/capacity.
type SpaceSaving struct {
	mu       sync.Mutex
	capacity int
	counts   map[string]*ssEntry
	total    int64
}

type ssEntry struct {
	count int64
	// overestimate is the count the entry inherited when it evicted the
	// previous minimum — the classic ε bound per item.
	overestimate int64
}

// ErrBadSketch reports an invalid capacity.
var ErrBadSketch = errors.New("stats: sketch capacity must be positive")

// NewSpaceSaving builds a sketch tracking at most capacity terms.
func NewSpaceSaving(capacity int) (*SpaceSaving, error) {
	if capacity < 1 {
		return nil, ErrBadSketch
	}
	return &SpaceSaving{
		capacity: capacity,
		counts:   make(map[string]*ssEntry, capacity),
	}, nil
}

// Observe records one occurrence of term.
func (s *SpaceSaving) Observe(term string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.total++
	if e, ok := s.counts[term]; ok {
		e.count++
		return
	}
	if len(s.counts) < s.capacity {
		s.counts[term] = &ssEntry{count: 1}
		return
	}
	// Evict the current minimum and inherit its count (+1); the new entry
	// may overestimate by the evicted count.
	minTerm := ""
	var minCount int64 = math.MaxInt64
	for t, e := range s.counts {
		if e.count < minCount || (e.count == minCount && t < minTerm) {
			minTerm, minCount = t, e.count
		}
	}
	delete(s.counts, minTerm)
	s.counts[term] = &ssEntry{count: minCount + 1, overestimate: minCount}
}

// ObserveSet records one item's (deduplicated) term set.
func (s *SpaceSaving) ObserveSet(terms []string) {
	for _, t := range terms {
		s.Observe(t)
	}
}

// HeavyHitter is one sketch entry.
type HeavyHitter struct {
	Term string
	// Count is the estimated occurrence count (may overestimate by at most
	// Error).
	Count int64
	// Error is the entry's maximum overestimate.
	Error int64
}

// Top returns up to k entries by descending estimated count.
func (s *SpaceSaving) Top(k int) []HeavyHitter {
	s.mu.Lock()
	out := make([]HeavyHitter, 0, len(s.counts))
	for t, e := range s.counts {
		out = append(out, HeavyHitter{Term: t, Count: e.count, Error: e.overestimate})
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Term < out[j].Term
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// Total returns the number of observations.
func (s *SpaceSaving) Total() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// ErrorBound returns the worst-case overestimate of any reported count:
// total/capacity.
func (s *SpaceSaving) ErrorBound() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total / int64(s.capacity)
}

// Reset clears the sketch (window renewal).
func (s *SpaceSaving) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.counts = make(map[string]*ssEntry, s.capacity)
	s.total = 0
}

// DecayCounter is an exponentially-weighted rate estimator: each
// observation contributes weight decaying with half-life h. The §V
// meta-data store uses it so allocation decisions favor the *current*
// document pattern over stale history without hard window resets.
type DecayCounter struct {
	mu       sync.Mutex
	halfLife time.Duration
	value    float64
	last     time.Time
	now      func() time.Time
}

// NewDecayCounter builds a counter with the given half-life. now == nil
// uses time.Now (tests inject a fake clock).
func NewDecayCounter(halfLife time.Duration, now func() time.Time) (*DecayCounter, error) {
	if halfLife <= 0 {
		return nil, errors.New("stats: half-life must be positive")
	}
	if now == nil {
		now = time.Now
	}
	return &DecayCounter{halfLife: halfLife, now: now, last: now()}, nil
}

// Add records weight w at the current time.
func (c *DecayCounter) Add(w float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.decayLocked()
	c.value += w
}

// Value returns the decayed total.
func (c *DecayCounter) Value() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.decayLocked()
	return c.value
}

func (c *DecayCounter) decayLocked() {
	now := c.now()
	dt := now.Sub(c.last)
	if dt <= 0 {
		return
	}
	c.value *= math.Exp2(-float64(dt) / float64(c.halfLife))
	c.last = now
}
