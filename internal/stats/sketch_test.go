package stats

import (
	"errors"
	"math/rand"
	"strconv"
	"sync"
	"testing"
	"time"
)

func TestSpaceSavingValidation(t *testing.T) {
	if _, err := NewSpaceSaving(0); !errors.Is(err, ErrBadSketch) {
		t.Fatalf("err = %v", err)
	}
}

func TestSpaceSavingExactWhenUnderCapacity(t *testing.T) {
	s, err := NewSpaceSaving(10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		for j := 0; j <= i; j++ {
			s.Observe("t" + strconv.Itoa(i))
		}
	}
	top := s.Top(0)
	if len(top) != 5 {
		t.Fatalf("entries = %d", len(top))
	}
	if top[0].Term != "t4" || top[0].Count != 5 || top[0].Error != 0 {
		t.Fatalf("top = %+v", top[0])
	}
	if s.Total() != 1+2+3+4+5 {
		t.Fatalf("Total = %d", s.Total())
	}
}

func TestSpaceSavingFindsHeavyHittersUnderPressure(t *testing.T) {
	s, err := NewSpaceSaving(50)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	// Two genuinely hot terms amid a sea of distinct noise.
	for i := 0; i < 20_000; i++ {
		switch {
		case i%5 == 0:
			s.Observe("hot-a")
		case i%7 == 0:
			s.Observe("hot-b")
		default:
			s.Observe("noise-" + strconv.Itoa(rng.Intn(100_000)))
		}
	}
	top := s.Top(2)
	found := map[string]bool{}
	for _, h := range top {
		found[h.Term] = true
	}
	if !found["hot-a"] || !found["hot-b"] {
		t.Fatalf("top-2 = %+v, want hot-a and hot-b", top)
	}
	// The guaranteed error bound holds.
	if s.ErrorBound() != s.Total()/50 {
		t.Fatalf("ErrorBound = %d", s.ErrorBound())
	}
	for _, h := range top {
		if h.Error > s.ErrorBound() {
			t.Fatalf("entry error %d exceeds bound %d", h.Error, s.ErrorBound())
		}
	}
}

func TestSpaceSavingObserveSetAndReset(t *testing.T) {
	s, err := NewSpaceSaving(8)
	if err != nil {
		t.Fatal(err)
	}
	s.ObserveSet([]string{"a", "b", "a"})
	if s.Total() != 3 {
		t.Fatalf("Total = %d", s.Total())
	}
	s.Reset()
	if s.Total() != 0 || len(s.Top(0)) != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestSpaceSavingConcurrent(t *testing.T) {
	s, err := NewSpaceSaving(32)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s.Observe("shared")
				s.Observe("w" + strconv.Itoa(w))
			}
		}(w)
	}
	wg.Wait()
	if s.Total() != 4000 {
		t.Fatalf("Total = %d", s.Total())
	}
	if top := s.Top(1); top[0].Term != "shared" {
		t.Fatalf("top = %+v", top)
	}
}

func TestDecayCounterHalfLife(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	c, err := NewDecayCounter(time.Minute, clock)
	if err != nil {
		t.Fatal(err)
	}
	c.Add(100)
	if v := c.Value(); v != 100 {
		t.Fatalf("Value = %v", v)
	}
	now = now.Add(time.Minute)
	if v := c.Value(); v < 49.9 || v > 50.1 {
		t.Fatalf("after one half-life = %v, want ≈50", v)
	}
	now = now.Add(2 * time.Minute)
	if v := c.Value(); v < 12.4 || v > 12.6 {
		t.Fatalf("after three half-lives = %v, want ≈12.5", v)
	}
	// Fresh adds dominate stale history.
	c.Add(100)
	if v := c.Value(); v < 112 || v > 113 {
		t.Fatalf("after add = %v", v)
	}
}

func TestDecayCounterValidation(t *testing.T) {
	if _, err := NewDecayCounter(0, nil); err == nil {
		t.Fatal("expected error for zero half-life")
	}
}
