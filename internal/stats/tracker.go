// Package stats implements the statistics substrate MOVE's meta-data store
// and coordinator rely on (§V): per-term popularity p_i (fraction of filters
// containing term t_i) and frequency q_i (fraction of documents containing
// t_i), ranked distributions (Figures 4–5), Shannon entropy of frequency
// rates, and Zipf utilities shared with the synthetic dataset generators.
package stats

import (
	"math"
	"sort"
	"sync"
)

// TermCounter counts, for a stream of term sets (filters or documents), how
// many items each term appeared in. It is safe for concurrent use: every
// node updates its local counter as filters are registered and documents
// arrive, and the coordinator merges snapshots.
type TermCounter struct {
	mu     sync.RWMutex
	counts map[string]int64
	items  int64
}

// NewTermCounter returns an empty counter.
func NewTermCounter() *TermCounter {
	return &TermCounter{counts: make(map[string]int64)}
}

// Observe records one item (document or filter) with the given term set.
// Terms are assumed deduplicated, as produced by text.Terms.
func (c *TermCounter) Observe(terms []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.items++
	for _, t := range terms {
		c.counts[t]++
	}
}

// Items returns the number of observed items.
func (c *TermCounter) Items() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.items
}

// Count returns the number of items that contained term t.
func (c *TermCounter) Count(t string) int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.counts[t]
}

// Rate returns the fraction of observed items containing term t — p_i when
// the counter tracks filters, q_i when it tracks documents.
func (c *TermCounter) Rate(t string) float64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.items == 0 {
		return 0
	}
	return float64(c.counts[t]) / float64(c.items)
}

// Distinct returns the number of distinct terms observed.
func (c *TermCounter) Distinct() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.counts)
}

// Merge folds other's counts into c. Used by the coordinator to aggregate
// node-local statistics.
func (c *TermCounter) Merge(other *TermCounter) {
	other.mu.RLock()
	snapshot := make(map[string]int64, len(other.counts))
	for t, n := range other.counts {
		snapshot[t] = n
	}
	items := other.items
	other.mu.RUnlock()

	c.mu.Lock()
	defer c.mu.Unlock()
	c.items += items
	for t, n := range snapshot {
		c.counts[t] += n
	}
}

// Reset clears all counts; used when q_i is renewed from a fresh window of
// incoming documents (§VI.A: "every 10 minutes, the values of qi are
// renewed based on new incoming documents").
func (c *TermCounter) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.counts = make(map[string]int64)
	c.items = 0
}

// RankedRate is one point of a ranked rate distribution: the rate of the
// term at a given popularity rank (1-based).
type RankedRate struct {
	Rank int
	Term string
	Rate float64
}

// Ranked returns the rate distribution sorted by decreasing rate, truncated
// to at most top entries (top <= 0 means all). This is exactly what Figures
// 4 and 5 of the paper plot.
func (c *TermCounter) Ranked(top int) []RankedRate {
	c.mu.RLock()
	out := make([]RankedRate, 0, len(c.counts))
	total := c.items
	for t, n := range c.counts {
		r := 0.0
		if total > 0 {
			r = float64(n) / float64(total)
		}
		out = append(out, RankedRate{Term: t, Rate: r})
	}
	c.mu.RUnlock()

	sort.Slice(out, func(i, j int) bool {
		if out[i].Rate != out[j].Rate {
			return out[i].Rate > out[j].Rate
		}
		return out[i].Term < out[j].Term
	})
	if top > 0 && len(out) > top {
		out = out[:top]
	}
	for i := range out {
		out[i].Rank = i + 1
	}
	return out
}

// TopKMass returns the sum of rates of the k most frequent terms — e.g. the
// paper's "accumulated popularity value of the top-1000 terms is 0.437".
func (c *TermCounter) TopKMass(k int) float64 {
	ranked := c.Ranked(k)
	sum := 0.0
	for _, r := range ranked {
		sum += r.Rate
	}
	return sum
}

// TopKTerms returns the k most frequent terms.
func (c *TermCounter) TopKTerms(k int) []string {
	ranked := c.Ranked(k)
	terms := make([]string, len(ranked))
	for i, r := range ranked {
		terms[i] = r.Term
	}
	return terms
}

// Entropy returns the Shannon entropy (base 2) of the normalized term-count
// distribution, as the paper computes for the TREC frequency rates (9.4473
// for AP, 6.7593 for WT): H = -Σ w_i log2 w_i with w_i = count_i / Σcounts.
func (c *TermCounter) Entropy() float64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var total float64
	for _, n := range c.counts {
		total += float64(n)
	}
	if total == 0 {
		return 0
	}
	h := 0.0
	for _, n := range c.counts {
		if n == 0 {
			continue
		}
		w := float64(n) / total
		h -= w * math.Log2(w)
	}
	return h
}

// Overlap returns the fraction of terms in a that also appear in b — used
// for the paper's query-vs-document top-1000 overlap (26.9% AP, 31.3% WT).
func Overlap(a, b []string) float64 {
	if len(a) == 0 {
		return 0
	}
	set := make(map[string]struct{}, len(b))
	for _, t := range b {
		set[t] = struct{}{}
	}
	hit := 0
	for _, t := range a {
		if _, ok := set[t]; ok {
			hit++
		}
	}
	return float64(hit) / float64(len(a))
}
