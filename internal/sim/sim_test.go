package sim

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultCostModelValid(t *testing.T) {
	if err := DefaultCostModel().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsNonPositive(t *testing.T) {
	bad := []CostModel{
		{YSeek: 1, YP: 0, YDInter: 1, YDIntra: 1},
		{YSeek: 1, YP: 1, YDInter: 0, YDIntra: 1},
		{YSeek: 1, YP: 1, YDInter: 1, YDIntra: -1},
		{YSeek: 0, YP: 1, YDInter: 1, YDIntra: 1},
	}
	for _, m := range bad {
		if err := m.Validate(); !errors.Is(err, ErrBadModel) {
			t.Errorf("Validate(%+v) = %v, want ErrBadModel", m, err)
		}
	}
}

func TestBusySeconds(t *testing.T) {
	m := CostModel{YSeek: 1e-2, YP: 1e-6, YDInter: 1e-3, YDIntra: 1e-4}
	w := NodeWork{PostingLists: 7, PostingsScanned: 1_000_000, DocsReceivedIntra: 10, DocsReceivedInter: 5}
	want := 7*1e-2 + 1.0 + 10*1e-4 + 5*1e-3
	if got := m.BusySeconds(w); math.Abs(got-want) > 1e-12 {
		t.Fatalf("BusySeconds = %v, want %v", got, want)
	}
}

func TestEvaluateBottleneck(t *testing.T) {
	m := CostModel{YSeek: 5e-3, YP: 1e-6, YDInter: 1e-3, YDIntra: 1e-4}
	works := []NodeWork{
		{ID: "a", PostingsScanned: 2_000_000}, // 2s — the bottleneck
		{ID: "b", PostingsScanned: 500_000},   // 0.5s
		{ID: "c", DocsReceivedInter: 100},     // 0.1s
	}
	res, err := Evaluate(m, 1000, 900, works)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.BottleneckSeconds-2.0) > 1e-9 {
		t.Fatalf("bottleneck = %v, want 2.0", res.BottleneckSeconds)
	}
	if math.Abs(res.Throughput-450) > 1e-6 {
		t.Fatalf("throughput = %v, want 450", res.Throughput)
	}
	if res.PerNode[0].ID != "a" || res.PerNode[2].ID != "c" {
		t.Fatalf("PerNode order wrong: %+v", res.PerNode)
	}
	wantMean := (2.0 + 0.5 + 0.1) / 3
	if math.Abs(res.MeanSeconds-wantMean) > 1e-9 {
		t.Fatalf("mean = %v, want %v", res.MeanSeconds, wantMean)
	}
}

func TestEvaluateEmptyAndInvalid(t *testing.T) {
	m := DefaultCostModel()
	res, err := Evaluate(m, 10, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput != 0 || res.BottleneckSeconds != 0 {
		t.Fatalf("empty works should yield zero result, got %+v", res)
	}
	if _, err := Evaluate(m, 5, 6, nil); !errors.Is(err, ErrBadModel) {
		t.Fatalf("complete > docs: %v", err)
	}
	if _, err := Evaluate(m, -1, 0, nil); !errors.Is(err, ErrBadModel) {
		t.Fatalf("negative docs: %v", err)
	}
	if _, err := Evaluate(CostModel{}, 1, 1, nil); !errors.Is(err, ErrBadModel) {
		t.Fatalf("invalid model: %v", err)
	}
}

func TestIntraRackCheaper(t *testing.T) {
	m := DefaultCostModel()
	intra := m.BusySeconds(NodeWork{DocsReceivedIntra: 100})
	inter := m.BusySeconds(NodeWork{DocsReceivedInter: 100})
	if intra >= inter {
		t.Fatalf("intra-rack (%v) must be cheaper than inter-rack (%v)", intra, inter)
	}
}

// TestBalancedLoadBeatsSkewedProperty: for the same total work, a balanced
// split always yields at least the throughput of a skewed split — the
// analytic core of why MOVE's allocation helps.
func TestBalancedLoadBeatsSkewedProperty(t *testing.T) {
	m := DefaultCostModel()
	prop := func(totalRaw uint32, skewRaw uint8) bool {
		total := int64(totalRaw%10_000_000) + 1000
		skew := float64(skewRaw%100) / 100 // [0,1)
		balanced := []NodeWork{
			{ID: "a", PostingsScanned: total / 2},
			{ID: "b", PostingsScanned: total - total/2},
		}
		hot := int64(float64(total) * (0.5 + skew/2))
		skewed := []NodeWork{
			{ID: "a", PostingsScanned: hot},
			{ID: "b", PostingsScanned: total - hot},
		}
		rb, err := Evaluate(m, 100, 100, balanced)
		if err != nil {
			return false
		}
		rs, err := Evaluate(m, 100, 100, skewed)
		if err != nil {
			return false
		}
		return rb.Throughput >= rs.Throughput-1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
