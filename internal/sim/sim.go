// Package sim implements the virtual-time cost model that converts the
// cluster's measured work counters into paper-comparable throughput
// numbers. The paper's testbed measures wall-clock throughput dominated by
// disk IO ("the disk IO is the main bottleneck", §IV-B1 citing [24]); our
// substrate is an in-process simulator, so instead of wall-clock we charge
// the §IV latency model exactly where the paper says the time goes:
//
//	y_seek per posting list retrieved (one random disk read — this is the
//	       §I cost that makes blind flooding expensive: RS retrieves |d|
//	       lists per node per document, MOVE exactly one per forwarded
//	       term),
//	y_p    per posting entry scanned while matching (sequential work),
//	y_d    per document transferred to a node (smaller within a rack),
//
// and compute system throughput under the bottleneck rule the paper's Eq. 1
// derivation uses: the cluster advances as fast as its busiest node.
package sim

import (
	"errors"
	"fmt"
	"sort"

	"github.com/movesys/move/internal/ring"
)

// CostModel is the set of latency constants (seconds).
type CostModel struct {
	// YSeek is the time to retrieve one posting list (a random read).
	YSeek float64
	// YP is the time to scan one posting entry while matching.
	YP float64
	// YDInter is the time to transfer one document across racks.
	YDInter float64
	// YDIntra is the time to transfer one document within a rack.
	YDIntra float64
}

// DefaultCostModel mirrors the constants calibrated for the Ukko-class
// hardware of the paper (commodity servers, GbE, spinning disks): a 5ms
// random read per posting list, 2µs per posting entry, 500µs per
// inter-rack transfer, 100µs intra-rack.
func DefaultCostModel() CostModel {
	return CostModel{YSeek: 5e-3, YP: 2e-6, YDInter: 5e-4, YDIntra: 1e-4}
}

// Validate checks the constants.
func (m CostModel) Validate() error {
	if m.YSeek <= 0 || m.YP <= 0 || m.YDInter <= 0 || m.YDIntra <= 0 {
		return fmt.Errorf("%w: %+v", ErrBadModel, m)
	}
	return nil
}

// ErrBadModel reports unusable cost constants.
var ErrBadModel = errors.New("sim: invalid cost model")

// NodeWork is one node's accumulated work during a measurement window.
type NodeWork struct {
	ID ring.NodeID
	// PostingLists is the number of posting-list retrievals (y_seek
	// units) — every per-term lookup counts, as in the paper's §I flooding
	// critique.
	PostingLists int64
	// PostingsScanned is the matching work (y_p units).
	PostingsScanned int64
	// DocsReceivedIntra / DocsReceivedInter split document arrivals by
	// rack locality (y_d units).
	DocsReceivedIntra int64
	DocsReceivedInter int64
}

// BusySeconds returns the node's virtual busy time under the model.
func (m CostModel) BusySeconds(w NodeWork) float64 {
	return m.YSeek*float64(w.PostingLists) +
		m.YP*float64(w.PostingsScanned) +
		m.YDIntra*float64(w.DocsReceivedIntra) +
		m.YDInter*float64(w.DocsReceivedInter)
}

// Result is the throughput evaluation of one measurement window.
type Result struct {
	// Docs is the number of documents published in the window.
	Docs int
	// Complete is how many were fully matched (the §VI.A throughput
	// numerator).
	Complete int
	// BottleneckSeconds is the busiest node's virtual time.
	BottleneckSeconds float64
	// MeanSeconds is the average per-node busy time.
	MeanSeconds float64
	// Throughput is Complete / BottleneckSeconds (docs per virtual
	// second); infinite-work-free windows yield 0.
	Throughput float64
	// PerNode lists each node's busy seconds, descending.
	PerNode []NodeBusy
}

// NodeBusy pairs a node with its busy time.
type NodeBusy struct {
	ID   ring.NodeID
	Busy float64
}

// Evaluate computes the window's throughput.
func Evaluate(m CostModel, docs, complete int, works []NodeWork) (Result, error) {
	if err := m.Validate(); err != nil {
		return Result{}, err
	}
	if docs < 0 || complete < 0 || complete > docs {
		return Result{}, fmt.Errorf("%w: docs=%d complete=%d", ErrBadModel, docs, complete)
	}
	res := Result{Docs: docs, Complete: complete}
	if len(works) == 0 {
		return res, nil
	}
	res.PerNode = make([]NodeBusy, 0, len(works))
	var sum float64
	for _, w := range works {
		busy := m.BusySeconds(w)
		res.PerNode = append(res.PerNode, NodeBusy{ID: w.ID, Busy: busy})
		sum += busy
		if busy > res.BottleneckSeconds {
			res.BottleneckSeconds = busy
		}
	}
	sort.Slice(res.PerNode, func(i, j int) bool { return res.PerNode[i].Busy > res.PerNode[j].Busy })
	res.MeanSeconds = sum / float64(len(works))
	if res.BottleneckSeconds > 0 {
		res.Throughput = float64(complete) / res.BottleneckSeconds
	}
	return res, nil
}
