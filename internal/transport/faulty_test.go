package transport

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"github.com/movesys/move/internal/ring"
)

// faultHarness joins two memnet nodes and wraps a's endpoint in Faulty.
func faultHarness(t *testing.T, cfg FaultConfig) (*Faulty, *atomic.Int64) {
	t.Helper()
	net := NewNetwork(NetworkConfig{})
	var handled atomic.Int64
	net.Join("b", func(ctx context.Context, from ring.NodeID, payload []byte) ([]byte, error) {
		handled.Add(1)
		return []byte("ok"), nil
	})
	ep := net.Join("a", func(ctx context.Context, from ring.NodeID, payload []byte) ([]byte, error) {
		return nil, nil
	})
	return NewFaulty(ep, cfg), &handled
}

func TestFaultyPassthroughWhenZero(t *testing.T) {
	ft, handled := faultHarness(t, FaultConfig{Seed: 7})
	for i := 0; i < 10; i++ {
		resp, err := ft.Send(context.Background(), "b", []byte("x"))
		if err != nil || string(resp) != "ok" {
			t.Fatalf("Send = (%q, %v), want (ok, nil)", resp, err)
		}
	}
	if handled.Load() != 10 {
		t.Fatalf("handled = %d, want 10", handled.Load())
	}
}

func TestFaultyDropIsDeterministicAndNodeDown(t *testing.T) {
	run := func() (drops int, err1 error) {
		ft, _ := faultHarness(t, FaultConfig{Seed: 7, Default: FaultProbs{Drop: 0.5}})
		for i := 0; i < 100; i++ {
			if _, err := ft.Send(context.Background(), "b", []byte("x")); err != nil {
				drops++
				if err1 == nil {
					err1 = err
				}
			}
		}
		return drops, err1
	}
	d1, err := run()
	d2, _ := run()
	if d1 != d2 {
		t.Fatalf("same seed gave %d then %d drops", d1, d2)
	}
	if d1 < 30 || d1 > 70 {
		t.Fatalf("drops = %d/100 at p=0.5, want ~50", d1)
	}
	if !errors.Is(err, ErrInjected) || !errors.Is(err, ErrNodeDown) {
		t.Fatalf("drop error %v should wrap ErrInjected and ErrNodeDown", err)
	}
}

func TestFaultyDuplicateInvokesHandlerTwice(t *testing.T) {
	ft, handled := faultHarness(t, FaultConfig{Seed: 7, Default: FaultProbs{Duplicate: 1}})
	resp, err := ft.Send(context.Background(), "b", []byte("x"))
	if err != nil || string(resp) != "ok" {
		t.Fatalf("Send = (%q, %v), want (ok, nil)", resp, err)
	}
	if handled.Load() != 2 {
		t.Fatalf("handled = %d, want 2 (duplicate delivery)", handled.Load())
	}
}

func TestFaultyErrorDeliversButLosesResponse(t *testing.T) {
	ft, handled := faultHarness(t, FaultConfig{Seed: 7, Default: FaultProbs{Error: 1}})
	_, err := ft.Send(context.Background(), "b", []byte("x"))
	if !errors.Is(err, ErrInjected) || !errors.Is(err, ErrNodeDown) {
		t.Fatalf("Send err = %v, want injected node-down", err)
	}
	if handled.Load() != 1 {
		t.Fatalf("handled = %d, want 1 (request delivered despite lost response)", handled.Load())
	}
}

func TestFaultyDelayRespectsContext(t *testing.T) {
	ft, handled := faultHarness(t, FaultConfig{Seed: 7, Default: FaultProbs{Delay: 1, DelayFor: time.Minute}})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := ft.Send(ctx, "b", []byte("x"))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Send err = %v, want deadline exceeded", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("delayed Send did not honor context cancellation")
	}
	if handled.Load() != 0 {
		t.Fatal("canceled delayed Send still delivered")
	}
}

func TestFaultyPerLinkOverride(t *testing.T) {
	ft, _ := faultHarness(t, FaultConfig{
		Seed:    7,
		Default: FaultProbs{Drop: 1},
		Links:   map[ring.NodeID]FaultProbs{"b": {}},
	})
	// The per-link override clears the default drop for b. An all-zero
	// override means passthrough.
	if _, err := ft.Send(context.Background(), "b", []byte("x")); err != nil {
		t.Fatalf("Send with clean per-link override = %v, want nil", err)
	}
}
