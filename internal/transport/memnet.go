package transport

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/movesys/move/internal/ring"
)

// Network is an in-process cluster fabric. Nodes Join it to obtain a
// Transport endpoint; Sends are delivered by direct handler invocation with
// optional injected latency, asymmetric partitions, and crash failures.
type Network struct {
	mu       sync.RWMutex
	nodes    map[ring.NodeID]*memEndpoint
	latency  time.Duration
	down     map[ring.NodeID]struct{}
	cutLinks map[[2]ring.NodeID]struct{}
}

// NetworkConfig controls fault/latency injection.
type NetworkConfig struct {
	// Latency is a fixed one-way delay applied to every delivery. Zero (the
	// default) keeps tests and benchmarks fast; the figure harness models
	// transfer cost analytically instead (internal/sim).
	Latency time.Duration
}

// NewNetwork creates an empty fabric.
func NewNetwork(cfg NetworkConfig) *Network {
	return &Network{
		nodes:    make(map[ring.NodeID]*memEndpoint),
		latency:  cfg.Latency,
		down:     make(map[ring.NodeID]struct{}),
		cutLinks: make(map[[2]ring.NodeID]struct{}),
	}
}

// Join registers a node and returns its endpoint. Joining an existing ID
// replaces the previous endpoint (a node restart).
func (n *Network) Join(id ring.NodeID, h Handler) Transport {
	ep := &memEndpoint{net: n, id: id, handler: h}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.nodes[id] = ep
	delete(n.down, id)
	return ep
}

// Fail marks a node as crashed: every Send to it fails with ErrNodeDown
// until it rejoins or Recover is called.
func (n *Network) Fail(id ring.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.down[id] = struct{}{}
}

// Recover clears the crash flag of a node.
func (n *Network) Recover(id ring.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.down, id)
}

// Failed reports whether the node is currently marked crashed.
func (n *Network) Failed(id ring.NodeID) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	_, ok := n.down[id]
	return ok
}

// CutLink drops messages from `from` to `to` (one direction) — an
// asymmetric partition.
func (n *Network) CutLink(from, to ring.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cutLinks[[2]ring.NodeID{from, to}] = struct{}{}
}

// HealLink restores a previously cut link.
func (n *Network) HealLink(from, to ring.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.cutLinks, [2]ring.NodeID{from, to})
}

// lookup resolves the destination endpoint, applying fault state.
func (n *Network) lookup(from, to ring.NodeID) (*memEndpoint, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if _, cut := n.cutLinks[[2]ring.NodeID{from, to}]; cut {
		return nil, fmt.Errorf("link %s->%s cut: %w", from, to, ErrNodeDown)
	}
	if _, dead := n.down[to]; dead {
		return nil, fmt.Errorf("node %s failed: %w", to, ErrNodeDown)
	}
	ep, ok := n.nodes[to]
	if !ok {
		return nil, fmt.Errorf("node %s not joined: %w", to, ErrNodeDown)
	}
	return ep, nil
}

// memEndpoint is one node's view of the in-memory network.
type memEndpoint struct {
	net     *Network
	id      ring.NodeID
	handler Handler

	mu     sync.Mutex
	closed bool
}

var _ Transport = (*memEndpoint)(nil)

func (e *memEndpoint) Self() ring.NodeID { return e.id }

func (e *memEndpoint) Close() error {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	e.net.mu.Lock()
	if e.net.nodes[e.id] == e {
		delete(e.net.nodes, e.id)
	}
	e.net.mu.Unlock()
	return nil
}

// Send delivers payload to the peer's handler without copying it. The
// in-memory network is zero-copy: it honors the Transport contract because
// delivery is synchronous — the handler runs to completion (and by its own
// contract does not retain payload) before Send returns, so the caller may
// recycle pooled request buffers as soon as Send comes back.
func (e *memEndpoint) Send(ctx context.Context, to ring.NodeID, payload []byte) ([]byte, error) {
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	// A canceled context must fail fast — in particular it must never wait
	// out the injected latency below.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	dst, err := e.net.lookup(e.id, to)
	if err != nil {
		return nil, err
	}
	if lat := e.net.latency; lat > 0 {
		timer := time.NewTimer(lat)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return nil, ctx.Err()
		}
	}
	// The destination may have crashed while the message was "in flight".
	if e.net.Failed(to) {
		return nil, fmt.Errorf("node %s failed: %w", to, ErrNodeDown)
	}
	resp, err := dst.handler(ctx, e.id, payload)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrRemote, to, err)
	}
	return resp, nil
}
