package transport

import (
	"context"
	"testing"

	"github.com/movesys/move/internal/ring"
	"github.com/movesys/move/internal/testutil"
)

// TestTCPWarmRoundTripAllocs guards the warm request/response cycle over a
// real socket. A round trip can never be zero-alloc — the response must be
// copied out of the transport-owned read buffer (§11), the waiter needs a
// channel, and the server dispatches one goroutine per request — but the
// framing and read paths are pooled (codec writers, request/response frame
// buffers, send-queue rounds), so the count must stay small and constant
// regardless of payload size. A regression to per-frame fresh buffers
// shows up here immediately.
func TestTCPWarmRoundTripAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are not stable under the race detector")
	}
	resp := []byte("pongpongpongpong")
	addrs := make(map[ring.NodeID]string)
	resolver := StaticResolverLive(&addrs)
	b, err := NewTCP("b", "127.0.0.1:0", func(context.Context, ring.NodeID, []byte) ([]byte, error) {
		return resp, nil
	}, resolver)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a, err := NewTCP("a", "127.0.0.1:0", nil, resolver)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	addrs["b"] = b.Addr()

	ctx := context.Background()
	payload := make([]byte, 4096)
	// Warm the pool: dial every stripe, populate buffer pools.
	for i := 0; i < 32; i++ {
		if _, err := a.Send(ctx, "b", payload); err != nil {
			t.Fatal(err)
		}
	}

	allocs := testing.AllocsPerRun(300, func() {
		got, err := a.Send(ctx, "b", payload)
		if err != nil || len(got) != len(resp) {
			t.Fatalf("got=%q err=%v", got, err)
		}
	})
	// Measured ~11 allocs/op warm (client: result chan, pending map entry,
	// response copy; server: request goroutine + closure, handler return).
	// The bound leaves headroom for scheduler noise while catching any
	// per-frame buffer regression (a fresh 4 KiB read buffer per frame
	// roughly doubles it).
	const maxAllocs = 20
	if allocs > maxAllocs {
		t.Fatalf("warm TCP round trip: %.1f allocs/op, want ≤ %d", allocs, maxAllocs)
	}
}

// StaticResolverLive resolves from a map the caller may still be filling —
// test-only helper so nodes can be constructed before addresses are known.
func StaticResolverLive(addrs *map[ring.NodeID]string) Resolver {
	return func(id ring.NodeID) (string, error) {
		a, ok := (*addrs)[id]
		if !ok {
			return "", ErrNodeDown
		}
		return a, nil
	}
}
