// Package transport provides the messaging substrate of the MOVE cluster:
// a request/response Transport interface with two implementations — an
// in-memory network with injectable latency, partitions, and node failures
// (used by tests, examples, and the experiment harness to stand in for the
// paper's 100-machine Ukko cluster), and a TCP transport over net (used by
// cmd/moved for real deployments).
package transport

import (
	"context"
	"errors"

	"github.com/movesys/move/internal/ring"
)

// IsAvailabilityError reports whether err signals that the peer may be
// unreachable (down, partitioned, or timed out) rather than a remote
// handler failure — the class of error worth retrying or failing over.
// Context cancellation is excluded: the caller gave up, the peer did not.
func IsAvailabilityError(err error) bool {
	return errors.Is(err, ErrNodeDown) || errors.Is(err, context.DeadlineExceeded)
}

// Handler processes one inbound request and returns the response payload.
// Handlers must be safe for concurrent use.
//
// Buffer ownership (see DESIGN.md §11): the payload belongs to the
// transport and may be recycled after the handler returns — handlers must
// not retain it (decode in place; copy anything long-lived). The returned
// response buffer transfers to the transport, which only reads it; it must
// not alias the request payload, and it must not come from a pool the
// handler later recycles.
type Handler func(ctx context.Context, from ring.NodeID, payload []byte) ([]byte, error)

// Transport is one node's endpoint in the cluster.
type Transport interface {
	// Send delivers payload to the node `to` and waits for its response.
	//
	// Buffer ownership (see DESIGN.md §11): the transport does not retain
	// payload past the point Send returns, so callers may recycle pooled
	// request buffers immediately afterwards. The returned response slice
	// is owned by the caller and never aliases payload.
	Send(ctx context.Context, to ring.NodeID, payload []byte) ([]byte, error)
	// Self returns the local node's ID.
	Self() ring.NodeID
	// Close releases the endpoint; subsequent Sends fail.
	Close() error
}

// Errors shared by transport implementations.
var (
	// ErrNodeDown is returned when the destination is not reachable (failed,
	// partitioned, or never joined).
	ErrNodeDown = errors.New("transport: node down")
	// ErrClosed is returned when the local endpoint has been closed.
	ErrClosed = errors.New("transport: endpoint closed")
	// ErrRemote wraps a handler-side failure reported by the peer.
	ErrRemote = errors.New("transport: remote handler error")
)
