package transport

import (
	"context"
	"errors"
	"strconv"
	"sync"
	"testing"
	"time"

	"github.com/movesys/move/internal/ring"
)

func echoHandler(prefix string) Handler {
	return func(_ context.Context, from ring.NodeID, payload []byte) ([]byte, error) {
		return append([]byte(prefix+string(from)+":"), payload...), nil
	}
}

func TestMemNetRoundTrip(t *testing.T) {
	net := NewNetwork(NetworkConfig{})
	a := net.Join("a", echoHandler("to-a-from-"))
	_ = net.Join("b", echoHandler("to-b-from-"))

	resp, err := a.Send(context.Background(), "b", []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "to-b-from-a:hello" {
		t.Fatalf("resp = %q", resp)
	}
}

func TestMemNetSelfSend(t *testing.T) {
	net := NewNetwork(NetworkConfig{})
	a := net.Join("a", echoHandler(""))
	resp, err := a.Send(context.Background(), "a", []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "a:x" {
		t.Fatalf("resp = %q", resp)
	}
}

func TestMemNetUnknownNode(t *testing.T) {
	net := NewNetwork(NetworkConfig{})
	a := net.Join("a", echoHandler(""))
	if _, err := a.Send(context.Background(), "ghost", nil); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("err = %v, want ErrNodeDown", err)
	}
}

func TestMemNetFailRecover(t *testing.T) {
	net := NewNetwork(NetworkConfig{})
	a := net.Join("a", echoHandler(""))
	_ = net.Join("b", echoHandler(""))

	net.Fail("b")
	if !net.Failed("b") {
		t.Fatal("Failed(b) = false after Fail")
	}
	if _, err := a.Send(context.Background(), "b", nil); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("err = %v, want ErrNodeDown", err)
	}
	net.Recover("b")
	if _, err := a.Send(context.Background(), "b", nil); err != nil {
		t.Fatalf("after recover: %v", err)
	}
}

func TestMemNetCutLinkAsymmetric(t *testing.T) {
	net := NewNetwork(NetworkConfig{})
	a := net.Join("a", echoHandler(""))
	b := net.Join("b", echoHandler(""))

	net.CutLink("a", "b")
	if _, err := a.Send(context.Background(), "b", nil); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("a->b should be cut, got %v", err)
	}
	if _, err := b.Send(context.Background(), "a", nil); err != nil {
		t.Fatalf("b->a should work, got %v", err)
	}
	net.HealLink("a", "b")
	if _, err := a.Send(context.Background(), "b", nil); err != nil {
		t.Fatalf("after heal: %v", err)
	}
}

func TestMemNetRemoteError(t *testing.T) {
	net := NewNetwork(NetworkConfig{})
	a := net.Join("a", echoHandler(""))
	_ = net.Join("b", func(context.Context, ring.NodeID, []byte) ([]byte, error) {
		return nil, errors.New("boom")
	})
	_, err := a.Send(context.Background(), "b", nil)
	if !errors.Is(err, ErrRemote) {
		t.Fatalf("err = %v, want ErrRemote", err)
	}
}

func TestMemNetClosedEndpoint(t *testing.T) {
	net := NewNetwork(NetworkConfig{})
	a := net.Join("a", echoHandler(""))
	_ = net.Join("b", echoHandler(""))
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Send(context.Background(), "b", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestMemNetLatencyRespectsContext(t *testing.T) {
	net := NewNetwork(NetworkConfig{Latency: time.Second})
	a := net.Join("a", echoHandler(""))
	_ = net.Join("b", echoHandler(""))
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := a.Send(ctx, "b", nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > 500*time.Millisecond {
		t.Fatal("Send did not honour context cancellation promptly")
	}
}

func TestMemNetConcurrentSends(t *testing.T) {
	net := NewNetwork(NetworkConfig{})
	var mu sync.Mutex
	received := make(map[string]int)
	_ = net.Join("sink", func(_ context.Context, from ring.NodeID, payload []byte) ([]byte, error) {
		mu.Lock()
		received[string(payload)]++
		mu.Unlock()
		return nil, nil
	})

	var wg sync.WaitGroup
	const senders = 8
	const msgs = 100
	for s := 0; s < senders; s++ {
		ep := net.Join(ring.NodeID("s"+strconv.Itoa(s)), echoHandler(""))
		wg.Add(1)
		go func(ep Transport, s int) {
			defer wg.Done()
			for i := 0; i < msgs; i++ {
				if _, err := ep.Send(context.Background(), "sink", []byte(strconv.Itoa(s*msgs+i))); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(ep, s)
	}
	wg.Wait()
	if len(received) != senders*msgs {
		t.Fatalf("received %d distinct messages, want %d", len(received), senders*msgs)
	}
}

func TestMemNetRejoinReplacesEndpoint(t *testing.T) {
	net := NewNetwork(NetworkConfig{})
	a := net.Join("a", echoHandler(""))
	_ = net.Join("b", func(context.Context, ring.NodeID, []byte) ([]byte, error) {
		return []byte("v1"), nil
	})
	_ = net.Join("b", func(context.Context, ring.NodeID, []byte) ([]byte, error) {
		return []byte("v2"), nil
	})
	resp, err := a.Send(context.Background(), "b", nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "v2" {
		t.Fatalf("resp = %q, want v2 (rejoin should replace handler)", resp)
	}
}

// TestMemnetSendCancellation: a canceled Send must return promptly instead
// of waiting out the injected latency, and a context canceled before the
// call must not be delivered at all.
func TestMemnetSendCancellation(t *testing.T) {
	net := NewNetwork(NetworkConfig{Latency: time.Minute})
	delivered := 0
	net.Join("b", func(ctx context.Context, from ring.NodeID, payload []byte) ([]byte, error) {
		delivered++
		return nil, nil
	})
	ep := net.Join("a", func(ctx context.Context, from ring.NodeID, payload []byte) ([]byte, error) {
		return nil, nil
	})

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if _, err := ep.Send(ctx, "b", []byte("x")); !errors.Is(err, context.Canceled) {
		t.Fatalf("Send with pre-canceled ctx = %v, want context.Canceled", err)
	}

	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel2()
	if _, err := ep.Send(ctx2, "b", []byte("x")); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Send under latency = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v, latency sleep not interrupted", elapsed)
	}
	if delivered != 0 {
		t.Fatalf("delivered = %d, want 0", delivered)
	}
}
