package transport

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/movesys/move/internal/ring"
)

// ErrInjected marks a failure produced by the Faulty decorator rather than
// the underlying fabric, so tests can tell scripted faults from real ones.
var ErrInjected = errors.New("transport: injected fault")

// FaultProbs sets the per-send probabilities of each fault class on one
// link. Probabilities are independent draws in [0, 1].
type FaultProbs struct {
	// Drop loses the request before delivery; the send fails with
	// ErrInjected wrapping ErrNodeDown (indistinguishable from a dead
	// peer, which is how a lost message looks to the sender).
	Drop float64
	// Delay adds DelayFor of extra latency before delivery.
	Delay float64
	// DelayFor is the added latency for Delay hits (default 1ms).
	DelayFor time.Duration
	// Error delivers the request but loses the response: the handler runs,
	// yet the send returns ErrInjected wrapping ErrNodeDown — the
	// ambiguous at-most-once failure that retry layers must tolerate.
	Error float64
	// Duplicate delivers the request twice (the first response is
	// discarded), modeling a retransmit racing a slow ack; handlers must
	// be idempotent to survive it.
	Duplicate float64
}

// zero reports whether no fault class is enabled.
func (p FaultProbs) zero() bool {
	return p.Drop == 0 && p.Delay == 0 && p.Error == 0 && p.Duplicate == 0
}

// FaultConfig parameterizes a Faulty decorator.
type FaultConfig struct {
	// Seed makes the fault schedule deterministic; zero uses 1.
	Seed int64
	// Default applies to every link without a per-link override.
	Default FaultProbs
	// Links overrides Default for specific destinations (the link is
	// local endpoint → destination).
	Links map[ring.NodeID]FaultProbs
}

// Faulty wraps any Transport with seeded, probabilistic fault injection so
// the same fault schedule can run against both the in-memory fabric and
// TCP. It implements Transport.
type Faulty struct {
	inner Transport
	cfg   FaultConfig

	mu  sync.Mutex
	rng *rand.Rand
}

var _ Transport = (*Faulty)(nil)

// NewFaulty decorates inner with the configured fault schedule.
func NewFaulty(inner Transport, cfg FaultConfig) *Faulty {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &Faulty{inner: inner, cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// Self returns the inner endpoint's ID.
func (f *Faulty) Self() ring.NodeID { return f.inner.Self() }

// Close closes the inner endpoint.
func (f *Faulty) Close() error { return f.inner.Close() }

// probs resolves the fault probabilities for the link to `to`.
func (f *Faulty) probs(to ring.NodeID) FaultProbs {
	if p, ok := f.cfg.Links[to]; ok {
		return p
	}
	return f.cfg.Default
}

// Send applies the link's fault schedule around the inner Send. All four
// random draws happen on every send so the schedule for a given seed is
// independent of which probabilities are enabled.
func (f *Faulty) Send(ctx context.Context, to ring.NodeID, payload []byte) ([]byte, error) {
	p := f.probs(to)
	f.mu.Lock()
	drop := f.rng.Float64() < p.Drop
	delay := f.rng.Float64() < p.Delay
	loseResp := f.rng.Float64() < p.Error
	dup := f.rng.Float64() < p.Duplicate
	f.mu.Unlock()
	if p.zero() {
		return f.inner.Send(ctx, to, payload)
	}

	if drop {
		return nil, fmt.Errorf("fault: dropped %s->%s: %w: %w", f.Self(), to, ErrInjected, ErrNodeDown)
	}
	if delay {
		d := p.DelayFor
		if d <= 0 {
			d = time.Millisecond
		}
		t := time.NewTimer(d)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return nil, ctx.Err()
		}
	}
	if dup {
		// Duplicate delivery: the redundant copy's response (and error) is
		// discarded, as a retransmitted datagram's would be.
		_, _ = f.inner.Send(ctx, to, payload)
	}
	resp, err := f.inner.Send(ctx, to, payload)
	if err != nil {
		return nil, err
	}
	if loseResp {
		return nil, fmt.Errorf("fault: response lost %s->%s: %w: %w", f.Self(), to, ErrInjected, ErrNodeDown)
	}
	return resp, nil
}
