package transport

import (
	"encoding/binary"
	"net"
	"sync"
	"time"

	"github.com/movesys/move/internal/metrics"
)

// wireMetrics is the transport.tcp.* instrumentation shared by every
// connection of one TCPNode. The frames/syscall histogram stores
// milli-frames (1 frame = 1000 units) so sub-integer ratios survive the
// log-bucketed histogram, mirroring delivery.flush.frames_per_syscall.
type wireMetrics struct {
	flushFrames      *metrics.Counter   // transport.tcp.flush.frames
	flushSyscalls    *metrics.Counter   // transport.tcp.flush.syscalls
	framesPerSyscall *metrics.Histogram // transport.tcp.frames_per_syscall (milli-frames)
	flushBytes       *metrics.Histogram // transport.tcp.flush.bytes
	queueBytes       *metrics.Histogram // transport.tcp.queue.bytes (depth at enqueue)
	conns            *metrics.Gauge     // transport.tcp.conns (live, both directions)
	dials            *metrics.Counter   // transport.tcp.dials
	dialFailures     *metrics.Counter   // transport.tcp.dial.failures
	redialSuppressed *metrics.Counter   // transport.tcp.redial.suppressed
}

func newWireMetrics(reg *metrics.Registry) *wireMetrics {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	return &wireMetrics{
		flushFrames:      reg.Counter("transport.tcp.flush.frames"),
		flushSyscalls:    reg.Counter("transport.tcp.flush.syscalls"),
		framesPerSyscall: reg.Histogram("transport.tcp.frames_per_syscall"),
		flushBytes:       reg.Histogram("transport.tcp.flush.bytes"),
		queueBytes:       reg.Histogram("transport.tcp.queue.bytes"),
		conns:            reg.Gauge("transport.tcp.conns"),
		dials:            reg.Counter("transport.tcp.dials"),
		dialFailures:     reg.Counter("transport.tcp.dial.failures"),
		redialSuppressed: reg.Counter("transport.tcp.redial.suppressed"),
	}
}

// observeFlush records one physical write of frames frames / n bytes.
func (m *wireMetrics) observeFlush(frames, n int) {
	m.flushFrames.Add(int64(frames))
	m.flushSyscalls.Inc()
	m.framesPerSyscall.Observe(time.Duration(frames) * 1000)
	m.flushBytes.Observe(time.Duration(n))
}

// observeFrameWrite records one legacy per-frame write: writeFrame issues
// two syscalls (4-byte header, then body), so the non-coalescing baseline
// honestly reports 0.5 frames per syscall.
func (m *wireMetrics) observeFrameWrite(n int) {
	m.flushFrames.Inc()
	m.flushSyscalls.Add(2)
	m.framesPerSyscall.Observe(500)
	m.flushBytes.Observe(time.Duration(n))
}

// maxRetainedWriteBuf bounds the send buffers a connWriter keeps across
// flush rounds; a rare giant round should not pin its backing array on an
// idle connection forever.
const maxRetainedWriteBuf = 1 << 20

// connWriter owns the write half of one TCP connection — requests on
// outbound conns, responses on inbound ones. With coalescing enabled a
// dedicated writer goroutine drains a bounded send queue into one
// deadline-bounded Write per round, so N concurrent senders cost one
// syscall instead of N (DESIGN.md §17, mirroring the delivery writer's
// size/delay/ordering bounds from §16):
//
//   - size bound: a queue passing CoalesceBytes nudges the writer to drain
//     mid-delay instead of waiting out the window;
//   - delay bound: with FlushDelay > 0 the writer lingers that long after
//     waking so concurrent senders pile onto the same round (0 = natural
//     coalescing only: frames arriving during the previous Write share the
//     next one);
//   - ordering bound: frames go to the wire in enqueue order; RPC responses
//     carry request IDs, so no frame class needs to jump the queue.
//
// Enqueues past QueueBytes block until the writer drains — bounded-queue
// backpressure, not unbounded buffering. With coalescing disabled, enqueue
// degrades to the pre-§17 behavior: one locked writeFrame per frame.
type connWriter struct {
	raw net.Conn
	met *wireMetrics

	coalesce      bool
	flushDelay    time.Duration
	coalesceBytes int
	queueBytes    int
	writeTimeout  time.Duration

	mu      sync.Mutex
	notFull *sync.Cond
	buf     []byte
	frames  int
	err     error
	spare   []byte

	wake    chan struct{} // buffered(1): frames pending
	urgent  chan struct{} // buffered(1): size bound passed mid-delay
	stop    chan struct{}
	stopped sync.Once
}

func newConnWriter(raw net.Conn, opts TCPOptions, met *wireMetrics) *connWriter {
	w := &connWriter{
		raw:           raw,
		met:           met,
		coalesce:      !opts.NoCoalesce,
		flushDelay:    opts.FlushDelay,
		coalesceBytes: opts.CoalesceBytes,
		queueBytes:    opts.QueueBytes,
		writeTimeout:  opts.WriteTimeout,
		wake:          make(chan struct{}, 1),
		urgent:        make(chan struct{}, 1),
		stop:          make(chan struct{}),
	}
	w.notFull = sync.NewCond(&w.mu)
	return w
}

// enqueue appends one length-prefixed frame to the send queue (copying
// frame, so callers may recycle pooled encode buffers immediately) and
// wakes the writer. Blocks while the queue is over QueueBytes. Without
// coalescing it writes the frame synchronously under the queue lock.
func (w *connWriter) enqueue(frame []byte) error {
	if len(frame) > maxFrame {
		return errFrameTooLarge(len(frame))
	}
	w.mu.Lock()
	if !w.coalesce {
		defer w.mu.Unlock()
		if w.err != nil {
			return w.err
		}
		if w.writeTimeout > 0 {
			_ = w.raw.SetWriteDeadline(time.Now().Add(w.writeTimeout))
		}
		err := writeFrame(w.raw, frame)
		w.met.observeFrameWrite(len(frame) + 4)
		if err != nil && w.err == nil {
			w.err = err
		}
		return err
	}
	for w.err == nil && len(w.buf) >= w.queueBytes {
		w.notFull.Wait()
	}
	if w.err != nil {
		w.mu.Unlock()
		return w.err
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(frame)))
	w.buf = append(w.buf, hdr[:]...)
	w.buf = append(w.buf, frame...)
	w.frames++
	depth := len(w.buf)
	w.mu.Unlock()

	w.met.queueBytes.Observe(time.Duration(depth))
	select {
	case w.wake <- struct{}{}:
	default:
	}
	if depth >= w.coalesceBytes {
		select {
		case w.urgent <- struct{}{}:
		default:
		}
	}
	return nil
}

// run is the writer goroutine: wake → (optional delay window) → one
// deadline-bounded Write of every queued frame. It owns closing the raw
// connection, so the read side unblocks as soon as the writer dies —
// whether from a write error or a closeWith.
func (w *connWriter) run() {
	defer func() { _ = w.raw.Close() }()
	for {
		select {
		case <-w.wake:
		case <-w.stop:
			_ = w.flushOnce() // best-effort final drain
			return
		}
		if w.flushDelay > 0 {
			w.mu.Lock()
			small := len(w.buf) < w.coalesceBytes
			w.mu.Unlock()
			if small {
				t := time.NewTimer(w.flushDelay)
				select {
				case <-t.C:
				case <-w.urgent:
					t.Stop()
				case <-w.stop:
					t.Stop()
					_ = w.flushOnce()
					return
				}
			}
		}
		if err := w.flushOnce(); err != nil {
			w.fail(err)
			return
		}
	}
}

// flushOnce writes every queued frame in one syscall under one write
// deadline. The queue buffer and a spare alternate, so senders append into
// a warm array while the previous round is on the wire.
func (w *connWriter) flushOnce() error {
	w.mu.Lock()
	if w.frames == 0 || w.err != nil {
		err := w.err
		w.mu.Unlock()
		return err
	}
	out := w.buf
	frames := w.frames
	w.buf = w.spare[:0]
	w.spare = nil
	w.frames = 0
	w.notFull.Broadcast()
	w.mu.Unlock()

	if w.writeTimeout > 0 {
		_ = w.raw.SetWriteDeadline(time.Now().Add(w.writeTimeout))
	}
	_, err := w.raw.Write(out)
	w.met.observeFlush(frames, len(out))

	w.mu.Lock()
	if w.spare == nil && cap(out) <= maxRetainedWriteBuf {
		w.spare = out[:0]
	}
	w.mu.Unlock()
	return err
}

// fail marks the writer broken so blocked and future enqueues return err.
// The raw conn closes when run returns, which unwinds the read loop.
func (w *connWriter) fail(err error) {
	w.mu.Lock()
	if w.err == nil {
		w.err = err
	}
	w.notFull.Broadcast()
	w.mu.Unlock()
}

// closeWith stops the writer with err and closes the raw connection, which
// unblocks the connection's read loop. Idempotent, and safe whether or not
// a writer goroutine is running.
func (w *connWriter) closeWith(err error) {
	w.fail(err)
	w.stopped.Do(func() {
		close(w.stop)
		_ = w.raw.Close()
	})
}

// queuedBytes reports the send-queue depth (for Stats and /healthz).
func (w *connWriter) queuedBytes() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.buf)
}
