package transport

import (
	"context"
	"errors"
	"net"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/movesys/move/internal/metrics"
	"github.com/movesys/move/internal/ring"
)

// tcpPair is startTCPPair plus explicit wire options and a mutable address
// table, so tests can kill and restart a peer.
type tcpPair struct {
	a, b *TCPNode

	mu    sync.Mutex
	addrs map[ring.NodeID]string
}

func (p *tcpPair) setAddr(id ring.NodeID, addr string) {
	p.mu.Lock()
	p.addrs[id] = addr
	p.mu.Unlock()
}

func (p *tcpPair) resolver() Resolver {
	return func(id ring.NodeID) (string, error) {
		p.mu.Lock()
		defer p.mu.Unlock()
		a, ok := p.addrs[id]
		if !ok {
			return "", ErrNodeDown
		}
		return a, nil
	}
}

func startTCPPairOpts(t *testing.T, hb Handler, opts TCPOptions) *tcpPair {
	t.Helper()
	p := &tcpPair{addrs: make(map[ring.NodeID]string)}
	if hb == nil {
		hb = echoHandler("")
	}
	var err error
	p.a, err = NewTCPOpts("a", "127.0.0.1:0", echoHandler(""), p.resolver(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = p.a.Close() })
	p.b, err = NewTCPOpts("b", "127.0.0.1:0", hb, p.resolver(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = p.b.Close() })
	p.setAddr("a", p.a.Addr())
	p.setAddr("b", p.b.Addr())
	return p
}

// TestTCPPeerKilledMidRequest kills the peer while a request is in flight:
// the caller must get an availability error (not hang), and once a
// replacement peer is up the next Send must redial cleanly.
func TestTCPPeerKilledMidRequest(t *testing.T) {
	var inHandler sync.WaitGroup
	inHandler.Add(1)
	var once sync.Once
	p := startTCPPairOpts(t, func(context.Context, ring.NodeID, []byte) ([]byte, error) {
		once.Do(inHandler.Done)
		time.Sleep(300 * time.Millisecond)
		return []byte("late"), nil
	}, TCPOptions{DialBackoff: 10 * time.Millisecond})

	errCh := make(chan error, 1)
	go func() {
		_, err := p.a.Send(context.Background(), "b", []byte("doomed"))
		errCh <- err
	}()
	inHandler.Wait()
	go func() { _ = p.b.Close() }() // tears accepted conns down immediately

	select {
	case err := <-errCh:
		if !IsAvailabilityError(err) {
			t.Fatalf("mid-request kill: err = %v, want availability error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Send hung after peer was killed")
	}

	// A replacement peer comes up (new port; the resolver is updated the
	// way a config/gossip refresh would). Sends must recover.
	b2, err := NewTCPOpts("b", "127.0.0.1:0", echoHandler(""), p.resolver(), TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = b2.Close() })
	p.setAddr("b", b2.Addr())

	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := p.a.Send(context.Background(), "b", []byte("hello"))
		if err == nil {
			if string(resp) != "a:hello" {
				t.Fatalf("resp = %q", resp)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("never redialed replacement peer: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestTCPCloseDuringInflightNoGoroutineLeak closes the node while Sends are
// in flight and asserts every transport goroutine (accept, serve, read,
// write) exits.
func TestTCPCloseDuringInflightNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	p := startTCPPairOpts(t, func(_ context.Context, _ ring.NodeID, b []byte) ([]byte, error) {
		time.Sleep(time.Duration(len(b)%7) * time.Millisecond)
		return b, nil
	}, TCPOptions{Conns: 4})

	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < 48; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			// Errors are expected once Close lands; the assertion is that
			// nothing hangs or leaks.
			_, _ = p.a.Send(context.Background(), "b", []byte(strconv.Itoa(i)))
		}(i)
	}
	close(start)
	time.Sleep(5 * time.Millisecond)
	if err := p.a.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if err := p.b.Close(); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: before=%d after=%d\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestTCPStripedPoolSurvivesBrokenConn breaks one stripe's socket out from
// under the pool: the other stripes keep serving, the broken stripe evicts
// and redials, and the pool heals back to full width.
func TestTCPStripedPoolSurvivesBrokenConn(t *testing.T) {
	const stripes = 4
	p := startTCPPairOpts(t, nil, TCPOptions{Conns: stripes, DialBackoff: 10 * time.Millisecond})

	// Warm every stripe (round-robin pick walks the slots in order).
	for i := 0; i < stripes*2; i++ {
		if _, err := p.a.Send(context.Background(), "b", []byte("warm")); err != nil {
			t.Fatal(err)
		}
	}
	if st := p.a.Stats(); st.PerPeer["b"].Conns != stripes {
		t.Fatalf("warm pool = %+v, want %d conns to b", st, stripes)
	}

	// Sever one stripe's socket behind the pool's back.
	p.a.mu.Lock()
	pool := p.a.pools["b"]
	p.a.mu.Unlock()
	pool.mu.Lock()
	broken := pool.conns[0]
	pool.mu.Unlock()
	_ = broken.raw.Close()

	// Every stripe gets traffic; at most the in-flight casualties on the
	// broken conn may fail, and a retry must succeed (evict + redial).
	failures := 0
	for i := 0; i < stripes*4; i++ {
		if _, err := p.a.Send(context.Background(), "b", []byte("x")); err != nil {
			failures++
			if !IsAvailabilityError(err) {
				t.Fatalf("unexpected error class: %v", err)
			}
			// Retry after backoff: must land on a healthy or redialed conn.
			deadline := time.Now().Add(3 * time.Second)
			for {
				if _, err := p.a.Send(context.Background(), "b", []byte("retry")); err == nil {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("stripe never recovered: %v", err)
				}
				time.Sleep(15 * time.Millisecond)
			}
		}
	}
	if failures > stripes {
		t.Fatalf("%d failures from one broken conn (want ≤ %d)", failures, stripes)
	}

	deadline := time.Now().Add(3 * time.Second)
	for {
		for i := 0; i < stripes; i++ {
			_, _ = p.a.Send(context.Background(), "b", []byte("heal"))
		}
		if st := p.a.Stats(); st.PerPeer["b"].Conns == stripes {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool never healed: %+v", p.a.Stats())
		}
		time.Sleep(15 * time.Millisecond)
	}
}

// TestTCPDialBackoffSuppressesRedialStorm points a node at a dead address
// and hammers it with concurrent Sends: the per-peer breaker must collapse
// the storm to a handful of real dial attempts.
func TestTCPDialBackoffSuppressesRedialStorm(t *testing.T) {
	// Reserve a port that is guaranteed dead.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	_ = ln.Close()

	reg := metrics.NewRegistry()
	a, err := NewTCPOpts("a", "127.0.0.1:0", echoHandler(""), StaticResolver(map[ring.NodeID]string{
		"dead": deadAddr,
	}), TCPOptions{DialBackoff: time.Second, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = a.Close() })

	var wg sync.WaitGroup
	var sendErrs atomic.Int64
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := a.Send(context.Background(), "dead", []byte("x")); errors.Is(err, ErrNodeDown) {
				sendErrs.Add(1)
			}
		}()
	}
	wg.Wait()

	if got := sendErrs.Load(); got != 64 {
		t.Fatalf("ErrNodeDown sends = %d, want 64", got)
	}
	dials := reg.Counter("transport.tcp.dials").Value()
	suppressed := reg.Counter("transport.tcp.redial.suppressed").Value()
	if dials > 3 {
		t.Fatalf("dial storm not suppressed: %d dials for 64 concurrent Sends", dials)
	}
	if suppressed < 32 {
		t.Fatalf("redial.suppressed = %d, want most of the storm", suppressed)
	}
}

// TestTCPCoalescingMetricsAndStats drives concurrent pipelined traffic and
// checks the wire instrumentation: flush syscalls recorded, frames ≥
// syscalls (coalescing can only merge), and Stats reports the striped pool.
func TestTCPCoalescingMetricsAndStats(t *testing.T) {
	reg := metrics.NewRegistry()
	p := startTCPPairOpts(t, nil, TCPOptions{Conns: 2, Metrics: reg})

	var wg sync.WaitGroup
	for i := 0; i < 128; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			want := "a:" + strconv.Itoa(i)
			resp, err := p.a.Send(context.Background(), "b", []byte(strconv.Itoa(i)))
			if err != nil || string(resp) != want {
				t.Errorf("send %d: %q, %v", i, resp, err)
			}
		}(i)
	}
	wg.Wait()

	frames := reg.Counter("transport.tcp.flush.frames").Value()
	syscalls := reg.Counter("transport.tcp.flush.syscalls").Value()
	if syscalls == 0 || frames < 128 {
		t.Fatalf("flush metrics: frames=%d syscalls=%d", frames, syscalls)
	}
	if frames < syscalls {
		t.Fatalf("frames (%d) < syscalls (%d): impossible", frames, syscalls)
	}
	if reg.Histogram("transport.tcp.frames_per_syscall").Count() == 0 {
		t.Fatal("frames_per_syscall histogram empty")
	}

	st := p.a.Stats()
	if st.Peers != 1 || st.PerPeer["b"].Conns < 1 || st.PerPeer["b"].Conns > 2 {
		t.Fatalf("stats = %+v", st)
	}
	if got := st.PeerList(); len(got) != 1 || got[0] != "b" {
		t.Fatalf("peer list = %v", got)
	}
	if reg.Gauge("transport.tcp.conns").Value() < 1 {
		t.Fatal("conns gauge not tracking live connections")
	}
}

// TestTCPNoCoalesceRoundTrip pins the comparison baseline: with the writer
// disabled, traffic still flows and every frame costs its own pair of
// syscalls (length header, then body — the pre-§17 framing).
func TestTCPNoCoalesceRoundTrip(t *testing.T) {
	reg := metrics.NewRegistry()
	p := startTCPPairOpts(t, nil, TCPOptions{NoCoalesce: true, Metrics: reg})

	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			want := "a:" + strconv.Itoa(i)
			resp, err := p.a.Send(context.Background(), "b", []byte(strconv.Itoa(i)))
			if err != nil || string(resp) != want {
				t.Errorf("send %d: %q, %v", i, resp, err)
			}
		}(i)
	}
	wg.Wait()

	frames := reg.Counter("transport.tcp.flush.frames").Value()
	syscalls := reg.Counter("transport.tcp.flush.syscalls").Value()
	if syscalls != 2*frames {
		t.Fatalf("no-coalesce: frames=%d syscalls=%d, want 2 syscalls per frame", frames, syscalls)
	}
	if frames < 64 { // 32 requests on a + 32 responses on b, shared registry
		t.Fatalf("frames = %d, want ≥ 64", frames)
	}
}

// TestTCPFlushDelayCoalesces forces a flush window and checks that a burst
// enqueued inside it lands in fewer syscalls than frames.
func TestTCPFlushDelayCoalesces(t *testing.T) {
	reg := metrics.NewRegistry()
	p := startTCPPairOpts(t, nil, TCPOptions{Conns: 1, FlushDelay: 3 * time.Millisecond, Metrics: reg})

	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := p.a.Send(context.Background(), "b", []byte(strconv.Itoa(i)))
			if err != nil {
				t.Errorf("send %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()

	frames := reg.Counter("transport.tcp.flush.frames").Value()
	syscalls := reg.Counter("transport.tcp.flush.syscalls").Value()
	if syscalls == 0 {
		t.Fatal("no flushes recorded")
	}
	if frames*1000/syscalls < 1500 { // > 1.5 frames/syscall on a 64-deep burst
		t.Fatalf("flush window did not coalesce: frames=%d syscalls=%d", frames, syscalls)
	}
}
