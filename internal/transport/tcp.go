package transport

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/movesys/move/internal/codec"
	"github.com/movesys/move/internal/metrics"
	"github.com/movesys/move/internal/resilience"
	"github.com/movesys/move/internal/ring"
)

// maxFrame bounds a single message; documents are at most a few hundred KB
// of terms, so 64 MiB leaves ample slack while stopping a corrupt length
// prefix from allocating unbounded memory.
const maxFrame = 64 << 20

// maxRetainedReadBuf bounds the per-connection / pooled read buffers that
// survive across frames; a rare giant frame is served from a one-shot
// allocation instead of pinning its array forever.
const maxRetainedReadBuf = 1 << 20

func errFrameTooLarge(n int) error {
	return fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
}

// Resolver maps a node ID to its listen address ("host:port").
type Resolver func(ring.NodeID) (string, error)

// ParsePeers parses a "id=host:port,id=host:port" cluster map — the flag
// format shared by cmd/moved and cmd/movectl.
func ParsePeers(s string) (map[ring.NodeID]string, error) {
	out := make(map[ring.NodeID]string)
	if strings.TrimSpace(s) == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 || kv[0] == "" || kv[1] == "" {
			return nil, fmt.Errorf("transport: bad peer entry %q (want id=host:port)", part)
		}
		id := ring.NodeID(kv[0])
		if _, dup := out[id]; dup {
			return nil, fmt.Errorf("transport: duplicate peer id %q", kv[0])
		}
		out[id] = kv[1]
	}
	return out, nil
}

// StaticResolver builds a Resolver from a fixed address table.
func StaticResolver(addrs map[ring.NodeID]string) Resolver {
	table := make(map[ring.NodeID]string, len(addrs))
	for id, a := range addrs {
		table[id] = a
	}
	return func(id ring.NodeID) (string, error) {
		a, ok := table[id]
		if !ok {
			return "", fmt.Errorf("no address for %s: %w", id, ErrNodeDown)
		}
		return a, nil
	}
}

// TCPOptions tunes the wire fast path (DESIGN.md §17). The zero value asks
// for defaults everywhere: a GOMAXPROCS-derived stripe count, the
// coalescing writer enabled with natural coalescing only (no added delay),
// and dial backoff on.
type TCPOptions struct {
	// Conns is the number of striped connections kept per peer. Concurrent
	// Sends round-robin across stripes so high in-flight counts stop
	// serializing on one connection's send queue. 0 derives from
	// GOMAXPROCS, clamped to [2, 8].
	Conns int

	// NoCoalesce disables the per-connection writer goroutine and reverts
	// to one synchronous write per frame (two syscalls: header + body) —
	// the pre-§17 behavior, kept as the honest comparison baseline for
	// `movebench -fig wire`.
	NoCoalesce bool

	// FlushDelay is how long the writer lingers after waking before
	// draining, letting concurrent senders pile onto the same syscall.
	// 0 (the default) relies on natural coalescing: frames enqueued while
	// the previous Write is on the wire share the next one.
	FlushDelay time.Duration

	// CoalesceBytes is the flush-round size bound: a queue at or past it
	// drains immediately instead of waiting out FlushDelay. 0 → 64 KiB.
	CoalesceBytes int

	// QueueBytes bounds the per-connection send queue; enqueues past it
	// block until the writer drains (backpressure, not buffering). 0 → 4 MiB.
	QueueBytes int

	// WriteTimeout bounds each flush syscall. 0 → 10s; negative disables.
	WriteTimeout time.Duration

	// DialBackoff is the cooldown after a failed dial during which further
	// dial attempts to that peer fail fast with ErrNodeDown instead of
	// redialing (per-peer breaker, threshold 1). 0 → 250ms; negative
	// disables backoff.
	DialBackoff time.Duration

	// Metrics receives the transport.tcp.* counters, gauges, and
	// histograms. nil uses a private registry (metrics still collected,
	// just not exported anywhere).
	Metrics *metrics.Registry
}

func (o TCPOptions) withDefaults() TCPOptions {
	if o.Conns <= 0 {
		o.Conns = runtime.GOMAXPROCS(0) / 2
		if o.Conns < 2 {
			o.Conns = 2
		}
		if o.Conns > 8 {
			o.Conns = 8
		}
	}
	if o.CoalesceBytes <= 0 {
		o.CoalesceBytes = 64 << 10
	}
	if o.QueueBytes <= 0 {
		o.QueueBytes = 4 << 20
	}
	if o.WriteTimeout == 0 {
		o.WriteTimeout = 10 * time.Second
	} else if o.WriteTimeout < 0 {
		o.WriteTimeout = 0
	}
	if o.DialBackoff == 0 {
		o.DialBackoff = 250 * time.Millisecond
	} else if o.DialBackoff < 0 {
		o.DialBackoff = 0
	}
	return o
}

// TCPNode is a Transport over real TCP sockets: a listening server for
// inbound requests plus a striped per-peer connection pool for outbound
// ones. Frames are length-prefixed; responses are matched to requests by ID
// so connections are pipelined, and both directions go through a
// frame-coalescing writer (one deadline-bounded syscall per flush round).
type TCPNode struct {
	id       ring.NodeID
	handler  Handler
	resolver Resolver
	listener net.Listener
	opts     TCPOptions
	met      *wireMetrics

	mu       sync.Mutex
	pools    map[ring.NodeID]*peerPool
	accepted map[net.Conn]*connWriter
	closed   bool
	wg       sync.WaitGroup
}

var _ Transport = (*TCPNode)(nil)

// NewTCP starts a node endpoint listening on listenAddr with default
// options. Pass ":0" to pick an ephemeral port (see Addr).
func NewTCP(id ring.NodeID, listenAddr string, h Handler, r Resolver) (*TCPNode, error) {
	return NewTCPOpts(id, listenAddr, h, r, TCPOptions{})
}

// NewTCPOpts is NewTCP with explicit wire-path tuning.
func NewTCPOpts(id ring.NodeID, listenAddr string, h Handler, r Resolver, opts TCPOptions) (*TCPNode, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", listenAddr, err)
	}
	n := &TCPNode{
		id:       id,
		handler:  h,
		resolver: r,
		listener: ln,
		opts:     opts.withDefaults(),
		met:      newWireMetrics(opts.Metrics),
		pools:    make(map[ring.NodeID]*peerPool),
		accepted: make(map[net.Conn]*connWriter),
	}
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Addr returns the actual listen address.
func (n *TCPNode) Addr() string { return n.listener.Addr().String() }

// Self returns the node ID.
func (n *TCPNode) Self() ring.NodeID { return n.id }

// Close shuts the listener and all pooled connections down and waits for
// the serving, reading, and writing goroutines to exit.
func (n *TCPNode) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	var conns []*tcpConn
	for _, p := range n.pools {
		conns = append(conns, p.drain()...)
	}
	n.pools = make(map[ring.NodeID]*peerPool)
	inbound := make([]*connWriter, 0, len(n.accepted))
	for _, w := range n.accepted {
		inbound = append(inbound, w)
	}
	n.mu.Unlock()

	err := n.listener.Close()
	for _, c := range conns {
		c.close(ErrClosed)
	}
	// Accepted connections must be torn down too, or serveConn goroutines
	// block in readFrame and wg.Wait never returns. Stopping the writer
	// closes the raw conn either way.
	for _, w := range inbound {
		w.closeWith(ErrClosed)
	}
	n.wg.Wait()
	return err
}

// TCPPeerStats is one peer's slice of Stats.
type TCPPeerStats struct {
	Conns       int `json:"conns"`
	QueuedBytes int `json:"queued_bytes"`
}

// TCPStats is a point-in-time view of the wire state for /healthz.
type TCPStats struct {
	Peers       int                     `json:"peers"`
	Conns       int                     `json:"conns"`
	Inbound     int                     `json:"inbound"`
	QueuedBytes int                     `json:"queued_bytes"`
	PerPeer     map[string]TCPPeerStats `json:"per_peer,omitempty"`
}

// Stats reports live connection counts and send-queue depth per peer.
func (n *TCPNode) Stats() TCPStats {
	n.mu.Lock()
	pools := make(map[ring.NodeID]*peerPool, len(n.pools))
	for id, p := range n.pools {
		pools[id] = p
	}
	inbound := make([]*connWriter, 0, len(n.accepted))
	for _, w := range n.accepted {
		inbound = append(inbound, w)
	}
	n.mu.Unlock()

	st := TCPStats{PerPeer: make(map[string]TCPPeerStats, len(pools)), Inbound: len(inbound)}
	for id, p := range pools {
		var ps TCPPeerStats
		for _, c := range p.snapshot() {
			ps.Conns++
			ps.QueuedBytes += c.wr.queuedBytes()
		}
		if ps.Conns == 0 {
			continue
		}
		st.Peers++
		st.Conns += ps.Conns
		st.QueuedBytes += ps.QueuedBytes
		st.PerPeer[string(id)] = ps
	}
	for _, w := range inbound {
		st.QueuedBytes += w.queuedBytes()
	}
	st.Conns += st.Inbound
	return st
}

// PeerList returns the peers with at least one live outbound connection,
// sorted — a stable, compact form for health endpoints.
func (s TCPStats) PeerList() []string {
	out := make([]string, 0, len(s.PerPeer))
	for id := range s.PerPeer {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

func (n *TCPNode) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.listener.Accept()
		if err != nil {
			return // listener closed
		}
		wr := newConnWriter(conn, n.opts, n.met)
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			_ = conn.Close()
			return
		}
		n.accepted[conn] = wr
		n.wg.Add(1)
		if wr.coalesce {
			n.wg.Add(1)
			go func() {
				defer n.wg.Done()
				wr.run()
			}()
		}
		n.mu.Unlock()
		n.met.conns.Add(1)
		go n.serveConn(conn, wr)
	}
}

// reqBufPool recycles inbound request-frame buffers across serveConn
// goroutines. A buffer is returned only after handleFrame finishes: the
// handler contract (§11) says the payload is transport-owned and must not
// be retained, and the response has been copied into the send queue by
// then, so no live reference can alias the recycled array.
var reqBufPool = sync.Pool{New: func() any { return new([]byte) }}

// serveConn reads request frames from one inbound connection and dispatches
// them to the handler, one goroutine per request so a slow match does not
// head-of-line-block the connection. Responses funnel through the shared
// coalescing writer.
func (n *TCPNode) serveConn(conn net.Conn, wr *connWriter) {
	defer n.wg.Done()
	defer func() {
		wr.closeWith(ErrClosed)
		n.met.conns.Add(-1)
		n.mu.Lock()
		delete(n.accepted, conn)
		n.mu.Unlock()
	}()
	br := bufio.NewReaderSize(conn, readBufSize)
	var reqWG sync.WaitGroup
	defer reqWG.Wait()
	for {
		bp := reqBufPool.Get().(*[]byte)
		frame, err := readFrameBuf(br, bp)
		if err != nil {
			reqBufPool.Put(bp)
			return
		}
		reqWG.Add(1)
		go func(bp *[]byte, frame []byte) {
			defer reqWG.Done()
			n.handleFrame(wr, frame)
			if cap(*bp) <= maxRetainedReadBuf {
				reqBufPool.Put(bp)
			}
		}(bp, frame)
	}
}

func (n *TCPNode) handleFrame(wr *connWriter, frame []byte) {
	r := codec.NewReader(frame)
	reqID, err := r.Uvarint()
	if err != nil {
		return
	}
	from, err := r.String()
	if err != nil {
		return
	}
	body, err := r.Bytes0()
	if err != nil {
		return
	}
	resp, herr := n.handler(context.Background(), ring.NodeID(from), body)

	// The response framing buffer is pooled: enqueue copies its bytes into
	// the connection's send queue before returning, so the writer may be
	// recycled immediately. (resp itself is handler-owned and merely copied
	// through.)
	w := codec.GetWriter()
	w.Uvarint(reqID)
	if herr != nil {
		w.Uint8(1)
		w.String(herr.Error())
	} else {
		w.Uint8(0)
		w.Bytes0(resp)
	}
	_ = wr.enqueue(w.Bytes())
	codec.PutWriter(w)
}

// Send implements Transport.
func (n *TCPNode) Send(ctx context.Context, to ring.NodeID, payload []byte) ([]byte, error) {
	c, err := n.conn(to)
	if err != nil {
		return nil, err
	}
	resp, err := c.roundTrip(ctx, n.id, payload)
	if err != nil {
		// A broken connection is evicted (only its stripe) so a later Send
		// redials it; the peer's other stripes keep serving.
		if !errors.Is(err, ErrRemote) && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			n.evict(to, c)
		}
		return nil, err
	}
	return resp, nil
}

// conn picks a striped connection to the peer, dialing its slot lazily.
func (n *TCPNode) conn(to ring.NodeID) (*tcpConn, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, ErrClosed
	}
	p, ok := n.pools[to]
	if !ok {
		p = newPeerPool(n, to)
		n.pools[to] = p
	}
	n.mu.Unlock()
	return p.get()
}

func (n *TCPNode) evict(to ring.NodeID, c *tcpConn) {
	n.mu.Lock()
	p := n.pools[to]
	n.mu.Unlock()
	if p != nil {
		p.evict(c)
	}
	c.close(ErrNodeDown)
}

// peerPool holds the striped outbound connections to one peer. Slots dial
// lazily under a single-flight mutex; a per-peer breaker (threshold 1)
// turns a dead peer into fast ErrNodeDown failures for DialBackoff instead
// of a redial storm from every concurrent Send.
type peerPool struct {
	n      *TCPNode
	to     ring.NodeID
	rr     atomic.Uint32
	redial *resilience.Breaker

	dialMu sync.Mutex // single-flight: one dial to this peer at a time

	mu    sync.Mutex
	conns []*tcpConn // len == stripe count; nil slots not yet dialed
}

func newPeerPool(n *TCPNode, to ring.NodeID) *peerPool {
	p := &peerPool{n: n, to: to, conns: make([]*tcpConn, n.opts.Conns)}
	if n.opts.DialBackoff > 0 {
		p.redial = resilience.NewBreaker(resilience.BreakerConfig{
			Threshold:      1,
			Cooldown:       n.opts.DialBackoff,
			HalfOpenProbes: 1,
		})
	}
	return p
}

func (p *peerPool) get() (*tcpConn, error) {
	slot := int(p.rr.Add(1)) % len(p.conns)
	p.mu.Lock()
	c := p.conns[slot]
	p.mu.Unlock()
	if c != nil {
		return c, nil
	}
	return p.dial(slot)
}

func (p *peerPool) dial(slot int) (*tcpConn, error) {
	p.dialMu.Lock()
	defer p.dialMu.Unlock()
	p.mu.Lock()
	if c := p.conns[slot]; c != nil {
		p.mu.Unlock()
		return c, nil
	}
	p.mu.Unlock()

	if p.redial != nil && !p.redial.Allow() {
		p.n.met.redialSuppressed.Inc()
		return nil, fmt.Errorf("dial %s suppressed by backoff: %w", p.to, ErrNodeDown)
	}
	addr, err := p.n.resolver(p.to)
	if err != nil {
		if p.redial != nil {
			p.redial.RecordFailure()
		}
		return nil, err
	}
	p.n.met.dials.Inc()
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		p.n.met.dialFailures.Inc()
		if p.redial != nil {
			p.redial.RecordFailure()
		}
		return nil, fmt.Errorf("dial %s (%s): %w", p.to, addr, ErrNodeDown)
	}
	if p.redial != nil {
		p.redial.RecordSuccess()
	}
	c := newTCPConn(raw, p.n.opts, p.n.met)

	n := p.n
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		c.close(ErrClosed)
		return nil, ErrClosed
	}
	p.mu.Lock()
	p.conns[slot] = c
	p.mu.Unlock()
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		c.readLoop()
	}()
	if c.wr.coalesce {
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			c.wr.run()
		}()
	}
	n.mu.Unlock()
	n.met.conns.Add(1)
	return c, nil
}

// evict clears the broken connection's stripe only.
func (p *peerPool) evict(c *tcpConn) {
	p.mu.Lock()
	for i, cc := range p.conns {
		if cc == c {
			p.conns[i] = nil
		}
	}
	p.mu.Unlock()
}

// drain empties every stripe and returns the live connections.
func (p *peerPool) drain() []*tcpConn {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []*tcpConn
	for i, c := range p.conns {
		if c != nil {
			out = append(out, c)
			p.conns[i] = nil
		}
	}
	return out
}

// snapshot returns the live connections without clearing them.
func (p *peerPool) snapshot() []*tcpConn {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []*tcpConn
	for _, c := range p.conns {
		if c != nil {
			out = append(out, c)
		}
	}
	return out
}

// tcpConn is one striped outbound connection with pipelined round trips.
type tcpConn struct {
	raw net.Conn
	wr  *connWriter
	met *wireMetrics

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan result
	err     error

	closeOnce sync.Once
}

type result struct {
	body []byte
	err  error
}

func newTCPConn(raw net.Conn, opts TCPOptions, met *wireMetrics) *tcpConn {
	return &tcpConn{
		raw:     raw,
		wr:      newConnWriter(raw, opts, met),
		met:     met,
		pending: make(map[uint64]chan result),
	}
}

func (c *tcpConn) roundTrip(ctx context.Context, from ring.NodeID, payload []byte) ([]byte, error) {
	ch := make(chan result, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	c.nextID++
	id := c.nextID
	c.pending[id] = ch
	c.mu.Unlock()

	// Pooled request framing buffer: enqueue copies the frame into the send
	// queue, so both the pooled writer and the caller's payload are free to
	// be recycled as soon as Send returns.
	w := codec.GetWriter()
	w.Uvarint(id)
	w.String(string(from))
	w.Bytes0(payload)
	err := c.wr.enqueue(w.Bytes())
	codec.PutWriter(w)
	if err != nil {
		c.abandon(id)
		return nil, fmt.Errorf("write to peer: %w", ErrNodeDown)
	}

	select {
	case res := <-ch:
		return res.body, res.err
	case <-ctx.Done():
		c.abandon(id)
		return nil, ctx.Err()
	}
}

func (c *tcpConn) abandon(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

// readLoop demultiplexes response frames to their waiting callers. The
// frame buffer is reused across responses (single reader goroutine); the
// body is copied to an exact-size slice only once a waiter is confirmed, so
// the §11 ownership contract — response bytes transfer to the caller and
// never alias transport buffers — still holds.
func (c *tcpConn) readLoop() {
	br := bufio.NewReaderSize(c.raw, readBufSize)
	var buf []byte
	bp := &buf
	for {
		frame, err := readFrameBuf(br, bp)
		if err != nil {
			c.close(fmt.Errorf("connection lost: %w", ErrNodeDown))
			return
		}
		r := codec.NewReader(frame)
		id, err := r.Uvarint()
		if err != nil {
			continue
		}
		status, err := r.Uint8()
		if err != nil {
			continue
		}
		var body []byte
		var remoteErr error
		if status == 0 {
			body, err = r.Bytes0()
			if err != nil {
				continue
			}
		} else {
			msg, err := r.String()
			if err != nil {
				continue
			}
			remoteErr = fmt.Errorf("%w: %s", ErrRemote, msg)
		}
		c.mu.Lock()
		ch, ok := c.pending[id]
		delete(c.pending, id)
		c.mu.Unlock()
		if !ok {
			continue // abandoned (context cancel); nothing to copy
		}
		var res result
		res.err = remoteErr
		if remoteErr == nil && body != nil {
			res.body = append([]byte(nil), body...)
		}
		ch <- res
		if cap(*bp) > maxRetainedReadBuf {
			*bp = nil
		}
	}
}

// close fails all pending calls with err and tears the connection down.
func (c *tcpConn) close(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	pending := c.pending
	c.pending = make(map[uint64]chan result)
	c.mu.Unlock()
	for _, ch := range pending {
		ch <- result{err: err}
	}
	c.wr.closeWith(err)
	c.closeOnce.Do(func() { c.met.conns.Add(-1) })
}

// writeFrame writes a length-prefixed frame in two writes — the
// non-coalescing path and the historical baseline the wire bench compares
// against.
func writeFrame(w io.Writer, frame []byte) error {
	if len(frame) > maxFrame {
		return errFrameTooLarge(len(frame))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(frame)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(frame)
	return err
}

// readBufSize sizes the per-connection bufio reader so one read syscall
// can drain an entire coalesced flush round from the socket.
const readBufSize = 64 << 10

// readFrame reads one length-prefixed frame into a fresh buffer.
func readFrame(r io.Reader) ([]byte, error) {
	var buf []byte
	frame, err := readFrameBuf(r, &buf)
	if err != nil {
		return nil, err
	}
	return frame, nil
}

// readFrameBuf reads one length-prefixed frame into *bp, growing it as
// needed. The returned slice aliases *bp and is valid until the next call
// with the same buffer.
func readFrameBuf(r io.Reader, bp *[]byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	size := int(binary.BigEndian.Uint32(hdr[:]))
	if size > maxFrame {
		return nil, errFrameTooLarge(size)
	}
	if cap(*bp) < size {
		*bp = make([]byte, size)
	}
	frame := (*bp)[:size]
	if _, err := io.ReadFull(r, frame); err != nil {
		return nil, err
	}
	return frame, nil
}
