package transport

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"

	"github.com/movesys/move/internal/codec"
	"github.com/movesys/move/internal/ring"
)

// maxFrame bounds a single message; documents are at most a few hundred KB
// of terms, so 64 MiB leaves ample slack while stopping a corrupt length
// prefix from allocating unbounded memory.
const maxFrame = 64 << 20

// Resolver maps a node ID to its listen address ("host:port").
type Resolver func(ring.NodeID) (string, error)

// ParsePeers parses a "id=host:port,id=host:port" cluster map — the flag
// format shared by cmd/moved and cmd/movectl.
func ParsePeers(s string) (map[ring.NodeID]string, error) {
	out := make(map[ring.NodeID]string)
	if strings.TrimSpace(s) == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 || kv[0] == "" || kv[1] == "" {
			return nil, fmt.Errorf("transport: bad peer entry %q (want id=host:port)", part)
		}
		id := ring.NodeID(kv[0])
		if _, dup := out[id]; dup {
			return nil, fmt.Errorf("transport: duplicate peer id %q", kv[0])
		}
		out[id] = kv[1]
	}
	return out, nil
}

// StaticResolver builds a Resolver from a fixed address table.
func StaticResolver(addrs map[ring.NodeID]string) Resolver {
	table := make(map[ring.NodeID]string, len(addrs))
	for id, a := range addrs {
		table[id] = a
	}
	return func(id ring.NodeID) (string, error) {
		a, ok := table[id]
		if !ok {
			return "", fmt.Errorf("no address for %s: %w", id, ErrNodeDown)
		}
		return a, nil
	}
}

// TCPNode is a Transport over real TCP sockets: a listening server for
// inbound requests plus a connection pool for outbound ones. Frames are
// length-prefixed; responses are matched to requests by ID so connections
// are pipelined.
type TCPNode struct {
	id       ring.NodeID
	handler  Handler
	resolver Resolver
	listener net.Listener

	mu       sync.Mutex
	conns    map[ring.NodeID]*tcpConn
	accepted map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

var _ Transport = (*TCPNode)(nil)

// NewTCP starts a node endpoint listening on listenAddr. Pass ":0" to pick
// an ephemeral port (see Addr).
func NewTCP(id ring.NodeID, listenAddr string, h Handler, r Resolver) (*TCPNode, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", listenAddr, err)
	}
	n := &TCPNode{
		id:       id,
		handler:  h,
		resolver: r,
		listener: ln,
		conns:    make(map[ring.NodeID]*tcpConn),
		accepted: make(map[net.Conn]struct{}),
	}
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Addr returns the actual listen address.
func (n *TCPNode) Addr() string { return n.listener.Addr().String() }

// Self returns the node ID.
func (n *TCPNode) Self() ring.NodeID { return n.id }

// Close shuts the listener and all pooled connections down and waits for
// the serving goroutines to exit.
func (n *TCPNode) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	conns := make([]*tcpConn, 0, len(n.conns))
	for _, c := range n.conns {
		conns = append(conns, c)
	}
	n.conns = make(map[ring.NodeID]*tcpConn)
	inbound := make([]net.Conn, 0, len(n.accepted))
	for c := range n.accepted {
		inbound = append(inbound, c)
	}
	n.mu.Unlock()

	err := n.listener.Close()
	for _, c := range conns {
		c.close(ErrClosed)
	}
	// Accepted connections must be torn down too, or serveConn goroutines
	// block in readFrame and wg.Wait never returns.
	for _, c := range inbound {
		_ = c.Close()
	}
	n.wg.Wait()
	return err
}

func (n *TCPNode) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.listener.Accept()
		if err != nil {
			return // listener closed
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			_ = conn.Close()
			return
		}
		n.accepted[conn] = struct{}{}
		n.mu.Unlock()
		n.wg.Add(1)
		go n.serveConn(conn)
	}
}

// serveConn reads request frames from one inbound connection and dispatches
// them to the handler, one goroutine per request so a slow match does not
// head-of-line-block the connection.
func (n *TCPNode) serveConn(conn net.Conn) {
	defer n.wg.Done()
	defer func() {
		_ = conn.Close()
		n.mu.Lock()
		delete(n.accepted, conn)
		n.mu.Unlock()
	}()
	var writeMu sync.Mutex
	br := bufio.NewReader(conn)
	var reqWG sync.WaitGroup
	defer reqWG.Wait()
	for {
		frame, err := readFrame(br)
		if err != nil {
			return
		}
		reqWG.Add(1)
		go func(frame []byte) {
			defer reqWG.Done()
			n.handleFrame(conn, &writeMu, frame)
		}(frame)
	}
}

func (n *TCPNode) handleFrame(conn net.Conn, writeMu *sync.Mutex, frame []byte) {
	r := codec.NewReader(frame)
	reqID, err := r.Uvarint()
	if err != nil {
		return
	}
	from, err := r.String()
	if err != nil {
		return
	}
	body, err := r.Bytes0()
	if err != nil {
		return
	}
	resp, herr := n.handler(context.Background(), ring.NodeID(from), body)

	// The response framing buffer is pooled: its bytes are fully flushed to
	// the socket under writeMu before the writer is recycled. (resp itself
	// is handler-owned and merely copied through.)
	w := codec.GetWriter()
	w.Uvarint(reqID)
	if herr != nil {
		w.Uint8(1)
		w.String(herr.Error())
	} else {
		w.Uint8(0)
		w.Bytes0(resp)
	}
	writeMu.Lock()
	_ = writeFrame(conn, w.Bytes())
	writeMu.Unlock()
	codec.PutWriter(w)
}

// Send implements Transport.
func (n *TCPNode) Send(ctx context.Context, to ring.NodeID, payload []byte) ([]byte, error) {
	c, err := n.conn(to)
	if err != nil {
		return nil, err
	}
	resp, err := c.roundTrip(ctx, n.id, payload)
	if err != nil {
		// A broken connection is evicted so the next Send redials.
		if !errors.Is(err, ErrRemote) && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			n.evict(to, c)
		}
		return nil, err
	}
	return resp, nil
}

func (n *TCPNode) conn(to ring.NodeID) (*tcpConn, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, ErrClosed
	}
	if c, ok := n.conns[to]; ok {
		n.mu.Unlock()
		return c, nil
	}
	n.mu.Unlock()

	addr, err := n.resolver(to)
	if err != nil {
		return nil, err
	}
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dial %s (%s): %w", to, addr, ErrNodeDown)
	}
	c := newTCPConn(raw)

	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		c.close(ErrClosed)
		return nil, ErrClosed
	}
	if existing, ok := n.conns[to]; ok {
		// Lost the dial race; use the winner.
		c.close(ErrClosed)
		return existing, nil
	}
	n.conns[to] = c
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		c.readLoop()
	}()
	return c, nil
}

func (n *TCPNode) evict(to ring.NodeID, c *tcpConn) {
	n.mu.Lock()
	if n.conns[to] == c {
		delete(n.conns, to)
	}
	n.mu.Unlock()
	c.close(ErrNodeDown)
}

// tcpConn is one pooled outbound connection with pipelined round trips.
type tcpConn struct {
	raw net.Conn

	writeMu sync.Mutex

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan result
	err     error
}

type result struct {
	body []byte
	err  error
}

func newTCPConn(raw net.Conn) *tcpConn {
	return &tcpConn{raw: raw, pending: make(map[uint64]chan result)}
}

func (c *tcpConn) roundTrip(ctx context.Context, from ring.NodeID, payload []byte) ([]byte, error) {
	ch := make(chan result, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	c.nextID++
	id := c.nextID
	c.pending[id] = ch
	c.mu.Unlock()

	// Pooled request framing buffer, recycled once the frame has been
	// written to the socket; the caller's payload is copied into it, so the
	// caller may recycle payload as soon as Send returns.
	w := codec.GetWriter()
	w.Uvarint(id)
	w.String(string(from))
	w.Bytes0(payload)

	c.writeMu.Lock()
	err := writeFrame(c.raw, w.Bytes())
	c.writeMu.Unlock()
	codec.PutWriter(w)
	if err != nil {
		c.abandon(id)
		return nil, fmt.Errorf("write to peer: %w", ErrNodeDown)
	}

	select {
	case res := <-ch:
		return res.body, res.err
	case <-ctx.Done():
		c.abandon(id)
		return nil, ctx.Err()
	}
}

func (c *tcpConn) abandon(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

// readLoop demultiplexes response frames to their waiting callers.
func (c *tcpConn) readLoop() {
	br := bufio.NewReader(c.raw)
	for {
		frame, err := readFrame(br)
		if err != nil {
			c.close(fmt.Errorf("connection lost: %w", ErrNodeDown))
			return
		}
		r := codec.NewReader(frame)
		id, err := r.Uvarint()
		if err != nil {
			continue
		}
		status, err := r.Uint8()
		if err != nil {
			continue
		}
		var res result
		if status == 0 {
			body, err := r.Bytes0()
			if err != nil {
				continue
			}
			// readFrame allocates a fresh buffer per frame, so the body
			// may alias it without a defensive copy; ownership passes to
			// the waiting caller.
			res.body = body
		} else {
			msg, err := r.String()
			if err != nil {
				continue
			}
			res.err = fmt.Errorf("%w: %s", ErrRemote, msg)
		}
		c.mu.Lock()
		ch, ok := c.pending[id]
		delete(c.pending, id)
		c.mu.Unlock()
		if ok {
			ch <- res
		}
	}
}

// close fails all pending calls with err and closes the socket.
func (c *tcpConn) close(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	pending := c.pending
	c.pending = make(map[uint64]chan result)
	c.mu.Unlock()
	for _, ch := range pending {
		ch <- result{err: err}
	}
	_ = c.raw.Close()
}

// writeFrame writes a length-prefixed frame.
func writeFrame(w io.Writer, frame []byte) error {
	if len(frame) > maxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit", len(frame))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(frame)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(frame)
	return err
}

// readFrame reads one length-prefixed frame.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	size := binary.BigEndian.Uint32(hdr[:])
	if size > maxFrame {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", size)
	}
	frame := make([]byte, size)
	if _, err := io.ReadFull(r, frame); err != nil {
		return nil, err
	}
	return frame, nil
}
