package transport

import (
	"context"
	"testing"

	"github.com/movesys/move/internal/ring"
	"github.com/movesys/move/internal/testutil"
)

// TestMemnetSendZeroAllocs pins the zero-copy contract of the in-memory
// fabric: with no injected latency, a Send is a synchronous handler call
// with no per-message heap traffic beyond what the handler itself does.
func TestMemnetSendZeroAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are not stable under the race detector")
	}
	net := NewNetwork(NetworkConfig{})
	resp := []byte("pong")
	net.Join("b", func(ctx context.Context, from ring.NodeID, payload []byte) ([]byte, error) {
		return resp, nil
	})
	a := net.Join("a", nil)

	ctx := context.Background()
	payload := []byte("ping")
	allocs := testing.AllocsPerRun(500, func() {
		got, err := a.Send(ctx, "b", payload)
		if err != nil || len(got) != len(resp) {
			t.Fatalf("got=%q err=%v", got, err)
		}
	})
	if allocs != 0 {
		t.Fatalf("memnet Send: %.1f allocs/op, want 0", allocs)
	}
}
