package transport

import (
	"bytes"
	"context"
	"errors"
	"strconv"
	"sync"
	"testing"
	"time"

	"github.com/movesys/move/internal/ring"
)

// startTCPPair boots two TCP nodes that can reach each other.
func startTCPPair(t *testing.T, hb Handler) (*TCPNode, *TCPNode) {
	t.Helper()
	addrs := make(map[ring.NodeID]string)
	var mu sync.Mutex
	resolver := func(id ring.NodeID) (string, error) {
		mu.Lock()
		defer mu.Unlock()
		a, ok := addrs[id]
		if !ok {
			return "", ErrNodeDown
		}
		return a, nil
	}
	a, err := NewTCP("a", "127.0.0.1:0", echoHandler(""), resolver)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = a.Close() })
	if hb == nil {
		hb = echoHandler("")
	}
	b, err := NewTCP("b", "127.0.0.1:0", hb, resolver)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = b.Close() })
	mu.Lock()
	addrs["a"] = a.Addr()
	addrs["b"] = b.Addr()
	mu.Unlock()
	return a, b
}

func TestTCPRoundTrip(t *testing.T) {
	a, b := startTCPPair(t, nil)
	resp, err := a.Send(context.Background(), "b", []byte("ping"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "a:ping" {
		t.Fatalf("resp = %q", resp)
	}
	resp, err = b.Send(context.Background(), "a", []byte("pong"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "b:pong" {
		t.Fatalf("resp = %q", resp)
	}
}

func TestTCPConcurrentPipelined(t *testing.T) {
	a, _ := startTCPPair(t, nil)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			want := "a:" + strconv.Itoa(i)
			resp, err := a.Send(context.Background(), "b", []byte(strconv.Itoa(i)))
			if err != nil {
				errs <- err
				return
			}
			if string(resp) != want {
				errs <- errors.New("mismatched response " + string(resp) + " want " + want)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestTCPRemoteError(t *testing.T) {
	a, _ := startTCPPair(t, func(context.Context, ring.NodeID, []byte) ([]byte, error) {
		return nil, errors.New("match failed")
	})
	_, err := a.Send(context.Background(), "b", []byte("x"))
	if !errors.Is(err, ErrRemote) {
		t.Fatalf("err = %v, want ErrRemote", err)
	}
}

func TestTCPUnknownPeer(t *testing.T) {
	a, _ := startTCPPair(t, nil)
	if _, err := a.Send(context.Background(), "ghost", nil); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("err = %v, want ErrNodeDown", err)
	}
}

func TestTCPPeerShutdown(t *testing.T) {
	a, b := startTCPPair(t, nil)
	if _, err := a.Send(context.Background(), "b", []byte("warm")); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	// The pooled connection is now dead; Send must fail (and evict).
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := a.Send(ctx, "b", []byte("again")); err == nil {
		t.Fatal("expected error sending to closed peer")
	}
}

func TestTCPSendAfterClose(t *testing.T) {
	a, _ := startTCPPair(t, nil)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Send(context.Background(), "b", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	// Double close is fine.
	if err := a.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func TestTCPLargePayload(t *testing.T) {
	a, _ := startTCPPair(t, nil)
	payload := bytes.Repeat([]byte("term "), 200000) // ~1MB
	resp, err := a.Send(context.Background(), "b", payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp) != len(payload)+2 {
		t.Fatalf("resp len = %d, want %d", len(resp), len(payload)+2)
	}
}

func TestTCPContextCancelDuringSlowHandler(t *testing.T) {
	release := make(chan struct{})
	a, _ := startTCPPair(t, func(context.Context, ring.NodeID, []byte) ([]byte, error) {
		<-release
		return []byte("late"), nil
	})
	defer close(release)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := a.Send(ctx, "b", []byte("x"))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("Send blocked past context deadline")
	}
}

func TestStaticResolver(t *testing.T) {
	r := StaticResolver(map[ring.NodeID]string{"n1": "127.0.0.1:9999"})
	addr, err := r("n1")
	if err != nil || addr != "127.0.0.1:9999" {
		t.Fatalf("resolve n1 = %q, %v", addr, err)
	}
	if _, err := r("n2"); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("resolve n2: %v, want ErrNodeDown", err)
	}
}

func TestFrameSizeLimit(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, make([]byte, maxFrame+1)); err == nil {
		t.Fatal("writeFrame accepted oversized frame")
	}
	// A hostile header claiming a huge frame must be rejected on read.
	hostile := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := readFrame(bytes.NewReader(hostile)); err == nil {
		t.Fatal("readFrame accepted oversized header")
	}
}

func TestParsePeers(t *testing.T) {
	peers, err := ParsePeers("n0=127.0.0.1:7000, n1=127.0.0.1:7001")
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 2 || peers["n0"] != "127.0.0.1:7000" || peers["n1"] != "127.0.0.1:7001" {
		t.Fatalf("peers = %v", peers)
	}
	empty, err := ParsePeers("  ")
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty = %v, %v", empty, err)
	}
	for _, bad := range []string{"n0", "n0=", "=addr", "n0=a,n0=b"} {
		if _, err := ParsePeers(bad); err == nil {
			t.Errorf("ParsePeers(%q) accepted", bad)
		}
	}
}
