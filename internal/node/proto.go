// Package node implements a MOVE server node: the RPC protocol, the §V
// internals (filter store, local inverted list, meta-data store, forwarding
// engine), and the three dissemination code paths compared in the paper —
// MOVE (allocation grids), IL (plain distributed inverted list), and RS
// (rendezvous flooding with SIFT matching).
package node

import (
	"fmt"

	"github.com/movesys/move/internal/alloc"
	"github.com/movesys/move/internal/codec"
	"github.com/movesys/move/internal/model"
	"github.com/movesys/move/internal/trace"
)

// Message types (first payload byte).
const (
	msgRegister     = 1  // register a filter with posting terms
	msgPublish      = 2  // match a document on a home node (term-routed)
	msgPublishLocal = 3  // match on an allocation-grid node (no re-forward)
	msgPublishSIFT  = 4  // full SIFT match (RS baseline)
	msgMigrate      = 5  // install allocated filters (batch)
	msgStatsPull    = 6  // coordinator statistics pull
	msgInstallGrid  = 7  // install the node's allocation grid
	msgInstallBloom = 8  // install the global filter-term Bloom filter
	msgGossip       = 9  // membership digest
	msgDropGrid     = 10 // clear the allocation grid
	msgUnregister   = 11 // remove a filter definition
	msgAllocate     = 12 // run an allocation round: migrate filters, install grid
	msgAllocateTerm = 13 // per-term allocation round (ablation of §V's per-node grids)
	// Batched publish framing: many (document, term) pairs bound for the
	// same home node (or the same grid column) in one frame, answered by a
	// batch of MatchResps in the same order.
	msgPublishBatch      = 14 // batched home-node publish (entry → home)
	msgPublishLocalBatch = 15 // batched grid-column match (home → grid row)
	// Multi-term publish framing: the document encoded once plus the full
	// term list bound for one destination, replacing N per-term frames that
	// each re-shipped the document (§V works per home node, not per term).
	msgPublishMulti           = 16 // multi-term home publish (entry → home)
	msgPublishLocalMulti      = 17 // multi-term grid-node match (home → grid row)
	msgPublishMultiBatch      = 18 // batch of multi-term home publishes
	msgPublishLocalMultiBatch = 19 // batch of multi-term grid-node matches
	// 20 and 21 are msgDeliver / msgFetch (mailbox.go).
	// Two-phase reallocation framing (§13): the coordinator prepares a
	// pending grid on a home node (which migrates its filters and starts
	// dual-reading), then broadcasts a commit barrier or an abort.
	msgPrepareAlloc    = 22 // prepare: migrate filters + install pending grid
	msgCommitGrid      = 23 // commit barrier: promote the pending grid
	msgAbortGrid       = 24 // abort: drop pending grid, unwind journaled migrations
	msgUnregisterBatch = 25 // batched filter removal (old-placement GC)
	// 26 is msgDeliverBatch (deliver.go): routed delivery batch to the
	// session owner of each matched subscriber (§14).
)

// EncodeAllocateTerm serializes a per-term allocation command.
func EncodeAllocateTerm(epoch uint64, term string, g *alloc.Grid) []byte {
	gridBytes := g.Encode()
	w := codec.NewWriter(24 + len(term) + len(gridBytes))
	w.Uint8(msgAllocateTerm)
	w.Uvarint(epoch)
	w.String(term)
	w.Bytes0(gridBytes)
	return w.Bytes()
}

// EncodeAllocate serializes an allocation command for a home node.
func EncodeAllocate(epoch uint64, g *alloc.Grid) []byte {
	gridBytes := g.Encode()
	w := codec.NewWriter(16 + len(gridBytes))
	w.Uint8(msgAllocate)
	w.Uvarint(epoch)
	w.Bytes0(gridBytes)
	return w.Bytes()
}

// EncodePrepareAlloc serializes a prepare-phase reallocation command for a
// home node: migrate owned filters to their new placements and install the
// grid as pending (dual-read until commit or abort).
func EncodePrepareAlloc(epoch uint64, g *alloc.Grid) []byte {
	gridBytes := g.Encode()
	w := codec.NewWriter(16 + len(gridBytes))
	w.Uint8(msgPrepareAlloc)
	w.Uvarint(epoch)
	w.Bytes0(gridBytes)
	return w.Bytes()
}

// EncodeCommitGrid serializes the cutover barrier promoting epoch's
// pending grid; a no-op on nodes with no matching pending grid.
func EncodeCommitGrid(epoch uint64) []byte {
	w := codec.NewWriter(12)
	w.Uint8(msgCommitGrid)
	w.Uvarint(epoch)
	return w.Bytes()
}

// EncodeAbortGrid serializes an abort of epoch's prepare: the pending grid
// is dropped and every filter copy the epoch's migrations created is
// unregistered, restoring the pre-prepare state.
func EncodeAbortGrid(epoch uint64) []byte {
	w := codec.NewWriter(12)
	w.Uint8(msgAbortGrid)
	w.Uvarint(epoch)
	return w.Bytes()
}

// EncodeUnregisterBatch serializes a batched filter removal — the
// coordinator's old-placement GC drops all of a node's stale copies in one
// frame.
func EncodeUnregisterBatch(ids []model.FilterID) []byte {
	w := codec.NewWriter(8 + 8*len(ids))
	w.Uint8(msgUnregisterBatch)
	w.Uvarint(uint64(len(ids)))
	for _, id := range ids {
		w.Uvarint(uint64(id))
	}
	return w.Bytes()
}

func decodeUnregisterBatch(r *codec.Reader) ([]model.FilterID, error) {
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(r.Remaining()) {
		return nil, fmt.Errorf("node: unregister batch count %d overflows payload", n)
	}
	ids := make([]model.FilterID, 0, n)
	for i := uint64(0); i < n; i++ {
		v, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		ids = append(ids, model.FilterID(v))
	}
	return ids, nil
}

// Match is one (filter, subscriber) hit returned by a match RPC.
type Match struct {
	Filter     model.FilterID
	Subscriber string
}

// --- Register ---

// RegisterReq registers one filter; PostingTerms is the subset of the
// filter's terms this node must build posting lists for (§III.B: the home
// node of t builds only t's posting list).
type RegisterReq struct {
	Filter       model.Filter
	PostingTerms []string
}

// EncodeRegister serializes a RegisterReq.
func EncodeRegister(req RegisterReq) []byte {
	w := codec.NewWriter(64)
	w.Uint8(msgRegister)
	req.Filter.EncodeTo(w)
	w.StringSlice(req.PostingTerms)
	return w.Bytes()
}

func decodeRegister(r *codec.Reader) (RegisterReq, error) {
	var req RegisterReq
	f, err := model.DecodeFilter(r)
	if err != nil {
		return req, err
	}
	req.Filter = f
	if req.PostingTerms, err = r.StringSlice(); err != nil {
		return req, err
	}
	return req, nil
}

// --- Publish ---

// PublishReq routes a document to the home node of Term for matching.
type PublishReq struct {
	Doc  model.Document
	Term string
}

// AppendPublish encodes a PublishReq into w with the given message type
// (msgPublish or msgPublishLocal) — the variant the RPC send paths use
// with pooled writers.
func AppendPublish(w *codec.Writer, typ uint8, req PublishReq) {
	w.Uint8(typ)
	req.Doc.EncodeTo(w)
	w.String(req.Term)
}

// EncodePublish serializes a PublishReq with the given message type
// (msgPublish or msgPublishLocal) into a fresh buffer.
func EncodePublish(typ uint8, req PublishReq) []byte {
	w := codec.NewWriter(32 + 12*len(req.Doc.Terms))
	AppendPublish(w, typ, req)
	return w.Bytes()
}

func decodePublish(r *codec.Reader) (PublishReq, error) {
	var req PublishReq
	d, err := model.DecodeDocument(r)
	if err != nil {
		return req, err
	}
	req.Doc = d
	// Prime the memoized term-set view while the document is still owned
	// by this goroutine: every downstream match against copies of the
	// struct shares it (prime-before-share, model.Document.View).
	req.Doc.View()
	if req.Term, err = r.String(); err != nil {
		return req, err
	}
	return req, nil
}

// EncodePublishHome serializes a home-node-routed publish (the client entry
// path used by movectl).
func EncodePublishHome(req PublishReq) []byte {
	return EncodePublish(msgPublish, req)
}

// PublishMultiReq routes a document plus every term the destination is
// responsible for, in one frame — the coalesced counterpart of PublishReq.
// The destination is a home node (msgPublishMulti: Terms are the document
// terms whose home it is) or a grid node (msgPublishLocalMulti: Terms are
// the terms whose grids route this document through it).
type PublishMultiReq struct {
	Doc   model.Document
	Terms []string
}

// AppendPublishMulti encodes a PublishMultiReq into w with the given
// message type (msgPublishMulti or msgPublishLocalMulti) — the variant the
// RPC send paths use with pooled writers.
func AppendPublishMulti(w *codec.Writer, typ uint8, req PublishMultiReq) {
	w.Uint8(typ)
	req.Doc.EncodeTo(w)
	w.StringSlice(req.Terms)
}

// EncodePublishMulti serializes a PublishMultiReq with the given message
// type into a fresh buffer.
func EncodePublishMulti(typ uint8, req PublishMultiReq) []byte {
	w := codec.NewWriter(32 + 12*(len(req.Doc.Terms)+len(req.Terms)))
	AppendPublishMulti(w, typ, req)
	return w.Bytes()
}

// EncodePublishMultiHome serializes a home-routed multi-term publish (the
// client entry path used by movectl: one frame per distinct home node).
func EncodePublishMultiHome(req PublishMultiReq) []byte {
	return EncodePublishMulti(msgPublishMulti, req)
}

func decodePublishMulti(r *codec.Reader) (PublishMultiReq, error) {
	var req PublishMultiReq
	d, err := model.DecodeDocument(r)
	if err != nil {
		return req, err
	}
	req.Doc = d
	// Prime the memoized term-set view while the document is still owned by
	// this goroutine (prime-before-share, model.Document.View): the one view
	// serves every term's match evaluation of this frame.
	req.Doc.View()
	if req.Terms, err = r.StringSlice(); err != nil {
		return req, err
	}
	return req, nil
}

// AppendPublishMultiBatch frames a batch of multi-term publishes with the
// given message type (msgPublishMultiBatch or msgPublishLocalMultiBatch).
// The framing reuses AppendPublishBatch's unique-document table: each
// document is encoded once in first-appearance order and every item
// references its document by table index, carrying only its term list.
// Items sharing a Doc.ID must carry the same document.
func AppendPublishMultiBatch(w *codec.Writer, typ uint8, reqs []PublishMultiReq) {
	w.Uint8(typ)
	table := make(map[uint64]uint64, len(reqs))
	unique := make([]int, 0, len(reqs))
	for i := range reqs {
		if _, ok := table[reqs[i].Doc.ID]; !ok {
			table[reqs[i].Doc.ID] = uint64(len(unique))
			unique = append(unique, i)
		}
	}
	w.Uvarint(uint64(len(unique)))
	for _, i := range unique {
		reqs[i].Doc.EncodeTo(w)
	}
	w.Uvarint(uint64(len(reqs)))
	for i := range reqs {
		w.Uvarint(table[reqs[i].Doc.ID])
		w.StringSlice(reqs[i].Terms)
	}
}

// EncodePublishMultiBatch is AppendPublishMultiBatch into a fresh buffer.
func EncodePublishMultiBatch(typ uint8, reqs []PublishMultiReq) []byte {
	w := codec.NewWriter(16 + 48*len(reqs))
	AppendPublishMultiBatch(w, typ, reqs)
	return w.Bytes()
}

func decodePublishMultiBatch(r *codec.Reader) ([]PublishMultiReq, error) {
	nd, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if nd > uint64(r.Remaining()) {
		return nil, fmt.Errorf("node: publish multi-batch doc count %d overflows payload", nd)
	}
	docs := make([]model.Document, 0, nd)
	for i := uint64(0); i < nd; i++ {
		d, err := model.DecodeDocument(r)
		if err != nil {
			return nil, err
		}
		docs = append(docs, d)
	}
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(r.Remaining()) {
		return nil, fmt.Errorf("node: publish multi-batch count %d overflows payload", n)
	}
	// Prime each unique document's memoized view once (prime-before-share).
	for i := range docs {
		docs[i].View()
	}
	reqs := make([]PublishMultiReq, 0, n)
	for i := uint64(0); i < n; i++ {
		di, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		if di >= uint64(len(docs)) {
			return nil, fmt.Errorf("node: publish multi-batch doc index %d out of range (%d docs)", di, len(docs))
		}
		terms, err := r.StringSlice()
		if err != nil {
			return nil, err
		}
		// Items of the same document share one decode — the Terms slice and
		// memoized view are aliased, never mutated downstream.
		reqs = append(reqs, PublishMultiReq{Doc: docs[di], Terms: terms})
	}
	return reqs, nil
}

// EncodePublishBatch frames a batch of publishes with the given message
// type (msgPublishBatch or msgPublishLocalBatch). A coalesced frame
// usually repeats a handful of documents — one item per term routed to
// this destination — so the frame carries a unique-document table
// (first-appearance order) and each (document, term) item references its
// document by table index. Items sharing a Doc.ID must carry the same
// document: IDs are publisher-assigned and unique per document.
func EncodePublishBatch(typ uint8, reqs []PublishReq) []byte {
	w := codec.NewWriter(16 + 48*len(reqs))
	AppendPublishBatch(w, typ, reqs)
	return w.Bytes()
}

// AppendPublishBatch is EncodePublishBatch writing into a caller-supplied
// (typically pooled) writer.
func AppendPublishBatch(w *codec.Writer, typ uint8, reqs []PublishReq) {
	w.Uint8(typ)
	table := make(map[uint64]uint64, len(reqs))
	unique := make([]int, 0, len(reqs))
	for i := range reqs {
		if _, ok := table[reqs[i].Doc.ID]; !ok {
			table[reqs[i].Doc.ID] = uint64(len(unique))
			unique = append(unique, i)
		}
	}
	w.Uvarint(uint64(len(unique)))
	for _, i := range unique {
		reqs[i].Doc.EncodeTo(w)
	}
	w.Uvarint(uint64(len(reqs)))
	for i := range reqs {
		w.Uvarint(table[reqs[i].Doc.ID])
		w.String(reqs[i].Term)
	}
}

func decodePublishBatch(r *codec.Reader) ([]PublishReq, error) {
	nd, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if nd > uint64(r.Remaining()) {
		return nil, fmt.Errorf("node: publish batch doc count %d overflows payload", nd)
	}
	docs := make([]model.Document, 0, nd)
	for i := uint64(0); i < nd; i++ {
		d, err := model.DecodeDocument(r)
		if err != nil {
			return nil, err
		}
		docs = append(docs, d)
	}
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(r.Remaining()) {
		return nil, fmt.Errorf("node: publish batch count %d overflows payload", n)
	}
	// Prime each unique document's memoized term-set view once, while this
	// goroutine still exclusively owns the decode: every batch item that
	// references the document shares the view through the struct copy, so a
	// frame fanning 30 terms over one document builds its term set once.
	for i := range docs {
		docs[i].View()
	}
	reqs := make([]PublishReq, 0, n)
	for i := uint64(0); i < n; i++ {
		di, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		if di >= uint64(len(docs)) {
			return nil, fmt.Errorf("node: publish batch doc index %d out of range (%d docs)", di, len(docs))
		}
		term, err := r.String()
		if err != nil {
			return nil, err
		}
		// Items of the same document share one decode — the Terms slice and
		// memoized view are aliased, never mutated downstream.
		reqs = append(reqs, PublishReq{Doc: docs[di], Term: term})
	}
	return reqs, nil
}

// EncodeMatchRespBatch serializes one MatchResp per batched publish, in
// request order. Each response is length-framed so the items stay
// independently decodable. Items are staged through one pooled scratch
// writer instead of a fresh buffer per response; the outer buffer is not
// pooled because it crosses the Handler ownership boundary (DESIGN.md §11).
func EncodeMatchRespBatch(resps []MatchResp) []byte {
	w := codec.NewWriter(16 + 64*len(resps))
	w.Uvarint(uint64(len(resps)))
	scratch := codec.GetWriter()
	for i := range resps {
		scratch.Reset()
		appendMatchResp(scratch, resps[i])
		w.Bytes0(scratch.Bytes())
	}
	codec.PutWriter(scratch)
	return w.Bytes()
}

// DecodeMatchRespBatch parses a batch of MatchResps.
func DecodeMatchRespBatch(data []byte) ([]MatchResp, error) {
	r := codec.NewReader(data)
	n, err := r.Uvarint()
	if err != nil {
		return nil, fmt.Errorf("node: match batch count: %w", err)
	}
	if n > uint64(r.Remaining()) {
		return nil, fmt.Errorf("node: match batch count %d overflows payload", n)
	}
	resps := make([]MatchResp, 0, n)
	for i := uint64(0); i < n; i++ {
		item, err := r.Bytes0()
		if err != nil {
			return nil, err
		}
		resp, err := DecodeMatchResp(item)
		if err != nil {
			return nil, fmt.Errorf("node: match batch item %d: %w", i, err)
		}
		resps = append(resps, resp)
	}
	return resps, nil
}

// EncodeSIFT serializes a full-match request (RS baseline).
func EncodeSIFT(doc *model.Document) []byte {
	w := codec.NewWriter(32 + 12*len(doc.Terms))
	w.Uint8(msgPublishSIFT)
	doc.EncodeTo(w)
	return w.Bytes()
}

// MatchResp is the result of any match RPC.
type MatchResp struct {
	Matches []Match
	// PostingsScanned is the matching cost incurred serving this request,
	// in posting entries (the y_p unit of the §IV cost model).
	PostingsScanned int
	// PostingLists is the number of posting lists retrieved.
	PostingLists int
	// Degraded is true when some grid columns had no live replica in any
	// partition row, so Matches may be missing that slice of the filter
	// set (§VI.D availability under failure).
	Degraded bool
	// ColumnsLost counts the grid columns whose filters could not be
	// matched by any row.
	ColumnsLost int
	// Hops is the publish-path trace recorded while serving this request
	// (the grid hops a home node took), carried back to the entry node so
	// the end-to-end span sees the full path even over TCP.
	Hops []trace.Hop
}

// EncodeMatchResp serializes a MatchResp.
func EncodeMatchResp(resp MatchResp) []byte {
	w := codec.NewWriter(16 + 24*len(resp.Matches))
	appendMatchResp(w, resp)
	return w.Bytes()
}

// appendMatchResp encodes a MatchResp into w.
func appendMatchResp(w *codec.Writer, resp MatchResp) {
	w.Uvarint(uint64(len(resp.Matches)))
	for _, m := range resp.Matches {
		w.Uvarint(uint64(m.Filter))
		w.String(m.Subscriber)
	}
	w.Uvarint(uint64(resp.PostingsScanned))
	w.Uvarint(uint64(resp.PostingLists))
	w.Bool(resp.Degraded)
	w.Uvarint(uint64(resp.ColumnsLost))
	encodeHops(w, resp.Hops)
}

// encodeHops appends the hop list to the wire frame.
func encodeHops(w *codec.Writer, hops []trace.Hop) {
	w.Uvarint(uint64(len(hops)))
	for _, h := range hops {
		w.String(h.Stage)
		w.String(h.From)
		w.String(h.To)
		w.String(h.Term)
		w.Uvarint(uint64(h.Row))
		w.Uvarint(uint64(h.Col))
		w.Uvarint(uint64(h.Attempt))
		w.Uvarint(uint64(h.Batch))
		w.Bool(h.Failover)
		w.Bool(h.Lost)
		w.Bool(h.Pending)
		w.String(h.Err)
		w.Uvarint(uint64(h.ElapsedNS))
	}
}

// decodeHops parses the hop list.
func decodeHops(r *codec.Reader) ([]trace.Hop, error) {
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	// Each hop takes at least 8 bytes on the wire (5 length prefixes + 3
	// varints); reject counts no valid payload could hold.
	if n > uint64(r.Remaining()) {
		return nil, fmt.Errorf("node: hop count %d overflows payload", n)
	}
	hops := make([]trace.Hop, 0, n)
	for i := uint64(0); i < n; i++ {
		var h trace.Hop
		if h.Stage, err = r.String(); err != nil {
			return nil, err
		}
		if h.From, err = r.String(); err != nil {
			return nil, err
		}
		if h.To, err = r.String(); err != nil {
			return nil, err
		}
		if h.Term, err = r.String(); err != nil {
			return nil, err
		}
		row, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		col, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		attempt, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		h.Row, h.Col, h.Attempt = int(row), int(col), int(attempt)
		batch, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		h.Batch = int(batch)
		if h.Failover, err = r.Bool(); err != nil {
			return nil, err
		}
		if h.Lost, err = r.Bool(); err != nil {
			return nil, err
		}
		if h.Pending, err = r.Bool(); err != nil {
			return nil, err
		}
		if h.Err, err = r.String(); err != nil {
			return nil, err
		}
		elapsed, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		h.ElapsedNS = int64(elapsed)
		hops = append(hops, h)
	}
	return hops, nil
}

// DecodeMatchResp parses a MatchResp.
func DecodeMatchResp(data []byte) (MatchResp, error) {
	var resp MatchResp
	r := codec.NewReader(data)
	n, err := r.Uvarint()
	if err != nil {
		return resp, fmt.Errorf("node: match count: %w", err)
	}
	if n > uint64(r.Remaining()) {
		return resp, fmt.Errorf("node: match count %d overflows payload", n)
	}
	resp.Matches = make([]Match, 0, n)
	for i := uint64(0); i < n; i++ {
		id, err := r.Uvarint()
		if err != nil {
			return resp, err
		}
		sub, err := r.String()
		if err != nil {
			return resp, err
		}
		resp.Matches = append(resp.Matches, Match{Filter: model.FilterID(id), Subscriber: sub})
	}
	scanned, err := r.Uvarint()
	if err != nil {
		return resp, err
	}
	lists, err := r.Uvarint()
	if err != nil {
		return resp, err
	}
	resp.PostingsScanned = int(scanned)
	resp.PostingLists = int(lists)
	if resp.Degraded, err = r.Bool(); err != nil {
		return resp, err
	}
	lost, err := r.Uvarint()
	if err != nil {
		return resp, err
	}
	resp.ColumnsLost = int(lost)
	if resp.Hops, err = decodeHops(r); err != nil {
		return resp, err
	}
	return resp, nil
}

// --- Migrate ---

// MigrateReq installs a batch of allocated filters on a grid node.
type MigrateReq struct {
	Entries []RegisterReq
	// Epoch tags the allocation round the batch belongs to.
	Epoch uint64
}

// EncodeMigrate serializes a MigrateReq.
func EncodeMigrate(req MigrateReq) []byte {
	w := codec.NewWriter(64 * (1 + len(req.Entries)))
	AppendMigrate(w, req)
	return w.Bytes()
}

// AppendMigrate is EncodeMigrate writing into a caller-supplied (typically
// pooled) writer.
func AppendMigrate(w *codec.Writer, req MigrateReq) {
	w.Uint8(msgMigrate)
	w.Uvarint(req.Epoch)
	w.Uvarint(uint64(len(req.Entries)))
	for _, e := range req.Entries {
		e.Filter.EncodeTo(w)
		w.StringSlice(e.PostingTerms)
	}
}

func decodeMigrate(r *codec.Reader) (MigrateReq, error) {
	var req MigrateReq
	epoch, err := r.Uvarint()
	if err != nil {
		return req, err
	}
	req.Epoch = epoch
	n, err := r.Uvarint()
	if err != nil {
		return req, err
	}
	if n > uint64(r.Remaining()) {
		return req, fmt.Errorf("node: migrate count %d overflows payload", n)
	}
	req.Entries = make([]RegisterReq, 0, n)
	for i := uint64(0); i < n; i++ {
		f, err := model.DecodeFilter(r)
		if err != nil {
			return req, err
		}
		terms, err := r.StringSlice()
		if err != nil {
			return req, err
		}
		req.Entries = append(req.Entries, RegisterReq{Filter: f, PostingTerms: terms})
	}
	return req, nil
}

// --- Stats ---

// StatsResp is the per-node statistics snapshot the coordinator aggregates
// into node popularity p'_i and node frequency q'_i (§V).
type StatsResp struct {
	// Filters is the number of filter definitions stored (incl. replicas) —
	// the storage cost of Figure 9(a).
	Filters int64
	// Postings is the number of posting entries stored.
	Postings int64
	// DocsProcessed is the number of match frames served. Coalesced publish
	// frames carry many terms in one frame, so this counts document
	// arrivals, not routed terms.
	DocsProcessed int64
	// TermsMatched is the number of term match evaluations served — the
	// matching cost basis of Figure 9(b). Unlike DocsProcessed it is
	// invariant to how terms are framed into RPCs: a k-term arrival charges
	// k whether it came as one coalesced frame or k per-term frames.
	TermsMatched int64
	// PostingsScanned is the cumulative matching work in posting entries.
	PostingsScanned int64
	// PostingLists is the cumulative number of posting-list retrievals
	// (the y_seek unit of the cost model).
	PostingLists int64
	// HomePublishes counts msgPublish arrivals (home-node document
	// arrivals), the numerator of the node frequency q'_i.
	HomePublishes int64
}

// EncodeStatsResp serializes a StatsResp.
func EncodeStatsResp(s StatsResp) []byte {
	w := codec.NewWriter(56)
	w.Uvarint(uint64(s.Filters))
	w.Uvarint(uint64(s.Postings))
	w.Uvarint(uint64(s.DocsProcessed))
	w.Uvarint(uint64(s.TermsMatched))
	w.Uvarint(uint64(s.PostingsScanned))
	w.Uvarint(uint64(s.PostingLists))
	w.Uvarint(uint64(s.HomePublishes))
	return w.Bytes()
}

// DecodeStatsResp parses a StatsResp.
func DecodeStatsResp(data []byte) (StatsResp, error) {
	r := codec.NewReader(data)
	var s StatsResp
	vals := make([]int64, 7)
	for i := range vals {
		v, err := r.Uvarint()
		if err != nil {
			return s, fmt.Errorf("node: stats field %d: %w", i, err)
		}
		vals[i] = int64(v)
	}
	s.Filters, s.Postings, s.DocsProcessed, s.TermsMatched, s.PostingsScanned, s.PostingLists, s.HomePublishes =
		vals[0], vals[1], vals[2], vals[3], vals[4], vals[5], vals[6]
	return s, nil
}

// EncodeStatsPull builds a statistics pull request.
func EncodeStatsPull() []byte { return []byte{msgStatsPull} }

// --- Grid / Bloom install ---

// EncodeInstallGrid serializes a grid installation.
func EncodeInstallGrid(epoch uint64, g *alloc.Grid) []byte {
	gridBytes := g.Encode()
	w := codec.NewWriter(16 + len(gridBytes))
	w.Uint8(msgInstallGrid)
	w.Uvarint(epoch)
	w.Bytes0(gridBytes)
	return w.Bytes()
}

// EncodeDropGrid serializes a grid removal.
func EncodeDropGrid() []byte { return []byte{msgDropGrid} }

// EncodeInstallBloom serializes a Bloom-filter installation.
func EncodeInstallBloom(bloomBytes []byte) []byte {
	w := codec.NewWriter(8 + len(bloomBytes))
	w.Uint8(msgInstallBloom)
	w.Bytes0(bloomBytes)
	return w.Bytes()
}

// EncodeGossip wraps a gossip digest.
func EncodeGossip(digest []byte) []byte {
	w := codec.NewWriter(8 + len(digest))
	w.Uint8(msgGossip)
	w.Bytes0(digest)
	return w.Bytes()
}

// EncodeUnregister serializes a filter removal.
func EncodeUnregister(id model.FilterID) []byte {
	w := codec.NewWriter(12)
	w.Uint8(msgUnregister)
	w.Uvarint(uint64(id))
	return w.Bytes()
}
