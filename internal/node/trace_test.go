package node

import (
	"context"
	"testing"

	"github.com/movesys/move/internal/model"
	"github.com/movesys/move/internal/ring"
	"github.com/movesys/move/internal/trace"
	"github.com/movesys/move/internal/transport"
)

// failoverHops filters a hop list down to the grid failovers that actually
// served a column (the ones trace.Summary and publish.failover both count).
func failoverHops(hops []trace.Hop) []trace.Hop {
	var out []trace.Hop
	for _, h := range hops {
		if h.Stage == "column" && h.Failover && h.Err == "" && !h.Lost {
			out = append(out, h)
		}
	}
	return out
}

// TestPublishTraceRecordsFailover is the observability acceptance scenario:
// with the link from the home node to the grid replica at (row 0, col 0)
// dropping every RPC, publishes that pick row 0 must fail over col 0 to the
// substitute row — and the trace carried back in MatchResp must name that
// substitute (the exact node of row 1, col 0), agree with the
// publish.failover counter, and land in the entry node's trace ring.
func TestPublishTraceRecordsFailover(t *testing.T) {
	h, reg := newResilientHarness(t, 6)
	const filters = 24
	homeNode, grid := installHotGrid(t, h, filters)

	// Kill only the home→(0,0) link; everything else stays healthy, so the
	// full match set must survive via row failover.
	dead := grid.Node(0, 0)
	ep := h.net.Join(homeNode.ID(), homeNode.Handle)
	homeNode.Attach(transport.NewFaulty(ep, transport.FaultConfig{
		Seed:  7,
		Links: map[ring.NodeID]transport.FaultProbs{dead: {Drop: 1}},
	}))

	// Publish through a non-home entry node so the hops cross the wire in
	// MatchResp (entry → home → grid), exercising the codec path.
	var entry *Node
	for _, nd := range h.nodes {
		if nd.ID() != homeNode.ID() && nd.ID() != dead {
			entry = nd
			break
		}
	}
	ctx := context.Background()

	const docs = 8
	var traceFailovers int
	sawFailover := false
	for docID := uint64(1); docID <= docs; docID++ {
		matches, resp, err := entry.PublishEntry(ctx, &model.Document{ID: docID, Terms: []string{"hot"}})
		if err != nil {
			t.Fatalf("doc %d: %v", docID, err)
		}
		if len(matches) != filters || resp.Degraded {
			t.Fatalf("doc %d: %d matches degraded=%v, want full set via failover", docID, len(matches), resp.Degraded)
		}
		for _, fh := range failoverHops(resp.Hops) {
			sawFailover = true
			traceFailovers++
			// The substitute partition row must be named exactly.
			if fh.Col != 0 {
				t.Fatalf("doc %d: failover on col %d, only (0,0)'s link is down", docID, fh.Col)
			}
			if want := grid.Node(1, 0); fh.To != string(want) || fh.Row != 1 {
				t.Fatalf("doc %d: failover served by %q row=%d, want substitute %q row=1", docID, fh.To, fh.Row, want)
			}
			if fh.Attempt == 0 {
				t.Fatalf("doc %d: failover hop with attempt 0: %+v", docID, fh)
			}
		}
		// Every failover hop must be preceded by the errored attempt on the
		// dead link that caused it.
		if len(failoverHops(resp.Hops)) > 0 {
			found := false
			for _, hop := range resp.Hops {
				if hop.Stage == "column" && hop.To == string(dead) && hop.Err != "" {
					found = true
				}
			}
			if !found {
				t.Fatalf("doc %d: failover trace missing the errored primary attempt: %+v", docID, resp.Hops)
			}
		}
	}
	if !sawFailover {
		t.Fatalf("no failover hop in %d publishes with (0,0)'s link down; row rotation should hit row 0", docs)
	}

	// The counter and the traces are two views of the same events.
	if got := reg.Counter("publish.failover").Value(); got != int64(traceFailovers) {
		t.Fatalf("publish.failover = %d but traces carry %d failover hops", got, traceFailovers)
	}

	// The spans landed in the entry node's ring, newest first, with the
	// same failover accounting and a recorded e2e stage.
	sums := entry.Traces().Last(docs)
	if len(sums) != docs {
		t.Fatalf("trace ring has %d summaries, want %d", len(sums), docs)
	}
	ringFailovers := 0
	for _, sm := range sums {
		if sm.Op != "publish" {
			t.Fatalf("ring summary op = %q", sm.Op)
		}
		if sm.StageNS["publish.e2e"] <= 0 {
			t.Fatalf("summary missing publish.e2e stage: %+v", sm)
		}
		hasHome := false
		for _, hop := range sm.Hops {
			if hop.Stage == "home" && hop.To == string(homeNode.ID()) && hop.Term == "hot" {
				hasHome = true
			}
		}
		if !hasHome {
			t.Fatalf("summary missing the home fan-out hop: %+v", sm.Hops)
		}
		ringFailovers += sm.Failovers
	}
	if sums[0].DocID != docs {
		t.Fatalf("newest ring summary is doc %d, want %d", sums[0].DocID, docs)
	}
	if ringFailovers != traceFailovers {
		t.Fatalf("ring summaries count %d failovers, MatchResp hops %d", ringFailovers, traceFailovers)
	}

	// Per-stage latency histograms observed the traffic.
	dump := reg.Dump()
	if c := dump.Histograms["publish.e2e"].Count; c != docs {
		t.Fatalf("publish.e2e count = %d, want %d", c, docs)
	}
	for _, name := range []string{"publish.fanout", "publish.column.rpc", "match.term", "index.posting.read", "index.eval"} {
		if dump.Histograms[name].Count == 0 {
			t.Fatalf("histogram %s recorded nothing", name)
		}
	}
}

// TestHopsSurviveWire round-trips a MatchResp with every Hop field set
// through the codec.
func TestHopsSurviveWire(t *testing.T) {
	in := MatchResp{
		Matches: []Match{{Filter: 1, Subscriber: "s"}},
		Hops: []trace.Hop{
			{Stage: "column", From: "n0", To: "n3", Term: "hot", Row: 1, Col: 2, Attempt: 1, Failover: true, ElapsedNS: 12345},
			{Stage: "column", From: "n0", Col: 3, Lost: true},
			{Stage: "home", From: "n5", To: "n0", Term: "hot", Err: "rpc: dropped", ElapsedNS: 99},
		},
	}
	out, err := DecodeMatchResp(EncodeMatchResp(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Hops) != len(in.Hops) {
		t.Fatalf("hops = %d, want %d", len(out.Hops), len(in.Hops))
	}
	for i := range in.Hops {
		if out.Hops[i] != in.Hops[i] {
			t.Fatalf("hop %d: got %+v want %+v", i, out.Hops[i], in.Hops[i])
		}
	}
}
