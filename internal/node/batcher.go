package node

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/movesys/move/internal/codec"
	"github.com/movesys/move/internal/metrics"
	"github.com/movesys/move/internal/model"
	"github.com/movesys/move/internal/ring"
	"github.com/movesys/move/internal/trace"
)

// ErrBatcherClosed reports a publish submitted after Close.
var ErrBatcherClosed = errors.New("node: batcher closed")

// BatcherConfig parameterizes a Batcher.
type BatcherConfig struct {
	// MaxBatch is the size cap: a bucket reaching it flushes immediately.
	// Default 32.
	MaxBatch int
	// FlushInterval bounds how long a partially filled bucket may wait
	// before it is flushed anyway. Default 2ms.
	FlushInterval time.Duration
	// Workers is the number of goroutines draining flushed batches.
	// Default 4.
	Workers int
	// QueueDepth bounds the flush queue. A full queue is the backpressure
	// signal: submitters block (and publish.batch.backpressure counts the
	// event) until a worker frees a slot. Default 64.
	QueueDepth int
}

func (c BatcherConfig) withDefaults() BatcherConfig {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = 2 * time.Millisecond
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	return c
}

// termResult carries one home group's match response back to the publish
// that enqueued it.
type termResult struct {
	resp MatchResp
	err  error
}

// batchItem is one (document, home-node term list) pair waiting in a
// bucket, plus the channel and span of the publish it belongs to. One item
// covers every term of its document that the bucket's home node owns, so
// the batch pipeline coalesces along both axes: documents per frame and
// terms per document.
type batchItem struct {
	req PublishMultiReq
	out chan<- termResult
	sp  *trace.Span
}

// bucket accumulates items bound for one home node.
type bucket struct {
	home  ring.NodeID
	items []batchItem
	since time.Time
}

// bucketPool recycles buckets (and their item arrays) across flush cycles:
// the steady state allocates no bucket per frame. flush is every bucket's
// terminal consumer, so it is the single Put site; items are cleared there
// so pooled buckets do not pin documents or result channels.
var bucketPool = sync.Pool{New: func() any { return new(bucket) }}

// flushScratch is the per-frame request slice flush stages before
// encoding, recycled the same way.
type flushScratch struct {
	reqs []PublishMultiReq
}

var flushScratchPool = sync.Pool{New: func() any { return new(flushScratch) }}

// Batcher is the coalescing publish pipeline of the entry node: documents
// fanning out to the same home node are framed together (bounded batch
// size + flush interval) and drained by a worker pool over a bounded
// queue. Publish blocks until every term's batched RPC resolves, so the
// caller sees exactly the semantics of PublishEntry — same merge, same
// dedup, same delivery hook — at a fraction of the RPC count.
type Batcher struct {
	n   *Node
	cfg BatcherConfig

	mu      sync.Mutex
	buckets map[ring.NodeID]*bucket
	closed  bool

	workCh chan *bucket
	done   chan struct{}
	workWg sync.WaitGroup
	tickWg sync.WaitGroup

	// Batch observability. The histograms record dimensionless values
	// (batch size, queue depth) through the duration-valued Histogram API:
	// one unit = one nanosecond, so quantiles read directly as counts.
	sizeH  *metrics.Histogram
	queueH *metrics.Histogram
	// Flush-reason counters: which condition closed each batch.
	flushFullC     *metrics.Counter
	flushIntervalC *metrics.Counter
	flushCloseC    *metrics.Counter
	backpressureC  *metrics.Counter
	docsC          *metrics.Counter
}

// NewBatcher builds a batcher on top of n's transport and metrics
// registry and starts its workers and flush ticker.
func NewBatcher(n *Node, cfg BatcherConfig) *Batcher {
	cfg = cfg.withDefaults()
	b := &Batcher{
		n:              n,
		cfg:            cfg,
		buckets:        make(map[ring.NodeID]*bucket),
		workCh:         make(chan *bucket, cfg.QueueDepth),
		done:           make(chan struct{}),
		sizeH:          n.reg.Histogram("publish.batch.size"),
		queueH:         n.reg.Histogram("publish.batch.queue"),
		flushFullC:     n.reg.Counter("publish.batch.flush.full"),
		flushIntervalC: n.reg.Counter("publish.batch.flush.interval"),
		flushCloseC:    n.reg.Counter("publish.batch.flush.close"),
		backpressureC:  n.reg.Counter("publish.batch.backpressure"),
		docsC:          n.reg.Counter("publish.batch.docs"),
	}
	b.workWg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go b.worker()
	}
	b.tickWg.Add(1)
	go b.tick()
	return b
}

// Publish disseminates one document through the batch pipeline and blocks
// until its matches are known. The home grouping, Bloom gate, match dedup,
// OnDeliver hook, and partial-failure aggregation mirror PublishEntry;
// only the wire framing differs.
func (b *Batcher) Publish(ctx context.Context, doc *model.Document) ([]Match, MatchResp, error) {
	if err := doc.Validate(); err != nil {
		return nil, MatchResp{}, err
	}
	n := b.n
	sp := trace.From(ctx)
	if sp == nil {
		sp = trace.New("publish.batch", doc.ID)
	}
	e2e := n.hE2E.Start()
	defer func() {
		sp.AddStage("publish.e2e", e2e.Stop())
		sp.Finish()
		n.traces.Add(sp.Summary())
	}()

	n.mu.RLock()
	bf := n.bloomF
	n.mu.RUnlock()
	terms := bloomPassTerms(bf, doc.Terms)
	if len(terms) == 0 {
		return nil, MatchResp{}, nil
	}
	// Same home grouping as PublishEntry: one item per distinct home node
	// carrying that node's whole term list, all homes resolved before
	// anything is enqueued.
	groups, err := n.groupTermsByHome(terms)
	if err != nil {
		return nil, MatchResp{}, err
	}

	// out is buffered to the full fan-out width so workers never block
	// delivering results, even if this caller has already given up.
	out := make(chan termResult, len(groups))
	enqueued := 0
	var errs []error
	for i := range groups {
		g := &groups[i]
		if n.cfg.OnTransfer != nil {
			// One transfer per home node: the document ships once per frame.
			n.cfg.OnTransfer(n.cfg.ID, g.home)
		}
		item := batchItem{req: PublishMultiReq{Doc: *doc, Terms: g.terms}, out: out, sp: sp}
		if err := b.enqueue(g.home, item); err != nil {
			errs = append(errs, err)
			continue
		}
		enqueued++
	}

	var total MatchResp
	seen := make(map[model.FilterID]struct{})
	var matches []Match
	for i := 0; i < enqueued; i++ {
		res := <-out
		if res.err != nil {
			errs = append(errs, res.err)
			continue
		}
		total.PostingsScanned += res.resp.PostingsScanned
		total.PostingLists += res.resp.PostingLists
		total.Degraded = total.Degraded || res.resp.Degraded
		total.ColumnsLost += res.resp.ColumnsLost
		total.Hops = append(total.Hops, res.resp.Hops...)
		for _, m := range res.resp.Matches {
			if _, dup := seen[m.Filter]; dup {
				continue
			}
			seen[m.Filter] = struct{}{}
			matches = append(matches, m)
		}
	}
	if n.cfg.OnDeliver != nil && len(matches) > 0 {
		n.cfg.OnDeliver(doc, matches)
	}
	return matches, total, errors.Join(errs...)
}

// enqueue adds one item to its home node's bucket, flushing the bucket
// when it reaches the size cap.
func (b *Batcher) enqueue(home ring.NodeID, it batchItem) error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return ErrBatcherClosed
	}
	bk := b.buckets[home]
	if bk == nil {
		bk = bucketPool.Get().(*bucket)
		bk.home, bk.since = home, time.Now()
		b.buckets[home] = bk
	}
	bk.items = append(bk.items, it)
	var full *bucket
	if len(bk.items) >= b.cfg.MaxBatch {
		delete(b.buckets, home)
		full = bk
	}
	b.mu.Unlock()
	if full != nil {
		b.flushFullC.Inc()
		b.submit(full)
	}
	return nil
}

// submit hands a closed bucket to the worker pool. A full queue blocks
// the submitter — that is the backpressure contract: entry publishes slow
// to the drain rate instead of queueing unboundedly — except during
// shutdown, when the bucket is flushed inline to avoid losing items.
func (b *Batcher) submit(bk *bucket) {
	b.queueH.Observe(time.Duration(len(b.workCh)))
	select {
	case b.workCh <- bk:
		return
	default:
	}
	b.backpressureC.Inc()
	select {
	case b.workCh <- bk:
	case <-b.done:
		b.flush(bk)
	}
}

// worker drains flushed buckets until the queue closes.
func (b *Batcher) worker() {
	defer b.workWg.Done()
	for bk := range b.workCh {
		b.flush(bk)
	}
}

// tick flushes buckets whose oldest item has waited a full interval.
func (b *Batcher) tick() {
	defer b.tickWg.Done()
	tk := time.NewTicker(b.cfg.FlushInterval)
	defer tk.Stop()
	for {
		select {
		case <-b.done:
			return
		case now := <-tk.C:
			var stale []*bucket
			b.mu.Lock()
			for home, bk := range b.buckets {
				if now.Sub(bk.since) >= b.cfg.FlushInterval {
					delete(b.buckets, home)
					stale = append(stale, bk)
				}
			}
			b.mu.Unlock()
			for _, bk := range stale {
				b.flushIntervalC.Inc()
				b.submit(bk)
			}
		}
	}
}

// flush sends one coalesced frame to its home node and routes each item's
// response (or the shared error) back to its publish. The RPC runs under
// context.Background(): a batch belongs to many publishers, so no single
// caller's deadline governs it — per-attempt deadlines come from the
// transport's resilience policy.
func (b *Batcher) flush(bk *bucket) {
	sc := flushScratchPool.Get().(*flushScratch)
	reqs := sc.reqs[:0]
	for i := range bk.items {
		reqs = append(reqs, bk.items[i].req)
	}
	b.sizeH.Observe(time.Duration(len(reqs)))
	b.docsC.Add(int64(len(reqs)))
	// Pooled frame buffer: send does not retain the payload, so the writer
	// is recycled as soon as the RPC returns (DESIGN.md §11).
	pw := codec.GetWriter()
	AppendPublishMultiBatch(pw, msgPublishMultiBatch, reqs)
	b.n.homeRPCs.Inc()
	b.n.homeBytes.Add(int64(len(pw.Bytes())))
	rpcStart := time.Now()
	raw, err := b.n.send(context.Background(), bk.home, pw.Bytes())
	codec.PutWriter(pw)
	elapsed := time.Since(rpcStart)
	b.n.hFanout.Observe(elapsed)
	var resps []MatchResp
	if err == nil {
		resps, err = DecodeMatchRespBatch(raw)
		if err == nil && len(resps) != len(reqs) {
			err = fmt.Errorf("node %s: batch response count %d != request count %d", b.n.cfg.ID, len(resps), len(reqs))
		}
	}
	for i := range bk.items {
		it := bk.items[i]
		// One "home" hop per term the item carried, sharing the frame's RPC
		// elapsed time — the same per-term trace the unbatched path records.
		for _, t := range it.req.Terms {
			hop := trace.Hop{
				Stage: "home", From: string(b.n.cfg.ID), To: string(bk.home),
				Term: t, Batch: len(reqs), ElapsedNS: elapsed.Nanoseconds(),
			}
			if err != nil {
				hop.Err = err.Error()
			}
			it.sp.AddHop(hop)
		}
		if err != nil {
			it.out <- termResult{err: err}
			continue
		}
		it.sp.AddHops(resps[i].Hops)
		it.out <- termResult{resp: resps[i]}
	}
	// Recycle the frame scratch and the bucket itself. Clearing drops the
	// document/channel references so the pools hold capacity, not data.
	clear(reqs)
	sc.reqs = reqs[:0]
	flushScratchPool.Put(sc)
	clear(bk.items)
	bk.items = bk.items[:0]
	bucketPool.Put(bk)
}

// Close flushes every pending bucket, drains the workers, and rejects
// further publishes. Safe to call more than once.
func (b *Batcher) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	var rest []*bucket
	for home, bk := range b.buckets {
		delete(b.buckets, home)
		rest = append(rest, bk)
	}
	b.mu.Unlock()
	close(b.done)
	b.tickWg.Wait()
	for _, bk := range rest {
		b.flushCloseC.Inc()
		b.submit(bk)
	}
	close(b.workCh)
	b.workWg.Wait()
}
