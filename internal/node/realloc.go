package node

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/movesys/move/internal/alloc"
	"github.com/movesys/move/internal/model"
)

// This file is the node side of the two-phase reallocation protocol (§13):
//
//	prepare  — PrepareAllocation: install the new grid as *pending* (the
//	           dual-read window opens), then migrate every home-owned
//	           filter to its new placements. Migrations are journaled per
//	           epoch so they can be unwound.
//	commit   — CommitGrid: promote pending to committed atomically; the
//	           dual-read window closes and the epoch's journal is retired
//	           (the copies are now the authoritative placements).
//	abort    — AbortGrid: drop the pending grid and unregister exactly the
//	           filter copies this epoch's migrations created, restoring the
//	           pre-prepare state bit for bit.
//
// Ordering matters in prepare: the pending grid is installed *before* the
// filter scan. A registration racing the prepare either lands in the store
// before the scan reads it (the scan migrates it) or observes the pending
// grid after the scan's write-lock barrier (handleRegister forwards it to
// the pending placements itself) — both sides of the race deliver the
// filter, and idempotent replay makes delivering it twice harmless.

// PrepareGrid installs g as the pending grid for epoch, opening the
// dual-read window. Re-preparing the same epoch is idempotent (a retried
// prepare RPC must not fail); an epoch at or below the committed one is
// rejected as stale.
func (n *Node) PrepareGrid(epoch uint64, g *alloc.Grid) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if epoch <= n.gridEpoch {
		return false
	}
	if n.pending == nil || n.pendingEpoch != epoch {
		n.dualSince = time.Now()
	}
	n.pending = g
	n.pendingEpoch = epoch
	return true
}

// PrepareAllocation executes the prepare phase on this home node: pending
// grid first (see the ordering note above), then the filter migrations.
// Any migration failure propagates so the coordinator aborts the round.
func (n *Node) PrepareAllocation(ctx context.Context, epoch uint64, g *alloc.Grid) error {
	if !n.PrepareGrid(epoch, g) {
		return fmt.Errorf("node %s: prepare epoch %d is not newer than committed epoch", n.cfg.ID, epoch)
	}
	batches, err := n.homeOwnedBatches(g)
	if err != nil {
		return err
	}
	return n.sendMigrations(ctx, epoch, batches)
}

// CommitGrid is the cutover barrier: it atomically promotes epoch's
// pending grid to committed and retires the epoch's migration journal.
// Broadcast to every node, it is a benign no-op on nodes without a
// matching pending grid (non-participants, already-committed retries).
// Reports whether this call performed the promotion.
func (n *Node) CommitGrid(epoch uint64) bool {
	n.mu.Lock()
	committed := false
	if n.pending != nil && n.pendingEpoch == epoch && epoch > n.gridEpoch {
		n.grid = n.pending
		n.gridEpoch = epoch
		n.pending = nil
		n.pendingEpoch = 0
		n.hDualRead.Observe(time.Since(n.dualSince))
		committed = true
	}
	n.mu.Unlock()
	if committed {
		n.commitsC.Inc()
		n.epochG.Set(int64(epoch))
	}
	// Journals at or below the committed epoch are dead either way: their
	// copies are now authoritative (committed) or belong to rounds the
	// coordinator already resolved.
	n.clearJournalThrough(epoch)
	return committed
}

// AbortGrid unwinds epoch's prepare: the pending grid is dropped and every
// filter copy the epoch's migrations created is unregistered. Copies that
// existed before the prepare were never journaled and are untouched.
// Broadcast to every node; a no-op where the epoch left no state.
func (n *Node) AbortGrid(epoch uint64) error {
	n.mu.Lock()
	hadPending := n.pending != nil && n.pendingEpoch == epoch
	if hadPending {
		n.pending = nil
		n.pendingEpoch = 0
	}
	n.mu.Unlock()

	n.journalMu.Lock()
	ids := n.journal[epoch]
	delete(n.journal, epoch)
	n.journalMu.Unlock()

	if hadPending || len(ids) > 0 {
		n.abortsC.Inc()
	}
	var errs []error
	for id := range ids {
		if err := n.ix.Unregister(id); err != nil {
			errs = append(errs, fmt.Errorf("node %s: abort epoch %d unregister %d: %w", n.cfg.ID, epoch, id, err))
		}
	}
	if len(ids) > 0 {
		n.updateCoverGauges()
	}
	return errors.Join(errs...)
}

// EpochInfo snapshots the node's reallocation state: the committed epoch,
// the pending epoch (zero when none), and whether a dual-read window is
// open. Surfaced on /healthz.
func (n *Node) EpochInfo() (committed, pending uint64, dualReading bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.gridEpoch, n.pendingEpoch, n.pending != nil
}

// handleMigrate installs a batch of allocated filters. Replay-safe: a
// retried or duplicated batch re-runs EnsureRegistered, which reports
// created=false for copies already present, so counters stay exact and the
// journal records each copy once. Entries created under a non-zero epoch
// are journaled for that epoch's potential abort.
func (n *Node) handleMigrate(req MigrateReq) error {
	created := 0
	for _, e := range req.Entries {
		ok, err := n.ix.EnsureRegistered(e.Filter, e.PostingTerms)
		if err != nil {
			return err
		}
		if ok {
			created++
			if req.Epoch > 0 {
				n.journalFilter(req.Epoch, e.Filter.ID)
			}
		}
	}
	if created > 0 {
		n.migratedC.Add(int64(created))
		n.updateCoverGauges()
	}
	return nil
}

// journalFilter records that epoch's migrations created id's local copy.
func (n *Node) journalFilter(epoch uint64, id model.FilterID) {
	n.journalMu.Lock()
	m := n.journal[epoch]
	if m == nil {
		m = make(map[model.FilterID]struct{})
		n.journal[epoch] = m
	}
	m[id] = struct{}{}
	n.journalMu.Unlock()
}

// clearJournalThrough retires every journal at or below epoch.
func (n *Node) clearJournalThrough(epoch uint64) {
	n.journalMu.Lock()
	for e := range n.journal {
		if e <= epoch {
			delete(n.journal, e)
		}
	}
	n.journalMu.Unlock()
}

// handleUnregisterBatch removes a batch of filter definitions — the
// coordinator's old-placement GC after a committed cutover. Unregister is
// a no-op for absent IDs, so replays and overlapping batches are safe.
func (n *Node) handleUnregisterBatch(ids []model.FilterID) error {
	var errs []error
	for _, id := range ids {
		if err := n.ix.Unregister(id); err != nil {
			errs = append(errs, err)
		}
	}
	if len(ids) > 0 {
		n.updateCoverGauges()
	}
	return errors.Join(errs...)
}
