package node

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"github.com/movesys/move/internal/codec"
	"github.com/movesys/move/internal/model"
	"github.com/movesys/move/internal/transport"
)

func TestPublishMultiWireRoundTrip(t *testing.T) {
	req := PublishMultiReq{
		Doc:   model.Document{ID: 42, Terms: []string{"go", "cluster", "systems"}},
		Terms: []string{"go", "systems"},
	}
	data := EncodePublishMulti(msgPublishLocalMulti, req)
	r := codec.NewReader(data)
	typ, err := r.Uint8()
	if err != nil || typ != msgPublishLocalMulti {
		t.Fatalf("type byte = %d, %v", typ, err)
	}
	got, err := decodePublishMulti(r)
	if err != nil {
		t.Fatal(err)
	}
	if got.Doc.ID != req.Doc.ID || !equalStrings(got.Doc.Terms, req.Doc.Terms) || !equalStrings(got.Terms, req.Terms) {
		t.Fatalf("round trip = %+v, want %+v", got, req)
	}
}

func TestPublishMultiBatchWireRoundTrip(t *testing.T) {
	docA := model.Document{ID: 1, Terms: []string{"alpha", "beta"}}
	docB := model.Document{ID: 2, Terms: []string{"gamma"}}
	// Two items share docA: the frame must carry it once and both decoded
	// items must still see it.
	reqs := []PublishMultiReq{
		{Doc: docA, Terms: []string{"alpha"}},
		{Doc: docB, Terms: []string{"gamma"}},
		{Doc: docA, Terms: []string{"beta"}},
	}
	data := EncodePublishMultiBatch(msgPublishLocalMultiBatch, reqs)
	// The shared document is encoded once: a batch with three distinct
	// documents of the same shape must be strictly larger.
	distinct := []PublishMultiReq{
		{Doc: docA, Terms: []string{"alpha"}},
		{Doc: docB, Terms: []string{"gamma"}},
		{Doc: model.Document{ID: 3, Terms: docA.Terms}, Terms: []string{"beta"}},
	}
	if bloat := EncodePublishMultiBatch(msgPublishLocalMultiBatch, distinct); len(data) >= len(bloat) {
		t.Fatalf("shared-doc frame %dB >= distinct-doc frame %dB, unique-document table not applied", len(data), len(bloat))
	}
	r := codec.NewReader(data)
	if typ, err := r.Uint8(); err != nil || typ != msgPublishLocalMultiBatch {
		t.Fatalf("type byte = %d, %v", typ, err)
	}
	got, err := decodePublishMultiBatch(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(reqs) {
		t.Fatalf("decoded %d items, want %d", len(got), len(reqs))
	}
	for i := range reqs {
		if got[i].Doc.ID != reqs[i].Doc.ID || !equalStrings(got[i].Doc.Terms, reqs[i].Doc.Terms) || !equalStrings(got[i].Terms, reqs[i].Terms) {
			t.Fatalf("item %d = %+v, want %+v", i, got[i], reqs[i])
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// assertPublishEquivalent asserts the coalesced publish observably equals
// the per-term oracle: identical deduplicated match set and identical
// wire-visible accounting (PostingsScanned, PostingLists, Degraded,
// ColumnsLost). Hop counts and failover paths may differ — those describe
// the framing, not the answer.
func assertPublishEquivalent(t *testing.T, label string, gotM, wantM []Match, got, want MatchResp) {
	t.Helper()
	if !equalMatchSets(gotM, wantM) {
		t.Fatalf("%s: coalesced matches %v != per-term matches %v", label, gotM, wantM)
	}
	if got.PostingsScanned != want.PostingsScanned {
		t.Fatalf("%s: PostingsScanned %d != per-term %d", label, got.PostingsScanned, want.PostingsScanned)
	}
	if got.PostingLists != want.PostingLists {
		t.Fatalf("%s: PostingLists %d != per-term %d", label, got.PostingLists, want.PostingLists)
	}
	if got.Degraded != want.Degraded || got.ColumnsLost != want.ColumnsLost {
		t.Fatalf("%s: degraded=%v lost=%d != per-term degraded=%v lost=%d",
			label, got.Degraded, got.ColumnsLost, want.Degraded, want.ColumnsLost)
	}
}

func equalMatchSets(a, b []Match) bool {
	if len(a) != len(b) {
		return false
	}
	as, bs := append([]Match(nil), a...), append([]Match(nil), b...)
	sort.Slice(as, func(i, j int) bool { return as[i].Filter < as[j].Filter })
	sort.Slice(bs, func(i, j int) bool { return bs[i].Filter < bs[j].Filter })
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// TestPublishEntryCoalescedMatchesPerTermOracle drives randomized filter
// sets and documents through the coalesced entry path and the per-term
// oracle on a healthy cluster (no grids) and requires exact observable
// equality. Threshold filters are excluded: the two framings legitimately
// observe the corpus a different number of times, and corpus-dependent
// scoring is covered at the index layer instead.
func TestPublishEntryCoalescedMatchesPerTermOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := newHarness(t, 6)
	vocab := make([]string, 12)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("t%d", i)
	}
	for i := 1; i <= 30; i++ {
		n := 1 + rng.Intn(3)
		perm := rng.Perm(len(vocab))
		terms := make([]string, 0, n)
		for _, p := range perm[:n] {
			terms = append(terms, vocab[p])
		}
		mode := model.MatchAny
		if rng.Intn(2) == 0 {
			mode = model.MatchAll
		}
		h.registerEverywhere(t, model.Filter{ID: model.FilterID(i), Subscriber: "s", Terms: terms, Mode: mode})
	}
	ctx := context.Background()
	for docID := uint64(1); docID <= 25; docID++ {
		n := 1 + rng.Intn(5)
		perm := rng.Perm(len(vocab))
		terms := make([]string, 0, n)
		for _, p := range perm[:n] {
			terms = append(terms, vocab[p])
		}
		entry := h.nodes[rng.Intn(len(h.nodes))]
		wantM, want, err := entry.PublishEntryPerTerm(ctx, &model.Document{ID: docID, Terms: terms})
		if err != nil {
			t.Fatalf("doc %d per-term: %v", docID, err)
		}
		gotM, got, err := entry.PublishEntry(ctx, &model.Document{ID: docID, Terms: terms})
		if err != nil {
			t.Fatalf("doc %d coalesced: %v", docID, err)
		}
		assertPublishEquivalent(t, fmt.Sprintf("doc %d %v", docID, terms), gotM, wantM, got, want)
	}
}

// TestPublishEntryCoalescedEquivalenceAcrossGrids repeats the oracle check
// when one home fans out across a partition grid, under three regimes:
// healthy, one replica down per row (failover keeps full coverage), and a
// fully dead column (both paths must degrade identically).
func TestPublishEntryCoalescedEquivalenceAcrossGrids(t *testing.T) {
	h := newHarness(t, 7)
	const filters = 24
	homeNode, grid := installHotGrid(t, h, filters)
	// Extra non-grid filters so the publish spans several home nodes.
	h.registerEverywhere(t, model.Filter{ID: 100, Subscriber: "a", Terms: []string{"alpha"}, Mode: model.MatchAny})
	h.registerEverywhere(t, model.Filter{ID: 101, Subscriber: "b", Terms: []string{"beta", "hot"}, Mode: model.MatchAll})
	var entry *Node
	for _, nd := range h.nodes {
		if nd.ID() != homeNode.ID() {
			entry = nd
			break
		}
	}
	ctx := context.Background()

	check := func(label string, docID uint64) (MatchResp, MatchResp) {
		t.Helper()
		doc := model.Document{ID: docID, Terms: []string{"hot", "alpha", "beta"}}
		wantM, want, err := entry.PublishEntryPerTerm(ctx, &doc)
		if err != nil {
			t.Fatalf("%s per-term: %v", label, err)
		}
		gotM, got, err := entry.PublishEntry(ctx, &doc)
		if err != nil {
			t.Fatalf("%s coalesced: %v", label, err)
		}
		assertPublishEquivalent(t, label, gotM, wantM, got, want)
		return got, want
	}

	got, want := check("healthy", 1)
	if got.Degraded {
		t.Fatal("healthy publish degraded")
	}

	// One dead replica per row, distinct columns: every column keeps a live
	// row, so both paths recover the full set via failover.
	h.net.Fail(grid.Node(0, 0))
	h.net.Fail(grid.Node(1, 1))
	for docID := uint64(2); docID <= 6; docID++ {
		got, _ := check("row failover", docID)
		if got.Degraded || got.ColumnsLost != 0 {
			t.Fatalf("row failover: degraded=%v lost=%d, want full coverage", got.Degraded, got.ColumnsLost)
		}
	}

	// Column 0 fully dead: both paths must degrade to the same survivors
	// with the same lost-column accounting (assertPublishEquivalent already
	// required the counts to match; lost is per routed term, so both doc
	// terms homed at the grid's owner contribute).
	h.net.Fail(grid.Node(1, 0))
	got, want = check("dead column", 7)
	if !got.Degraded || got.ColumnsLost == 0 {
		t.Fatalf("dead column: degraded=%v lost=%d/%d, want identical degradation on both paths",
			got.Degraded, got.ColumnsLost, want.ColumnsLost)
	}
}

// TestPublishEntryCoalescedEquivalenceCircuitBroken reruns the grid
// equivalence behind resilience executors with dead replicas, so later
// publishes fail over through open circuit breakers' fast-fail path.
func TestPublishEntryCoalescedEquivalenceCircuitBroken(t *testing.T) {
	h, reg := newResilientHarness(t, 6)
	const filters = 24
	homeNode, grid := installHotGrid(t, h, filters)
	h.net.Fail(grid.Node(0, 0))
	h.net.Fail(grid.Node(1, 1))
	var entry *Node
	for _, nd := range h.nodes {
		if nd.ID() != homeNode.ID() {
			entry = nd
			break
		}
	}
	ctx := context.Background()
	for docID := uint64(1); docID <= 12; docID++ {
		doc := model.Document{ID: docID, Terms: []string{"hot"}}
		wantM, want, err := entry.PublishEntryPerTerm(ctx, &doc)
		if err != nil {
			t.Fatalf("doc %d per-term: %v", docID, err)
		}
		gotM, got, err := entry.PublishEntry(ctx, &doc)
		if err != nil {
			t.Fatalf("doc %d coalesced: %v", docID, err)
		}
		assertPublishEquivalent(t, fmt.Sprintf("doc %d", docID), gotM, wantM, got, want)
		if len(gotM) != filters || got.Degraded {
			t.Fatalf("doc %d: %d matches degraded=%v, want %d via failover", docID, len(gotM), got.Degraded, filters)
		}
	}
	if reg.Counter("breaker.open").Value() == 0 {
		t.Fatal("breaker.open = 0, dead replicas never tripped their breakers")
	}
}

// TestPublishEntryCoalescedUnderFaultyTransport drives both paths over a
// lossy transport. Individual publishes may degrade or fail, so the check
// weakens to invariants: returned matches are always a subset of the true
// match set, and any non-degraded error-free publish returns it exactly —
// on either path.
func TestPublishEntryCoalescedUnderFaultyTransport(t *testing.T) {
	h, _ := newResilientHarness(t, 6)
	const filters = 12
	homeNode, _ := installHotGrid(t, h, filters)
	// Lossy transports go in after allocation so the grid migration itself
	// is not subject to fault injection — only the publish paths are.
	for i, nd := range h.nodes {
		ep := h.net.Join(nd.ID(), nd.Handle)
		nd.Attach(transport.NewFaulty(ep, transport.FaultConfig{
			Seed:    int64(300 + i),
			Default: transport.FaultProbs{Drop: 0.3},
		}))
	}
	var entry *Node
	for _, nd := range h.nodes {
		if nd.ID() != homeNode.ID() {
			entry = nd
			break
		}
	}
	ctx := context.Background()
	complete := 0
	for docID := uint64(1); docID <= 30; docID++ {
		doc := model.Document{ID: docID, Terms: []string{"hot"}}
		for _, path := range []struct {
			name    string
			publish func(context.Context, *model.Document) ([]Match, MatchResp, error)
		}{
			{"coalesced", entry.PublishEntry},
			{"per-term", entry.PublishEntryPerTerm},
		} {
			matches, resp, err := path.publish(ctx, &doc)
			for _, m := range matches {
				if m.Filter < 1 || m.Filter > filters {
					t.Fatalf("doc %d %s: match %v outside the registered set", docID, path.name, m.Filter)
				}
			}
			if err == nil && !resp.Degraded {
				if len(matches) != filters {
					t.Fatalf("doc %d %s: complete publish returned %d matches, want %d", docID, path.name, len(matches), filters)
				}
				complete++
			}
		}
	}
	if complete == 0 {
		t.Fatal("no publish completed under 30% drop — fault injection swallowed the test")
	}
}
