package node

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/movesys/move/internal/model"
)

// registerHotFilters registers n single-term ("hot") filters directly on
// the term's home node, with no allocation grid — the home matches them
// locally.
func registerHotFilters(t *testing.T, h *harness, n int) {
	t.Helper()
	home, err := h.ring.HomeNode("hot")
	if err != nil {
		t.Fatal(err)
	}
	homeNode := h.nodeByID(home)
	for i := 1; i <= n; i++ {
		f := model.Filter{ID: model.FilterID(i), Subscriber: "s", Terms: []string{"hot"}, Mode: model.MatchAny}
		payload := EncodeRegister(RegisterReq{Filter: f, PostingTerms: []string{"hot"}})
		if _, err := homeNode.Handle(context.Background(), "test", payload); err != nil {
			t.Fatal(err)
		}
	}
}

// TestBatcherEdgeCases drives the coalescing publisher through its flush
// boundaries: a batch of one (interval-flushed singleton), a batch at
// exactly the size cap (one full-flush, deterministic frame size), and an
// interval-triggered partial batch below the cap. Every case checks the
// match set, the flush-reason counters, and the Batch size recorded on
// the home hops.
func TestBatcherEdgeCases(t *testing.T) {
	type result struct {
		matches []Match
		resp    MatchResp
		err     error
	}
	cases := []struct {
		name string
		cfg  BatcherConfig
		docs int
		// exact marks the deterministic case: every doc must ride one
		// frame of exactly `docs` items.
		exact      bool
		wantReason string // flush-reason counter that must fire
		zeroReason string // flush-reason counter that must stay zero
	}{
		{
			name:       "batch of one",
			cfg:        BatcherConfig{MaxBatch: 8, FlushInterval: 2 * time.Millisecond},
			docs:       1,
			wantReason: "publish.batch.flush.interval",
			zeroReason: "publish.batch.flush.full",
		},
		{
			name:       "batch at exact size cap",
			cfg:        BatcherConfig{MaxBatch: 4, FlushInterval: time.Minute},
			docs:       4,
			exact:      true,
			wantReason: "publish.batch.flush.full",
			zeroReason: "publish.batch.flush.interval",
		},
		{
			name:       "flush interval partial batch",
			cfg:        BatcherConfig{MaxBatch: 64, FlushInterval: 3 * time.Millisecond},
			docs:       3,
			wantReason: "publish.batch.flush.interval",
			zeroReason: "publish.batch.flush.full",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h, reg := newResilientHarness(t, 6)
			const filters = 10
			registerHotFilters(t, h, filters)
			b := NewBatcher(h.nodes[0], tc.cfg)
			defer b.Close()

			results := make([]result, tc.docs)
			var wg sync.WaitGroup
			for i := 0; i < tc.docs; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					doc := model.Document{ID: uint64(i + 1), Terms: []string{"hot"}}
					m, resp, err := b.Publish(context.Background(), &doc)
					results[i] = result{matches: m, resp: resp, err: err}
				}(i)
			}
			wg.Wait()

			for i, r := range results {
				if r.err != nil {
					t.Fatalf("doc %d: %v", i, r.err)
				}
				if len(r.matches) != filters {
					t.Fatalf("doc %d: %d matches, want %d", i, len(r.matches), filters)
				}
				// The home node stamps every match-side hop ("local" here,
				// "column" when a grid is installed) with the frame size it
				// arrived in.
				sawBatchHop := false
				for _, hop := range r.resp.Hops {
					if hop.Stage != "local" && hop.Stage != "column" {
						continue
					}
					sawBatchHop = true
					if hop.Batch < 1 || hop.Batch > tc.docs {
						t.Fatalf("doc %d: %s hop batch = %d, want 1..%d", i, hop.Stage, hop.Batch, tc.docs)
					}
					if tc.exact && hop.Batch != tc.docs {
						t.Fatalf("doc %d: %s hop batch = %d, want exactly %d", i, hop.Stage, hop.Batch, tc.docs)
					}
				}
				if !sawBatchHop {
					t.Fatalf("doc %d: no batch-stamped hop recorded: %+v", i, r.resp.Hops)
				}
			}
			if got := reg.Counter(tc.wantReason).Value(); got == 0 {
				t.Fatalf("%s = 0, want > 0", tc.wantReason)
			}
			if got := reg.Counter(tc.zeroReason).Value(); got != 0 {
				t.Fatalf("%s = %d, want 0", tc.zeroReason, got)
			}
			if got := reg.Counter("publish.batch.docs").Value(); got != int64(tc.docs) {
				t.Fatalf("publish.batch.docs = %d, want %d", got, tc.docs)
			}
			if tc.exact {
				if got := reg.Counter(tc.wantReason).Value(); got != 1 {
					t.Fatalf("%s = %d, want exactly 1 flush at the cap", tc.wantReason, got)
				}
				sh := reg.Histograms()["publish.batch.size"]
				if sh.Count != 1 || sh.MaxNS != int64(tc.docs) {
					t.Fatalf("publish.batch.size count=%d max=%d, want one observation of %d", sh.Count, sh.MaxNS, tc.docs)
				}
			}
		})
	}
}

// TestBatcherCloseFlushesPending parks publishes in a bucket that neither
// fills nor expires, then closes the batcher: the close flush must
// deliver every pending document's matches, and later publishes must be
// refused.
func TestBatcherCloseFlushesPending(t *testing.T) {
	h, reg := newResilientHarness(t, 6)
	const filters = 8
	registerHotFilters(t, h, filters)
	b := NewBatcher(h.nodes[0], BatcherConfig{MaxBatch: 64, FlushInterval: time.Minute})

	const docs = 3
	var wg sync.WaitGroup
	errs := make([]error, docs)
	counts := make([]int, docs)
	for i := 0; i < docs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			doc := model.Document{ID: uint64(i + 1), Terms: []string{"hot"}}
			m, _, err := b.Publish(context.Background(), &doc)
			errs[i], counts[i] = err, len(m)
		}(i)
	}
	// Let all three publishes enqueue into the parked bucket, then close.
	pending := func() int {
		b.mu.Lock()
		defer b.mu.Unlock()
		total := 0
		for _, bk := range b.buckets {
			total += len(bk.items)
		}
		return total
	}
	deadline := time.Now().Add(5 * time.Second)
	for pending() != docs && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := pending(); got != docs {
		t.Fatalf("pending items = %d before close, want %d", got, docs)
	}
	b.Close()
	wg.Wait()

	for i := 0; i < docs; i++ {
		if errs[i] != nil {
			t.Fatalf("doc %d: %v", i, errs[i])
		}
		if counts[i] != filters {
			t.Fatalf("doc %d: %d matches, want %d", i, counts[i], filters)
		}
	}
	if reg.Counter("publish.batch.flush.close").Value() == 0 {
		t.Fatal("publish.batch.flush.close = 0, want close-triggered flush")
	}
	if got := reg.Counter("publish.batch.flush.interval").Value(); got != 0 {
		t.Fatalf("publish.batch.flush.interval = %d, want 0", got)
	}

	doc := model.Document{ID: 99, Terms: []string{"hot"}}
	if _, _, err := b.Publish(context.Background(), &doc); !errors.Is(err, ErrBatcherClosed) {
		t.Fatalf("publish after close = %v, want ErrBatcherClosed", err)
	}
}
