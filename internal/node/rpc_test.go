package node

import (
	"context"
	"sort"
	"testing"

	"github.com/movesys/move/internal/alloc"
	"github.com/movesys/move/internal/bloom"
	"github.com/movesys/move/internal/model"
	"github.com/movesys/move/internal/ring"
)

// TestFullRPCSurface drives every message type through Handle, as a remote
// coordinator would.
func TestFullRPCSurface(t *testing.T) {
	h := newHarness(t, 6)
	ctx := context.Background()
	nd := h.nodes[0]

	// Register via RPC.
	f := model.Filter{ID: 1, Subscriber: "a", Terms: []string{"alpha"}, Mode: model.MatchAny}
	if _, err := nd.Handle(ctx, "coord", EncodeRegister(RegisterReq{Filter: f, PostingTerms: f.Terms})); err != nil {
		t.Fatal(err)
	}

	// SIFT match via RPC.
	doc := model.Document{ID: 1, Terms: []string{"alpha", "beta"}}
	raw, err := nd.Handle(ctx, "coord", EncodeSIFT(&doc))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := DecodeMatchResp(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Matches) != 1 || resp.Matches[0].Filter != 1 {
		t.Fatalf("SIFT resp = %+v", resp)
	}

	// Publish-home via RPC (the movectl path).
	raw, err = nd.Handle(ctx, "coord", EncodePublishHome(PublishReq{Doc: doc, Term: "alpha"}))
	if err != nil {
		t.Fatal(err)
	}
	if resp, err = DecodeMatchResp(raw); err != nil || len(resp.Matches) != 1 {
		t.Fatalf("publish-home resp = %+v, %v", resp, err)
	}

	// Grid install / drop via RPC.
	grid, err := alloc.NewGrid(1, 2, []ring.NodeID{h.nodes[1].ID(), h.nodes[2].ID()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nd.Handle(ctx, "coord", EncodeInstallGrid(3, grid)); err != nil {
		t.Fatal(err)
	}
	if g, epoch := nd.Grid(); g == nil || epoch != 3 {
		t.Fatal("grid not installed via RPC")
	}
	if _, err := nd.Handle(ctx, "coord", EncodeDropGrid()); err != nil {
		t.Fatal(err)
	}
	if g, _ := nd.Grid(); g != nil {
		t.Fatal("grid not dropped via RPC")
	}

	// Bloom install via RPC.
	bf := bloom.MustNew(64, 0.01)
	bf.Add("alpha")
	if _, err := nd.Handle(ctx, "coord", EncodeInstallBloom(bf.Marshal())); err != nil {
		t.Fatal(err)
	}

	// Allocate via RPC (migrates + installs).
	if _, err := nd.Handle(ctx, "coord", EncodeAllocate(4, grid)); err != nil {
		t.Fatal(err)
	}
	if g, epoch := nd.Grid(); g == nil || epoch != 4 {
		t.Fatal("allocate RPC did not install grid")
	}

	// Gossip envelope without a handler must error.
	if _, err := nd.Handle(ctx, "coord", EncodeGossip([]byte{1})); err == nil {
		t.Fatal("gossip without handler accepted")
	}
}

// TestAllocateTermRPC drives the per-term allocation message end to end.
func TestAllocateTermRPC(t *testing.T) {
	h := newHarness(t, 6)
	ctx := context.Background()
	home, err := h.ring.HomeNode("hot")
	if err != nil {
		t.Fatal(err)
	}
	homeNode := h.nodeByID(home)
	for i := 1; i <= 12; i++ {
		f := model.Filter{ID: model.FilterID(i), Subscriber: "s", Terms: []string{"hot"}, Mode: model.MatchAny}
		if _, err := homeNode.Handle(ctx, "c", EncodeRegister(RegisterReq{Filter: f, PostingTerms: f.Terms})); err != nil {
			t.Fatal(err)
		}
	}
	var peers []ring.NodeID
	for _, nd := range h.nodes {
		if nd.ID() != home {
			peers = append(peers, nd.ID())
		}
	}
	grid, err := alloc.NewGrid(2, 2, peers[:4])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := homeNode.Handle(ctx, "c", EncodeAllocateTerm(1, "hot", grid)); err != nil {
		t.Fatal(err)
	}
	if homeNode.TermGridCount() != 1 {
		t.Fatal("term grid not installed via RPC")
	}

	doc := &model.Document{ID: 1, Terms: []string{"hot"}}
	matches, _, err := h.nodes[1].PublishEntry(ctx, doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 12 {
		t.Fatalf("matches = %d, want 12", len(matches))
	}

	// Dropping the term grid restores local matching.
	homeNode.InstallTermGrid("hot", nil)
	if homeNode.TermGridCount() != 0 {
		t.Fatal("term grid not removed")
	}
}

// TestRegistrationReachesGridAfterAllocation pins the regression the
// cluster oracle found: filters registered after an allocation round must
// be forwarded to their grid column.
func TestRegistrationReachesGridAfterAllocation(t *testing.T) {
	h := newHarness(t, 6)
	ctx := context.Background()
	home, err := h.ring.HomeNode("live")
	if err != nil {
		t.Fatal(err)
	}
	homeNode := h.nodeByID(home)
	// One pre-allocation filter so the grid has content.
	f0 := model.Filter{ID: 100, Subscriber: "s", Terms: []string{"live"}, Mode: model.MatchAny}
	if _, err := homeNode.Handle(ctx, "c", EncodeRegister(RegisterReq{Filter: f0, PostingTerms: f0.Terms})); err != nil {
		t.Fatal(err)
	}
	var peers []ring.NodeID
	for _, nd := range h.nodes {
		if nd.ID() != home {
			peers = append(peers, nd.ID())
		}
	}
	grid, err := alloc.NewGrid(2, 2, peers[:4])
	if err != nil {
		t.Fatal(err)
	}
	if err := homeNode.BuildAllocation(ctx, 1, grid); err != nil {
		t.Fatal(err)
	}

	// Register AFTER allocation; the match must still be found via the
	// grid fan-out.
	f1 := model.Filter{ID: 101, Subscriber: "late", Terms: []string{"live"}, Mode: model.MatchAny}
	if _, err := homeNode.Handle(ctx, "c", EncodeRegister(RegisterReq{Filter: f1, PostingTerms: f1.Terms})); err != nil {
		t.Fatal(err)
	}
	doc := &model.Document{ID: 9, Terms: []string{"live"}}
	matches, _, err := h.nodes[0].PublishEntry(ctx, doc)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]int, 0, len(matches))
	for _, m := range matches {
		ids = append(ids, int(m.Filter))
	}
	sort.Ints(ids)
	if len(ids) != 2 || ids[0] != 100 || ids[1] != 101 {
		t.Fatalf("matches = %v, want [100 101]", ids)
	}
}

func TestNodeAccessors(t *testing.T) {
	h := newHarness(t, 2)
	if h.nodes[0].Rack() != "r0" {
		t.Fatalf("Rack = %q", h.nodes[0].Rack())
	}
}
