package node

import (
	"context"
	"strconv"
	"sync"
	"testing"
	"time"

	"github.com/movesys/move/internal/alloc"
	"github.com/movesys/move/internal/metrics"
	"github.com/movesys/move/internal/model"
	"github.com/movesys/move/internal/resilience"
	"github.com/movesys/move/internal/ring"
	"github.com/movesys/move/internal/transport"
)

// newResilientHarness is newHarness plus a shared metrics registry and a
// fast resilience executor per node, as the cluster layer wires them.
func newResilientHarness(t testing.TB, n int) (*harness, *metrics.Registry) {
	t.Helper()
	reg := metrics.NewRegistry()
	h := &harness{
		net:  transport.NewNetwork(transport.NetworkConfig{}),
		ring: ring.New(ring.Config{}),
	}
	for i := 0; i < n; i++ {
		id := ring.NodeID("n" + strconv.Itoa(i))
		if err := h.ring.Add(ring.Member{ID: id, Rack: "r" + strconv.Itoa(i%3)}); err != nil {
			t.Fatal(err)
		}
		ex := resilience.New(resilience.Policy{
			MaxAttempts:      2,
			BaseDelay:        time.Microsecond,
			MaxDelay:         10 * time.Microsecond,
			BreakerThreshold: 3,
			BreakerCooldown:  50 * time.Millisecond,
			Retryable:        transport.IsAvailabilityError,
			Seed:             int64(i + 1),
		}, reg)
		nd, err := New(Config{
			ID: id, Rack: "r" + strconv.Itoa(i%3), Ring: h.ring,
			Seed: int64(i + 1), Resilience: ex, Metrics: reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		tr := h.net.Join(id, nd.Handle)
		nd.Attach(tr)
		h.nodes = append(h.nodes, nd)
	}
	return h, reg
}

// installHotGrid registers `filters` single-term ("hot") filters on the
// term's home node and allocates them onto a hand-built 2x2 grid of peers,
// returning the home node and the grid.
func installHotGrid(t *testing.T, h *harness, filters int) (*Node, *alloc.Grid) {
	t.Helper()
	home, err := h.ring.HomeNode("hot")
	if err != nil {
		t.Fatal(err)
	}
	homeNode := h.nodeByID(home)
	for i := 1; i <= filters; i++ {
		f := model.Filter{ID: model.FilterID(i), Subscriber: "s", Terms: []string{"hot"}, Mode: model.MatchAny}
		payload := EncodeRegister(RegisterReq{Filter: f, PostingTerms: []string{"hot"}})
		if _, err := homeNode.Handle(context.Background(), "test", payload); err != nil {
			t.Fatal(err)
		}
	}
	var peers []ring.NodeID
	for _, nd := range h.nodes {
		if nd.ID() != home {
			peers = append(peers, nd.ID())
		}
	}
	grid, err := alloc.NewGrid(2, 2, peers[:4])
	if err != nil {
		t.Fatal(err)
	}
	if err := homeNode.BuildAllocation(context.Background(), 1, grid); err != nil {
		t.Fatal(err)
	}
	return homeNode, grid
}

// TestReplicaRowFailoverFullMatchSet is the acceptance scenario: with one
// node down in the chosen partition row the publish still returns the full
// match set by failing over that column to another row, and the
// publish.failover counter increments; with every row down for a column
// the result reports Degraded with non-zero ColumnsLost instead of an
// error, and the lost columns are exactly the filters that become
// unreachable (the §VI availability model).
func TestReplicaRowFailoverFullMatchSet(t *testing.T) {
	h, reg := newResilientHarness(t, 6)
	const filters = 24
	homeNode, grid := installHotGrid(t, h, filters)
	ctx := context.Background()

	publish := func(docID uint64) MatchResp {
		t.Helper()
		raw, err := homeNode.Handle(ctx, "test", EncodePublishHome(PublishReq{
			Doc: model.Document{ID: docID, Terms: []string{"hot"}}, Term: "hot",
		}))
		if err != nil {
			t.Fatalf("publish doc %d: %v", docID, err)
		}
		resp, err := DecodeMatchResp(raw)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Healthy baseline: the grid serves every filter.
	if resp := publish(1); len(resp.Matches) != filters || resp.Degraded {
		t.Fatalf("healthy publish: %d matches degraded=%v, want %d/false", len(resp.Matches), resp.Degraded, filters)
	}

	// One node down in each row (different columns): every column still
	// has a live replica, so the match set stays complete and at least one
	// column must have failed over to another row.
	h.net.Fail(grid.Node(0, 0))
	h.net.Fail(grid.Node(1, 1))
	before := reg.Counter("publish.failover").Value()
	for doc := uint64(2); doc <= 5; doc++ {
		resp := publish(doc)
		if len(resp.Matches) != filters {
			t.Fatalf("doc %d: matches = %d under single-row-node failure, want %d", doc, len(resp.Matches), filters)
		}
		if resp.Degraded || resp.ColumnsLost != 0 {
			t.Fatalf("doc %d: degraded=%v lost=%d, want full coverage via failover", doc, resp.Degraded, resp.ColumnsLost)
		}
	}
	if got := reg.Counter("publish.failover").Value(); got <= before {
		t.Fatalf("publish.failover = %d (was %d), want increments from row failover", got, before)
	}

	// Column 0 fully dead (both rows): the publish degrades to exactly the
	// column-1 filters — no error, Degraded set, one column lost.
	h.net.Fail(grid.Node(1, 0))
	wantSurvivors := 0
	for i := 1; i <= filters; i++ {
		if grid.Column(model.FilterID(i)) != 0 {
			wantSurvivors++
		}
	}
	resp := publish(6)
	if !resp.Degraded || resp.ColumnsLost != 1 {
		t.Fatalf("degraded=%v lost=%d, want degraded with exactly 1 lost column", resp.Degraded, resp.ColumnsLost)
	}
	if len(resp.Matches) != wantSurvivors {
		t.Fatalf("degraded matches = %d, want %d (availability model: only surviving columns)", len(resp.Matches), wantSurvivors)
	}
	for _, m := range resp.Matches {
		if grid.Column(m.Filter) == 0 {
			t.Fatalf("match %v from the dead column", m.Filter)
		}
	}
	if reg.Counter("publish.degraded").Value() == 0 {
		t.Fatal("publish.degraded counter not incremented")
	}
}

// TestBatchPublishFailoverAcrossCircuitBrokenColumn is the batched
// counterpart of TestReplicaRowFailoverFullMatchSet: coalesced frames are
// fanned out across a grid where each row has one dead node (so whichever
// row the batch picks, at least one column must fail over — eventually
// through an open circuit breaker's fast-fail path), and the whole frame
// must still produce the full match set for every document in it. When a
// column loses both rows, every document in the batch degrades to exactly
// the surviving columns' filters.
func TestBatchPublishFailoverAcrossCircuitBrokenColumn(t *testing.T) {
	h, reg := newResilientHarness(t, 6)
	const filters = 24
	homeNode, grid := installHotGrid(t, h, filters)
	ctx := context.Background()

	// One dead node per row, different columns: every column keeps a live
	// replica in some row, so failover preserves the exact match set.
	h.net.Fail(grid.Node(0, 0))
	h.net.Fail(grid.Node(1, 1))

	var entry *Node
	for _, nd := range h.nodes {
		if nd.ID() != homeNode.ID() {
			entry = nd
			break
		}
	}
	b := NewBatcher(entry, BatcherConfig{MaxBatch: 8, FlushInterval: time.Millisecond})
	defer b.Close()

	publishWave := func(startDoc uint64, count int) []MatchResp {
		t.Helper()
		resps := make([]MatchResp, count)
		errs := make([]error, count)
		var wg sync.WaitGroup
		for i := 0; i < count; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				doc := model.Document{ID: startDoc + uint64(i), Terms: []string{"hot"}}
				matches, resp, err := b.Publish(ctx, &doc)
				// The aggregate response carries stats and hops only; stash
				// the deduplicated matches in it for the assertions below.
				resp.Matches = matches
				resps[i], errs[i] = resp, err
			}(i)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("doc %d: %v", i, err)
			}
		}
		return resps
	}

	// Several waves: the first RPCs to the dead nodes fail slowly and trip
	// their breakers (threshold 3); later waves fail over through the
	// breaker's fast-fail. Every document of every wave must see the full
	// match set regardless.
	before := reg.Counter("publish.failover").Value()
	var sawBatchedFailover bool
	for wave := 0; wave < 4; wave++ {
		resps := publishWave(uint64(100+wave*10), 8)
		for i, resp := range resps {
			if len(resp.Matches) != filters {
				t.Fatalf("wave %d doc %d: matches = %d under per-row failures, want %d", wave, i, len(resp.Matches), filters)
			}
			if resp.Degraded || resp.ColumnsLost != 0 {
				t.Fatalf("wave %d doc %d: degraded=%v lost=%d, want failover coverage", wave, i, resp.Degraded, resp.ColumnsLost)
			}
			for _, hop := range resp.Hops {
				if hop.Stage == "column" && hop.Failover && hop.Err == "" && hop.Batch > 1 {
					sawBatchedFailover = true
				}
			}
		}
	}
	if got := reg.Counter("publish.failover").Value(); got <= before {
		t.Fatalf("publish.failover = %d (was %d), want increments from batched row failover", got, before)
	}
	if !sawBatchedFailover {
		t.Fatal("no column hop with Failover and Batch > 1 — batched frames never failed over")
	}
	if reg.Counter("breaker.open").Value() == 0 {
		t.Fatal("breaker.open = 0, dead replicas never tripped their breakers")
	}

	// Column 0 fully dead: every document in the batch degrades to the
	// column-1 filters, with no hard error.
	h.net.Fail(grid.Node(1, 0))
	wantSurvivors := 0
	for i := 1; i <= filters; i++ {
		if grid.Column(model.FilterID(i)) != 0 {
			wantSurvivors++
		}
	}
	resps := publishWave(500, 8)
	for i, resp := range resps {
		if !resp.Degraded || resp.ColumnsLost != 1 {
			t.Fatalf("doc %d: degraded=%v lost=%d, want degraded with 1 lost column", i, resp.Degraded, resp.ColumnsLost)
		}
		if len(resp.Matches) != wantSurvivors {
			t.Fatalf("doc %d: degraded matches = %d, want %d survivors", i, len(resp.Matches), wantSurvivors)
		}
		for _, m := range resp.Matches {
			if grid.Column(m.Filter) == 0 {
				t.Fatalf("doc %d: match %v from the dead column", i, m.Filter)
			}
		}
	}
}

// TestBreakerShortCircuitsDeadPeer: repeated sends to a crashed node trip
// its breaker on the sender, after which sends fail fast without invoking
// the transport; recovery is detected through a half-open probe.
func TestBreakerShortCircuitsDeadPeer(t *testing.T) {
	h, reg := newResilientHarness(t, 3)
	sender := h.nodes[0]
	dead := h.nodes[1].ID()
	h.net.Fail(dead)
	ctx := context.Background()

	payload := EncodeStatsPull()
	for i := 0; i < 3; i++ {
		if _, err := sender.send(ctx, dead, payload); err == nil {
			t.Fatal("send to dead node succeeded")
		}
	}
	if reg.Counter("breaker.open").Value() == 0 {
		t.Fatal("breaker.open not incremented after repeated failures")
	}
	if sender.res.State(string(dead)) != resilience.StateOpen {
		t.Fatalf("breaker state = %v, want open", sender.res.State(string(dead)))
	}
	// Fast-fail path reports the peer as down without touching the net.
	if _, err := sender.send(ctx, dead, payload); !transport.IsAvailabilityError(err) {
		t.Fatalf("breaker fast-fail err = %v, want availability error", err)
	}

	// Recovery: after the cooldown a probe goes through and closes it.
	h.net.Recover(dead)
	time.Sleep(60 * time.Millisecond)
	if _, err := sender.send(ctx, dead, payload); err != nil {
		t.Fatalf("send after recovery = %v, want success", err)
	}
	if st := sender.res.State(string(dead)); st != resilience.StateClosed {
		t.Fatalf("breaker state after recovery = %v, want closed", st)
	}
}

// TestRetryRidesOutInjectedFaults: with a Faulty transport dropping 30% of
// sends, the retry policy still completes every publish (memnet handlers
// are deterministic, so only transport-level faults are in play).
func TestRetryRidesOutInjectedFaults(t *testing.T) {
	h, reg := newResilientHarness(t, 6)
	// Re-attach every node behind a lossy decorator.
	for i, nd := range h.nodes {
		ep := h.net.Join(nd.ID(), nd.Handle)
		nd.Attach(transport.NewFaulty(ep, transport.FaultConfig{
			Seed:    int64(100 + i),
			Default: transport.FaultProbs{Drop: 0.3},
		}))
	}
	homeNode, _ := installHotGrid(t, h, 12)
	ctx := context.Background()

	complete := 0
	const probes = 30
	for doc := uint64(1); doc <= probes; doc++ {
		raw, err := homeNode.Handle(ctx, "test", EncodePublishHome(PublishReq{
			Doc: model.Document{ID: doc, Terms: []string{"hot"}}, Term: "hot",
		}))
		if err != nil {
			t.Fatalf("publish doc %d: %v", doc, err)
		}
		resp, err := DecodeMatchResp(raw)
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Matches) == 12 && !resp.Degraded {
			complete++
		}
	}
	// With MaxAttempts=2, replica-row failover behind the retries, and all
	// nodes actually alive, the vast majority of publishes must complete.
	if complete < probes*2/3 {
		t.Fatalf("complete = %d/%d under 30%% drop, want >= %d", complete, probes, probes*2/3)
	}
	if reg.Counter("rpc.retries").Value() == 0 {
		t.Fatal("rpc.retries = 0, retries never engaged under drops")
	}
}
