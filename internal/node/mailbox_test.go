package node

import (
	"context"
	"strconv"
	"testing"

	"github.com/movesys/move/internal/model"
)

func TestMailboxDeliverFetch(t *testing.T) {
	h := newHarness(t, 4)
	ctx := context.Background()
	doc := &model.Document{ID: 7, Terms: []string{"alpha", "beta"}}
	matches := []Match{
		{Filter: 1, Subscriber: "alice"},
		{Filter: 2, Subscriber: "bob"},
	}
	if err := h.nodes[0].DeliverToMailboxes(ctx, doc, matches); err != nil {
		t.Fatal(err)
	}
	// Fetch from any node: it routes to the mailbox home.
	ds, err := h.nodes[3].FetchDeliveries(ctx, "alice", 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 1 || ds[0].DocID != 7 || ds[0].Filter != 1 {
		t.Fatalf("alice deliveries = %+v", ds)
	}
	if len(ds[0].Terms) != 2 {
		t.Fatalf("delivery terms = %v", ds[0].Terms)
	}
	// Unknown subscriber: empty.
	none, err := h.nodes[0].FetchDeliveries(ctx, "ghost", 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Fatalf("ghost deliveries = %v", none)
	}
}

func TestMailboxCursor(t *testing.T) {
	h := newHarness(t, 3)
	ctx := context.Background()
	for i := 1; i <= 5; i++ {
		doc := &model.Document{ID: uint64(i), Terms: []string{"t"}}
		if err := h.nodes[0].DeliverToMailboxes(ctx, doc, []Match{{Filter: model.FilterID(i), Subscriber: "carol"}}); err != nil {
			t.Fatal(err)
		}
	}
	first, err := h.nodes[0].FetchDeliveries(ctx, "carol", 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 3 || first[0].Seq != 1 || first[2].Seq != 3 {
		t.Fatalf("first page = %+v", first)
	}
	rest, err := h.nodes[0].FetchDeliveries(ctx, "carol", first[2].Seq, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 2 || rest[0].Seq != 4 {
		t.Fatalf("second page = %+v", rest)
	}
	// Cursor past the end: empty, not an error.
	tail, err := h.nodes[0].FetchDeliveries(ctx, "carol", 99, 10)
	if err != nil || len(tail) != 0 {
		t.Fatalf("tail = %v, %v", tail, err)
	}
}

func TestMailboxOverflowDropsOldest(t *testing.T) {
	m := newMailboxes()
	for i := 0; i < mailboxCap+50; i++ {
		m.push("dave", Delivery{DocID: uint64(i)})
	}
	ds := m.fetch("dave", 0, mailboxCap+100)
	if len(ds) != mailboxCap {
		t.Fatalf("retained %d deliveries, want %d", len(ds), mailboxCap)
	}
	if ds[0].Seq != 51 {
		t.Fatalf("oldest retained seq = %d, want 51", ds[0].Seq)
	}
	if ds[len(ds)-1].Seq != uint64(mailboxCap+50) {
		t.Fatalf("newest seq = %d", ds[len(ds)-1].Seq)
	}
}

func TestDeliveriesRoundTrip(t *testing.T) {
	in := []Delivery{
		{Seq: 1, DocID: 10, Filter: 3, Terms: []string{"x", "y"}},
		{Seq: 2, DocID: 11, Filter: 4, Terms: nil},
	}
	out, err := DecodeDeliveries(encodeDeliveries(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].Seq != 1 || out[1].DocID != 11 {
		t.Fatalf("round trip = %+v", out)
	}
	if _, err := DecodeDeliveries([]byte{0xFF}); err == nil {
		t.Fatal("corrupt deliveries accepted")
	}
}

func TestMailboxConcurrentPush(t *testing.T) {
	m := newMailboxes()
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 100; i++ {
				m.push("sub"+strconv.Itoa(w%2), Delivery{DocID: uint64(i)})
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	a := m.fetch("sub0", 0, 1000)
	b := m.fetch("sub1", 0, 1000)
	if len(a) != 200 || len(b) != 200 {
		t.Fatalf("deliveries = %d/%d, want 200/200", len(a), len(b))
	}
	// Sequence numbers are strictly increasing per mailbox.
	for i := 1; i < len(a); i++ {
		if a[i].Seq <= a[i-1].Seq {
			t.Fatal("sequence not increasing")
		}
	}
}
