package node

import (
	"context"
	"testing"

	"github.com/movesys/move/internal/alloc"
	"github.com/movesys/move/internal/model"
	"github.com/movesys/move/internal/ring"
	"github.com/movesys/move/internal/store"
	"github.com/movesys/move/internal/transport"
)

func soloNode(t *testing.T) *Node {
	t.Helper()
	r := ring.New(ring.Config{})
	if err := r.Add(ring.Member{ID: "solo", Rack: "r0"}); err != nil {
		t.Fatal(err)
	}
	st, err := store.Open("", store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	nd, err := New(Config{ID: "solo", Rack: "r0", Ring: r, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	net := transport.NewNetwork(transport.NetworkConfig{})
	nd.Attach(net.Join("solo", nd.Handle))
	return nd
}

// TestPrepareCommitAbortStateMachine walks the §13 epoch transitions on one
// node: stale prepares rejected, re-prepares idempotent, commit promotes
// exactly the matching pending epoch, abort restores the committed state.
func TestPrepareCommitAbortStateMachine(t *testing.T) {
	nd := soloNode(t)
	g, err := alloc.NewGrid(1, 1, []ring.NodeID{"solo"})
	if err != nil {
		t.Fatal(err)
	}

	if nd.PrepareGrid(0, g) {
		t.Fatal("prepare epoch 0 accepted; epochs start at 1")
	}
	if !nd.PrepareGrid(1, g) {
		t.Fatal("prepare epoch 1 rejected")
	}
	if !nd.PrepareGrid(1, g) {
		t.Fatal("re-prepare of the same epoch must be idempotent, not an error")
	}
	if committed, pending, dual := nd.EpochInfo(); committed != 0 || pending != 1 || !dual {
		t.Fatalf("after prepare: committed=%d pending=%d dual=%v, want 0/1/true", committed, pending, dual)
	}

	if nd.CommitGrid(2) {
		t.Fatal("commit of a never-prepared epoch promoted something")
	}
	if !nd.CommitGrid(1) {
		t.Fatal("commit of the prepared epoch did not promote")
	}
	if committed, pending, dual := nd.EpochInfo(); committed != 1 || pending != 0 || dual {
		t.Fatalf("after commit: committed=%d pending=%d dual=%v, want 1/0/false", committed, pending, dual)
	}
	if nd.PrepareGrid(1, g) {
		t.Fatal("prepare at the committed epoch accepted; must be stale")
	}

	if !nd.PrepareGrid(2, g) {
		t.Fatal("prepare epoch 2 rejected")
	}
	if err := nd.AbortGrid(2); err != nil {
		t.Fatal(err)
	}
	if committed, pending, dual := nd.EpochInfo(); committed != 1 || pending != 0 || dual {
		t.Fatalf("after abort: committed=%d pending=%d dual=%v, want 1/0/false", committed, pending, dual)
	}
	if nd.CommitGrid(2) {
		t.Fatal("commit of an aborted epoch promoted something")
	}
}

// TestMigrateReplayIsNoop replays the same migration batch three times —
// the transport duplicates RPCs and the coordinator retries prepares, so
// handleMigrate must be idempotent down to the counters.
func TestMigrateReplayIsNoop(t *testing.T) {
	nd := soloNode(t)
	ctx := context.Background()
	req := MigrateReq{Epoch: 3}
	for i := 1; i <= 5; i++ {
		req.Entries = append(req.Entries, RegisterReq{
			Filter:       model.Filter{ID: model.FilterID(i), Subscriber: "s", Terms: []string{"alerts"}, Mode: model.MatchAny},
			PostingTerms: []string{"alerts"},
		})
	}
	payload := EncodeMigrate(req)
	for i := 0; i < 3; i++ {
		if _, err := nd.Handle(ctx, "home", payload); err != nil {
			t.Fatal(err)
		}
	}
	if got := nd.Index().NumFilters(); got != 5 {
		t.Fatalf("NumFilters after 3 replays = %d, want 5", got)
	}
	if got := nd.Index().NumPostings(); got != 5 {
		t.Fatalf("NumPostings after 3 replays = %d, want 5", got)
	}
	// The journal saw each copy once: abort removes all five, exactly once.
	if err := nd.AbortGrid(3); err != nil {
		t.Fatal(err)
	}
	if got := nd.Index().NumFilters(); got != 0 {
		t.Fatalf("NumFilters after abort = %d, want 0", got)
	}
	// Posting entries for unregistered filters are lazy tombstones; what
	// matters is that they can no longer match.
	matches, _, err := nd.PublishEntry(ctx, &model.Document{ID: 1, Terms: []string{"alerts"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 0 {
		t.Fatalf("matches after abort = %v, want none", matches)
	}
}

// TestAbortPreservesPreexistingCopies aborts an epoch whose migration batch
// included a filter the node already held: only the copy the epoch created
// may be unwound.
func TestAbortPreservesPreexistingCopies(t *testing.T) {
	nd := soloNode(t)
	ctx := context.Background()
	f1 := model.Filter{ID: 1, Subscriber: "s", Terms: []string{"alerts"}, Mode: model.MatchAny}
	if _, err := nd.Handle(ctx, "client", EncodeRegister(RegisterReq{Filter: f1, PostingTerms: []string{"alerts"}})); err != nil {
		t.Fatal(err)
	}

	req := MigrateReq{Epoch: 7, Entries: []RegisterReq{
		{Filter: f1, PostingTerms: []string{"alerts"}},
		{Filter: model.Filter{ID: 2, Subscriber: "s", Terms: []string{"alerts"}, Mode: model.MatchAny}, PostingTerms: []string{"alerts"}},
	}}
	if _, err := nd.Handle(ctx, "home", EncodeMigrate(req)); err != nil {
		t.Fatal(err)
	}
	if got := nd.Index().NumFilters(); got != 2 {
		t.Fatalf("NumFilters after migrate = %d, want 2", got)
	}
	if err := nd.AbortGrid(7); err != nil {
		t.Fatal(err)
	}
	if got := nd.Index().NumFilters(); got != 1 {
		t.Fatalf("NumFilters after abort = %d, want 1 (pre-existing copy kept)", got)
	}
	matches, _, err := nd.PublishEntry(ctx, &model.Document{ID: 1, Terms: []string{"alerts"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 || matches[0].Filter != 1 {
		t.Fatalf("matches after abort = %v, want exactly filter 1", matches)
	}
}

// TestRestartMidPrepareRejoinsAtCorrectEpoch crashes a home node between
// prepare and commit. The coordinator aborts the orphaned epoch, the node
// reboots from its store at the old committed epoch with no pending state,
// and the next round prepares and commits cleanly — no duplicate and no
// missing filter copies anywhere.
func TestRestartMidPrepareRejoinsAtCorrectEpoch(t *testing.T) {
	dir := t.TempDir()
	// Only the home is a ring member: it owns every term. The grid peers
	// exist solely as migration targets on the shared network.
	r := ring.New(ring.Config{})
	if err := r.Add(ring.Member{ID: "h", Rack: "r0"}); err != nil {
		t.Fatal(err)
	}
	net := transport.NewNetwork(transport.NetworkConfig{})

	peer := func(id ring.NodeID) *Node {
		t.Helper()
		st, err := store.Open("", store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		nd, err := New(Config{ID: id, Rack: "r1", Ring: r, Store: st})
		if err != nil {
			t.Fatal(err)
		}
		nd.Attach(net.Join(id, nd.Handle))
		return nd
	}
	bootHome := func() *Node {
		t.Helper()
		st, err := store.Open(dir, store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		nd, err := New(Config{ID: "h", Rack: "r0", Ring: r, Store: st})
		if err != nil {
			t.Fatal(err)
		}
		nd.Attach(net.Join("h", nd.Handle))
		return nd
	}

	a, b := peer("a"), peer("b")
	h := bootHome()
	ctx := context.Background()
	const filters = 20
	for i := 1; i <= filters; i++ {
		f := model.Filter{ID: model.FilterID(i), Subscriber: "s", Terms: []string{"alerts"}, Mode: model.MatchAny}
		if _, err := h.Handle(ctx, "client", EncodeRegister(RegisterReq{Filter: f, PostingTerms: []string{"alerts"}})); err != nil {
			t.Fatal(err)
		}
	}
	grid, err := alloc.NewGrid(1, 3, []ring.NodeID{"h", "a", "b"})
	if err != nil {
		t.Fatal(err)
	}

	// Round 1 prepares... and then the home dies before the commit.
	if err := h.PrepareAllocation(ctx, 1, grid); err != nil {
		t.Fatal(err)
	}
	if err := flushStore(h); err != nil {
		t.Fatal(err)
	}
	h = bootHome() // crash + restart: pending grid and epoch are gone
	if committed, pending, dual := h.EpochInfo(); committed != 0 || pending != 0 || dual {
		t.Fatalf("restarted home: committed=%d pending=%d dual=%v, want 0/0/false", committed, pending, dual)
	}
	if got := h.Index().NumFilters(); got != filters {
		t.Fatalf("restarted home NumFilters = %d, want %d", got, filters)
	}
	// The coordinator resolves the orphaned round with an epoch-wide abort.
	for _, nd := range []*Node{h, a, b} {
		if err := nd.AbortGrid(1); err != nil {
			t.Fatal(err)
		}
	}
	if got := a.Index().NumFilters() + b.Index().NumFilters(); got != 0 {
		t.Fatalf("peers hold %d filters after abort, want 0", got)
	}

	// Round 2 runs to commit. Replay against the already-aborted peers must
	// recreate exactly one copy per placement.
	if err := h.PrepareAllocation(ctx, 2, grid); err != nil {
		t.Fatal(err)
	}
	for _, nd := range []*Node{h, a, b} {
		nd.CommitGrid(2)
	}
	if committed, pending, dual := h.EpochInfo(); committed != 2 || pending != 0 || dual {
		t.Fatalf("after round 2: committed=%d pending=%d dual=%v, want 2/0/false", committed, pending, dual)
	}
	// Column c of the 1×3 grid holds the filters with ID%3 == c; the home
	// keeps its full copy on top of its column share.
	wantA, wantB := 0, 0
	for i := 1; i <= filters; i++ {
		switch grid.Column(model.FilterID(i)) {
		case 1:
			wantA++
		case 2:
			wantB++
		}
	}
	if got := a.Index().NumFilters(); got != wantA {
		t.Fatalf("peer a NumFilters = %d, want %d", got, wantA)
	}
	if got := b.Index().NumFilters(); got != wantB {
		t.Fatalf("peer b NumFilters = %d, want %d", got, wantB)
	}
	if got := h.Index().NumFilters(); got != filters {
		t.Fatalf("home NumFilters = %d, want %d", got, filters)
	}
	matches, _, err := h.PublishEntry(ctx, &model.Document{ID: 42, Terms: []string{"alerts"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != filters {
		t.Fatalf("matches after cutover = %d, want %d", len(matches), filters)
	}
}
