package node

import (
	"context"
	"sync"

	"github.com/movesys/move/internal/codec"
	"github.com/movesys/move/internal/delivery"
	"github.com/movesys/move/internal/model"
	"github.com/movesys/move/internal/ring"
)

// msgDeliverBatch routes a matched document's notifications to the session
// owner of each subscriber: one frame per destination node carrying the
// document once plus every (subscriber, matched-filter-IDs) pair whose
// session that node owns — the same coalescing discipline as the publish
// fan-out (§12), applied to the last mile (§14).
const msgDeliverBatch = 26

// EncodeDeliverBatch serializes a routed delivery batch (entry node or
// movectl → session owner).
func EncodeDeliverBatch(b *delivery.Batch) []byte {
	w := codec.NewWriter(64 + 24*len(b.Notifs) + 12*len(b.Terms))
	w.Uint8(msgDeliverBatch)
	delivery.AppendBatch(w, b)
	return w.Bytes()
}

// handleDeliverBatch lands a routed delivery batch on the session owner.
// With a delivery hub attached the notifications enqueue into subscriber
// sessions; without one (legacy deployments) they fall back to the polled
// mailbox tier so mixed clusters still deliver.
func (n *Node) handleDeliverBatch(r *codec.Reader) error {
	b, err := delivery.DecodeBatch(r)
	if err != nil {
		return err
	}
	if hub := n.cfg.Delivery; hub != nil {
		// One batched call: session lookups group by registry shard, so a
		// thousand-subscriber fan-out costs a handful of lock acquisitions
		// instead of one per subscriber.
		hub.DeliverBatch(b.DocID, b.Terms, b.Notifs)
		return nil
	}
	for i := range b.Notifs {
		nt := &b.Notifs[i]
		for _, f := range nt.Filters {
			n.mail.push(nt.Sub, Delivery{DocID: b.DocID, Filter: f, Terms: b.Terms})
		}
	}
	return nil
}

// GroupMatchesBySub folds a deduplicated match set into per-subscriber
// notifications (a subscriber with several matching filters gets one
// notification carrying all their IDs).
func GroupMatchesBySub(matches []Match) []delivery.Notification {
	idx := make(map[string]int, len(matches))
	notifs := make([]delivery.Notification, 0, len(matches))
	for _, m := range matches {
		if i, ok := idx[m.Subscriber]; ok {
			notifs[i].Filters = append(notifs[i].Filters, m.Filter)
			continue
		}
		idx[m.Subscriber] = len(notifs)
		notifs = append(notifs, delivery.Notification{
			Sub:     m.Subscriber,
			Filters: []model.FilterID{m.Filter},
		})
	}
	return notifs
}

// routeDeliveries ships a matched document's notifications to each
// subscriber's session owner (the home node of "subscriber/<name>"): one
// msgDeliverBatch per distinct owner, all frames built in pooled writers
// before the first goroutine spawns (DESIGN.md §11). Routing is
// best-effort: a failed owner RPC is counted, and the affected subscribers
// are reported through OnDeliveryLoss so loss is accounted, never silent —
// publish completion does not block on slow consumers beyond these sends.
func (n *Node) routeDeliveries(ctx context.Context, doc *model.Document, matches []Match) {
	notifs := GroupMatchesBySub(matches)
	batches := make(map[ring.NodeID]*delivery.Batch)
	var unrouted []string
	for i := range notifs {
		home, err := n.cfg.Ring.HomeNode("subscriber/" + notifs[i].Sub)
		if err != nil {
			unrouted = append(unrouted, notifs[i].Sub)
			continue
		}
		b := batches[home]
		if b == nil {
			b = &delivery.Batch{DocID: doc.ID, Terms: doc.Terms}
			batches[home] = b
		}
		b.Notifs = append(b.Notifs, notifs[i])
	}
	if len(unrouted) > 0 {
		n.routeFailures.Inc()
		n.routeLost.Add(int64(len(unrouted)))
		if n.cfg.OnDeliveryLoss != nil {
			n.cfg.OnDeliveryLoss(doc.ID, unrouted)
		}
	}
	if len(batches) == 0 {
		return
	}

	type dest struct {
		home  ring.NodeID
		frame *codec.Writer
		batch *delivery.Batch
	}
	dests := make([]dest, 0, len(batches))
	for home, b := range batches {
		pw := codec.GetWriter()
		pw.Uint8(msgDeliverBatch)
		delivery.AppendBatch(pw, b)
		dests = append(dests, dest{home: home, frame: pw, batch: b})
		n.routeRPCs.Inc()
		n.routeSubs.Add(int64(len(b.Notifs)))
	}
	var wg sync.WaitGroup
	for i := range dests {
		wg.Add(1)
		go func(d *dest) {
			defer wg.Done()
			_, err := n.send(ctx, d.home, d.frame.Bytes())
			codec.PutWriter(d.frame)
			if err == nil {
				return
			}
			n.routeFailures.Inc()
			n.routeLost.Add(int64(len(d.batch.Notifs)))
			if n.cfg.OnDeliveryLoss != nil {
				subs := make([]string, len(d.batch.Notifs))
				for j := range d.batch.Notifs {
					subs[j] = d.batch.Notifs[j].Sub
				}
				n.cfg.OnDeliveryLoss(doc.ID, subs)
			}
		}(&dests[i])
	}
	wg.Wait()
}
