package node

import (
	"context"
	"fmt"
	"sync"

	"github.com/movesys/move/internal/codec"
	"github.com/movesys/move/internal/model"
)

// Mailbox message types.
const (
	msgDeliver = 20 // push one delivery to a subscriber's mailbox node
	msgFetch   = 21 // pull a subscriber's deliveries since a sequence number
)

// Delivery is one matched document queued for a subscriber.
type Delivery struct {
	// Seq is the mailbox-local sequence number (fetch cursor).
	Seq uint64
	// DocID identifies the published document.
	DocID uint64
	// Filter identifies the matching filter.
	Filter model.FilterID
	// Terms is the document's term set.
	Terms []string
}

// mailboxCap bounds each subscriber's queued deliveries; older entries are
// dropped once a slow consumer falls this far behind (the same bounded-
// buffer semantics as the embedded API's Subscription channel).
const mailboxCap = 1024

// mailbox is one subscriber's bounded delivery queue.
type mailbox struct {
	deliveries []Delivery // ring-ordered, oldest first
	nextSeq    uint64
}

// mailboxes is the node-local store of subscriber queues. A subscriber's
// mailbox lives on the home node of the subscriber's name, so clients have
// one stable place to fetch from.
type mailboxes struct {
	mu    sync.Mutex
	boxes map[string]*mailbox
}

func newMailboxes() *mailboxes {
	return &mailboxes{boxes: make(map[string]*mailbox)}
}

func (m *mailboxes) push(sub string, d Delivery) {
	m.mu.Lock()
	defer m.mu.Unlock()
	box, ok := m.boxes[sub]
	if !ok {
		box = &mailbox{nextSeq: 1}
		m.boxes[sub] = box
	}
	d.Seq = box.nextSeq
	box.nextSeq++
	box.deliveries = append(box.deliveries, d)
	if len(box.deliveries) > mailboxCap {
		box.deliveries = box.deliveries[len(box.deliveries)-mailboxCap:]
	}
}

func (m *mailboxes) fetch(sub string, since uint64, limit int) []Delivery {
	m.mu.Lock()
	defer m.mu.Unlock()
	box, ok := m.boxes[sub]
	if !ok {
		return nil
	}
	out := make([]Delivery, 0, limit)
	for _, d := range box.deliveries {
		if d.Seq <= since {
			continue
		}
		out = append(out, d)
		if len(out) >= limit {
			break
		}
	}
	return out
}

// EncodeDeliver serializes a mailbox push.
func EncodeDeliver(sub string, docID uint64, filter model.FilterID, terms []string) []byte {
	w := codec.NewWriter(48 + 12*len(terms))
	w.Uint8(msgDeliver)
	w.String(sub)
	w.Uvarint(docID)
	w.Uvarint(uint64(filter))
	w.StringSlice(terms)
	return w.Bytes()
}

// EncodeFetch serializes a mailbox pull.
func EncodeFetch(sub string, since uint64, limit int) []byte {
	w := codec.NewWriter(32)
	w.Uint8(msgFetch)
	w.String(sub)
	w.Uvarint(since)
	w.Uvarint(uint64(limit))
	return w.Bytes()
}

// DecodeDeliveries parses a fetch response.
func DecodeDeliveries(data []byte) ([]Delivery, error) {
	r := codec.NewReader(data)
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(r.Remaining()) {
		return nil, fmt.Errorf("node: delivery count %d overflows payload", n)
	}
	out := make([]Delivery, 0, n)
	for i := uint64(0); i < n; i++ {
		var d Delivery
		if d.Seq, err = r.Uvarint(); err != nil {
			return nil, err
		}
		if d.DocID, err = r.Uvarint(); err != nil {
			return nil, err
		}
		f, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		d.Filter = model.FilterID(f)
		if d.Terms, err = r.StringSlice(); err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}

func encodeDeliveries(ds []Delivery) []byte {
	w := codec.NewWriter(16 + 48*len(ds))
	w.Uvarint(uint64(len(ds)))
	for _, d := range ds {
		w.Uvarint(d.Seq)
		w.Uvarint(d.DocID)
		w.Uvarint(uint64(d.Filter))
		w.StringSlice(d.Terms)
	}
	return w.Bytes()
}

// handleDeliver processes a mailbox push.
func (n *Node) handleDeliver(r *codec.Reader) error {
	sub, err := r.String()
	if err != nil {
		return err
	}
	docID, err := r.Uvarint()
	if err != nil {
		return err
	}
	filter, err := r.Uvarint()
	if err != nil {
		return err
	}
	terms, err := r.StringSlice()
	if err != nil {
		return err
	}
	n.mail.push(sub, Delivery{DocID: docID, Filter: model.FilterID(filter), Terms: terms})
	return nil
}

// handleFetch processes a mailbox pull.
func (n *Node) handleFetch(r *codec.Reader) ([]byte, error) {
	sub, err := r.String()
	if err != nil {
		return nil, err
	}
	since, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	limit, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if limit == 0 || limit > mailboxCap {
		limit = mailboxCap
	}
	return encodeDeliveries(n.mail.fetch(sub, since, int(limit))), nil
}

// DeliverToMailboxes routes each match to the mailbox node of its
// subscriber (the home node of the subscriber's name): the final
// dissemination hop for clients that poll over the network rather than
// holding an in-process channel.
func (n *Node) DeliverToMailboxes(ctx context.Context, doc *model.Document, matches []Match) error {
	var firstErr error
	for _, m := range matches {
		home, err := n.cfg.Ring.HomeNode("subscriber/" + m.Subscriber)
		if err != nil {
			return err
		}
		payload := EncodeDeliver(m.Subscriber, doc.ID, m.Filter, doc.Terms)
		if _, err := n.send(ctx, home, payload); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("node %s: deliver to %s: %w", n.cfg.ID, home, err)
		}
	}
	return firstErr
}

// FetchDeliveries pulls a subscriber's deliveries from its mailbox node.
func (n *Node) FetchDeliveries(ctx context.Context, sub string, since uint64, limit int) ([]Delivery, error) {
	home, err := n.cfg.Ring.HomeNode("subscriber/" + sub)
	if err != nil {
		return nil, err
	}
	raw, err := n.send(ctx, home, EncodeFetch(sub, since, limit))
	if err != nil {
		return nil, err
	}
	return DecodeDeliveries(raw)
}
