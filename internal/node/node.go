package node

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/movesys/move/internal/alloc"
	"github.com/movesys/move/internal/bloom"
	"github.com/movesys/move/internal/codec"
	"github.com/movesys/move/internal/delivery"
	"github.com/movesys/move/internal/index"
	"github.com/movesys/move/internal/metrics"
	"github.com/movesys/move/internal/model"
	"github.com/movesys/move/internal/resilience"
	"github.com/movesys/move/internal/ring"
	"github.com/movesys/move/internal/store"
	"github.com/movesys/move/internal/trace"
	"github.com/movesys/move/internal/transport"
)

// GossipHandler lets the owner plug a gossip endpoint into the node's
// message router.
type GossipHandler func(from ring.NodeID, digest []byte) ([]byte, error)

// Config parameterizes a Node.
type Config struct {
	// ID is the node's identity in the ring.
	ID ring.NodeID
	// Rack labels the node's failure domain.
	Rack string
	// Store is the node-local storage engine; nil opens an ephemeral one.
	Store *store.Store
	// Ring is the (gossip-maintained) cluster view used for entry-point
	// routing.
	Ring *ring.Ring
	// Seed drives the row choice of the forwarding engine; zero derives a
	// seed from the node ID.
	Seed int64
	// Gossip, if set, receives msgGossip payloads.
	Gossip GossipHandler
	// OnDeliver, if set, is invoked on the entry node for every document
	// with its deduplicated matches — the final dissemination hop to
	// subscribers.
	OnDeliver func(doc *model.Document, matches []Match)
	// Delivery, if set, is this node's subscriber-session hub: inbound
	// msgDeliverBatch frames enqueue into its sessions. Nil falls back to
	// the polled mailbox tier.
	Delivery *delivery.Hub
	// RouteDeliveries makes the entry node push each document's matches to
	// the subscribers' session owners (one msgDeliverBatch per distinct
	// owner) after the match set is deduplicated.
	RouteDeliveries bool
	// OnDeliveryLoss, if set, is invoked when routed notifications could
	// not reach a session owner (RPC failure, unroutable subscriber) — the
	// accounting hook that keeps delivery loss visible.
	OnDeliveryLoss func(docID uint64, subs []string)
	// OnTransfer, if set, is invoked once per document transfer attempt
	// (entry→home and home→grid-row). The cluster cost model uses it to
	// charge y_d with rack locality taken into account.
	OnTransfer func(from, to ring.NodeID)
	// Resilience, if set, applies retries with backoff and per-destination
	// circuit breaking to every outbound RPC; nil sends straight through
	// (single attempt, no breaker).
	Resilience *resilience.Executor
	// Metrics receives the node's failover counters (publish.failover,
	// publish.degraded) and per-stage latency histograms (publish.e2e,
	// publish.home, publish.fanout, publish.column.rpc, match.term, match.sift,
	// index.posting.read, index.eval); nil creates a private registry.
	Metrics *metrics.Registry
	// TraceDepth sizes the ring buffer of recent publish traces the node
	// keeps for the debug server's /trace/last; 0 means 64.
	TraceDepth int
}

// Node is one MOVE server.
type Node struct {
	cfg Config
	ix  *index.Index
	reg *metrics.Registry

	tr   transport.Transport
	trMu sync.RWMutex

	mu        sync.RWMutex
	grid      *alloc.Grid
	gridEpoch uint64
	// pending is the next epoch's grid, installed by the prepare phase of a
	// two-phase reallocation (§13). While pending is non-nil the node
	// dual-reads: publishes fan out to both grid and pending and union the
	// match sets, so no match is dropped whichever placement a filter is
	// physically on. Commit promotes pending to grid; abort drops it.
	pending      *alloc.Grid
	pendingEpoch uint64
	// dualSince marks when the current dual-read window opened.
	dualSince time.Time
	// termGrids maps specific terms to their own allocation grids — the
	// per-term variant of the forwarding table whose maintenance cost §V's
	// per-node aggregation avoids; kept for the ablation comparison.
	termGrids map[string]*alloc.Grid
	bloomF    *bloom.Filter
	rng       *rand.Rand

	// journal records, per prepare epoch, the filter IDs whose definitions
	// this node first stored for that epoch's migrations. An abort
	// unregisters exactly these — pre-existing copies (older placements,
	// home-owned filters) are never journaled and survive untouched.
	journalMu sync.Mutex
	journal   map[uint64]map[model.FilterID]struct{}

	// mail holds subscriber mailboxes for network-polling clients.
	mail *mailboxes

	// res, when non-nil, wraps outbound RPCs in retries and breakers.
	res *resilience.Executor

	// Counters for §V statistics and Figure 9 load accounting.
	docsProcessed   metrics.Counter
	termsMatched    metrics.Counter
	postingsScanned metrics.Counter
	postingLists    metrics.Counter
	homePublishes   metrics.Counter

	// Failure-handling observability (§VI.D): replica-row failovers and
	// degraded (partial-coverage) publishes.
	failoverC *metrics.Counter
	degradedC *metrics.Counter

	// Entry-side publish wire accounting: home-bound RPC frames sent and
	// their payload bytes — the numerators of movebench's home_rpcs_per_doc
	// and home_wire_bytes_per_doc regression figures.
	homeRPCs  *metrics.Counter
	homeBytes *metrics.Counter

	// Delivery-routing accounting (§14): owner-bound batch frames, the
	// subscriber notifications they carried, failed sends, and
	// notifications lost to failed sends.
	routeRPCs     *metrics.Counter
	routeSubs     *metrics.Counter
	routeFailures *metrics.Counter
	routeLost     *metrics.Counter

	// Per-stage latency histograms (§IV latency model, one per pipeline
	// stage) and the ring of recent publish traces.
	hE2E       *metrics.Histogram
	hHome      *metrics.Histogram
	hFanout    *metrics.Histogram
	hColumnRPC *metrics.Histogram
	hMatchTerm *metrics.Histogram
	hMatchSIFT *metrics.Histogram
	traces     *trace.Ring

	// Reallocation observability (§13): distinct filter copies installed by
	// migrations, commit/abort outcomes, the current committed epoch
	// (gauge), and the length of each dual-read window.
	migratedC *metrics.Counter
	commitsC  *metrics.Counter
	abortsC   *metrics.Counter
	epochG    *metrics.Counter
	hDualRead *metrics.Histogram

	// Aggregated-index observability (DESIGN.md §15): live covers, filters
	// attached to them, posting entries saved versus the flat layout, and
	// the mean cover→filter expansion fan-out (×1000). Refreshed from the
	// index's O(1) CoverStats after every filter mutation.
	coverCoversG  *metrics.Gauge
	coverFiltersG *metrics.Gauge
	coverSavedG   *metrics.Gauge
	coverFanoutG  *metrics.Gauge
}

// New builds a node. Call Attach to connect it to a transport before use.
func New(cfg Config) (*Node, error) {
	if cfg.ID == "" {
		return nil, errors.New("node: empty id")
	}
	if cfg.Ring == nil {
		return nil, errors.New("node: nil ring")
	}
	st := cfg.Store
	if st == nil {
		var err error
		st, err = store.Open("", store.Options{})
		if err != nil {
			return nil, err
		}
		cfg.Store = st
	}
	ix, err := index.New(st)
	if err != nil {
		return nil, fmt.Errorf("node %s: %w", cfg.ID, err)
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = int64(ring.HashKey(string(cfg.ID) + "/rng"))
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	ix.Instrument(reg)
	depth := cfg.TraceDepth
	if depth == 0 {
		depth = 64
	}
	n := &Node{
		cfg:           cfg,
		ix:            ix,
		reg:           reg,
		termGrids:     make(map[string]*alloc.Grid),
		journal:       make(map[uint64]map[model.FilterID]struct{}),
		mail:          newMailboxes(),
		rng:           rand.New(rand.NewSource(seed)),
		res:           cfg.Resilience,
		failoverC:     reg.Counter("publish.failover"),
		degradedC:     reg.Counter("publish.degraded"),
		homeRPCs:      reg.Counter("publish.home.rpcs"),
		homeBytes:     reg.Counter("publish.home.bytes"),
		routeRPCs:     reg.Counter("delivery.route.rpcs"),
		routeSubs:     reg.Counter("delivery.route.subs"),
		routeFailures: reg.Counter("delivery.route.failures"),
		routeLost:     reg.Counter("delivery.route.lost"),
		hE2E:          reg.Histogram("publish.e2e"),
		hHome:         reg.Histogram("publish.home"),
		hFanout:       reg.Histogram("publish.fanout"),
		hColumnRPC:    reg.Histogram("publish.column.rpc"),
		hMatchTerm:    reg.Histogram("match.term"),
		hMatchSIFT:    reg.Histogram("match.sift"),
		traces:        trace.NewRing(depth),
		migratedC:     reg.Counter("realloc.filters.migrated"),
		commitsC:      reg.Counter("realloc.commits"),
		abortsC:       reg.Counter("realloc.aborts"),
		epochG:        reg.Counter("realloc.epoch"),
		hDualRead:     reg.Histogram("realloc.dualread.window"),
		coverCoversG:  reg.Gauge("index.cover.covers"),
		coverFiltersG: reg.Gauge("index.cover.covered_filters"),
		coverSavedG:   reg.Gauge("index.cover.postings_saved"),
		coverFanoutG:  reg.Gauge("index.cover.expansion_fanout_milli"),
	}
	// Seed the cover gauges so a node whose index recovered filters from
	// the store reports its compression levels before any mutation.
	n.updateCoverGauges()
	return n, nil
}

// updateCoverGauges refreshes the index.cover.* gauges from the
// aggregated index's O(1) compression stats. Called after every filter
// mutation (register, unregister, migration replay); all gauges read zero
// on a flat index.
func (n *Node) updateCoverGauges() {
	cs := n.ix.CoverStats()
	n.coverCoversG.Set(int64(cs.Covers))
	n.coverFiltersG.Set(int64(cs.CoveredFilters))
	n.coverSavedG.Set(int64(cs.PostingsSaved))
	n.coverFanoutG.Set(int64(cs.ExpansionFanoutMilli))
}

// Traces exposes the node's ring of recent publish traces (the debug
// server's /trace/last source).
func (n *Node) Traces() *trace.Ring { return n.traces }

// Attach connects the node to its transport endpoint.
func (n *Node) Attach(tr transport.Transport) {
	n.trMu.Lock()
	defer n.trMu.Unlock()
	n.tr = tr
}

// ID returns the node's identity.
func (n *Node) ID() ring.NodeID { return n.cfg.ID }

// Rack returns the node's rack label.
func (n *Node) Rack() string { return n.cfg.Rack }

// Index exposes the local filter index (tests, load accounting).
func (n *Node) Index() *index.Index { return n.ix }

// send issues an RPC through the attached transport, applying the
// resilience policy (retries, backoff, per-destination breaker) when one
// is configured. A breaker-open fast-fail is surfaced as ErrNodeDown so
// callers treat it like any other unreachable peer.
func (n *Node) send(ctx context.Context, to ring.NodeID, payload []byte) ([]byte, error) {
	n.trMu.RLock()
	tr := n.tr
	n.trMu.RUnlock()
	if tr == nil {
		return nil, errors.New("node: transport not attached")
	}
	if to == n.cfg.ID {
		// Local fast path: skip the network for self-addressed requests.
		return n.Handle(ctx, n.cfg.ID, payload)
	}
	if n.res == nil {
		return tr.Send(ctx, to, payload)
	}
	raw, err := resilience.DoValue(n.res, ctx, string(to), func(ctx context.Context) ([]byte, error) {
		return tr.Send(ctx, to, payload)
	})
	if err != nil && errors.Is(err, resilience.ErrOpen) {
		err = fmt.Errorf("node %s: %s: %w: %w", n.cfg.ID, to, transport.ErrNodeDown, err)
	}
	return raw, err
}

// Handle is the node's transport handler: it dispatches on the message
// type byte.
func (n *Node) Handle(ctx context.Context, from ring.NodeID, payload []byte) ([]byte, error) {
	if len(payload) == 0 {
		return nil, errors.New("node: empty payload")
	}
	typ := payload[0]
	r := codec.NewReader(payload[1:])
	switch typ {
	case msgRegister:
		req, err := decodeRegister(r)
		if err != nil {
			return nil, fmt.Errorf("node %s: decode register: %w", n.cfg.ID, err)
		}
		return nil, n.handleRegister(ctx, req)
	case msgUnregister:
		id, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		if err := n.ix.Unregister(model.FilterID(id)); err != nil {
			return nil, err
		}
		n.updateCoverGauges()
		return nil, nil
	case msgPublish:
		req, err := decodePublish(r)
		if err != nil {
			return nil, fmt.Errorf("node %s: decode publish: %w", n.cfg.ID, err)
		}
		resp, err := n.handlePublish(ctx, req)
		if err != nil {
			return nil, err
		}
		return EncodeMatchResp(resp), nil
	case msgPublishLocal:
		req, err := decodePublish(r)
		if err != nil {
			return nil, fmt.Errorf("node %s: decode publish-local: %w", n.cfg.ID, err)
		}
		resp, err := n.matchLocal(&req.Doc, req.Term)
		if err != nil {
			return nil, err
		}
		return EncodeMatchResp(resp), nil
	case msgPublishBatch:
		reqs, err := decodePublishBatch(r)
		if err != nil {
			return nil, fmt.Errorf("node %s: decode publish-batch: %w", n.cfg.ID, err)
		}
		resps, err := n.handlePublishBatch(ctx, reqs)
		if err != nil {
			return nil, err
		}
		return EncodeMatchRespBatch(resps), nil
	case msgPublishLocalBatch:
		reqs, err := decodePublishBatch(r)
		if err != nil {
			return nil, fmt.Errorf("node %s: decode publish-local-batch: %w", n.cfg.ID, err)
		}
		resps := make([]MatchResp, len(reqs))
		for i := range reqs {
			resp, err := n.matchLocal(&reqs[i].Doc, reqs[i].Term)
			if err != nil {
				return nil, err
			}
			resps[i] = resp
		}
		return EncodeMatchRespBatch(resps), nil
	case msgPublishMulti:
		req, err := decodePublishMulti(r)
		if err != nil {
			return nil, fmt.Errorf("node %s: decode publish-multi: %w", n.cfg.ID, err)
		}
		resp, err := n.handlePublishMulti(ctx, req)
		if err != nil {
			return nil, err
		}
		return EncodeMatchResp(resp), nil
	case msgPublishLocalMulti:
		req, err := decodePublishMulti(r)
		if err != nil {
			return nil, fmt.Errorf("node %s: decode publish-local-multi: %w", n.cfg.ID, err)
		}
		resp, err := n.matchLocalTerms(&req.Doc, req.Terms)
		if err != nil {
			return nil, err
		}
		return EncodeMatchResp(resp), nil
	case msgPublishMultiBatch:
		reqs, err := decodePublishMultiBatch(r)
		if err != nil {
			return nil, fmt.Errorf("node %s: decode publish-multi-batch: %w", n.cfg.ID, err)
		}
		resps, err := n.handlePublishMultiBatch(ctx, reqs)
		if err != nil {
			return nil, err
		}
		return EncodeMatchRespBatch(resps), nil
	case msgPublishLocalMultiBatch:
		reqs, err := decodePublishMultiBatch(r)
		if err != nil {
			return nil, fmt.Errorf("node %s: decode publish-local-multi-batch: %w", n.cfg.ID, err)
		}
		resps := make([]MatchResp, len(reqs))
		for i := range reqs {
			resp, err := n.matchLocalTerms(&reqs[i].Doc, reqs[i].Terms)
			if err != nil {
				return nil, err
			}
			resps[i] = resp
		}
		return EncodeMatchRespBatch(resps), nil
	case msgPublishSIFT:
		doc, err := model.DecodeDocument(r)
		if err != nil {
			return nil, fmt.Errorf("node %s: decode sift: %w", n.cfg.ID, err)
		}
		resp, err := n.matchSIFT(&doc)
		if err != nil {
			return nil, err
		}
		return EncodeMatchResp(resp), nil
	case msgMigrate:
		req, err := decodeMigrate(r)
		if err != nil {
			return nil, fmt.Errorf("node %s: decode migrate: %w", n.cfg.ID, err)
		}
		return nil, n.handleMigrate(req)
	case msgStatsPull:
		return EncodeStatsResp(n.Stats()), nil
	case msgInstallGrid:
		epoch, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		gridBytes, err := r.Bytes0()
		if err != nil {
			return nil, err
		}
		g, err := alloc.DecodeGrid(gridBytes)
		if err != nil {
			return nil, fmt.Errorf("node %s: decode grid: %w", n.cfg.ID, err)
		}
		n.InstallGrid(epoch, g)
		return nil, nil
	case msgDropGrid:
		n.DropGrid()
		return nil, nil
	case msgAllocate:
		epoch, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		gridBytes, err := r.Bytes0()
		if err != nil {
			return nil, err
		}
		g, err := alloc.DecodeGrid(gridBytes)
		if err != nil {
			return nil, fmt.Errorf("node %s: decode allocation grid: %w", n.cfg.ID, err)
		}
		return nil, n.BuildAllocation(ctx, epoch, g)
	case msgAllocateTerm:
		epoch, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		term, err := r.String()
		if err != nil {
			return nil, err
		}
		gridBytes, err := r.Bytes0()
		if err != nil {
			return nil, err
		}
		g, err := alloc.DecodeGrid(gridBytes)
		if err != nil {
			return nil, fmt.Errorf("node %s: decode term grid: %w", n.cfg.ID, err)
		}
		return nil, n.BuildTermAllocation(ctx, epoch, term, g)
	case msgPrepareAlloc:
		epoch, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		gridBytes, err := r.Bytes0()
		if err != nil {
			return nil, err
		}
		g, err := alloc.DecodeGrid(gridBytes)
		if err != nil {
			return nil, fmt.Errorf("node %s: decode pending grid: %w", n.cfg.ID, err)
		}
		return nil, n.PrepareAllocation(ctx, epoch, g)
	case msgCommitGrid:
		epoch, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		n.CommitGrid(epoch)
		return nil, nil
	case msgAbortGrid:
		epoch, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		return nil, n.AbortGrid(epoch)
	case msgUnregisterBatch:
		ids, err := decodeUnregisterBatch(r)
		if err != nil {
			return nil, fmt.Errorf("node %s: decode unregister batch: %w", n.cfg.ID, err)
		}
		return nil, n.handleUnregisterBatch(ids)
	case msgInstallBloom:
		bloomBytes, err := r.Bytes0()
		if err != nil {
			return nil, err
		}
		bf, err := bloom.Unmarshal(bloomBytes)
		if err != nil {
			return nil, fmt.Errorf("node %s: decode bloom: %w", n.cfg.ID, err)
		}
		n.InstallBloom(bf)
		return nil, nil
	case msgDeliver:
		return nil, n.handleDeliver(r)
	case msgDeliverBatch:
		return nil, n.handleDeliverBatch(r)
	case msgFetch:
		return n.handleFetch(r)
	case msgGossip:
		if n.cfg.Gossip == nil {
			return nil, errors.New("node: gossip not enabled")
		}
		digest, err := r.Bytes0()
		if err != nil {
			return nil, err
		}
		return n.cfg.Gossip(from, digest)
	default:
		return nil, fmt.Errorf("node %s: unknown message type %d", n.cfg.ID, typ)
	}
}

// handleRegister stores a filter and its posting entries. When this home
// node's filters have been allocated, the new filter must also reach its
// grid column in every partition row — otherwise documents fanned out to
// the grid would miss filters registered after the allocation round.
func (n *Node) handleRegister(ctx context.Context, req RegisterReq) error {
	if err := n.ix.Register(req.Filter, req.PostingTerms); err != nil {
		return err
	}
	n.updateCoverGauges()
	n.mu.RLock()
	grid := n.grid
	pending, pendingEpoch := n.pending, n.pendingEpoch
	var termGrids []termGridRef
	for _, t := range req.PostingTerms {
		if g, ok := n.termGrids[t]; ok {
			termGrids = append(termGrids, termGridRef{term: t, grid: g})
		}
	}
	n.mu.RUnlock()

	if grid != nil {
		if err := n.forwardToGridColumn(ctx, grid, 0, RegisterReq{Filter: req.Filter, PostingTerms: req.PostingTerms}); err != nil {
			return err
		}
	}
	if pending != nil {
		// Mid-prepare registration: the copy on the pending placement is
		// tagged with the pending epoch so an abort unwinds it along with
		// the epoch's migrations.
		if err := n.forwardToGridColumn(ctx, pending, pendingEpoch, RegisterReq{Filter: req.Filter, PostingTerms: req.PostingTerms}); err != nil {
			return err
		}
	}
	for _, tg := range termGrids {
		if err := n.forwardToGridColumn(ctx, tg.grid, 0, RegisterReq{Filter: req.Filter, PostingTerms: []string{tg.term}}); err != nil {
			return err
		}
	}
	return nil
}

type termGridRef struct {
	term string
	grid *alloc.Grid
}

// forwardToGridColumn copies one registration onto its grid column across
// all partition rows. Every row is attempted even when one fails — a dead
// replica must not prevent the live rows from receiving the filter — and
// the per-row errors are aggregated.
func (n *Node) forwardToGridColumn(ctx context.Context, g *alloc.Grid, epoch uint64, req RegisterReq) error {
	col := g.Column(req.Filter.ID)
	pw := codec.GetWriter()
	AppendMigrate(pw, MigrateReq{Epoch: epoch, Entries: []RegisterReq{req}})
	payload := pw.Bytes()
	var errs []error
	for row := 0; row < g.Rows(); row++ {
		target := g.Node(row, col)
		if target == n.cfg.ID {
			continue
		}
		if _, err := n.send(ctx, target, payload); err != nil {
			errs = append(errs, fmt.Errorf("node %s: forward registration to grid node %s: %w", n.cfg.ID, target, err))
		}
	}
	codec.PutWriter(pw)
	return errors.Join(errs...)
}

// InstallGrid atomically replaces the node's allocation grid (§V forwarding
// table: one grid per node, all local terms map to it).
func (n *Node) InstallGrid(epoch uint64, g *alloc.Grid) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if epoch < n.gridEpoch {
		return // stale installation from an older allocation round
	}
	n.grid = g
	n.gridEpoch = epoch
}

// DropGrid clears the allocation grid — pending included, so a recovered
// node that slept through commits and GC stops trusting stale placements
// and matches from its complete local store until the next prepare.
func (n *Node) DropGrid() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.grid = nil
	n.pending = nil
	n.pendingEpoch = 0
}

// Grid returns the current grid (may be nil) and its epoch.
func (n *Node) Grid() (*alloc.Grid, uint64) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.grid, n.gridEpoch
}

// InstallBloom replaces the global filter-term Bloom filter.
func (n *Node) InstallBloom(bf *bloom.Filter) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.bloomF = bf
}

// handlePublish serves a term-routed document on its home node: match
// locally when unallocated, otherwise fan out to one grid partition. A
// term-specific grid (per-term allocation) takes precedence over the
// node-wide grid.
func (n *Node) handlePublish(ctx context.Context, req PublishReq) (MatchResp, error) {
	n.homePublishes.Inc()
	// The home-side handling gets its own trace and histogram: in a TCP
	// deployment the entry is an external client, so this is where the
	// server-side publish path starts and the only place its traces can be
	// recorded. The summary is built directly, aliasing resp.Hops — the
	// response is immutable once handed back for encoding — instead of
	// paying a span allocation and a hop copy per routed term.
	tm := n.hHome.Start()
	resp, err := n.homePublish(ctx, req)
	elapsed := tm.Stop()
	var hops []trace.Hop
	if err == nil {
		hops = resp.Hops
	}
	n.traces.Add(trace.Summarize("publish.home", req.Doc.ID, elapsed, hops))
	return resp, err
}

// homePublish matches a term-routed document: through the term's
// allocation grid when one is installed, locally otherwise. During a
// dual-read window (pending grid installed, node-wide routing only) the
// document additionally fans out to the pending placements and the match
// sets union — entry-side dedup removes the overlap, and extra posting
// entries can only produce true matches.
func (n *Node) homePublish(ctx context.Context, req PublishReq) (MatchResp, error) {
	n.mu.RLock()
	grid := n.termGrids[req.Term]
	var pending *alloc.Grid
	if grid == nil {
		grid = n.grid
		pending = n.pending
	}
	n.mu.RUnlock()

	var resp MatchResp
	var err error
	if grid == nil {
		resp, err = n.matchLocal(&req.Doc, req.Term)
		if err == nil {
			resp.Hops = append(resp.Hops, trace.Hop{
				Stage: "local", To: string(n.cfg.ID), Term: req.Term,
			})
		}
	} else {
		n.mu.Lock()
		first := grid.PickRow(req.Doc.ID, n.rng)
		n.mu.Unlock()
		// The frame is built in a pooled writer: fanOutRow's column RPCs all
		// finish before it returns, after which the buffer is dead and can be
		// recycled (transports do not retain payloads past Send — DESIGN.md §11).
		w := codec.GetWriter()
		AppendPublish(w, msgPublishLocal, req)
		resp, err = n.fanOutRow(ctx, grid, first, w.Bytes())
		codec.PutWriter(w)
	}
	if err != nil || pending == nil || pending == grid {
		return resp, err
	}

	// Dual-read: the committed path above is authoritative and complete, so
	// a failure on the pending side never degrades or fails the publish —
	// its results only add matches the committed placements may not hold yet.
	n.mu.Lock()
	pfirst := pending.PickRow(req.Doc.ID, n.rng)
	n.mu.Unlock()
	w := codec.GetWriter()
	AppendPublish(w, msgPublishLocal, req)
	presp, perr := n.fanOutRow(ctx, pending, pfirst, w.Bytes())
	codec.PutWriter(w)
	if perr == nil {
		presp.Degraded = false
		presp.ColumnsLost = 0
		markPendingHops(presp.Hops)
		mergeResp(&resp, presp)
	}
	return resp, nil
}

// markPendingHops tags every hop as taken against a pending grid, so
// traces show which edges belonged to the dual-read window.
func markPendingHops(hops []trace.Hop) {
	for i := range hops {
		hops[i].Pending = true
	}
}

// fanOutRow dispatches the document to the chosen partition row, one RPC
// per grid column in parallel. A column whose node is unreachable (after
// the transport's retry policy) fails over to the same column of the next
// row — every row holds a full replica of the unit's filter set, and
// column c of every row stores the same filter subset, so the re-route
// preserves the exact match set (§VI.D). A column with no live replica in
// any row is reported through Degraded/ColumnsLost instead of failing the
// whole publish.
func (n *Node) fanOutRow(ctx context.Context, grid *alloc.Grid, first int, payload []byte) (MatchResp, error) {
	rows, cols := grid.Rows(), grid.Cols()
	type colResult struct {
		resp MatchResp
		err  error // non-availability failure: fatal for the publish
		lost bool  // no row could serve this column
		hops []trace.Hop
	}
	results := make([]colResult, cols)
	var wg sync.WaitGroup
	for col := 0; col < cols; col++ {
		wg.Add(1)
		go func(col int) {
			defer wg.Done()
			var hops []trace.Hop
			for attempt := 0; attempt < rows; attempt++ {
				row := (first + attempt) % rows
				target := grid.Node(row, col)
				if n.cfg.OnTransfer != nil {
					n.cfg.OnTransfer(n.cfg.ID, target)
				}
				rpcStart := time.Now()
				raw, err := n.send(ctx, target, payload)
				elapsed := time.Since(rpcStart)
				n.hColumnRPC.Observe(elapsed)
				hop := trace.Hop{
					Stage: "column", From: string(n.cfg.ID), To: string(target),
					Row: row, Col: col, Attempt: attempt, Failover: attempt > 0,
					ElapsedNS: elapsed.Nanoseconds(),
				}
				if err == nil {
					resp, derr := DecodeMatchResp(raw)
					if derr != nil {
						results[col] = colResult{err: derr}
						return
					}
					if attempt > 0 {
						n.failoverC.Inc()
					}
					results[col] = colResult{resp: resp, hops: append(hops, hop)}
					return
				}
				hop.Err = err.Error()
				hops = append(hops, hop)
				if !transport.IsAvailabilityError(err) {
					results[col] = colResult{err: err}
					return
				}
			}
			hops = append(hops, trace.Hop{Stage: "column", From: string(n.cfg.ID), Col: col, Lost: true})
			results[col] = colResult{lost: true, hops: hops}
		}(col)
	}
	wg.Wait()

	var merged MatchResp
	for _, res := range results {
		if res.err != nil {
			return MatchResp{}, res.err
		}
		merged.Hops = append(merged.Hops, res.hops...)
		if res.lost {
			merged.Degraded = true
			merged.ColumnsLost++
			continue
		}
		merged.Matches = append(merged.Matches, res.resp.Matches...)
		merged.PostingsScanned += res.resp.PostingsScanned
		merged.PostingLists += res.resp.PostingLists
	}
	if merged.Degraded {
		n.degradedC.Inc()
	}
	return merged, nil
}

// handlePublishMulti serves one coalesced multi-term publish on the shared
// home node of its terms: every term is matched (locally or through its
// grid) off a single document decode, and the column RPCs behind the grids
// are deduplicated across terms. The trace/histogram treatment mirrors
// handlePublish.
func (n *Node) handlePublishMulti(ctx context.Context, req PublishMultiReq) (MatchResp, error) {
	// One frame is one document arrival: homePublishes is the numerator of
	// the §V node frequency q'_i, which counts documents the node receives,
	// not the terms they were routed under.
	n.homePublishes.Inc()
	tm := n.hHome.Start()
	resp, err := n.homePublishMulti(ctx, req)
	elapsed := tm.Stop()
	var hops []trace.Hop
	if err == nil {
		hops = resp.Hops
	}
	n.traces.Add(trace.Summarize("publish.home", req.Doc.ID, elapsed, hops))
	return resp, err
}

// gridGroup is the slice of one multi-term publish bound for a single
// allocation grid: the terms (in document order) whose effective grid it is.
// pending marks the dual-read group: the same terms fanned out a second
// time against the not-yet-committed grid, whose losses never degrade the
// publish (the committed path is authoritative).
type gridGroup struct {
	grid    *alloc.Grid
	terms   []string
	pending bool
}

// splitByGrid partitions a multi-term publish's terms by their effective
// allocation grid — per-term grids take precedence over the node-wide grid,
// exactly as in the single-term path. Terms with no grid match locally.
// During a dual-read window every node-wide-routed term additionally joins
// the pending grid's group.
func (n *Node) splitByGrid(terms []string) (local []string, groups []gridGroup) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	var idx map[*alloc.Grid]int
	add := func(g *alloc.Grid, t string, pending bool) {
		if idx == nil {
			idx = make(map[*alloc.Grid]int, 2)
		}
		i, ok := idx[g]
		if !ok {
			i = len(groups)
			idx[g] = i
			groups = append(groups, gridGroup{grid: g, pending: pending})
		}
		groups[i].terms = append(groups[i].terms, t)
	}
	for _, t := range terms {
		g := n.termGrids[t]
		nodeWide := g == nil
		if nodeWide {
			g = n.grid
		}
		if g == nil {
			local = append(local, t)
		} else {
			add(g, t, false)
		}
		if nodeWide && n.pending != nil && n.pending != g {
			add(n.pending, t, true)
		}
	}
	return local, groups
}

// homePublishMulti matches a multi-term-routed document: grid-less terms in
// one local MatchTerms pass, grid-routed terms through the deduplicated
// grid fan-out.
func (n *Node) homePublishMulti(ctx context.Context, req PublishMultiReq) (MatchResp, error) {
	local, groups := n.splitByGrid(req.Terms)
	var merged MatchResp
	if len(local) > 0 {
		resp, err := n.matchLocalTerms(&req.Doc, local)
		if err != nil {
			return MatchResp{}, err
		}
		for _, t := range local {
			resp.Hops = append(resp.Hops, trace.Hop{
				Stage: "local", To: string(n.cfg.ID), Term: t,
			})
		}
		merged = resp
	}
	if len(groups) > 0 {
		resp, err := n.multiFanOut(ctx, &req.Doc, groups)
		if err != nil {
			return MatchResp{}, err
		}
		mergeResp(&merged, resp)
	}
	return merged, nil
}

// mergeResp folds src into dst: matches concatenated (the entry node
// dedups), cost counters summed, degradation flags accumulated.
func mergeResp(dst *MatchResp, src MatchResp) {
	dst.Matches = append(dst.Matches, src.Matches...)
	dst.PostingsScanned += src.PostingsScanned
	dst.PostingLists += src.PostingLists
	dst.Degraded = dst.Degraded || src.Degraded
	dst.ColumnsLost += src.ColumnsLost
	dst.Hops = append(dst.Hops, src.Hops...)
}

// multiFanOut disseminates one document through the union of grid-row
// destinations across all of its terms' grids: each round, the still-open
// (grid, column) slots are grouped by the node currently serving them and
// every distinct node receives ONE msgPublishLocalMulti carrying all the
// terms routed through it — so k terms sharing the node-wide grid cost one
// RPC per column, not k. Failover stays per column (the whole slot moves to
// the same column of the next row, §VI.D) and regrouping each round keeps
// the dedup exact as slots drift across rows. A column no row can serve
// degrades once per term routed through it, matching what the per-term
// fan-out reports.
func (n *Node) multiFanOut(ctx context.Context, doc *model.Document, groups []gridGroup) (MatchResp, error) {
	// One partition row per grid, chosen once for all of the grid's terms
	// (the per-term path draws a row per term; any row serves the exact
	// match set, so one draw per grid is both cheaper and equivalent).
	firsts := make([]int, len(groups))
	n.mu.Lock()
	for i := range groups {
		firsts[i] = groups[i].grid.PickRow(doc.ID, n.rng)
	}
	n.mu.Unlock()

	// One slot per (grid, column); a slot is done when some row's node
	// served it or every row was exhausted (lost).
	type colSlot struct {
		group   int // index into groups
		col     int
		attempt int
		done    bool
		lost    bool
		hops    []trace.Hop
	}
	nCols := 0
	for i := range groups {
		nCols += groups[i].grid.Cols()
	}
	slots := make([]*colSlot, 0, nCols)
	for gi := range groups {
		for col := 0; col < groups[gi].grid.Cols(); col++ {
			slots = append(slots, &colSlot{group: gi, col: col})
		}
	}

	var merged MatchResp
	for {
		// Group the open slots by the node their current row assigns them —
		// the union of grid-row destinations across terms.
		targets := make(map[ring.NodeID][]*colSlot)
		var order []ring.NodeID
		for _, s := range slots {
			if s.done {
				continue
			}
			g := &groups[s.group]
			rows := g.grid.Rows()
			if s.attempt >= rows {
				// No live replica in any row: the column's filter slice is
				// unreachable for every term routed through it. Charge one
				// lost hop (and one ColumnsLost, below) per term — the same
				// accounting the per-term fan-out produces.
				s.done, s.lost = true, true
				for _, t := range g.terms {
					s.hops = append(s.hops, trace.Hop{
						Stage: "column", From: string(n.cfg.ID), Col: s.col, Term: t, Lost: true,
						Pending: g.pending,
					})
				}
				continue
			}
			target := g.grid.Node((firsts[s.group]+s.attempt)%rows, s.col)
			if _, ok := targets[target]; !ok {
				order = append(order, target)
			}
			targets[target] = append(targets[target], s)
		}
		if len(order) == 0 {
			break
		}
		type rpcResult struct {
			resp MatchResp
			ok   bool
			err  error // non-availability failure: fatal for the publish
		}
		results := make([]rpcResult, len(order))
		var wg sync.WaitGroup
		for ti := range order {
			wg.Add(1)
			go func(ti int, target ring.NodeID, ss []*colSlot) {
				defer wg.Done()
				// Union of the terms riding this RPC. A group contributes its
				// terms once even when several of its columns land on the same
				// node, and a term riding both a committed group and the
				// pending dual-read group is shipped once.
				var terms []string
				seenGroup := make(map[int]struct{}, len(ss))
				seenTerm := make(map[string]struct{}, 8)
				for _, s := range ss {
					if _, dup := seenGroup[s.group]; dup {
						continue
					}
					seenGroup[s.group] = struct{}{}
					for _, t := range groups[s.group].terms {
						if _, dup := seenTerm[t]; dup {
							continue
						}
						seenTerm[t] = struct{}{}
						terms = append(terms, t)
					}
				}
				if n.cfg.OnTransfer != nil {
					// One transfer per node: the document ships once however
					// many terms ride the frame.
					n.cfg.OnTransfer(n.cfg.ID, target)
				}
				pw := codec.GetWriter()
				AppendPublishMulti(pw, msgPublishLocalMulti, PublishMultiReq{Doc: *doc, Terms: terms})
				rpcStart := time.Now()
				raw, err := n.send(ctx, target, pw.Bytes())
				codec.PutWriter(pw)
				elapsed := time.Since(rpcStart)
				n.hColumnRPC.Observe(elapsed)
				if err == nil {
					resp, derr := DecodeMatchResp(raw)
					if derr != nil {
						results[ti] = rpcResult{err: derr}
						return
					}
					for _, s := range ss {
						rows := groups[s.group].grid.Rows()
						s.hops = append(s.hops, trace.Hop{
							Stage: "column", From: string(n.cfg.ID), To: string(target),
							Row: (firsts[s.group] + s.attempt) % rows, Col: s.col,
							Attempt: s.attempt, Failover: s.attempt > 0,
							Pending:   groups[s.group].pending,
							ElapsedNS: elapsed.Nanoseconds(),
						})
						if s.attempt > 0 {
							n.failoverC.Inc()
						}
						s.done = true
					}
					results[ti] = rpcResult{resp: resp, ok: true}
					return
				}
				for _, s := range ss {
					rows := groups[s.group].grid.Rows()
					s.hops = append(s.hops, trace.Hop{
						Stage: "column", From: string(n.cfg.ID), To: string(target),
						Row: (firsts[s.group] + s.attempt) % rows, Col: s.col,
						Attempt: s.attempt, Failover: s.attempt > 0,
						Pending: groups[s.group].pending,
						Err:     err.Error(), ElapsedNS: elapsed.Nanoseconds(),
					})
					s.attempt++
				}
				if !transport.IsAvailabilityError(err) {
					results[ti] = rpcResult{err: err}
				}
			}(ti, order[ti], targets[order[ti]])
		}
		wg.Wait()
		for ti := range results {
			if results[ti].err != nil {
				return MatchResp{}, results[ti].err
			}
			if results[ti].ok {
				// Each served node's response is folded in once; duplicate
				// matches across nodes are deduplicated at the entry.
				merged.Matches = append(merged.Matches, results[ti].resp.Matches...)
				merged.PostingsScanned += results[ti].resp.PostingsScanned
				merged.PostingLists += results[ti].resp.PostingLists
			}
		}
	}

	for _, s := range slots {
		merged.Hops = append(merged.Hops, s.hops...)
		// A lost pending-grid column never degrades the publish: the
		// committed placements served every term completely.
		if s.lost && !groups[s.group].pending {
			merged.Degraded = true
			merged.ColumnsLost += len(groups[s.group].terms)
		}
	}
	if merged.Degraded {
		n.degradedC.Inc()
	}
	return merged, nil
}

// handlePublishBatch serves a coalesced frame of term-routed documents on
// their shared home node. Items are grouped by their effective allocation
// grid (per-term grids take precedence, as in the single-document path):
// grid-less items are matched locally, and each grid group is fanned out
// as one frame per column via batchFanOutRow. Responses come back in
// request order.
func (n *Node) handlePublishBatch(ctx context.Context, reqs []PublishReq) ([]MatchResp, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	n.homePublishes.Add(int64(len(reqs)))
	sp := trace.New("publish.home.batch", reqs[0].Doc.ID)
	tm := n.hHome.Start()

	n.mu.RLock()
	pendingG := n.pending
	var local []int
	groups := make(map[*alloc.Grid][]int)
	var order []*alloc.Grid
	for i := range reqs {
		g := n.termGrids[reqs[i].Term]
		nodeWide := g == nil
		if nodeWide {
			g = n.grid
		}
		if g == nil {
			local = append(local, i)
		} else {
			if _, ok := groups[g]; !ok {
				order = append(order, g)
			}
			groups[g] = append(groups[g], i)
		}
		// Dual-read window: node-wide-routed items also fan out to the
		// pending grid; the entry dedups the unioned matches.
		if nodeWide && pendingG != nil && pendingG != g {
			if _, ok := groups[pendingG]; !ok {
				order = append(order, pendingG)
			}
			groups[pendingG] = append(groups[pendingG], i)
		}
	}
	n.mu.RUnlock()

	resps := make([]MatchResp, len(reqs))
	for _, i := range local {
		resp, err := n.matchLocal(&reqs[i].Doc, reqs[i].Term)
		if err != nil {
			return nil, err
		}
		resp.Hops = append(resp.Hops, trace.Hop{
			Stage: "local", To: string(n.cfg.ID), Term: reqs[i].Term, Batch: len(reqs),
		})
		resps[i] = resp
	}
	for _, g := range order {
		idx := groups[g]
		sub := make([]PublishReq, len(idx))
		for j, i := range idx {
			sub[j] = reqs[i]
		}
		out, err := n.batchFanOutRow(ctx, g, sub)
		if err != nil {
			if g == pendingG {
				continue // pending side is best-effort; committed results are complete
			}
			return nil, err
		}
		if g == pendingG {
			for j := range out {
				out[j].Degraded = false
				out[j].ColumnsLost = 0
				markPendingHops(out[j].Hops)
			}
		}
		for j, i := range idx {
			mergeResp(&resps[i], out[j])
		}
	}
	sp.AddStage("publish.home", tm.Stop())
	for i := range resps {
		sp.AddHops(resps[i].Hops)
	}
	sp.Finish()
	n.traces.Add(sp.Summary())
	return resps, nil
}

// batchFanOutRow is the batched counterpart of fanOutRow: one partition
// row is chosen for the whole batch, and every grid column receives the
// entire frame in a single RPC (the framing win the batch pipeline
// exists for). Failover is per column and moves the whole frame to the
// same column of the next row; a column no row can serve degrades every
// document in the batch. Per-batch column hops are attached to the first
// item's response only, so the wire cost of the trace stays O(columns),
// not O(columns × batch).
func (n *Node) batchFanOutRow(ctx context.Context, grid *alloc.Grid, reqs []PublishReq) ([]MatchResp, error) {
	n.mu.Lock()
	first := grid.PickRow(reqs[0].Doc.ID, n.rng)
	n.mu.Unlock()
	rows, cols := grid.Rows(), grid.Cols()
	// Pooled frame buffer, recycled after every column goroutine has
	// finished sending it (the wg.Wait below).
	pw := codec.GetWriter()
	AppendPublishBatch(pw, msgPublishLocalBatch, reqs)
	payload := pw.Bytes()
	type colResult struct {
		resps []MatchResp
		err   error // non-availability failure: fatal for the publish
		lost  bool  // no row could serve this column
		hops  []trace.Hop
	}
	results := make([]colResult, cols)
	var wg sync.WaitGroup
	for col := 0; col < cols; col++ {
		wg.Add(1)
		go func(col int) {
			defer wg.Done()
			var hops []trace.Hop
			for attempt := 0; attempt < rows; attempt++ {
				row := (first + attempt) % rows
				target := grid.Node(row, col)
				if n.cfg.OnTransfer != nil {
					// One transfer per document: the cost model charges y_d
					// per document shipped, batched or not.
					for range reqs {
						n.cfg.OnTransfer(n.cfg.ID, target)
					}
				}
				rpcStart := time.Now()
				raw, err := n.send(ctx, target, payload)
				elapsed := time.Since(rpcStart)
				n.hColumnRPC.Observe(elapsed)
				hop := trace.Hop{
					Stage: "column", From: string(n.cfg.ID), To: string(target),
					Row: row, Col: col, Attempt: attempt, Batch: len(reqs),
					Failover: attempt > 0, ElapsedNS: elapsed.Nanoseconds(),
				}
				if err == nil {
					resps, derr := DecodeMatchRespBatch(raw)
					if derr == nil && len(resps) != len(reqs) {
						derr = fmt.Errorf("node %s: batch response count %d != request count %d", n.cfg.ID, len(resps), len(reqs))
					}
					if derr != nil {
						results[col] = colResult{err: derr}
						return
					}
					if attempt > 0 {
						n.failoverC.Inc()
					}
					results[col] = colResult{resps: resps, hops: append(hops, hop)}
					return
				}
				hop.Err = err.Error()
				hops = append(hops, hop)
				if !transport.IsAvailabilityError(err) {
					results[col] = colResult{err: err}
					return
				}
			}
			hops = append(hops, trace.Hop{Stage: "column", From: string(n.cfg.ID), Col: col, Lost: true, Batch: len(reqs)})
			results[col] = colResult{lost: true, hops: hops}
		}(col)
	}
	wg.Wait()
	codec.PutWriter(pw)

	out := make([]MatchResp, len(reqs))
	degraded := false
	for c := range results {
		res := &results[c]
		if res.err != nil {
			return nil, res.err
		}
		out[0].Hops = append(out[0].Hops, res.hops...)
		if res.lost {
			degraded = true
			for i := range out {
				out[i].Degraded = true
				out[i].ColumnsLost++
			}
			continue
		}
		for i := range out {
			out[i].Matches = append(out[i].Matches, res.resps[i].Matches...)
			out[i].PostingsScanned += res.resps[i].PostingsScanned
			out[i].PostingLists += res.resps[i].PostingLists
			out[i].Degraded = out[i].Degraded || res.resps[i].Degraded
			out[i].ColumnsLost += res.resps[i].ColumnsLost
		}
	}
	if degraded {
		n.degradedC.Inc()
	}
	return out, nil
}

// handlePublishMultiBatch serves a coalesced frame of multi-term publishes
// — the Batcher's wire format, coalescing along both axes (documents ×
// destinations). Each item's terms are partitioned by effective grid as in
// the single-document multi path; grid-less slices match locally and every
// grid's slice fans out as one batch frame per column. Responses come back
// in item order, with an item's response merged across its grids.
func (n *Node) handlePublishMultiBatch(ctx context.Context, reqs []PublishMultiReq) ([]MatchResp, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	n.homePublishes.Add(int64(len(reqs)))
	sp := trace.New("publish.home.batch", reqs[0].Doc.ID)
	tm := n.hHome.Start()

	// subItem is one item's term slice bound for one destination class
	// (local or a specific grid).
	type subItem struct {
		item  int
		terms []string
	}
	var local []subItem
	groups := make(map[*alloc.Grid][]subItem)
	var order []*alloc.Grid
	n.mu.RLock()
	pendingG := n.pending
	for i := range reqs {
		var localTerms []string
		var itemGrids []*alloc.Grid
		var gridTerms map[*alloc.Grid][]string
		addGrid := func(g *alloc.Grid, t string) {
			if gridTerms == nil {
				gridTerms = make(map[*alloc.Grid][]string, 1)
			}
			if _, ok := gridTerms[g]; !ok {
				itemGrids = append(itemGrids, g)
			}
			gridTerms[g] = append(gridTerms[g], t)
		}
		for _, t := range reqs[i].Terms {
			g := n.termGrids[t]
			nodeWide := g == nil
			if nodeWide {
				g = n.grid
			}
			if g == nil {
				localTerms = append(localTerms, t)
			} else {
				addGrid(g, t)
			}
			// Dual-read window: node-wide-routed terms also ride the pending
			// grid's batch frame.
			if nodeWide && pendingG != nil && pendingG != g {
				addGrid(pendingG, t)
			}
		}
		if len(localTerms) > 0 {
			local = append(local, subItem{item: i, terms: localTerms})
		}
		for _, g := range itemGrids {
			if _, ok := groups[g]; !ok {
				order = append(order, g)
			}
			groups[g] = append(groups[g], subItem{item: i, terms: gridTerms[g]})
		}
	}
	n.mu.RUnlock()

	resps := make([]MatchResp, len(reqs))
	for _, s := range local {
		resp, err := n.matchLocalTerms(&reqs[s.item].Doc, s.terms)
		if err != nil {
			return nil, err
		}
		for _, t := range s.terms {
			resp.Hops = append(resp.Hops, trace.Hop{
				Stage: "local", To: string(n.cfg.ID), Term: t, Batch: len(reqs),
			})
		}
		mergeResp(&resps[s.item], resp)
	}
	for _, g := range order {
		subs := groups[g]
		sub := make([]PublishMultiReq, len(subs))
		for j, s := range subs {
			sub[j] = PublishMultiReq{Doc: reqs[s.item].Doc, Terms: s.terms}
		}
		out, err := n.batchMultiFanOutRow(ctx, g, sub)
		if err != nil {
			if g == pendingG {
				continue // pending side is best-effort; committed results are complete
			}
			return nil, err
		}
		if g == pendingG {
			for j := range out {
				out[j].Degraded = false
				out[j].ColumnsLost = 0
				markPendingHops(out[j].Hops)
			}
		}
		for j, s := range subs {
			mergeResp(&resps[s.item], out[j])
		}
	}
	sp.AddStage("publish.home", tm.Stop())
	for i := range resps {
		sp.AddHops(resps[i].Hops)
	}
	sp.Finish()
	n.traces.Add(sp.Summary())
	return resps, nil
}

// batchMultiFanOutRow is batchFanOutRow for multi-term items: one partition
// row for the whole batch, one msgPublishLocalMultiBatch frame per grid
// column, per-column whole-frame failover to the next row. A lost column
// degrades each item once per term it carried. Per-batch column hops are
// attached to the first item's response only, keeping the trace's wire cost
// O(columns).
func (n *Node) batchMultiFanOutRow(ctx context.Context, grid *alloc.Grid, reqs []PublishMultiReq) ([]MatchResp, error) {
	n.mu.Lock()
	first := grid.PickRow(reqs[0].Doc.ID, n.rng)
	n.mu.Unlock()
	rows, cols := grid.Rows(), grid.Cols()
	// Pooled frame buffer, recycled after every column goroutine has
	// finished sending it (the wg.Wait below).
	pw := codec.GetWriter()
	AppendPublishMultiBatch(pw, msgPublishLocalMultiBatch, reqs)
	payload := pw.Bytes()
	type colResult struct {
		resps []MatchResp
		err   error // non-availability failure: fatal for the publish
		lost  bool  // no row could serve this column
		hops  []trace.Hop
	}
	results := make([]colResult, cols)
	var wg sync.WaitGroup
	for col := 0; col < cols; col++ {
		wg.Add(1)
		go func(col int) {
			defer wg.Done()
			var hops []trace.Hop
			for attempt := 0; attempt < rows; attempt++ {
				row := (first + attempt) % rows
				target := grid.Node(row, col)
				if n.cfg.OnTransfer != nil {
					// One transfer per document: the cost model charges y_d
					// per document shipped, batched or not.
					for range reqs {
						n.cfg.OnTransfer(n.cfg.ID, target)
					}
				}
				rpcStart := time.Now()
				raw, err := n.send(ctx, target, payload)
				elapsed := time.Since(rpcStart)
				n.hColumnRPC.Observe(elapsed)
				hop := trace.Hop{
					Stage: "column", From: string(n.cfg.ID), To: string(target),
					Row: row, Col: col, Attempt: attempt, Batch: len(reqs),
					Failover: attempt > 0, ElapsedNS: elapsed.Nanoseconds(),
				}
				if err == nil {
					resps, derr := DecodeMatchRespBatch(raw)
					if derr == nil && len(resps) != len(reqs) {
						derr = fmt.Errorf("node %s: multi-batch response count %d != request count %d", n.cfg.ID, len(resps), len(reqs))
					}
					if derr != nil {
						results[col] = colResult{err: derr}
						return
					}
					if attempt > 0 {
						n.failoverC.Inc()
					}
					results[col] = colResult{resps: resps, hops: append(hops, hop)}
					return
				}
				hop.Err = err.Error()
				hops = append(hops, hop)
				if !transport.IsAvailabilityError(err) {
					results[col] = colResult{err: err}
					return
				}
			}
			hops = append(hops, trace.Hop{Stage: "column", From: string(n.cfg.ID), Col: col, Lost: true, Batch: len(reqs)})
			results[col] = colResult{lost: true, hops: hops}
		}(col)
	}
	wg.Wait()
	codec.PutWriter(pw)

	out := make([]MatchResp, len(reqs))
	degraded := false
	for c := range results {
		res := &results[c]
		if res.err != nil {
			return nil, res.err
		}
		out[0].Hops = append(out[0].Hops, res.hops...)
		if res.lost {
			degraded = true
			for i := range out {
				out[i].Degraded = true
				out[i].ColumnsLost += len(reqs[i].Terms)
			}
			continue
		}
		for i := range out {
			out[i].Matches = append(out[i].Matches, res.resps[i].Matches...)
			out[i].PostingsScanned += res.resps[i].PostingsScanned
			out[i].PostingLists += res.resps[i].PostingLists
			out[i].Degraded = out[i].Degraded || res.resps[i].Degraded
			out[i].ColumnsLost += res.resps[i].ColumnsLost
		}
	}
	if degraded {
		n.degradedC.Inc()
	}
	return out, nil
}

// matchLocal runs the single-posting-list matcher and accounts the work.
func (n *Node) matchLocal(doc *model.Document, term string) (MatchResp, error) {
	n.docsProcessed.Inc()
	n.termsMatched.Inc()
	n.ix.ObserveDocument(doc)
	tm := n.hMatchTerm.Start()
	matched, st, err := n.ix.MatchTerm(doc, term)
	tm.Stop()
	if err != nil {
		return MatchResp{}, err
	}
	n.postingsScanned.Add(int64(st.Postings))
	n.postingLists.Add(int64(st.PostingLists))
	return toResp(matched, st), nil
}

// matchLocalTerms runs the multi-term matcher over one decoded document and
// accounts the work. One frame is one document arrival, so DocsProcessed
// and the corpus observation are charged once however many terms it
// carries (the per-term path charged one per routed term — an artifact of
// its framing, not of the workload). TermsMatched charges one per term so
// the matching-cost figure stays comparable across framings.
func (n *Node) matchLocalTerms(doc *model.Document, terms []string) (MatchResp, error) {
	n.docsProcessed.Inc()
	n.termsMatched.Add(int64(len(terms)))
	n.ix.ObserveDocument(doc)
	tm := n.hMatchTerm.Start()
	matched, st, err := n.ix.MatchTerms(doc, terms)
	tm.Stop()
	if err != nil {
		return MatchResp{}, err
	}
	n.postingsScanned.Add(int64(st.Postings))
	n.postingLists.Add(int64(st.PostingLists))
	return toResp(matched, st), nil
}

// matchSIFT runs the full SIFT matcher (RS baseline path).
func (n *Node) matchSIFT(doc *model.Document) (MatchResp, error) {
	n.docsProcessed.Inc()
	n.termsMatched.Add(int64(len(doc.Terms)))
	n.ix.ObserveDocument(doc)
	tm := n.hMatchSIFT.Start()
	matched, st, err := n.ix.MatchSIFT(doc)
	tm.Stop()
	if err != nil {
		return MatchResp{}, err
	}
	n.postingsScanned.Add(int64(st.Postings))
	n.postingLists.Add(int64(st.PostingLists))
	return toResp(matched, st), nil
}

func toResp(matched []model.Filter, st index.MatchStats) MatchResp {
	resp := MatchResp{
		Matches:         make([]Match, 0, len(matched)),
		PostingsScanned: st.Postings,
		PostingLists:    st.PostingLists,
	}
	for _, f := range matched {
		resp.Matches = append(resp.Matches, Match{Filter: f.ID, Subscriber: f.Subscriber})
	}
	return resp
}

// matchSeenPool recycles the per-publish match dedup map. Maps are
// returned cleared so the pool retains bucket storage, not data.
var matchSeenPool = sync.Pool{
	New: func() any { return make(map[model.FilterID]struct{}, 64) },
}

// bloomPassTerms returns the subset of terms passing the Bloom gate. When
// the filter is nil — or every term passes, the common case once filters
// cover the corpus — the input slice is aliased instead of copied, so the
// all-pass publish path allocates nothing here; callers must treat the
// result as read-only. On the first miss the passing prefix is copied and
// the remainder filtered.
func bloomPassTerms(bf *bloom.Filter, terms []string) []string {
	if bf == nil {
		return terms
	}
	for i, t := range terms {
		if bf.Contains(t) {
			continue
		}
		out := make([]string, i, len(terms)-1)
		copy(out, terms[:i])
		for _, u := range terms[i+1:] {
			if bf.Contains(u) {
				out = append(out, u)
			}
		}
		return out
	}
	return terms
}

// homeGroup is one distinct home node's slice of a document's fan-out: the
// terms that hash to it, in document order.
type homeGroup struct {
	home  ring.NodeID
	terms []string
}

// groupTermsByHome resolves the home node of every term and groups the
// terms by home in first-appearance order. Every ring lookup happens before
// any frame is built or goroutine spawned, so a lookup failure aborts the
// publish cleanly — no goroutine can outlive the caller and no pooled
// buffer leaks (the bug the old mid-loop return had).
func (n *Node) groupTermsByHome(terms []string) ([]homeGroup, error) {
	groups := make([]homeGroup, 0, 8)
	idx := make(map[ring.NodeID]int, 8)
	for _, t := range terms {
		home, err := n.cfg.Ring.HomeNode(t)
		if err != nil {
			return nil, fmt.Errorf("node %s: home of %q: %w", n.cfg.ID, t, err)
		}
		i, ok := idx[home]
		if !ok {
			i = len(groups)
			idx[home] = i
			groups = append(groups, homeGroup{home: home})
		}
		groups[i].terms = append(groups[i].terms, t)
	}
	return groups, nil
}

// perTermGroups is the uncoalesced grouping: one single-term group per
// term, with homes still resolved upfront (same leak-free ordering).
func (n *Node) perTermGroups(terms []string) ([]homeGroup, error) {
	groups := make([]homeGroup, 0, len(terms))
	for i, t := range terms {
		home, err := n.cfg.Ring.HomeNode(t)
		if err != nil {
			return nil, fmt.Errorf("node %s: home of %q: %w", n.cfg.ID, t, err)
		}
		groups = append(groups, homeGroup{home: home, terms: terms[i : i+1 : i+1]})
	}
	return groups, nil
}

// PublishEntry is the client-facing dissemination entry point (§V
// "Document Dissemination"): group the document's Bloom-passing terms by
// home node, forward the document — in parallel, ONE RPC per distinct home
// node carrying that node's whole term list — and merge the matches.
// Returns the deduplicated matches and the total matching cost.
//
// The publish is traced: a trace.Span on the context (or a private one when
// the caller attached none) records one "home" hop per fanned-out term
// (terms coalesced into one frame share the RPC's elapsed time) plus the
// grid hops each home node reports back, and the finished span lands in the
// node's trace ring for the debug server.
func (n *Node) PublishEntry(ctx context.Context, doc *model.Document) ([]Match, MatchResp, error) {
	return n.publishEntry(ctx, doc, true)
}

// PublishEntryPerTerm is the uncoalesced §V fan-out: one msgPublish RPC per
// Bloom-passing term, each re-shipping the document. Kept as the reference
// oracle for the coalesced path (equivalence tests, RPC-count ablations);
// production callers use PublishEntry.
func (n *Node) PublishEntryPerTerm(ctx context.Context, doc *model.Document) ([]Match, MatchResp, error) {
	return n.publishEntry(ctx, doc, false)
}

func (n *Node) publishEntry(ctx context.Context, doc *model.Document, coalesce bool) ([]Match, MatchResp, error) {
	if err := doc.Validate(); err != nil {
		return nil, MatchResp{}, err
	}
	sp := trace.From(ctx)
	if sp == nil {
		sp = trace.New("publish", doc.ID)
	}
	e2e := n.hE2E.Start()
	defer func() {
		sp.AddStage("publish.e2e", e2e.Stop())
		sp.Finish()
		n.traces.Add(sp.Summary())
	}()

	n.mu.RLock()
	bf := n.bloomF
	n.mu.RUnlock()
	terms := bloomPassTerms(bf, doc.Terms)
	if len(terms) == 0 {
		return nil, MatchResp{}, nil
	}

	var groups []homeGroup
	var err error
	if coalesce {
		groups, err = n.groupTermsByHome(terms)
	} else {
		groups, err = n.perTermGroups(terms)
	}
	if err != nil {
		return nil, MatchResp{}, err
	}
	results := n.fanOutHomes(ctx, doc, groups, coalesce)

	// Merge in group order with exactly-sized hop buffers: one "home" hop
	// per fanned-out term plus the grid hops each home node reported back.
	// The span receives the whole merged path in a single AddHops instead
	// of per-goroutine appends — one copy, no append-doubling.
	nHops, nMatches, nHome := 0, 0, 0
	for i := range results {
		nHome += len(results[i].homeHops)
		if results[i].err == nil {
			nHops += len(results[i].resp.Hops)
			nMatches += len(results[i].resp.Matches)
		}
	}
	var total MatchResp
	var errs []error
	total.Hops = make([]trace.Hop, 0, nHops)
	spanHops := make([]trace.Hop, 0, nHops+nHome)
	seen := matchSeenPool.Get().(map[model.FilterID]struct{})
	matches := make([]Match, 0, nMatches)
	for i := range results {
		res := &results[i]
		spanHops = append(spanHops, res.homeHops...)
		if res.err != nil {
			errs = append(errs, res.err)
			continue
		}
		total.PostingsScanned += res.resp.PostingsScanned
		total.PostingLists += res.resp.PostingLists
		total.Degraded = total.Degraded || res.resp.Degraded
		total.ColumnsLost += res.resp.ColumnsLost
		total.Hops = append(total.Hops, res.resp.Hops...)
		spanHops = append(spanHops, res.resp.Hops...)
		for _, m := range res.resp.Matches {
			if _, dup := seen[m.Filter]; dup {
				continue
			}
			seen[m.Filter] = struct{}{}
			matches = append(matches, m)
		}
	}
	clear(seen)
	matchSeenPool.Put(seen)
	sp.AddHops(spanHops)
	if len(matches) == 0 {
		matches = nil
	}
	if n.cfg.OnDeliver != nil && len(matches) > 0 {
		n.cfg.OnDeliver(doc, matches)
	}
	if n.cfg.RouteDeliveries && len(matches) > 0 {
		n.routeDeliveries(ctx, doc, matches)
	}
	// Partial failure: report what matched alongside the aggregated
	// per-home errors so the caller can account availability (Fig. 9 c–d).
	return matches, total, errors.Join(errs...)
}

// entryResult is one home-node RPC's outcome: its response, one "home"
// trace hop per term the frame carried, and the RPC error if any.
type entryResult struct {
	resp     MatchResp
	homeHops []trace.Hop
	err      error
}

// fanOutHomes sends one frame per home group in parallel — a multi-term
// msgPublishMulti when coalescing, the legacy per-term msgPublish otherwise
// — and collects the per-group results. ALL frames are built (in pooled
// writers) before the first goroutine spawns; each goroutine recycles its
// frame as soon as the send returns (the transport neither retains the
// payload nor aliases its response to it — DESIGN.md §11).
func (n *Node) fanOutHomes(ctx context.Context, doc *model.Document, groups []homeGroup, coalesce bool) []entryResult {
	results := make([]entryResult, len(groups))
	frames := make([]*codec.Writer, len(groups))
	for i := range groups {
		pw := codec.GetWriter()
		if coalesce {
			AppendPublishMulti(pw, msgPublishMulti, PublishMultiReq{Doc: *doc, Terms: groups[i].terms})
		} else {
			AppendPublish(pw, msgPublish, PublishReq{Doc: *doc, Term: groups[i].terms[0]})
		}
		frames[i] = pw
		n.homeRPCs.Inc()
		n.homeBytes.Add(int64(len(pw.Bytes())))
		if n.cfg.OnTransfer != nil {
			// One transfer per home RPC: the document ships once per frame.
			n.cfg.OnTransfer(n.cfg.ID, groups[i].home)
		}
	}
	var wg sync.WaitGroup
	for i := range groups {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g := &groups[i]
			pw := frames[i]
			rpcStart := time.Now()
			raw, err := n.send(ctx, g.home, pw.Bytes())
			codec.PutWriter(pw)
			var resp MatchResp
			if err == nil {
				resp, err = DecodeMatchResp(raw)
			}
			elapsed := time.Since(rpcStart)
			n.hFanout.Observe(elapsed)
			res := entryResult{resp: resp, err: err}
			res.homeHops = make([]trace.Hop, len(g.terms))
			for j, t := range g.terms {
				h := trace.Hop{
					Stage: "home", From: string(n.cfg.ID), To: string(g.home),
					Term: t, ElapsedNS: elapsed.Nanoseconds(),
				}
				if err != nil {
					h.Err = err.Error()
				}
				res.homeHops[j] = h
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	return results
}

// migrateBatch caps the number of filters per msgMigrate frame.
const migrateBatch = 512

// BuildAllocation executes one allocation round on this home node (§V):
// every locally registered filter for which this node is the home of at
// least one of its terms is copied to its grid column (the same subset
// index in every partition row), then the grid is installed so subsequent
// documents fan out to one partition.
func (n *Node) BuildAllocation(ctx context.Context, epoch uint64, g *alloc.Grid) error {
	batches, err := n.homeOwnedBatches(g)
	if err != nil {
		return err
	}
	if err := n.sendMigrations(ctx, epoch, batches); err != nil {
		return err
	}
	n.InstallGrid(epoch, g)
	return nil
}

// homeOwnedBatches scans the local filter store for filters this node is
// the home of (at least one term hashes here) and groups the copies each
// grid target must receive — the migration work list shared by the hard
// flip (BuildAllocation) and the two-phase prepare (PrepareAllocation).
func (n *Node) homeOwnedBatches(g *alloc.Grid) (map[ring.NodeID][]RegisterReq, error) {
	batches := make(map[ring.NodeID][]RegisterReq)
	var iterErr error
	err := n.ix.EachFilter(func(f model.Filter) bool {
		var owned []string
		for _, t := range f.Terms {
			home, err := n.cfg.Ring.HomeNode(t)
			if err != nil {
				iterErr = err
				return false
			}
			if home == n.cfg.ID {
				owned = append(owned, t)
			}
		}
		if len(owned) == 0 {
			// A replica migrated here by another home node; not ours to
			// re-allocate.
			return true
		}
		col := g.Column(f.ID)
		entry := RegisterReq{Filter: f, PostingTerms: owned}
		for row := 0; row < g.Rows(); row++ {
			target := g.Node(row, col)
			if target == n.cfg.ID {
				continue // already stored locally
			}
			batches[target] = append(batches[target], entry)
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	if iterErr != nil {
		return nil, iterErr
	}
	return batches, nil
}

// sendMigrations ships batched filter copies, charging one transfer per
// copy so the passive-policy cost (§V: migration "further aggravates the
// workload of the home node") is visible to the cost model. One dead
// target does not abort the other targets' migrations; the per-target
// errors are aggregated.
func (n *Node) sendMigrations(ctx context.Context, epoch uint64, batches map[ring.NodeID][]RegisterReq) error {
	var errs []error
	for target, entries := range batches {
		if n.cfg.OnTransfer != nil {
			for range entries {
				n.cfg.OnTransfer(n.cfg.ID, target)
			}
		}
		pw := codec.GetWriter()
		for start := 0; start < len(entries); start += migrateBatch {
			end := start + migrateBatch
			if end > len(entries) {
				end = len(entries)
			}
			pw.Reset()
			AppendMigrate(pw, MigrateReq{Epoch: epoch, Entries: entries[start:end]})
			if _, err := n.send(ctx, target, pw.Bytes()); err != nil {
				errs = append(errs, fmt.Errorf("node %s: migrate to %s: %w", n.cfg.ID, target, err))
				break // the target is unreachable; skip its remaining batches
			}
		}
		codec.PutWriter(pw)
	}
	return errors.Join(errs...)
}

// InstallTermGrid installs a grid for one specific term.
func (n *Node) InstallTermGrid(term string, g *alloc.Grid) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if g == nil {
		delete(n.termGrids, term)
		return
	}
	n.termGrids[term] = g
}

// TermGridCount returns the number of installed per-term grids — the
// forwarding-table size §V's aggregation keeps at one.
func (n *Node) TermGridCount() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return len(n.termGrids)
}

// BuildTermAllocation migrates the filters on one term's posting list to
// the grid columns and installs the per-term grid — the ablation
// counterpart of BuildAllocation.
func (n *Node) BuildTermAllocation(ctx context.Context, epoch uint64, term string, g *alloc.Grid) error {
	ids, err := n.ix.PostingIDs(term)
	if err != nil {
		return err
	}
	batches := make(map[ring.NodeID][]RegisterReq)
	for _, id := range ids {
		f, ok, err := n.ix.GetFilter(id)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		col := g.Column(f.ID)
		entry := RegisterReq{Filter: f, PostingTerms: []string{term}}
		for row := 0; row < g.Rows(); row++ {
			target := g.Node(row, col)
			if target == n.cfg.ID {
				continue
			}
			batches[target] = append(batches[target], entry)
		}
	}
	if err := n.sendMigrations(ctx, epoch, batches); err != nil {
		return err
	}
	n.InstallTermGrid(term, g)
	return nil
}

// Stats snapshots the node's counters.
func (n *Node) Stats() StatsResp {
	n.updateCoverGauges()
	return StatsResp{
		Filters:         int64(n.ix.NumFilters()),
		Postings:        int64(n.ix.NumPostings()),
		DocsProcessed:   n.docsProcessed.Value(),
		TermsMatched:    n.termsMatched.Value(),
		PostingsScanned: n.postingsScanned.Value(),
		PostingLists:    n.postingLists.Value(),
		HomePublishes:   n.homePublishes.Value(),
	}
}

// ResetWindowCounters zeroes the windowed statistics (the §V "every 10
// minutes, the values of q_i are renewed" refresh).
func (n *Node) ResetWindowCounters() {
	n.homePublishes.Reset()
}
