package node

import (
	"context"
	"errors"
	"reflect"
	"sort"
	"strconv"
	"testing"

	"github.com/movesys/move/internal/alloc"
	"github.com/movesys/move/internal/bloom"
	"github.com/movesys/move/internal/model"
	"github.com/movesys/move/internal/ring"
	"github.com/movesys/move/internal/transport"
)

// harness wires n nodes over a shared ring and in-memory network.
type harness struct {
	net   *transport.Network
	ring  *ring.Ring
	nodes []*Node
}

func newHarness(t testing.TB, n int) *harness {
	t.Helper()
	h := &harness{
		net:  transport.NewNetwork(transport.NetworkConfig{}),
		ring: ring.New(ring.Config{}),
	}
	for i := 0; i < n; i++ {
		id := ring.NodeID("n" + strconv.Itoa(i))
		if err := h.ring.Add(ring.Member{ID: id, Rack: "r" + strconv.Itoa(i%3)}); err != nil {
			t.Fatal(err)
		}
		nd, err := New(Config{ID: id, Rack: "r" + strconv.Itoa(i%3), Ring: h.ring, Seed: int64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		tr := h.net.Join(id, nd.Handle)
		nd.Attach(tr)
		h.nodes = append(h.nodes, nd)
	}
	return h
}

// registerEverywhere registers a filter on the home nodes of its terms, as
// the cluster layer would.
func (h *harness) registerEverywhere(t testing.TB, f model.Filter) {
	t.Helper()
	byHome := make(map[ring.NodeID][]string)
	for _, term := range f.Terms {
		home, err := h.ring.HomeNode(term)
		if err != nil {
			t.Fatal(err)
		}
		byHome[home] = append(byHome[home], term)
	}
	for home, terms := range byHome {
		payload := EncodeRegister(RegisterReq{Filter: f, PostingTerms: terms})
		if _, err := h.nodeByID(home).Handle(context.Background(), "test", payload); err != nil {
			t.Fatal(err)
		}
	}
}

func (h *harness) nodeByID(id ring.NodeID) *Node {
	for _, nd := range h.nodes {
		if nd.ID() == id {
			return nd
		}
	}
	return nil
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("expected error for empty config")
	}
	if _, err := New(Config{ID: "x"}); err == nil {
		t.Fatal("expected error for nil ring")
	}
}

func TestHandleRejectsGarbage(t *testing.T) {
	h := newHarness(t, 2)
	nd := h.nodes[0]
	if _, err := nd.Handle(context.Background(), "peer", nil); err == nil {
		t.Fatal("empty payload accepted")
	}
	if _, err := nd.Handle(context.Background(), "peer", []byte{99}); err == nil {
		t.Fatal("unknown type accepted")
	}
	if _, err := nd.Handle(context.Background(), "peer", []byte{msgRegister, 0xFF}); err == nil {
		t.Fatal("corrupt register accepted")
	}
	if _, err := nd.Handle(context.Background(), "peer", []byte{msgGossip, 1, 0}); err == nil {
		t.Fatal("gossip without handler accepted")
	}
}

func TestPublishEntryEndToEnd(t *testing.T) {
	h := newHarness(t, 5)
	h.registerEverywhere(t, model.Filter{ID: 1, Subscriber: "alice", Terms: []string{"go", "cluster"}, Mode: model.MatchAny})
	h.registerEverywhere(t, model.Filter{ID: 2, Subscriber: "bob", Terms: []string{"rust"}, Mode: model.MatchAny})

	doc := &model.Document{ID: 1, Terms: []string{"cluster", "systems"}}
	matches, total, err := h.nodes[0].PublishEntry(context.Background(), doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 || matches[0].Filter != 1 || matches[0].Subscriber != "alice" {
		t.Fatalf("matches = %+v", matches)
	}
	if total.PostingLists == 0 {
		t.Fatal("no posting lists accounted")
	}
}

func TestPublishEntryDeduplicatesAcrossTerms(t *testing.T) {
	h := newHarness(t, 5)
	// Filter shares two terms with the document; both home nodes report it;
	// the entry node must return it once.
	h.registerEverywhere(t, model.Filter{ID: 7, Subscriber: "x", Terms: []string{"alpha", "beta"}, Mode: model.MatchAny})
	doc := &model.Document{ID: 1, Terms: []string{"alpha", "beta"}}
	matches, _, err := h.nodes[1].PublishEntry(context.Background(), doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 {
		t.Fatalf("matches = %+v, want single deduplicated hit", matches)
	}
}

func TestPublishEntryValidatesDoc(t *testing.T) {
	h := newHarness(t, 2)
	if _, _, err := h.nodes[0].PublishEntry(context.Background(), &model.Document{ID: 1}); !errors.Is(err, model.ErrNoTerms) {
		t.Fatalf("err = %v", err)
	}
}

func TestBloomGateSkipsNonFilterTerms(t *testing.T) {
	h := newHarness(t, 4)
	h.registerEverywhere(t, model.Filter{ID: 1, Subscriber: "a", Terms: []string{"indexed"}, Mode: model.MatchAny})
	bf := bloom.MustNew(128, 0.01)
	bf.Add("indexed")
	for _, nd := range h.nodes {
		nd.InstallBloom(bf)
	}
	doc := &model.Document{ID: 1, Terms: []string{"indexed", "junk1", "junk2"}}
	matches, total, err := h.nodes[0].PublishEntry(context.Background(), doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 {
		t.Fatalf("matches = %v", matches)
	}
	// Only the indexed term should have been routed: one posting list.
	if total.PostingLists != 1 {
		t.Fatalf("posting lists = %d, want 1 (bloom should prune junk terms)", total.PostingLists)
	}
}

func TestGridFanOutMatchesAllSubsets(t *testing.T) {
	h := newHarness(t, 6)
	home, err := h.ring.HomeNode("hot")
	if err != nil {
		t.Fatal(err)
	}
	homeNode := h.nodeByID(home)

	// Register 40 filters on the home node.
	for i := 1; i <= 40; i++ {
		f := model.Filter{ID: model.FilterID(i), Subscriber: "s" + strconv.Itoa(i), Terms: []string{"hot"}, Mode: model.MatchAny}
		payload := EncodeRegister(RegisterReq{Filter: f, PostingTerms: []string{"hot"}})
		if _, err := homeNode.Handle(context.Background(), "test", payload); err != nil {
			t.Fatal(err)
		}
	}
	// Build a 2x2 grid from other nodes and allocate.
	var peers []ring.NodeID
	for _, nd := range h.nodes {
		if nd.ID() != home {
			peers = append(peers, nd.ID())
		}
	}
	grid, err := alloc.NewGrid(2, 2, peers[:4])
	if err != nil {
		t.Fatal(err)
	}
	if err := homeNode.BuildAllocation(context.Background(), 1, grid); err != nil {
		t.Fatal(err)
	}
	if g, epoch := homeNode.Grid(); g == nil || epoch != 1 {
		t.Fatal("grid not installed")
	}

	// Publish through an entry node: matches must be complete (40 hits).
	doc := &model.Document{ID: 9, Terms: []string{"hot"}}
	matches, _, err := h.nodes[0].PublishEntry(context.Background(), doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 40 {
		t.Fatalf("matches = %d, want 40", len(matches))
	}
	ids := make([]int, len(matches))
	for i, m := range matches {
		ids[i] = int(m.Filter)
	}
	sort.Ints(ids)
	for i, id := range ids {
		if id != i+1 {
			t.Fatalf("missing filter %d in grid fan-out", i+1)
		}
	}
}

func TestGridFailoverToReplicaRow(t *testing.T) {
	h := newHarness(t, 6)
	home, err := h.ring.HomeNode("hot")
	if err != nil {
		t.Fatal(err)
	}
	homeNode := h.nodeByID(home)
	for i := 1; i <= 10; i++ {
		f := model.Filter{ID: model.FilterID(i), Subscriber: "s", Terms: []string{"hot"}, Mode: model.MatchAny}
		payload := EncodeRegister(RegisterReq{Filter: f, PostingTerms: []string{"hot"}})
		if _, err := homeNode.Handle(context.Background(), "test", payload); err != nil {
			t.Fatal(err)
		}
	}
	var peers []ring.NodeID
	for _, nd := range h.nodes {
		if nd.ID() != home {
			peers = append(peers, nd.ID())
		}
	}
	grid, err := alloc.NewGrid(2, 2, peers[:4])
	if err != nil {
		t.Fatal(err)
	}
	if err := homeNode.BuildAllocation(context.Background(), 1, grid); err != nil {
		t.Fatal(err)
	}

	// Kill all of row 0; the fan-out must fail over to row 1.
	for _, id := range grid.RowNodes(0) {
		h.net.Fail(id)
	}
	doc := &model.Document{ID: 5, Terms: []string{"hot"}}
	matches, total, err := h.nodes[0].PublishEntry(context.Background(), doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 10 {
		t.Fatalf("matches = %d, want 10 after failover", len(matches))
	}
	if total.Degraded || total.ColumnsLost != 0 {
		t.Fatalf("failover result degraded=%v lost=%d, want full coverage", total.Degraded, total.ColumnsLost)
	}

	// Kill row 1 as well: with no live replica in any row the publish
	// reports the lost columns instead of failing outright.
	for _, id := range grid.RowNodes(1) {
		h.net.Fail(id)
	}
	matches, total, err = h.nodes[0].PublishEntry(context.Background(), &model.Document{ID: 6, Terms: []string{"hot"}})
	if err != nil {
		t.Fatalf("all-rows-down publish = %v, want degraded result instead of error", err)
	}
	if !total.Degraded || total.ColumnsLost != 2 {
		t.Fatalf("degraded=%v lost=%d, want degraded with 2 lost columns", total.Degraded, total.ColumnsLost)
	}
	if len(matches) != 0 {
		t.Fatalf("matches = %d with every grid replica down, want 0", len(matches))
	}
}

func TestInstallGridEpochOrdering(t *testing.T) {
	h := newHarness(t, 4)
	nd := h.nodes[0]
	g1, err := alloc.NewGrid(1, 2, []ring.NodeID{"n1", "n2"})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := alloc.NewGrid(2, 1, []ring.NodeID{"n1", "n2"})
	if err != nil {
		t.Fatal(err)
	}
	nd.InstallGrid(5, g1)
	nd.InstallGrid(3, g2) // stale epoch must be ignored
	g, epoch := nd.Grid()
	if epoch != 5 || g.Cols() != 2 {
		t.Fatalf("grid = %dx%d at epoch %d, want the epoch-5 grid", g.Rows(), g.Cols(), epoch)
	}
	nd.DropGrid()
	if g, _ := nd.Grid(); g != nil {
		t.Fatal("DropGrid did not clear")
	}
}

func TestStatsCounters(t *testing.T) {
	h := newHarness(t, 3)
	h.registerEverywhere(t, model.Filter{ID: 1, Subscriber: "a", Terms: []string{"x", "y"}, Mode: model.MatchAny})
	doc := &model.Document{ID: 1, Terms: []string{"x"}}
	if _, _, err := h.nodes[0].PublishEntry(context.Background(), doc); err != nil {
		t.Fatal(err)
	}
	home, err := h.ring.HomeNode("x")
	if err != nil {
		t.Fatal(err)
	}
	st := h.nodeByID(home).Stats()
	if st.HomePublishes != 1 {
		t.Fatalf("HomePublishes = %d, want 1", st.HomePublishes)
	}
	if st.DocsProcessed != 1 || st.PostingsScanned != 1 {
		t.Fatalf("stats = %+v", st)
	}
	h.nodeByID(home).ResetWindowCounters()
	if st := h.nodeByID(home).Stats(); st.HomePublishes != 0 {
		t.Fatalf("HomePublishes after reset = %d", st.HomePublishes)
	}
}

func TestStatsRPCRoundTrip(t *testing.T) {
	h := newHarness(t, 2)
	h.registerEverywhere(t, model.Filter{ID: 1, Subscriber: "a", Terms: []string{"x"}, Mode: model.MatchAny})
	raw, err := h.nodes[0].Handle(context.Background(), "coord", EncodeStatsPull())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeStatsResp(raw); err != nil {
		t.Fatal(err)
	}
}

func TestUnregisterRPC(t *testing.T) {
	h := newHarness(t, 2)
	f := model.Filter{ID: 3, Subscriber: "a", Terms: []string{"solo"}, Mode: model.MatchAny}
	h.registerEverywhere(t, f)
	home, err := h.ring.HomeNode("solo")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.nodeByID(home).Handle(context.Background(), "coord", EncodeUnregister(3)); err != nil {
		t.Fatal(err)
	}
	doc := &model.Document{ID: 1, Terms: []string{"solo"}}
	matches, _, err := h.nodes[0].PublishEntry(context.Background(), doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 0 {
		t.Fatalf("matches after unregister = %v", matches)
	}
}

func TestMatchRespRoundTrip(t *testing.T) {
	resp := MatchResp{
		Matches:         []Match{{Filter: 1, Subscriber: "a"}, {Filter: 900, Subscriber: "b"}},
		PostingsScanned: 42,
		PostingLists:    3,
	}
	got, err := DecodeMatchResp(EncodeMatchResp(resp))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, resp) {
		t.Fatalf("round trip: %+v != %+v", got, resp)
	}
	if _, err := DecodeMatchResp([]byte{0xFF}); err == nil {
		t.Fatal("corrupt resp accepted")
	}
}

func TestMigrateRPCRoundTrip(t *testing.T) {
	h := newHarness(t, 2)
	req := MigrateReq{
		Epoch: 4,
		Entries: []RegisterReq{
			{Filter: model.Filter{ID: 1, Subscriber: "a", Terms: []string{"t"}, Mode: model.MatchAny}, PostingTerms: []string{"t"}},
			{Filter: model.Filter{ID: 2, Subscriber: "b", Terms: []string{"t", "u"}, Mode: model.MatchAny}, PostingTerms: []string{"u"}},
		},
	}
	if _, err := h.nodes[1].Handle(context.Background(), "peer", EncodeMigrate(req)); err != nil {
		t.Fatal(err)
	}
	if n := h.nodes[1].Index().NumFilters(); n != 2 {
		t.Fatalf("filters after migrate = %d, want 2", n)
	}
}
