package node

import (
	"context"
	"testing"

	"github.com/movesys/move/internal/model"
	"github.com/movesys/move/internal/ring"
	"github.com/movesys/move/internal/store"
	"github.com/movesys/move/internal/transport"
)

// TestNodeRestartRecoversFilters exercises the restart path of a node with
// a persistent store: after a rebuild from the same data directory, the
// filters, posting lists, and load-accounting counters are all back.
func TestNodeRestartRecoversFilters(t *testing.T) {
	dir := t.TempDir()
	r := ring.New(ring.Config{})
	if err := r.Add(ring.Member{ID: "solo", Rack: "r0"}); err != nil {
		t.Fatal(err)
	}
	net := transport.NewNetwork(transport.NetworkConfig{})

	boot := func() *Node {
		t.Helper()
		st, err := store.Open(dir, store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		nd, err := New(Config{ID: "solo", Rack: "r0", Ring: r, Store: st})
		if err != nil {
			t.Fatal(err)
		}
		tr := net.Join("solo", nd.Handle)
		nd.Attach(tr)
		return nd
	}

	nd := boot()
	ctx := context.Background()
	for i := 1; i <= 25; i++ {
		f := model.Filter{ID: model.FilterID(i), Subscriber: "s", Terms: []string{"alerts", "extra"}, Mode: model.MatchAny}
		payload := EncodeRegister(RegisterReq{Filter: f, PostingTerms: []string{"alerts"}})
		if _, err := nd.Handle(ctx, "client", payload); err != nil {
			t.Fatal(err)
		}
	}
	// Flush the memtable to disk, as a clean shutdown would.
	if err := flushStore(nd); err != nil {
		t.Fatal(err)
	}

	// "Restart": rebuild everything from the same directory.
	nd2 := boot()
	if got := nd2.Index().NumFilters(); got != 25 {
		t.Fatalf("recovered NumFilters = %d, want 25", got)
	}
	if got := nd2.Index().NumPostings(); got != 25 {
		t.Fatalf("recovered NumPostings = %d, want 25", got)
	}
	doc := &model.Document{ID: 9, Terms: []string{"alerts"}}
	matches, _, err := nd2.PublishEntry(ctx, doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 25 {
		t.Fatalf("matches after restart = %d, want 25", len(matches))
	}
}

// flushStore flushes the node's store via its config reference.
func flushStore(n *Node) error {
	return n.cfg.Store.FlushAll()
}
