package codec

import (
	"math"
	"strings"
	"testing"
)

// FuzzCodecRoundTrip checks the two properties every wire frame in the
// system rests on: decode(encode(x)) == x for any value of every primitive,
// and decoding arbitrary bytes never panics — it returns ErrTruncated /
// ErrOverflow instead (a malformed RPC must not take down a node).
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add(uint64(0), "", "", []byte(nil), 0.0, false)
	f.Add(uint64(1<<63), "hello", "a,b,c", []byte{0x00, 0xff}, math.Pi, true)
	f.Add(uint64(300), "breaking news", "hot,", []byte("go test fuzz"), math.Inf(-1), false)
	f.Add(uint64(math.MaxUint64), strings.Repeat("x", 300), ",,", []byte{0xfe, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}, math.NaN(), true)

	f.Fuzz(func(t *testing.T, u uint64, s, csv string, raw []byte, fl float64, b bool) {
		ss := strings.Split(csv, ",")

		w := NewWriter(0)
		w.Uvarint(u)
		w.Uint8(uint8(u))
		w.Bool(b)
		w.Float64(fl)
		w.String(s)
		w.StringSlice(ss)
		w.Bytes0(raw)
		if w.Len() != len(w.Bytes()) {
			t.Fatalf("Len() = %d, len(Bytes()) = %d", w.Len(), len(w.Bytes()))
		}

		r := NewReader(w.Bytes())
		gotU, err := r.Uvarint()
		if err != nil || gotU != u {
			t.Fatalf("Uvarint: %d, %v (want %d)", gotU, err, u)
		}
		gotU8, err := r.Uint8()
		if err != nil || gotU8 != uint8(u) {
			t.Fatalf("Uint8: %d, %v (want %d)", gotU8, err, uint8(u))
		}
		gotB, err := r.Bool()
		if err != nil || gotB != b {
			t.Fatalf("Bool: %v, %v (want %v)", gotB, err, b)
		}
		gotF, err := r.Float64()
		// Bit-pattern equality so NaN round-trips count as equal.
		if err != nil || math.Float64bits(gotF) != math.Float64bits(fl) {
			t.Fatalf("Float64: %v, %v (want %v)", gotF, err, fl)
		}
		gotS, err := r.String()
		if err != nil || gotS != s {
			t.Fatalf("String: %q, %v (want %q)", gotS, err, s)
		}
		gotSS, err := r.StringSlice()
		if err != nil || len(gotSS) != len(ss) {
			t.Fatalf("StringSlice: %v, %v (want %v)", gotSS, err, ss)
		}
		for i := range ss {
			if gotSS[i] != ss[i] {
				t.Fatalf("StringSlice[%d]: %q, want %q", i, gotSS[i], ss[i])
			}
		}
		gotRaw, err := r.Bytes0()
		if err != nil || string(gotRaw) != string(raw) {
			t.Fatalf("Bytes0: %v, %v (want %v)", gotRaw, err, raw)
		}
		if r.Remaining() != 0 {
			t.Fatalf("%d bytes left after decoding everything written", r.Remaining())
		}

		// Decode-never-panics: run every decoder over the raw fuzz bytes
		// from every starting offset. Errors are expected; panics are bugs.
		for off := 0; off < len(raw) && off < 32; off++ {
			decodeAll(NewReader(raw[off:]))
		}
		// ... and over a truncated prefix of a valid frame, which is the
		// wire shape a torn TCP read actually produces.
		valid := w.Bytes()
		for cut := 0; cut < len(valid) && cut < 64; cut++ {
			decodeAll(NewReader(valid[:cut]))
		}
	})
}

// decodeAll drives every Reader method until the first error, discarding
// results: the property under test is "no panic, no infinite loop".
func decodeAll(r *Reader) {
	for r.Remaining() > 0 {
		before := r.Remaining()
		if _, err := r.Uvarint(); err != nil {
			break
		}
		if _, err := r.String(); err != nil {
			break
		}
		if _, err := r.StringSlice(); err != nil {
			break
		}
		if _, err := r.Bytes0(); err != nil {
			break
		}
		if _, err := r.Float64(); err != nil {
			break
		}
		if _, err := r.Bool(); err != nil {
			break
		}
		if r.Remaining() >= before {
			panic("codec: Reader made no progress")
		}
	}
}
