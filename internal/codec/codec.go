// Package codec implements the deterministic binary wire format shared by
// the transport layer and the message types of the MOVE cluster protocol.
// It avoids reflection on the hot path (every published document crosses
// the wire once per forwarded term), using length-prefixed primitives over
// a growable buffer.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
)

// Writer appends primitives to a byte buffer.
type Writer struct {
	buf []byte
}

// NewWriter returns a writer with the given initial capacity.
func NewWriter(capacity int) *Writer {
	return &Writer{buf: make([]byte, 0, capacity)}
}

// Reset truncates the writer to zero length, keeping the backing array for
// reuse.
func (w *Writer) Reset() { w.buf = w.buf[:0] }

// maxPooledWriterCap bounds the backing arrays the writer pool retains. A
// rare giant frame (a huge batch, a full Bloom exchange) should not pin
// megabytes inside the pool forever; oversized writers are dropped on Put
// and rebuilt on demand.
const maxPooledWriterCap = 1 << 20

// writerPool recycles Writers across RPC encodes. Steady-state frames are
// built in a warm backing array instead of a fresh allocation per message.
var writerPool = sync.Pool{
	New: func() any { return NewWriter(256) },
}

// GetWriter returns an empty pooled writer. Callers must not retain the
// writer — or any slice obtained from Bytes — after PutWriter: the buffer
// is recycled for the next frame. Copy (or send) the bytes first.
func GetWriter() *Writer {
	w := writerPool.Get().(*Writer)
	w.Reset()
	return w
}

// PutWriter recycles a writer obtained from GetWriter. Safe to call with
// nil; writers that grew beyond maxPooledWriterCap are dropped.
func PutWriter(w *Writer) {
	if w == nil || cap(w.buf) > maxPooledWriterCap {
		return
	}
	writerPool.Put(w)
}

// Bytes returns the encoded buffer. The returned slice aliases the writer's
// internal buffer; callers must not retain it across further writes (or,
// for pooled writers, past PutWriter).
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of encoded bytes.
func (w *Writer) Len() int { return len(w.buf) }

// Uvarint appends an unsigned varint.
func (w *Writer) Uvarint(v uint64) {
	w.buf = binary.AppendUvarint(w.buf, v)
}

// Uint8 appends one byte.
func (w *Writer) Uint8(v uint8) {
	w.buf = append(w.buf, v)
}

// Bool appends a boolean as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

// Float64 appends an IEEE-754 double.
func (w *Writer) Float64(v float64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(v))
}

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.Uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// StringSlice appends a length-prefixed slice of strings.
func (w *Writer) StringSlice(ss []string) {
	w.Uvarint(uint64(len(ss)))
	for _, s := range ss {
		w.String(s)
	}
}

// Bytes0 appends a length-prefixed byte slice.
func (w *Writer) Bytes0(b []byte) {
	w.Uvarint(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// ErrTruncated reports a read past the end of the buffer.
var ErrTruncated = errors.New("codec: truncated input")

// ErrOverflow reports a length prefix larger than the remaining input.
var ErrOverflow = errors.New("codec: length prefix exceeds input")

// Reader consumes primitives from a byte buffer.
type Reader struct {
	buf []byte
	off int
}

// NewReader wraps data for reading. The reader does not copy data.
func NewReader(data []byte) *Reader {
	return &Reader{buf: data}
}

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("codec: uvarint at offset %d: %w", r.off, ErrTruncated)
	}
	r.off += n
	return v, nil
}

// Uint8 reads one byte.
func (r *Reader) Uint8() (uint8, error) {
	if r.Remaining() < 1 {
		return 0, ErrTruncated
	}
	v := r.buf[r.off]
	r.off++
	return v, nil
}

// Bool reads a boolean.
func (r *Reader) Bool() (bool, error) {
	b, err := r.Uint8()
	if err != nil {
		return false, err
	}
	return b != 0, nil
}

// Float64 reads an IEEE-754 double.
func (r *Reader) Float64() (float64, error) {
	if r.Remaining() < 8 {
		return 0, ErrTruncated
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return math.Float64frombits(v), nil
}

// String reads a length-prefixed string.
func (r *Reader) String() (string, error) {
	n, err := r.Uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(r.Remaining()) {
		return "", fmt.Errorf("codec: string of %d bytes: %w", n, ErrOverflow)
	}
	s := string(r.buf[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}

// StringSlice reads a length-prefixed slice of strings.
func (r *Reader) StringSlice() ([]string, error) {
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(r.Remaining()) {
		// Each element takes at least one byte (its length prefix).
		return nil, fmt.Errorf("codec: %d strings in %d bytes: %w", n, r.Remaining(), ErrOverflow)
	}
	out := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		s, err := r.String()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// Bytes0 reads a length-prefixed byte slice. The result aliases the input
// buffer.
func (r *Reader) Bytes0() ([]byte, error) {
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(r.Remaining()) {
		return nil, fmt.Errorf("codec: bytes of %d: %w", n, ErrOverflow)
	}
	b := r.buf[r.off : r.off+int(n)]
	r.off += int(n)
	return b, nil
}
