package codec

import (
	"errors"
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func TestRoundTripPrimitives(t *testing.T) {
	w := NewWriter(64)
	w.Uvarint(0)
	w.Uvarint(300)
	w.Uvarint(math.MaxUint64)
	w.Uint8(7)
	w.Bool(true)
	w.Bool(false)
	w.Float64(3.14159)
	w.String("")
	w.String("breaking news")
	w.StringSlice([]string{"a", "bb", "ccc"})
	w.StringSlice(nil)
	w.Bytes0([]byte{1, 2, 3})

	r := NewReader(w.Bytes())
	checkUvarint(t, r, 0)
	checkUvarint(t, r, 300)
	checkUvarint(t, r, math.MaxUint64)
	if v, err := r.Uint8(); err != nil || v != 7 {
		t.Fatalf("Uint8 = %v, %v", v, err)
	}
	if v, err := r.Bool(); err != nil || !v {
		t.Fatalf("Bool = %v, %v", v, err)
	}
	if v, err := r.Bool(); err != nil || v {
		t.Fatalf("Bool = %v, %v", v, err)
	}
	if v, err := r.Float64(); err != nil || v != 3.14159 {
		t.Fatalf("Float64 = %v, %v", v, err)
	}
	if s, err := r.String(); err != nil || s != "" {
		t.Fatalf("String = %q, %v", s, err)
	}
	if s, err := r.String(); err != nil || s != "breaking news" {
		t.Fatalf("String = %q, %v", s, err)
	}
	if ss, err := r.StringSlice(); err != nil || !reflect.DeepEqual(ss, []string{"a", "bb", "ccc"}) {
		t.Fatalf("StringSlice = %v, %v", ss, err)
	}
	if ss, err := r.StringSlice(); err != nil || len(ss) != 0 {
		t.Fatalf("empty StringSlice = %v, %v", ss, err)
	}
	if b, err := r.Bytes0(); err != nil || !reflect.DeepEqual(b, []byte{1, 2, 3}) {
		t.Fatalf("Bytes0 = %v, %v", b, err)
	}
	if r.Remaining() != 0 {
		t.Fatalf("Remaining = %d, want 0", r.Remaining())
	}
}

func checkUvarint(t *testing.T, r *Reader, want uint64) {
	t.Helper()
	v, err := r.Uvarint()
	if err != nil {
		t.Fatal(err)
	}
	if v != want {
		t.Fatalf("Uvarint = %d, want %d", v, want)
	}
}

func TestTruncatedReads(t *testing.T) {
	r := NewReader(nil)
	if _, err := r.Uvarint(); !errors.Is(err, ErrTruncated) {
		t.Fatalf("Uvarint on empty: %v", err)
	}
	if _, err := r.Uint8(); !errors.Is(err, ErrTruncated) {
		t.Fatalf("Uint8 on empty: %v", err)
	}
	if _, err := r.Bool(); !errors.Is(err, ErrTruncated) {
		t.Fatalf("Bool on empty: %v", err)
	}
	if _, err := r.Float64(); !errors.Is(err, ErrTruncated) {
		t.Fatalf("Float64 on empty: %v", err)
	}
}

func TestOverflowLengthPrefix(t *testing.T) {
	w := NewWriter(8)
	w.Uvarint(1000) // claims 1000 bytes follow
	r := NewReader(w.Bytes())
	if _, err := r.String(); !errors.Is(err, ErrOverflow) {
		t.Fatalf("String overflow: %v", err)
	}
	r = NewReader(w.Bytes())
	if _, err := r.Bytes0(); !errors.Is(err, ErrOverflow) {
		t.Fatalf("Bytes0 overflow: %v", err)
	}
	r = NewReader(w.Bytes())
	if _, err := r.StringSlice(); !errors.Is(err, ErrOverflow) {
		t.Fatalf("StringSlice overflow: %v", err)
	}
}

// TestStringSliceHugeCountDoesNotAllocate guards against a hostile count
// prefix causing a giant allocation before any data is validated.
func TestStringSliceHugeCountDoesNotAllocate(t *testing.T) {
	w := NewWriter(16)
	w.Uvarint(math.MaxUint32)
	r := NewReader(w.Bytes())
	if _, err := r.StringSlice(); err == nil {
		t.Fatal("expected error for absurd element count")
	}
}

func TestRoundTripProperty(t *testing.T) {
	prop := func(u uint64, f float64, s string, ss []string, b []byte, flag bool) bool {
		if math.IsNaN(f) {
			f = 0 // NaN != NaN would fail the comparison, not the codec
		}
		w := NewWriter(32)
		w.Uvarint(u)
		w.Float64(f)
		w.String(s)
		w.StringSlice(ss)
		w.Bytes0(b)
		w.Bool(flag)

		r := NewReader(w.Bytes())
		u2, err := r.Uvarint()
		if err != nil || u2 != u {
			return false
		}
		f2, err := r.Float64()
		if err != nil || f2 != f {
			return false
		}
		s2, err := r.String()
		if err != nil || s2 != s {
			return false
		}
		ss2, err := r.StringSlice()
		if err != nil || len(ss2) != len(ss) {
			return false
		}
		for i := range ss {
			if ss[i] != ss2[i] {
				return false
			}
		}
		b2, err := r.Bytes0()
		if err != nil || len(b2) != len(b) {
			return false
		}
		for i := range b {
			if b[i] != b2[i] {
				return false
			}
		}
		flag2, err := r.Bool()
		return err == nil && flag2 == flag && r.Remaining() == 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
