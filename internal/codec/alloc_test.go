package codec

import (
	"testing"

	"github.com/movesys/move/internal/testutil"
)

// TestPooledWriterZeroAllocs guards the pooled encode path: once the pool
// is warm, building a frame in a recycled writer allocates nothing.
func TestPooledWriterZeroAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are not stable under the race detector")
	}
	payload := make([]byte, 512)
	allocs := testing.AllocsPerRun(500, func() {
		w := GetWriter()
		w.Uvarint(42)
		w.String("publish")
		w.Bytes0(payload)
		if w.Len() == 0 {
			t.Fatal("empty frame")
		}
		PutWriter(w)
	})
	if allocs != 0 {
		t.Fatalf("pooled encode: %.1f allocs/op, want 0", allocs)
	}
}

// TestPooledWriterRoundTripAllocs encodes into a pooled writer and decodes
// the frame back out with the alias-only reader primitives. The reader is
// stack-allocated and Bytes0 aliases, so the round trip is allocation-free.
func TestPooledWriterRoundTripAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are not stable under the race detector")
	}
	payload := make([]byte, 256)
	for i := range payload {
		payload[i] = byte(i)
	}
	allocs := testing.AllocsPerRun(500, func() {
		w := GetWriter()
		w.Uvarint(7)
		w.Bytes0(payload)
		r := NewReader(w.Bytes())
		id, err := r.Uvarint()
		if err != nil || id != 7 {
			t.Fatalf("id=%d err=%v", id, err)
		}
		body, err := r.Bytes0()
		if err != nil || len(body) != len(payload) {
			t.Fatalf("body=%d err=%v", len(body), err)
		}
		PutWriter(w)
	})
	if allocs != 0 {
		t.Fatalf("pooled round trip: %.1f allocs/op, want 0", allocs)
	}
}

// TestPutWriterDropsOversized checks the pool never retains giant frames.
func TestPutWriterDropsOversized(t *testing.T) {
	w := GetWriter()
	w.Bytes0(make([]byte, maxPooledWriterCap+1))
	PutWriter(w) // must not panic, must not pool
	PutWriter(nil)
	got := GetWriter()
	if cap(got.buf) > maxPooledWriterCap {
		t.Fatalf("pool retained oversized writer: cap=%d", cap(got.buf))
	}
	PutWriter(got)
}
