// Package ring implements the consistent-hash ring substrate underneath
// MOVE — the placement layer of the Dynamo/Cassandra-style key/value
// platform the paper builds on. It provides virtual-node token placement,
// the home-node mapping (the node responsible for a term, §II "Key/value
// platforms"), successor walks, rack topology, and the three replica /
// allocation placement strategies compared in Figure 9(c–d): ring
// successors, rack-aware, and the MOVE hybrid (half successors, half
// rack-local).
package ring

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
)

// NodeID identifies a physical node in the cluster.
type NodeID string

// Placement selects how the nodes hosting replicated/allocated data are
// chosen relative to a home node.
type Placement int

// Placement strategies (§V "Selection of allocated nodes").
const (
	// PlacementRing walks the ring successors of the home node.
	PlacementRing Placement = iota + 1
	// PlacementRack prefers nodes in the home node's rack.
	PlacementRack
	// PlacementHybrid takes half from successors and half from the rack,
	// the MOVE default.
	PlacementHybrid
)

// String returns the strategy name.
func (p Placement) String() string {
	switch p {
	case PlacementRing:
		return "ring"
	case PlacementRack:
		return "rack"
	case PlacementHybrid:
		return "hybrid"
	default:
		return "placement(" + strconv.Itoa(int(p)) + ")"
	}
}

// Member describes a node's position in the topology.
type Member struct {
	ID   NodeID
	Rack string
}

// Ring is a consistent-hash ring with virtual nodes. All methods are safe
// for concurrent use; membership changes take the write lock.
type Ring struct {
	mu       sync.RWMutex
	vnodes   int
	tokens   []uint64          // sorted token ring
	owner    map[uint64]NodeID // token -> node
	members  map[NodeID]Member
	rackOf   map[NodeID]string
	byRack   map[string][]NodeID // deterministic (sorted) per-rack membership
	sortedID []NodeID            // deterministic iteration order
}

// Config controls ring construction.
type Config struct {
	// VirtualNodes is the number of tokens each node claims. Zero means a
	// default of 64, enough to keep per-node key share within a few percent
	// of uniform for cluster sizes used in the paper (≤ ~100 nodes).
	VirtualNodes int
}

// New returns an empty ring.
func New(cfg Config) *Ring {
	v := cfg.VirtualNodes
	if v == 0 {
		v = 64
	}
	return &Ring{
		vnodes:  v,
		owner:   make(map[uint64]NodeID),
		members: make(map[NodeID]Member),
		rackOf:  make(map[NodeID]string),
		byRack:  make(map[string][]NodeID),
	}
}

// HashKey maps an arbitrary key (a term, a filter name, ...) onto the token
// space. Exposed so tests and baselines hash compatibly. The FNV-1a digest
// is passed through a splitmix64 finalizer: raw FNV of short, similar keys
// (terms, "node-k#vnJ" vnode labels) clusters in the token space, which
// would skew arc ownership far beyond the 1/√vnodes bound consistent
// hashing is supposed to give.
func HashKey(key string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer (Steele et al.), a cheap full-avalanche
// bijection on 64-bit values.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func vnodeToken(id NodeID, i int) uint64 {
	return HashKey(string(id) + "#vn" + strconv.Itoa(i))
}

// ErrEmptyRing is returned by lookups on a ring with no members.
var ErrEmptyRing = errors.New("ring: no members")

// ErrDuplicateNode is returned when adding a node that is already a member.
var ErrDuplicateNode = errors.New("ring: duplicate node")

// ErrUnknownNode is returned when removing or querying a non-member.
var ErrUnknownNode = errors.New("ring: unknown node")

// Add inserts a node with its rack label.
func (r *Ring) Add(m Member) error {
	if m.ID == "" {
		return fmt.Errorf("ring: empty node id: %w", ErrUnknownNode)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[m.ID]; ok {
		return fmt.Errorf("ring: add %q: %w", m.ID, ErrDuplicateNode)
	}
	r.members[m.ID] = m
	r.rackOf[m.ID] = m.Rack
	for i := 0; i < r.vnodes; i++ {
		tok := vnodeToken(m.ID, i)
		// Token collisions across distinct nodes are astronomically
		// unlikely with 64-bit FNV over distinct strings, but keep the
		// first owner deterministic if one occurs.
		if _, taken := r.owner[tok]; taken {
			continue
		}
		r.owner[tok] = m.ID
		r.tokens = append(r.tokens, tok)
	}
	sort.Slice(r.tokens, func(i, j int) bool { return r.tokens[i] < r.tokens[j] })

	r.byRack[m.Rack] = insertSorted(r.byRack[m.Rack], m.ID)
	r.sortedID = insertSorted(r.sortedID, m.ID)
	return nil
}

// Remove deletes a node (crash or decommission).
func (r *Ring) Remove(id NodeID) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.members[id]
	if !ok {
		return fmt.Errorf("ring: remove %q: %w", id, ErrUnknownNode)
	}
	delete(r.members, id)
	delete(r.rackOf, id)
	kept := r.tokens[:0]
	for _, tok := range r.tokens {
		if r.owner[tok] == id {
			delete(r.owner, tok)
			continue
		}
		kept = append(kept, tok)
	}
	r.tokens = kept
	r.byRack[m.Rack] = removeSorted(r.byRack[m.Rack], id)
	if len(r.byRack[m.Rack]) == 0 {
		delete(r.byRack, m.Rack)
	}
	r.sortedID = removeSorted(r.sortedID, id)
	return nil
}

func insertSorted(s []NodeID, id NodeID) []NodeID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= id })
	s = append(s, "")
	copy(s[i+1:], s[i:])
	s[i] = id
	return s
}

func removeSorted(s []NodeID, id NodeID) []NodeID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= id })
	if i < len(s) && s[i] == id {
		return append(s[:i], s[i+1:]...)
	}
	return s
}

// Size returns the number of member nodes.
func (r *Ring) Size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}

// Members returns all members in deterministic (ID-sorted) order.
func (r *Ring) Members() []Member {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Member, 0, len(r.sortedID))
	for _, id := range r.sortedID {
		out = append(out, r.members[id])
	}
	return out
}

// Contains reports membership of id.
func (r *Ring) Contains(id NodeID) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.members[id]
	return ok
}

// RackOf returns the rack of a member node.
func (r *Ring) RackOf(id NodeID) (string, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	rack, ok := r.rackOf[id]
	if !ok {
		return "", fmt.Errorf("ring: rack of %q: %w", id, ErrUnknownNode)
	}
	return rack, nil
}

// HomeNode returns the node responsible for key: the owner of the first
// token clockwise from the key's hash. This is the O(1)-hop DHT lookup of
// the Dynamo/Cassandra substrate.
func (r *Ring) HomeNode(key string) (NodeID, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.tokens) == 0 {
		return "", ErrEmptyRing
	}
	h := HashKey(key)
	i := sort.Search(len(r.tokens), func(i int) bool { return r.tokens[i] >= h })
	if i == len(r.tokens) {
		i = 0
	}
	return r.owner[r.tokens[i]], nil
}

// Successors returns up to n distinct nodes that follow the home node of
// key clockwise on the ring, excluding the home node itself.
func (r *Ring) Successors(key string, n int) ([]NodeID, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.tokens) == 0 {
		return nil, ErrEmptyRing
	}
	home := r.homeLocked(key)
	return r.successorsOfLocked(home, n, nil), nil
}

func (r *Ring) homeLocked(key string) NodeID {
	h := HashKey(key)
	i := sort.Search(len(r.tokens), func(i int) bool { return r.tokens[i] >= h })
	if i == len(r.tokens) {
		i = 0
	}
	return r.owner[r.tokens[i]]
}

// successorsOfLocked walks the ring clockwise from the first token owned by
// start and collects up to n distinct nodes, skipping start and any node in
// skip.
func (r *Ring) successorsOfLocked(start NodeID, n int, skip map[NodeID]struct{}) []NodeID {
	if n <= 0 || len(r.tokens) == 0 {
		return nil
	}
	// Find the first token owned by start; walking from any of its vnodes
	// is valid, and the smallest is deterministic.
	startIdx := -1
	for i, tok := range r.tokens {
		if r.owner[tok] == start {
			startIdx = i
			break
		}
	}
	if startIdx == -1 {
		startIdx = 0
	}
	seen := map[NodeID]struct{}{start: {}}
	for id := range skip {
		seen[id] = struct{}{}
	}
	var out []NodeID
	for step := 1; step <= len(r.tokens) && len(out) < n; step++ {
		id := r.owner[r.tokens[(startIdx+step)%len(r.tokens)]]
		if _, dup := seen[id]; dup {
			continue
		}
		seen[id] = struct{}{}
		out = append(out, id)
	}
	return out
}

// rackPeersLocked returns up to n members of home's rack, excluding home
// and skip, in deterministic order starting after home's position.
func (r *Ring) rackPeersLocked(home NodeID, n int, skip map[NodeID]struct{}) []NodeID {
	if n <= 0 {
		return nil
	}
	rack := r.rackOf[home]
	peers := r.byRack[rack]
	if len(peers) == 0 {
		return nil
	}
	start := sort.Search(len(peers), func(i int) bool { return peers[i] >= home })
	var out []NodeID
	for step := 1; step <= len(peers) && len(out) < n; step++ {
		id := peers[(start+step)%len(peers)]
		if id == home {
			continue
		}
		if _, dup := skip[id]; dup {
			continue
		}
		out = append(out, id)
	}
	return out
}

// AllocationNodes selects n distinct nodes to hold data allocated from the
// home node of key, according to the placement strategy. The home node is
// never included. Fewer than n nodes are returned when the cluster is too
// small. This is the §V node-selection step: ring successors, rack peers,
// or the hybrid half/half split that trades hot-spot locality (rack)
// against correlated-failure blast radius (ring).
func (r *Ring) AllocationNodes(key string, n int, p Placement) ([]NodeID, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.tokens) == 0 {
		return nil, ErrEmptyRing
	}
	return r.allocationNodesLocked(r.homeLocked(key), n, p)
}

// AllocationNodesOf is AllocationNodes with an explicit home node — used by
// the §V per-node allocation, where the unit is a whole home node rather
// than a term.
func (r *Ring) AllocationNodesOf(home NodeID, n int, p Placement) ([]NodeID, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.tokens) == 0 {
		return nil, ErrEmptyRing
	}
	if _, ok := r.members[home]; !ok {
		return nil, fmt.Errorf("ring: allocation for %q: %w", home, ErrUnknownNode)
	}
	return r.allocationNodesLocked(home, n, p)
}

func (r *Ring) allocationNodesLocked(home NodeID, n int, p Placement) ([]NodeID, error) {
	switch p {
	case PlacementRing:
		return r.successorsOfLocked(home, n, nil), nil
	case PlacementRack:
		out := r.rackPeersLocked(home, n, nil)
		if len(out) < n {
			// Rack exhausted: fall back to successors so the allocation
			// grid is still fully populated.
			skip := make(map[NodeID]struct{}, len(out))
			for _, id := range out {
				skip[id] = struct{}{}
			}
			out = append(out, r.successorsOfLocked(home, n-len(out), skip)...)
		}
		return out, nil
	case PlacementHybrid:
		half := n / 2
		rackN := n - half
		succ := r.successorsOfLocked(home, half, nil)
		skip := make(map[NodeID]struct{}, len(succ))
		for _, id := range succ {
			skip[id] = struct{}{}
		}
		rackPeers := r.rackPeersLocked(home, rackN, skip)
		out := append(succ, rackPeers...)
		if len(out) < n {
			for _, id := range out {
				skip[id] = struct{}{}
			}
			skip[home] = struct{}{}
			out = append(out, r.successorsOfLocked(home, n-len(out), skip)...)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("ring: unknown placement %v", p)
	}
}
