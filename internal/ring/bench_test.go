package ring

import (
	"strconv"
	"testing"
)

func benchRing(b *testing.B, nodes int) *Ring {
	b.Helper()
	r := New(Config{})
	for i := 0; i < nodes; i++ {
		if err := r.Add(Member{ID: NodeID("node-" + strconv.Itoa(i)), Rack: "rack-" + strconv.Itoa(i/5)}); err != nil {
			b.Fatal(err)
		}
	}
	return r
}

func BenchmarkHomeNode20(b *testing.B) {
	r := benchRing(b, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.HomeNode("term-" + strconv.Itoa(i%4096)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHomeNode100(b *testing.B) {
	r := benchRing(b, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.HomeNode("term-" + strconv.Itoa(i%4096)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAllocationNodesHybrid(b *testing.B) {
	r := benchRing(b, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.AllocationNodes("term-"+strconv.Itoa(i%256), 8, PlacementHybrid); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHashKey(b *testing.B) {
	keys := make([]string, 256)
	for i := range keys {
		keys[i] = "benchmark-term-" + strconv.Itoa(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = HashKey(keys[i%len(keys)])
	}
}
