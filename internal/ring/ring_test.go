package ring

import (
	"errors"
	"fmt"

	"strconv"
	"testing"
	"testing/quick"
)

// buildRing creates a ring with n nodes spread over racks of rackSize.
func buildRing(t testing.TB, n, rackSize int) *Ring {
	t.Helper()
	r := New(Config{})
	for i := 0; i < n; i++ {
		m := Member{
			ID:   NodeID("node-" + strconv.Itoa(i)),
			Rack: "rack-" + strconv.Itoa(i/rackSize),
		}
		if err := r.Add(m); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestEmptyRingLookups(t *testing.T) {
	r := New(Config{})
	if _, err := r.HomeNode("x"); !errors.Is(err, ErrEmptyRing) {
		t.Fatalf("HomeNode on empty ring: %v, want ErrEmptyRing", err)
	}
	if _, err := r.Successors("x", 3); !errors.Is(err, ErrEmptyRing) {
		t.Fatalf("Successors on empty ring: %v, want ErrEmptyRing", err)
	}
	if _, err := r.AllocationNodes("x", 3, PlacementRing); !errors.Is(err, ErrEmptyRing) {
		t.Fatalf("AllocationNodes on empty ring: %v, want ErrEmptyRing", err)
	}
}

func TestAddDuplicateAndRemoveUnknown(t *testing.T) {
	r := New(Config{})
	if err := r.Add(Member{ID: "a", Rack: "r0"}); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(Member{ID: "a", Rack: "r1"}); !errors.Is(err, ErrDuplicateNode) {
		t.Fatalf("duplicate add: %v, want ErrDuplicateNode", err)
	}
	if err := r.Remove("zz"); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("remove unknown: %v, want ErrUnknownNode", err)
	}
	if err := r.Add(Member{}); err == nil {
		t.Fatal("expected error adding empty id")
	}
}

func TestHomeNodeDeterministic(t *testing.T) {
	r := buildRing(t, 10, 5)
	for _, key := range []string{"alpha", "beta", "gamma"} {
		h1, err := r.HomeNode(key)
		if err != nil {
			t.Fatal(err)
		}
		h2, err := r.HomeNode(key)
		if err != nil {
			t.Fatal(err)
		}
		if h1 != h2 {
			t.Fatalf("HomeNode(%q) unstable: %v vs %v", key, h1, h2)
		}
	}
}

func TestHomeNodeStableUnderUnrelatedRemoval(t *testing.T) {
	// Consistent hashing: removing one node must only move keys owned by
	// that node.
	r := buildRing(t, 20, 5)
	keys := make([]string, 500)
	before := make(map[string]NodeID, len(keys))
	for i := range keys {
		keys[i] = "term-" + strconv.Itoa(i)
		h, err := r.HomeNode(keys[i])
		if err != nil {
			t.Fatal(err)
		}
		before[keys[i]] = h
	}
	victim := NodeID("node-7")
	if err := r.Remove(victim); err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		after, err := r.HomeNode(k)
		if err != nil {
			t.Fatal(err)
		}
		if before[k] != victim && after != before[k] {
			t.Fatalf("key %q moved from %v to %v though %v was removed", k, before[k], after, victim)
		}
		if after == victim {
			t.Fatalf("key %q still maps to removed node", k)
		}
	}
}

func TestKeyDistributionRoughlyBalanced(t *testing.T) {
	const nodes = 20
	r := buildRing(t, nodes, 5)
	counts := make(map[NodeID]int)
	const keys = 20000
	for i := 0; i < keys; i++ {
		h, err := r.HomeNode("key-" + strconv.Itoa(i))
		if err != nil {
			t.Fatal(err)
		}
		counts[h]++
	}
	if len(counts) != nodes {
		t.Fatalf("only %d of %d nodes own keys", len(counts), nodes)
	}
	mean := float64(keys) / nodes
	for id, c := range counts {
		if ratio := float64(c) / mean; ratio < 0.5 || ratio > 1.7 {
			t.Errorf("node %v owns %d keys (%.2fx mean); virtual nodes too coarse", id, c, ratio)
		}
	}
}

func TestSuccessorsDistinctAndExcludeHome(t *testing.T) {
	r := buildRing(t, 12, 4)
	home, err := r.HomeNode("popular-term")
	if err != nil {
		t.Fatal(err)
	}
	succ, err := r.Successors("popular-term", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(succ) != 5 {
		t.Fatalf("got %d successors, want 5", len(succ))
	}
	seen := map[NodeID]struct{}{home: {}}
	for _, id := range succ {
		if _, dup := seen[id]; dup {
			t.Fatalf("duplicate or home node %v in successors", id)
		}
		seen[id] = struct{}{}
	}
}

func TestSuccessorsCappedByClusterSize(t *testing.T) {
	r := buildRing(t, 4, 2)
	succ, err := r.Successors("x", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(succ) != 3 {
		t.Fatalf("got %d successors, want 3 (cluster of 4 minus home)", len(succ))
	}
}

func TestAllocationNodesRack(t *testing.T) {
	r := buildRing(t, 16, 4)
	key := "hot"
	home, err := r.HomeNode(key)
	if err != nil {
		t.Fatal(err)
	}
	homeRack, err := r.RackOf(home)
	if err != nil {
		t.Fatal(err)
	}
	nodes, err := r.AllocationNodes(key, 3, PlacementRack)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 3 {
		t.Fatalf("got %d nodes, want 3", len(nodes))
	}
	for _, id := range nodes {
		rack, err := r.RackOf(id)
		if err != nil {
			t.Fatal(err)
		}
		if rack != homeRack {
			t.Fatalf("rack placement chose %v in %v, home rack %v", id, rack, homeRack)
		}
		if id == home {
			t.Fatal("home node included in allocation")
		}
	}
}

func TestAllocationNodesRackFallsBack(t *testing.T) {
	// Rack of 4 has only 3 peers; asking for 6 must spill to successors.
	r := buildRing(t, 16, 4)
	nodes, err := r.AllocationNodes("hot", 6, PlacementRack)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 6 {
		t.Fatalf("got %d nodes, want 6 after fallback", len(nodes))
	}
	assertDistinct(t, nodes)
}

func TestAllocationNodesHybrid(t *testing.T) {
	r := buildRing(t, 16, 4)
	key := "hot"
	home, err := r.HomeNode(key)
	if err != nil {
		t.Fatal(err)
	}
	nodes, err := r.AllocationNodes(key, 6, PlacementHybrid)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 6 {
		t.Fatalf("got %d nodes, want 6", len(nodes))
	}
	assertDistinct(t, nodes)
	for _, id := range nodes {
		if id == home {
			t.Fatal("home node included")
		}
	}
	homeRack, err := r.RackOf(home)
	if err != nil {
		t.Fatal(err)
	}
	rackLocal := 0
	for _, id := range nodes {
		rack, err := r.RackOf(id)
		if err != nil {
			t.Fatal(err)
		}
		if rack == homeRack {
			rackLocal++
		}
	}
	// Half the nodes (3) come from the rack pool; successors may by chance
	// also be rack-local, so expect at least 3.
	if rackLocal < 3 {
		t.Fatalf("hybrid placement has %d rack-local nodes, want >= 3", rackLocal)
	}
}

func TestAllocationNodesUnknownPlacement(t *testing.T) {
	r := buildRing(t, 4, 2)
	if _, err := r.AllocationNodes("x", 2, Placement(99)); err == nil {
		t.Fatal("expected error for unknown placement")
	}
}

func TestPlacementString(t *testing.T) {
	if PlacementRing.String() != "ring" || PlacementRack.String() != "rack" || PlacementHybrid.String() != "hybrid" {
		t.Fatal("placement names wrong")
	}
	if Placement(42).String() != "placement(42)" {
		t.Fatalf("unknown placement string = %q", Placement(42).String())
	}
}

func TestMembersSortedAndContains(t *testing.T) {
	r := buildRing(t, 5, 2)
	ms := r.Members()
	if len(ms) != 5 {
		t.Fatalf("Members len = %d, want 5", len(ms))
	}
	for i := 1; i < len(ms); i++ {
		if ms[i-1].ID >= ms[i].ID {
			t.Fatal("Members not sorted")
		}
	}
	if !r.Contains("node-3") || r.Contains("nope") {
		t.Fatal("Contains wrong")
	}
	if _, err := r.RackOf("nope"); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("RackOf unknown: %v", err)
	}
}

func TestRemoveRestoresInvariant(t *testing.T) {
	r := buildRing(t, 6, 3)
	for i := 0; i < 5; i++ {
		if err := r.Remove(NodeID("node-" + strconv.Itoa(i))); err != nil {
			t.Fatal(err)
		}
	}
	if r.Size() != 1 {
		t.Fatalf("Size = %d, want 1", r.Size())
	}
	h, err := r.HomeNode("anything")
	if err != nil {
		t.Fatal(err)
	}
	if h != "node-5" {
		t.Fatalf("HomeNode = %v, want node-5", h)
	}
	// Successors of the only node: none.
	succ, err := r.Successors("anything", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(succ) != 0 {
		t.Fatalf("Successors on single-node ring = %v, want empty", succ)
	}
}

// TestAllocationNodesDistinctProperty: for arbitrary keys and any strategy,
// allocation nodes are distinct and never the home node.
func TestAllocationNodesDistinctProperty(t *testing.T) {
	r := buildRing(t, 15, 5)
	prop := func(key string, nRaw uint8, pRaw uint8) bool {
		n := int(nRaw%14) + 1
		p := Placement(int(pRaw%3) + 1)
		home, err := r.HomeNode(key)
		if err != nil {
			return false
		}
		nodes, err := r.AllocationNodes(key, n, p)
		if err != nil {
			return false
		}
		if len(nodes) > n {
			return false
		}
		seen := map[NodeID]struct{}{home: {}}
		for _, id := range nodes {
			if _, dup := seen[id]; dup {
				return false
			}
			seen[id] = struct{}{}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func assertDistinct(t *testing.T, nodes []NodeID) {
	t.Helper()
	seen := make(map[NodeID]struct{}, len(nodes))
	for _, id := range nodes {
		if _, dup := seen[id]; dup {
			t.Fatalf("duplicate node %v", id)
		}
		seen[id] = struct{}{}
	}
}

func TestVirtualNodeCountAffectsBalance(t *testing.T) {
	// With a single virtual node per member, balance is poor; the default
	// must do strictly better on max/mean share.
	imbalance := func(vn int) float64 {
		r := New(Config{VirtualNodes: vn})
		for i := 0; i < 10; i++ {
			if err := r.Add(Member{ID: NodeID(fmt.Sprintf("n%02d", i)), Rack: "r"}); err != nil {
				t.Fatal(err)
			}
		}
		counts := make(map[NodeID]int)
		for i := 0; i < 5000; i++ {
			h, err := r.HomeNode("k" + strconv.Itoa(i))
			if err != nil {
				t.Fatal(err)
			}
			counts[h]++
		}
		maxC := 0
		for _, c := range counts {
			if c > maxC {
				maxC = c
			}
		}
		return float64(maxC) / (5000.0 / 10.0)
	}
	coarse := imbalance(1)
	fine := imbalance(128)
	if fine >= coarse {
		t.Fatalf("more vnodes should balance better: fine=%v coarse=%v", fine, coarse)
	}
	if fine > 1.5 {
		t.Fatalf("fine-grained imbalance %v too high", fine)
	}

}
