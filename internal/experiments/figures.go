package experiments

import (
	"github.com/movesys/move/internal/alloc"
	"github.com/movesys/move/internal/cluster"
	"github.com/movesys/move/internal/dataset"
	"github.com/movesys/move/internal/metrics"
	"github.com/movesys/move/internal/ring"
)

// SchemePoint is one (x, throughput-per-scheme) row of Figure 8.
type SchemePoint struct {
	X    int
	Move float64
	IL   float64
	RS   float64
}

// Figure8Defaults mirror §VI.C: P = 4×10⁶ filters, Q = 10³ docs, N = 20
// nodes, C = 3×10⁶ per node — scaled.
type Figure8Defaults struct {
	Filters  int
	Docs     int
	Nodes    int
	Capacity int
	// CostScale compensates posting-list lengths for the scaled-down
	// filter set (see ClusterParams.CostScale).
	CostScale float64
	Seed      int64
}

// DefaultsAt scales the §VI.C defaults.
func DefaultsAt(scale Scale) Figure8Defaults {
	d := Figure8Defaults{
		Filters:  scale.apply(4_000_000, 4_000),
		Docs:     scale.apply(1_000, 200),
		Nodes:    20,
		Capacity: scale.apply(3_000_000, 3_000),
		Seed:     1,
	}
	// Posting lists shrink linearly with the scaled-down filter set, so
	// the per-posting scan constant is inflated by paper-P/actual-P. The
	// 0.6 factor calibrates the scan:seek balance against the paper's
	// measured scheme ratios at the §VI.C defaults (Move:RS:IL =
	// 93:70:42); see EXPERIMENTS.md for the derivation.
	d.CostScale = 0.6 * 4_000_000 / float64(d.Filters)
	return d
}

// runSchemes measures all three schemes under one parameter point.
func runSchemes(base ClusterParams) (SchemePoint, error) {
	pt := SchemePoint{}
	for _, scheme := range []cluster.Scheme{cluster.SchemeMove, cluster.SchemeIL, cluster.SchemeRS} {
		p := base
		p.Scheme = scheme
		out, err := RunCluster(p)
		if err != nil {
			return pt, err
		}
		switch scheme {
		case cluster.SchemeMove:
			pt.Move = out.Throughput
		case cluster.SchemeIL:
			pt.IL = out.Throughput
		case cluster.SchemeRS:
			pt.RS = out.Throughput
		}
	}
	return pt, nil
}

// RunFigure8a sweeps the number of filters P (paper: 10⁵ → 10⁷).
func RunFigure8a(scale Scale) ([]SchemePoint, error) {
	d := DefaultsAt(scale)
	sweep := []int{
		Scale(scale).apply(100_000, 1_000),
		Scale(scale).apply(1_000_000, 2_000),
		Scale(scale).apply(4_000_000, 4_000),
		Scale(scale).apply(10_000_000, 8_000),
	}
	var out []SchemePoint
	for _, filters := range sweep {
		pt, err := runSchemes(ClusterParams{
			Nodes:     d.Nodes,
			Filters:   filters,
			Docs:      d.Docs,
			Capacity:  d.Capacity,
			CostScale: d.CostScale,
			Corpus:    dataset.CorpusWT,
			Seed:      d.Seed,
		})
		if err != nil {
			return nil, err
		}
		pt.X = filters
		out = append(out, pt)
	}
	return out, nil
}

// RunFigure8b sweeps the number of documents Q (paper: 10 → 10⁴). The
// virtual-time cost model is rate-invariant (no queueing), so the series
// is flatter than the paper's saturation-driven decline; the smallest
// point is floored at 50 documents to keep per-point variance bounded.
func RunFigure8b(scale Scale) ([]SchemePoint, error) {
	d := DefaultsAt(scale)
	sweep := []int{
		maxI(50, d.Docs/4),
		maxI(100, d.Docs/2),
		d.Docs,
		d.Docs * 4,
	}
	var out []SchemePoint
	for _, docs := range sweep {
		pt, err := runSchemes(ClusterParams{
			Nodes:     d.Nodes,
			Filters:   d.Filters,
			Docs:      docs,
			Capacity:  d.Capacity,
			CostScale: d.CostScale,
			Corpus:    dataset.CorpusWT,
			Seed:      d.Seed,
		})
		if err != nil {
			return nil, err
		}
		pt.X = docs
		out = append(out, pt)
	}
	return out, nil
}

// RunFigure8c sweeps the cluster size N (paper: → 100 nodes).
func RunFigure8c(scale Scale) ([]SchemePoint, error) {
	d := DefaultsAt(scale)
	var out []SchemePoint
	for _, nodes := range []int{10, 20, 40, 60, 100} {
		pt, err := runSchemes(ClusterParams{
			Nodes:     nodes,
			Filters:   d.Filters,
			Docs:      d.Docs,
			Capacity:  d.Capacity,
			CostScale: d.CostScale,
			Corpus:    dataset.CorpusWT,
			Seed:      d.Seed,
		})
		if err != nil {
			return nil, err
		}
		pt.X = nodes
		out = append(out, pt)
	}
	return out, nil
}

// Figure9Load holds the Figure 9(a–b) ranked, RS-normalized load curves.
type Figure9Load struct {
	// Move/IL/RS are per-node loads ranked descending, normalized by the
	// RS scheme's mean (the paper's y-axis).
	Move, IL, RS []float64
	// CVMove, CVIL, CVRS summarize skew (coefficient of variation).
	CVMove, CVIL, CVRS float64
}

// RunFigure9Load measures the per-node storage (storage=true) or matching
// (storage=false) cost distribution of the three schemes on the default
// 20-node cluster.
func RunFigure9Load(scale Scale, storage bool) (Figure9Load, error) {
	d := DefaultsAt(scale)
	var out Figure9Load
	pick := func(o ClusterOutcome) []float64 {
		if storage {
			return o.StoragePerNode
		}
		return o.MatchPerNode
	}
	base := ClusterParams{
		Nodes:     d.Nodes,
		Filters:   d.Filters,
		Docs:      d.Docs,
		Capacity:  d.Capacity,
		CostScale: d.CostScale,
		Corpus:    dataset.CorpusWT,
		Seed:      d.Seed,
	}
	rsParams := base
	rsParams.Scheme = cluster.SchemeRS
	rsOut, err := RunCluster(rsParams)
	if err != nil {
		return out, err
	}
	rsDist := metrics.NewDistribution(pick(rsOut))
	out.RS = rsDist.NormalizedBy(rsDist.Mean)
	out.CVRS = rsDist.CV

	ilParams := base
	ilParams.Scheme = cluster.SchemeIL
	ilOut, err := RunCluster(ilParams)
	if err != nil {
		return out, err
	}
	ilDist := metrics.NewDistribution(pick(ilOut))
	out.IL = ilDist.NormalizedBy(rsDist.Mean)
	out.CVIL = ilDist.CV

	mvParams := base
	mvParams.Scheme = cluster.SchemeMove
	mvOut, err := RunCluster(mvParams)
	if err != nil {
		return out, err
	}
	mvDist := metrics.NewDistribution(pick(mvOut))
	out.Move = mvDist.NormalizedBy(rsDist.Mean)
	out.CVMove = mvDist.CV
	return out, nil
}

// Figure9Failure holds one placement strategy's throughput/availability
// under node failure (Figure 9 c–d).
type Figure9Failure struct {
	Placement ring.Placement
	// ThroughputOK / ThroughputFail: virtual throughput at 0% and 30%
	// failed nodes.
	ThroughputOK, ThroughputFail float64
	// AvailabilityOK / AvailabilityFail: live-filter fractions.
	AvailabilityOK, AvailabilityFail float64
}

// RunFigure9Failure measures the three placement strategies with
// rack-correlated failures at rate 0.3, as §VI.D does.
func RunFigure9Failure(scale Scale) ([]Figure9Failure, error) {
	d := DefaultsAt(scale)
	var out []Figure9Failure
	for _, placement := range []ring.Placement{ring.PlacementHybrid, ring.PlacementRing, ring.PlacementRack} {
		row := Figure9Failure{Placement: placement}
		base := ClusterParams{
			Scheme:    cluster.SchemeMove,
			Nodes:     d.Nodes,
			Filters:   d.Filters,
			Docs:      d.Docs,
			Capacity:  d.Capacity,
			CostScale: d.CostScale,
			Placement: placement,
			Corpus:    dataset.CorpusWT,
			Seed:      d.Seed,
		}
		ok, err := RunCluster(base)
		if err != nil {
			return nil, err
		}
		row.ThroughputOK = ok.Throughput
		row.AvailabilityOK = ok.Availability

		failed := base
		failed.FailFraction = 0.3
		failed.FailByRack = true
		fl, err := RunCluster(failed)
		if err != nil {
			return nil, err
		}
		row.ThroughputFail = fl.Throughput
		row.AvailabilityFail = fl.Availability
		out = append(out, row)
	}
	return out, nil
}

// AblationPoint is one ablation measurement.
type AblationPoint struct {
	Name       string
	Throughput float64
}

// RunAblationStrategies compares the §IV allocation-factor formulas, both
// with the full allocator (replication rows + balance separation) and
// rows-only (the pure paper formulas, suffix "-rows").
func RunAblationStrategies(scale Scale) ([]AblationPoint, error) {
	d := DefaultsAt(scale)
	var out []AblationPoint
	for _, rowsOnly := range []bool{false, true} {
		for _, s := range []alloc.Strategy{alloc.StrategyGeneral, alloc.StrategyTheorem1, alloc.StrategyTheorem2, alloc.StrategyUniform} {
			o, err := RunCluster(ClusterParams{
				Scheme:       cluster.SchemeMove,
				Nodes:        d.Nodes,
				Filters:      d.Filters,
				Docs:         d.Docs,
				Capacity:     d.Capacity,
				CostScale:    d.CostScale,
				Strategy:     s,
				NoSeparation: rowsOnly,
				Corpus:       dataset.CorpusWT,
				Seed:         d.Seed,
			})
			if err != nil {
				return nil, err
			}
			name := s.String()
			if rowsOnly {
				name += "-rows"
			}
			out = append(out, AblationPoint{Name: name, Throughput: o.Throughput})
		}
	}
	return out, nil
}

// RunAblationBloom compares dissemination with and without the Bloom gate.
func RunAblationBloom(scale Scale) ([]AblationPoint, error) {
	d := DefaultsAt(scale)
	var out []AblationPoint
	for _, disable := range []bool{false, true} {
		o, err := RunCluster(ClusterParams{
			Scheme:       cluster.SchemeMove,
			Nodes:        d.Nodes,
			Filters:      d.Filters,
			Docs:         d.Docs,
			Capacity:     d.Capacity,
			CostScale:    d.CostScale,
			Corpus:       dataset.CorpusWT,
			DisableBloom: disable,
			Seed:         d.Seed,
		})
		if err != nil {
			return nil, err
		}
		name := "bloom-on"
		if disable {
			name = "bloom-off"
		}
		out = append(out, AblationPoint{Name: name, Throughput: o.Throughput})
	}
	return out, nil
}

// RunAblationRatio compares the optimizer-chosen allocation ratio against
// the two pure schemes of §IV-A: replication alone (r=1/n) and separation
// alone (r=1). The paper argues "neither the replication nor separation
// scheme alone can minimize the latency".
func RunAblationRatio(scale Scale) ([]AblationPoint, error) {
	d := DefaultsAt(scale)
	var out []AblationPoint
	for _, tc := range []struct {
		name  string
		ratio alloc.RatioMode
	}{
		{"ratio-auto", alloc.RatioAuto},
		{"ratio-replicate", alloc.RatioReplicate},
		{"ratio-separate", alloc.RatioSeparate},
	} {
		o, err := RunCluster(ClusterParams{
			Scheme:    cluster.SchemeMove,
			Nodes:     d.Nodes,
			Filters:   d.Filters,
			Docs:      d.Docs,
			Capacity:  d.Capacity,
			CostScale: d.CostScale,
			Ratio:     tc.ratio,
			Corpus:    dataset.CorpusWT,
			Seed:      d.Seed,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, AblationPoint{Name: tc.name, Throughput: o.Throughput})
	}
	return out, nil
}

// RunAblationGrid compares §V's per-node allocation grids with per-term
// grids, reporting throughput and the forwarding-table size each needs.
func RunAblationGrid(scale Scale) ([]AblationPoint, error) {
	d := DefaultsAt(scale)
	var out []AblationPoint
	for _, tc := range []struct {
		name string
		grid GridMode
	}{
		{"grid-per-node", GridPerNode},
		{"grid-per-term", GridPerTerm},
	} {
		o, err := RunCluster(ClusterParams{
			Scheme:    cluster.SchemeMove,
			Nodes:     d.Nodes,
			Filters:   d.Filters,
			Docs:      d.Docs,
			Capacity:  d.Capacity,
			CostScale: d.CostScale,
			Grid:      tc.grid,
			Corpus:    dataset.CorpusWT,
			Seed:      d.Seed,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, AblationPoint{Name: tc.name, Throughput: o.Throughput})
	}
	return out, nil
}

// RunAblationPolicy compares proactive and passive allocation timing.
func RunAblationPolicy(scale Scale) ([]AblationPoint, error) {
	d := DefaultsAt(scale)
	var out []AblationPoint
	for _, tc := range []struct {
		name   string
		policy Policy
	}{
		{"policy-proactive", PolicyProactive},
		{"policy-passive", PolicyPassive},
	} {
		o, err := RunCluster(ClusterParams{
			Scheme:    cluster.SchemeMove,
			Nodes:     d.Nodes,
			Filters:   d.Filters,
			Docs:      d.Docs,
			Capacity:  d.Capacity,
			CostScale: d.CostScale,
			Policy:    tc.policy,
			Corpus:    dataset.CorpusWT,
			Seed:      d.Seed,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, AblationPoint{Name: tc.name, Throughput: o.Throughput})
	}
	return out, nil
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
