package experiments

import (
	"errors"
	"math"
	"testing"

	"github.com/movesys/move/internal/cluster"
	"github.com/movesys/move/internal/dataset"
)

// tiny is the test scale: every figure runs in well under a second.
const tiny Scale = 0.001

func TestRunDatasetStatsMatchesPaperShape(t *testing.T) {
	st, err := RunDatasetStats(tiny, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.MeanTermsPerFilter-dataset.MSNMeanTermsPerFilter) > 0.2 {
		t.Errorf("mean terms/filter = %v, want ≈%v", st.MeanTermsPerFilter, dataset.MSNMeanTermsPerFilter)
	}
	if math.Abs(st.FilterLenCDF2-dataset.MSNLenCDF2) > 0.03 {
		t.Errorf("len CDF(2) = %v, want ≈%v", st.FilterLenCDF2, dataset.MSNLenCDF2)
	}
	if st.TopAnchorMass < 0.3 || st.TopAnchorMass > 0.6 {
		t.Errorf("top anchor mass = %v, want ≈0.437", st.TopAnchorMass)
	}
	// AP docs are longer and flatter than WT docs.
	if st.MeanTermsAP <= st.MeanTermsWT {
		t.Errorf("AP mean %v should exceed WT mean %v", st.MeanTermsAP, st.MeanTermsWT)
	}
	if st.EntropyAP <= st.EntropyWT {
		t.Errorf("AP entropy %v should exceed WT entropy %v", st.EntropyAP, st.EntropyWT)
	}
	if st.OverlapWT <= 0 || st.OverlapWT >= 1 || st.OverlapAP <= 0 || st.OverlapAP >= 1 {
		t.Errorf("overlaps = %v / %v, want in (0,1)", st.OverlapWT, st.OverlapAP)
	}
}

func TestRunFigure4Skewed(t *testing.T) {
	pts, err := RunFigure4(tiny, 1, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 10 {
		t.Fatalf("got %d points", len(pts))
	}
	// Monotone decreasing rate by rank (Figure 4's shape).
	for i := 1; i < len(pts); i++ {
		if pts[i].Rate > pts[i-1].Rate+1e-12 {
			t.Fatalf("rate not decreasing at point %d", i)
		}
	}
	// Strong skew: head rate orders of magnitude above the tail.
	if pts[0].Rate < 10*pts[len(pts)-1].Rate {
		t.Fatalf("head %v vs tail %v: not skewed", pts[0].Rate, pts[len(pts)-1].Rate)
	}
}

func TestRunFigure5WTSkewerThanAP(t *testing.T) {
	s, err := RunFigure5(tiny, 1, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.WT) == 0 || len(s.AP) == 0 {
		t.Fatal("empty series")
	}
	// WT's head is heavier relative to its tail than AP's.
	wtRatio := s.WT[0].Rate / s.WT[len(s.WT)-1].Rate
	apRatio := s.AP[0].Rate / s.AP[len(s.AP)-1].Rate
	if wtRatio <= apRatio {
		t.Fatalf("WT head/tail ratio %v should exceed AP's %v", wtRatio, apRatio)
	}
}

func TestRunSingleNodeShape(t *testing.T) {
	pts, err := RunSingleNode(SingleNodeParams{
		Corpus:       dataset.CorpusAP,
		Products:     []int{20_000},
		DocCounts:    []int{10, 100, 400},
		Seed:         3,
		Vocab:        5_000,
		MeanDocTerms: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("got %d points", len(pts))
	}
	// Figure 6's headline shape: with R fixed, fewer documents (more
	// filters) give higher throughput.
	if !(pts[0].Throughput > pts[1].Throughput && pts[1].Throughput > pts[2].Throughput) {
		t.Fatalf("throughput not decreasing in Q: %+v", pts)
	}
}

func TestRunSingleNodeWTFasterThanAP(t *testing.T) {
	// Figure 7 vs Figure 6: short WT docs yield much higher throughput
	// than long AP docs at the same R and Q.
	run := func(kind dataset.CorpusKind, mean float64) float64 {
		pts, err := RunSingleNode(SingleNodeParams{
			Corpus:       kind,
			Products:     []int{10_000},
			DocCounts:    []int{50},
			Seed:         3,
			Vocab:        5_000,
			MeanDocTerms: mean,
		})
		if err != nil {
			t.Fatal(err)
		}
		return pts[0].Throughput
	}
	wt := run(dataset.CorpusWT, 0)   // preset 64.8 terms
	ap := run(dataset.CorpusAP, 600) // scaled-down long docs
	if wt <= 2*ap {
		t.Fatalf("WT throughput %v should be well above AP %v", wt, ap)
	}
}

func TestRunSingleNodeValidation(t *testing.T) {
	if _, err := RunSingleNode(SingleNodeParams{}); !errors.Is(err, ErrBadParams) {
		t.Fatalf("err = %v", err)
	}
}

func TestRunClusterValidation(t *testing.T) {
	if _, err := RunCluster(ClusterParams{}); !errors.Is(err, ErrBadParams) {
		t.Fatalf("err = %v", err)
	}
}

// TestFigure8OrderingAtDefaults is the paper's headline: at the §VI.C
// defaults, Move > RS > IL.
func TestFigure8OrderingAtDefaults(t *testing.T) {
	d := DefaultsAt(tiny)
	pt, err := runSchemes(ClusterParams{
		Nodes:     d.Nodes,
		Filters:   d.Filters,
		Docs:      d.Docs,
		Capacity:  d.Capacity,
		CostScale: d.CostScale,
		Corpus:    dataset.CorpusWT,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !(pt.Move > pt.RS) {
		t.Errorf("Move (%v) should beat RS (%v)", pt.Move, pt.RS)
	}
	if !(pt.RS > pt.IL) {
		t.Errorf("RS (%v) should beat IL (%v)", pt.RS, pt.IL)
	}
}

func TestFigure9LoadOrdering(t *testing.T) {
	// Figure 9(a): RS most even, IL most skewed, Move between.
	load, err := RunFigure9Load(tiny, true)
	if err != nil {
		t.Fatal(err)
	}
	if !(load.CVRS < load.CVMove) {
		t.Errorf("storage: RS CV %v should be below Move CV %v", load.CVRS, load.CVMove)
	}
	if !(load.CVMove < load.CVIL) {
		t.Errorf("storage: Move CV %v should be below IL CV %v", load.CVMove, load.CVIL)
	}
}

func TestFigure9MatchingCostOrdering(t *testing.T) {
	// Figure 9(b): IL most skewed; Move more even than RS is not required
	// in all scaled runs, but IL must be the worst.
	load, err := RunFigure9Load(tiny, false)
	if err != nil {
		t.Fatal(err)
	}
	if !(load.CVIL > load.CVMove) {
		t.Errorf("matching: IL CV %v should exceed Move CV %v", load.CVIL, load.CVMove)
	}
}

func TestFigure9FailureShape(t *testing.T) {
	rows, err := RunFigure9Failure(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	byName := make(map[string]Figure9Failure)
	for _, r := range rows {
		byName[r.Placement.String()] = r
	}
	// Availability at zero failures is 1 for all.
	for name, r := range byName {
		if r.AvailabilityOK < 0.999 {
			t.Errorf("%s availability without failures = %v", name, r.AvailabilityOK)
		}
	}
	// Rack-correlated failures: rack placement must lose the most filters.
	rack, ringP, hybrid := byName["rack"], byName["ring"], byName["hybrid"]
	if !(rack.AvailabilityFail <= ringP.AvailabilityFail) {
		t.Errorf("rack availability %v should be <= ring %v under rack failures",
			rack.AvailabilityFail, ringP.AvailabilityFail)
	}
	if !(hybrid.AvailabilityFail >= rack.AvailabilityFail) {
		t.Errorf("hybrid availability %v should be >= rack %v", hybrid.AvailabilityFail, rack.AvailabilityFail)
	}
}

func TestAblationsRun(t *testing.T) {
	pts, err := RunAblationStrategies(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 8 {
		t.Fatalf("got %d strategy points, want 4 strategies × {full, rows-only}", len(pts))
	}
	bl, err := RunAblationBloom(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(bl) != 2 {
		t.Fatalf("got %d bloom points", len(bl))
	}
	for _, p := range append(pts, bl...) {
		if p.Throughput <= 0 {
			t.Errorf("%s throughput = %v", p.Name, p.Throughput)
		}
	}
}

// TestFigure8SweepsSmoke runs each Figure 8 sweep at the test scale and
// checks the structural invariants (positive throughput everywhere, IL
// never the best).
func TestFigure8SweepsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps take tens of seconds")
	}
	type sweep struct {
		name string
		run  func(Scale) ([]SchemePoint, error)
	}
	for _, s := range []sweep{
		{"8a", RunFigure8a},
		{"8b", RunFigure8b},
		{"8c", RunFigure8c},
	} {
		t.Run(s.name, func(t *testing.T) {
			pts, err := s.run(tiny)
			if err != nil {
				t.Fatal(err)
			}
			if len(pts) < 4 {
				t.Fatalf("only %d points", len(pts))
			}
			for _, p := range pts {
				if p.Move <= 0 || p.IL <= 0 || p.RS <= 0 {
					t.Fatalf("non-positive throughput at x=%d: %+v", p.X, p)
				}
				if p.IL > p.Move && p.IL > p.RS {
					t.Errorf("IL best at x=%d: %+v", p.X, p)
				}
			}
		})
	}
}

func TestRunClusterWithTraces(t *testing.T) {
	fg, err := dataset.NewFilterGen(dataset.FilterConfig{DistinctTerms: 1_000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	filters := dataset.Generate(300, fg.Next)
	dg, err := dataset.NewDocGen(dataset.CorpusConfig{Kind: dataset.CorpusWT, DistinctTerms: 2_000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	docs := dataset.Generate(100, dg.Next)

	for _, scheme := range []cluster.Scheme{cluster.SchemeMove, cluster.SchemeIL, cluster.SchemeRS} {
		out, err := RunClusterWithTraces(ClusterParams{Scheme: scheme, Nodes: 8, Seed: 1}, filters, docs)
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if out.Docs != 100 || out.Complete != 100 {
			t.Fatalf("%v: docs=%d complete=%d", scheme, out.Docs, out.Complete)
		}
		if out.Throughput <= 0 {
			t.Fatalf("%v: throughput=%v", scheme, out.Throughput)
		}
	}
	if _, err := RunClusterWithTraces(ClusterParams{Nodes: 4}, nil, docs); !errors.Is(err, ErrBadParams) {
		t.Fatalf("empty filters: %v", err)
	}
}

// TestFigure8OrderingRobustAcrossSeeds guards the calibration: the headline
// ordering must hold for several seeds, not just the default.
func TestFigure8OrderingRobustAcrossSeeds(t *testing.T) {
	d := DefaultsAt(tiny)
	for _, seed := range []int64{1, 2, 3} {
		pt, err := runSchemes(ClusterParams{
			Nodes:     d.Nodes,
			Filters:   d.Filters,
			Docs:      d.Docs,
			Capacity:  d.Capacity,
			CostScale: d.CostScale,
			Corpus:    dataset.CorpusWT,
			Seed:      seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !(pt.Move > pt.IL && pt.RS > pt.IL) {
			t.Errorf("seed %d: IL (%v) should be lowest (Move %v, RS %v)", seed, pt.IL, pt.Move, pt.RS)
		}
		if pt.Move < pt.RS*0.9 {
			t.Errorf("seed %d: Move (%v) fell well below RS (%v)", seed, pt.Move, pt.RS)
		}
	}
}
