// Package experiments regenerates every figure of the paper's evaluation
// (§VI). Each Run* function builds the workload from the calibrated
// synthetic datasets, drives the real cluster (or a single real matcher for
// Figures 6–7), and returns the same series the paper plots. The package is
// shared by cmd/movebench (pretty-printing) and the repository-level
// benchmarks in bench_test.go.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"math"

	"github.com/movesys/move/internal/alloc"
	"github.com/movesys/move/internal/cluster"
	"github.com/movesys/move/internal/dataset"
	"github.com/movesys/move/internal/index"
	"github.com/movesys/move/internal/model"
	"github.com/movesys/move/internal/ring"
	"github.com/movesys/move/internal/sim"
	"github.com/movesys/move/internal/stats"
	"github.com/movesys/move/internal/store"
)

// Scale shrinks the paper's workload sizes so a laptop regenerates every
// figure in minutes. Scale 1.0 is paper scale (4×10⁶ filters etc.).
type Scale float64

// DefaultScale keeps default runs around a few seconds per figure.
const DefaultScale Scale = 0.01

// apply scales a paper-sized count, keeping at least lo.
func (s Scale) apply(paper int, lo int) int {
	v := int(float64(paper) * float64(s))
	if v < lo {
		return lo
	}
	return v
}

// ErrBadParams reports invalid experiment parameters.
var ErrBadParams = errors.New("experiments: invalid parameters")

// scaledAPMean shrinks the AP document length with the scale while keeping
// the paper's AP ≫ WT relation (6054.9 vs 64.8 terms per doc) intact.
func scaledAPMean(scale Scale) float64 {
	return math.Max(3*dataset.WTMeanTermsPerDoc, dataset.APMeanTermsPerDoc*float64(scale)*10)
}

// --- §VI.A dataset statistics + Figures 4 and 5 ---

// DatasetStats reproduces the in-text statistics of §VI.A.
type DatasetStats struct {
	// MeanTermsPerFilter ↔ 2.843.
	MeanTermsPerFilter float64
	// FilterLenCDF1/2/3 ↔ 31.33% / 67.75% / 85.31%.
	FilterLenCDF1, FilterLenCDF2, FilterLenCDF3 float64
	// TopAnchorMass ↔ 0.437 (over the scaled top-1000 anchor).
	TopAnchorMass float64
	// MeanTermsWT ↔ 64.8 and MeanTermsAP ↔ 6054.9 (scaled).
	MeanTermsWT, MeanTermsAP float64
	// EntropyWT ↔ 6.7593 and EntropyAP ↔ 9.4473 (sample estimates).
	EntropyWT, EntropyAP float64
	// OverlapWT ↔ 31.3% and OverlapAP ↔ 26.9%.
	OverlapWT, OverlapAP float64
}

// RunDatasetStats generates scaled traces and measures the §VI.A numbers.
func RunDatasetStats(scale Scale, seed int64) (DatasetStats, error) {
	var out DatasetStats
	vocab := scale.apply(dataset.MSNDistinctTerms, 5_000)
	nFilters := scale.apply(4_000_000, 20_000)
	fg, err := dataset.NewFilterGen(dataset.FilterConfig{DistinctTerms: vocab, Seed: seed})
	if err != nil {
		return out, err
	}
	fCounter := stats.NewTermCounter()
	lenCounts := make(map[int]int)
	totalTerms := 0
	for i := 0; i < nFilters; i++ {
		terms := fg.Next()
		fCounter.Observe(terms)
		lenCounts[len(terms)]++
		totalTerms += len(terms)
	}
	out.MeanTermsPerFilter = float64(totalTerms) / float64(nFilters)
	cdf := func(k int) float64 {
		c := 0
		for l, n := range lenCounts {
			if l <= k {
				c += n
			}
		}
		return float64(c) / float64(nFilters)
	}
	out.FilterLenCDF1, out.FilterLenCDF2, out.FilterLenCDF3 = cdf(1), cdf(2), cdf(3)

	anchor := int(float64(vocab) * 1000 / dataset.MSNDistinctTerms)
	if anchor < 10 {
		anchor = 10
	}
	ranked := fCounter.Ranked(0)
	var mass, all float64
	for i, r := range ranked {
		if i < anchor {
			mass += r.Rate
		}
		all += r.Rate
	}
	if all > 0 {
		out.TopAnchorMass = mass / all
	}

	docVocab := scale.apply(1_000_000, 10_000)
	nDocs := scale.apply(100_000, 1_000)
	apMean := scaledAPMean(scale)
	wt, err := dataset.NewDocGen(dataset.CorpusConfig{Kind: dataset.CorpusWT, DistinctTerms: docVocab, Seed: seed + 1})
	if err != nil {
		return out, err
	}
	ap, err := dataset.NewDocGen(dataset.CorpusConfig{Kind: dataset.CorpusAP, DistinctTerms: docVocab, MeanTerms: apMean, Seed: seed + 2})
	if err != nil {
		return out, err
	}
	wtC, apC := stats.NewTermCounter(), stats.NewTermCounter()
	wtTerms, apTerms := 0, 0
	apDocs := nDocs / 10 // AP is the smaller corpus in the paper (1050 docs)
	if apDocs < 100 {
		apDocs = 100
	}
	for i := 0; i < nDocs; i++ {
		terms := wt.Next()
		wtTerms += len(terms)
		wtC.Observe(terms)
	}
	for i := 0; i < apDocs; i++ {
		terms := ap.Next()
		apTerms += len(terms)
		apC.Observe(terms)
	}
	out.MeanTermsWT = float64(wtTerms) / float64(nDocs)
	out.MeanTermsAP = float64(apTerms) / float64(apDocs)
	out.EntropyWT = wtC.Entropy()
	out.EntropyAP = apC.Entropy()

	anchorDocs := dataset.OverlapAnchor(docVocab)
	queryTop := fCounter.TopKTerms(anchorDocs)
	out.OverlapWT = stats.Overlap(queryTop, wtC.TopKTerms(anchorDocs))
	out.OverlapAP = stats.Overlap(queryTop, apC.TopKTerms(anchorDocs))
	return out, nil
}

// RankedPoint is one point of a ranked log-log distribution (Figures 4–5).
type RankedPoint struct {
	Rank int
	Rate float64
}

// RunFigure4 returns the ranked filter-term popularity distribution.
func RunFigure4(scale Scale, seed int64, points int) ([]RankedPoint, error) {
	vocab := scale.apply(dataset.MSNDistinctTerms, 5_000)
	nFilters := scale.apply(4_000_000, 20_000)
	fg, err := dataset.NewFilterGen(dataset.FilterConfig{DistinctTerms: vocab, Seed: seed})
	if err != nil {
		return nil, err
	}
	c := stats.NewTermCounter()
	for i := 0; i < nFilters; i++ {
		c.Observe(fg.Next())
	}
	return samplePoints(c.Ranked(0), points), nil
}

// Figure5Series holds the two corpora's ranked frequency rates.
type Figure5Series struct {
	AP []RankedPoint
	WT []RankedPoint
}

// RunFigure5 returns the ranked document-term frequency distributions.
func RunFigure5(scale Scale, seed int64, points int) (Figure5Series, error) {
	var out Figure5Series
	vocab := scale.apply(1_000_000, 10_000)
	nDocs := scale.apply(100_000, 1_000)
	wt, err := dataset.NewDocGen(dataset.CorpusConfig{Kind: dataset.CorpusWT, DistinctTerms: vocab, Seed: seed})
	if err != nil {
		return out, err
	}
	apMean := scaledAPMean(scale)
	ap, err := dataset.NewDocGen(dataset.CorpusConfig{Kind: dataset.CorpusAP, DistinctTerms: vocab, MeanTerms: apMean, Seed: seed + 1})
	if err != nil {
		return out, err
	}
	wtC, apC := stats.NewTermCounter(), stats.NewTermCounter()
	for i := 0; i < nDocs; i++ {
		wtC.Observe(wt.Next())
	}
	apDocs := nDocs / 10
	if apDocs < 100 {
		apDocs = 100
	}
	for i := 0; i < apDocs; i++ {
		apC.Observe(ap.Next())
	}
	out.WT = samplePoints(wtC.Ranked(0), points)
	out.AP = samplePoints(apC.Ranked(0), points)
	return out, nil
}

// samplePoints thins a ranked distribution to roughly log-spaced points.
func samplePoints(ranked []stats.RankedRate, points int) []RankedPoint {
	if points <= 0 || len(ranked) <= points {
		out := make([]RankedPoint, len(ranked))
		for i, r := range ranked {
			out[i] = RankedPoint{Rank: r.Rank, Rate: r.Rate}
		}
		return out
	}
	out := make([]RankedPoint, 0, points)
	maxRank := float64(len(ranked))
	step := math.Pow(maxRank, 1/float64(points-1))
	rank := 1.0
	prev := 0
	for i := 0; i < points; i++ {
		idx := int(math.Round(rank)) - 1
		if idx <= prev-1 {
			idx = prev
		}
		if idx >= len(ranked) {
			break
		}
		r := ranked[idx]
		out = append(out, RankedPoint{Rank: r.Rank, Rate: r.Rate})
		prev = idx + 1
		rank *= step
	}
	return out
}

// --- Figures 6–7: single-node throughput ---

// SingleNodePoint is one measurement of the Figures 6–7 sweep.
type SingleNodePoint struct {
	// R is the fixed product P×Q.
	R int
	// Q is the number of processed documents; P = R/Q filters.
	Q int
	P int
	// Throughput is matching throughput for the fixed R workload:
	// (P×Q document-filter pairs) / processing time. With R fixed across a
	// series this is proportional to 1/processing-time, which is the
	// paper's y-axis up to a constant; it rises as Q shrinks (per-document
	// posting-list retrievals dominate for long articles) and dips again
	// once P exceeds the disk capacity (the §VI.B "smaller Q does not
	// certainly mean higher throughput" observation).
	Throughput float64
	// BusySeconds is the raw virtual processing time.
	BusySeconds float64
}

// SingleNodeParams configures the Figures 6–7 experiment.
type SingleNodeParams struct {
	Corpus dataset.CorpusKind
	// Products are the fixed R = P×Q values (paper: 1e5, 1e6, 1e7).
	Products []int
	// DocCounts are the Q values swept (paper: 1..1000).
	DocCounts []int
	Seed      int64
	// Capacity bounds P; points whose P exceed it get the §VI.B disk-IO
	// penalty (the paper's "when P is very large, the disk IO becomes the
	// performance bottleneck"). Zero means 5×10⁶ scaled by P's magnitude.
	Capacity int
	// Vocab is the shared vocabulary size; 0 means 30,000.
	Vocab int
	// MeanDocTerms overrides the corpus preset (scaled runs shrink AP).
	MeanDocTerms float64
}

// RunSingleNode measures the matching throughput of one node as the paper
// does on a single machine: Q documents matched against P = R/Q filters
// with the centralized inverted-list algorithm. Cost is virtual time from
// the §IV model (y_p per posting entry scanned plus a per-posting-list
// retrieval charge), which reproduces the paper's disk-IO-bound shape
// deterministically.
func RunSingleNode(p SingleNodeParams) ([]SingleNodePoint, error) {
	if len(p.Products) == 0 || len(p.DocCounts) == 0 {
		return nil, fmt.Errorf("%w: empty sweep", ErrBadParams)
	}
	vocab := p.Vocab
	if vocab == 0 {
		vocab = 30_000
	}
	var out []SingleNodePoint
	for _, r := range p.Products {
		for _, q := range p.DocCounts {
			if q <= 0 || q > r {
				continue
			}
			pt, err := runSingleNodePoint(p, r, q, vocab)
			if err != nil {
				return nil, err
			}
			out = append(out, pt)
		}
	}
	return out, nil
}

// Cost constants for the single-node virtual clock: a posting-list
// retrieval is one random read (seek-dominated on the paper's spinning
// disks), each posting entry adds sequential scan time.
const (
	seekSeconds    = 5e-3
	postingSeconds = 2e-6
	// diskPenalty multiplies scan cost once the filter set exceeds the
	// node's memory/disk capacity C (Figure 6's "smaller Q does not
	// certainly mean higher throughput" dip).
	diskPenalty = 8.0
)

func runSingleNodePoint(p SingleNodeParams, r, q, vocab int) (SingleNodePoint, error) {
	nFilters := r / q
	pt := SingleNodePoint{R: r, Q: q, P: nFilters}

	st, err := store.Open("", store.Options{})
	if err != nil {
		return pt, err
	}
	ix, err := index.New(st)
	if err != nil {
		return pt, err
	}
	fg, err := dataset.NewFilterGen(dataset.FilterConfig{DistinctTerms: vocab, Seed: p.Seed + int64(r) + int64(q)})
	if err != nil {
		return pt, err
	}
	for i := 0; i < nFilters; i++ {
		terms := fg.Next()
		f := model.Filter{ID: model.FilterID(i + 1), Subscriber: "s", Terms: terms, Mode: model.MatchAny}
		if err := ix.Register(f, terms); err != nil {
			return pt, err
		}
	}
	dg, err := dataset.NewDocGen(dataset.CorpusConfig{
		Kind:          p.Corpus,
		DistinctTerms: vocab,
		MeanTerms:     p.MeanDocTerms,
		Seed:          p.Seed + int64(r) + int64(q) + 7,
	})
	if err != nil {
		return pt, err
	}

	var lists, postings int64
	for i := 0; i < q; i++ {
		doc := model.Document{ID: uint64(i + 1), Terms: dg.Next()}
		_, ms, err := ix.MatchSIFT(&doc)
		if err != nil {
			return pt, err
		}
		lists += int64(ms.PostingLists)
		postings += int64(ms.Postings)
	}
	capacity := p.Capacity
	if capacity == 0 {
		capacity = 5_000_000
	}
	scan := postingSeconds
	if nFilters > capacity {
		scan *= diskPenalty
	}
	busy := seekSeconds*float64(lists) + scan*float64(postings)
	pt.BusySeconds = busy
	if busy > 0 {
		pt.Throughput = float64(r) / busy
	}
	return pt, nil
}

// --- Figure 8: cluster throughput sweeps ---

// GridMode selects how allocation units are formed.
type GridMode int

// Grid modes for the §V forwarding-table ablation.
const (
	// GridPerNode aggregates all of a home node's terms into one grid
	// (the paper's deployed design, §V).
	GridPerNode GridMode = iota
	// GridPerTerm allocates the hottest terms individually.
	GridPerTerm
)

// Policy selects when allocation happens (§V "Allocation Policy").
type Policy int

// Allocation policies.
const (
	// PolicyProactive allocates from pre-registration statistics plus an
	// offline warm-up corpus, before the measured load (the paper's
	// choice).
	PolicyProactive Policy = iota
	// PolicyPassive allocates only after the hot pattern has emerged,
	// mid-measurement — paying the migration traffic inside the window.
	PolicyPassive
)

// ClusterParams configures one cluster measurement.
type ClusterParams struct {
	Scheme    cluster.Scheme
	Nodes     int
	Filters   int
	Docs      int
	Capacity  int
	Placement ring.Placement
	Strategy  alloc.Strategy
	Corpus    dataset.CorpusKind
	// Vocab is the shared vocabulary; 0 means max(10000, Filters/10).
	Vocab int
	// MeanDocTerms overrides the corpus preset.
	MeanDocTerms float64
	// WarmDocs are published before allocation so q_i statistics exist
	// (the §V proactive policy's offline corpus); 0 means Docs/10 (≥20).
	WarmDocs int
	// FailFraction crashes that share of nodes after allocation;
	// FailByRack makes failures rack-correlated.
	FailFraction float64
	FailByRack   bool
	// DisableBloom turns the dissemination Bloom gate off (ablation
	// BenchmarkAblationBloom); default off = gate enabled.
	DisableBloom bool
	// CostScale compensates for scaled-down workloads: when the filter set
	// is k× smaller than paper scale, posting lists are k× shorter, so the
	// per-posting scan constant y_p is multiplied by CostScale (≈ k) to
	// keep the scan:seek:transfer balance the paper's hardware had. 0 or
	// 1 means no compensation (paper-scale runs).
	CostScale float64
	// Grid selects per-node (default, the paper's §V design) or per-term
	// allocation units.
	Grid GridMode
	// TermTopK bounds per-term allocation to the hottest K terms; 0 means
	// 64.
	TermTopK int
	// Policy selects proactive (default) or passive allocation timing.
	Policy Policy
	// NoSeparation disables the optimizer's balance-driven separation
	// columns (rows-only ablation of the pure §IV formulas).
	NoSeparation bool
	// Ratio overrides the §IV-B allocation-ratio choice (pure replication
	// vs pure separation ablation).
	Ratio alloc.RatioMode
	Seed  int64
}

// ClusterOutcome is one cluster measurement.
type ClusterOutcome struct {
	// Throughput is complete documents per virtual second.
	Throughput float64
	// Docs and Complete count the measured window.
	Docs, Complete int
	// StoragePerNode is each node's stored filter definitions (Fig 9a).
	StoragePerNode []float64
	// MatchPerNode is each node's term match evaluations in the measured
	// window (Fig 9b) — framing-invariant, unlike raw frame counts.
	MatchPerNode []float64
	// Availability is the live-filter fraction (Fig 9d).
	Availability float64
	// Transfers counts document transfer attempts.
	Transfers int64
	// BottleneckSeconds is the busiest node's virtual time.
	BottleneckSeconds float64
}

// RunClusterWithTraces is RunCluster on user-supplied traces instead of
// the synthetic generators — the path for reproducing on the real MSN and
// TREC data when available. filters and docs are preprocessed term sets
// (one slice per item); documents are consumed in order (wrapping) for the
// warm-up plus the measured window.
func RunClusterWithTraces(p ClusterParams, filters, docs [][]string) (ClusterOutcome, error) {
	if len(filters) == 0 || len(docs) == 0 {
		return ClusterOutcome{}, fmt.Errorf("%w: empty trace", ErrBadParams)
	}
	p.Filters = len(filters)
	if p.Docs == 0 {
		p.Docs = len(docs)
	}
	if p.Nodes < 1 {
		return ClusterOutcome{}, fmt.Errorf("%w: %+v", ErrBadParams, p)
	}
	fi, di := 0, 0
	nextFilter := func() []string {
		terms := filters[fi%len(filters)]
		fi++
		return terms
	}
	nextDoc := func() []string {
		terms := docs[di%len(docs)]
		di++
		return terms
	}
	return runCluster(p, nextFilter, nextDoc)
}

// RunCluster performs one full §VI.C/§VI.D measurement on the calibrated
// synthetic workloads.
func RunCluster(p ClusterParams) (ClusterOutcome, error) {
	if p.Nodes < 1 || p.Filters < 1 || p.Docs < 1 {
		return ClusterOutcome{}, fmt.Errorf("%w: %+v", ErrBadParams, p)
	}
	if p.Corpus == 0 {
		p.Corpus = dataset.CorpusWT
	}
	vocab := p.Vocab
	if vocab == 0 {
		// Preserve the paper's per-node term coverage: with P filters of
		// 2.84 terms over N=20 nodes and the MSN vocabulary, each node's
		// local dictionary covers a large share of the query vocabulary,
		// which is what makes RS flooding pay ~|d|·coverage posting-list
		// retrievals per node. Scaling the query vocabulary as P/10 (and
		// the document vocabulary as 2× that) keeps the ratio at any
		// scale.
		vocab = p.Filters / 10
		if vocab < 400 {
			vocab = 400
		}
	}
	// Documents draw from a larger vocabulary than queries (WT10G has far
	// more distinct terms than the MSN trace), so a sizable fraction of
	// document terms are not filter terms — the population the §V Bloom
	// gate prunes.
	docVocab := 2 * vocab
	fg, err := dataset.NewFilterGen(dataset.FilterConfig{DistinctTerms: vocab, Seed: p.Seed + 2})
	if err != nil {
		return ClusterOutcome{}, err
	}
	dg, err := dataset.NewDocGen(dataset.CorpusConfig{
		Kind:          p.Corpus,
		DistinctTerms: docVocab,
		MeanTerms:     p.MeanDocTerms,
		Seed:          p.Seed + 3,
	})
	if err != nil {
		return ClusterOutcome{}, err
	}
	return runCluster(p, fg.Next, dg.Next)
}

// runCluster is the shared measurement core.
func runCluster(p ClusterParams, nextFilter, nextDoc func() []string) (ClusterOutcome, error) {
	var out ClusterOutcome
	c, err := cluster.New(cluster.Config{
		Scheme:            p.Scheme,
		Nodes:             p.Nodes,
		Capacity:          p.Capacity,
		Placement:         p.Placement,
		AllocStrategy:     p.Strategy,
		AllocNoSeparation: p.NoSeparation,
		AllocRatio:        p.Ratio,
		Seed:              p.Seed + 1,
	})
	if err != nil {
		return out, err
	}
	ctx := context.Background()

	for i := 0; i < p.Filters; i++ {
		if _, err := c.Register(ctx, "sub", nextFilter(), model.MatchAny, 0); err != nil {
			return out, err
		}
	}
	if !p.DisableBloom {
		if err := c.RefreshBloom(ctx); err != nil {
			return out, err
		}
	}

	allocate := func() error {
		if p.Grid == GridPerTerm {
			topK := p.TermTopK
			if topK == 0 {
				topK = 64
			}
			_, err := c.AllocateByTerm(ctx, topK)
			return err
		}
		_, err := c.Allocate(ctx)
		return err
	}

	// Warm-up + allocation (Move only): learn q_i, then allocate. The
	// passive policy defers allocation into the measured window instead.
	if p.Scheme == cluster.SchemeMove && p.Policy == PolicyProactive {
		warm := p.WarmDocs
		if warm == 0 {
			// The §V proactive policy estimates q_i from an offline corpus
			// before allocating; a window of half the measured load keeps
			// the node-frequency estimates stable.
			warm = p.Docs / 2
			if warm < 100 {
				warm = 100
			}
		}
		for i := 0; i < warm; i++ {
			if _, err := c.Publish(ctx, nextDoc()); err != nil {
				return out, err
			}
		}
		if err := allocate(); err != nil {
			return out, err
		}
	}

	// Failure injection happens after registration/allocation, as in the
	// paper's §VI.D methodology.
	if p.FailFraction > 0 {
		c.FailFraction(p.FailFraction, p.FailByRack)
	}

	// Measured window.
	before, err := c.PullLoads(ctx)
	if err != nil {
		return out, err
	}
	c.ResetTransferStats()
	complete := 0
	for i := 0; i < p.Docs; i++ {
		// Passive policy: the hot pattern must first be observed live, so
		// allocation (and its migration traffic) lands mid-window.
		if p.Scheme == cluster.SchemeMove && p.Policy == PolicyPassive && i == p.Docs/2 {
			if err := allocate(); err != nil {
				return out, err
			}
		}
		res, err := c.Publish(ctx, nextDoc())
		if err != nil {
			return out, err
		}
		if res.Complete {
			complete++
		}
	}
	after, err := c.PullLoads(ctx)
	if err != nil {
		return out, err
	}
	transfers := c.Transfers()

	prev := make(map[ring.NodeID]cluster.NodeLoad, len(before))
	for _, l := range before {
		prev[l.ID] = l
	}
	works := make([]sim.NodeWork, 0, len(after))
	for _, l := range after {
		w := sim.NodeWork{ID: l.ID}
		w.PostingsScanned = l.PostingsScanned - prev[l.ID].PostingsScanned
		w.PostingLists = l.PostingLists - prev[l.ID].PostingLists
		intra := transfers.PerNodeReceivedIntra[l.ID]
		w.DocsReceivedIntra = intra
		w.DocsReceivedInter = transfers.PerNodeReceived[l.ID] - intra
		works = append(works, w)
		out.StoragePerNode = append(out.StoragePerNode, float64(l.StorageFilters))
		out.MatchPerNode = append(out.MatchPerNode, float64(l.TermsMatched-prev[l.ID].TermsMatched))
	}
	costModel := sim.DefaultCostModel()
	if p.CostScale > 1 {
		costModel.YP *= p.CostScale
	}
	res, err := sim.Evaluate(costModel, p.Docs, complete, works)
	if err != nil {
		return out, err
	}
	out.Throughput = res.Throughput
	out.Docs = p.Docs
	out.Complete = complete
	out.Availability = c.AvailableFilterFraction()
	out.Transfers = transfers.Total
	out.BottleneckSeconds = res.BottleneckSeconds
	return out, nil
}
