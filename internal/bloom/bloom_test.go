package bloom

import (
	"errors"
	"strconv"
	"testing"
	"testing/quick"
)

func TestNewRejectsInvalidParams(t *testing.T) {
	cases := []struct {
		expected int
		p        float64
	}{
		{0, 0.01}, {-1, 0.01}, {100, 0}, {100, 1}, {100, -0.5}, {100, 1.5},
	}
	for _, c := range cases {
		if _, err := New(c.expected, c.p); !errors.Is(err, ErrInvalidParams) {
			t.Errorf("New(%d, %v) error = %v, want ErrInvalidParams", c.expected, c.p, err)
		}
	}
}

func TestNoFalseNegatives(t *testing.T) {
	f := MustNew(1000, 0.01)
	for i := 0; i < 1000; i++ {
		f.Add("term-" + strconv.Itoa(i))
	}
	for i := 0; i < 1000; i++ {
		if !f.Contains("term-" + strconv.Itoa(i)) {
			t.Fatalf("false negative for term-%d", i)
		}
	}
	if f.Count() != 1000 {
		t.Fatalf("Count = %d, want 1000", f.Count())
	}
}

func TestFalsePositiveRateNearTarget(t *testing.T) {
	const n = 10000
	f := MustNew(n, 0.01)
	for i := 0; i < n; i++ {
		f.Add("in-" + strconv.Itoa(i))
	}
	fp := 0
	const probes = 20000
	for i := 0; i < probes; i++ {
		if f.Contains("out-" + strconv.Itoa(i)) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.03 {
		t.Fatalf("observed false-positive rate %.4f exceeds 3x the 0.01 target", rate)
	}
	if est := f.EstimatedFalsePositiveRate(); est <= 0 || est > 0.02 {
		t.Fatalf("EstimatedFalsePositiveRate = %v, want in (0, 0.02]", est)
	}
}

func TestEmptyFilterContainsNothing(t *testing.T) {
	f := MustNew(100, 0.01)
	for i := 0; i < 100; i++ {
		if f.Contains("x" + strconv.Itoa(i)) {
			t.Fatalf("empty filter claims to contain %d", i)
		}
	}
	if f.EstimatedFalsePositiveRate() != 0 {
		t.Fatal("empty filter should report zero FPR")
	}
}

func TestUnion(t *testing.T) {
	a := MustNew(100, 0.01)
	b := MustNew(100, 0.01)
	a.Add("alpha")
	b.Add("beta")
	if err := a.Union(b); err != nil {
		t.Fatal(err)
	}
	if !a.Contains("alpha") || !a.Contains("beta") {
		t.Fatal("union lost a key")
	}
	if a.Count() != 2 {
		t.Fatalf("Count after union = %d, want 2", a.Count())
	}
}

func TestUnionGeometryMismatch(t *testing.T) {
	a := MustNew(100, 0.01)
	b := MustNew(100000, 0.01)
	if err := a.Union(b); err == nil {
		t.Fatal("expected geometry mismatch error")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	f := MustNew(500, 0.02)
	keys := []string{"breaking", "news", "cassandra", "dht"}
	for _, k := range keys {
		f.Add(k)
	}
	data := f.Marshal()
	g, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if g.Bits() != f.Bits() || g.Hashes() != f.Hashes() || g.Count() != f.Count() {
		t.Fatal("round trip changed geometry")
	}
	for _, k := range keys {
		if !g.Contains(k) {
			t.Fatalf("round-tripped filter lost %q", k)
		}
	}
}

func TestUnmarshalRejectsCorrupt(t *testing.T) {
	if _, err := Unmarshal(nil); err == nil {
		t.Fatal("expected error for nil data")
	}
	if _, err := Unmarshal(make([]byte, 19)); err == nil {
		t.Fatal("expected error for short data")
	}
	f := MustNew(100, 0.01)
	data := f.Marshal()
	if _, err := Unmarshal(data[:len(data)-1]); err == nil {
		t.Fatal("expected error for truncated data")
	}
}

// TestContainsAfterAddProperty: anything added is always found, for
// arbitrary keys.
func TestContainsAfterAddProperty(t *testing.T) {
	f := MustNew(1<<12, 0.01)
	prop := func(key string) bool {
		f.Add(key)
		return f.Contains(key)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestMarshalRoundTripProperty: serialization preserves membership for
// arbitrary key sets.
func TestMarshalRoundTripProperty(t *testing.T) {
	prop := func(keys []string) bool {
		f := MustNew(256, 0.01)
		for _, k := range keys {
			f.Add(k)
		}
		g, err := Unmarshal(f.Marshal())
		if err != nil {
			return false
		}
		for _, k := range keys {
			if !g.Contains(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAdd(b *testing.B) {
	f := MustNew(1<<20, 0.01)
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = "term-" + strconv.Itoa(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Add(keys[i%len(keys)])
	}
}

func BenchmarkContains(b *testing.B) {
	f := MustNew(1<<20, 0.01)
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = "term-" + strconv.Itoa(i)
		f.Add(keys[i])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Contains(keys[i%len(keys)])
	}
}
