// Package bloom provides a Bloom filter over string keys. MOVE uses it to
// summarize the set of all terms appearing in registered filters (§V
// "Document Dissemination"): a document term is forwarded to its home node
// only if the Bloom filter reports it may be a filter term, which prunes
// forwarding for the long tail of document-only terms.
package bloom

import (
	"encoding/binary"
	"errors"
	"hash/fnv"
	"math"
)

// Filter is a standard Bloom filter using Kirsch–Mitzenmacher double
// hashing over a 64-bit FNV-1a digest. It is not safe for concurrent
// mutation; concurrent readers are safe once building has finished, which
// matches MOVE's usage (built at registration/refresh time, read on every
// publish).
type Filter struct {
	bits   []uint64
	m      uint64 // number of bits
	k      uint32 // number of hash functions
	n      uint64 // number of inserted keys
	hashed uint64 // salt mixed into the digest so independent filters differ
}

// ErrInvalidParams reports an impossible filter geometry.
var ErrInvalidParams = errors.New("bloom: capacity and false-positive rate must be positive")

// New creates a filter sized for the given expected number of keys and
// target false-positive probability p (0 < p < 1), using the optimal
// m = -n·ln p / (ln 2)^2 and k = (m/n)·ln 2.
func New(expected int, p float64) (*Filter, error) {
	if expected <= 0 || p <= 0 || p >= 1 {
		return nil, ErrInvalidParams
	}
	ln2 := math.Ln2
	mf := -float64(expected) * math.Log(p) / (ln2 * ln2)
	m := uint64(math.Ceil(mf))
	if m < 64 {
		m = 64
	}
	k := uint32(math.Round(mf / float64(expected) * ln2))
	if k < 1 {
		k = 1
	}
	if k > 30 {
		k = 30
	}
	return &Filter{
		bits: make([]uint64, (m+63)/64),
		m:    m,
		k:    k,
	}, nil
}

// MustNew is New for static parameters known to be valid; it panics on
// invalid input and is intended for package-level construction in tests and
// examples only.
func MustNew(expected int, p float64) *Filter {
	f, err := New(expected, p)
	if err != nil {
		panic(err)
	}
	return f
}

// digest returns the two base hashes for double hashing.
func digest(key string) (uint64, uint64) {
	h := fnv.New64a()
	// Writing to fnv never fails.
	_, _ = h.Write([]byte(key))
	h1 := h.Sum64()
	// Derive the second hash by hashing the first digest's bytes; this
	// gives an independent-enough stream for double hashing.
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], h1)
	h2 := fnv.New64a()
	_, _ = h2.Write(buf[:])
	return h1, h2.Sum64()
}

// Add inserts key into the filter.
func (f *Filter) Add(key string) {
	h1, h2 := digest(key)
	for i := uint32(0); i < f.k; i++ {
		idx := (h1 + uint64(i)*h2) % f.m
		f.bits[idx/64] |= 1 << (idx % 64)
	}
	f.n++
}

// Contains reports whether key may have been added. False positives occur
// with roughly the configured probability; false negatives never occur.
func (f *Filter) Contains(key string) bool {
	h1, h2 := digest(key)
	for i := uint32(0); i < f.k; i++ {
		idx := (h1 + uint64(i)*h2) % f.m
		if f.bits[idx/64]&(1<<(idx%64)) == 0 {
			return false
		}
	}
	return true
}

// Count returns the number of Add calls.
func (f *Filter) Count() uint64 { return f.n }

// Bits returns the number of bits in the filter.
func (f *Filter) Bits() uint64 { return f.m }

// Hashes returns the number of hash functions.
func (f *Filter) Hashes() uint32 { return f.k }

// EstimatedFalsePositiveRate returns the expected false-positive
// probability given the number of keys inserted so far:
// (1 - e^{-kn/m})^k.
func (f *Filter) EstimatedFalsePositiveRate() float64 {
	if f.n == 0 {
		return 0
	}
	exp := -float64(f.k) * float64(f.n) / float64(f.m)
	return math.Pow(1-math.Exp(exp), float64(f.k))
}

// Union merges other into f. Both filters must have identical geometry.
func (f *Filter) Union(other *Filter) error {
	if f.m != other.m || f.k != other.k {
		return errors.New("bloom: union of filters with different geometry")
	}
	for i, w := range other.bits {
		f.bits[i] |= w
	}
	f.n += other.n
	return nil
}

// Marshal serializes the filter to a compact binary form suitable for
// gossiping the term summary between nodes.
func (f *Filter) Marshal() []byte {
	out := make([]byte, 8+4+8+len(f.bits)*8)
	binary.LittleEndian.PutUint64(out[0:], f.m)
	binary.LittleEndian.PutUint32(out[8:], f.k)
	binary.LittleEndian.PutUint64(out[12:], f.n)
	for i, w := range f.bits {
		binary.LittleEndian.PutUint64(out[20+i*8:], w)
	}
	return out
}

// Unmarshal reconstructs a filter serialized by Marshal.
func Unmarshal(data []byte) (*Filter, error) {
	if len(data) < 20 {
		return nil, errors.New("bloom: truncated filter data")
	}
	m := binary.LittleEndian.Uint64(data[0:])
	k := binary.LittleEndian.Uint32(data[8:])
	n := binary.LittleEndian.Uint64(data[12:])
	words := int((m + 63) / 64)
	if len(data) != 20+words*8 {
		return nil, errors.New("bloom: filter data length mismatch")
	}
	if k == 0 || k > 64 {
		return nil, errors.New("bloom: invalid hash count")
	}
	f := &Filter{bits: make([]uint64, words), m: m, k: k, n: n}
	for i := range f.bits {
		f.bits[i] = binary.LittleEndian.Uint64(data[20+i*8:])
	}
	return f, nil
}
