package resilience

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/movesys/move/internal/metrics"
)

var errFlaky = errors.New("flaky")

// fastPolicy keeps test wall-clock time negligible.
func fastPolicy() Policy {
	return Policy{
		MaxAttempts:      3,
		BaseDelay:        time.Microsecond,
		MaxDelay:         10 * time.Microsecond,
		BreakerThreshold: 3,
		BreakerCooldown:  20 * time.Millisecond,
		Seed:             42,
	}
}

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	reg := metrics.NewRegistry()
	e := New(fastPolicy(), reg)
	calls := 0
	err := e.Do(context.Background(), "n1", func(context.Context) error {
		calls++
		if calls < 3 {
			return errFlaky
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do = %v, want success on third attempt", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	if got := reg.Counter("rpc.retries").Value(); got != 2 {
		t.Fatalf("rpc.retries = %d, want 2", got)
	}
	if got := reg.Counter("rpc.giveups").Value(); got != 0 {
		t.Fatalf("rpc.giveups = %d, want 0", got)
	}
}

func TestGiveUpAfterMaxAttempts(t *testing.T) {
	reg := metrics.NewRegistry()
	e := New(fastPolicy(), reg)
	calls := 0
	err := e.Do(context.Background(), "n1", func(context.Context) error {
		calls++
		return errFlaky
	})
	if !errors.Is(err, errFlaky) {
		t.Fatalf("Do = %v, want errFlaky", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want MaxAttempts=3", calls)
	}
	if got := reg.Counter("rpc.giveups").Value(); got != 1 {
		t.Fatalf("rpc.giveups = %d, want 1", got)
	}
}

func TestNonRetryableReturnsImmediately(t *testing.T) {
	p := fastPolicy()
	appErr := errors.New("bad request")
	p.Retryable = func(err error) bool { return !errors.Is(err, appErr) }
	e := New(p, nil)
	calls := 0
	err := e.Do(context.Background(), "n1", func(context.Context) error {
		calls++
		return appErr
	})
	if !errors.Is(err, appErr) || calls != 1 {
		t.Fatalf("Do = %v after %d calls, want appErr after 1", err, calls)
	}
	// Application errors must not trip the breaker: the peer answered.
	if st := e.State("n1"); st != StateClosed {
		t.Fatalf("breaker state = %v, want closed", st)
	}
}

func TestBreakerOpensAndRecovers(t *testing.T) {
	reg := metrics.NewRegistry()
	e := New(fastPolicy(), reg)
	// One failing call makes MaxAttempts=3 consecutive failures — exactly
	// the breaker threshold.
	_ = e.Do(context.Background(), "n1", func(context.Context) error { return errFlaky })
	if st := e.State("n1"); st != StateOpen {
		t.Fatalf("breaker state = %v, want open", st)
	}
	if got := reg.Counter("breaker.open").Value(); got == 0 {
		t.Fatal("breaker.open counter not incremented")
	}

	// While open: fail fast without invoking the call.
	calls := 0
	err := e.Do(context.Background(), "n1", func(context.Context) error { calls++; return nil })
	if !errors.Is(err, ErrOpen) || calls != 0 {
		t.Fatalf("Do = %v with %d calls, want ErrOpen with 0", err, calls)
	}
	if got := reg.Counter("breaker.fastfail").Value(); got != 1 {
		t.Fatalf("breaker.fastfail = %d, want 1", got)
	}

	// After the cooldown a half-open probe succeeds and closes the breaker.
	time.Sleep(25 * time.Millisecond)
	if err := e.Do(context.Background(), "n1", func(context.Context) error { return nil }); err != nil {
		t.Fatalf("probe Do = %v, want success", err)
	}
	if st := e.State("n1"); st != StateClosed {
		t.Fatalf("breaker state after probe = %v, want closed", st)
	}
}

func TestBreakerReopensOnFailedProbe(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 1, Cooldown: 10 * time.Millisecond, HalfOpenProbes: 1})
	if b.RecordFailure() != true {
		t.Fatal("first failure should open a threshold-1 breaker")
	}
	time.Sleep(12 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("half-open breaker should admit one probe")
	}
	if b.Allow() {
		t.Fatal("half-open breaker should admit only one probe")
	}
	if !b.RecordFailure() {
		t.Fatal("failed probe should re-open the breaker")
	}
	if b.Allow() {
		t.Fatal("re-opened breaker should reject")
	}
}

func TestResetClosesBreaker(t *testing.T) {
	e := New(fastPolicy(), nil)
	_ = e.Do(context.Background(), "n1", func(context.Context) error { return errFlaky })
	if e.State("n1") != StateOpen {
		t.Fatal("breaker should be open")
	}
	e.Reset("n1")
	if e.State("n1") != StateClosed {
		t.Fatal("Reset should close the breaker")
	}
}

func TestRetryBudgetExhaustion(t *testing.T) {
	p := fastPolicy()
	p.RetryBudget = 2
	reg := metrics.NewRegistry()
	e := New(p, reg)
	calls := 0
	// First call burns both retry tokens (2 retries), opening nothing new;
	// use distinct destinations so the breaker does not interfere.
	_ = e.Do(context.Background(), "a", func(context.Context) error { calls++; return errFlaky })
	if calls != 3 {
		t.Fatalf("first call attempts = %d, want 3", calls)
	}
	calls = 0
	_ = e.Do(context.Background(), "b", func(context.Context) error { calls++; return errFlaky })
	if calls != 1 {
		t.Fatalf("budget-exhausted call attempts = %d, want 1 (no retries)", calls)
	}
	// Successes refund the budget: after two first-attempt successes a
	// retry token is available again.
	_ = e.Do(context.Background(), "c", func(context.Context) error { return nil })
	_ = e.Do(context.Background(), "d", func(context.Context) error { return nil })
	calls = 0
	_ = e.Do(context.Background(), "e", func(context.Context) error { calls++; return errFlaky })
	if calls != 2 {
		t.Fatalf("post-refund call attempts = %d, want 2", calls)
	}
}

func TestDoStopsOnContextCancel(t *testing.T) {
	e := New(fastPolicy(), nil)
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	err := e.Do(ctx, "n1", func(context.Context) error {
		calls++
		cancel()
		return errFlaky
	})
	if !errors.Is(err, errFlaky) {
		t.Fatalf("Do = %v, want last error", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (no retry after cancel)", calls)
	}
}

func TestAttemptTimeoutAppliesPerAttempt(t *testing.T) {
	p := fastPolicy()
	p.MaxAttempts = 2
	p.AttemptTimeout = 5 * time.Millisecond
	p.Retryable = func(err error) bool { return errors.Is(err, context.DeadlineExceeded) }
	e := New(p, nil)
	calls := 0
	err := e.Do(context.Background(), "n1", func(ctx context.Context) error {
		calls++
		<-ctx.Done() // simulate a hung peer; the attempt deadline fires
		return ctx.Err()
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Do = %v, want deadline exceeded", err)
	}
	if calls != 2 {
		t.Fatalf("calls = %d, want 2 (hung attempt retried once)", calls)
	}
}

func TestDoValueReturnsResult(t *testing.T) {
	e := New(fastPolicy(), nil)
	calls := 0
	v, err := DoValue(e, context.Background(), "n1", func(context.Context) (int, error) {
		calls++
		if calls < 2 {
			return 0, errFlaky
		}
		return 41 + 1, nil
	})
	if err != nil || v != 42 {
		t.Fatalf("DoValue = (%d, %v), want (42, nil)", v, err)
	}
}

func TestExecutorConcurrentUse(t *testing.T) {
	e := New(fastPolicy(), nil)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			dest := string(rune('a' + i%4))
			for j := 0; j < 50; j++ {
				_ = e.Do(context.Background(), dest, func(context.Context) error {
					if j%3 == 0 {
						return errFlaky
					}
					return nil
				})
			}
		}(i)
	}
	wg.Wait()
}
