package resilience

import (
	"sync"
	"time"
)

// BreakerState is the circuit-breaker state machine position.
type BreakerState int

// The three classic breaker states.
const (
	// StateClosed passes every call through.
	StateClosed BreakerState = iota
	// StateOpen rejects every call until the cooldown elapses.
	StateOpen
	// StateHalfOpen admits a bounded number of probe calls; one success
	// closes the breaker, one failure re-opens it.
	StateHalfOpen
)

// String names the state.
func (s BreakerState) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateOpen:
		return "open"
	case StateHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// BreakerConfig parameterizes one Breaker.
type BreakerConfig struct {
	// Threshold is the number of consecutive failures that opens the
	// breaker.
	Threshold int
	// Cooldown is how long the breaker stays open before probing.
	Cooldown time.Duration
	// HalfOpenProbes is how many probe calls a half-open breaker admits
	// before rejecting again.
	HalfOpenProbes int
}

// Breaker is a per-destination circuit breaker. All methods are safe for
// concurrent use.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    BreakerState
	failures int
	openedAt time.Time
	probes   int
}

// NewBreaker builds a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.Threshold < 1 {
		cfg.Threshold = 1
	}
	if cfg.HalfOpenProbes < 1 {
		cfg.HalfOpenProbes = 1
	}
	return &Breaker{cfg: cfg}
}

// Allow reports whether a call may proceed, consuming a probe slot when
// half-open. An open breaker whose cooldown elapsed transitions to
// half-open on the way.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateClosed:
		return true
	case StateOpen:
		if time.Since(b.openedAt) < b.cfg.Cooldown {
			return false
		}
		b.state = StateHalfOpen
		b.probes = b.cfg.HalfOpenProbes
		fallthrough
	default: // StateHalfOpen
		if b.probes > 0 {
			b.probes--
			return true
		}
		return false
	}
}

// RecordSuccess closes the breaker and clears the failure streak.
func (b *Breaker) RecordSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = StateClosed
	b.failures = 0
}

// RecordFailure notes one availability failure; the return value is true
// exactly when this call transitioned the breaker to open (a half-open
// probe failure re-opens immediately; a closed breaker opens at the
// threshold).
func (b *Breaker) RecordFailure() (opened bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateHalfOpen:
		b.state = StateOpen
		b.openedAt = time.Now()
		return true
	case StateClosed:
		b.failures++
		if b.failures >= b.cfg.Threshold {
			b.state = StateOpen
			b.openedAt = time.Now()
			return true
		}
	}
	return false
}

// State returns the current state without consuming probes (an open
// breaker past its cooldown reports half-open).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == StateOpen && time.Since(b.openedAt) >= b.cfg.Cooldown {
		return StateHalfOpen
	}
	return b.state
}

// Reset force-closes the breaker.
func (b *Breaker) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = StateClosed
	b.failures = 0
	b.probes = 0
}
