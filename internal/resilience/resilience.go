// Package resilience hardens the cluster's RPC fabric: a retry Policy with
// exponential backoff and full jitter, per-attempt timeouts, a cluster-wide
// retry budget that prevents retry storms, and a per-destination circuit
// breaker that stops burning latency on dead peers while probing for their
// recovery. The paper's allocation grids replicate each term's filter set
// across 1/r_i partition rows precisely so the system tolerates node loss
// (§VI.D); this package supplies the transport-level half of that story so
// the replica-row failover in the node layer only ever deals with peers
// that are genuinely unreachable.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"github.com/movesys/move/internal/metrics"
)

// ErrOpen is returned by Do without invoking the call when the
// destination's circuit breaker is open (the peer failed repeatedly and
// its cooldown has not elapsed).
var ErrOpen = errors.New("resilience: circuit open")

// Policy parameterizes retries and circuit breaking. The zero value of any
// field selects the default noted on it.
type Policy struct {
	// MaxAttempts is the total number of tries per Do call, including the
	// first (default 3).
	MaxAttempts int
	// BaseDelay is the backoff cap before the first retry; the cap doubles
	// per attempt up to MaxDelay, and the actual sleep is drawn uniformly
	// from [0, cap) — "full jitter" (default 25ms).
	BaseDelay time.Duration
	// MaxDelay bounds the backoff cap (default 1s).
	MaxDelay time.Duration
	// AttemptTimeout bounds each individual attempt with a child context
	// deadline; zero disables per-attempt timeouts (the parent context
	// still applies).
	AttemptTimeout time.Duration
	// RetryBudget is a token bucket shared by all destinations of one
	// Executor: each retry spends one token, each first-attempt success
	// refunds half a token. When the bucket is empty, calls fail fast
	// after their first attempt instead of amplifying an outage into a
	// retry storm (default 64 tokens).
	RetryBudget int
	// Retryable classifies errors: only errors for which it returns true
	// are retried and counted against the circuit breaker. Nil retries
	// everything except context cancellation.
	Retryable func(error) bool
	// BreakerThreshold is the number of consecutive retryable failures
	// that opens a destination's breaker (default 3).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker rejects calls before
	// allowing half-open probes (default 500ms).
	BreakerCooldown time.Duration
	// HalfOpenProbes is how many concurrent probe calls a half-open
	// breaker admits (default 1).
	HalfOpenProbes int
	// Seed makes the jitter deterministic; zero derives a fixed seed.
	Seed int64
}

// DefaultPolicy returns the documented defaults.
func DefaultPolicy() Policy {
	return Policy{}.withDefaults()
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 3
	}
	if p.BaseDelay == 0 {
		p.BaseDelay = 25 * time.Millisecond
	}
	if p.MaxDelay == 0 {
		p.MaxDelay = time.Second
	}
	if p.RetryBudget == 0 {
		p.RetryBudget = 64
	}
	if p.BreakerThreshold == 0 {
		p.BreakerThreshold = 3
	}
	if p.BreakerCooldown == 0 {
		p.BreakerCooldown = 500 * time.Millisecond
	}
	if p.HalfOpenProbes == 0 {
		p.HalfOpenProbes = 1
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// budgetScale stores the token bucket in tenths so the half-token refund
// stays integral under atomics.
const budgetScale = 10

// Executor applies one Policy to calls against many destinations, keeping
// a circuit breaker per destination and a shared retry budget.
type Executor struct {
	p Policy

	retries      *metrics.Counter
	giveups      *metrics.Counter
	breakerOpens *metrics.Counter
	breakerFast  *metrics.Counter

	budget atomic.Int64

	rngMu sync.Mutex
	rng   *rand.Rand

	bmu      sync.RWMutex
	breakers map[string]*Breaker
}

// New builds an Executor. reg receives the counters rpc.retries,
// rpc.giveups, breaker.open, and breaker.fastfail; nil creates a private
// registry.
func New(p Policy, reg *metrics.Registry) *Executor {
	p = p.withDefaults()
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	e := &Executor{
		p:            p,
		retries:      reg.Counter("rpc.retries"),
		giveups:      reg.Counter("rpc.giveups"),
		breakerOpens: reg.Counter("breaker.open"),
		breakerFast:  reg.Counter("breaker.fastfail"),
		rng:          rand.New(rand.NewSource(p.Seed)),
		breakers:     make(map[string]*Breaker),
	}
	e.budget.Store(int64(p.RetryBudget) * budgetScale)
	return e
}

// Policy returns the (defaulted) policy in force.
func (e *Executor) Policy() Policy { return e.p }

// breaker returns (creating if needed) the destination's breaker.
func (e *Executor) breaker(dest string) *Breaker {
	e.bmu.RLock()
	b, ok := e.breakers[dest]
	e.bmu.RUnlock()
	if ok {
		return b
	}
	e.bmu.Lock()
	defer e.bmu.Unlock()
	if b, ok = e.breakers[dest]; ok {
		return b
	}
	b = NewBreaker(BreakerConfig{
		Threshold:      e.p.BreakerThreshold,
		Cooldown:       e.p.BreakerCooldown,
		HalfOpenProbes: e.p.HalfOpenProbes,
	})
	e.breakers[dest] = b
	return b
}

// State reports the destination's breaker state (closed for unknown
// destinations).
func (e *Executor) State(dest string) BreakerState {
	e.bmu.RLock()
	b, ok := e.breakers[dest]
	e.bmu.RUnlock()
	if !ok {
		return StateClosed
	}
	return b.State()
}

// Reset force-closes the destination's breaker — called when an out-of-band
// signal (gossip, an operator) reports the peer recovered.
func (e *Executor) Reset(dest string) {
	e.bmu.RLock()
	b, ok := e.breakers[dest]
	e.bmu.RUnlock()
	if ok {
		b.Reset()
	}
}

// ResetAll force-closes every breaker.
func (e *Executor) ResetAll() {
	e.bmu.RLock()
	defer e.bmu.RUnlock()
	for _, b := range e.breakers {
		b.Reset()
	}
}

// retryable applies the policy classifier.
func (e *Executor) retryable(err error) bool {
	if e.p.Retryable != nil {
		return e.p.Retryable(err)
	}
	return !errors.Is(err, context.Canceled)
}

// spendRetry takes one retry token; false means the budget is exhausted.
func (e *Executor) spendRetry() bool {
	for {
		cur := e.budget.Load()
		if cur < budgetScale {
			return false
		}
		if e.budget.CompareAndSwap(cur, cur-budgetScale) {
			return true
		}
	}
}

// refund returns half a token on a first-attempt success, capped at the
// configured budget.
func (e *Executor) refund() {
	cap := int64(e.p.RetryBudget) * budgetScale
	for {
		cur := e.budget.Load()
		if cur >= cap {
			return
		}
		next := cur + budgetScale/2
		if next > cap {
			next = cap
		}
		if e.budget.CompareAndSwap(cur, next) {
			return
		}
	}
}

// backoff draws the full-jitter delay before retry number attempt+1.
func (e *Executor) backoff(attempt int) time.Duration {
	cap := e.p.BaseDelay << uint(attempt)
	if cap > e.p.MaxDelay || cap <= 0 {
		cap = e.p.MaxDelay
	}
	e.rngMu.Lock()
	defer e.rngMu.Unlock()
	return time.Duration(e.rng.Int63n(int64(cap)))
}

// sleep waits for d or the context, whichever first; false means canceled.
func sleep(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// Do runs fn against dest under the policy: breaker gate, per-attempt
// timeout, classification, backoff with full jitter, and retry budget. A
// non-retryable error (the peer answered, but with an application failure)
// returns immediately and counts as breaker success — the peer is alive.
func (e *Executor) Do(ctx context.Context, dest string, fn func(context.Context) error) error {
	br := e.breaker(dest)
	if !br.Allow() {
		e.breakerFast.Inc()
		return fmt.Errorf("%w: %s", ErrOpen, dest)
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		actx := ctx
		var cancel context.CancelFunc
		if e.p.AttemptTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, e.p.AttemptTimeout)
		}
		err := fn(actx)
		if cancel != nil {
			cancel()
		}
		if err == nil {
			br.RecordSuccess()
			if attempt == 0 {
				e.refund()
			}
			return nil
		}
		lastErr = err
		if !e.retryable(err) {
			br.RecordSuccess()
			return err
		}
		if br.RecordFailure() {
			e.breakerOpens.Inc()
		}
		if ctx.Err() != nil {
			return lastErr
		}
		if attempt+1 >= e.p.MaxAttempts || !e.spendRetry() {
			e.giveups.Inc()
			return lastErr
		}
		e.retries.Inc()
		if !sleep(ctx, e.backoff(attempt)) {
			return lastErr
		}
	}
}

// DoValue is Do for calls that produce a value.
func DoValue[T any](e *Executor, ctx context.Context, dest string, fn func(context.Context) (T, error)) (T, error) {
	var out T
	err := e.Do(ctx, dest, func(ctx context.Context) error {
		v, err := fn(ctx)
		if err == nil {
			out = v
		}
		return err
	})
	return out, err
}
