//go:build !race

// Package testutil holds small helpers shared by tests across packages.
package testutil

// RaceEnabled reports whether the binary was built with the race detector.
// Allocation-count guards skip under race: instrumentation allocates, and
// sync.Pool deliberately drops items to widen interleavings.
const RaceEnabled = false
