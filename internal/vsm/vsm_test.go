package vsm

import (
	"math"
	"strconv"
	"sync"
	"testing"
	"testing/quick"
)

func seededCorpus() *Corpus {
	c := NewCorpus()
	// "common" appears in every document; "rare" in one.
	for i := 0; i < 100; i++ {
		terms := []string{"common", "filler" + strconv.Itoa(i)}
		if i == 0 {
			terms = append(terms, "rare")
		}
		c.AddDocument(terms)
	}
	return c
}

func TestIDFOrdering(t *testing.T) {
	c := seededCorpus()
	if c.IDF("rare") <= c.IDF("common") {
		t.Fatalf("idf(rare)=%v should exceed idf(common)=%v", c.IDF("rare"), c.IDF("common"))
	}
	if c.IDF("unseen") <= c.IDF("rare") {
		t.Fatalf("idf(unseen)=%v should exceed idf(rare)=%v", c.IDF("unseen"), c.IDF("rare"))
	}
}

func TestIDFEmptyCorpusFinite(t *testing.T) {
	c := NewCorpus()
	v := c.IDF("anything")
	if math.IsInf(v, 0) || math.IsNaN(v) || v < 0 {
		t.Fatalf("IDF on empty corpus = %v", v)
	}
}

func TestCosineIdenticalSetsIsOne(t *testing.T) {
	c := seededCorpus()
	terms := []string{"common", "rare"}
	if got := c.CosineScore(terms, terms); math.Abs(got-1) > 1e-9 {
		t.Fatalf("cosine of identical sets = %v, want 1", got)
	}
}

func TestCosineDisjointIsZero(t *testing.T) {
	c := seededCorpus()
	if got := c.CosineScore([]string{"a", "b"}, []string{"c"}); got != 0 {
		t.Fatalf("cosine of disjoint sets = %v, want 0", got)
	}
}

func TestCosineEmptyInputs(t *testing.T) {
	c := seededCorpus()
	if c.CosineScore(nil, []string{"x"}) != 0 || c.CosineScore([]string{"x"}, nil) != 0 {
		t.Fatal("empty input should score 0")
	}
}

func TestCosinePartialBetween(t *testing.T) {
	c := seededCorpus()
	doc := []string{"common", "rare", "other"}
	got := c.CosineScore(doc, []string{"rare"})
	if got <= 0 || got >= 1 {
		t.Fatalf("partial cosine = %v, want in (0,1)", got)
	}
}

func TestRareTermDominates(t *testing.T) {
	c := seededCorpus()
	doc := []string{"common", "rare"}
	rare := c.CosineScore(doc, []string{"rare"})
	common := c.CosineScore(doc, []string{"common"})
	if rare <= common {
		t.Fatalf("matching the rare term (%v) should outscore the common one (%v)", rare, common)
	}
}

func TestContainmentFullCoverageIsOne(t *testing.T) {
	c := seededCorpus()
	docSet := map[string]struct{}{"common": {}, "rare": {}, "noise1": {}, "noise2": {}}
	got := c.ContainmentScore(docSet, []string{"common", "rare"})
	if math.Abs(got-1) > 1e-9 {
		t.Fatalf("containment with full coverage = %v, want 1 (long docs not penalized)", got)
	}
}

func TestContainmentPartial(t *testing.T) {
	c := seededCorpus()
	docSet := map[string]struct{}{"rare": {}}
	got := c.ContainmentScore(docSet, []string{"rare", "common"})
	if got <= 0 || got >= 1 {
		t.Fatalf("partial containment = %v, want in (0,1)", got)
	}
	// The covered term is the rare (heavier) one, so score > 0.5.
	if got <= 0.5 {
		t.Fatalf("rare-term coverage = %v, want > 0.5", got)
	}
}

func TestContainmentEmpty(t *testing.T) {
	c := seededCorpus()
	if c.ContainmentScore(nil, []string{"x"}) != 0 {
		t.Fatal("nil doc set should score 0")
	}
	if c.ContainmentScore(map[string]struct{}{"x": {}}, nil) != 0 {
		t.Fatal("empty filter should score 0")
	}
}

func TestScoresBoundedProperty(t *testing.T) {
	c := seededCorpus()
	prop := func(docRaw, filterRaw []uint8) bool {
		doc := make([]string, 0, len(docRaw))
		seen := map[string]struct{}{}
		for _, b := range docRaw {
			term := "t" + strconv.Itoa(int(b%40))
			if _, dup := seen[term]; !dup {
				seen[term] = struct{}{}
				doc = append(doc, term)
			}
		}
		filter := make([]string, 0, len(filterRaw))
		seenF := map[string]struct{}{}
		for _, b := range filterRaw {
			term := "t" + strconv.Itoa(int(b%40))
			if _, dup := seenF[term]; !dup {
				seenF[term] = struct{}{}
				filter = append(filter, term)
			}
		}
		cos := c.CosineScore(doc, filter)
		if cos < 0 || cos > 1+1e-9 || math.IsNaN(cos) {
			return false
		}
		docSet := make(map[string]struct{}, len(doc))
		for _, t := range doc {
			docSet[t] = struct{}{}
		}
		cont := c.ContainmentScore(docSet, filter)
		return cont >= 0 && cont <= 1+1e-9 && !math.IsNaN(cont)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCorpusConcurrentUse(t *testing.T) {
	c := NewCorpus()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c.AddDocument([]string{"shared", "w" + strconv.Itoa(w)})
				_ = c.CosineScore([]string{"shared"}, []string{"shared", "w0"})
			}
		}(w)
	}
	wg.Wait()
	if c.Docs() != 400 {
		t.Fatalf("Docs = %d, want 400", c.Docs())
	}
}
