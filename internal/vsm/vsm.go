// Package vsm implements the vector space model scoring (§III.A cites [6])
// used for MOVE's similarity-threshold matching semantics — the extension
// beyond the boolean model that the paper inherits from SIFT [25] and
// STAIRS [17]. Filters and documents are scored by tf-idf-weighted cosine
// similarity; a filter with MatchThreshold semantics matches when the score
// reaches its threshold.
package vsm

import (
	"math"
	"sync"
)

// Corpus maintains document-frequency statistics used for idf weighting.
// It is updated as documents stream through a node and read on every
// threshold match, so it is safe for concurrent use.
type Corpus struct {
	mu   sync.RWMutex
	df   map[string]int64
	docs int64
}

// NewCorpus returns an empty corpus.
func NewCorpus() *Corpus {
	return &Corpus{df: make(map[string]int64)}
}

// AddDocument records one document's (deduplicated) term set.
func (c *Corpus) AddDocument(terms []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.docs++
	for _, t := range terms {
		c.df[t]++
	}
}

// Docs returns the number of recorded documents.
func (c *Corpus) Docs() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.docs
}

// IDF returns the smoothed inverse document frequency of term t:
// ln(1 + N / (1 + df)). The smoothing keeps unseen terms finite and
// positive so cold-start filters still score.
func (c *Corpus) IDF(t string) float64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return math.Log(1 + float64(c.docs)/(1+float64(c.df[t])))
}

// CosineScore computes the cosine similarity between a document term set
// and a filter term set under idf weighting (term frequency is 1 for both
// sides since term sets are deduplicated — standard for short queries).
// The result is in [0, 1]: 1 when the filter's terms all occur in the
// document and the document contains nothing else of weight.
func (c *Corpus) CosineScore(docTerms []string, filterTerms []string) float64 {
	if len(docTerms) == 0 || len(filterTerms) == 0 {
		return 0
	}
	c.mu.RLock()
	defer c.mu.RUnlock()

	idf := func(t string) float64 {
		return math.Log(1 + float64(c.docs)/(1+float64(c.df[t])))
	}

	docW := make(map[string]float64, len(docTerms))
	var docNorm float64
	for _, t := range docTerms {
		w := idf(t)
		docW[t] = w
		docNorm += w * w
	}
	var dot, filterNorm float64
	for _, t := range filterTerms {
		w := idf(t)
		filterNorm += w * w
		if dw, ok := docW[t]; ok {
			dot += dw * w
		}
	}
	if dot == 0 || docNorm == 0 || filterNorm == 0 {
		return 0
	}
	return dot / (math.Sqrt(docNorm) * math.Sqrt(filterNorm))
}

// ContainmentScore is the fraction of the filter's idf mass covered by the
// document: Σ_{t ∈ f ∩ d} idf(t)² / Σ_{t ∈ f} idf(t)². Unlike cosine it
// does not penalize long documents, which suits the paper's workload where
// documents are 20–2000× longer than filters; it is the default scoring
// for MatchThreshold filters.
func (c *Corpus) ContainmentScore(docSet map[string]struct{}, filterTerms []string) float64 {
	if len(docSet) == 0 || len(filterTerms) == 0 {
		return 0
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	var dot, norm float64
	for _, t := range filterTerms {
		w := math.Log(1 + float64(c.docs)/(1+float64(c.df[t])))
		norm += w * w
		if _, ok := docSet[t]; ok {
			dot += w * w
		}
	}
	if norm == 0 {
		return 0
	}
	return dot / norm
}

// ContainmentScoreSorted is ContainmentScore with the document given as a
// sorted term list instead of a membership map, probing by binary search.
// It lets allocation-free match paths score short documents that never
// built a map; the two forms return identical values for the same term set.
func (c *Corpus) ContainmentScoreSorted(sortedDocTerms []string, filterTerms []string) float64 {
	if len(sortedDocTerms) == 0 || len(filterTerms) == 0 {
		return 0
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	var dot, norm float64
	for _, t := range filterTerms {
		w := math.Log(1 + float64(c.docs)/(1+float64(c.df[t])))
		norm += w * w
		lo, hi := 0, len(sortedDocTerms)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if sortedDocTerms[mid] < t {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(sortedDocTerms) && sortedDocTerms[lo] == t {
			dot += w * w
		}
	}
	if norm == 0 {
		return 0
	}
	return dot / norm
}
